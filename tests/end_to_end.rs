//! Cross-crate integration tests: the full decode pipelines.

use bpsf::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

#[test]
fn code_capacity_pipeline_bb72() {
    let code = bb::bb72();
    let config = CodeCapacityConfig {
        p: 0.02,
        shots: 100,
        seed: 1,
    };
    let bp = run_code_capacity(&code, &config, &decoders::plain_bp(100));
    let sf = run_code_capacity(
        &code,
        &config,
        &decoders::bp_sf(BpSfConfig::code_capacity(100, 8, 1)),
    );
    let osd = run_code_capacity(&code, &config, &decoders::bp_osd(100, 10));
    // Post-processing never hurts: BP-SF and BP-OSD fail at most as often
    // as plain BP on the identical shot stream.
    assert!(sf.failures <= bp.failures);
    assert!(osd.failures <= bp.failures);
    assert_eq!(osd.unsolved, 0);
}

#[test]
fn bp_sf_rescues_coprime154() {
    // The paper's Fig. 5 headline: on [[154,6,16]] plain BP suffers an
    // error floor that BP-SF removes. Verify the ordering at moderate p.
    let code = coprime_bb::coprime154();
    let config = CodeCapacityConfig {
        p: 0.05,
        shots: 150,
        seed: 2,
    };
    let bp = run_code_capacity(&code, &config, &decoders::plain_bp(50));
    let sf = run_code_capacity(
        &code,
        &config,
        &decoders::bp_sf(BpSfConfig::code_capacity(50, 8, 1)),
    );
    assert!(
        sf.failures < bp.failures,
        "BP-SF ({}) must beat plain BP ({}) on the coprime code",
        sf.failures,
        bp.failures
    );
}

#[test]
fn circuit_level_pipeline_gross_code() {
    let code = bb::gross_code();
    let noise = NoiseModel::uniform_depolarizing(2e-3);
    let exp = MemoryExperiment::memory_z(&code, 2, &noise);
    let dem = exp.detector_error_model();
    assert_eq!(dem.num_undetectable(), 0);
    assert_eq!(dem.num_observables(), 12);

    let config = CircuitLevelConfig { shots: 40, seed: 3 };
    let sf = run_circuit_level(
        &dem,
        "gross r2",
        &config,
        &decoders::bp_sf(BpSfConfig::circuit_level(60, 30, 4, 4)),
    );
    let bp = run_circuit_level(&dem, "gross r2", &config, &decoders::plain_bp(60));
    assert!(sf.failures <= bp.failures);
}

#[test]
fn subsystem_shyps_circuit_level_runs() {
    // The SHYPS code exercises the subsystem detector path (gauge-product
    // stabilizer combinations).
    let code = shp::shyps225();
    let noise = NoiseModel::uniform_depolarizing(1e-3);
    let exp = MemoryExperiment::memory_z(&code, 2, &noise);
    let dem = exp.detector_error_model();
    assert!(dem.num_detectors() > 0);
    assert_eq!(dem.num_observables(), 16);
    assert_eq!(dem.num_undetectable(), 0);

    let report = run_circuit_level(
        &dem,
        "shyps r2",
        &CircuitLevelConfig { shots: 20, seed: 4 },
        &decoders::bp_osd(60, 10),
    );
    assert_eq!(report.unsolved, 0);
}

#[test]
fn parallel_pool_agrees_with_serial_on_stream() {
    let code = coprime_bb::coprime154();
    let hz = code.hz().clone();
    let n = hz.cols();
    let p = 0.04;
    let priors = vec![2.0 * p / 3.0; n];
    let config = BpSfConfig::code_capacity(40, 8, 1);
    let mut serial = BpSfDecoder::new(&hz, &priors, config);
    let mut pool = ParallelBpSf::new(&hz, &priors, config, 2);
    let mut rng = StdRng::seed_from_u64(5);
    for _ in 0..25 {
        let (ex, _) = bpsf::sim::sample_depolarizing(n, p, &mut rng);
        let s = hz.mul_vec(&ex);
        let rs = serial.decode(&s);
        let (rp, _) = pool.decode(&s);
        assert_eq!(rs.success, rp.success);
        if rp.success {
            assert_eq!(hz.mul_vec(&rp.error_hat), s);
        }
    }
}

#[test]
fn logical_judgement_consistency_between_layers() {
    // The sim layer's per-basis judgement must agree with a direct check
    // through the code's logical operators.
    let code = bb::bb72();
    let hz = code.hz();
    // An X-type residual along a logical-X support has zero Z-check
    // syndrome (it commutes with every Z check) yet anticommutes with the
    // paired logical Z — a logical error.
    let logical_x = code.logicals().x.row(0);
    assert!(hz.mul_vec(&logical_x).is_zero());
    assert!(code.is_x_logical_error(&logical_x));
    // A stabilizer row has zero syndrome and is harmless.
    let stab = code.hx().to_dense().row(0);
    assert!(hz.mul_vec(&stab).is_zero());
    assert!(!code.is_x_logical_error(&stab));
}

#[test]
fn per_round_conversion_matches_formula() {
    let ler = 0.2;
    let rounds = 6;
    let per_round = bpsf::sim::ler_per_round(ler, rounds);
    let recomposed = 1.0 - (1.0 - per_round).powi(rounds as i32);
    assert!((recomposed - ler).abs() < 1e-12);
}
