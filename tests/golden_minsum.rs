//! Fixed-seed golden regression: pins the scalar min-sum reference on the
//! gross code — at **both** message precisions — so kernel refactors
//! cannot silently drift the baselines the batch kernel is checked
//! against.
//!
//! The pinned values capture the *exact float stream* of each decoder
//! (posteriors are fingerprinted via their raw bit patterns), on the
//! platform the goldens were generated on (x86-64 Linux/glibc — `ln` is
//! the only libm call on the min-sum path, used once per prior). The
//! `f64` rows predate the precision-generic refactor and must never move
//! without a deliberate numerical change; the `f32` rows pin the
//! reduced-precision stream separately — the two precisions' posterior
//! fingerprints differ (as expected), while these three seeds happen to
//! keep the same convergence, iteration and weight outcomes. If a
//! deliberate change or a libm update moves a reference, run
//! `scout_seeds` with `-- --ignored --nocapture` and re-pin from the
//! printed rows for **each** precision.

use bpsf::prelude::*;
use gf2::BitVec;

/// One pinned decode: seed → (converged, iterations, error-estimate
/// weight, posterior fingerprint).
struct Golden {
    seed: u64,
    converged: bool,
    iterations: usize,
    error_weight: usize,
    posterior_fingerprint: u64,
}

/// The `f64` reference rows — unchanged since the pre-generic decoder
/// (PR 2): the precision-generic core reproduces its float stream
/// bit-for-bit.
const GOLDENS_F64: &[Golden] = &[
    Golden {
        seed: 0,
        converged: true,
        iterations: 6,
        error_weight: 10,
        posterior_fingerprint: 0x717aaf53d61fb6cf,
    },
    Golden {
        seed: 3,
        converged: true,
        iterations: 4,
        error_weight: 9,
        posterior_fingerprint: 0xc1c6bbd2a13db502,
    },
    // A non-convergent shot: pins the full 40-iteration trajectory.
    Golden {
        seed: 6,
        converged: false,
        iterations: 40,
        error_weight: 9,
        posterior_fingerprint: 0xbc46b4f025143ab1,
    },
];

/// The `f32` rows: same seeds, same syndromes, the reduced-precision
/// float stream.
const GOLDENS_F32: &[Golden] = &[
    Golden {
        seed: 0,
        converged: true,
        iterations: 6,
        error_weight: 10,
        posterior_fingerprint: 0xf69a046c3bea1c23,
    },
    Golden {
        seed: 3,
        converged: true,
        iterations: 4,
        error_weight: 9,
        posterior_fingerprint: 0x43002df0491f49c2,
    },
    // Still non-convergent at f32: the reduced precision does not
    // change this trapping set's fate, only the exact posterior stream.
    Golden {
        seed: 6,
        converged: false,
        iterations: 40,
        error_weight: 9,
        posterior_fingerprint: 0x9eab5f5977736203,
    },
];

use bpsf::gf2;

/// Order-sensitive fold of the exact posterior bit patterns (works for
/// either precision through `Llr::to_bits_u64`).
fn fingerprint<T: Llr>(posteriors: &[T]) -> u64 {
    posteriors
        .iter()
        .fold(0u64, |acc, p| acc.rotate_left(7) ^ p.to_bits_u64())
}

/// The pinned workload's syndrome: gross-code Z checks, i.i.d. errors
/// from a seeded stream (identical for both precisions — only the
/// decoder arithmetic differs).
fn syndrome_for_seed(seed: u64) -> BitVec {
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    let code = bb::gross_code();
    let hz = code.hz();
    let n = hz.cols();
    let mut rng = StdRng::seed_from_u64(seed);
    let mut e = BitVec::zeros(n);
    for i in 0..n {
        if rng.random_bool(0.06) {
            e.set(i, true);
        }
    }
    hz.mul_vec(&e)
}

/// The pinned decode at precision `T`: BP40 flooding with adaptive
/// damping and oscillation tracking on the gross code.
fn decode_for_seed<T: Llr>(seed: u64) -> (BitVec, bpsf::bp::BpResult<T>) {
    let code = bb::gross_code();
    let hz = code.hz();
    let n = hz.cols();
    let s = syndrome_for_seed(seed);
    let config = BpConfig {
        max_iters: 40,
        track_oscillations: true,
        ..BpConfig::default()
    };
    let mut dec = bpsf::bp::MinSumDecoderOf::<T>::new(hz, &vec![0.02; n], config);
    let r = dec.decode(&s);
    (s, r)
}

/// Golden scouting helper, per precision: prints re-pinnable rows for
/// every candidate seed at the requested precision.
fn scout<T: Llr>() {
    for seed in 0..12u64 {
        let (_, r) = decode_for_seed::<T>(seed);
        println!(
            "[{}] seed {}: converged={} iterations={} error_weight={} fingerprint=0x{:016x}",
            T::PRECISION,
            seed,
            r.converged,
            r.iterations,
            r.error_hat.weight(),
            fingerprint(&r.posteriors)
        );
    }
}

#[test]
#[ignore = "golden scouting helper"]
fn scout_seeds() {
    scout::<f64>();
    scout::<f32>();
}

fn check_scalar_goldens<T: Llr>(goldens: &[Golden]) {
    for g in goldens {
        let (_, r) = decode_for_seed::<T>(g.seed);
        println!(
            "[{}] seed {}: converged={} iterations={} error_weight={} fingerprint=0x{:016x}",
            T::PRECISION,
            g.seed,
            r.converged,
            r.iterations,
            r.error_hat.weight(),
            fingerprint(&r.posteriors)
        );
        let p = T::PRECISION;
        assert_eq!(r.converged, g.converged, "seed {} ({p}): converged", g.seed);
        assert_eq!(
            r.iterations, g.iterations,
            "seed {} ({p}): iterations",
            g.seed
        );
        assert_eq!(
            r.error_hat.weight(),
            g.error_weight,
            "seed {} ({p}): error weight",
            g.seed
        );
        assert_eq!(
            fingerprint(&r.posteriors),
            g.posterior_fingerprint,
            "seed {} ({p}): posterior fingerprint",
            g.seed
        );
    }
}

#[test]
fn scalar_minsum_matches_pinned_goldens() {
    check_scalar_goldens::<f64>(GOLDENS_F64);
}

#[test]
fn scalar_minsum_f32_matches_pinned_goldens() {
    check_scalar_goldens::<f32>(GOLDENS_F32);
}

/// The batch kernel must reproduce the same pinned reference *at each
/// precision* — and on **every SIMD dispatch target compiled into this
/// binary**: decoding the three golden syndromes as one batch gives the
/// same bits as the three scalar decodes of that precision, whether the
/// batch runs the scalar oracle kernel or an explicit AVX2/AVX-512/NEON
/// wide kernel. The golden rows are shared across targets by design —
/// the explicit-SIMD kernels are exact re-expressions, not
/// approximations.
fn check_batch_goldens<T: Llr>(goldens: &[Golden]) {
    let code = bb::gross_code();
    let hz = code.hz();
    let n = hz.cols();
    let syndromes: Vec<BitVec> = goldens.iter().map(|g| syndrome_for_seed(g.seed)).collect();
    let p = T::PRECISION;
    for &target in bpsf::bp::supported_simd_targets() {
        let config = BpConfig {
            max_iters: 40,
            track_oscillations: true,
            simd_target: Some(target),
            ..BpConfig::default()
        };
        let mut batch = bpsf::bp::BatchMinSumDecoderOf::<T>::new(hz, &vec![0.02; n], config);
        let results = batch.decode_batch_results(&syndromes);
        for (g, r) in goldens.iter().zip(&results) {
            assert_eq!(
                r.converged, g.converged,
                "seed {} ({p}, {target}): converged",
                g.seed
            );
            assert_eq!(
                r.iterations, g.iterations,
                "seed {} ({p}, {target}): iterations",
                g.seed
            );
            assert_eq!(
                r.error_hat.weight(),
                g.error_weight,
                "seed {} ({p}, {target}): error weight",
                g.seed
            );
            assert_eq!(
                fingerprint(&r.posteriors),
                g.posterior_fingerprint,
                "seed {} ({p}, {target}): posterior fingerprint",
                g.seed
            );
        }
    }
}

#[test]
fn batch_kernel_matches_pinned_goldens() {
    check_batch_goldens::<f64>(GOLDENS_F64);
}

#[test]
fn batch_kernel_f32_matches_pinned_goldens() {
    check_batch_goldens::<f32>(GOLDENS_F32);
}
