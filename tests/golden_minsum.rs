//! Fixed-seed golden regression: pins the scalar min-sum reference on the
//! gross code, so kernel refactors cannot silently drift the baseline the
//! batch kernel is checked against.
//!
//! The pinned values capture the *exact f64 stream* of the decoder
//! (posteriors are fingerprinted via `f64::to_bits`), on the platform the
//! goldens were generated on (x86-64 Linux/glibc — `ln` is the only libm
//! call on the min-sum path, used once per prior). If a deliberate
//! numerical change or a libm update moves the reference, run this test
//! with `-- --nocapture` and re-pin from the printed actual rows.

use bpsf::prelude::*;
use gf2::BitVec;

/// One pinned decode: seed → (converged, iterations, error-estimate
/// weight, posterior fingerprint).
struct Golden {
    seed: u64,
    converged: bool,
    iterations: usize,
    error_weight: usize,
    posterior_fingerprint: u64,
}

const GOLDENS: &[Golden] = &[
    Golden {
        seed: 0,
        converged: true,
        iterations: 6,
        error_weight: 10,
        posterior_fingerprint: 0x717aaf53d61fb6cf,
    },
    Golden {
        seed: 3,
        converged: true,
        iterations: 4,
        error_weight: 9,
        posterior_fingerprint: 0xc1c6bbd2a13db502,
    },
    // A non-convergent shot: pins the full 40-iteration trajectory.
    Golden {
        seed: 6,
        converged: false,
        iterations: 40,
        error_weight: 9,
        posterior_fingerprint: 0xbc46b4f025143ab1,
    },
];

use bpsf::gf2;

/// Order-sensitive fold of the exact posterior bit patterns.
fn fingerprint(posteriors: &[f64]) -> u64 {
    posteriors
        .iter()
        .fold(0u64, |acc, p| acc.rotate_left(7) ^ p.to_bits())
}

/// The pinned workload: gross-code Z checks, i.i.d. 3% errors from a
/// seeded xoshiro stream, BP40 flooding with adaptive damping.
fn decode_for_seed(seed: u64) -> (BitVec, bpsf::bp::BpResult) {
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    let code = bb::gross_code();
    let hz = code.hz();
    let n = hz.cols();
    let mut rng = StdRng::seed_from_u64(seed);
    let mut e = BitVec::zeros(n);
    for i in 0..n {
        if rng.random_bool(0.06) {
            e.set(i, true);
        }
    }
    let s = hz.mul_vec(&e);
    let config = BpConfig {
        max_iters: 40,
        track_oscillations: true,
        ..BpConfig::default()
    };
    let mut dec = MinSumDecoder::new(hz, &vec![0.02; n], config);
    let r = dec.decode(&s);
    (s, r)
}

#[test]
#[ignore = "golden scouting helper"]
fn scout_seeds() {
    for seed in 0..12u64 {
        let (_, r) = decode_for_seed(seed);
        println!(
            "seed {}: converged={} iterations={} error_weight={} fingerprint=0x{:016x}",
            seed,
            r.converged,
            r.iterations,
            r.error_hat.weight(),
            fingerprint(&r.posteriors)
        );
    }
}

#[test]
fn scalar_minsum_matches_pinned_goldens() {
    for g in GOLDENS {
        let (_, r) = decode_for_seed(g.seed);
        println!(
            "seed {}: converged={} iterations={} error_weight={} fingerprint=0x{:016x}",
            g.seed,
            r.converged,
            r.iterations,
            r.error_hat.weight(),
            fingerprint(&r.posteriors)
        );
        assert_eq!(r.converged, g.converged, "seed {}: converged", g.seed);
        assert_eq!(r.iterations, g.iterations, "seed {}: iterations", g.seed);
        assert_eq!(
            r.error_hat.weight(),
            g.error_weight,
            "seed {}: error weight",
            g.seed
        );
        assert_eq!(
            fingerprint(&r.posteriors),
            g.posterior_fingerprint,
            "seed {}: posterior fingerprint",
            g.seed
        );
    }
}

/// The batch kernel must reproduce the same pinned reference: decoding
/// the three golden syndromes as one batch gives the same bits as the
/// three scalar decodes.
#[test]
fn batch_kernel_matches_pinned_goldens() {
    let code = bb::gross_code();
    let hz = code.hz();
    let n = hz.cols();
    let config = BpConfig {
        max_iters: 40,
        track_oscillations: true,
        ..BpConfig::default()
    };
    let mut batch = bpsf::bp::BatchMinSumDecoder::new(hz, &vec![0.02; n], config);
    let syndromes: Vec<BitVec> = GOLDENS.iter().map(|g| decode_for_seed(g.seed).0).collect();
    let results = batch.decode_batch_results(&syndromes);
    for (g, r) in GOLDENS.iter().zip(&results) {
        assert_eq!(r.converged, g.converged, "seed {}: converged", g.seed);
        assert_eq!(r.iterations, g.iterations, "seed {}: iterations", g.seed);
        assert_eq!(
            r.error_hat.weight(),
            g.error_weight,
            "seed {}: error weight",
            g.seed
        );
        assert_eq!(
            fingerprint(&r.posteriors),
            g.posterior_fingerprint,
            "seed {}: posterior fingerprint",
            g.seed
        );
    }
}
