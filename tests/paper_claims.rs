//! Statistical smoke tests of the paper's central claims, at reduced
//! scale with fixed seeds (full-scale reproductions live in the bench
//! binaries; see EXPERIMENTS.md).

use bpsf::bpsf::{hit_precision_recall, select_candidates};
use bpsf::prelude::*;
use qldpc_bp::MinSumDecoder;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Paper §III-B / Fig. 3: oscillating bits are far better error-location
/// guesses than chance — hit precision well above the physical error rate.
#[test]
fn oscillating_bits_predict_error_locations() {
    let code = bb::gross_code();
    let noise = NoiseModel::uniform_depolarizing(4e-3);
    let exp = MemoryExperiment::memory_z(&code, 2, &noise);
    let dem = exp.detector_error_model();
    let sampler = DemSampler::new(&dem);
    let mut bp = MinSumDecoder::new(
        dem.check_matrix(),
        dem.priors(),
        BpConfig {
            max_iters: 50,
            track_oscillations: true,
            ..BpConfig::default()
        },
    );
    let mut rng = StdRng::seed_from_u64(33);
    let mut precisions = Vec::new();
    let mut failures_seen = 0;
    for _ in 0..400 {
        let shot = sampler.sample(&mut rng);
        if shot.syndrome.is_zero() {
            continue;
        }
        let r = bp.decode(&shot.syndrome);
        if r.converged {
            continue;
        }
        failures_seen += 1;
        let candidates = select_candidates(&r.flip_counts, &r.posteriors, 50, true);
        let truth: Vec<usize> = shot.fault.iter_ones().collect();
        let (precision, _recall) = hit_precision_recall(&candidates, &truth);
        precisions.push(precision);
        if failures_seen >= 12 {
            break;
        }
    }
    assert!(
        failures_seen >= 3,
        "need BP failures to study; got {failures_seen}"
    );
    let mean: f64 = precisions.iter().sum::<f64>() / precisions.len() as f64;
    // Average mechanism prior is ~p/3 ≈ 1e-3; precision must be orders
    // of magnitude above it (the paper reports ~0.2–0.8).
    assert!(
        mean > 0.02,
        "candidate precision {mean} is no better than chance"
    );
}

/// Paper Fig. 2: BP converges quickly or effectively never — the mean
/// iteration count is far below the maximum.
#[test]
fn iteration_distribution_is_long_tailed() {
    let code = bb::gross_code();
    let noise = NoiseModel::uniform_depolarizing(1e-3);
    let exp = MemoryExperiment::memory_z(&code, 2, &noise);
    let dem = exp.detector_error_model();
    let sampler = DemSampler::new(&dem);
    let mut bp = MinSumDecoder::new(
        dem.check_matrix(),
        dem.priors(),
        BpConfig {
            max_iters: 200,
            ..BpConfig::default()
        },
    );
    let mut rng = StdRng::seed_from_u64(44);
    let mut iters = Vec::new();
    for _ in 0..150 {
        let shot = sampler.sample(&mut rng);
        let r = bp.decode(&shot.syndrome);
        iters.push(r.iterations as f64);
    }
    let stats = bpsf::sim::LatencyStats::from_samples(iters);
    assert!(
        stats.median <= 12.0,
        "median iterations {} should be small at p=1e-3",
        stats.median
    );
    assert!(
        stats.mean < 60.0,
        "mean {} should sit far below the cap",
        stats.mean
    );
}

/// Paper Fig. 14/15: *fully parallelized* BP-SF post-processing gains
/// on OSD's Gaussian elimination as circuit depth grows — BP's cost is
/// linear in the DEM size while elimination is superlinear.
///
/// The paper's claim is about the P-engine critical path, not a serial
/// CPU: run serially, BP-SF's trial loop simply executes more BP
/// iterations than OSD's single elimination. So the comparison scales
/// each BP-SF shot's measured wall time by `critical / serial`
/// iterations — post-processing wall time is almost entirely trial BP
/// iterations, and on P engines only the winning trial's chain remains
/// — while OSD's elimination is inherently serial (the paper's point)
/// and its wall time stands as measured.
///
/// Against this repo's word-parallel OSD fast path the absolute
/// crossover sits beyond smoke-test depth (the paper compares against
/// conventional per-bit BP-OSD implementations; our baseline is now an
/// order of magnitude faster, which is exactly the honest comparison
/// EXPERIMENTS.md reports). What survives at reduced scale, robustly,
/// is the *scaling separation*: the BP-SF-to-OSD cost ratio must
/// shrink markedly from shallow to deep circuits, and at paper-like
/// depth the parallelized SF cost must already sit within a small
/// factor of even the optimized elimination.
#[test]
fn bp_sf_postprocessing_gains_on_osd_with_depth() {
    let code = bb::gross_code();
    let noise = NoiseModel::uniform_depolarizing(4e-3);
    let ratio_at = |rounds: usize| -> f64 {
        let exp = MemoryExperiment::memory_z(&code, rounds, &noise);
        let dem = exp.detector_error_model();
        let config = CircuitLevelConfig { shots: 60, seed: 9 };
        let label = format!("gross r{rounds}");
        let sf = run_circuit_level(
            &dem,
            &label,
            &config,
            &decoders::bp_sf(BpSfConfig::circuit_level(60, 40, 6, 5)),
        );
        let osd = run_circuit_level(&dem, &label, &config, &decoders::bp_osd(60, 10));
        let sf_parallel_ms: Vec<f64> = sf
            .records
            .iter()
            .filter(|r| r.postprocessed)
            .map(|r| {
                r.wall_ns as f64 / 1.0e6
                    * (r.critical_iterations as f64 / r.serial_iterations as f64)
            })
            .collect();
        let osd_pp = osd.postprocessed_wall_stats_ms();
        assert!(
            !sf_parallel_ms.is_empty() && osd_pp.count > 0,
            "need post-processed shots at {rounds} rounds"
        );
        let sf_mean = sf_parallel_ms.iter().sum::<f64>() / sf_parallel_ms.len() as f64;
        println!(
            "{label}: parallelized BP-SF {sf_mean:.3} ms vs OSD {:.3} ms \
             ({} / {} post-processed shots)",
            osd_pp.mean,
            sf_parallel_ms.len(),
            osd_pp.count
        );
        sf_mean / osd_pp.mean
    };
    let shallow = ratio_at(3);
    let deep = ratio_at(12);
    println!("BP-SF / OSD post-processing cost ratio: r3 {shallow:.3} -> r12 {deep:.3}");
    // Wall-clock comparisons are only meaningful with optimizations: debug
    // builds slow the float-heavy BP kernel far more than the bit-packed
    // elimination, distorting the ratio.
    if !cfg!(debug_assertions) {
        assert!(
            deep < 0.92 * shallow,
            "BP-SF must gain on OSD with depth: ratio r3 {shallow:.3} -> r12 {deep:.3}"
        );
        assert!(
            deep < 1.4,
            "parallelized BP-SF ({deep:.3}x OSD at r12) should be near the crossover"
        );
    }
}

/// Paper abstract: BP-SF achieves logical error rates comparable to
/// BP-OSD. At this reduced scale, "comparable" means within a small
/// failure-count gap on the same shot stream.
#[test]
fn bp_sf_ler_comparable_to_bp_osd() {
    let code = bb::gross_code();
    let noise = NoiseModel::uniform_depolarizing(4e-3);
    let exp = MemoryExperiment::memory_z(&code, 2, &noise);
    let dem = exp.detector_error_model();
    let config = CircuitLevelConfig {
        shots: 150,
        seed: 10,
    };
    let sf = run_circuit_level(
        &dem,
        "gross r2",
        &config,
        &decoders::bp_sf(BpSfConfig::circuit_level(100, 50, 6, 5)),
    );
    let osd = run_circuit_level(&dem, "gross r2", &config, &decoders::bp_osd(100, 10));
    let bp = run_circuit_level(&dem, "gross r2", &config, &decoders::plain_bp(100));
    assert!(
        sf.failures <= bp.failures,
        "BP-SF must not lose to plain BP"
    );
    assert!(
        sf.failures <= osd.failures + 4,
        "BP-SF ({}) should be comparable to BP-OSD ({})",
        sf.failures,
        osd.failures
    );
}

/// The critical-path accounting underpinning the paper's 4 µs FPGA bound:
/// with BP100 settings, no decode's critical path exceeds 200 iterations.
#[test]
fn critical_path_bounded_by_two_bp_budgets() {
    let code = coprime_bb::coprime154();
    let config = CodeCapacityConfig {
        p: 0.05,
        shots: 80,
        seed: 12,
    };
    let report = run_code_capacity(
        &code,
        &config,
        &decoders::bp_sf(BpSfConfig::code_capacity(100, 8, 1)),
    );
    for r in &report.records {
        assert!(
            r.critical_iterations <= 200,
            "critical path {} exceeds 2×100 iterations",
            r.critical_iterations
        );
    }
}
