//! Accuracy-parity harness: the f32 fast path must not cost accuracy.
//!
//! Decodes the `[[144,12,12]]` gross code at the paper's code-capacity
//! operating point in both precisions over the *same* sampled shot
//! stream (same seed ⇒ identical errors and syndromes), and asserts the
//! f32 logical-error rate lands within a stated tolerance of f64's.
//! min-sum messages only need to order magnitudes and carry signs, so
//! the two precisions disagree on a shot only when a decode trajectory
//! passes within f32 rounding distance of a decision boundary — rare at
//! these operating points, and unbiased in direction.
//!
//! The full-size run (400 shots/precision) is tuned for the release
//! test job (`cargo test --release`, CI's `test-release`); debug builds
//! run a 60-shot smoke with a correspondingly looser tolerance so the
//! suite stays fast under `cargo test -q`.

use bpsf::prelude::*;
use bpsf::sim::{run_code_capacity, CodeCapacityConfig};

/// Paper-style code-capacity operating point for the gross code: BP40
/// flooding at depolarizing rate p = 0.06, where plain BP has a
/// measurable but not saturated failure rate (LER ≈ 0.08 at 400
/// release shots — the value EXPERIMENTS.md records), giving the
/// parity comparison statistical teeth.
const BP_ITERS: usize = 40;
const P_DEPOLARIZING: f64 = 0.06;

/// Shots per precision and the LER tolerance: release gets the real
/// run, debug a smoke-sized one. The tolerance is an absolute LER gap —
/// generous against binomial noise on the *difference* (the shot
/// streams are identical, so only precision-divergent shots contribute)
/// yet far below the ~0.2 gap that would signal a broken f32 path.
const SHOTS: usize = if cfg!(debug_assertions) { 60 } else { 400 };
const LER_TOLERANCE: f64 = if cfg!(debug_assertions) { 0.15 } else { 0.08 };

/// Both precision sweeps, run once and shared by every test in this
/// file (each is an intentionally expensive release-CI workload; the
/// reports are deterministic, so caching loses no coverage).
fn reports() -> &'static (bpsf::sim::RunReport, bpsf::sim::RunReport) {
    static REPORTS: std::sync::OnceLock<(bpsf::sim::RunReport, bpsf::sim::RunReport)> =
        std::sync::OnceLock::new();
    REPORTS.get_or_init(|| (run_at(Precision::F64), run_at(Precision::F32)))
}

fn run_at(precision: Precision) -> bpsf::sim::RunReport {
    let config = CodeCapacityConfig {
        p: P_DEPOLARIZING,
        shots: SHOTS,
        seed: 20260728,
    };
    run_code_capacity(
        &bb::gross_code(),
        &config,
        &bpsf::sim::decoders::plain_bp_at(BP_ITERS, precision),
    )
}

#[test]
fn f32_logical_error_rate_matches_f64_within_tolerance() {
    let (f64_report, f32_report) = reports();
    assert_eq!(f64_report.precision, Precision::F64);
    assert_eq!(f32_report.precision, Precision::F32);
    assert_eq!(f64_report.shots, SHOTS);
    assert_eq!(f32_report.shots, SHOTS);

    let (ler64, ler32) = (f64_report.ler(), f32_report.ler());
    println!(
        "gross code, BP{BP_ITERS}, p={P_DEPOLARIZING}, {SHOTS} shots/precision: \
         LER f64={ler64:.4} (±{:.4}) f32={ler32:.4} (±{:.4}) |Δ|={:.4} tol={LER_TOLERANCE}",
        f64_report.ler_std_err(),
        f32_report.ler_std_err(),
        (ler64 - ler32).abs(),
    );

    // The operating point must actually exercise the decoder: plain BP
    // fails some shots here but solves the clear majority.
    assert!(ler64 > 0.0, "operating point too easy to measure parity");
    assert!(ler64 < 0.6, "operating point saturated; parity meaningless");
    assert!(
        (ler64 - ler32).abs() <= LER_TOLERANCE,
        "f32 LER {ler32:.4} drifted more than {LER_TOLERANCE} from f64 LER {ler64:.4}"
    );
}

/// Per-shot agreement, not just aggregate rates: on the shared shot
/// stream the two precisions must reach the same solved/failed verdict
/// on nearly every shot (disagreements are allowed only for the rare
/// boundary trajectories).
#[test]
fn precisions_agree_shot_by_shot_almost_always() {
    let (f64_report, f32_report) = reports();
    let disagreements = f64_report
        .records
        .iter()
        .zip(&f32_report.records)
        .filter(|(a, b)| a.failed != b.failed)
        .count();
    let rate = disagreements as f64 / SHOTS as f64;
    println!("per-shot verdict disagreement: {disagreements}/{SHOTS} ({rate:.4})");
    assert!(
        rate <= LER_TOLERANCE,
        "precisions disagree on {disagreements}/{SHOTS} shots"
    );
}
