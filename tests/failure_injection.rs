//! Failure injection: decoders must degrade gracefully, never hang or
//! panic, on adversarial inputs.

use bpsf::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A check matrix with a guaranteed-unsatisfiable syndrome (two identical
/// checks receiving different syndrome bits).
fn inconsistent_setup() -> (SparseBitMatrix, BitVec) {
    let h = SparseBitMatrix::from_row_indices(2, 4, &[vec![0, 1, 2], vec![0, 1, 2]]);
    let s = BitVec::from_indices(2, &[0]);
    (h, s)
}

#[test]
fn bp_terminates_on_inconsistent_syndrome() {
    let (h, s) = inconsistent_setup();
    let mut dec = MinSumDecoder::new(
        &h,
        &[0.1; 4],
        BpConfig {
            max_iters: 200,
            ..BpConfig::default()
        },
    );
    let r = dec.decode(&s);
    assert!(!r.converged);
    assert_eq!(r.iterations, 200);
}

#[test]
fn bp_sf_reports_failure_on_inconsistent_syndrome() {
    let (h, s) = inconsistent_setup();
    let mut dec = BpSfDecoder::new(&h, &[0.1; 4], BpSfConfig::code_capacity(10, 4, 2));
    let r = dec.decode(&s);
    assert!(!r.success, "no trial can fix an inconsistent system");
    assert!(r.trials_executed > 0, "trials must have been attempted");
    assert!(r.serial_iterations > r.initial_iterations);
}

#[test]
fn osd_reports_inconsistency_instead_of_lying() {
    let (h, s) = inconsistent_setup();
    let mut dec = BpOsdDecoder::new(
        &h,
        &[0.1; 4],
        BpConfig {
            max_iters: 5,
            ..BpConfig::default()
        },
        OsdConfig::default(),
    );
    let r = dec.decode(&s);
    assert!(!r.solved);
}

#[test]
fn parallel_pool_survives_inconsistent_streams() {
    let (h, s) = inconsistent_setup();
    let mut pool = ParallelBpSf::new(&h, &[0.1; 4], BpSfConfig::code_capacity(10, 4, 2), 2);
    for _ in 0..5 {
        let (r, stats) = pool.decode(&s);
        assert!(!r.success);
        assert_eq!(stats.trials_dispatched, stats.trials_decoded);
    }
    // And it still decodes solvable syndromes afterwards.
    let e = BitVec::from_indices(4, &[0]);
    let good = h.mul_vec(&e);
    let (r, _) = pool.decode(&good);
    assert!(r.success);
}

#[test]
fn decoders_survive_random_garbage_syndromes() {
    // Random (possibly unsatisfiable) syndromes on a real code: decoders
    // must return without panicking, and any claimed solution must be real.
    let code = bb::bb72();
    let hz = code.hz();
    let m = hz.rows();
    let n = hz.cols();
    let mut rng = StdRng::seed_from_u64(13);
    let mut sf = BpSfDecoder::new(hz, &vec![0.03; n], BpSfConfig::code_capacity(20, 6, 2));
    let mut osd = BpOsdDecoder::new(
        hz,
        &vec![0.03; n],
        BpConfig {
            max_iters: 20,
            ..BpConfig::default()
        },
        OsdConfig::default(),
    );
    for _ in 0..20 {
        let mut s = BitVec::zeros(m);
        for i in 0..m {
            if rng.random_bool(0.5) {
                s.set(i, true);
            }
        }
        let r = sf.decode(&s);
        if r.success {
            assert_eq!(hz.mul_vec(&r.error_hat), s);
        }
        let r = osd.decode(&s);
        if r.solved {
            assert_eq!(hz.mul_vec(&r.error_hat), s);
        }
    }
}

#[test]
fn zero_probability_noise_yields_empty_dem() {
    let code = bb::bb72();
    let exp = MemoryExperiment::memory_z(&code, 2, &NoiseModel::noiseless());
    let dem = exp.detector_error_model();
    assert_eq!(dem.num_mechanisms(), 0);
    // Sampling an empty DEM gives a clean shot.
    let sampler = DemSampler::new(&dem);
    let mut rng = StdRng::seed_from_u64(1);
    let shot = sampler.sample(&mut rng);
    assert!(shot.syndrome.is_zero());
    assert!(shot.obs_flips.is_zero());
}

#[test]
fn tiny_candidate_sets_do_not_break_trial_generation() {
    // A syndrome whose BP failure produces very few oscillating bits must
    // still generate trials (via padding) and terminate.
    let (h, s) = inconsistent_setup();
    let mut dec = BpSfDecoder::new(
        &h,
        &[0.1; 4],
        BpSfConfig {
            pad_candidates: true,
            ..BpSfConfig::code_capacity(5, 10, 3) // |Φ| larger than n
        },
    );
    let r = dec.decode(&s);
    assert!(!r.success);
    assert!(r.candidates.len() <= 4);
}

#[test]
fn sampled_trials_with_tiny_phi() {
    let (h, s) = inconsistent_setup();
    let mut dec = BpSfDecoder::new(
        &h,
        &[0.1; 4],
        BpSfConfig::circuit_level(5, 2, 5, 7), // w_max larger than |Φ|
    );
    let r = dec.decode(&s);
    assert!(!r.success);
    // Weight > |Φ| is impossible; trials are capped accordingly.
    assert!(r.trials_executed <= 3);
}
