//! Property-based tests on the core invariants, spanning crates.

use bpsf::prelude::*;
use proptest::prelude::*;

/// Strategy: a random sparse check matrix with the given shape bounds.
fn sparse_matrix(max_rows: usize, max_cols: usize) -> impl Strategy<Value = SparseBitMatrix> {
    (2..=max_rows, 3..=max_cols)
        .prop_flat_map(|(rows, cols)| {
            let row = proptest::collection::vec(0..cols, 1..=cols.min(5));
            proptest::collection::vec(row, rows).prop_map(move |mut r| {
                for cs in &mut r {
                    cs.sort_unstable();
                    cs.dedup();
                }
                let rows = r.len();
                SparseBitMatrix::from_row_indices(rows, cols, &r)
            })
        })
        .prop_filter("need at least one entry", |h| h.nnz() > 0)
}

/// Strategy: a random error vector for a given length.
fn error_vector(len: usize) -> impl Strategy<Value = BitVec> {
    proptest::collection::vec(proptest::bool::weighted(0.15), len)
        .prop_map(|bits| BitVec::from_bools(&bits))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Any syndrome produced by a real error is solved by BP-OSD, and the
    /// solution reproduces the syndrome exactly.
    #[test]
    fn osd_always_satisfies_real_syndromes(h in sparse_matrix(12, 24), seed in 0u64..1000) {
        let n = h.cols();
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        use rand::{Rng, SeedableRng};
        let mut e = BitVec::zeros(n);
        for i in 0..n {
            if rng.random_bool(0.2) { e.set(i, true); }
        }
        let s = h.mul_vec(&e);
        let mut dec = BpOsdDecoder::new(
            &h,
            &vec![0.2; n],
            BpConfig { max_iters: 5, ..BpConfig::default() },
            OsdConfig::default(),
        );
        let r = dec.decode(&s);
        prop_assert!(r.solved);
        prop_assert_eq!(h.mul_vec(&r.error_hat), s);
    }

    /// BP-SF output always satisfies the *original* syndrome whenever it
    /// claims success — flipping back the trial bits must restore
    /// consistency (paper Fig. 1c).
    #[test]
    fn bp_sf_restores_original_syndrome(h in sparse_matrix(12, 24), e in error_vector(24)) {
        let n = h.cols();
        let e = e.slice(0..n);
        let s = h.mul_vec(&e);
        let mut dec = BpSfDecoder::new(
            &h,
            &vec![0.15; n],
            BpSfConfig::code_capacity(8, 4, 2),
        );
        let r = dec.decode(&s);
        if r.success {
            prop_assert_eq!(h.mul_vec(&r.error_hat), s);
        }
    }

    /// Converged plain BP always reproduces its syndrome.
    #[test]
    fn bp_convergence_implies_satisfaction(h in sparse_matrix(10, 20), e in error_vector(20)) {
        let n = h.cols();
        let e = e.slice(0..n);
        let s = h.mul_vec(&e);
        let mut dec = MinSumDecoder::new(&h, &vec![0.15; n], BpConfig::default());
        let r = dec.decode(&s);
        if r.converged {
            prop_assert_eq!(h.mul_vec(&r.error_hat), s);
        }
        prop_assert!(r.iterations >= 1 && r.iterations <= 100);
    }

    /// Layered and flooding schedules satisfy the same contract.
    #[test]
    fn layered_bp_contract(h in sparse_matrix(10, 20), e in error_vector(20)) {
        let n = h.cols();
        let e = e.slice(0..n);
        let s = h.mul_vec(&e);
        let mut dec = MinSumDecoder::new(
            &h,
            &vec![0.15; n],
            BpConfig { schedule: Schedule::Layered, ..BpConfig::default() },
        );
        let r = dec.decode(&s);
        if r.converged {
            prop_assert_eq!(h.mul_vec(&r.error_hat), s);
        }
    }

    /// Kernel vectors of random dense matrices are annihilated, and the
    /// rank–nullity identity holds.
    #[test]
    fn rank_nullity(rows in 1usize..8, cols in 1usize..12, seed in 0u64..500) {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let mut m = BitMatrix::zeros(rows, cols);
        for r in 0..rows {
            for c in 0..cols {
                if rng.random_bool(0.4) { m.set(r, c, true); }
            }
        }
        let kernel = m.kernel();
        prop_assert_eq!(m.rank() + kernel.len(), cols);
        for v in &kernel {
            prop_assert!(m.mul_vec(v).is_zero());
        }
    }

    /// Trial syndrome generation: s′ = s ⊕ H·t implies decoding e′ for s′
    /// gives e′ ⊕ t decoding s (the algebra behind syndrome flipping).
    #[test]
    fn syndrome_flip_algebra(h in sparse_matrix(10, 20), e in error_vector(20), t in error_vector(20)) {
        let n = h.cols();
        let e = e.slice(0..n);
        let t = t.slice(0..n);
        let s = h.mul_vec(&e);
        let support: Vec<usize> = t.iter_ones().collect();
        let mut s_flipped = h.mul_sparse_vec(&support);
        s_flipped.xor_assign(&s);
        // e ⊕ t satisfies the flipped syndrome.
        let et = &e ^ &t;
        prop_assert_eq!(h.mul_vec(&et), s_flipped);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Random GB codes from random polynomial pairs always commute.
    #[test]
    fn random_gb_codes_commute(
        l in 3usize..12,
        a_exps in proptest::collection::btree_set(0usize..12, 1..4),
        b_exps in proptest::collection::btree_set(0usize..12, 1..4),
    ) {
        use bpsf::codes::circulant::UniPoly;
        use bpsf::codes::gb::gb_code;
        let a: Vec<usize> = a_exps.into_iter().collect();
        let b: Vec<usize> = b_exps.into_iter().collect();
        let code = gb_code("prop", l, &UniPoly::new(&a), &UniPoly::new(&b), None);
        // H_X · H_Zᵀ = 0 and logical count consistency.
        prop_assert!(code.validate().is_ok());
    }
}
