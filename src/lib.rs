//! # BP-SF: fully parallelized BP decoding for quantum LDPC codes
//!
//! A full Rust reproduction of *"Fully Parallelized BP Decoding for Quantum
//! LDPC Codes Can Outperform BP-OSD"* (HPCA 2026). This facade crate
//! re-exports the whole stack:
//!
//! | Layer | Crate | Contents |
//! |---|---|---|
//! | GF(2) algebra | [`gf2`] | bit-packed vectors/matrices, Gaussian elimination |
//! | Codes | [`codes`] | BB, coprime-BB, GB, HGP, SHYPS constructions |
//! | Decoder API | [`decoder_api`] | the one [`SyndromeDecoder`](decoder_api::SyndromeDecoder) trait every decoder implements |
//! | BP | [`bp`] | normalized min-sum (flooding + layered), oscillation tracking, shot-interleaved batch kernel, precision-generic (f64/f32) messages |
//! | OSD baseline | [`osd`] | OSD-0 / OSD-CS post-processing |
//! | Circuit noise | [`circuit`] | syndrome-extraction circuits, detector error models |
//! | **BP-SF** | [`bpsf`] | the paper's oscillation-guided syndrome-flip decoder |
//! | Monte Carlo | [`sim`] | LER estimation (sequential, parallel, batched), latency stats, hardware models |
//! | Campaigns | [`campaign`] | declarative sweep specs, adaptive shot allocation, resumable JSONL logs, generated `REPRO.md` |
//! | Service | [`server`] | real-time decoding service: micro-batching scheduler, sharded decoder pools, backpressure, metrics |
//!
//! # Quickstart
//!
//! ```
//! use bpsf::prelude::*;
//!
//! // Decode a weight-2 X error on the [[144,12,12]] gross code.
//! let code = bb::gross_code();
//! let hz = code.hz().clone();
//! let n = hz.cols();
//! let mut decoder = BpSfDecoder::new(&hz, &vec![0.01; n], BpSfConfig::code_capacity(50, 8, 1));
//! let error = BitVec::from_indices(n, &[17, 98]);
//! let result = decoder.decode(&hz.mul_vec(&error));
//! assert!(result.success);
//! // The correction is syndrome-equivalent and logically correct.
//! let residual = &result.error_hat ^ &error;
//! assert!(!code.is_x_logical_error(&residual));
//! ```
//!
//! # Streaming
//!
//! Continuous memory experiments decode as a *stream*: syndrome rounds
//! arrive one at a time per logical qubit, a sliding window of `W`
//! round blocks is decoded whenever enough rounds are buffered, the
//! oldest `C` blocks commit, and boundary beliefs carry into the next
//! window. The service hosts this as stateful sessions, micro-batched
//! across qubits:
//!
//! ```
//! use bpsf::prelude::*;
//! use std::sync::Arc;
//!
//! let exp = MemoryExperiment::memory_z(&bb::bb72(), 2, &NoiseModel::uniform_depolarizing(1e-3));
//! let dem = exp.detector_error_model();
//! let k = dem.num_detectors() / 3; // detectors per round block
//! let plan = Arc::new(window_plan(&dem, k, 2, 1)); // W = 2, C = 1
//!
//! let mut builder = DecodeService::builder();
//! let code = builder.register_streaming_code("bb72-stream", plan, decoders::window_bp(50));
//! let service = builder.start();
//! let mut session = service.stream_session(code).unwrap();
//! for _ in 0..3 {
//!     session.push_round(&BitVec::zeros(k)).unwrap(); // rolling commits come back
//! }
//! let result = session.finish().unwrap();
//! assert!(result.all_solved && result.error_hat.is_zero());
//! service.shutdown();
//! ```

pub use bpsf_core as bpsf;
pub use qldpc_bp as bp;
pub use qldpc_campaign as campaign;
pub use qldpc_circuit as circuit;
pub use qldpc_client as client;
pub use qldpc_codes as codes;
pub use qldpc_decoder_api as decoder_api;
pub use qldpc_gf2 as gf2;
pub use qldpc_osd as osd;
pub use qldpc_server as server;
pub use qldpc_sim as sim;
pub use qldpc_telemetry as telemetry;
pub use qldpc_wire as wire;

/// The most common imports for working with the stack.
pub mod prelude {
    pub use crate::bp::{
        BatchMinSumDecoder, BatchMinSumDecoderF32, BpConfig, DampingSchedule, Llr, MinSumDecoder,
        MinSumDecoderF32, Schedule,
    };
    pub use crate::bpsf::{
        BpSfConfig, BpSfDecoder, BpSfResult, ParallelBpSf, TrialSampling, TrialSelection,
    };
    pub use crate::circuit::{
        window_plan, DemSampler, DetectorErrorModel, MemoryExperiment, NoiseModel,
    };
    pub use crate::client::{Connection, RemoteDecoder};
    pub use crate::codes::{bb, coprime_bb, gb, hgp, shp, CssCode};
    pub use crate::decoder_api::{DecodeOutcome, DecoderFactory, Precision, SyndromeDecoder};
    pub use crate::gf2::{BitMatrix, BitVec, SparseBitMatrix};
    pub use crate::osd::{BpOsdDecoder, OsdConfig};
    pub use crate::server::{
        CommitEvent, DecodeService, FrontendConfig, NetFrontend, ServiceConfig, StreamError,
        StreamResult, StreamSession,
    };
    pub use crate::sim::{
        decoders, run_circuit_level, run_circuit_level_batched, run_circuit_level_parallel,
        run_code_capacity, run_code_capacity_batched, run_code_capacity_parallel, run_streaming,
        BatchConfig, CircuitLevelConfig, CodeCapacityConfig, HardwareLatencyModel, StreamingConfig,
        StreamingReport,
    };
}
