//! Real-time decoding: streaming syndromes through the parallel worker
//! pool, plus projected hardware latencies.
//!
//! Reproduces the paper's §VI workflow in miniature: syndromes arrive one
//! at a time (as they would from a syndrome-extraction pipeline); the
//! persistent worker pool parallelizes the speculative trials whenever the
//! initial BP attempt fails, compressing the latency tail. The iteration
//! records are then fed to the FPGA latency model (20 ns/iteration) to
//! reproduce the "≈4 µs worst case" projection.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example realtime_decoding [workers] [shots]
//! ```

use bpsf::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Instant;

fn main() {
    let mut args = std::env::args().skip(1);
    let workers: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(2);
    let shots: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(150);

    let code = coprime_bb::coprime154();
    let p = 0.04;
    println!("streaming {shots} syndromes of {code} at p = {p} through {workers} workers…");

    let hz = code.hz().clone();
    let n = hz.cols();
    let priors = vec![2.0 * p / 3.0; n];
    let config = BpSfConfig::code_capacity(100, 8, 2);

    let mut serial = BpSfDecoder::new(&hz, &priors, config);
    let mut pool = ParallelBpSf::new(&hz, &priors, config, workers);
    let mut rng = StdRng::seed_from_u64(99);

    let mut serial_ms = Vec::new();
    let mut pool_ms = Vec::new();
    let mut critical_iters = Vec::new();
    for _ in 0..shots {
        let (ex, _) = bpsf::sim::sample_depolarizing(n, p, &mut rng);
        let s = hz.mul_vec(&ex);

        let t0 = Instant::now();
        let rs = serial.decode(&s);
        serial_ms.push(t0.elapsed().as_secs_f64() * 1e3);

        let (rp, stats) = pool.decode(&s);
        pool_ms.push(stats.wall_time.as_secs_f64() * 1e3);
        critical_iters.push(rp.critical_path_iterations);
        assert_eq!(rs.success, rp.success);
    }

    let s_stats = bpsf::sim::LatencyStats::from_samples(serial_ms);
    let p_stats = bpsf::sim::LatencyStats::from_samples(pool_ms);
    println!("\nserial BP-SF : {}", s_stats.summary());
    println!("pool (P={workers}) : {}", p_stats.summary());
    println!(
        "tail compression: max {:.2}× | mean {:.2}×",
        s_stats.max / p_stats.max.max(1e-9),
        s_stats.mean / p_stats.mean.max(1e-9)
    );

    // Project onto dedicated hardware (paper §VI discussion).
    let fpga = HardwareLatencyModel::fpga();
    let worst = critical_iters.iter().copied().max().unwrap_or(0);
    println!(
        "\nFPGA projection @20 ns/iter: worst-case critical path {} iterations → {:.2} µs",
        worst,
        fpga.time_us(worst)
    );
    println!(
        "(the paper's fully parallel bound: 100 initial + 100 trial iterations → {:.2} µs)",
        fpga.time_us(200)
    );
}
