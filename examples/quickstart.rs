//! Quickstart: decode errors on the [[144,12,12]] "gross" code with BP-SF.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use bpsf::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn main() {
    // 1. Build a code. All constructions from the paper are available:
    //    bb::{bb72, gross_code, bb288}, coprime_bb::{coprime126, coprime154},
    //    gb::gb254, shp::shyps225.
    let code = bb::gross_code();
    println!(
        "code: {code} (n={}, k={}, d={:?})",
        code.n(),
        code.k(),
        code.d()
    );

    // 2. Configure BP-SF: 50 BP iterations, |Φ| = 8 candidates, exhaustive
    //    weight-1 syndrome flips (the paper's code-capacity setting).
    let hz = code.hz().clone();
    let n = hz.cols();
    let p = 0.03;
    let priors = vec![2.0 * p / 3.0; n];
    let mut decoder = BpSfDecoder::new(&hz, &priors, BpSfConfig::code_capacity(50, 8, 1));

    // 3. Sample depolarizing errors and decode their syndromes.
    let mut rng = StdRng::seed_from_u64(2024);
    let shots = 200;
    let mut initial_failures = 0;
    let mut rescued = 0;
    let mut logical_failures = 0;
    for _ in 0..shots {
        let mut error = BitVec::zeros(n);
        for i in 0..n {
            if rng.random_bool(2.0 * p / 3.0) {
                error.set(i, true);
            }
        }
        let syndrome = hz.mul_vec(&error);
        let result = decoder.decode(&syndrome);
        if !result.initial_converged {
            initial_failures += 1;
            if result.success {
                rescued += 1;
            }
        }
        if result.success {
            let residual = &result.error_hat ^ &error;
            if code.is_x_logical_error(&residual) {
                logical_failures += 1;
            }
        } else {
            logical_failures += 1;
        }
    }

    println!("shots: {shots} at p = {p}");
    println!("initial BP failures: {initial_failures} (rescued by syndrome flips: {rescued})");
    println!("logical failures: {logical_failures}");
    println!(
        "logical error rate: {:.2e}",
        logical_failures as f64 / shots as f64
    );
}
