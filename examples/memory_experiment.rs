//! Circuit-level quantum memory: BP-SF vs BP-OSD on the gross code.
//!
//! Builds a d-round syndrome-extraction circuit under uniform depolarizing
//! noise, extracts the detector error model (the paper's Stim workflow,
//! rebuilt in Rust), and compares decoders on the same shot stream.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example memory_experiment [rounds] [p] [shots]
//! ```

use bpsf::prelude::*;

fn main() {
    let mut args = std::env::args().skip(1);
    let rounds: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(4);
    let p: f64 = args.next().and_then(|a| a.parse().ok()).unwrap_or(3e-3);
    let shots: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(200);

    let code = bb::gross_code();
    println!("building {rounds}-round memory-Z experiment for {code} at p = {p} …");
    let noise = NoiseModel::uniform_depolarizing(p);
    let experiment = MemoryExperiment::memory_z(&code, rounds, &noise);
    let dem = experiment.detector_error_model();
    println!(
        "circuit: {} gates, {} noise locations, {} measurements",
        experiment.circuit().num_gates(),
        experiment.circuit().num_noise_locations(),
        experiment.circuit().num_measurements()
    );
    println!(
        "detector error model: {} detectors × {} error mechanisms",
        dem.num_detectors(),
        dem.num_mechanisms()
    );

    let config = CircuitLevelConfig { shots, seed: 7 };
    let workload = format!("{} r={rounds} p={p}", code.name());

    // The paper's Fig. 7 contenders (reduced iteration budgets so the
    // example runs in seconds; scale up for publication-grade numbers).
    let contenders = vec![
        decoders::plain_bp(1000),
        decoders::bp_osd(1000, 10),
        decoders::bp_sf(BpSfConfig::circuit_level(100, 50, 6, 5)),
    ];

    println!(
        "\n{:<34} {:>10} {:>12} {:>10} {:>10}",
        "decoder", "LER", "LER/round", "avg ms", "max ms"
    );
    for factory in &contenders {
        let report = run_circuit_level(&dem, &workload, &config, factory);
        let wall = report.wall_stats_ms();
        println!(
            "{:<34} {:>10.3e} {:>12.3e} {:>10.3} {:>10.3}",
            report.decoder,
            report.ler(),
            report.ler_per_round(rounds),
            wall.mean,
            wall.max
        );
    }
}
