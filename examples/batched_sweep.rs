//! Thread-scaling demo: sequential vs batched thread-parallel LER sweep
//! on the `[[72,12,6]]` BB code.
//!
//! Runs the same fixed-seed code-capacity workload through the
//! single-stream sequential runner and the batched runner at 1, 2 and 4
//! threads, printing wall-clock time and speedup. With ≥ 4 physical
//! cores the 4-thread run shows the ≥ 2× speedup the batched engine is
//! built for (the run is embarrassingly parallel; scaling is limited
//! only by core count — on a 1-core container all configurations tie).
//!
//! ```sh
//! cargo run --release --example batched_sweep
//! ```

use bpsf::prelude::*;
use std::time::Instant;

fn main() {
    let code = bb::bb72();
    let config = CodeCapacityConfig {
        p: 0.05,
        shots: 20_000,
        seed: 7,
    };
    let factory = decoders::bp_osd(60, 10);

    println!(
        "batched_sweep: {} shots of bb72 code-capacity p={} under BP60-OSD10",
        config.shots, config.p
    );
    println!(
        "available cores: {}",
        std::thread::available_parallelism().map_or(1, usize::from)
    );
    println!();
    println!(
        "{:<28} {:>9} {:>10} {:>8}",
        "runner", "wall [s]", "LER", "speedup"
    );

    let t0 = Instant::now();
    let seq = run_code_capacity(&code, &config, &factory);
    let seq_s = t0.elapsed().as_secs_f64();
    println!(
        "{:<28} {:>9.3} {:>10.3e} {:>7.2}x",
        "sequential",
        seq_s,
        seq.ler(),
        1.0
    );

    for threads in [1usize, 2, 4] {
        let batch = BatchConfig {
            threads,
            batch_size: 32,
        };
        let t0 = Instant::now();
        let report = run_code_capacity_batched(&code, &config, &factory, &batch);
        let wall = t0.elapsed().as_secs_f64();
        println!(
            "{:<28} {:>9.3} {:>10.3e} {:>7.2}x",
            format!("batched [{}T,batch=32]", threads),
            wall,
            report.ler(),
            seq_s / wall
        );
        assert_eq!(report.shots, seq.shots);
    }

    println!();
    println!(
        "note: thread t decodes with seed {}+t; the 1T batched run \
         reproduces the sequential failure statistics exactly.",
        config.seed
    );
}
