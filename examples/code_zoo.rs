//! Tour of every code family in the paper: parameters, check weights and
//! a quick BP-friendliness probe.
//!
//! Reproduces the observation behind the paper's Appendix B: some codes
//! (e.g. BB [[72,12,6]]) decode well with plain BP, while others (the
//! [[154,6,16]] coprime-BB code) leave a large gap for post-processing to
//! close.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example code_zoo
//! ```

use bpsf::prelude::*;
use bpsf::sim::RunReport;

fn probe(code: &CssCode, p: f64, shots: usize) -> (RunReport, RunReport) {
    let config = CodeCapacityConfig { p, shots, seed: 11 };
    let bp = run_code_capacity(code, &config, &decoders::plain_bp(100));
    let sf = run_code_capacity(
        code,
        &config,
        &decoders::bp_sf(BpSfConfig::code_capacity(100, 8, 1)),
    );
    (bp, sf)
}

fn main() {
    let p = 0.05;
    let shots = 100;
    println!("code-capacity probe at p = {p}, {shots} shots per code\n");
    println!(
        "{:<28} {:>4} {:>4} {:>5} {:>6} {:>9} {:>12} {:>12}",
        "code", "n", "k", "d", "rowwt", "subsys", "BP100 LER", "BP-SF LER"
    );
    for code in qldpc_codes::paper_codes() {
        let (bp, sf) = probe(&code, p, shots);
        println!(
            "{:<28} {:>4} {:>4} {:>5} {:>6} {:>9} {:>12.3e} {:>12.3e}",
            code.name(),
            code.n(),
            code.k(),
            code.d().map_or_else(|| "?".into(), |d| d.to_string()),
            code.hz().max_row_degree(),
            code.is_subsystem(),
            bp.ler(),
            sf.ler(),
        );
    }
    println!("\nBP-SF matches plain BP on \"good\" codes and rescues the hard ones.");
}
