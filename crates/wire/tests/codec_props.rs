//! Property suite: `decode ∘ encode ≡ id` for every frame type, under
//! randomized payload contents — including empty strings, zero-length
//! bit vectors, and word-boundary bit lengths.

use proptest::prelude::*;
use qldpc_decoder_api::{DecodeOutcome, DecodeTelemetry};
use qldpc_gf2::BitVec;
use qldpc_wire::{DecodeFailure, ErrorCode, Frame, HEADER_LEN};

fn arb_bits() -> impl Strategy<Value = BitVec> {
    // Lengths straddling the u64-word boundary are the interesting ones
    // for the packed encoding; 0..=130 covers 0, 64, 128 ± slack.
    (0usize..131).prop_flat_map(|len| {
        proptest::collection::vec(proptest::bool::ANY, len)
            .prop_map(|bools| BitVec::from_bools(&bools))
    })
}

fn arb_string() -> impl Strategy<Value = String> {
    // Mixed ASCII and multi-byte UTF-8, including the empty string.
    proptest::collection::vec(0usize..5, 0..24).prop_map(|picks| {
        picks
            .into_iter()
            .map(|p| ["a", "Z", "0", "µ", "→"][p])
            .collect()
    })
}

fn arb_outcome() -> impl Strategy<Value = DecodeOutcome> {
    (
        (arb_bits(), proptest::bool::ANY, 0usize..5000, 0usize..5000),
        (
            proptest::bool::ANY,
            0u64..1000,
            proptest::bool::ANY,
            0u64..1000,
        ),
        (0u64..1000, 0u64..1000, 0u64..1000, 0u64..1000),
    )
        .prop_map(
            |(
                (error_hat, solved, serial, critical),
                (postprocessed, bp_iterations, bp_converged, oscillating_bits),
                (osd_invocations, osd_candidates, sf_trials, window_spill_bits),
            )| DecodeOutcome {
                error_hat,
                solved,
                serial_iterations: serial,
                critical_iterations: critical,
                postprocessed,
                telemetry: DecodeTelemetry {
                    bp_iterations,
                    bp_converged,
                    oscillating_bits,
                    osd_invocations,
                    osd_candidates,
                    sf_trials,
                    window_spill_bits,
                    window_carried_priors: bp_iterations ^ sf_trials,
                },
            },
        )
}

const ALL_ERROR_CODES: [ErrorCode; 11] = [
    ErrorCode::UnsupportedVersion,
    ErrorCode::UnknownCode,
    ErrorCode::Overloaded,
    ErrorCode::RateLimited,
    ErrorCode::Shutdown,
    ErrorCode::WrongCodeKind,
    ErrorCode::SyndromeLength,
    ErrorCode::BadFrame,
    ErrorCode::UnknownSession,
    ErrorCode::StreamFailed,
    ErrorCode::Internal,
];

/// Draws one frame of any of the 16 types, exercising every payload
/// field with randomized contents.
fn arb_frame() -> impl Strategy<Value = Frame> {
    (
        (0usize..16, 0u64..u64::MAX, 0u32..u32::MAX, 0u64..u64::MAX),
        (arb_string(), arb_bits(), proptest::bool::ANY, 0usize..14),
        (
            arb_outcome(),
            proptest::collection::vec(0u32..u32::MAX, 0..12),
            0u64..u64::MAX,
            0u16..u16::MAX,
        ),
    )
        .prop_map(
            |(
                (sel, tag, code_id, big),
                (text, bits, flag, discr),
                (outcome, mechanisms, big2, version),
            )| {
                match sel {
                    0 => Frame::Hello {
                        version,
                        client: text,
                    },
                    1 => Frame::HelloAck {
                        version,
                        node: text,
                    },
                    2 => Frame::CodeLookup { name: text },
                    3 => Frame::CodeInfo {
                        code: code_id,
                        syndrome_bits: big,
                        name: text,
                    },
                    4 => Frame::Submit {
                        tag,
                        code: code_id,
                        deadline_micros: big,
                        syndrome: bits,
                    },
                    5 => Frame::DecodeReply {
                        tag,
                        batch_size: big,
                        result: match discr % 3 {
                            0 => Ok(outcome),
                            1 => Err(DecodeFailure::DeadlineExceeded),
                            _ => Err(DecodeFailure::WorkerLost),
                        },
                    },
                    6 => Frame::StreamOpen { tag, code: code_id },
                    7 => Frame::StreamOpened {
                        tag,
                        session: big,
                        num_windows: big2,
                        num_round_blocks: big2.rotate_left(17),
                        dets_per_round: big.rotate_left(5),
                        num_mechanisms: tag.rotate_left(9),
                    },
                    8 => Frame::StreamRound {
                        session: big,
                        round: bits,
                    },
                    9 => Frame::RoundAck {
                        session: big,
                        rounds_received: big2,
                    },
                    10 => Frame::CommitEvent {
                        session: big,
                        window_index: big2,
                        start_round: tag,
                        end_round: tag.wrapping_add(3),
                        solved: flag,
                        mechanisms,
                    },
                    11 => Frame::StreamFinish { session: big },
                    12 => Frame::StreamFinished {
                        session: big,
                        all_solved: flag,
                        error_hat: bits,
                    },
                    13 => Frame::MetricsRequest,
                    14 => Frame::MetricsReply { text },
                    _ => Frame::Error {
                        tag,
                        code: ALL_ERROR_CODES[discr % ALL_ERROR_CODES.len()],
                        detail: text,
                    },
                }
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn encode_decode_round_trips(frame in arb_frame()) {
        let bytes = frame.encode();
        let (decoded, consumed) = Frame::decode(&bytes).expect("own encoding must decode");
        prop_assert_eq!(&decoded, &frame);
        prop_assert_eq!(consumed, bytes.len());
    }

    #[test]
    fn decode_consumes_exactly_one_frame_from_a_back_to_back_buffer(
        a in arb_frame(),
        b in arb_frame(),
    ) {
        let mut buf = a.encode();
        let first_len = buf.len();
        buf.extend_from_slice(&b.encode());
        let (first, consumed) = Frame::decode(&buf).unwrap();
        prop_assert_eq!(&first, &a);
        prop_assert_eq!(consumed, first_len);
        let (second, consumed2) = Frame::decode(&buf[consumed..]).unwrap();
        prop_assert_eq!(&second, &b);
        prop_assert_eq!(consumed + consumed2, buf.len());
    }

    #[test]
    fn stream_io_round_trips_sequences(frames in proptest::collection::vec(arb_frame(), 0..8)) {
        let mut buf = Vec::new();
        for f in &frames {
            qldpc_wire::write_frame(&mut buf, f).unwrap();
        }
        let mut cursor = std::io::Cursor::new(buf);
        let mut back = Vec::new();
        while let Some(f) = qldpc_wire::read_frame(&mut cursor, qldpc_wire::DEFAULT_MAX_PAYLOAD)
            .expect("own encoding must read back")
        {
            back.push(f);
        }
        prop_assert_eq!(back, frames);
    }

    #[test]
    fn header_declares_the_exact_payload_length(frame in arb_frame()) {
        let bytes = frame.encode();
        let declared = u32::from_le_bytes(bytes[4..8].try_into().unwrap()) as usize;
        prop_assert_eq!(HEADER_LEN + declared, bytes.len());
    }
}
