//! Decoder-hardening corpus: every malformed-input class maps to a
//! typed [`WireError`] — no panic path exists from untrusted bytes.
//!
//! The deterministic corpus pins the error *variant* per class; the
//! fuzz-style properties sweep truncations, bit flips, and raw byte
//! soup under `catch_unwind` to make the no-panic claim explicit
//! rather than implied by the test harness.

use proptest::prelude::*;
use qldpc_gf2::BitVec;
use qldpc_wire::{
    read_frame, DecodeFailure, ErrorCode, Frame, WireError, DEFAULT_MAX_PAYLOAD, HEADER_LEN, MAGIC,
};
use std::panic::{catch_unwind, AssertUnwindSafe};

/// A representative frame with every field class populated: strings,
/// bit vectors, scalars.
fn sample_frame() -> Frame {
    Frame::Submit {
        tag: 0xDEAD_BEEF,
        code: 7,
        deadline_micros: 1_500,
        syndrome: BitVec::from_indices(70, &[0, 3, 64, 69]),
    }
}

fn decode_no_panic(bytes: &[u8]) -> Result<(Frame, usize), WireError> {
    catch_unwind(AssertUnwindSafe(|| Frame::decode(bytes)))
        .expect("frame decoding must never panic on untrusted bytes")
}

#[test]
fn truncation_at_every_byte_is_a_typed_error() {
    let bytes = sample_frame().encode();
    for cut in 0..bytes.len() {
        let err = decode_no_panic(&bytes[..cut]).expect_err("prefix must not decode");
        assert!(
            matches!(err, WireError::Truncated { .. }),
            "cut at {cut}: got {err:?}"
        );
    }
}

#[test]
fn bad_magic_is_rejected() {
    let mut bytes = sample_frame().encode();
    bytes[0] ^= 0xFF;
    assert_eq!(
        decode_no_panic(&bytes),
        Err(WireError::BadMagic {
            got: [MAGIC[0] ^ 0xFF, MAGIC[1]]
        })
    );
}

#[test]
fn nonzero_reserved_byte_is_rejected() {
    let mut bytes = sample_frame().encode();
    bytes[3] = 0x80;
    assert_eq!(
        decode_no_panic(&bytes),
        Err(WireError::ReservedNonZero { got: 0x80 })
    );
}

#[test]
fn every_unassigned_frame_type_is_rejected() {
    // Types 0x01..=0x10 are assigned; everything else in the u8 range
    // must be a typed rejection, not a default-case panic.
    let payloadless = [MAGIC[0], MAGIC[1], 0x00, 0x00, 0, 0, 0, 0];
    for t in (0u8..=255).filter(|t| !(0x01..=0x10).contains(t)) {
        let mut bytes = payloadless;
        bytes[2] = t;
        assert_eq!(
            decode_no_panic(&bytes),
            Err(WireError::UnknownFrameType { got: t }),
            "type {t:#04x}"
        );
    }
}

#[test]
fn oversized_length_prefix_is_rejected_without_allocation() {
    // Header declares a u32::MAX payload; decode must refuse from the
    // header alone (the 8-byte buffer proves no payload was read).
    let mut bytes = vec![MAGIC[0], MAGIC[1], 0x01, 0x00];
    bytes.extend_from_slice(&u32::MAX.to_le_bytes());
    assert_eq!(
        decode_no_panic(&bytes),
        Err(WireError::Oversized {
            len: u32::MAX,
            max: DEFAULT_MAX_PAYLOAD
        })
    );
}

#[test]
fn declared_payload_longer_than_fields_is_trailing_garbage() {
    let mut bytes = sample_frame().encode();
    // Extend the payload by two bytes and fix up the header length.
    bytes.extend_from_slice(&[0xAA, 0xBB]);
    let new_len = (bytes.len() - HEADER_LEN) as u32;
    bytes[4..8].copy_from_slice(&new_len.to_le_bytes());
    assert_eq!(
        decode_no_panic(&bytes),
        Err(WireError::TrailingGarbage { extra: 2 })
    );
}

#[test]
fn syndrome_with_set_padding_bits_is_rejected() {
    let mut bytes = sample_frame().encode();
    // The Submit payload ends with the syndrome words; setting the top
    // bit of the final word (bit 127 of a 70-bit vector) breaks the
    // padding invariant.
    let last = bytes.len() - 1;
    bytes[last] |= 0x80;
    assert_eq!(decode_no_panic(&bytes), Err(WireError::TrailingBits));
}

#[test]
fn non_boolean_bool_byte_is_rejected() {
    let frame = Frame::StreamFinished {
        session: 9,
        all_solved: true,
        error_hat: BitVec::zeros(16),
    };
    let mut bytes = frame.encode();
    // Payload layout: session u64, then the bool.
    bytes[HEADER_LEN + 8] = 2;
    assert_eq!(decode_no_panic(&bytes), Err(WireError::BadBool { got: 2 }));
}

#[test]
fn unknown_error_code_and_decode_status_are_rejected() {
    let mut bytes = Frame::Error {
        tag: 1,
        code: ErrorCode::Internal,
        detail: String::new(),
    }
    .encode();
    bytes[HEADER_LEN + 8] = 0xEE; // the code byte after the u64 tag
    assert_eq!(
        decode_no_panic(&bytes),
        Err(WireError::BadDiscriminant {
            what: "error code",
            got: 0xEE
        })
    );

    let mut bytes = Frame::DecodeReply {
        tag: 1,
        batch_size: 1,
        result: Err(DecodeFailure::WorkerLost),
    }
    .encode();
    bytes[HEADER_LEN + 16] = 9; // the status byte after tag + batch_size
    assert_eq!(
        decode_no_panic(&bytes),
        Err(WireError::BadDiscriminant {
            what: "decode status",
            got: 9
        })
    );
}

#[test]
fn bad_utf8_in_a_string_field_is_rejected() {
    let mut bytes = Frame::CodeLookup {
        name: "ab".to_string(),
    }
    .encode();
    bytes[HEADER_LEN + 4] = 0xFF; // first string byte
    assert_eq!(decode_no_panic(&bytes), Err(WireError::BadUtf8));
}

#[test]
fn string_length_exceeding_its_cap_is_rejected() {
    // A CodeLookup whose string prefix claims more than MAX_STRING_BYTES
    // (larger than any real payload, under the frame cap).
    let mut bytes = vec![MAGIC[0], MAGIC[1], 0x03, 0x00];
    bytes.extend_from_slice(&4u32.to_le_bytes());
    bytes.extend_from_slice(&(qldpc_wire::MAX_STRING_BYTES + 1).to_le_bytes());
    assert!(matches!(
        decode_no_panic(&bytes),
        Err(WireError::StringTooLong { .. })
    ));
}

#[test]
fn stream_reader_reports_clean_vs_dirty_eof_distinctly() {
    let bytes = sample_frame().encode();
    // Clean EOF at a frame boundary: Ok(None).
    let mut empty = std::io::Cursor::new(Vec::<u8>::new());
    assert!(matches!(
        read_frame(&mut empty, DEFAULT_MAX_PAYLOAD),
        Ok(None)
    ));
    // EOF mid-header and mid-payload: typed truncation, not a hang or
    // an Ok(None) that would silently drop a partial frame.
    for cut in [3, HEADER_LEN + 2] {
        let mut partial = std::io::Cursor::new(bytes[..cut].to_vec());
        assert!(
            matches!(
                read_frame(&mut partial, DEFAULT_MAX_PAYLOAD),
                Err(qldpc_wire::RecvError::Malformed(
                    WireError::Truncated { .. }
                ))
            ),
            "cut at {cut}"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn random_byte_soup_never_panics(bytes in proptest::collection::vec(0u8..=255, 0..200)) {
        let _ = decode_no_panic(&bytes);
    }

    #[test]
    fn bit_flips_in_valid_frames_never_panic(
        seed in 0u64..u64::MAX,
        flip in 0usize..10_000,
    ) {
        // Mutate a real frame rather than raw soup so the fuzz spends
        // its cases past the header checks, inside field decoding.
        let frame = Frame::Submit {
            tag: seed,
            code: (seed >> 32) as u32,
            deadline_micros: seed.rotate_left(13),
            syndrome: BitVec::from_indices(130, &[(seed % 130) as usize]),
        };
        let mut bytes = frame.encode();
        let bit = flip % (bytes.len() * 8);
        bytes[bit / 8] ^= 1 << (bit % 8);
        // Must decode to something or fail typed — catch_unwind inside
        // decode_no_panic asserts it cannot panic either way.
        let _ = decode_no_panic(&bytes);
    }

    #[test]
    fn truncated_random_frames_never_decode(
        seed in 0u64..u64::MAX,
        cut_back in 1usize..12,
    ) {
        let frame = Frame::CommitEvent {
            session: seed,
            window_index: 1,
            start_round: 2,
            end_round: 5,
            solved: seed % 2 == 0,
            mechanisms: vec![(seed % 97) as u32; (seed % 7) as usize],
        };
        let bytes = frame.encode();
        let keep = bytes.len().saturating_sub(cut_back);
        prop_assert!(decode_no_panic(&bytes[..keep]).is_err());
    }
}
