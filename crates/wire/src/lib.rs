//! `qldpc-wire` — the compact, versioned binary protocol spoken between
//! the decode service front-end and its clients (ROADMAP item 5).
//!
//! # Frame layout
//!
//! ```text
//! +------+------+------+----------+-------------+----------------+
//! | 0xB5 | 0x51 | type | reserved | len: u32 LE | payload (len B)|
//! +------+------+------+----------+-------------+----------------+
//! ```
//!
//! All integers are little-endian. Variable-length fields carry explicit
//! count prefixes bounds-checked against the bytes actually present
//! before any allocation; syndromes travel as `u64` words in the same
//! packed layout `qldpc_gf2::BitVec` uses internally, so encoding is a
//! word copy and decoding re-validates the zero-padding invariant.
//!
//! # Hardening contract
//!
//! Decoding untrusted bytes never panics and never allocates more than
//! the received byte count: every malformed input maps to a typed
//! [`WireError`]. The property/fuzz suite in `tests/` pins both
//! `decode(encode(f)) == f` for every frame type and typed rejection of
//! a corpus of truncated, oversized, version-skewed, and bit-flipped
//! frames.
//!
//! # Versioning
//!
//! Connections open with [`Frame::Hello`] carrying
//! [`PROTOCOL_VERSION`]; the server answers [`Frame::HelloAck`] (same
//! version, node identity) or a typed [`Frame::Error`] with
//! [`ErrorCode::UnsupportedVersion`]. The version covers payload
//! layouts; the header shape and magic are version-invariant so a
//! mismatch is still diagnosable.

mod codec;
mod frame;

pub use codec::{Reader, Writer, MAX_STRING_BYTES};
pub use frame::{
    read_frame, write_frame, DecodeFailure, ErrorCode, Frame, RecvError, WireError,
    DEFAULT_MAX_PAYLOAD, HEADER_LEN, MAGIC, PROTOCOL_VERSION,
};
