//! Byte-level encoding primitives shared by every frame type.
//!
//! All integers are little-endian. Variable-length fields carry an
//! explicit count prefix and are bounds-checked against the remaining
//! payload *before* any allocation, so a hostile length prefix can never
//! reserve more memory than the bytes actually present on the wire.

use crate::WireError;
use qldpc_gf2::BitVec;

/// Hard cap on any single string field (code names, error details,
/// metrics pages), independent of the frame-payload cap.
pub const MAX_STRING_BYTES: u32 = 1 << 20;

/// Append-only encoder over a plain byte buffer.
#[derive(Debug, Default)]
pub struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    pub fn u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub fn f64(&mut self, v: f64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub fn bool(&mut self, v: bool) {
        self.buf.push(u8::from(v));
    }

    /// `u32` byte count + UTF-8 bytes.
    ///
    /// # Panics
    ///
    /// Panics if the string exceeds [`MAX_STRING_BYTES`] — an encoding-side
    /// contract violation, not a wire condition.
    pub fn string(&mut self, s: &str) {
        assert!(
            s.len() as u64 <= u64::from(MAX_STRING_BYTES),
            "string field exceeds the wire cap ({} > {MAX_STRING_BYTES} bytes)",
            s.len()
        );
        self.u32(s.len() as u32);
        self.buf.extend_from_slice(s.as_bytes());
    }

    /// `u64` bit length + the packed `u64` words (exactly
    /// `ceil(len/64)`, final word's unused high bits zero — the same
    /// invariant [`BitVec`] maintains internally, so this is a straight
    /// word copy).
    pub fn bits(&mut self, v: &BitVec) {
        self.u64(v.len() as u64);
        for &w in v.as_words() {
            self.u64(w);
        }
    }

    /// `u32` count + that many `u32` values.
    pub fn u32_list(&mut self, values: &[u32]) {
        self.u32(values.len() as u32);
        for &v in values {
            self.u32(v);
        }
    }
}

/// Bounds-checked cursor over one frame payload.
#[derive(Debug)]
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    pub fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        if self.remaining() < n {
            return Err(WireError::Truncated {
                need: n,
                have: self.remaining(),
            });
        }
        let slice = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(slice)
    }

    pub fn u8(&mut self) -> Result<u8, WireError> {
        Ok(self.take(1)?[0])
    }

    pub fn u16(&mut self) -> Result<u16, WireError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().unwrap()))
    }

    pub fn u32(&mut self) -> Result<u32, WireError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    pub fn u64(&mut self) -> Result<u64, WireError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    pub fn f64(&mut self) -> Result<f64, WireError> {
        Ok(f64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// Strict boolean: only `0` and `1` are valid on the wire.
    pub fn bool(&mut self) -> Result<bool, WireError> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            got => Err(WireError::BadBool { got }),
        }
    }

    pub fn string(&mut self) -> Result<String, WireError> {
        let len = self.u32()?;
        if len > MAX_STRING_BYTES {
            return Err(WireError::StringTooLong {
                len,
                max: MAX_STRING_BYTES,
            });
        }
        let bytes = self.take(len as usize)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| WireError::BadUtf8)
    }

    /// Decodes a bit-packed vector and re-checks the `BitVec` word
    /// invariant: set bits beyond the declared length are rejected, not
    /// silently masked — they would make two encodings of the same
    /// vector wire-distinguishable.
    pub fn bits(&mut self) -> Result<BitVec, WireError> {
        let len = self.u64()?;
        // Bound via the bytes actually present: `take` fails before any
        // allocation can happen, so a huge length prefix costs nothing.
        let words = len.div_ceil(64);
        let bytes = words
            .checked_mul(8)
            .filter(|&b| b <= self.remaining() as u64)
            .ok_or(WireError::Truncated {
                need: words.saturating_mul(8) as usize,
                have: self.remaining(),
            })?;
        let raw = self.take(bytes as usize)?;
        let words: Vec<u64> = raw
            .chunks_exact(8)
            .map(|c| u64::from_le_bytes(c.try_into().unwrap()))
            .collect();
        let tail_bits = (len % 64) as u32;
        if tail_bits != 0 {
            let tail = *words.last().expect("tail word exists when len % 64 != 0");
            if tail >> tail_bits != 0 {
                return Err(WireError::TrailingBits);
            }
        }
        Ok(BitVec::from_words(len as usize, words))
    }

    pub fn u32_list(&mut self) -> Result<Vec<u32>, WireError> {
        let count = self.u32()? as u64;
        let bytes = count
            .checked_mul(4)
            .filter(|&b| b <= self.remaining() as u64)
            .ok_or(WireError::Truncated {
                need: count.saturating_mul(4) as usize,
                have: self.remaining(),
            })?;
        let raw = self.take(bytes as usize)?;
        Ok(raw
            .chunks_exact(4)
            .map(|c| u32::from_le_bytes(c.try_into().unwrap()))
            .collect())
    }

    /// Asserts the payload was consumed exactly; unconsumed bytes are a
    /// malformed frame, not an extension point.
    pub fn finish(self) -> Result<(), WireError> {
        if self.remaining() != 0 {
            return Err(WireError::TrailingGarbage {
                extra: self.remaining(),
            });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_round_trips() {
        let mut w = Writer::new();
        w.u8(7);
        w.u16(300);
        w.u32(70_000);
        w.u64(1 << 40);
        w.f64(0.125);
        w.bool(true);
        w.bool(false);
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        assert_eq!(r.u8().unwrap(), 7);
        assert_eq!(r.u16().unwrap(), 300);
        assert_eq!(r.u32().unwrap(), 70_000);
        assert_eq!(r.u64().unwrap(), 1 << 40);
        assert_eq!(r.f64().unwrap(), 0.125);
        assert!(r.bool().unwrap());
        assert!(!r.bool().unwrap());
        r.finish().unwrap();
    }

    #[test]
    fn bits_round_trip_all_lengths_near_word_boundary() {
        for len in [0usize, 1, 63, 64, 65, 127, 128, 130] {
            let v = BitVec::from_indices(len, &(0..len).step_by(3).collect::<Vec<_>>());
            let mut w = Writer::new();
            w.bits(&v);
            let bytes = w.into_bytes();
            let mut r = Reader::new(&bytes);
            assert_eq!(r.bits().unwrap(), v, "len {len}");
            r.finish().unwrap();
        }
    }

    #[test]
    fn bits_reject_set_padding() {
        let mut w = Writer::new();
        w.u64(10); // 10 bits, one word
        w.u64(1 << 10); // bit 10 is beyond the declared length
        let bytes = w.into_bytes();
        assert_eq!(Reader::new(&bytes).bits(), Err(WireError::TrailingBits));
    }

    #[test]
    fn hostile_length_prefixes_fail_before_allocating() {
        // A bits field claiming u64::MAX bits with no backing bytes.
        let mut w = Writer::new();
        w.u64(u64::MAX);
        let bytes = w.into_bytes();
        assert!(matches!(
            Reader::new(&bytes).bits(),
            Err(WireError::Truncated { .. })
        ));
        // A u32 list claiming u32::MAX entries.
        let mut w = Writer::new();
        w.u32(u32::MAX);
        let bytes = w.into_bytes();
        assert!(matches!(
            Reader::new(&bytes).u32_list(),
            Err(WireError::Truncated { .. })
        ));
    }

    #[test]
    fn strings_reject_bad_utf8_and_oversize() {
        let mut w = Writer::new();
        w.u32(2);
        let mut bytes = w.into_bytes();
        bytes.extend_from_slice(&[0xff, 0xfe]);
        assert_eq!(Reader::new(&bytes).string(), Err(WireError::BadUtf8));

        let mut w = Writer::new();
        w.u32(MAX_STRING_BYTES + 1);
        let bytes = w.into_bytes();
        assert!(matches!(
            Reader::new(&bytes).string(),
            Err(WireError::StringTooLong { .. })
        ));
    }

    #[test]
    fn trailing_garbage_is_rejected() {
        let mut w = Writer::new();
        w.u8(1);
        let mut bytes = w.into_bytes();
        bytes.push(0xAA);
        let mut r = Reader::new(&bytes);
        r.u8().unwrap();
        assert_eq!(r.finish(), Err(WireError::TrailingGarbage { extra: 1 }));
    }
}
