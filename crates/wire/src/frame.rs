//! Frame types, their binary encoding, and the typed decode errors.
//!
//! Every frame is `MAGIC(2) | type(1) | reserved(1, zero) | len(4, LE) |
//! payload(len)`. The payload layout is fixed per type (see each
//! variant's docs); decoding consumes the payload exactly — truncated
//! fields, oversized length prefixes, set padding bits, non-UTF-8
//! strings, unknown enums, and trailing bytes each map to a distinct
//! [`WireError`] and never panic.

use crate::codec::{Reader, Writer};
use qldpc_decoder_api::{DecodeOutcome, DecodeTelemetry};
use qldpc_gf2::BitVec;
use std::fmt;
use std::io::{self, Read, Write};

/// Two magic bytes opening every frame — cheap resynchronization check
/// and a guard against pointing the client at a non-qldpc port.
pub const MAGIC: [u8; 2] = [0xB5, 0x51];

/// Protocol revision negotiated by the `Hello`/`HelloAck` handshake.
/// Bump on any frame-layout change; the server refuses mismatches with
/// [`ErrorCode::UnsupportedVersion`].
pub const PROTOCOL_VERSION: u16 = 1;

/// Bytes before the payload: magic, type, reserved, length.
pub const HEADER_LEN: usize = 8;

/// Default cap on one frame's payload. Large enough for a metrics page
/// or a full-block syndrome, small enough that a hostile length prefix
/// cannot balloon a connection buffer.
pub const DEFAULT_MAX_PAYLOAD: u32 = 1 << 24;

/// Why a byte sequence failed to decode as a frame. Every variant is a
/// *typed rejection* — the decoder has no panic path on untrusted input.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WireError {
    /// Fewer bytes than a declared count requires.
    Truncated {
        /// Bytes the field needed.
        need: usize,
        /// Bytes actually available.
        have: usize,
    },
    /// The frame does not start with [`MAGIC`].
    BadMagic {
        /// The two bytes found instead.
        got: [u8; 2],
    },
    /// The reserved header byte was nonzero (reserved for future flags;
    /// current peers must send zero).
    ReservedNonZero {
        /// The byte found.
        got: u8,
    },
    /// The header declares a payload larger than the negotiated cap.
    Oversized {
        /// Declared payload length.
        len: u32,
        /// The cap in force.
        max: u32,
    },
    /// No frame type with this tag exists in this protocol version.
    UnknownFrameType {
        /// The type byte found.
        got: u8,
    },
    /// The payload continued past the last field of its type.
    TrailingGarbage {
        /// Unconsumed bytes.
        extra: usize,
    },
    /// A string field was not valid UTF-8.
    BadUtf8,
    /// A string field exceeds [`crate::codec::MAX_STRING_BYTES`].
    StringTooLong {
        /// Declared byte length.
        len: u32,
        /// The cap.
        max: u32,
    },
    /// A bit-vector's final word has bits set beyond its declared
    /// length.
    TrailingBits,
    /// A boolean field held something other than 0 or 1.
    BadBool {
        /// The byte found.
        got: u8,
    },
    /// An enum discriminant (error code, decode status) is out of range.
    BadDiscriminant {
        /// Which enum rejected it.
        what: &'static str,
        /// The byte found.
        got: u8,
    },
    /// A 64-bit count does not fit the host's `usize`.
    ValueOutOfRange {
        /// Which field rejected it.
        what: &'static str,
    },
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Truncated { need, have } => {
                write!(f, "truncated frame: need {need} bytes, have {have}")
            }
            WireError::BadMagic { got } => {
                write!(f, "bad magic bytes {got:02x?} (expected {MAGIC:02x?})")
            }
            WireError::ReservedNonZero { got } => {
                write!(f, "reserved header byte must be zero, got {got:#04x}")
            }
            WireError::Oversized { len, max } => {
                write!(f, "payload length {len} exceeds the cap {max}")
            }
            WireError::UnknownFrameType { got } => write!(f, "unknown frame type {got:#04x}"),
            WireError::TrailingGarbage { extra } => {
                write!(f, "{extra} trailing bytes after the last field")
            }
            WireError::BadUtf8 => write!(f, "string field is not valid UTF-8"),
            WireError::StringTooLong { len, max } => {
                write!(f, "string of {len} bytes exceeds the cap {max}")
            }
            WireError::TrailingBits => {
                write!(f, "bit vector has set bits beyond its declared length")
            }
            WireError::BadBool { got } => write!(f, "boolean field holds {got} (want 0 or 1)"),
            WireError::BadDiscriminant { what, got } => {
                write!(f, "invalid {what} discriminant {got}")
            }
            WireError::ValueOutOfRange { what } => {
                write!(f, "{what} does not fit this host's usize")
            }
        }
    }
}

impl std::error::Error for WireError {}

/// Typed error codes the server sends in [`Frame::Error`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorCode {
    /// The client's protocol version is not served here.
    UnsupportedVersion,
    /// No registered code matches the id or name.
    UnknownCode,
    /// Shard-queue backpressure (`SubmitError::Overloaded`); retry
    /// later.
    Overloaded,
    /// The per-connection in-flight cap was hit — the *client's* rate
    /// limit, distinct from service-wide [`ErrorCode::Overloaded`].
    RateLimited,
    /// The service (or this front-end) is shutting down.
    Shutdown,
    /// Single-shot operation on a streaming code or vice versa.
    WrongCodeKind,
    /// Submitted syndrome length does not match the registered code.
    SyndromeLength,
    /// The peer sent a frame that is malformed or invalid in the current
    /// protocol state (e.g. a second `Hello`).
    BadFrame,
    /// No open stream session has this id.
    UnknownSession,
    /// A stream-session operation failed mid-stream (the session is
    /// poisoned and closed).
    StreamFailed,
    /// Unexpected server-side failure.
    Internal,
}

impl ErrorCode {
    const ALL: [ErrorCode; 11] = [
        ErrorCode::UnsupportedVersion,
        ErrorCode::UnknownCode,
        ErrorCode::Overloaded,
        ErrorCode::RateLimited,
        ErrorCode::Shutdown,
        ErrorCode::WrongCodeKind,
        ErrorCode::SyndromeLength,
        ErrorCode::BadFrame,
        ErrorCode::UnknownSession,
        ErrorCode::StreamFailed,
        ErrorCode::Internal,
    ];

    fn as_u8(self) -> u8 {
        match self {
            ErrorCode::UnsupportedVersion => 1,
            ErrorCode::UnknownCode => 2,
            ErrorCode::Overloaded => 3,
            ErrorCode::RateLimited => 4,
            ErrorCode::Shutdown => 5,
            ErrorCode::WrongCodeKind => 6,
            ErrorCode::SyndromeLength => 7,
            ErrorCode::BadFrame => 8,
            ErrorCode::UnknownSession => 9,
            ErrorCode::StreamFailed => 10,
            ErrorCode::Internal => 11,
        }
    }

    fn from_u8(v: u8) -> Result<Self, WireError> {
        Self::ALL
            .into_iter()
            .find(|c| c.as_u8() == v)
            .ok_or(WireError::BadDiscriminant {
                what: "error code",
                got: v,
            })
    }

    /// Canonical lowercase name (stable; used in logs and tests).
    pub fn name(self) -> &'static str {
        match self {
            ErrorCode::UnsupportedVersion => "unsupported-version",
            ErrorCode::UnknownCode => "unknown-code",
            ErrorCode::Overloaded => "overloaded",
            ErrorCode::RateLimited => "rate-limited",
            ErrorCode::Shutdown => "shutdown",
            ErrorCode::WrongCodeKind => "wrong-code-kind",
            ErrorCode::SyndromeLength => "syndrome-length",
            ErrorCode::BadFrame => "bad-frame",
            ErrorCode::UnknownSession => "unknown-session",
            ErrorCode::StreamFailed => "stream-failed",
            ErrorCode::Internal => "internal",
        }
    }
}

impl fmt::Display for ErrorCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Why an accepted request produced no outcome — the wire mirror of the
/// server's `DecodeError`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DecodeFailure {
    /// The dispatch deadline passed before the scheduler pulled the
    /// request.
    DeadlineExceeded,
    /// The owning shard worker died before decoding it.
    WorkerLost,
}

impl DecodeFailure {
    /// Canonical lowercase name.
    pub fn name(self) -> &'static str {
        match self {
            DecodeFailure::DeadlineExceeded => "deadline-exceeded",
            DecodeFailure::WorkerLost => "worker-lost",
        }
    }
}

impl fmt::Display for DecodeFailure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One protocol message. See each variant for its payload layout; field
/// order in the docs is wire order.
#[derive(Debug, Clone, PartialEq)]
pub enum Frame {
    /// Client → server, first frame on a connection:
    /// `version:u16 | client:str`.
    Hello {
        /// The client's [`PROTOCOL_VERSION`].
        version: u16,
        /// Informational client label (shows up in server journals).
        client: String,
    },
    /// Server → client handshake acceptance:
    /// `version:u16 | node:str`.
    HelloAck {
        /// The version the server will speak (equals the client's).
        version: u16,
        /// The serving node's configured identity.
        node: String,
    },
    /// Client → server: resolve a registered code by name:
    /// `name:str`.
    CodeLookup {
        /// Registration name (e.g. `"gross"` or a campaign cell id).
        name: String,
    },
    /// Server → client lookup result:
    /// `code:u32 | syndrome_bits:u64 | name:str`.
    CodeInfo {
        /// Numeric id to use in [`Frame::Submit`]/[`Frame::StreamOpen`].
        code: u32,
        /// Syndrome length for single-shot codes; `0` for streaming
        /// codes (which take rounds, not bare syndromes).
        syndrome_bits: u64,
        /// The name echoed back.
        name: String,
    },
    /// Client → server single-shot decode request:
    /// `tag:u64 | code:u32 | deadline_micros:u64 | syndrome:bits`.
    Submit {
        /// Client-chosen correlation tag, echoed in the reply.
        tag: u64,
        /// Code id from [`Frame::CodeInfo`].
        code: u32,
        /// Dispatch deadline in microseconds from receipt; `0` = none.
        deadline_micros: u64,
        /// The syndrome, bit-packed into `u64` words.
        syndrome: BitVec,
    },
    /// Server → client decode answer:
    /// `tag:u64 | batch_size:u64 | status:u8 | [outcome]`.
    DecodeReply {
        /// The submission's tag.
        tag: u64,
        /// Live requests in the dispatched batch (0 for failures that
        /// never reached one).
        batch_size: u64,
        /// The decode outcome, or why the accepted request was dropped.
        result: Result<DecodeOutcome, DecodeFailure>,
    },
    /// Client → server: open a streaming session:
    /// `tag:u64 | code:u32`.
    StreamOpen {
        /// Correlation tag for the `StreamOpened`/`Error` answer.
        tag: u64,
        /// A *streaming* code id.
        code: u32,
    },
    /// Server → client: session granted:
    /// `tag:u64 | session:u64 | num_windows:u64 | num_round_blocks:u64
    /// | dets_per_round:u64 | num_mechanisms:u64`.
    StreamOpened {
        /// The `StreamOpen` tag.
        tag: u64,
        /// Server-assigned session id for subsequent frames.
        session: u64,
        /// Windows in the plan.
        num_windows: u64,
        /// Detector-round blocks the plan covers.
        num_round_blocks: u64,
        /// Bits per round block.
        dets_per_round: u64,
        /// Mechanism count (the final correction's length).
        num_mechanisms: u64,
    },
    /// Client → server: one measured detector-round block:
    /// `session:u64 | round:bits`.
    StreamRound {
        /// Session id from [`Frame::StreamOpened`].
        session: u64,
        /// `dets_per_round` detector bits.
        round: BitVec,
    },
    /// Server → client: acknowledges a round after any commit events it
    /// triggered were sent: `session:u64 | rounds_received:u64`.
    RoundAck {
        /// The session.
        session: u64,
        /// Rounds folded into the session so far.
        rounds_received: u64,
    },
    /// Server → client: one window committed:
    /// `session:u64 | window_index:u64 | start_round:u64 | end_round:u64
    /// | solved:u8 | mechanisms:u32-list`.
    CommitEvent {
        /// The session.
        session: u64,
        /// Which window of the plan committed.
        window_index: u64,
        /// First committed round block (inclusive).
        start_round: u64,
        /// One past the last committed round block.
        end_round: u64,
        /// Whether the window's correction satisfied its residual
        /// syndrome.
        solved: bool,
        /// Global mechanism ids committed *on*.
        mechanisms: Vec<u32>,
    },
    /// Client → server: all rounds pushed, flush the stream:
    /// `session:u64`.
    StreamFinish {
        /// The session to finish.
        session: u64,
    },
    /// Server → client: the stream's final artifacts (sent after the
    /// remaining commit events): `session:u64 | all_solved:u8 |
    /// error_hat:bits`.
    StreamFinished {
        /// The finished session's id (now closed).
        session: u64,
        /// Whether every window solved its residual syndrome.
        all_solved: bool,
        /// Global error estimate over all mechanisms.
        error_hat: BitVec,
    },
    /// Client → server: request the metrics exposition. Empty payload.
    MetricsRequest,
    /// Server → client: the node-labeled Prometheus-style text page:
    /// `text:str`.
    MetricsReply {
        /// Output of `render_exposition_for(node)`.
        text: String,
    },
    /// Server → client typed refusal:
    /// `tag:u64 | code:u8 | detail:str`.
    Error {
        /// The offending request's tag (`0` when not request-scoped —
        /// e.g. handshake failures; stream errors carry the session id).
        tag: u64,
        /// Machine-readable category.
        code: ErrorCode,
        /// Human-readable context.
        detail: String,
    },
}

// Frame type bytes. Kept dense and explicit so the hardening tests can
// sweep the full u8 range for unknown-type rejection.
const FT_HELLO: u8 = 0x01;
const FT_HELLO_ACK: u8 = 0x02;
const FT_CODE_LOOKUP: u8 = 0x03;
const FT_CODE_INFO: u8 = 0x04;
const FT_SUBMIT: u8 = 0x05;
const FT_DECODE_REPLY: u8 = 0x06;
const FT_STREAM_OPEN: u8 = 0x07;
const FT_STREAM_OPENED: u8 = 0x08;
const FT_STREAM_ROUND: u8 = 0x09;
const FT_ROUND_ACK: u8 = 0x0A;
const FT_COMMIT_EVENT: u8 = 0x0B;
const FT_STREAM_FINISH: u8 = 0x0C;
const FT_STREAM_FINISHED: u8 = 0x0D;
const FT_METRICS_REQUEST: u8 = 0x0E;
const FT_METRICS_REPLY: u8 = 0x0F;
const FT_ERROR: u8 = 0x10;

// Decode-reply status byte.
const STATUS_OK: u8 = 0;
const STATUS_DEADLINE: u8 = 1;
const STATUS_WORKER_LOST: u8 = 2;

fn usize_of(v: u64, what: &'static str) -> Result<usize, WireError> {
    usize::try_from(v).map_err(|_| WireError::ValueOutOfRange { what })
}

impl Frame {
    /// The frame's type byte on the wire.
    pub fn type_byte(&self) -> u8 {
        match self {
            Frame::Hello { .. } => FT_HELLO,
            Frame::HelloAck { .. } => FT_HELLO_ACK,
            Frame::CodeLookup { .. } => FT_CODE_LOOKUP,
            Frame::CodeInfo { .. } => FT_CODE_INFO,
            Frame::Submit { .. } => FT_SUBMIT,
            Frame::DecodeReply { .. } => FT_DECODE_REPLY,
            Frame::StreamOpen { .. } => FT_STREAM_OPEN,
            Frame::StreamOpened { .. } => FT_STREAM_OPENED,
            Frame::StreamRound { .. } => FT_STREAM_ROUND,
            Frame::RoundAck { .. } => FT_ROUND_ACK,
            Frame::CommitEvent { .. } => FT_COMMIT_EVENT,
            Frame::StreamFinish { .. } => FT_STREAM_FINISH,
            Frame::StreamFinished { .. } => FT_STREAM_FINISHED,
            Frame::MetricsRequest => FT_METRICS_REQUEST,
            Frame::MetricsReply { .. } => FT_METRICS_REPLY,
            Frame::Error { .. } => FT_ERROR,
        }
    }

    /// Stable display name of the frame type (logs, tests, client
    /// `UnexpectedFrame` errors).
    pub fn type_name(&self) -> &'static str {
        match self {
            Frame::Hello { .. } => "Hello",
            Frame::HelloAck { .. } => "HelloAck",
            Frame::CodeLookup { .. } => "CodeLookup",
            Frame::CodeInfo { .. } => "CodeInfo",
            Frame::Submit { .. } => "Submit",
            Frame::DecodeReply { .. } => "DecodeReply",
            Frame::StreamOpen { .. } => "StreamOpen",
            Frame::StreamOpened { .. } => "StreamOpened",
            Frame::StreamRound { .. } => "StreamRound",
            Frame::RoundAck { .. } => "RoundAck",
            Frame::CommitEvent { .. } => "CommitEvent",
            Frame::StreamFinish { .. } => "StreamFinish",
            Frame::StreamFinished { .. } => "StreamFinished",
            Frame::MetricsRequest => "MetricsRequest",
            Frame::MetricsReply { .. } => "MetricsReply",
            Frame::Error { .. } => "Error",
        }
    }

    fn encode_payload(&self, w: &mut Writer) {
        match self {
            Frame::Hello { version, client } => {
                w.u16(*version);
                w.string(client);
            }
            Frame::HelloAck { version, node } => {
                w.u16(*version);
                w.string(node);
            }
            Frame::CodeLookup { name } => w.string(name),
            Frame::CodeInfo {
                code,
                syndrome_bits,
                name,
            } => {
                w.u32(*code);
                w.u64(*syndrome_bits);
                w.string(name);
            }
            Frame::Submit {
                tag,
                code,
                deadline_micros,
                syndrome,
            } => {
                w.u64(*tag);
                w.u32(*code);
                w.u64(*deadline_micros);
                w.bits(syndrome);
            }
            Frame::DecodeReply {
                tag,
                batch_size,
                result,
            } => {
                w.u64(*tag);
                w.u64(*batch_size);
                match result {
                    Ok(outcome) => {
                        w.u8(STATUS_OK);
                        encode_outcome(w, outcome);
                    }
                    Err(DecodeFailure::DeadlineExceeded) => w.u8(STATUS_DEADLINE),
                    Err(DecodeFailure::WorkerLost) => w.u8(STATUS_WORKER_LOST),
                }
            }
            Frame::StreamOpen { tag, code } => {
                w.u64(*tag);
                w.u32(*code);
            }
            Frame::StreamOpened {
                tag,
                session,
                num_windows,
                num_round_blocks,
                dets_per_round,
                num_mechanisms,
            } => {
                w.u64(*tag);
                w.u64(*session);
                w.u64(*num_windows);
                w.u64(*num_round_blocks);
                w.u64(*dets_per_round);
                w.u64(*num_mechanisms);
            }
            Frame::StreamRound { session, round } => {
                w.u64(*session);
                w.bits(round);
            }
            Frame::RoundAck {
                session,
                rounds_received,
            } => {
                w.u64(*session);
                w.u64(*rounds_received);
            }
            Frame::CommitEvent {
                session,
                window_index,
                start_round,
                end_round,
                solved,
                mechanisms,
            } => {
                w.u64(*session);
                w.u64(*window_index);
                w.u64(*start_round);
                w.u64(*end_round);
                w.bool(*solved);
                w.u32_list(mechanisms);
            }
            Frame::StreamFinish { session } => w.u64(*session),
            Frame::StreamFinished {
                session,
                all_solved,
                error_hat,
            } => {
                w.u64(*session);
                w.bool(*all_solved);
                w.bits(error_hat);
            }
            Frame::MetricsRequest => {}
            Frame::MetricsReply { text } => w.string(text),
            Frame::Error { tag, code, detail } => {
                w.u64(*tag);
                w.u8(code.as_u8());
                w.string(detail);
            }
        }
    }

    fn decode_payload(frame_type: u8, payload: &[u8]) -> Result<Frame, WireError> {
        let mut r = Reader::new(payload);
        let frame = match frame_type {
            FT_HELLO => Frame::Hello {
                version: r.u16()?,
                client: r.string()?,
            },
            FT_HELLO_ACK => Frame::HelloAck {
                version: r.u16()?,
                node: r.string()?,
            },
            FT_CODE_LOOKUP => Frame::CodeLookup { name: r.string()? },
            FT_CODE_INFO => Frame::CodeInfo {
                code: r.u32()?,
                syndrome_bits: r.u64()?,
                name: r.string()?,
            },
            FT_SUBMIT => Frame::Submit {
                tag: r.u64()?,
                code: r.u32()?,
                deadline_micros: r.u64()?,
                syndrome: r.bits()?,
            },
            FT_DECODE_REPLY => {
                let tag = r.u64()?;
                let batch_size = r.u64()?;
                let result = match r.u8()? {
                    STATUS_OK => Ok(decode_outcome(&mut r)?),
                    STATUS_DEADLINE => Err(DecodeFailure::DeadlineExceeded),
                    STATUS_WORKER_LOST => Err(DecodeFailure::WorkerLost),
                    got => {
                        return Err(WireError::BadDiscriminant {
                            what: "decode status",
                            got,
                        })
                    }
                };
                Frame::DecodeReply {
                    tag,
                    batch_size,
                    result,
                }
            }
            FT_STREAM_OPEN => Frame::StreamOpen {
                tag: r.u64()?,
                code: r.u32()?,
            },
            FT_STREAM_OPENED => Frame::StreamOpened {
                tag: r.u64()?,
                session: r.u64()?,
                num_windows: r.u64()?,
                num_round_blocks: r.u64()?,
                dets_per_round: r.u64()?,
                num_mechanisms: r.u64()?,
            },
            FT_STREAM_ROUND => Frame::StreamRound {
                session: r.u64()?,
                round: r.bits()?,
            },
            FT_ROUND_ACK => Frame::RoundAck {
                session: r.u64()?,
                rounds_received: r.u64()?,
            },
            FT_COMMIT_EVENT => Frame::CommitEvent {
                session: r.u64()?,
                window_index: r.u64()?,
                start_round: r.u64()?,
                end_round: r.u64()?,
                solved: r.bool()?,
                mechanisms: r.u32_list()?,
            },
            FT_STREAM_FINISH => Frame::StreamFinish { session: r.u64()? },
            FT_STREAM_FINISHED => Frame::StreamFinished {
                session: r.u64()?,
                all_solved: r.bool()?,
                error_hat: r.bits()?,
            },
            FT_METRICS_REQUEST => Frame::MetricsRequest,
            FT_METRICS_REPLY => Frame::MetricsReply { text: r.string()? },
            FT_ERROR => Frame::Error {
                tag: r.u64()?,
                code: ErrorCode::from_u8(r.u8()?)?,
                detail: r.string()?,
            },
            got => return Err(WireError::UnknownFrameType { got }),
        };
        r.finish()?;
        Ok(frame)
    }

    /// Encodes the full frame (header + payload) into a fresh buffer.
    ///
    /// # Panics
    ///
    /// Panics if the payload exceeds `u32::MAX` bytes — unreachable for
    /// frames built from in-range service data.
    pub fn encode(&self) -> Vec<u8> {
        let mut pw = Writer::new();
        self.encode_payload(&mut pw);
        let payload = pw.into_bytes();
        let len = u32::try_from(payload.len()).expect("payload exceeds u32::MAX");
        let mut out = Vec::with_capacity(HEADER_LEN + payload.len());
        out.extend_from_slice(&MAGIC);
        out.push(self.type_byte());
        out.push(0); // reserved
        out.extend_from_slice(&len.to_le_bytes());
        out.extend_from_slice(&payload);
        out
    }

    /// Decodes one frame from the start of `buf` under the default
    /// payload cap, returning the frame and the bytes consumed.
    pub fn decode(buf: &[u8]) -> Result<(Frame, usize), WireError> {
        Self::decode_with_limit(buf, DEFAULT_MAX_PAYLOAD)
    }

    /// Decodes one frame from the start of `buf` with an explicit
    /// payload cap. `buf` may extend past the frame; the consumed byte
    /// count is returned so callers can advance. (A *frame* whose
    /// payload out-runs its declared length is still rejected with
    /// [`WireError::TrailingGarbage`] — the slack here is for buffers
    /// holding several frames back to back.)
    pub fn decode_with_limit(buf: &[u8], max_payload: u32) -> Result<(Frame, usize), WireError> {
        if buf.len() < HEADER_LEN {
            return Err(WireError::Truncated {
                need: HEADER_LEN,
                have: buf.len(),
            });
        }
        let (magic, rest) = buf.split_at(2);
        if magic != MAGIC {
            return Err(WireError::BadMagic {
                got: [magic[0], magic[1]],
            });
        }
        let frame_type = rest[0];
        if rest[1] != 0 {
            return Err(WireError::ReservedNonZero { got: rest[1] });
        }
        let len = u32::from_le_bytes(buf[4..8].try_into().unwrap());
        if len > max_payload {
            return Err(WireError::Oversized {
                len,
                max: max_payload,
            });
        }
        let total = HEADER_LEN + len as usize;
        if buf.len() < total {
            return Err(WireError::Truncated {
                need: total,
                have: buf.len(),
            });
        }
        let frame = Self::decode_payload(frame_type, &buf[HEADER_LEN..total])?;
        Ok((frame, total))
    }
}

fn encode_outcome(w: &mut Writer, o: &DecodeOutcome) {
    w.bits(&o.error_hat);
    w.bool(o.solved);
    w.u64(o.serial_iterations as u64);
    w.u64(o.critical_iterations as u64);
    w.bool(o.postprocessed);
    let t = &o.telemetry;
    w.u64(t.bp_iterations);
    w.bool(t.bp_converged);
    w.u64(t.oscillating_bits);
    w.u64(t.osd_invocations);
    w.u64(t.osd_candidates);
    w.u64(t.sf_trials);
    w.u64(t.window_spill_bits);
    w.u64(t.window_carried_priors);
}

fn decode_outcome(r: &mut Reader<'_>) -> Result<DecodeOutcome, WireError> {
    Ok(DecodeOutcome {
        error_hat: r.bits()?,
        solved: r.bool()?,
        serial_iterations: usize_of(r.u64()?, "serial_iterations")?,
        critical_iterations: usize_of(r.u64()?, "critical_iterations")?,
        postprocessed: r.bool()?,
        telemetry: DecodeTelemetry {
            bp_iterations: r.u64()?,
            bp_converged: r.bool()?,
            oscillating_bits: r.u64()?,
            osd_invocations: r.u64()?,
            osd_candidates: r.u64()?,
            sf_trials: r.u64()?,
            window_spill_bits: r.u64()?,
            window_carried_priors: r.u64()?,
        },
    })
}

/// How receiving a frame from a live stream can fail.
#[derive(Debug)]
pub enum RecvError {
    /// The transport failed (including EOF in the *middle* of a frame).
    Io(io::Error),
    /// The bytes arrived but do not form a valid frame.
    Malformed(WireError),
}

impl fmt::Display for RecvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RecvError::Io(e) => write!(f, "transport error: {e}"),
            RecvError::Malformed(e) => write!(f, "malformed frame: {e}"),
        }
    }
}

impl std::error::Error for RecvError {}

impl From<io::Error> for RecvError {
    fn from(e: io::Error) -> Self {
        RecvError::Io(e)
    }
}

impl From<WireError> for RecvError {
    fn from(e: WireError) -> Self {
        RecvError::Malformed(e)
    }
}

/// Writes one frame to a stream (no implicit flush — wrap the stream in
/// a `BufWriter` and flush at protocol turn boundaries).
pub fn write_frame(w: &mut impl Write, frame: &Frame) -> io::Result<()> {
    w.write_all(&frame.encode())
}

/// Reads one frame from a stream. Returns `Ok(None)` on a clean EOF at
/// a frame boundary; EOF inside a frame is
/// [`WireError::Truncated`]/[`RecvError::Io`] depending on where the
/// stream broke.
pub fn read_frame(r: &mut impl Read, max_payload: u32) -> Result<Option<Frame>, RecvError> {
    let mut header = [0u8; HEADER_LEN];
    let mut filled = 0usize;
    while filled < HEADER_LEN {
        let n = r.read(&mut header[filled..])?;
        if n == 0 {
            if filled == 0 {
                return Ok(None); // clean EOF between frames
            }
            return Err(WireError::Truncated {
                need: HEADER_LEN,
                have: filled,
            }
            .into());
        }
        filled += n;
    }
    if header[..2] != MAGIC {
        return Err(WireError::BadMagic {
            got: [header[0], header[1]],
        }
        .into());
    }
    if header[3] != 0 {
        return Err(WireError::ReservedNonZero { got: header[3] }.into());
    }
    let len = u32::from_le_bytes(header[4..8].try_into().unwrap());
    if len > max_payload {
        return Err(WireError::Oversized {
            len,
            max: max_payload,
        }
        .into());
    }
    let mut payload = vec![0u8; len as usize];
    r.read_exact(&mut payload).map_err(|e| {
        if e.kind() == io::ErrorKind::UnexpectedEof {
            RecvError::Malformed(WireError::Truncated {
                need: len as usize,
                have: 0,
            })
        } else {
            RecvError::Io(e)
        }
    })?;
    Frame::decode_payload(header[2], &payload)
        .map(Some)
        .map_err(Into::into)
}
