//! `qldpc-client` — a thin, blocking client for the networked decode
//! service.
//!
//! One [`Connection`] wraps one TCP or Unix-domain socket and performs
//! the protocol handshake on connect. All calls are synchronous
//! request/response: the service front-end answers a connection's
//! requests in submission order, so a blocking client never needs tag
//! matching — tags are still sent and verified as a protocol
//! cross-check.
//!
//! ```no_run
//! use qldpc_client::Connection;
//! use qldpc_gf2::BitVec;
//!
//! let mut conn = Connection::connect_tcp("127.0.0.1:9151", "example").unwrap();
//! let code = conn.lookup_code("gross").unwrap();
//! let syndrome = BitVec::zeros(code.syndrome_bits as usize);
//! let reply = conn.decode(code.id, &syndrome).unwrap();
//! assert!(reply.result.unwrap().solved);
//! ```

use qldpc_decoder_api::DecodeOutcome;
use qldpc_gf2::BitVec;
use qldpc_wire::{
    read_frame, write_frame, DecodeFailure, ErrorCode, Frame, RecvError, WireError,
    DEFAULT_MAX_PAYLOAD, PROTOCOL_VERSION,
};
use std::fmt;
use std::io::{self, BufReader, BufWriter, Read, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::os::unix::net::UnixStream;
use std::path::Path;
use std::time::Duration;

/// How a client call can fail.
#[derive(Debug)]
pub enum ClientError {
    /// The transport failed (connect, read, write, or EOF mid-frame).
    Io(io::Error),
    /// The server sent bytes that do not decode as a frame.
    Wire(WireError),
    /// The server answered with a typed [`Frame::Error`].
    Remote {
        /// Machine-readable category.
        code: ErrorCode,
        /// Server-side context string.
        detail: String,
    },
    /// The server sent a well-formed frame of the wrong type for the
    /// pending request — a protocol bug, not a user error.
    UnexpectedFrame {
        /// The frame type received.
        got: &'static str,
        /// The frame type the call was waiting for.
        want: &'static str,
    },
    /// The reply's correlation tag does not match the request.
    TagMismatch {
        /// Tag sent.
        sent: u64,
        /// Tag received.
        got: u64,
    },
}

impl fmt::Display for ClientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "transport error: {e}"),
            ClientError::Wire(e) => write!(f, "malformed server frame: {e}"),
            ClientError::Remote { code, detail } => {
                write!(f, "server refused ({code}): {detail}")
            }
            ClientError::UnexpectedFrame { got, want } => {
                write!(f, "protocol error: got {got} while waiting for {want}")
            }
            ClientError::TagMismatch { sent, got } => {
                write!(f, "protocol error: sent tag {sent}, reply carries {got}")
            }
        }
    }
}

impl std::error::Error for ClientError {}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> Self {
        ClientError::Io(e)
    }
}

impl From<RecvError> for ClientError {
    fn from(e: RecvError) -> Self {
        match e {
            RecvError::Io(e) => ClientError::Io(e),
            RecvError::Malformed(e) => ClientError::Wire(e),
        }
    }
}

enum Stream {
    Tcp(TcpStream),
    Unix(UnixStream),
}

impl Stream {
    fn try_clone(&self) -> io::Result<Stream> {
        Ok(match self {
            Stream::Tcp(s) => Stream::Tcp(s.try_clone()?),
            Stream::Unix(s) => Stream::Unix(s.try_clone()?),
        })
    }

    fn set_read_timeout(&self, t: Option<Duration>) -> io::Result<()> {
        match self {
            Stream::Tcp(s) => s.set_read_timeout(t),
            Stream::Unix(s) => s.set_read_timeout(t),
        }
    }
}

impl Read for Stream {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        match self {
            Stream::Tcp(s) => s.read(buf),
            Stream::Unix(s) => s.read(buf),
        }
    }
}

impl Write for Stream {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        match self {
            Stream::Tcp(s) => s.write(buf),
            Stream::Unix(s) => s.write(buf),
        }
    }

    fn flush(&mut self) -> io::Result<()> {
        match self {
            Stream::Tcp(s) => s.flush(),
            Stream::Unix(s) => s.flush(),
        }
    }
}

/// A registered code as the server describes it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CodeHandle {
    /// Numeric id for [`Connection::decode`]/[`Connection::open_stream`].
    pub id: u32,
    /// Syndrome length for single-shot codes; `0` for streaming codes.
    pub syndrome_bits: u64,
    /// The registration name, echoed back.
    pub name: String,
}

/// A successful decode round-trip.
#[derive(Debug, Clone, PartialEq)]
pub struct DecodeReply {
    /// Live requests in the micro-batch this decode rode in.
    pub batch_size: u64,
    /// The outcome, or why the accepted request was dropped
    /// (dispatch-deadline expiry, worker death).
    pub result: Result<DecodeOutcome, DecodeFailure>,
}

/// One committed window, relayed from the server's streaming session.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CommitEvent {
    /// Which window of the plan committed.
    pub window_index: u64,
    /// First committed round block (inclusive).
    pub start_round: u64,
    /// One past the last committed round block.
    pub end_round: u64,
    /// Whether the window's correction satisfied its residual syndrome.
    pub solved: bool,
    /// Global mechanism ids committed *on*.
    pub mechanisms: Vec<u32>,
}

/// Final artifacts of a finished stream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StreamOutcome {
    /// Whether every window solved its residual syndrome.
    pub all_solved: bool,
    /// Global error estimate over all mechanisms.
    pub error_hat: BitVec,
    /// Commit events flushed by the finish (earlier events were returned
    /// by the `push_round` that triggered them).
    pub events: Vec<CommitEvent>,
}

/// One blocking connection to a decode-service front-end.
///
/// Dropping the connection closes the socket; the server releases any
/// state (in-flight slots, open stream sessions) tied to it.
pub struct Connection {
    reader: BufReader<Stream>,
    writer: BufWriter<Stream>,
    node: String,
    next_tag: u64,
    max_payload: u32,
}

impl Connection {
    /// Connects over TCP and performs the protocol handshake.
    pub fn connect_tcp(addr: impl ToSocketAddrs, client: &str) -> Result<Self, ClientError> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Self::handshake(Stream::Tcp(stream), client)
    }

    /// Connects over a Unix-domain socket and performs the handshake.
    pub fn connect_uds(path: impl AsRef<Path>, client: &str) -> Result<Self, ClientError> {
        let stream = UnixStream::connect(path)?;
        Self::handshake(Stream::Unix(stream), client)
    }

    /// Connects to `addr`, inferring the transport from its shape: an
    /// address containing `/` is a Unix-domain socket path, anything
    /// else a TCP `host:port` — the convention every `--service` flag
    /// in the workspace follows.
    pub fn connect(addr: &str, client: &str) -> Result<Self, ClientError> {
        if addr.contains('/') {
            Self::connect_uds(addr, client)
        } else {
            Self::connect_tcp(addr, client)
        }
    }

    fn handshake(stream: Stream, client: &str) -> Result<Self, ClientError> {
        let write_half = stream.try_clone()?;
        let mut conn = Connection {
            reader: BufReader::new(stream),
            writer: BufWriter::new(write_half),
            node: String::new(),
            next_tag: 1,
            max_payload: DEFAULT_MAX_PAYLOAD,
        };
        conn.send(&Frame::Hello {
            version: PROTOCOL_VERSION,
            client: client.to_string(),
        })?;
        match conn.recv("HelloAck")? {
            Frame::HelloAck { version: _, node } => conn.node = node,
            other => return Err(conn.unexpected(other, "HelloAck")),
        }
        Ok(conn)
    }

    /// The serving node's configured identity, from the handshake.
    pub fn node(&self) -> &str {
        &self.node
    }

    /// Sets (or clears) a read timeout on replies. With a timeout set, a
    /// stalled server surfaces as [`ClientError::Io`] with kind
    /// `WouldBlock`/`TimedOut` instead of hanging the caller — the soak
    /// harness uses this as its deadlock tripwire.
    pub fn set_reply_timeout(&mut self, timeout: Option<Duration>) -> Result<(), ClientError> {
        self.reader.get_ref().set_read_timeout(timeout)?;
        Ok(())
    }

    fn fresh_tag(&mut self) -> u64 {
        let tag = self.next_tag;
        self.next_tag += 1;
        tag
    }

    fn send(&mut self, frame: &Frame) -> Result<(), ClientError> {
        write_frame(&mut self.writer, frame)?;
        self.writer.flush()?;
        Ok(())
    }

    fn recv(&mut self, want: &'static str) -> Result<Frame, ClientError> {
        match read_frame(&mut self.reader, self.max_payload)? {
            Some(frame) => Ok(frame),
            None => Err(ClientError::Io(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                format!("connection closed while waiting for {want}"),
            ))),
        }
    }

    /// Normalizes a wrong-type frame into the right error: typed server
    /// refusals become [`ClientError::Remote`], anything else
    /// [`ClientError::UnexpectedFrame`].
    fn unexpected(&self, frame: Frame, want: &'static str) -> ClientError {
        match frame {
            Frame::Error { code, detail, .. } => ClientError::Remote { code, detail },
            other => ClientError::UnexpectedFrame {
                got: other.type_name(),
                want,
            },
        }
    }

    /// Resolves a registered code by name.
    pub fn lookup_code(&mut self, name: &str) -> Result<CodeHandle, ClientError> {
        self.send(&Frame::CodeLookup {
            name: name.to_string(),
        })?;
        match self.recv("CodeInfo")? {
            Frame::CodeInfo {
                code,
                syndrome_bits,
                name,
            } => Ok(CodeHandle {
                id: code,
                syndrome_bits,
                name,
            }),
            other => Err(self.unexpected(other, "CodeInfo")),
        }
    }

    /// Decodes one syndrome with no dispatch deadline.
    pub fn decode(&mut self, code: u32, syndrome: &BitVec) -> Result<DecodeReply, ClientError> {
        self.decode_with_deadline(code, syndrome, None)
    }

    /// Decodes one syndrome, optionally bounding how long it may wait in
    /// the service queue before dispatch (enforced server-side).
    pub fn decode_with_deadline(
        &mut self,
        code: u32,
        syndrome: &BitVec,
        deadline: Option<Duration>,
    ) -> Result<DecodeReply, ClientError> {
        let tag = self.fresh_tag();
        self.send(&Frame::Submit {
            tag,
            code,
            deadline_micros: deadline.map_or(0, |d| d.as_micros().min(u64::MAX as u128) as u64),
            syndrome: syndrome.clone(),
        })?;
        match self.recv("DecodeReply")? {
            Frame::DecodeReply {
                tag: got,
                batch_size,
                result,
            } => {
                if got != tag {
                    return Err(ClientError::TagMismatch { sent: tag, got });
                }
                Ok(DecodeReply { batch_size, result })
            }
            other => Err(self.unexpected(other, "DecodeReply")),
        }
    }

    /// Fetches the node-labeled metrics exposition text.
    pub fn metrics(&mut self) -> Result<String, ClientError> {
        self.send(&Frame::MetricsRequest)?;
        match self.recv("MetricsReply")? {
            Frame::MetricsReply { text } => Ok(text),
            other => Err(self.unexpected(other, "MetricsReply")),
        }
    }

    /// Opens a streaming session on a streaming-registered code. The
    /// connection is borrowed for the stream's lifetime — one stream at
    /// a time per connection, matching the blocking model.
    pub fn open_stream(&mut self, code: u32) -> Result<RemoteStream<'_>, ClientError> {
        let tag = self.fresh_tag();
        self.send(&Frame::StreamOpen { tag, code })?;
        match self.recv("StreamOpened")? {
            Frame::StreamOpened {
                tag: got,
                session,
                num_windows,
                num_round_blocks,
                dets_per_round,
                num_mechanisms,
            } => {
                if got != tag {
                    return Err(ClientError::TagMismatch { sent: tag, got });
                }
                Ok(RemoteStream {
                    conn: self,
                    session,
                    num_windows,
                    num_round_blocks,
                    dets_per_round,
                    num_mechanisms,
                    finished: false,
                })
            }
            other => Err(self.unexpected(other, "StreamOpened")),
        }
    }
}

/// A server-side streaming decode session, driven round by round.
///
/// Mirrors the in-process `StreamSession` API: `push_round` returns the
/// commit events that round triggered, `finish` flushes the tail and
/// returns the final artifacts. Dropping without finishing abandons the
/// server-side session (the server reaps it with the connection).
pub struct RemoteStream<'a> {
    conn: &'a mut Connection,
    session: u64,
    num_windows: u64,
    num_round_blocks: u64,
    dets_per_round: u64,
    num_mechanisms: u64,
    finished: bool,
}

impl RemoteStream<'_> {
    /// Windows in the server's decoding plan.
    pub fn num_windows(&self) -> u64 {
        self.num_windows
    }

    /// Detector-round blocks the plan expects before `finish`.
    pub fn num_round_blocks(&self) -> u64 {
        self.num_round_blocks
    }

    /// Bits each pushed round must carry.
    pub fn dets_per_round(&self) -> u64 {
        self.dets_per_round
    }

    /// Mechanism count — the final `error_hat`'s length.
    pub fn num_mechanisms(&self) -> u64 {
        self.num_mechanisms
    }

    fn event_from(&self, frame: Frame) -> Result<CommitEvent, ClientError> {
        match frame {
            Frame::CommitEvent {
                session: _,
                window_index,
                start_round,
                end_round,
                solved,
                mechanisms,
            } => Ok(CommitEvent {
                window_index,
                start_round,
                end_round,
                solved,
                mechanisms,
            }),
            other => Err(self.conn.unexpected(other, "CommitEvent")),
        }
    }

    /// Pushes one measured detector-round block; returns the commit
    /// events it triggered (often none — windows commit on overlap
    /// boundaries).
    pub fn push_round(&mut self, round: &BitVec) -> Result<Vec<CommitEvent>, ClientError> {
        self.conn.send(&Frame::StreamRound {
            session: self.session,
            round: round.clone(),
        })?;
        let mut events = Vec::new();
        loop {
            match self.conn.recv("RoundAck")? {
                Frame::RoundAck { .. } => return Ok(events),
                frame @ Frame::CommitEvent { .. } => events.push(self.event_from(frame)?),
                other => return Err(self.conn.unexpected(other, "RoundAck")),
            }
        }
    }

    /// Flushes the stream: commits every remaining window and returns
    /// the final artifacts. Consumes the stream; the server closes the
    /// session.
    pub fn finish(mut self) -> Result<StreamOutcome, ClientError> {
        self.finished = true;
        self.conn.send(&Frame::StreamFinish {
            session: self.session,
        })?;
        let mut events = Vec::new();
        loop {
            match self.conn.recv("StreamFinished")? {
                Frame::StreamFinished {
                    session: _,
                    all_solved,
                    error_hat,
                } => {
                    return Ok(StreamOutcome {
                        all_solved,
                        error_hat,
                        events,
                    })
                }
                frame @ Frame::CommitEvent { .. } => events.push(self.event_from(frame)?),
                other => return Err(self.conn.unexpected(other, "StreamFinished")),
            }
        }
    }
}

/// A [`SyndromeDecoder`](qldpc_decoder_api::SyndromeDecoder) that
/// forwards every decode to a remote service — the adapter that lets
/// decoder-driven harnesses (the Monte Carlo runners, the campaign
/// engine) run unchanged against a networked decoder.
///
/// The remote decode is bit-identical to the in-process one for
/// deterministic decoders (BP, BP-OSD); stateful families whose decode
/// consumes a local RNG stream (BP-SF) are *not* reproducible across
/// the wire, because the server's decoder instances consume their own
/// streams.
///
/// `decode_syndrome` has no error channel, so transport failures and
/// typed server refusals panic with the underlying [`ClientError`] —
/// a remote decode harness treats a lost service as fatal, exactly
/// like a lost worker thread.
pub struct RemoteDecoder {
    conn: Connection,
    code: CodeHandle,
}

impl RemoteDecoder {
    /// Connects to `addr` (see [`Connection::connect`]) and binds to
    /// the code registered under `code_name`.
    pub fn connect(addr: &str, code_name: &str) -> Result<Self, ClientError> {
        let mut conn = Connection::connect(addr, "remote-decoder")?;
        let code = conn.lookup_code(code_name)?;
        Ok(RemoteDecoder { conn, code })
    }

    /// The remote code this decoder is bound to.
    pub fn code(&self) -> &CodeHandle {
        &self.code
    }
}

impl qldpc_decoder_api::SyndromeDecoder for RemoteDecoder {
    fn decode_syndrome(&mut self, syndrome: &BitVec) -> DecodeOutcome {
        let reply = self
            .conn
            .decode(self.code.id, syndrome)
            .unwrap_or_else(|e| panic!("remote decode of '{}' failed: {e}", self.code.name));
        match reply.result {
            Ok(outcome) => outcome,
            Err(failure) => panic!("remote decode of '{}' dropped: {failure}", self.code.name),
        }
    }

    fn label(&self) -> String {
        format!("remote:{}@{}", self.code.name, self.conn.node())
    }
}

/// A [`DecoderFactory`](qldpc_decoder_api::DecoderFactory) whose every
/// instance is a fresh connection to `addr` decoding the code
/// registered there as `code_name`. The check matrix and priors the
/// harness passes are ignored — the server's registration is
/// authoritative — so the caller must register the *same* code
/// server-side for the results to mean anything.
///
/// Panics (inside the factory) if the service is unreachable or the
/// code is not registered.
pub fn remote_decoder_factory(
    addr: impl Into<String>,
    code_name: impl Into<String>,
) -> qldpc_decoder_api::DecoderFactory {
    let (addr, code_name) = (addr.into(), code_name.into());
    Box::new(move |_h, _priors| {
        Box::new(
            RemoteDecoder::connect(&addr, &code_name)
                .unwrap_or_else(|e| panic!("connecting remote decoder '{code_name}': {e}")),
        )
    })
}
