//! Property tests for the BP decoder contract.

use proptest::prelude::*;
use qldpc_bp::{BpConfig, DampingSchedule, MinSumDecoder, Schedule};
use qldpc_gf2::{BitVec, SparseBitMatrix};

fn sparse_matrix() -> impl Strategy<Value = SparseBitMatrix> {
    (2usize..10, 4usize..20).prop_flat_map(|(rows, cols)| {
        proptest::collection::vec(
            proptest::collection::btree_set(0..cols, 1..=cols.min(4)),
            rows,
        )
        .prop_map(move |r| {
            let lists: Vec<Vec<usize>> = r.into_iter().map(|s| s.into_iter().collect()).collect();
            SparseBitMatrix::from_row_indices(lists.len(), cols, &lists)
        })
    })
}

fn error_for(cols: usize) -> impl Strategy<Value = Vec<bool>> {
    proptest::collection::vec(proptest::bool::weighted(0.2), cols)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The fundamental contract: converged ⇒ H·ê = s, and the iteration
    /// count respects the budget. Checked for every schedule × damping
    /// combination.
    #[test]
    fn decode_contract(h in sparse_matrix(), seed in 0u64..100) {
        use rand::{Rng, SeedableRng};
        let n = h.cols();
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let mut e = BitVec::zeros(n);
        for i in 0..n {
            if rng.random_bool(0.2) { e.set(i, true); }
        }
        let s = h.mul_vec(&e);
        for schedule in [Schedule::Flooding, Schedule::Layered] {
            for damping in [DampingSchedule::Adaptive, DampingSchedule::Fixed(0.75)] {
                let config = BpConfig {
                    max_iters: 25,
                    schedule,
                    damping,
                    track_oscillations: true,
                    ..BpConfig::default()
                };
                let mut dec = MinSumDecoder::new(&h, &vec![0.2; n], config);
                let r = dec.decode(&s);
                prop_assert!(r.iterations >= 1 && r.iterations <= 25);
                prop_assert_eq!(r.posteriors.len(), n);
                prop_assert_eq!(r.flip_counts.len(), n);
                if r.converged {
                    prop_assert_eq!(h.mul_vec(&r.error_hat), s.clone());
                }
                for &fc in &r.flip_counts {
                    prop_assert!(fc as usize <= r.iterations);
                }
            }
        }
    }

    /// The zero syndrome always converges to the zero error in one
    /// iteration regardless of the graph.
    #[test]
    fn zero_syndrome_trivial(h in sparse_matrix(), e in error_for(20)) {
        let _ = e;
        let n = h.cols();
        let mut dec = MinSumDecoder::new(&h, &vec![0.1; n], BpConfig::default());
        let r = dec.decode(&BitVec::zeros(h.rows()));
        prop_assert!(r.converged);
        prop_assert_eq!(r.iterations, 1);
        prop_assert!(r.error_hat.is_zero());
    }

    /// Decoding is a pure function of (syndrome, config): repeated calls
    /// agree bit for bit.
    #[test]
    fn decode_is_deterministic(h in sparse_matrix(), seed in 0u64..50) {
        use rand::{Rng, SeedableRng};
        let n = h.cols();
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let mut s = BitVec::zeros(h.rows());
        for i in 0..h.rows() {
            if rng.random_bool(0.5) { s.set(i, true); }
        }
        let mut dec = MinSumDecoder::new(&h, &vec![0.15; n], BpConfig::default());
        let r1 = dec.decode(&s);
        let r2 = dec.decode(&s);
        prop_assert_eq!(r1.error_hat, r2.error_hat);
        prop_assert_eq!(r1.iterations, r2.iterations);
        prop_assert_eq!(r1.converged, r2.converged);
    }

    /// Priors shift posteriors monotonically: with error probability 0.5
    /// the channel is uninformative and the prior LLR vanishes.
    #[test]
    fn prior_llr_sign(p in 0.0001f64..0.9999) {
        let llr = qldpc_bp::prior_llr(p);
        if p < 0.5 {
            prop_assert!(llr > 0.0);
        } else if p > 0.5 {
            prop_assert!(llr < 0.0);
        }
    }
}
