//! Property suite pinning the batched kernel to the scalar decoder —
//! at **both** message precisions.
//!
//! The contract: for any code, any syndromes, both schedules, both
//! damping modes (and both check-node rules, with and without posterior
//! memory), the batch engine's output — posteriors, iteration counts,
//! convergence flags, oscillation flip counts — is **bit-identical** to
//! decoding each shot with the scalar decoder *of the same precision*.
//! Every strategy below runs once with `f64` messages and once with
//! `f32` messages; posteriors are compared through the exact bit
//! patterns (`Llr::to_bits_u64`), so even a last-ulp reassociation in
//! either precision's batch kernel fails the suite. There is **no**
//! cross-precision assertion — f32 legitimately diverges from f64.
//!
//! On top of the precision axis, every configuration is forced through
//! **every SIMD dispatch target compiled into this binary**
//! ([`qldpc_bp::supported_simd_targets`]): the scalar oracle, and on
//! x86_64 the AVX2 and (when the CPU has it) AVX-512 wide kernels. The
//! explicit-SIMD kernels promise the *same bits* as the scalar path, so
//! one scalar reference comparison per target pins all of them at once.

use proptest::prelude::*;
use qldpc_bp::{
    BatchMinSumDecoderOf, BpAlgorithm, BpConfig, BpResult, DampingSchedule, Llr, MinSumDecoder,
    MinSumDecoderOf, Schedule,
};
use qldpc_gf2::{BitVec, SparseBitMatrix};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn sparse_matrix() -> impl Strategy<Value = SparseBitMatrix> {
    (2usize..10, 4usize..20).prop_flat_map(|(rows, cols)| {
        proptest::collection::vec(
            proptest::collection::btree_set(0..cols, 1..=cols.min(4)),
            rows,
        )
        .prop_map(move |r| {
            let lists: Vec<Vec<usize>> = r.into_iter().map(|s| s.into_iter().collect()).collect();
            SparseBitMatrix::from_row_indices(lists.len(), cols, &lists)
        })
    })
}

/// A mixed batch: syndromes of random errors (mostly decodable) plus raw
/// random syndromes (often inconsistent, exercising non-convergence).
fn random_batch(h: &SparseBitMatrix, shots: usize, seed: u64) -> Vec<BitVec> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..shots)
        .map(|i| {
            if i % 3 == 2 {
                let mut s = BitVec::zeros(h.rows());
                for c in 0..h.rows() {
                    if rng.random_bool(0.5) {
                        s.set(c, true);
                    }
                }
                s
            } else {
                let mut e = BitVec::zeros(h.cols());
                for v in 0..h.cols() {
                    if rng.random_bool(0.2) {
                        e.set(v, true);
                    }
                }
                h.mul_vec(&e)
            }
        })
        .collect()
}

fn assert_bit_identical<T: Llr>(batch: &BpResult<T>, scalar: &BpResult<T>, ctx: &str) {
    assert_eq!(batch.converged, scalar.converged, "{ctx}: converged");
    assert_eq!(batch.iterations, scalar.iterations, "{ctx}: iterations");
    assert_eq!(batch.error_hat, scalar.error_hat, "{ctx}: error_hat");
    assert_eq!(batch.flip_counts, scalar.flip_counts, "{ctx}: flip_counts");
    assert_eq!(batch.posteriors.len(), scalar.posteriors.len(), "{ctx}");
    for (v, (b, s)) in batch.posteriors.iter().zip(&scalar.posteriors).enumerate() {
        assert_eq!(
            b.to_bits_u64(),
            s.to_bits_u64(),
            "{ctx}: posterior of variable {v} diverged ({b:?} vs {s:?})"
        );
    }
}

fn check_config_at<T: Llr>(h: &SparseBitMatrix, syndromes: &[BitVec], config: BpConfig) {
    let priors = vec![0.2; h.cols()];
    let mut batch = BatchMinSumDecoderOf::<T>::new(h, &priors, config);
    let mut scalar = MinSumDecoderOf::<T>::new(h, &priors, config);
    let results = batch.decode_batch_results(syndromes);
    assert_eq!(results.len(), syndromes.len());
    for (i, (rb, s)) in results.iter().zip(syndromes).enumerate() {
        let rs = scalar.decode(s);
        assert_bit_identical(
            rb,
            &rs,
            &format!("shot {i} at {} under {config:?}", T::PRECISION),
        );
    }
}

/// Runs one configuration's batch≡scalar check at f64 *and* f32, with
/// the batch engine pinned to every compiled-in SIMD dispatch target in
/// turn. The scalar reference always runs the scalar kernel, so each
/// pass proves one wide target reproduces the oracle bits exactly.
fn check_config(h: &SparseBitMatrix, syndromes: &[BitVec], config: BpConfig) {
    for &target in qldpc_bp::supported_simd_targets() {
        let forced = BpConfig {
            simd_target: Some(target),
            ..config
        };
        check_config_at::<f64>(h, syndromes, forced);
        check_config_at::<f32>(h, syndromes, forced);
    }
}

/// Tiling invisibility at one precision: a narrow lane cap (forcing
/// interior tiles and a ragged tail) yields the same bits as one wide
/// tile — on every dispatch target, since a cap below the vector width
/// exercises the wide kernels' ragged-tail rounding.
fn check_lane_cap_at<T: Llr>(h: &SparseBitMatrix, syndromes: &[BitVec], cap: usize) {
    let priors = vec![0.2; h.cols()];
    for &target in qldpc_bp::supported_simd_targets() {
        let config = BpConfig {
            max_iters: 20,
            track_oscillations: true,
            simd_target: Some(target),
            ..BpConfig::default()
        };
        let mut wide = BatchMinSumDecoderOf::<T>::new(h, &priors, config);
        let mut narrow = BatchMinSumDecoderOf::<T>::new(h, &priors, config);
        narrow.set_max_lanes(cap);
        let rw = wide.decode_batch_results(syndromes);
        let rn = narrow.decode_batch_results(syndromes);
        for (i, (a, b)) in rw.iter().zip(&rn).enumerate() {
            assert_bit_identical(
                b,
                a,
                &format!("shot {i} at lane cap {cap} on {target} ({})", T::PRECISION),
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Both schedules × both damping modes × both precisions,
    /// oscillation tracking on.
    #[test]
    fn batch_is_bit_identical_to_scalar(
        h in sparse_matrix(),
        shots in 1usize..12,
        seed in 0u64..1000,
    ) {
        let syndromes = random_batch(&h, shots, seed);
        for schedule in [Schedule::Flooding, Schedule::Layered] {
            for damping in [DampingSchedule::Adaptive, DampingSchedule::Fixed(0.75)] {
                check_config(&h, &syndromes, BpConfig {
                    max_iters: 25,
                    schedule,
                    damping,
                    track_oscillations: true,
                    ..BpConfig::default()
                });
            }
        }
    }

    /// The exact sum-product rule and the posterior-memory term go
    /// through the same shared core and must stay bit-identical too —
    /// in both precisions (sum-product exercises the per-precision
    /// tanh/atanh guard constants).
    #[test]
    fn sum_product_and_memory_stay_bit_identical(
        h in sparse_matrix(),
        shots in 1usize..8,
        seed in 0u64..1000,
    ) {
        let syndromes = random_batch(&h, shots, seed);
        for schedule in [Schedule::Flooding, Schedule::Layered] {
            check_config(&h, &syndromes, BpConfig {
                max_iters: 15,
                schedule,
                algorithm: BpAlgorithm::SumProduct,
                track_oscillations: true,
                ..BpConfig::default()
            });
        }
        check_config(&h, &syndromes, BpConfig {
            max_iters: 15,
            memory_strength: 0.4,
            track_oscillations: true,
            ..BpConfig::default()
        });
    }

    /// Tiling must be invisible at either precision.
    #[test]
    fn lane_cap_does_not_change_results(
        h in sparse_matrix(),
        shots in 1usize..12,
        seed in 0u64..1000,
        cap in 1usize..5,
    ) {
        let syndromes = random_batch(&h, shots, seed);
        check_lane_cap_at::<f64>(&h, &syndromes, cap);
        check_lane_cap_at::<f32>(&h, &syndromes, cap);
    }
}

// ---------------------------------------------------------------------
// Batch-contract edge cases (deterministic unit tests, both precisions).
// ---------------------------------------------------------------------

fn repetition_h(n: usize) -> SparseBitMatrix {
    let rows: Vec<Vec<usize>> = (0..n - 1).map(|i| vec![i, i + 1]).collect();
    SparseBitMatrix::from_row_indices(n - 1, n, &rows)
}

fn empty_batch_returns_empty_at<T: Llr>() {
    let h = repetition_h(7);
    let mut dec = BatchMinSumDecoderOf::<T>::new(&h, &[0.05; 7], BpConfig::default());
    assert!(dec.decode_batch_results(&[]).is_empty());
}

#[test]
fn empty_batch_returns_empty() {
    empty_batch_returns_empty_at::<f64>();
    empty_batch_returns_empty_at::<f32>();
}

/// All-zero syndromes converge on the kernel's first pass (iteration 1 —
/// the decoder's iteration counter is 1-based and the convergence check
/// runs after the first message-passing sweep, matching the scalar
/// decoder exactly) with the zero correction.
fn all_zero_syndromes_converge_immediately_at<T: Llr>() {
    let h = repetition_h(9);
    let mut dec = BatchMinSumDecoderOf::<T>::new(&h, &[0.05; 9], BpConfig::default());
    let syndromes = vec![BitVec::zeros(8); 6];
    for r in dec.decode_batch_results(&syndromes) {
        assert!(r.converged);
        assert_eq!(r.iterations, 1);
        assert!(r.error_hat.is_zero());
    }
}

#[test]
fn all_zero_syndromes_converge_immediately() {
    all_zero_syndromes_converge_immediately_at::<f64>();
    all_zero_syndromes_converge_immediately_at::<f32>();
}

/// A batch where every lane fails still reports per-lane iteration
/// counts (each lane exhausts its own budget), and a convergent lane in
/// the middle keeps its early-exit count.
fn failing_lanes_report_per_lane_iterations_at<T: Llr>() {
    // Two identical checks over {0, 1}: the syndrome (1, 0) is
    // inconsistent, so no hard decision can ever satisfy it.
    let h = SparseBitMatrix::from_row_indices(2, 4, &[vec![0, 1], vec![0, 1]]);
    let bad = BitVec::from_indices(2, &[0]);
    let config = BpConfig {
        max_iters: 13,
        ..BpConfig::default()
    };

    let mut dec = BatchMinSumDecoderOf::<T>::new(&h, &[0.1; 4], config);
    let all_bad = vec![bad.clone(); 5];
    for r in dec.decode_batch_results(&all_bad) {
        assert!(!r.converged);
        assert_eq!(r.iterations, 13);
    }

    // Mixed batch: the zero-syndrome lane converges at iteration 1 while
    // its neighbors run to exhaustion.
    let mixed = vec![bad.clone(), BitVec::zeros(2), bad];
    let rs = dec.decode_batch_results(&mixed);
    assert_eq!(
        rs.iter().map(|r| r.iterations).collect::<Vec<_>>(),
        vec![13, 1, 13]
    );
    assert_eq!(
        rs.iter().map(|r| r.converged).collect::<Vec<_>>(),
        vec![false, true, false]
    );
}

#[test]
fn failing_lanes_report_per_lane_iterations() {
    failing_lanes_report_per_lane_iterations_at::<f64>();
    failing_lanes_report_per_lane_iterations_at::<f32>();
}

/// The lane-isolation contract: the same syndrome decoded at lane 0 and
/// at lane B−1 of one batch call must produce identical outcomes, no
/// matter what the other lanes carry or when they converge.
fn no_state_leaks_across_lanes_at<T: Llr>() {
    let h = repetition_h(9);
    // Forced per target: a retiring lane's column keeps being touched by
    // the wide kernels' padded tail, which must never bleed into a
    // survivor.
    for &target in qldpc_bp::supported_simd_targets() {
        let config = BpConfig {
            max_iters: 30,
            track_oscillations: true,
            simd_target: Some(target),
            ..BpConfig::default()
        };
        let mut dec = BatchMinSumDecoderOf::<T>::new(&h, &[0.05; 9], config);
        let probe = h.mul_vec(&BitVec::from_indices(9, &[2, 6]));
        let mut syndromes = vec![probe.clone()];
        // Interior lanes: a zero syndrome (converges instantly), a hard
        // two-bit error, and an inconsistent-looking random syndrome.
        syndromes.push(BitVec::zeros(8));
        syndromes.push(h.mul_vec(&BitVec::from_indices(9, &[3, 4])));
        syndromes.push(BitVec::from_indices(8, &[0, 3, 5]));
        syndromes.push(probe.clone());
        let rs = dec.decode_batch_results(&syndromes);
        let (first, last) = (&rs[0], &rs[rs.len() - 1]);
        assert_eq!(first.converged, last.converged, "{target}");
        assert_eq!(first.iterations, last.iterations, "{target}");
        assert_eq!(first.error_hat, last.error_hat, "{target}");
        assert_eq!(first.flip_counts, last.flip_counts, "{target}");
        for (a, b) in first.posteriors.iter().zip(&last.posteriors) {
            assert_eq!(a.to_bits_u64(), b.to_bits_u64(), "{target}");
        }
    }
}

#[test]
fn no_state_leaks_across_lanes() {
    no_state_leaks_across_lanes_at::<f64>();
    no_state_leaks_across_lanes_at::<f32>();
}

/// The cached engine behind the trait override must honor
/// `config_mut`/`set_priors` changes made between batched calls — at
/// either precision.
fn trait_decode_batch_tracks_changes_at<T: Llr>() {
    use qldpc_bp::SyndromeDecoder;
    let h = repetition_h(9);
    let mut dec = MinSumDecoderOf::<T>::new(&h, &[0.05; 9], BpConfig::default());
    let syndromes = random_batch(&h, 6, 17);
    let _warm_up_cache = dec.decode_batch(&syndromes);

    dec.config_mut().max_iters = 3;
    dec.set_priors(&[0.2; 9]);
    let fresh = MinSumDecoderOf::<T>::new(
        &h,
        &[0.2; 9],
        BpConfig {
            max_iters: 3,
            ..BpConfig::default()
        },
    );
    let batched = dec.decode_batch(&syndromes);
    let mut looped = fresh;
    for (i, (out, s)) in batched.iter().zip(&syndromes).enumerate() {
        let l = looped.decode_syndrome(s);
        assert_eq!(out.solved, l.solved, "shot {i}");
        assert_eq!(out.error_hat, l.error_hat, "shot {i}");
        assert_eq!(out.serial_iterations, l.serial_iterations, "shot {i}");
    }
}

#[test]
fn trait_decode_batch_tracks_config_and_prior_changes() {
    trait_decode_batch_tracks_changes_at::<f64>();
    trait_decode_batch_tracks_changes_at::<f32>();
}

/// The `SyndromeDecoder::decode_batch` override on the scalar decoder
/// routes through the interleaved kernel and must equal the default
/// sequential loop it replaces.
#[test]
fn trait_decode_batch_matches_sequential_loop() {
    use qldpc_bp::SyndromeDecoder;
    let h = repetition_h(9);
    let config = BpConfig {
        max_iters: 30,
        ..BpConfig::default()
    };
    let mut batched = MinSumDecoder::new(&h, &[0.05; 9], config);
    let mut looped = MinSumDecoder::new(&h, &[0.05; 9], config);
    let syndromes = random_batch(&h, 9, 41);
    let b = batched.decode_batch(&syndromes);
    for (i, (out, s)) in b.iter().zip(&syndromes).enumerate() {
        let l = looped.decode_syndrome(s);
        assert_eq!(out.solved, l.solved, "shot {i}");
        assert_eq!(out.error_hat, l.error_hat, "shot {i}");
        assert_eq!(out.serial_iterations, l.serial_iterations, "shot {i}");
        assert_eq!(out.critical_iterations, l.critical_iterations, "shot {i}");
    }
}
