//! Belief-propagation decoders for quantum LDPC codes.
//!
//! This crate implements the normalized min-sum decoder the BP-SF paper
//! builds on (its Eq. 4–8), with:
//!
//! * **flooding** and **layered** (serial, row-sequential) schedules —
//!   the layered variant is required to reproduce Fig. 8,
//! * the paper's **adaptive damping factor** `α_i = 1 − 2⁻ⁱ` (a fixed
//!   normalization factor is available for ablations),
//! * **oscillation tracking**: per-bit flip counts of the hard decision
//!   across iterations, the signal BP-SF mines for candidate bits,
//! * per-iteration syndrome checks with early exit and exact iteration
//!   accounting,
//! * a **shot-interleaved batch kernel** ([`BatchMinSumDecoder`]): `B`
//!   syndromes decoded per call over structure-of-arrays message slabs,
//!   walking the Tanner graph once per iteration for all shots —
//!   bit-identical to per-shot decoding (the paper's throughput story),
//! * **precision-generic messages** (the sealed [`Llr`] trait): every
//!   decoder exists at `f64` (the reference — [`MinSumDecoder`],
//!   [`BatchMinSumDecoder`]) and at `f32` ([`MinSumDecoderF32`],
//!   [`BatchMinSumDecoderF32`]), where half-width slabs double the
//!   batch kernel's effective SIMD lanes and halve its memory traffic.
//!
//! # The scalar ≡ batch bit-identity contract
//!
//! Batched decoding is **bit-identical** to per-shot decoding at the
//! same precision: for every lane, [`BatchMinSumDecoder`] produces the
//! same posteriors (to the last ulp), iteration counts, convergence
//! flags and oscillation sets as a scalar [`MinSumDecoder`] decode of
//! that lane's syndrome. This is structural, not coincidental — both
//! paths run the one width-generic check-update core in
//! `crates/bp/src/kernel.rs` (the scalar decoder calls it with
//! `stride = width = 1`) — and it is pinned per precision by the
//! property suite in `crates/bp/tests/batch_equivalence.rs`.
//!
//! Per-shot early exit inside a batch uses **lane compaction**: when a
//! lane's hard decision satisfies its syndrome, its column is swapped
//! past the live prefix of every slab (a pure permutation — no
//! surviving lane's arithmetic changes) and the live width shrinks.
//! Total work is proportional to the *sum of per-shot iteration
//! counts*, exactly like a scalar loop, while the live prefix keeps
//! full vector width. Batches wider than [`DEFAULT_MAX_LANES`] run as
//! consecutive tiles; the ragged tail just runs narrower.
//!
//! # Examples
//!
//! Decoding through the unified stack API ([`SyndromeDecoder`]), the
//! way the Monte Carlo runners and the decoding service drive every
//! decoder:
//!
//! ```
//! use qldpc_bp::{BpConfig, MinSumDecoder, SyndromeDecoder};
//! use qldpc_gf2::{BitVec, SparseBitMatrix};
//!
//! let h = SparseBitMatrix::from_row_indices(
//!     4,
//!     5,
//!     &[vec![0, 1], vec![1, 2], vec![2, 3], vec![3, 4]],
//! );
//! let mut decoder = MinSumDecoder::new(&h, &[0.05; 5], BpConfig::default());
//! let error = BitVec::from_indices(5, &[2]);
//! let out = decoder.decode_syndrome(&h.mul_vec(&error));
//! assert!(out.solved);
//! assert_eq!(out.error_hat, error);
//! // Plain BP never post-processes: both iteration accountings agree.
//! assert_eq!(out.serial_iterations, out.critical_iterations);
//! // And a batch containing the same syndrome decodes bit-identically.
//! let batch = decoder.decode_batch(&[h.mul_vec(&error), BitVec::zeros(4)]);
//! assert_eq!(batch[0].error_hat, out.error_hat);
//! ```
//!
//! Decoding directly through the inherent API:
//!
//! ```
//! use qldpc_bp::{BpConfig, MinSumDecoder};
//! use qldpc_gf2::{BitVec, SparseBitMatrix};
//!
//! // 5-bit repetition code, one bit flipped.
//! let h = SparseBitMatrix::from_row_indices(
//!     4,
//!     5,
//!     &[vec![0, 1], vec![1, 2], vec![2, 3], vec![3, 4]],
//! );
//! let priors = vec![0.05; 5];
//! let mut decoder = MinSumDecoder::new(&h, &priors, BpConfig::default());
//! let error = BitVec::from_indices(5, &[2]);
//! let syndrome = h.mul_vec(&error);
//! let result = decoder.decode(&syndrome);
//! assert!(result.converged);
//! assert_eq!(result.error_hat, error);
//! ```

mod api;
mod batch;
mod decoder;
mod graph;
mod kernel;
mod llr;
mod wide;
mod window;

pub use batch::{BatchMinSumDecoder, BatchMinSumDecoderOf, DEFAULT_MAX_LANES};
pub use decoder::{
    BpAlgorithm, BpConfig, BpResult, DampingSchedule, MinSumDecoder, MinSumDecoderOf, Schedule,
};
pub use graph::TannerGraph;
pub use llr::Llr;
pub use qldpc_decoder_api::{DecodeOutcome, Precision, SyndromeDecoder};
// The dispatch surface of the explicit-SIMD batch kernels, re-exported
// so downstream crates (bench artifacts, telemetry labels, forced-target
// suites) need no direct `qldpc-simd` dependency: the resolved target,
// CPU feature summary, and the list every equivalence suite iterates.
pub use qldpc_simd::{
    active_target as active_simd_target, cpu_features as simd_cpu_features,
    detected_target as detected_simd_target, supported_targets as supported_simd_targets,
    SimdTarget, ENV_TARGET as SIMD_TARGET_ENV,
};
pub use window::{BpWindowDecoder, BpWindowDecoderF32, BpWindowDecoderOf};

/// The reduced-precision (`f32`) scalar min-sum decoder: half the message
/// width, same algorithm, bit-identical to [`BatchMinSumDecoderF32`] per
/// shot.
///
/// # Examples
///
/// ```
/// use qldpc_bp::{BpConfig, MinSumDecoderF32, SyndromeDecoder};
/// use qldpc_gf2::{BitVec, SparseBitMatrix};
///
/// let h = SparseBitMatrix::from_row_indices(2, 3, &[vec![0, 1], vec![1, 2]]);
/// let mut dec = MinSumDecoderF32::new(&h, &[0.1; 3], BpConfig::default());
/// let r = dec.decode(&BitVec::zeros(2));
/// assert!(r.converged);
/// assert_eq!(dec.precision(), qldpc_bp::Precision::F32);
/// ```
pub type MinSumDecoderF32 = MinSumDecoderOf<f32>;

/// The reduced-precision (`f32`) batch engine: half-width slabs, twice
/// the effective SIMD lanes of [`BatchMinSumDecoder`].
pub type BatchMinSumDecoderF32 = BatchMinSumDecoderOf<f32>;

/// Converts a per-bit error probability into a channel log-likelihood
/// ratio `ln((1−p)/p)` (paper Eq. 4).
///
/// Probabilities are clamped to `[1e-12, 1 − 1e-12]` to avoid infinities.
///
/// # Examples
///
/// ```
/// let llr = qldpc_bp::prior_llr(0.5);
/// assert!(llr.abs() < 1e-9);
/// assert!(qldpc_bp::prior_llr(0.01) > 0.0);
/// ```
pub fn prior_llr(p: f64) -> f64 {
    let p = p.clamp(1e-12, 1.0 - 1e-12);
    ((1.0 - p) / p).ln()
}
