//! Shot-interleaved batched min-sum BP: decode `B` syndromes per call.
//!
//! This is the throughput engine behind the paper's core claim — that
//! fully parallelized BP wins on *throughput* because many syndromes can
//! be decoded simultaneously, amortizing the Tanner-graph traversal
//! across shots. [`BatchMinSumDecoder`] keeps all message state in
//! structure-of-arrays slabs:
//!
//! * `c2v`, `v2c`: `num_edges × L` (edge-major, lane-minor),
//! * `posterior`, `hard`, `flip_counts`: `num_vars × L`,
//! * syndrome bits/signs: `num_checks × L`,
//!
//! where `L = min(B, max_lanes)` is the lane width of one tile. Each BP
//! iteration walks the graph's edge structure **once** for all live
//! lanes. The slabs are 64-byte-aligned ([`AlignedSlab`]) and the hot
//! per-iteration passes run as **explicit wide kernels**
//! ([`wide`](crate::wide)) on the instruction set picked at runtime —
//! AVX-512 → AVX2 → NEON → scalar, overridable per config
//! ([`BpConfig::simd_target`]) or process-wide (`QLDPC_SIMD_TARGET`).
//! On the scalar target, check-node updates go through the same
//! [`kernel`](crate::kernel) core the scalar decoder uses; the wide
//! targets re-express those loops with compare-blend selects chosen so
//! each lane executes the identical float stream. Either way every lane
//! performs the same floating-point operations in the same order as a
//! scalar [`MinSumDecoder::decode`] of that shot — the outputs are
//! **bit-identical on every dispatch target**, enforced by the property
//! suite in `crates/bp/tests/batch_equivalence.rs`.
//!
//! # Precision
//!
//! The engine is generic over the [`Llr`] message scalar. At `f32`
//! ([`BatchMinSumDecoderF32`](crate::BatchMinSumDecoderF32)) the slabs
//! are half as wide, which doubles the effective SIMD lanes of the
//! auto-vectorized inner loops and halves their memory traffic — the
//! hardware-BP trade the source paper leans on. The bit-identity
//! contract holds *per precision*: f32 batch ≡ f32 scalar, f64 batch ≡
//! f64 scalar, each via `to_bits`.
//!
//! # Early termination: lane compaction
//!
//! Per-shot early exit is preserved via an active-lane prefix instead of
//! a mask: when a lane converges, its column is swapped (a pure
//! permutation — no lane's arithmetic changes) to the tail of every slab
//! and the live width shrinks, so each iteration's cost is proportional
//! to the number of *still-running* shots, exactly like the scalar
//! decoder's per-shot iteration sum. Converged lanes keep their slot and
//! frozen state until extraction.
//!
//! # Examples
//!
//! ```
//! use qldpc_bp::{BatchMinSumDecoder, BpConfig};
//! use qldpc_gf2::{BitVec, SparseBitMatrix};
//!
//! let h = SparseBitMatrix::from_row_indices(2, 3, &[vec![0, 1], vec![1, 2]]);
//! let mut dec = BatchMinSumDecoder::new(&h, &[0.1; 3], BpConfig::default());
//! let syndromes = vec![BitVec::zeros(2), BitVec::from_indices(2, &[0])];
//! let results = dec.decode_batch_results(&syndromes);
//! assert_eq!(results.len(), 2);
//! assert!(results[0].converged && results[0].error_hat.is_zero());
//! ```

use crate::graph::TannerGraph;
use crate::kernel::{self, CheckScratch};
use crate::llr::Llr;
use crate::wide;
use crate::{prior_llr, BpConfig, BpResult, MinSumDecoderOf};
use qldpc_gf2::{BitVec, SparseBitMatrix};
use qldpc_simd::{AlignedSlab, SimdTarget};

/// Default cap on the lane width of one interleaved tile.
///
/// Bounds slab memory at `2 × num_edges × DEFAULT_MAX_LANES` message
/// scalars regardless of the caller's batch size; larger batches are
/// processed as consecutive tiles (the ragged tail simply runs at a
/// narrower width). Use this constant — not its current literal value —
/// anywhere a batch width should mean "one full kernel tile" (the
/// service's `max_batch` default does exactly that).
///
/// Derived from the widest compiled-in vector
/// ([`MAX_F32_LANES`](qldpc_simd::MAX_F32_LANES)) so a full tile is a
/// whole number of vectors on every dispatch target at both precisions
/// (currently `8 × 16 = 128`).
pub const DEFAULT_MAX_LANES: usize = 8 * qldpc_simd::MAX_F32_LANES;

/// A batched normalized min-sum decoder over shot-interleaved message
/// slabs of scalar type `T`, bit-identical to per-shot
/// [`MinSumDecoderOf`] decoding at the same precision.
///
/// Use through the precision aliases: [`BatchMinSumDecoder`] (`f64`) or
/// [`BatchMinSumDecoderF32`](crate::BatchMinSumDecoderF32).
///
/// Supports everything the scalar decoder does — flooding and layered
/// schedules, adaptive and fixed damping, posterior memory, min-sum and
/// sum-product check rules, per-lane oscillation tracking for BP-SF —
/// because both decoders share one check-update core and mirror each
/// other's variable-phase operation order per lane.
///
/// The decoder owns all slabs and grows them lazily to the widest tile it
/// has seen; repeated batch decodes do not allocate (beyond the returned
/// results). Clone it to decode on several threads concurrently.
#[derive(Debug, Clone)]
pub struct BatchMinSumDecoderOf<T: Llr> {
    graph: TannerGraph,
    h: SparseBitMatrix,
    config: BpConfig,
    channel_llrs: Vec<T>,
    max_lanes: usize,
    // Shot-interleaved working slabs at the current tile's lane stride,
    // reused across decodes. All are 64-byte-aligned so the explicit
    // wide kernels start every slab on a full cache line / AVX-512
    // register boundary.
    /// Per-(variable, lane) channel LLRs: the decoder's `channel_llrs`
    /// broadcast across the tile, with per-lane prior overrides (carried
    /// window beliefs) applied where a shot supplies them.
    lane_channel: AlignedSlab<T>,
    c2v: AlignedSlab<T>,
    v2c: AlignedSlab<T>,
    posterior: AlignedSlab<T>,
    hard: AlignedSlab<bool>,
    hard_prev: AlignedSlab<bool>,
    flip_counts: AlignedSlab<u32>,
    /// `±1.0` per (check, lane): `-1.0` where the syndrome bit is set.
    syndrome_sign: AlignedSlab<T>,
    syndrome_bit: AlignedSlab<bool>,
    /// Original shot index occupying each physical lane (compaction swaps
    /// permute this alongside the slab columns).
    lane_shot: Vec<usize>,
    // Per-shot (not per-lane) bookkeeping.
    converged: Vec<bool>,
    iterations: Vec<usize>,
    /// Per-lane accumulator for the scalar-target variable phases (the
    /// wide kernels keep their running sums in registers instead).
    lane_sum: AlignedSlab<T>,
    /// Per-lane syndrome-satisfaction verdicts (one slab pass per
    /// iteration instead of a scalar walk per lane).
    lane_ok: AlignedSlab<bool>,
    /// Per-lane parity accumulator for the verdict pass.
    lane_parity: AlignedSlab<bool>,
    scratch: CheckScratch<T>,
}

/// The reference `f64` batch engine — every pre-existing call site
/// resolves here unchanged.
pub type BatchMinSumDecoder = BatchMinSumDecoderOf<f64>;

impl<T: Llr> BatchMinSumDecoderOf<T> {
    /// Builds a batched decoder for check matrix `h` with per-variable
    /// error priors `priors`.
    ///
    /// # Panics
    ///
    /// Panics if `priors.len() != h.cols()`, `max_iters == 0`, or the
    /// memory strength lies outside `[0, 1)` — the same contract as
    /// [`MinSumDecoderOf::new`].
    pub fn new(h: &SparseBitMatrix, priors: &[f64], config: BpConfig) -> Self {
        assert_eq!(priors.len(), h.cols(), "one prior per variable required");
        assert!(config.max_iters > 0, "max_iters must be positive");
        assert!(
            (0.0..1.0).contains(&config.memory_strength),
            "memory strength must lie in [0, 1)"
        );
        let channel_llrs = priors.iter().map(|&p| T::from_f64(prior_llr(p))).collect();
        Self::from_parts(TannerGraph::new(h), h.clone(), config, channel_llrs)
    }

    /// Builds a batched engine with the same check matrix, priors and
    /// configuration as an existing scalar decoder (of the same
    /// precision), so a scalar decoder can hand batches to the
    /// interleaved kernel with identical results.
    pub fn from_scalar(scalar: &MinSumDecoderOf<T>) -> Self {
        Self::from_parts(
            scalar.graph().clone(),
            scalar.check_matrix().clone(),
            *scalar.config(),
            scalar.channel_llrs().to_vec(),
        )
    }

    fn from_parts(
        graph: TannerGraph,
        h: SparseBitMatrix,
        config: BpConfig,
        channel_llrs: Vec<T>,
    ) -> Self {
        Self {
            graph,
            h,
            config,
            channel_llrs,
            max_lanes: DEFAULT_MAX_LANES,
            lane_channel: AlignedSlab::new(),
            c2v: AlignedSlab::new(),
            v2c: AlignedSlab::new(),
            posterior: AlignedSlab::new(),
            hard: AlignedSlab::new(),
            hard_prev: AlignedSlab::new(),
            flip_counts: AlignedSlab::new(),
            syndrome_sign: AlignedSlab::new(),
            syndrome_bit: AlignedSlab::new(),
            lane_shot: Vec::new(),
            converged: Vec::new(),
            iterations: Vec::new(),
            lane_sum: AlignedSlab::new(),
            lane_ok: AlignedSlab::new(),
            lane_parity: AlignedSlab::new(),
            scratch: CheckScratch::new(1),
        }
    }

    /// The decoder's configuration.
    pub fn config(&self) -> &BpConfig {
        &self.config
    }

    /// The check matrix this decoder is bound to.
    pub fn check_matrix(&self) -> &SparseBitMatrix {
        &self.h
    }

    /// Number of variables (columns).
    pub fn num_vars(&self) -> usize {
        self.graph.num_vars()
    }

    /// The lane-width cap of one interleaved tile.
    pub fn max_lanes(&self) -> usize {
        self.max_lanes
    }

    /// Caps the lane width of one interleaved tile (memory/locality
    /// trade-off; results are unaffected).
    ///
    /// # Panics
    ///
    /// Panics if `max_lanes == 0`.
    pub fn set_max_lanes(&mut self, max_lanes: usize) {
        assert!(max_lanes > 0, "need at least one lane");
        self.max_lanes = max_lanes;
    }

    /// Re-syncs configuration and channel LLRs from the owning scalar
    /// decoder (the cached engine behind `MinSumDecoder::decode_batch`
    /// must honor `config_mut`/`set_priors` changes between calls).
    pub(crate) fn sync(&mut self, config: BpConfig, channel_llrs: &[T]) {
        debug_assert_eq!(channel_llrs.len(), self.graph.num_vars());
        self.config = config;
        self.channel_llrs.clear();
        self.channel_llrs.extend_from_slice(channel_llrs);
    }

    /// Replaces the channel priors (lengths must match).
    ///
    /// # Panics
    ///
    /// Panics if `priors.len() != num_vars()`.
    pub fn set_priors(&mut self, priors: &[f64]) {
        assert_eq!(
            priors.len(),
            self.graph.num_vars(),
            "one prior per variable required"
        );
        self.channel_llrs = priors.iter().map(|&p| T::from_f64(prior_llr(p))).collect();
    }

    /// Decodes one syndrome (a batch of width 1).
    ///
    /// # Panics
    ///
    /// Panics if `syndrome.len()` differs from the number of checks.
    pub fn decode(&mut self, syndrome: &BitVec) -> BpResult<T> {
        self.decode_batch_results(std::slice::from_ref(syndrome))
            .pop()
            .expect("one result per syndrome")
    }

    /// Decodes a batch of syndromes, returning one [`BpResult`] per
    /// syndrome in input order.
    ///
    /// An empty batch returns an empty vector. Batches wider than
    /// [`Self::max_lanes`] are processed as consecutive tiles; the ragged
    /// tail (`syndromes.len() % max_lanes != 0`) runs at a narrower lane
    /// width. Lanes are fully isolated: the result of shot `i` depends
    /// only on `syndromes[i]` and is bit-identical to
    /// [`MinSumDecoderOf::decode`] of that syndrome at this precision.
    ///
    /// # Panics
    ///
    /// Panics if any syndrome's length differs from the number of checks.
    pub fn decode_batch_results(&mut self, syndromes: &[BitVec]) -> Vec<BpResult<T>> {
        self.decode_batch_with_priors(syndromes, &[])
    }

    /// Decodes a batch of syndromes with optional *per-shot* channel
    /// priors, returning one [`BpResult`] per syndrome in input order.
    ///
    /// `priors` is either empty (no overrides — identical to
    /// [`Self::decode_batch_results`]) or one entry per syndrome:
    /// `Some(p)` decodes that shot with channel priors `p` (one error
    /// probability per variable, converted exactly like
    /// [`Self::set_priors`]), `None` uses the decoder's own priors. This
    /// is the streaming hook: sliding-window sessions carry boundary
    /// posteriors forward as the next window's priors, and shots from
    /// many sessions — each with its own carried beliefs — still batch
    /// into one interleaved tile.
    ///
    /// Shot `i` is bit-identical to `set_priors(p)` followed by a scalar
    /// decode of `syndromes[i]` at this precision.
    ///
    /// # Panics
    ///
    /// Panics if any syndrome's length differs from the number of
    /// checks, if `priors` is non-empty with `priors.len() !=
    /// syndromes.len()`, or if any override's length differs from the
    /// number of variables.
    pub fn decode_batch_with_priors(
        &mut self,
        syndromes: &[BitVec],
        priors: &[Option<&[f64]>],
    ) -> Vec<BpResult<T>> {
        for s in syndromes {
            assert_eq!(
                s.len(),
                self.graph.num_checks(),
                "syndrome length must equal the number of checks"
            );
        }
        assert!(
            priors.is_empty() || priors.len() == syndromes.len(),
            "per-shot priors must be empty or one entry per syndrome"
        );
        for p in priors.iter().flatten() {
            assert_eq!(
                p.len(),
                self.graph.num_vars(),
                "one prior per variable required"
            );
        }
        let mut out = Vec::with_capacity(syndromes.len());
        let max_lanes = self.max_lanes;
        for (i, tile) in syndromes.chunks(max_lanes).enumerate() {
            let tile_priors = if priors.is_empty() {
                &[]
            } else {
                &priors[i * max_lanes..i * max_lanes + tile.len()]
            };
            self.decode_tile(tile, tile_priors, &mut out);
        }
        out
    }

    /// Decodes one tile of up to `max_lanes` shots into `out`.
    fn decode_tile(
        &mut self,
        tile: &[BitVec],
        tile_priors: &[Option<&[f64]>],
        out: &mut Vec<BpResult<T>>,
    ) {
        let lanes = tile.len();
        let vars = self.graph.num_vars();
        self.reset(tile, tile_priors);
        let mut target = wide::resolve_target(&self.config);
        // An auto-detected target steps down until one vector fits the
        // tile: a B=8 f32 tile holds no 16-lane groups, and routing it
        // through the AVX-512 kernel means running its scalar epilogue
        // for every lane — slower than the narrower wide kernel (or the
        // scalar kernel's lane-minor loops) the tile actually fills. A
        // *pinned* target is never stepped down; the equivalence suites
        // rely on forcing wide kernels onto tiny tiles.
        if self.config.simd_target.is_none() {
            while target != SimdTarget::Scalar && wide::lane_width::<T>(target) > lanes {
                target = wide::step_down(target);
            }
        }
        let vw = wide::lane_width::<T>(target);

        // Each shot's result is snapshotted the moment its lane retires,
        // not at the end of the tile: under a padded live width (below)
        // the wide kernels may recompute a few retired columns past
        // `width`, so a retired lane's slab state is no longer
        // guaranteed frozen — its snapshot is.
        let mut results: Vec<Option<BpResult<T>>> = (0..lanes).map(|_| None).collect();

        // `width` is the live-lane prefix; converged lanes are swapped
        // past it. For the wide kernels the prefix is padded to a whole
        // number of vectors (`width_eff`, capped at the tile) so lane
        // compaction cannot strand the iteration passes on a ragged
        // scalar tail; the padding columns hold retired lanes whose
        // recomputation is harmless (lanes are arithmetically isolated,
        // and their results were already snapshotted).
        let mut width = lanes;
        for iter in 1..=self.config.max_iters {
            if width == 0 {
                break;
            }
            for b in 0..width {
                self.iterations[self.lane_shot[b]] = iter;
            }
            let alpha = T::from_f64(self.config.damping.factor(iter));
            match (self.config.schedule, target) {
                (crate::Schedule::Flooding, SimdTarget::Scalar) => {
                    self.flooding_iteration(lanes, width, alpha)
                }
                (crate::Schedule::Layered, SimdTarget::Scalar) => {
                    self.layered_iteration(lanes, width, alpha)
                }
                (schedule, t) => {
                    let width_eff = lanes.min(width.div_ceil(vw) * vw);
                    let args = wide::IterArgs {
                        graph: &self.graph,
                        lane_channel: &self.lane_channel,
                        syndrome_sign: &self.syndrome_sign,
                        c2v: &mut self.c2v,
                        v2c: &mut self.v2c,
                        posterior: &mut self.posterior,
                        gamma: self.config.memory_strength,
                        alpha,
                        lanes,
                        width: width_eff,
                    };
                    match schedule {
                        crate::Schedule::Flooding => wide::flooding_wide(t, args),
                        crate::Schedule::Layered => wide::layered_wide(t, args),
                    }
                }
            }
            // Hard decision (paper Eq. 8) on the live lanes.
            for v in 0..vars {
                let vb = v * lanes;
                for b in 0..width {
                    self.hard[vb + b] = self.posterior[vb + b] <= T::ZERO;
                }
            }
            if self.config.track_oscillations {
                for v in 0..vars {
                    let vb = v * lanes;
                    for b in 0..width {
                        if self.hard[vb + b] != self.hard_prev[vb + b] {
                            self.flip_counts[vb + b] += 1;
                        }
                        self.hard_prev[vb + b] = self.hard[vb + b];
                    }
                }
            }
            // Retire converged lanes by compacting the live prefix. The
            // verdicts are precomputed for all live lanes in one
            // vectorizable slab pass (they depend only on each lane's
            // own frozen-by-now hard decision, so evaluating before the
            // swaps is equivalent to the per-lane walk it replaces);
            // when lane `b` retires, the occupant of `width - 1` — and
            // its verdict — moves into `b` and is examined next, so no
            // lane is skipped.
            self.compute_lane_ok(target, lanes, width);
            let mut b = 0;
            while b < width {
                if self.lane_ok[b] {
                    let shot = self.lane_shot[b];
                    self.converged[shot] = true;
                    results[shot] = Some(self.snapshot_lane(b, lanes, shot));
                    self.swap_lanes(b, width - 1, lanes);
                    self.lane_ok.swap(b, width - 1);
                    width -= 1;
                } else {
                    b += 1;
                }
            }
        }

        for (shot, slot) in results.iter_mut().enumerate() {
            out.push(match slot.take() {
                Some(result) => result,
                None => {
                    // Never retired: compaction left this shot's live
                    // (untouched-by-padding) state in some physical lane.
                    let b = self
                        .lane_shot
                        .iter()
                        .position(|&s| s == shot)
                        .expect("every shot occupies exactly one lane");
                    self.snapshot_lane(b, lanes, shot)
                }
            });
        }
    }

    /// Captures physical lane `b`'s state as shot `shot`'s result.
    fn snapshot_lane(&self, b: usize, lanes: usize, shot: usize) -> BpResult<T> {
        let vars = self.graph.num_vars();
        let mut error_hat = BitVec::zeros(vars);
        for v in 0..vars {
            if self.hard[v * lanes + b] {
                error_hat.set(v, true);
            }
        }
        BpResult {
            converged: self.converged[shot],
            error_hat,
            iterations: self.iterations[shot],
            posteriors: (0..vars).map(|v| self.posterior[v * lanes + b]).collect(),
            flip_counts: if self.config.track_oscillations {
                (0..vars).map(|v| self.flip_counts[v * lanes + b]).collect()
            } else {
                Vec::new()
            },
        }
    }

    /// The SIMD dispatch target this decoder's iteration kernels run at
    /// under the current configuration — the [`BpConfig::simd_target`]
    /// pin, the `QLDPC_SIMD_TARGET` override, or CPU detection, in that
    /// precedence (always [`SimdTarget::Scalar`] for the sum-product
    /// rule, which has no wide path). An auto-detected target may still
    /// step down per tile when a batch is narrower than one vector; a
    /// pinned target never does.
    pub fn resolved_simd_target(&self) -> SimdTarget {
        wide::resolve_target(&self.config)
    }

    /// Sizes the slabs for `tile.len()` lanes and loads the tile's state.
    fn reset(&mut self, tile: &[BitVec], tile_priors: &[Option<&[f64]>]) {
        let lanes = tile.len();
        let edges = self.graph.num_edges();
        let vars = self.graph.num_vars();
        let checks = self.graph.num_checks();

        self.c2v.clear();
        self.c2v.resize(edges * lanes, T::ZERO);
        // v2c is fully rewritten before it is read each iteration (both
        // schedules), exactly like the scalar decoder's buffer.
        self.v2c.resize(edges * lanes, T::ZERO);

        // Channel LLRs per (variable, lane): the shared priors broadcast
        // across the tile, overridden lane-wise where a shot carries its
        // own (converted exactly like `set_priors`, so an overridden
        // lane is bit-identical to a scalar decode after `set_priors`).
        self.lane_channel.clear();
        self.lane_channel.reserve(vars * lanes);
        for v in 0..vars {
            let llr = self.channel_llrs[v];
            for b in 0..lanes {
                match tile_priors.get(b).copied().flatten() {
                    Some(p) => self.lane_channel.push(T::from_f64(prior_llr(p[v]))),
                    None => self.lane_channel.push(llr),
                }
            }
        }

        self.posterior.clear();
        self.posterior.extend_from_slice(&self.lane_channel);
        self.hard.clear();
        self.hard.resize(vars * lanes, false);
        self.hard_prev.clear();
        self.hard_prev.resize(vars * lanes, false);
        self.flip_counts.clear();
        self.flip_counts.resize(vars * lanes, 0);

        self.syndrome_bit.clear();
        self.syndrome_bit.reserve(checks * lanes);
        self.syndrome_sign.clear();
        self.syndrome_sign.reserve(checks * lanes);
        for c in 0..checks {
            for s in tile {
                let bit = s.get(c);
                self.syndrome_bit.push(bit);
                self.syndrome_sign.push(if bit { -T::ONE } else { T::ONE });
            }
        }

        self.lane_shot.clear();
        self.lane_shot.extend(0..lanes);
        self.converged.clear();
        self.converged.resize(lanes, false);
        self.iterations.clear();
        self.iterations.resize(lanes, 0);
        self.lane_sum.clear();
        self.lane_sum.resize(lanes, T::ZERO);
        self.lane_ok.clear();
        self.lane_ok.resize(lanes, false);
        self.lane_parity.clear();
        self.lane_parity.resize(lanes, false);
        self.scratch.ensure(lanes);
    }

    /// Swaps physical lanes `a` and `b` in every slab — a pure column
    /// permutation; no lane's values or operation order change.
    fn swap_lanes(&mut self, a: usize, b: usize, lanes: usize) {
        if a == b {
            return;
        }
        for e in 0..self.graph.num_edges() {
            self.c2v.swap(e * lanes + a, e * lanes + b);
            self.v2c.swap(e * lanes + a, e * lanes + b);
        }
        for v in 0..self.graph.num_vars() {
            let vb = v * lanes;
            self.lane_channel.swap(vb + a, vb + b);
            self.posterior.swap(vb + a, vb + b);
            self.hard.swap(vb + a, vb + b);
            self.hard_prev.swap(vb + a, vb + b);
            self.flip_counts.swap(vb + a, vb + b);
        }
        for c in 0..self.graph.num_checks() {
            let cb = c * lanes;
            self.syndrome_bit.swap(cb + a, cb + b);
            self.syndrome_sign.swap(cb + a, cb + b);
        }
        self.lane_shot.swap(a, b);
    }

    /// One flooding iteration over the live lanes: V2C, C2V, posteriors.
    ///
    /// Mirrors the scalar decoder's flooding pass per lane: same edge
    /// order, same accumulation order, same clamps. `lanes` is the slab
    /// stride, `width` the live prefix.
    fn flooding_iteration(&mut self, lanes: usize, width: usize, alpha: T) {
        let vars = self.graph.num_vars();
        let gamma = self.config.memory_strength;
        // V2C (paper Eq. 5): v2c[e] = lch[v] + Σ_{e'≠e} c2v[e'].
        // Width-sliced rows hoist the bounds checks out of the per-lane
        // loops so they vectorize over the batch dimension.
        for v in 0..vars {
            let lch = &self.lane_channel[v * lanes..v * lanes + width];
            let sums = &mut self.lane_sum[..width];
            if gamma == 0.0 {
                sums.copy_from_slice(lch);
            } else {
                let g = T::from_f64(gamma);
                let vrow = &self.posterior[v * lanes..v * lanes + width];
                for ((s, &llr), &p) in sums.iter_mut().zip(lch).zip(vrow) {
                    *s = (T::ONE - g) * llr + g * p;
                }
            }
            for &e in self.graph.var_edges(v) {
                let eb = e as usize * lanes;
                let crow = &self.c2v[eb..eb + width];
                for (s, &m) in sums.iter_mut().zip(crow) {
                    *s += m;
                }
            }
            for &e in self.graph.var_edges(v) {
                let eb = e as usize * lanes;
                let crow = &self.c2v[eb..eb + width];
                let vrow = &mut self.v2c[eb..eb + width];
                for ((out, &s), &m) in vrow.iter_mut().zip(sums.iter()).zip(crow) {
                    *out = (s - m).clamp_llr();
                }
            }
        }
        // C2V (paper Eq. 6, or the exact tanh rule).
        for c in 0..self.graph.num_checks() {
            self.update_check(c, lanes, width, alpha);
        }
        // Posteriors (paper Eq. 7).
        for v in 0..vars {
            let sums = &mut self.lane_sum[..width];
            sums.copy_from_slice(&self.lane_channel[v * lanes..v * lanes + width]);
            for &e in self.graph.var_edges(v) {
                let eb = e as usize * lanes;
                let crow = &self.c2v[eb..eb + width];
                for (s, &m) in sums.iter_mut().zip(crow) {
                    *s += m;
                }
            }
            let prow = &mut self.posterior[v * lanes..v * lanes + width];
            for (p, &s) in prow.iter_mut().zip(sums.iter()) {
                *p = s.clamp_llr();
            }
        }
    }

    /// One layered iteration over the live lanes: checks processed
    /// sequentially, per-shot posteriors updated immediately after each
    /// check.
    fn layered_iteration(&mut self, lanes: usize, width: usize, alpha: T) {
        for c in 0..self.graph.num_checks() {
            let range = self.graph.check_edges(c);
            // Fresh V2C from the running posterior, removing this check's
            // previous contribution.
            for e in range.clone() {
                let v = self.graph.edge_var(e);
                let (eb, vb) = (e * lanes, v * lanes);
                let prow = &self.posterior[vb..vb + width];
                let crow = &self.c2v[eb..eb + width];
                let vrow = &mut self.v2c[eb..eb + width];
                for ((out, &p), &m) in vrow.iter_mut().zip(prow).zip(crow) {
                    *out = (p - m).clamp_llr();
                }
            }
            self.update_check(c, lanes, width, alpha);
            for e in range {
                let v = self.graph.edge_var(e);
                let (eb, vb) = (e * lanes, v * lanes);
                let vrow = &self.v2c[eb..eb + width];
                let crow = &self.c2v[eb..eb + width];
                let prow = &mut self.posterior[vb..vb + width];
                for ((out, &a), &m) in prow.iter_mut().zip(vrow).zip(crow) {
                    *out = (a + m).clamp_llr();
                }
            }
        }
    }

    /// Recomputes check `c`'s C2V messages for the live lanes via the
    /// shared check-update core.
    fn update_check(&mut self, c: usize, lanes: usize, width: usize, alpha: T) {
        let range = self.graph.check_edges(c);
        kernel::update_check_lanes(
            self.config.algorithm,
            &self.v2c[range.start * lanes..range.end * lanes],
            &mut self.c2v[range.start * lanes..range.end * lanes],
            lanes,
            width,
            &self.syndrome_sign[c * lanes..c * lanes + width],
            alpha,
            &mut self.scratch,
        );
    }

    /// Checks `H·ê = s` for every live lane at once, filling
    /// `lane_ok[..width]`: per check, one XOR-parity accumulation across
    /// the check's variables and one comparison against the syndrome
    /// bits — contiguous byte rows, run with explicit byte vectors on a
    /// wide `target` (32/64 lanes per op on AVX2/AVX-512), unlike the
    /// scalar per-lane walk this replaces. Pure boolean arithmetic, so
    /// every path computes identical verdicts.
    fn compute_lane_ok(&mut self, target: SimdTarget, lanes: usize, width: usize) {
        if width >= 8 && target != SimdTarget::Scalar {
            wide::lane_ok_wide(
                target,
                &self.graph,
                &self.hard,
                &self.syndrome_bit,
                &mut self.lane_ok,
                &mut self.lane_parity,
                lanes,
                width,
            );
            return;
        }
        let ok = &mut self.lane_ok[..width];
        // Narrow live prefixes (late-stage compaction, tiny batches)
        // are better served by the short-circuiting per-lane walk — the
        // slab pass always reads every edge, the walk usually stops at
        // the first unsatisfied check. Either path computes the same
        // boolean verdicts, so the choice is invisible to results.
        if width < 8 {
            for (b, o) in ok.iter_mut().enumerate() {
                *o = 'lane: {
                    for c in 0..self.graph.num_checks() {
                        let mut parity = false;
                        for &v in self.graph.check_vars(c) {
                            parity ^= self.hard[v as usize * lanes + b];
                        }
                        if parity != self.syndrome_bit[c * lanes + b] {
                            break 'lane false;
                        }
                    }
                    true
                };
            }
            return;
        }
        ok.fill(true);
        let parity = &mut self.lane_parity[..width];
        for c in 0..self.graph.num_checks() {
            parity.fill(false);
            for &v in self.graph.check_vars(c) {
                let vb = v as usize * lanes;
                let hrow = &self.hard[vb..vb + width];
                for (p, &h) in parity.iter_mut().zip(hrow) {
                    *p ^= h;
                }
            }
            let srow = &self.syndrome_bit[c * lanes..c * lanes + width];
            for (o, (&p, &s)) in ok.iter_mut().zip(parity.iter().zip(srow)) {
                *o &= p == s;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{BatchMinSumDecoderF32, MinSumDecoder, MinSumDecoderF32};

    fn repetition_h(n: usize) -> SparseBitMatrix {
        let rows: Vec<Vec<usize>> = (0..n - 1).map(|i| vec![i, i + 1]).collect();
        SparseBitMatrix::from_row_indices(n - 1, n, &rows)
    }

    #[test]
    fn empty_batch_returns_empty() {
        let h = repetition_h(5);
        let mut dec = BatchMinSumDecoder::new(&h, &[0.05; 5], BpConfig::default());
        assert!(dec.decode_batch_results(&[]).is_empty());
    }

    #[test]
    fn corrects_single_errors_across_lanes() {
        let h = repetition_h(9);
        let mut dec = BatchMinSumDecoder::new(&h, &[0.05; 9], BpConfig::default());
        let errors: Vec<BitVec> = (0..9).map(|b| BitVec::from_indices(9, &[b])).collect();
        let syndromes: Vec<BitVec> = errors.iter().map(|e| h.mul_vec(e)).collect();
        let results = dec.decode_batch_results(&syndromes);
        for (bit, (r, e)) in results.iter().zip(&errors).enumerate() {
            assert!(r.converged, "lane {bit} failed");
            assert_eq!(&r.error_hat, e, "lane {bit} mis-decoded");
        }
    }

    #[test]
    fn matches_scalar_bitwise_on_a_mixed_batch() {
        let h = repetition_h(9);
        let config = BpConfig {
            max_iters: 30,
            track_oscillations: true,
            ..BpConfig::default()
        };
        let mut batch = BatchMinSumDecoder::new(&h, &[0.05; 9], config);
        let mut scalar = MinSumDecoder::new(&h, &[0.05; 9], config);
        let syndromes: Vec<BitVec> = [vec![], vec![3], vec![1, 5], vec![0, 4, 8]]
            .iter()
            .map(|bits| h.mul_vec(&BitVec::from_indices(9, bits)))
            .collect();
        let rb = batch.decode_batch_results(&syndromes);
        for (r, s) in rb.iter().zip(&syndromes) {
            let rs = scalar.decode(s);
            assert_eq!(r.converged, rs.converged);
            assert_eq!(r.iterations, rs.iterations);
            assert_eq!(r.error_hat, rs.error_hat);
            assert_eq!(r.flip_counts, rs.flip_counts);
            for (a, b) in r.posteriors.iter().zip(&rs.posteriors) {
                assert_eq!(a.to_bits(), b.to_bits());
            }
        }
    }

    /// The same contract at f32: the reduced-precision batch engine is
    /// bit-identical to the reduced-precision scalar decoder (and both
    /// genuinely run in f32 — their posteriors are f32 values).
    #[test]
    fn f32_batch_matches_f32_scalar_bitwise() {
        let h = repetition_h(9);
        let config = BpConfig {
            max_iters: 30,
            track_oscillations: true,
            ..BpConfig::default()
        };
        let mut batch = BatchMinSumDecoderF32::new(&h, &[0.05; 9], config);
        let mut scalar = MinSumDecoderF32::new(&h, &[0.05; 9], config);
        let syndromes: Vec<BitVec> = [vec![], vec![3], vec![1, 5], vec![0, 4, 8]]
            .iter()
            .map(|bits| h.mul_vec(&BitVec::from_indices(9, bits)))
            .collect();
        let rb = batch.decode_batch_results(&syndromes);
        for (r, s) in rb.iter().zip(&syndromes) {
            let rs = scalar.decode(s);
            assert_eq!(r.converged, rs.converged);
            assert_eq!(r.iterations, rs.iterations);
            assert_eq!(r.error_hat, rs.error_hat);
            assert_eq!(r.flip_counts, rs.flip_counts);
            for (a, b) in r.posteriors.iter().zip(&rs.posteriors) {
                assert_eq!(a.to_bits(), b.to_bits());
            }
        }
    }

    #[test]
    fn tiling_is_invisible() {
        let h = repetition_h(9);
        let syndromes: Vec<BitVec> = (0..10)
            .map(|i| h.mul_vec(&BitVec::from_indices(9, &[i % 9])))
            .collect();
        let mut wide = BatchMinSumDecoder::new(&h, &[0.05; 9], BpConfig::default());
        let mut narrow = BatchMinSumDecoder::new(&h, &[0.05; 9], BpConfig::default());
        narrow.set_max_lanes(4); // 10 shots → tiles of 4, 4, 2 (ragged tail)
        let rw = wide.decode_batch_results(&syndromes);
        let rn = narrow.decode_batch_results(&syndromes);
        assert_eq!(rw.len(), rn.len());
        for (a, b) in rw.iter().zip(&rn) {
            assert_eq!(a.error_hat, b.error_hat);
            assert_eq!(a.iterations, b.iterations);
            for (x, y) in a.posteriors.iter().zip(&b.posteriors) {
                assert_eq!(x.to_bits(), y.to_bits());
            }
        }
    }

    #[test]
    fn from_scalar_matches_new() {
        let h = repetition_h(7);
        let config = BpConfig {
            max_iters: 15,
            ..BpConfig::default()
        };
        let scalar = MinSumDecoder::new(&h, &[0.07; 7], config);
        let mut a = BatchMinSumDecoder::from_scalar(&scalar);
        let mut b = BatchMinSumDecoder::new(&h, &[0.07; 7], config);
        let s = h.mul_vec(&BitVec::from_indices(7, &[2, 4]));
        let ra = a.decode(&s);
        let rb = b.decode(&s);
        assert_eq!(ra.error_hat, rb.error_hat);
        assert_eq!(ra.iterations, rb.iterations);
    }

    #[test]
    #[should_panic(expected = "syndrome length")]
    fn wrong_syndrome_length_panics() {
        let h = repetition_h(5);
        let mut dec = BatchMinSumDecoder::new(&h, &[0.05; 5], BpConfig::default());
        dec.decode_batch_results(&[BitVec::zeros(4), BitVec::zeros(5)]);
    }

    /// A lane decoded with per-shot prior overrides is bit-identical to
    /// `set_priors` + scalar decode, and the non-overridden lanes of the
    /// same tile are bit-identical to the base batch path.
    #[test]
    fn per_lane_priors_match_scalar_set_priors() {
        let h = repetition_h(9);
        let config = BpConfig {
            max_iters: 30,
            track_oscillations: true,
            ..BpConfig::default()
        };
        let base = [0.05; 9];
        let alt: Vec<f64> = (0..9).map(|i| 0.01 + 0.03 * i as f64).collect();
        let syndromes: Vec<BitVec> = [vec![1], vec![3, 6], vec![0, 4, 8]]
            .iter()
            .map(|bits| h.mul_vec(&BitVec::from_indices(9, bits)))
            .collect();

        let mut batch = BatchMinSumDecoder::new(&h, &base, config);
        let rb = batch.decode_batch_with_priors(&syndromes, &[None, Some(&alt), None]);

        let mut scalar = MinSumDecoder::new(&h, &base, config);
        let rs0 = scalar.decode(&syndromes[0]);
        let rs2 = scalar.decode(&syndromes[2]);
        scalar.set_priors(&alt);
        let rs1 = scalar.decode(&syndromes[1]);

        for (r, rs) in [(&rb[0], &rs0), (&rb[1], &rs1), (&rb[2], &rs2)] {
            assert_eq!(r.converged, rs.converged);
            assert_eq!(r.iterations, rs.iterations);
            assert_eq!(r.error_hat, rs.error_hat);
            assert_eq!(r.flip_counts, rs.flip_counts);
            for (a, b) in r.posteriors.iter().zip(&rs.posteriors) {
                assert_eq!(a.to_bits(), b.to_bits());
            }
        }
    }

    /// Overrides survive lane compaction and tiling: every lane keeps
    /// *its own* channel row when converged lanes swap to the tail.
    #[test]
    fn per_lane_priors_survive_compaction_and_tiling() {
        let h = repetition_h(9);
        let config = BpConfig {
            max_iters: 30,
            ..BpConfig::default()
        };
        let alt: Vec<f64> = (0..9).map(|i| 0.002 + 0.05 * (i % 3) as f64).collect();
        let syndromes: Vec<BitVec> = (0..10)
            .map(|i| h.mul_vec(&BitVec::from_indices(9, &[i % 9])))
            .collect();
        let priors: Vec<Option<&[f64]>> = (0..10)
            .map(|i| {
                if i % 2 == 0 {
                    Some(alt.as_slice())
                } else {
                    None
                }
            })
            .collect();
        let mut wide = BatchMinSumDecoder::new(&h, &[0.05; 9], config);
        let mut narrow = BatchMinSumDecoder::new(&h, &[0.05; 9], config);
        narrow.set_max_lanes(3);
        let rw = wide.decode_batch_with_priors(&syndromes, &priors);
        let rn = narrow.decode_batch_with_priors(&syndromes, &priors);
        let mut scalar = MinSumDecoder::new(&h, &[0.05; 9], config);
        let mut scalar_alt = MinSumDecoder::new(&h, &[0.05; 9], config);
        scalar_alt.set_priors(&alt);
        for (i, (a, b)) in rw.iter().zip(&rn).enumerate() {
            let rs = if i % 2 == 0 {
                scalar_alt.decode(&syndromes[i])
            } else {
                scalar.decode(&syndromes[i])
            };
            for r in [a, b] {
                assert_eq!(r.converged, rs.converged, "shot {i}");
                assert_eq!(r.iterations, rs.iterations, "shot {i}");
                assert_eq!(r.error_hat, rs.error_hat, "shot {i}");
                for (x, y) in r.posteriors.iter().zip(&rs.posteriors) {
                    assert_eq!(x.to_bits(), y.to_bits(), "shot {i}");
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "one prior per variable")]
    fn wrong_override_length_panics() {
        let h = repetition_h(5);
        let mut dec = BatchMinSumDecoder::new(&h, &[0.05; 5], BpConfig::default());
        let short = [0.1; 4];
        dec.decode_batch_with_priors(&[BitVec::zeros(4)], &[Some(&short)]);
    }

    /// Dispatch-aware compaction padding: every tile width from one lane
    /// up to twice the widest vector (so every possible vector/tail
    /// split, including widths that compact through them mid-decode)
    /// stays bit-identical to the scalar oracle on every target this CPU
    /// can run, at both precisions.
    #[test]
    fn every_target_matches_scalar_across_tail_widths() {
        fn run<T: Llr>() {
            let h = repetition_h(9);
            let config = BpConfig {
                max_iters: 30,
                track_oscillations: true,
                ..BpConfig::default()
            };
            let mut scalar = MinSumDecoderOf::<T>::new(&h, &[0.05; 9], config);
            for &target in qldpc_simd::supported_targets() {
                let config = BpConfig {
                    simd_target: Some(target),
                    ..config
                };
                let mut batch = BatchMinSumDecoderOf::<T>::new(&h, &[0.05; 9], config);
                assert_eq!(batch.resolved_simd_target(), target);
                let max_width = 2 * qldpc_simd::MAX_F32_LANES + 1;
                for width in 1..=max_width {
                    let syndromes: Vec<BitVec> = (0..width)
                        .map(|i| h.mul_vec(&BitVec::from_indices(9, &[i % 9])))
                        .collect();
                    let rb = batch.decode_batch_results(&syndromes);
                    for (i, (r, s)) in rb.iter().zip(&syndromes).enumerate() {
                        let rs = scalar.decode(s);
                        assert_eq!(r.converged, rs.converged, "{target} w={width} shot {i}");
                        assert_eq!(r.iterations, rs.iterations, "{target} w={width} shot {i}");
                        assert_eq!(r.error_hat, rs.error_hat, "{target} w={width} shot {i}");
                        assert_eq!(r.flip_counts, rs.flip_counts, "{target} w={width} shot {i}");
                        for (a, b) in r.posteriors.iter().zip(&rs.posteriors) {
                            assert_eq!(
                                a.to_bits_u64(),
                                b.to_bits_u64(),
                                "{target} w={width} shot {i}"
                            );
                        }
                    }
                }
            }
        }
        run::<f64>();
        run::<f32>();
    }

    /// A forced target also holds under the layered schedule and with
    /// posterior memory enabled (both wide code paths beyond plain
    /// flooding), bit-for-bit.
    #[test]
    fn wide_layered_and_memory_match_scalar_bitwise() {
        let h = repetition_h(9);
        for &target in qldpc_simd::supported_targets() {
            for (schedule, gamma) in [
                (crate::Schedule::Layered, 0.0),
                (crate::Schedule::Flooding, 0.4),
            ] {
                let config = BpConfig {
                    max_iters: 30,
                    schedule,
                    memory_strength: gamma,
                    simd_target: Some(target),
                    ..BpConfig::default()
                };
                let mut batch = BatchMinSumDecoder::new(&h, &[0.05; 9], config);
                let mut scalar = MinSumDecoder::new(&h, &[0.05; 9], config);
                let syndromes: Vec<BitVec> = (0..10)
                    .map(|i| h.mul_vec(&BitVec::from_indices(9, &[i % 9])))
                    .collect();
                let rb = batch.decode_batch_results(&syndromes);
                for (r, s) in rb.iter().zip(&syndromes) {
                    let rs = scalar.decode(s);
                    assert_eq!(
                        r.iterations, rs.iterations,
                        "{target} {schedule:?} γ={gamma}"
                    );
                    assert_eq!(r.error_hat, rs.error_hat, "{target} {schedule:?} γ={gamma}");
                    for (a, b) in r.posteriors.iter().zip(&rs.posteriors) {
                        assert_eq!(a.to_bits(), b.to_bits(), "{target} {schedule:?} γ={gamma}");
                    }
                }
            }
        }
    }

    /// The sum-product rule has no wide path: any pinned target resolves
    /// to scalar dispatch rather than silently running a kernel that
    /// does not exist.
    #[test]
    fn sum_product_always_resolves_scalar() {
        let h = repetition_h(5);
        let config = BpConfig {
            algorithm: crate::BpAlgorithm::SumProduct,
            simd_target: Some(*qldpc_simd::supported_targets().last().unwrap()),
            ..BpConfig::default()
        };
        let dec = BatchMinSumDecoder::new(&h, &[0.05; 5], config);
        assert_eq!(dec.resolved_simd_target(), SimdTarget::Scalar);
    }

    /// Pinning a target the CPU cannot run panics loudly instead of
    /// silently degrading (which would fake forced-target coverage).
    #[test]
    fn unavailable_pinned_target_panics() {
        let unavailable = [SimdTarget::Neon, SimdTarget::Avx2, SimdTarget::Avx512]
            .into_iter()
            .find(|t| !t.is_available());
        let Some(target) = unavailable else {
            eprintln!("skipping: every compiled-in target is available here");
            return;
        };
        let h = repetition_h(5);
        let config = BpConfig {
            simd_target: Some(target),
            ..BpConfig::default()
        };
        let mut dec = BatchMinSumDecoder::new(&h, &[0.05; 5], config);
        let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            dec.decode(&BitVec::zeros(4))
        }))
        .expect_err("pinning an unavailable target must panic");
        let msg = err.downcast_ref::<String>().cloned().unwrap_or_default();
        assert!(msg.contains("does not support"), "got: {msg}");
    }
}
