//! Batched sliding-window BP: a [`WindowDecoder`] over the
//! shot-interleaved min-sum engine.
//!
//! One [`BatchMinSumDecoderOf`] engine is built per window of the plan
//! (each window is its own check matrix), and `decode_windows` groups
//! incoming tasks by window index so that concurrent streams at the same
//! stream position share an interleaved tile. Carried beliefs ride in as
//! per-shot prior overrides
//! ([`decode_batch_with_priors`](BatchMinSumDecoderOf::decode_batch_with_priors)),
//! so a shot with carried priors is bit-identical to `set_priors` + a
//! scalar decode — the streaming path inherits the batch engine's
//! scalar-equivalence contract unchanged.

use crate::llr::Llr;
use crate::{BatchMinSumDecoderOf, BpConfig};
use qldpc_decoder_api::{
    DecodeTelemetry, Precision, WindowDecoder, WindowOutcome, WindowPlan, WindowTask,
};
use std::sync::Arc;

/// Converts a posterior LLR `λ = ln(P(0)/P(1))` to the error
/// probability `P(1)` carried into the next window's priors.
fn posterior_prob(llr: f64) -> f64 {
    1.0 / (1.0 + llr.exp())
}

/// A batched min-sum BP window decoder of scalar type `T`: one
/// interleaved engine per window of a shared [`WindowPlan`].
///
/// Use through the precision aliases [`BpWindowDecoder`] (`f64`) and
/// [`BpWindowDecoderF32`] (`f32`).
#[derive(Debug, Clone)]
pub struct BpWindowDecoderOf<T: Llr> {
    plan: Arc<WindowPlan>,
    config: BpConfig,
    engines: Vec<BatchMinSumDecoderOf<T>>,
}

/// The `f64` window decoder.
pub type BpWindowDecoder = BpWindowDecoderOf<f64>;
/// The `f32` window decoder (half-width message slabs).
pub type BpWindowDecoderF32 = BpWindowDecoderOf<f32>;

impl<T: Llr> BpWindowDecoderOf<T> {
    /// Builds one batched engine per window of `plan` with BP
    /// configuration `config`.
    ///
    /// # Panics
    ///
    /// Panics when the plan has no windows, or on the same configuration
    /// errors as [`BatchMinSumDecoderOf::new`].
    pub fn new(plan: Arc<WindowPlan>, config: BpConfig) -> Self {
        assert!(
            !plan.windows.is_empty(),
            "plan must have at least one window"
        );
        let engines = plan
            .windows
            .iter()
            .map(|spec| BatchMinSumDecoderOf::new(&spec.h, &spec.priors, config))
            .collect();
        Self {
            plan,
            config,
            engines,
        }
    }

    /// The BP configuration shared by every window engine.
    pub fn config(&self) -> &BpConfig {
        &self.config
    }
}

impl<T: Llr> WindowDecoder for BpWindowDecoderOf<T> {
    fn plan(&self) -> &WindowPlan {
        &self.plan
    }

    fn label(&self) -> String {
        format!(
            "WindowBP{}(W={},C={}){}",
            self.config.max_iters,
            self.plan.window_rounds,
            self.plan.commit_rounds,
            T::PRECISION.label_suffix()
        )
    }

    fn precision(&self) -> Precision {
        T::PRECISION
    }

    fn decode_windows(&mut self, tasks: &[WindowTask]) -> Vec<WindowOutcome> {
        let mut by_window: Vec<Vec<usize>> = vec![Vec::new(); self.engines.len()];
        for (i, task) in tasks.iter().enumerate() {
            assert!(
                task.window_index < self.engines.len(),
                "window index {} out of range ({} windows)",
                task.window_index,
                self.engines.len()
            );
            by_window[task.window_index].push(i);
        }
        let mut out: Vec<Option<WindowOutcome>> = tasks.iter().map(|_| None).collect();
        for (w, idxs) in by_window.iter().enumerate() {
            if idxs.is_empty() {
                continue;
            }
            let syndromes: Vec<_> = idxs.iter().map(|&i| tasks[i].syndrome.clone()).collect();
            let no_overrides = idxs.iter().all(|&i| tasks[i].priors.is_none());
            let priors: Vec<Option<&[f64]>> = if no_overrides {
                Vec::new()
            } else {
                idxs.iter().map(|&i| tasks[i].priors).collect()
            };
            let results = self.engines[w].decode_batch_with_priors(&syndromes, &priors);
            for (&i, r) in idxs.iter().zip(results) {
                let mut telemetry = DecodeTelemetry::bp(r.iterations, r.converged);
                telemetry.oscillating_bits =
                    r.flip_counts.iter().filter(|&&c| c >= 2).count() as u64;
                out[i] = Some(WindowOutcome {
                    error_hat: r.error_hat,
                    posteriors: r
                        .posteriors
                        .iter()
                        .map(|llr| posterior_prob(llr.to_f64()))
                        .collect(),
                    solved: r.converged,
                    iterations: r.iterations,
                    telemetry,
                });
            }
        }
        out.into_iter()
            .map(|o| o.expect("every task decoded"))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qldpc_decoder_api::WindowSpec;
    use qldpc_gf2::{BitVec, SparseBitMatrix};

    /// A one-window plan over a 5-bit repetition code (4 checks in one
    /// round block of 4 detectors... round structure is irrelevant to
    /// the engine, it just decodes `h`).
    fn rep_plan() -> Arc<WindowPlan> {
        let rows: Vec<Vec<usize>> = (0..4).map(|i| vec![i, i + 1]).collect();
        let h = SparseBitMatrix::from_row_indices(4, 5, &rows);
        Arc::new(WindowPlan {
            windows: vec![WindowSpec {
                index: 0,
                start_round: 0,
                end_round: 1,
                commit_end_round: 1,
                mechanisms: (0..5).collect(),
                commit_cols: 5,
                h,
                priors: vec![0.05; 5],
                spill: vec![Vec::new(); 5],
                carry: Vec::new(),
            }],
            num_detectors: 4,
            num_mechanisms: 5,
            dets_per_round: 4,
            num_round_blocks: 1,
            window_rounds: 1,
            commit_rounds: 1,
        })
    }

    #[test]
    fn decodes_tasks_in_input_order() {
        let plan = rep_plan();
        let h = plan.windows[0].h.clone();
        let mut dec = BpWindowDecoder::new(plan, BpConfig::default());
        assert!(dec.label().starts_with("WindowBP"));
        let errors: Vec<BitVec> = (0..5).map(|b| BitVec::from_indices(5, &[b])).collect();
        let tasks: Vec<WindowTask> = errors
            .iter()
            .map(|e| WindowTask {
                window_index: 0,
                syndrome: h.mul_vec(e),
                priors: None,
            })
            .collect();
        let out = dec.decode_windows(&tasks);
        assert_eq!(out.len(), 5);
        for (o, e) in out.iter().zip(&errors) {
            assert!(o.solved);
            assert_eq!(&o.error_hat, e);
            assert_eq!(o.posteriors.len(), 5);
            for &p in &o.posteriors {
                assert!((0.0..=1.0).contains(&p) && p.is_finite());
            }
        }
    }

    #[test]
    fn posterior_prob_is_a_probability() {
        assert!(posterior_prob(f64::INFINITY).abs() < 1e-12);
        assert!((posterior_prob(0.0) - 0.5).abs() < 1e-12);
        assert!(posterior_prob(-30.0) > 0.999);
    }
}
