//! Normalized min-sum BP with flooding and layered schedules.
//!
//! The decoder is generic over the [`Llr`] message scalar: the reference
//! instantiation is [`MinSumDecoder`] (`f64`), the reduced-precision one
//! [`MinSumDecoderF32`](crate::MinSumDecoderF32). Configuration stays in
//! `f64` regardless of precision; each quantity is rounded into the
//! message scalar exactly once per use, so the `f64` instantiation
//! executes the identical float stream the pre-generic decoder did.

use crate::batch::BatchMinSumDecoderOf;
use crate::graph::TannerGraph;
use crate::kernel::{self, CheckScratch};
use crate::llr::Llr;
use crate::prior_llr;
use qldpc_gf2::{BitVec, SparseBitMatrix};
use qldpc_simd::SimdTarget;

/// Message-passing schedule.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Schedule {
    /// All checks update simultaneously each iteration (fully parallel).
    #[default]
    Flooding,
    /// Checks update sequentially with immediate posterior propagation
    /// (row-layered min-sum). Serial, but mitigates symmetric trapping
    /// sets — the paper uses it for the `[[288,12,18]]` circuit-level runs.
    Layered,
}

/// The check-node update rule.
///
/// The paper uses normalized min-sum throughout for its hardware
/// friendliness; the exact sum-product (tanh) rule is provided as the
/// "more advanced BP technique" its §VII points to, and slots into both
/// schedules and into BP-SF unchanged.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum BpAlgorithm {
    /// Normalized min-sum (paper Eq. 6): magnitude = α · second-smallest
    /// incoming magnitude.
    #[default]
    MinSum,
    /// Exact sum-product: magnitude = 2·atanh(Π tanh(|m|/2)), damped by α
    /// for consistency with the min-sum configuration.
    SumProduct,
}

/// Normalization/damping factor applied to check-to-variable messages
/// (the `α` of paper Eq. 6).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum DampingSchedule {
    /// The paper's adaptive choice `α_i = 1 − 2⁻ⁱ` at iteration `i`
    /// (1-based): heavy attenuation early, approaching plain min-sum.
    #[default]
    Adaptive,
    /// A fixed normalization factor (classical normalized min-sum);
    /// used for ablation studies.
    Fixed(f64),
}

impl DampingSchedule {
    /// The factor to apply at (1-based) iteration `iter`.
    #[inline]
    pub fn factor(self, iter: usize) -> f64 {
        match self {
            Self::Adaptive => 1.0 - (-(iter as f64)).exp2(),
            Self::Fixed(a) => a,
        }
    }
}

/// Configuration for [`MinSumDecoder`].
///
/// All fields are precision-independent (`f64`); the message precision is
/// chosen by the decoder *type* ([`MinSumDecoder`] vs
/// [`MinSumDecoderF32`](crate::MinSumDecoderF32)), not the config.
///
/// # Examples
///
/// ```
/// use qldpc_bp::{BpConfig, DampingSchedule, Schedule};
///
/// let config = BpConfig {
///     max_iters: 50,
///     schedule: Schedule::Flooding,
///     damping: DampingSchedule::Adaptive,
///     track_oscillations: true,
///     ..BpConfig::default()
/// };
/// assert_eq!(config.max_iters, 50);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BpConfig {
    /// Maximum number of BP iterations before giving up.
    pub max_iters: usize,
    /// Message-passing schedule.
    pub schedule: Schedule,
    /// Check-node update rule.
    pub algorithm: BpAlgorithm,
    /// Check-to-variable normalization factor.
    pub damping: DampingSchedule,
    /// Posterior-memory strength γ ∈ [0, 1) (Mem-BP-inspired, Chen et
    /// al.): the channel term becomes `(1−γ)·l_ch + γ·posterior_prev`,
    /// damping oscillations between iterations. `0.0` disables memory
    /// (the paper's configuration). Only the flooding schedule uses the
    /// memory term; the layered schedule's running posterior already
    /// carries state across checks.
    pub memory_strength: f64,
    /// Whether to record per-bit hard-decision flip counts (the BP-SF
    /// oscillation signal). Costs one pass over the variables per
    /// iteration.
    pub track_oscillations: bool,
    /// Explicit-SIMD dispatch pin for the batch engine's wide kernels.
    /// `None` (the default) auto-selects the widest instruction set the
    /// CPU supports — overridable process-wide through the
    /// `QLDPC_SIMD_TARGET` environment variable. `Some(target)` forces
    /// one compiled-in target; decoding panics if the CPU lacks it (a
    /// silent fallback would fake forced-target test coverage). Results
    /// are bit-identical across targets, so this knob exists for
    /// equivalence suites, benches and reproducibility pins — never for
    /// correctness. The scalar decoder and the sum-product rule always
    /// run scalar.
    pub simd_target: Option<SimdTarget>,
}

impl Default for BpConfig {
    fn default() -> Self {
        Self {
            max_iters: 100,
            schedule: Schedule::Flooding,
            algorithm: BpAlgorithm::MinSum,
            damping: DampingSchedule::Adaptive,
            memory_strength: 0.0,
            track_oscillations: false,
            simd_target: None,
        }
    }
}

/// Outcome of a BP decode at message precision `T` (`f64` by default, so
/// pre-existing `BpResult` mentions are unchanged).
#[derive(Debug, Clone)]
pub struct BpResult<T: Llr = f64> {
    /// Whether the hard decision satisfied the syndrome within the
    /// iteration budget.
    pub converged: bool,
    /// The estimated error (valid as a correction only if `converged`).
    pub error_hat: BitVec,
    /// Iterations actually executed (`<= max_iters`).
    pub iterations: usize,
    /// Final marginal LLR per variable (paper Eq. 7), in the decoder's
    /// message precision.
    pub posteriors: Vec<T>,
    /// Per-bit hard-decision flip counts across iterations; empty unless
    /// [`BpConfig::track_oscillations`] was set.
    pub flip_counts: Vec<u32>,
}

/// A reusable normalized min-sum decoder bound to one check matrix and one
/// prior vector, with messages in scalar type `T`.
///
/// Use through the precision aliases: [`MinSumDecoder`] (`f64`, the
/// reference) or [`MinSumDecoderF32`](crate::MinSumDecoderF32).
///
/// The decoder owns all message buffers, so repeated decodes do not
/// allocate. Clone it to decode on several threads concurrently.
#[derive(Debug, Clone)]
pub struct MinSumDecoderOf<T: Llr> {
    graph: TannerGraph,
    h: SparseBitMatrix,
    config: BpConfig,
    channel_llrs: Vec<T>,
    // Working buffers, reused across decodes.
    c2v: Vec<T>,
    v2c: Vec<T>,
    posterior: Vec<T>,
    hard: Vec<bool>,
    hard_prev: Vec<bool>,
    flip_counts: Vec<u32>,
    scratch: CheckScratch<T>,
    /// Cached interleaved engine behind the `decode_batch` trait
    /// override; built on the first batched call and re-synced to the
    /// current config/priors on each one, so its slabs are reused across
    /// batches.
    batch: Option<Box<BatchMinSumDecoderOf<T>>>,
}

/// The reference `f64` min-sum decoder — every pre-existing call site
/// resolves here unchanged.
///
/// # Examples
///
/// ```
/// use qldpc_bp::{BpConfig, MinSumDecoder};
/// use qldpc_gf2::{BitVec, SparseBitMatrix};
///
/// let h = SparseBitMatrix::from_row_indices(2, 3, &[vec![0, 1], vec![1, 2]]);
/// let mut dec = MinSumDecoder::new(&h, &[0.1, 0.1, 0.1], BpConfig::default());
/// let r = dec.decode(&BitVec::zeros(2));
/// assert!(r.converged);
/// assert!(r.error_hat.is_zero());
/// assert_eq!(r.iterations, 1);
/// ```
pub type MinSumDecoder = MinSumDecoderOf<f64>;

impl<T: Llr> MinSumDecoderOf<T> {
    /// Builds a decoder for check matrix `h` with per-variable error
    /// priors `priors`.
    ///
    /// # Panics
    ///
    /// Panics if `priors.len() != h.cols()` or `max_iters == 0`.
    pub fn new(h: &SparseBitMatrix, priors: &[f64], config: BpConfig) -> Self {
        assert_eq!(priors.len(), h.cols(), "one prior per variable required");
        assert!(config.max_iters > 0, "max_iters must be positive");
        assert!(
            (0.0..1.0).contains(&config.memory_strength),
            "memory strength must lie in [0, 1)"
        );
        let graph = TannerGraph::new(h);
        let edges = graph.num_edges();
        let vars = graph.num_vars();
        Self {
            graph,
            h: h.clone(),
            config,
            channel_llrs: priors.iter().map(|&p| T::from_f64(prior_llr(p))).collect(),
            c2v: vec![T::ZERO; edges],
            v2c: vec![T::ZERO; edges],
            posterior: vec![T::ZERO; vars],
            hard: vec![false; vars],
            hard_prev: vec![false; vars],
            flip_counts: vec![0; vars],
            scratch: CheckScratch::new(1),
            batch: None,
        }
    }

    /// The precomputed Tanner-graph edge layout.
    pub(crate) fn graph(&self) -> &TannerGraph {
        &self.graph
    }

    /// The lazily built, cached interleaved batch engine, re-synced to
    /// the decoder's current config and priors (which `config_mut` /
    /// `set_priors` may have changed since it was built — the sync is
    /// O(n) and allocation-free, so repeated batches reuse the slabs).
    pub(crate) fn batch_engine(&mut self) -> &mut BatchMinSumDecoderOf<T> {
        if self.batch.is_none() {
            self.batch = Some(Box::new(BatchMinSumDecoderOf::from_scalar(self)));
        } else if let Some(engine) = self.batch.as_deref_mut() {
            engine.sync(self.config, &self.channel_llrs);
        }
        self.batch.as_mut().expect("engine built above")
    }

    /// The channel LLRs derived from the priors.
    pub(crate) fn channel_llrs(&self) -> &[T] {
        &self.channel_llrs
    }

    /// The decoder's configuration.
    pub fn config(&self) -> &BpConfig {
        &self.config
    }

    /// Mutable access to the configuration (e.g. to change `max_iters`
    /// between the initial BP-SF attempt and its trial decodes).
    pub fn config_mut(&mut self) -> &mut BpConfig {
        &mut self.config
    }

    /// The check matrix this decoder is bound to.
    pub fn check_matrix(&self) -> &SparseBitMatrix {
        &self.h
    }

    /// Number of variables (columns).
    pub fn num_vars(&self) -> usize {
        self.graph.num_vars()
    }

    /// Replaces the channel priors (lengths must match).
    ///
    /// # Panics
    ///
    /// Panics if `priors.len() != num_vars()`.
    pub fn set_priors(&mut self, priors: &[f64]) {
        assert_eq!(
            priors.len(),
            self.graph.num_vars(),
            "one prior per variable required"
        );
        self.channel_llrs = priors.iter().map(|&p| T::from_f64(prior_llr(p))).collect();
    }

    /// Runs BP on `syndrome` until convergence or the iteration budget is
    /// exhausted.
    ///
    /// # Panics
    ///
    /// Panics if `syndrome.len()` differs from the number of checks.
    pub fn decode(&mut self, syndrome: &BitVec) -> BpResult<T> {
        assert_eq!(
            syndrome.len(),
            self.graph.num_checks(),
            "syndrome length must equal the number of checks"
        );
        let vars = self.graph.num_vars();
        // Reset state.
        self.c2v.iter_mut().for_each(|m| *m = T::ZERO);
        self.posterior.copy_from_slice(&self.channel_llrs);
        self.hard.iter_mut().for_each(|b| *b = false);
        self.hard_prev.iter_mut().for_each(|b| *b = false);
        self.flip_counts.iter_mut().for_each(|c| *c = 0);

        let mut converged = false;
        let mut iterations = 0;
        for iter in 1..=self.config.max_iters {
            iterations = iter;
            let alpha = T::from_f64(self.config.damping.factor(iter));
            match self.config.schedule {
                Schedule::Flooding => self.flooding_iteration(syndrome, alpha),
                Schedule::Layered => self.layered_iteration(syndrome, alpha),
            }
            // Hard decision (paper Eq. 8): error where the posterior says
            // "1 more likely", i.e. LLR <= 0.
            for v in 0..vars {
                self.hard[v] = self.posterior[v] <= T::ZERO;
            }
            if self.config.track_oscillations {
                for v in 0..vars {
                    if self.hard[v] != self.hard_prev[v] {
                        self.flip_counts[v] += 1;
                    }
                    self.hard_prev[v] = self.hard[v];
                }
            }
            if self.syndrome_satisfied(syndrome) {
                converged = true;
                break;
            }
        }

        let mut error_hat = BitVec::zeros(vars);
        for v in 0..vars {
            if self.hard[v] {
                error_hat.set(v, true);
            }
        }
        BpResult {
            converged,
            error_hat,
            iterations,
            posteriors: self.posterior.clone(),
            flip_counts: if self.config.track_oscillations {
                self.flip_counts.clone()
            } else {
                Vec::new()
            },
        }
    }

    /// Effective channel term for variable `v`: plain `l_ch`, or blended
    /// with the previous posterior when memory is enabled.
    #[inline]
    fn effective_channel(&self, v: usize) -> T {
        let gamma = self.config.memory_strength;
        if gamma == 0.0 {
            self.channel_llrs[v]
        } else {
            let g = T::from_f64(gamma);
            (T::ONE - g) * self.channel_llrs[v] + g * self.posterior[v]
        }
    }

    /// One flooding iteration: all V2C messages, then all C2V messages,
    /// then the posteriors.
    fn flooding_iteration(&mut self, syndrome: &BitVec, alpha: T) {
        // V2C (paper Eq. 5): v2c[e] = lch[v] + Σ_{e'≠e} c2v[e'].
        for v in 0..self.graph.num_vars() {
            let mut sum = self.effective_channel(v);
            for &e in self.graph.var_edges(v) {
                sum += self.c2v[e as usize];
            }
            for &e in self.graph.var_edges(v) {
                self.v2c[e as usize] = (sum - self.c2v[e as usize]).clamp_llr();
            }
        }
        // C2V (paper Eq. 6, or the exact tanh rule).
        for c in 0..self.graph.num_checks() {
            self.update_check(c, syndrome.get(c), alpha);
        }
        // Posteriors (paper Eq. 7).
        for v in 0..self.graph.num_vars() {
            let mut sum = self.channel_llrs[v];
            for &e in self.graph.var_edges(v) {
                sum += self.c2v[e as usize];
            }
            self.posterior[v] = sum.clamp_llr();
        }
    }

    /// Recomputes the C2V messages of check `c` from the current V2C
    /// messages under the configured check-node rule.
    ///
    /// Delegates to the lane-generic core shared with
    /// [`BatchMinSumDecoder`](crate::BatchMinSumDecoder), at lane width 1.
    fn update_check(&mut self, c: usize, syndrome_bit: bool, alpha: T) {
        let range = self.graph.check_edges(c);
        let base_sign = [if syndrome_bit { -T::ONE } else { T::ONE }];
        kernel::update_check_lanes(
            self.config.algorithm,
            &self.v2c[range.clone()],
            &mut self.c2v[range],
            1,
            1,
            &base_sign,
            alpha,
            &mut self.scratch,
        );
    }

    /// One layered iteration: checks processed sequentially, posteriors
    /// updated immediately after each check.
    fn layered_iteration(&mut self, syndrome: &BitVec, alpha: T) {
        for c in 0..self.graph.num_checks() {
            let range = self.graph.check_edges(c);
            // Fresh V2C from the running posterior, removing this check's
            // previous contribution.
            for e in range.clone() {
                let v = self.graph.edge_var(e);
                self.v2c[e] = (self.posterior[v] - self.c2v[e]).clamp_llr();
            }
            self.update_check(c, syndrome.get(c), alpha);
            for e in range {
                let v = self.graph.edge_var(e);
                self.posterior[v] = (self.v2c[e] + self.c2v[e]).clamp_llr();
            }
        }
    }

    /// Checks `H·ê = s` using the current hard decision.
    fn syndrome_satisfied(&self, syndrome: &BitVec) -> bool {
        for c in 0..self.graph.num_checks() {
            let mut parity = false;
            for &v in self.graph.check_vars(c) {
                parity ^= self.hard[v as usize];
            }
            if parity != syndrome.get(c) {
                return false;
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MinSumDecoderF32;

    fn repetition_h(n: usize) -> SparseBitMatrix {
        let rows: Vec<Vec<usize>> = (0..n - 1).map(|i| vec![i, i + 1]).collect();
        SparseBitMatrix::from_row_indices(n - 1, n, &rows)
    }

    #[test]
    fn zero_syndrome_converges_immediately() {
        let h = repetition_h(7);
        let mut dec = MinSumDecoder::new(&h, &[0.05; 7], BpConfig::default());
        let r = dec.decode(&BitVec::zeros(6));
        assert!(r.converged);
        assert_eq!(r.iterations, 1);
        assert!(r.error_hat.is_zero());
    }

    #[test]
    fn corrects_single_error_on_repetition_code() {
        let h = repetition_h(9);
        let mut dec = MinSumDecoder::new(&h, &[0.05; 9], BpConfig::default());
        for bit in 0..9 {
            let e = BitVec::from_indices(9, &[bit]);
            let s = h.mul_vec(&e);
            let r = dec.decode(&s);
            assert!(r.converged, "bit {bit} failed");
            assert_eq!(r.error_hat, e, "bit {bit} mis-decoded");
        }
    }

    #[test]
    fn f32_decoder_corrects_single_errors_too() {
        let h = repetition_h(9);
        let mut dec = MinSumDecoderF32::new(&h, &[0.05; 9], BpConfig::default());
        for bit in 0..9 {
            let e = BitVec::from_indices(9, &[bit]);
            let s = h.mul_vec(&e);
            let r = dec.decode(&s);
            assert!(r.converged, "bit {bit} failed at f32");
            assert_eq!(r.error_hat, e, "bit {bit} mis-decoded at f32");
        }
    }

    #[test]
    fn f32_posteriors_are_f32_rounded() {
        // The f32 decoder's posteriors are genuine f32 values: widening
        // and re-narrowing must be the identity, and on an easy decode
        // they should be close to (but not bitwise equal with) f64's.
        let h = repetition_h(9);
        let e = BitVec::from_indices(9, &[4]);
        let s = h.mul_vec(&e);
        let mut d64 = MinSumDecoder::new(&h, &[0.05; 9], BpConfig::default());
        let mut d32 = MinSumDecoderF32::new(&h, &[0.05; 9], BpConfig::default());
        let r64 = d64.decode(&s);
        let r32 = d32.decode(&s);
        assert_eq!(r64.error_hat, r32.error_hat);
        for (p64, p32) in r64.posteriors.iter().zip(&r32.posteriors) {
            assert_eq!((f64::from(*p32) as f32), *p32);
            assert!(
                (p64 - f64::from(*p32)).abs() < 1e-3 * (1.0 + p64.abs()),
                "f32 posterior drifted: {p64} vs {p32}"
            );
        }
    }

    #[test]
    fn corrects_with_layered_schedule() {
        let h = repetition_h(9);
        let config = BpConfig {
            schedule: Schedule::Layered,
            ..BpConfig::default()
        };
        let mut dec = MinSumDecoder::new(&h, &[0.05; 9], config);
        let e = BitVec::from_indices(9, &[3, 4]);
        let s = h.mul_vec(&e);
        let r = dec.decode(&s);
        assert!(r.converged);
        assert_eq!(h.mul_vec(&r.error_hat), s);
    }

    #[test]
    fn converged_output_always_satisfies_syndrome() {
        let h =
            SparseBitMatrix::from_row_indices(3, 6, &[vec![0, 1, 2], vec![2, 3, 4], vec![4, 5, 0]]);
        let mut dec = MinSumDecoder::new(&h, &[0.08; 6], BpConfig::default());
        for mask in 0..8u32 {
            let s = BitVec::from_bools(&[(mask & 1) != 0, (mask & 2) != 0, (mask & 4) != 0]);
            let r = dec.decode(&s);
            if r.converged {
                assert_eq!(h.mul_vec(&r.error_hat), s);
            }
        }
    }

    #[test]
    fn oscillation_tracking_disabled_by_default() {
        let h = repetition_h(5);
        let mut dec = MinSumDecoder::new(&h, &[0.05; 5], BpConfig::default());
        let r = dec.decode(&BitVec::zeros(4));
        assert!(r.flip_counts.is_empty());
    }

    #[test]
    fn oscillation_tracking_records_flips() {
        let h = repetition_h(5);
        let config = BpConfig {
            track_oscillations: true,
            max_iters: 30,
            ..BpConfig::default()
        };
        let mut dec = MinSumDecoder::new(&h, &[0.05; 5], config);
        let e = BitVec::from_indices(5, &[2]);
        let r = dec.decode(&h.mul_vec(&e));
        assert_eq!(r.flip_counts.len(), 5);
        // The erroneous bit must have flipped 0→1 at least once.
        assert!(r.flip_counts[2] >= 1);
    }

    #[test]
    fn adaptive_damping_schedule_values() {
        let d = DampingSchedule::Adaptive;
        assert!((d.factor(1) - 0.5).abs() < 1e-12);
        assert!((d.factor(2) - 0.75).abs() < 1e-12);
        assert!((d.factor(20) - 1.0).abs() < 1e-5);
        let f = DampingSchedule::Fixed(0.8);
        assert_eq!(f.factor(1), 0.8);
        assert_eq!(f.factor(100), 0.8);
    }

    #[test]
    fn iteration_budget_respected() {
        // An unsatisfiable syndrome (checks over disjoint pairs with an
        // isolated degree-0 variable never involved) still terminates.
        let h = SparseBitMatrix::from_row_indices(2, 4, &[vec![0, 1], vec![0, 1]]);
        // s = (1, 0) is inconsistent: both checks share the same support.
        let s = BitVec::from_indices(2, &[0]);
        let config = BpConfig {
            max_iters: 17,
            ..BpConfig::default()
        };
        let mut dec = MinSumDecoder::new(&h, &[0.1; 4], config);
        let r = dec.decode(&s);
        assert!(!r.converged);
        assert_eq!(r.iterations, 17);
    }

    #[test]
    #[should_panic(expected = "syndrome length")]
    fn wrong_syndrome_length_panics() {
        let h = repetition_h(5);
        let mut dec = MinSumDecoder::new(&h, &[0.05; 5], BpConfig::default());
        dec.decode(&BitVec::zeros(5));
    }

    #[test]
    fn decoder_is_reusable_and_deterministic() {
        let h = repetition_h(9);
        let mut dec = MinSumDecoder::new(&h, &[0.05; 9], BpConfig::default());
        let e = BitVec::from_indices(9, &[1, 5]);
        let s = h.mul_vec(&e);
        let r1 = dec.decode(&s);
        let r2 = dec.decode(&s);
        assert_eq!(r1.error_hat, r2.error_hat);
        assert_eq!(r1.iterations, r2.iterations);
        assert_eq!(r1.posteriors, r2.posteriors);
    }

    #[test]
    fn sum_product_corrects_single_errors() {
        let h = repetition_h(9);
        let config = BpConfig {
            algorithm: BpAlgorithm::SumProduct,
            ..BpConfig::default()
        };
        let mut dec = MinSumDecoder::new(&h, &[0.05; 9], config);
        for bit in 0..9 {
            let e = BitVec::from_indices(9, &[bit]);
            let r = dec.decode(&h.mul_vec(&e));
            assert!(r.converged, "bit {bit} failed under sum-product");
            assert_eq!(r.error_hat, e);
        }
    }

    #[test]
    fn sum_product_works_at_f32() {
        let h = repetition_h(9);
        for schedule in [Schedule::Flooding, Schedule::Layered] {
            let config = BpConfig {
                algorithm: BpAlgorithm::SumProduct,
                schedule,
                ..BpConfig::default()
            };
            let mut dec = MinSumDecoderF32::new(&h, &[0.05; 9], config);
            for bit in 0..9 {
                let e = BitVec::from_indices(9, &[bit]);
                let r = dec.decode(&h.mul_vec(&e));
                assert!(r.converged, "bit {bit} failed, {schedule:?} f32");
                assert_eq!(r.error_hat, e);
            }
        }
    }

    #[test]
    fn sum_product_layered_contract() {
        let h = repetition_h(9);
        let config = BpConfig {
            algorithm: BpAlgorithm::SumProduct,
            schedule: Schedule::Layered,
            ..BpConfig::default()
        };
        let mut dec = MinSumDecoder::new(&h, &[0.05; 9], config);
        let e = BitVec::from_indices(9, &[2, 6]);
        let s = h.mul_vec(&e);
        let r = dec.decode(&s);
        assert!(r.converged);
        assert_eq!(h.mul_vec(&r.error_hat), s);
    }

    #[test]
    fn memory_strength_preserves_contract() {
        let h = repetition_h(9);
        let config = BpConfig {
            memory_strength: 0.4,
            ..BpConfig::default()
        };
        let mut dec = MinSumDecoder::new(&h, &[0.05; 9], config);
        let e = BitVec::from_indices(9, &[4]);
        let s = h.mul_vec(&e);
        let r = dec.decode(&s);
        assert!(r.converged);
        assert_eq!(h.mul_vec(&r.error_hat), s);
    }

    #[test]
    #[should_panic(expected = "memory strength")]
    fn invalid_memory_strength_panics() {
        let h = repetition_h(5);
        let config = BpConfig {
            memory_strength: 1.0,
            ..BpConfig::default()
        };
        MinSumDecoder::new(&h, &[0.05; 5], config);
    }

    #[test]
    fn sum_product_and_min_sum_agree_on_easy_cases() {
        let h = repetition_h(7);
        let mut ms = MinSumDecoder::new(&h, &[0.05; 7], BpConfig::default());
        let mut sp = MinSumDecoder::new(
            &h,
            &[0.05; 7],
            BpConfig {
                algorithm: BpAlgorithm::SumProduct,
                ..BpConfig::default()
            },
        );
        for bit in 0..7 {
            let e = BitVec::from_indices(7, &[bit]);
            let s = h.mul_vec(&e);
            assert_eq!(ms.decode(&s).error_hat, sp.decode(&s).error_hat);
        }
    }

    #[test]
    fn posteriors_signal_reliability() {
        // After a convergent decode on the repetition code, the flipped
        // bit should have negative posterior, the others positive.
        let h = repetition_h(7);
        let mut dec = MinSumDecoder::new(&h, &[0.05; 7], BpConfig::default());
        let e = BitVec::from_indices(7, &[3]);
        let r = dec.decode(&h.mul_vec(&e));
        assert!(r.converged);
        assert!(r.posteriors[3] <= 0.0);
        assert!(r.posteriors[0] > 0.0);
    }
}
