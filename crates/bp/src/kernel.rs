//! The check-node update core shared by the scalar and batched decoders.
//!
//! [`update_check_lanes`] recomputes the check-to-variable messages of a
//! single check for a prefix of `width` live lanes out of a slab with
//! `stride` interleaved lanes. Message slabs are laid out edge-major,
//! lane-minor: the message of local edge `j` in lane `b` lives at index
//! `j * stride + b`, so the per-lane inner loops walk contiguous memory
//! and auto-vectorize over the batch dimension. The scalar
//! [`MinSumDecoder`](crate::MinSumDecoder) calls the same core with
//! `stride == width == 1`, which degenerates to the classic per-edge
//! loop — both decoders therefore execute the *same floating-point
//! operations in the same order per shot*, the invariant the
//! batch-vs-scalar property suite
//! (`crates/bp/tests/batch_equivalence.rs`) pins bit-for-bit.

use crate::BpAlgorithm;

/// Magnitude clamp for messages and posteriors, guarding against overflow
/// on long runs (min-sum magnitudes can grow without bound).
pub(crate) const LLR_CLAMP: f64 = 1e6;

/// Per-lane reduction state for one check update, reused across checks and
/// decodes so the hot loop never allocates.
#[derive(Debug, Clone, Default)]
pub(crate) struct CheckScratch {
    /// Smallest incoming magnitude per lane (min-sum).
    min1: Vec<f64>,
    /// Second-smallest incoming magnitude per lane (min-sum).
    min2: Vec<f64>,
    /// Local edge index attaining `min1` per lane (min-sum).
    argmin: Vec<usize>,
    /// Running sign product per lane (both rules).
    sign: Vec<f64>,
    /// Σ ln tanh(|m|/2) over nonzero factors per lane (sum-product).
    log_mag: Vec<f64>,
    /// Number of (numerically) zero tanh factors per lane (sum-product).
    zeros: Vec<u32>,
    /// Local edge index of the last zero factor per lane (sum-product).
    zero_edge: Vec<usize>,
}

impl CheckScratch {
    /// Scratch sized for `lanes` interleaved shots.
    pub(crate) fn new(lanes: usize) -> Self {
        let mut s = Self::default();
        s.ensure(lanes);
        s
    }

    /// Grows (never shrinks) the per-lane buffers to `lanes`.
    pub(crate) fn ensure(&mut self, lanes: usize) {
        if self.min1.len() < lanes {
            self.min1.resize(lanes, 0.0);
            self.min2.resize(lanes, 0.0);
            self.argmin.resize(lanes, 0);
            self.sign.resize(lanes, 0.0);
            self.log_mag.resize(lanes, 0.0);
            self.zeros.resize(lanes, 0);
            self.zero_edge.resize(lanes, 0);
        }
    }
}

/// Recomputes the C2V messages of one check from its V2C messages for the
/// first `width` lanes of a `stride`-interleaved slab (paper Eq. 6, or
/// the exact tanh rule).
///
/// `v2c` and `c2v` hold the check's `deg × stride` sub-slab (edge-major,
/// lane-minor; with `stride == width == 1` these are plain per-edge
/// slices). `base_sign[b]` is `-1.0` where lane `b`'s syndrome bit is
/// set, `+1.0` otherwise. Lanes at or beyond `width` (retired by the
/// batch decoder's compaction) are left untouched.
#[allow(clippy::too_many_arguments)]
pub(crate) fn update_check_lanes(
    algorithm: BpAlgorithm,
    v2c: &[f64],
    c2v: &mut [f64],
    stride: usize,
    width: usize,
    base_sign: &[f64],
    alpha: f64,
    scratch: &mut CheckScratch,
) {
    debug_assert_eq!(v2c.len(), c2v.len());
    debug_assert_eq!(v2c.len() % stride.max(1), 0);
    debug_assert!(width <= stride);
    debug_assert_eq!(base_sign.len(), width);
    let deg = v2c.len() / stride.max(1);
    scratch.ensure(width);
    match algorithm {
        BpAlgorithm::MinSum => {
            // Width-sliced views hoist every bounds check out of the
            // per-lane loops so they vectorize over the batch dimension.
            let min1 = &mut scratch.min1[..width];
            let min2 = &mut scratch.min2[..width];
            let argmin = &mut scratch.argmin[..width];
            let sign = &mut scratch.sign[..width];
            for b in 0..width {
                min1[b] = f64::INFINITY;
                min2[b] = f64::INFINITY;
                argmin[b] = usize::MAX;
                sign[b] = base_sign[b];
            }
            for j in 0..deg {
                let row = &v2c[j * stride..j * stride + width];
                for (b, &m) in row.iter().enumerate() {
                    let mag = m.abs();
                    if mag < min1[b] {
                        min2[b] = min1[b];
                        min1[b] = mag;
                        argmin[b] = j;
                    } else if mag < min2[b] {
                        min2[b] = mag;
                    }
                    if m < 0.0 {
                        sign[b] = -sign[b];
                    }
                }
            }
            for j in 0..deg {
                let vrow = &v2c[j * stride..j * stride + width];
                let crow = &mut c2v[j * stride..j * stride + width];
                for (b, (out, &m)) in crow.iter_mut().zip(vrow).enumerate() {
                    let mag = if j == argmin[b] { min2[b] } else { min1[b] };
                    let own_sign = if m < 0.0 { -1.0 } else { 1.0 };
                    *out = (sign[b] * own_sign * alpha * mag).clamp(-LLR_CLAMP, LLR_CLAMP);
                }
            }
        }
        BpAlgorithm::SumProduct => {
            // Π tanh(|m|/2) with zero-factor bookkeeping so the exclusive
            // product stays well defined.
            let sign = &mut scratch.sign[..width];
            let log_mag = &mut scratch.log_mag[..width];
            let zeros = &mut scratch.zeros[..width];
            let zero_edge = &mut scratch.zero_edge[..width];
            for (b, s) in sign.iter_mut().enumerate() {
                *s = base_sign[b];
                log_mag[b] = 0.0;
                zeros[b] = 0;
                zero_edge[b] = usize::MAX;
            }
            for j in 0..deg {
                let row = &v2c[j * stride..j * stride + width];
                for (b, &m) in row.iter().enumerate() {
                    if m < 0.0 {
                        sign[b] = -sign[b];
                    }
                    let t = (m.abs() / 2.0).tanh();
                    if t < 1e-300 {
                        zeros[b] += 1;
                        zero_edge[b] = j;
                    } else {
                        log_mag[b] += t.ln();
                    }
                }
            }
            for j in 0..deg {
                let vrow = &v2c[j * stride..j * stride + width];
                let crow = &mut c2v[j * stride..j * stride + width];
                for (b, (out, &m)) in crow.iter_mut().zip(vrow).enumerate() {
                    let own_sign = if m < 0.0 { -1.0 } else { 1.0 };
                    let excl = if zeros[b] > 1 || (zeros[b] == 1 && j != zero_edge[b]) {
                        0.0
                    } else {
                        let mut log_excl = log_mag[b];
                        if zeros[b] == 0 {
                            let t = (m.abs() / 2.0).tanh();
                            log_excl -= t.ln();
                        }
                        log_excl.exp().min(1.0 - 1e-15)
                    };
                    let mag = 2.0 * excl.atanh();
                    *out = (sign[b] * own_sign * alpha * mag).clamp(-LLR_CLAMP, LLR_CLAMP);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// With two interleaved lanes and lane 0 fed the scalar messages,
    /// lane 0 must produce the same bits as a `stride == 1` call — and a
    /// `width == 1` call on the two-lane slab must leave lane 1 alone.
    #[test]
    fn lanes_are_independent() {
        for algorithm in [BpAlgorithm::MinSum, BpAlgorithm::SumProduct] {
            let v2c_scalar = [0.7, -1.3, 0.2, 4.0];
            let mut c2v_scalar = [0.0; 4];
            let mut scratch = CheckScratch::new(1);
            update_check_lanes(
                algorithm,
                &v2c_scalar,
                &mut c2v_scalar,
                1,
                1,
                &[-1.0],
                0.8,
                &mut scratch,
            );

            // Lane 0 mirrors the scalar input, lane 1 holds a decoy.
            let mut v2c = [0.0; 8];
            for j in 0..4 {
                v2c[2 * j] = v2c_scalar[j];
                v2c[2 * j + 1] = -0.5 * v2c_scalar[j] + 0.1;
            }
            let mut c2v = [7.0; 8];
            let mut scratch2 = CheckScratch::new(2);
            update_check_lanes(
                algorithm,
                &v2c,
                &mut c2v,
                2,
                2,
                &[-1.0, 1.0],
                0.8,
                &mut scratch2,
            );
            for j in 0..4 {
                assert_eq!(
                    c2v[2 * j].to_bits(),
                    c2v_scalar[j].to_bits(),
                    "{algorithm:?} edge {j} diverged across lane widths"
                );
            }

            // width < stride: only the live prefix is written.
            let mut c2v_narrow = [7.0; 8];
            update_check_lanes(
                algorithm,
                &v2c,
                &mut c2v_narrow,
                2,
                1,
                &[-1.0],
                0.8,
                &mut scratch2,
            );
            for j in 0..4 {
                assert_eq!(c2v_narrow[2 * j].to_bits(), c2v_scalar[j].to_bits());
                assert_eq!(c2v_narrow[2 * j + 1], 7.0, "retired lane was touched");
            }
        }
    }

    #[test]
    fn min_sum_excludes_own_message() {
        // Degree-3 check, distinct magnitudes: each edge must see the
        // minimum over the *other* edges.
        let v2c = [1.0, 2.0, 3.0];
        let mut c2v = [0.0; 3];
        let mut scratch = CheckScratch::new(1);
        update_check_lanes(
            BpAlgorithm::MinSum,
            &v2c,
            &mut c2v,
            1,
            1,
            &[1.0],
            1.0,
            &mut scratch,
        );
        assert_eq!(c2v, [2.0, 1.0, 1.0]);
    }
}
