//! The check-node update core shared by the scalar and batched decoders.
//!
//! [`update_check_lanes`] recomputes the check-to-variable messages of a
//! single check for a prefix of `width` live lanes out of a slab with
//! `stride` interleaved lanes. Message slabs are laid out edge-major,
//! lane-minor: the message of local edge `j` in lane `b` lives at index
//! `j * stride + b`, so the per-lane inner loops walk contiguous memory
//! and auto-vectorize over the batch dimension. The scalar
//! [`MinSumDecoder`](crate::MinSumDecoder) calls the same core with
//! `stride == width == 1`, which degenerates to the classic per-edge
//! loop — both decoders therefore execute the *same floating-point
//! operations in the same order per shot*, the invariant the
//! batch-vs-scalar property suite
//! (`crates/bp/tests/batch_equivalence.rs`) pins bit-for-bit.
//!
//! The core is generic over the [`Llr`] scalar (`f64` or `f32`): every
//! arithmetic step, constant and clamp comes from the trait, so the two
//! precisions run the same algorithm at different widths and the
//! bit-identity invariant holds *per precision*.
//!
//! This module is also the **oracle** for the explicit-SIMD twins in
//! `crates/bp/src/wide.rs`: the min-sum branches of the wide kernels
//! re-express these exact loops in vector ops chosen for bit-equality
//! (ordered compares + blends, sign-bit abs/neg, no FMA, identical
//! association order), and every dispatch target is pinned against this
//! scalar path by the same equivalence suites. Any numerical change
//! here must land in `wide.rs` in the same commit — the forced-target
//! tests fail loudly if the two drift. The sum-product branch has no
//! wide twin and always runs here.

use crate::llr::Llr;
use crate::BpAlgorithm;

/// Per-lane reduction state for one check update, reused across checks and
/// decodes so the hot loop never allocates.
#[derive(Debug, Clone, Default)]
pub(crate) struct CheckScratch<T: Llr> {
    /// Smallest incoming magnitude per lane (min-sum).
    min1: Vec<T>,
    /// Second-smallest incoming magnitude per lane (min-sum).
    min2: Vec<T>,
    /// Local edge index attaining `min1` per lane (min-sum). `u32` (not
    /// `usize`): narrow index lanes keep the reduction loop's vector
    /// width from being dragged down to 64-bit elements.
    argmin: Vec<u32>,
    /// Running sign product per lane (both rules).
    sign: Vec<T>,
    /// Σ ln tanh(|m|/2) over nonzero factors per lane (sum-product).
    log_mag: Vec<T>,
    /// Number of (numerically) zero tanh factors per lane (sum-product).
    zeros: Vec<u32>,
    /// Local edge index of the last zero factor per lane (sum-product).
    zero_edge: Vec<u32>,
}

impl<T: Llr> CheckScratch<T> {
    /// Scratch sized for `lanes` interleaved shots.
    pub(crate) fn new(lanes: usize) -> Self {
        let mut s = Self::default();
        s.ensure(lanes);
        s
    }

    /// Grows (never shrinks) the per-lane buffers to `lanes`.
    pub(crate) fn ensure(&mut self, lanes: usize) {
        if self.min1.len() < lanes {
            self.min1.resize(lanes, T::ZERO);
            self.min2.resize(lanes, T::ZERO);
            self.argmin.resize(lanes, 0);
            self.sign.resize(lanes, T::ZERO);
            self.log_mag.resize(lanes, T::ZERO);
            self.zeros.resize(lanes, 0);
            self.zero_edge.resize(lanes, 0);
        }
    }
}

/// Recomputes the C2V messages of one check from its V2C messages for the
/// first `width` lanes of a `stride`-interleaved slab (paper Eq. 6, or
/// the exact tanh rule).
///
/// `v2c` and `c2v` hold the check's `deg × stride` sub-slab (edge-major,
/// lane-minor; with `stride == width == 1` these are plain per-edge
/// slices). `base_sign[b]` is `-1.0` where lane `b`'s syndrome bit is
/// set, `+1.0` otherwise. Lanes at or beyond `width` (retired by the
/// batch decoder's compaction) are left untouched.
#[allow(clippy::too_many_arguments)]
pub(crate) fn update_check_lanes<T: Llr>(
    algorithm: BpAlgorithm,
    v2c: &[T],
    c2v: &mut [T],
    stride: usize,
    width: usize,
    base_sign: &[T],
    alpha: T,
    scratch: &mut CheckScratch<T>,
) {
    debug_assert_eq!(v2c.len(), c2v.len());
    debug_assert_eq!(v2c.len() % stride.max(1), 0);
    debug_assert!(width <= stride);
    debug_assert_eq!(base_sign.len(), width);
    let deg = v2c.len() / stride.max(1);
    scratch.ensure(width);
    match algorithm {
        BpAlgorithm::MinSum => {
            // Width-sliced views hoist every bounds check out of the
            // per-lane loops so they vectorize over the batch dimension.
            let min1 = &mut scratch.min1[..width];
            let min2 = &mut scratch.min2[..width];
            let argmin = &mut scratch.argmin[..width];
            let sign = &mut scratch.sign[..width];
            for b in 0..width {
                min1[b] = T::INFINITY;
                min2[b] = T::INFINITY;
                argmin[b] = u32::MAX;
                sign[b] = base_sign[b];
            }
            for j in 0..deg {
                let row = &v2c[j * stride..j * stride + width];
                // Branchless select form of the classic two-minimum
                // update (`if mag < min1 {…} else if mag < min2 {…}`):
                // every lane assigns the same values the branchy form
                // would, so the float stream is unchanged, but the loop
                // body if-converts and vectorizes over the lanes.
                for (b, &m) in row.iter().enumerate() {
                    let mag = m.abs();
                    let new_best = mag < min1[b];
                    let second = if new_best { min1[b] } else { min2[b] };
                    min2[b] = if mag < min2[b] && !new_best {
                        mag
                    } else {
                        second
                    };
                    min1[b] = if new_best { mag } else { min1[b] };
                    argmin[b] = if new_best { j as u32 } else { argmin[b] };
                    sign[b] = if m < T::ZERO { -sign[b] } else { sign[b] };
                }
            }
            for j in 0..deg {
                let vrow = &v2c[j * stride..j * stride + width];
                let crow = &mut c2v[j * stride..j * stride + width];
                for (b, (out, &m)) in crow.iter_mut().zip(vrow).enumerate() {
                    let mag = if j as u32 == argmin[b] {
                        min2[b]
                    } else {
                        min1[b]
                    };
                    let own_sign = if m < T::ZERO { -T::ONE } else { T::ONE };
                    *out = (sign[b] * own_sign * alpha * mag).clamp_llr();
                }
            }
        }
        BpAlgorithm::SumProduct => {
            // Π tanh(|m|/2) with zero-factor bookkeeping so the exclusive
            // product stays well defined.
            let sign = &mut scratch.sign[..width];
            let log_mag = &mut scratch.log_mag[..width];
            let zeros = &mut scratch.zeros[..width];
            let zero_edge = &mut scratch.zero_edge[..width];
            for (b, s) in sign.iter_mut().enumerate() {
                *s = base_sign[b];
                log_mag[b] = T::ZERO;
                zeros[b] = 0;
                zero_edge[b] = u32::MAX;
            }
            for j in 0..deg {
                let row = &v2c[j * stride..j * stride + width];
                for (b, &m) in row.iter().enumerate() {
                    if m < T::ZERO {
                        sign[b] = -sign[b];
                    }
                    let t = (m.abs() / T::TWO).tanh();
                    if t < T::TANH_FLOOR {
                        zeros[b] += 1;
                        zero_edge[b] = j as u32;
                    } else {
                        log_mag[b] += t.ln();
                    }
                }
            }
            for j in 0..deg {
                let vrow = &v2c[j * stride..j * stride + width];
                let crow = &mut c2v[j * stride..j * stride + width];
                for (b, (out, &m)) in crow.iter_mut().zip(vrow).enumerate() {
                    let own_sign = if m < T::ZERO { -T::ONE } else { T::ONE };
                    let excl = if zeros[b] > 1 || (zeros[b] == 1 && j as u32 != zero_edge[b]) {
                        T::ZERO
                    } else {
                        let mut log_excl = log_mag[b];
                        if zeros[b] == 0 {
                            let t = (m.abs() / T::TWO).tanh();
                            log_excl -= t.ln();
                        }
                        log_excl.exp().min(T::ATANH_CEIL)
                    };
                    let mag = T::TWO * excl.atanh();
                    *out = (sign[b] * own_sign * alpha * mag).clamp_llr();
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// With two interleaved lanes and lane 0 fed the scalar messages,
    /// lane 0 must produce the same bits as a `stride == 1` call — and a
    /// `width == 1` call on the two-lane slab must leave lane 1 alone.
    fn lanes_are_independent_for<T: Llr>() {
        for algorithm in [BpAlgorithm::MinSum, BpAlgorithm::SumProduct] {
            let v2c_scalar: [T; 4] = [
                T::from_f64(0.7),
                T::from_f64(-1.3),
                T::from_f64(0.2),
                T::from_f64(4.0),
            ];
            let alpha = T::from_f64(0.8);
            let mut c2v_scalar = [T::ZERO; 4];
            let mut scratch = CheckScratch::new(1);
            update_check_lanes(
                algorithm,
                &v2c_scalar,
                &mut c2v_scalar,
                1,
                1,
                &[-T::ONE],
                alpha,
                &mut scratch,
            );

            // Lane 0 mirrors the scalar input, lane 1 holds a decoy.
            let mut v2c = [T::ZERO; 8];
            for j in 0..4 {
                v2c[2 * j] = v2c_scalar[j];
                v2c[2 * j + 1] = T::from_f64(-0.5) * v2c_scalar[j] + T::from_f64(0.1);
            }
            let seven = T::from_f64(7.0);
            let mut c2v = [seven; 8];
            let mut scratch2 = CheckScratch::new(2);
            update_check_lanes(
                algorithm,
                &v2c,
                &mut c2v,
                2,
                2,
                &[-T::ONE, T::ONE],
                alpha,
                &mut scratch2,
            );
            for j in 0..4 {
                assert_eq!(
                    c2v[2 * j].to_bits_u64(),
                    c2v_scalar[j].to_bits_u64(),
                    "{algorithm:?} edge {j} diverged across lane widths ({})",
                    T::PRECISION,
                );
            }

            // width < stride: only the live prefix is written.
            let mut c2v_narrow = [seven; 8];
            update_check_lanes(
                algorithm,
                &v2c,
                &mut c2v_narrow,
                2,
                1,
                &[-T::ONE],
                alpha,
                &mut scratch2,
            );
            for j in 0..4 {
                assert_eq!(c2v_narrow[2 * j].to_bits_u64(), c2v_scalar[j].to_bits_u64());
                assert_eq!(c2v_narrow[2 * j + 1], seven, "retired lane was touched");
            }
        }
    }

    #[test]
    fn lanes_are_independent() {
        lanes_are_independent_for::<f64>();
        lanes_are_independent_for::<f32>();
    }

    fn min_sum_excludes_own_message_for<T: Llr>() {
        // Degree-3 check, distinct magnitudes: each edge must see the
        // minimum over the *other* edges.
        let v2c: [T; 3] = [T::ONE, T::TWO, T::from_f64(3.0)];
        let mut c2v = [T::ZERO; 3];
        let mut scratch = CheckScratch::new(1);
        update_check_lanes(
            BpAlgorithm::MinSum,
            &v2c,
            &mut c2v,
            1,
            1,
            &[T::ONE],
            T::ONE,
            &mut scratch,
        );
        assert_eq!(c2v, [T::TWO, T::ONE, T::ONE]);
    }

    #[test]
    fn min_sum_excludes_own_message() {
        min_sum_excludes_own_message_for::<f64>();
        min_sum_excludes_own_message_for::<f32>();
    }
}
