//! Tanner-graph edge layout shared by the BP schedules.

use qldpc_gf2::SparseBitMatrix;

/// Precomputed edge indexing for a Tanner graph.
///
/// Edges are numbered in row-major order of the check matrix: edge `e`
/// connects check `edge_check[e]` with variable `edge_var[e]`. Both
/// check-major and variable-major traversals are precomputed since every
/// BP iteration needs both directions.
///
/// # The check-major edge-ordering invariant
///
/// Edge ids are assigned by walking the check matrix row by row, so the
/// edges of check `c` occupy the **contiguous, ascending** id range
/// returned by [`Self::check_edges`], and ranges of successive checks
/// are adjacent (`check_edges(c).end == check_edges(c + 1).start`). The
/// shared check-update kernel relies on this: it slices one check's
/// `deg × stride` message sub-slab out of the edge-major slabs with a
/// single range index (`range.start * stride..range.end * stride`), and
/// the scalar and batch decoders iterate a check's edges in exactly this
/// id order — part of the per-precision scalar≡batch bit-identity
/// contract, since a different traversal order would reassociate the
/// floating-point reductions. [`Self::check_vars`] is parallel to this
/// range, and the variable-major view ([`Self::var_edges`]) lists each
/// variable's edges in ascending id order for the same reason.
///
/// # Examples
///
/// ```
/// use qldpc_bp::TannerGraph;
/// use qldpc_gf2::SparseBitMatrix;
///
/// let h = SparseBitMatrix::from_row_indices(2, 3, &[vec![0, 1], vec![1, 2]]);
/// let g = TannerGraph::new(&h);
/// assert_eq!(g.num_edges(), 4);
/// assert_eq!(g.check_edges(0).len(), 2);
/// assert_eq!(g.var_edges(1).len(), 2); // variable 1 touches both checks
/// ```
#[derive(Debug, Clone)]
pub struct TannerGraph {
    num_checks: usize,
    num_vars: usize,
    /// Check-major CSR of edge ids (edge ids are contiguous per check).
    check_ptr: Vec<u32>,
    /// Variable endpoint of each edge, in check-major edge order.
    edge_var: Vec<u32>,
    /// Variable-major grouping of edge ids.
    var_ptr: Vec<u32>,
    var_edge: Vec<u32>,
}

impl TannerGraph {
    /// Builds the edge layout from a sparse check matrix.
    pub fn new(h: &SparseBitMatrix) -> Self {
        let num_checks = h.rows();
        let num_vars = h.cols();
        let mut check_ptr = Vec::with_capacity(num_checks + 1);
        let mut edge_var = Vec::with_capacity(h.nnz());
        check_ptr.push(0u32);
        for r in 0..num_checks {
            for &c in h.row_support(r) {
                edge_var.push(c);
            }
            check_ptr.push(edge_var.len() as u32);
        }
        // Group edge ids by variable.
        let mut counts = vec![0u32; num_vars + 1];
        for &v in &edge_var {
            counts[v as usize + 1] += 1;
        }
        for v in 0..num_vars {
            counts[v + 1] += counts[v];
        }
        let var_ptr = counts.clone();
        let mut cursor = counts;
        let mut var_edge = vec![0u32; edge_var.len()];
        for (e, &v) in edge_var.iter().enumerate() {
            var_edge[cursor[v as usize] as usize] = e as u32;
            cursor[v as usize] += 1;
        }
        Self {
            num_checks,
            num_vars,
            check_ptr,
            edge_var,
            var_ptr,
            var_edge,
        }
    }

    /// Number of check nodes (rows).
    #[inline]
    pub fn num_checks(&self) -> usize {
        self.num_checks
    }

    /// Number of variable nodes (columns).
    #[inline]
    pub fn num_vars(&self) -> usize {
        self.num_vars
    }

    /// Number of edges (ones in the check matrix).
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.edge_var.len()
    }

    /// The contiguous, ascending edge-id range of check `c` (see the
    /// check-major edge-ordering invariant in the type docs). This is
    /// the single source of a check's edge range — the former
    /// `check_edge_range` duplicate is gone.
    #[inline]
    pub fn check_edges(&self, c: usize) -> std::ops::Range<usize> {
        self.check_ptr[c] as usize..self.check_ptr[c + 1] as usize
    }

    /// Variable endpoints of the edges of check `c`, parallel to
    /// [`Self::check_edges`].
    #[inline]
    pub fn check_vars(&self, c: usize) -> &[u32] {
        &self.edge_var[self.check_edges(c)]
    }

    /// Edge ids incident to variable `v`.
    #[inline]
    pub fn var_edges(&self, v: usize) -> &[u32] {
        &self.var_edge[self.var_ptr[v] as usize..self.var_ptr[v + 1] as usize]
    }

    /// Variable endpoint of edge `e`.
    #[inline]
    pub fn edge_var(&self, e: usize) -> usize {
        self.edge_var[e] as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn edge_layout_roundtrip() {
        let h =
            SparseBitMatrix::from_row_indices(3, 4, &[vec![0, 1, 2], vec![1, 3], vec![0, 2, 3]]);
        let g = TannerGraph::new(&h);
        assert_eq!(g.num_edges(), 8);
        assert_eq!(g.num_checks(), 3);
        assert_eq!(g.num_vars(), 4);
        // Every edge appears exactly once in the variable-major view.
        let mut seen = vec![false; g.num_edges()];
        for v in 0..g.num_vars() {
            for &e in g.var_edges(v) {
                assert!(!seen[e as usize]);
                seen[e as usize] = true;
                assert_eq!(g.edge_var(e as usize), v);
            }
        }
        assert!(seen.iter().all(|&s| s));
    }

    /// Pins the check-major edge-ordering invariant the kernel's slab
    /// slicing depends on: per-check ranges are contiguous, ascending,
    /// and adjacent across successive checks.
    #[test]
    fn check_edge_ranges_are_contiguous_and_adjacent() {
        let h =
            SparseBitMatrix::from_row_indices(3, 4, &[vec![0, 1, 2], vec![1, 3], vec![0, 2, 3]]);
        let g = TannerGraph::new(&h);
        let mut next_start = 0;
        for c in 0..g.num_checks() {
            let r = g.check_edges(c);
            assert_eq!(r.start, next_start, "check {c} range is not adjacent");
            assert_eq!(r.len(), g.check_vars(c).len());
            next_start = r.end;
        }
        assert_eq!(next_start, g.num_edges());
        // The variable-major view lists edge ids ascending per variable.
        for v in 0..g.num_vars() {
            let edges = g.var_edges(v);
            assert!(edges.windows(2).all(|w| w[0] < w[1]), "variable {v}");
        }
    }

    #[test]
    fn check_vars_match_matrix() {
        let h = SparseBitMatrix::from_row_indices(2, 5, &[vec![0, 4], vec![1, 2, 3]]);
        let g = TannerGraph::new(&h);
        assert_eq!(g.check_vars(0), &[0, 4]);
        assert_eq!(g.check_vars(1), &[1, 2, 3]);
    }
}
