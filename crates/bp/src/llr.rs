//! The sealed scalar trait behind the precision-generic BP core.
//!
//! Every floating-point operation of the decoders — the scalar
//! [`MinSumDecoder`](crate::MinSumDecoder), the shot-interleaved
//! [`BatchMinSumDecoder`](crate::BatchMinSumDecoder), and the shared
//! check-update kernel — is written against [`Llr`], implemented for
//! `f64` (the reference arithmetic) and `f32` (half the slab width,
//! twice the SIMD lanes). The trait is **sealed**: the
//! scalar≡batch bit-identity contract is pinned per precision by the
//! property suites, and a foreign scalar type could not make that
//! promise.
//!
//! Config-level quantities ([`BpConfig`](crate::BpConfig) fields, priors,
//! the damping factor) stay `f64`; they are converted once per use with
//! [`Llr::from_f64`], so the `f64` instantiation performs exactly the
//! operations the pre-generic code did — the f64 goldens are unchanged.

use qldpc_decoder_api::Precision;
use std::fmt::Debug;
use std::ops::{Add, AddAssign, Div, Mul, Neg, Sub, SubAssign};

mod sealed {
    pub trait Sealed {}
    impl Sealed for f64 {}
    impl Sealed for f32 {}
}

/// A log-likelihood-ratio scalar: the message element type of the BP
/// decoders.
///
/// Implemented for `f64` and `f32` only (sealed). All constants are
/// per-precision so each instantiation is self-consistent; the numeric
/// guards (`TANH_FLOOR`, `ATANH_CEIL`) differ because the two formats
/// underflow and round at different magnitudes.
pub trait Llr:
    sealed::Sealed
    + Copy
    + Debug
    + Default
    + PartialEq
    + PartialOrd
    + Send
    + Sync
    + 'static
    + Add<Output = Self>
    + Sub<Output = Self>
    + Mul<Output = Self>
    + Div<Output = Self>
    + Neg<Output = Self>
    + AddAssign
    + SubAssign
{
    /// The runtime tag for this scalar width.
    const PRECISION: Precision;
    /// Additive identity.
    const ZERO: Self;
    /// Multiplicative identity (also the unit sign value).
    const ONE: Self;
    /// The constant `2`, used by the tanh rule (`tanh(|m|/2)`,
    /// `2·atanh`).
    const TWO: Self;
    /// Positive infinity, the min-sum reduction identity.
    const INFINITY: Self;
    /// Magnitude clamp for messages and posteriors, guarding against
    /// overflow on long runs (min-sum magnitudes can grow without
    /// bound). Applied exclusively through [`Llr::clamp_llr`].
    const CLAMP: Self;
    /// Threshold below which a `tanh(|m|/2)` factor is treated as an
    /// exact zero in the sum-product rule (so the exclusive product
    /// stays well defined). Chosen well above each format's underflow.
    const TANH_FLOOR: Self;
    /// Largest product magnitude fed to `atanh` by the sum-product
    /// rule — the closest value below `1` at which `atanh` is still
    /// comfortably finite in this format.
    const ATANH_CEIL: Self;

    /// The AVX2 vector of this scalar (8 × `f32` / 4 × `f64`). The
    /// explicit wide kernels in `crates/bp/src/wide.rs` monomorphize
    /// over these per-ISA associated types; they are only reachable
    /// through `SimdTarget` dispatch after runtime feature detection.
    #[cfg(target_arch = "x86_64")]
    type Avx2: qldpc_simd::SimdF<Elem = Self>;
    /// The AVX-512 vector of this scalar (16 × `f32` / 8 × `f64`).
    #[cfg(target_arch = "x86_64")]
    type Avx512: qldpc_simd::SimdF<Elem = Self>;
    /// The NEON vector of this scalar (4 × `f32` / 2 × `f64`).
    #[cfg(target_arch = "aarch64")]
    type Neon: qldpc_simd::SimdF<Elem = Self>;

    /// Rounds a config-level `f64` quantity (prior LLR, damping factor,
    /// memory strength) into this precision. The identity for `f64`.
    fn from_f64(x: f64) -> Self;
    /// Widens to `f64` (exact for both implementations) for reporting.
    fn to_f64(self) -> f64;
    /// Absolute value.
    fn abs(self) -> Self;
    /// IEEE minimum of two values.
    fn min(self, other: Self) -> Self;
    /// Hyperbolic tangent.
    fn tanh(self) -> Self;
    /// Inverse hyperbolic tangent.
    fn atanh(self) -> Self;
    /// Natural logarithm.
    fn ln(self) -> Self;
    /// Natural exponential.
    fn exp(self) -> Self;
    /// The raw bit pattern, zero-extended to 64 bits — what the
    /// equivalence suites and golden fingerprints compare, so "equal"
    /// means *the same float*, not merely within epsilon.
    fn to_bits_u64(self) -> u64;
    /// The one LLR clamping helper: `clamp(-CLAMP, CLAMP)`. Both the
    /// scalar and batch paths (and the kernel) clamp exclusively through
    /// this method, so the clamping rule cannot drift between them.
    fn clamp_llr(self) -> Self;
}

impl Llr for f64 {
    const PRECISION: Precision = Precision::F64;
    const ZERO: Self = 0.0;
    const ONE: Self = 1.0;
    const TWO: Self = 2.0;
    const INFINITY: Self = f64::INFINITY;
    const CLAMP: Self = 1e6;
    const TANH_FLOOR: Self = 1e-300;
    const ATANH_CEIL: Self = 1.0 - 1e-15;

    #[cfg(target_arch = "x86_64")]
    type Avx2 = qldpc_simd::avx2::F64x4;
    #[cfg(target_arch = "x86_64")]
    type Avx512 = qldpc_simd::avx512::F64x8;
    #[cfg(target_arch = "aarch64")]
    type Neon = qldpc_simd::neon::F64x2;

    #[inline(always)]
    fn from_f64(x: f64) -> Self {
        x
    }
    #[inline(always)]
    fn to_f64(self) -> f64 {
        self
    }
    #[inline(always)]
    fn abs(self) -> Self {
        self.abs()
    }
    #[inline(always)]
    fn min(self, other: Self) -> Self {
        f64::min(self, other)
    }
    #[inline(always)]
    fn tanh(self) -> Self {
        f64::tanh(self)
    }
    #[inline(always)]
    fn atanh(self) -> Self {
        f64::atanh(self)
    }
    #[inline(always)]
    fn ln(self) -> Self {
        f64::ln(self)
    }
    #[inline(always)]
    fn exp(self) -> Self {
        f64::exp(self)
    }
    #[inline(always)]
    fn to_bits_u64(self) -> u64 {
        self.to_bits()
    }
    #[inline(always)]
    fn clamp_llr(self) -> Self {
        self.clamp(-Self::CLAMP, Self::CLAMP)
    }
}

impl Llr for f32 {
    const PRECISION: Precision = Precision::F32;
    const ZERO: Self = 0.0;
    const ONE: Self = 1.0;
    const TWO: Self = 2.0;
    const INFINITY: Self = f32::INFINITY;
    const CLAMP: Self = 1e6;
    // f32 subnormals start near 1e-38; 1e-30 leaves the same safety
    // margin over underflow that 1e-300 leaves in f64.
    const TANH_FLOOR: Self = 1e-30;
    // One f32 ULP below 1.0 is ~6e-8; back off to 1e-6 so
    // `atanh(ATANH_CEIL)` (≈ 7.3) stays far from the clamp.
    const ATANH_CEIL: Self = 1.0 - 1e-6;

    #[cfg(target_arch = "x86_64")]
    type Avx2 = qldpc_simd::avx2::F32x8;
    #[cfg(target_arch = "x86_64")]
    type Avx512 = qldpc_simd::avx512::F32x16;
    #[cfg(target_arch = "aarch64")]
    type Neon = qldpc_simd::neon::F32x4;

    #[inline(always)]
    fn from_f64(x: f64) -> Self {
        x as f32
    }
    #[inline(always)]
    fn to_f64(self) -> f64 {
        f64::from(self)
    }
    #[inline(always)]
    fn abs(self) -> Self {
        self.abs()
    }
    #[inline(always)]
    fn min(self, other: Self) -> Self {
        f32::min(self, other)
    }
    #[inline(always)]
    fn tanh(self) -> Self {
        f32::tanh(self)
    }
    #[inline(always)]
    fn atanh(self) -> Self {
        f32::atanh(self)
    }
    #[inline(always)]
    fn ln(self) -> Self {
        f32::ln(self)
    }
    #[inline(always)]
    fn exp(self) -> Self {
        f32::exp(self)
    }
    #[inline(always)]
    fn to_bits_u64(self) -> u64 {
        u64::from(self.to_bits())
    }
    #[inline(always)]
    fn clamp_llr(self) -> Self {
        self.clamp(-Self::CLAMP, Self::CLAMP)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn exercise<T: Llr>() {
        assert_eq!(T::ZERO + T::ONE, T::ONE);
        assert_eq!((-T::ONE).abs(), T::ONE);
        assert!(T::ONE < T::INFINITY);
        assert_eq!(T::from_f64(2.0), T::TWO);
        assert_eq!(T::TWO.to_f64(), 2.0);
        // The clamp helper pins both tails and passes the interior.
        assert_eq!(T::from_f64(1e9).clamp_llr(), T::CLAMP);
        assert_eq!(T::from_f64(-1e9).clamp_llr(), -T::CLAMP);
        assert_eq!(T::ONE.clamp_llr(), T::ONE);
        // The sum-product guards are strictly inside the finite range.
        assert!(T::TANH_FLOOR > T::ZERO);
        assert!(T::ATANH_CEIL < T::ONE);
        let atanh_ceil = T::ATANH_CEIL.atanh();
        assert!(atanh_ceil > T::ZERO && atanh_ceil < T::CLAMP);
        // Bit patterns are exact identities.
        assert_eq!(T::ONE.to_bits_u64(), T::ONE.to_bits_u64());
        assert_ne!(T::ONE.to_bits_u64(), T::TWO.to_bits_u64());
    }

    #[test]
    fn both_precisions_satisfy_the_contract() {
        exercise::<f64>();
        exercise::<f32>();
    }

    #[test]
    fn f64_constants_match_the_pre_generic_decoder() {
        // The pre-generic kernel clamped at 1e6, floored tanh factors at
        // 1e-300 and capped atanh inputs at 1 − 1e-15; the f64 goldens
        // pin the exact float stream, so these must never move.
        assert_eq!(<f64 as Llr>::CLAMP, 1e6);
        assert_eq!(<f64 as Llr>::TANH_FLOOR, 1e-300);
        assert_eq!(<f64 as Llr>::ATANH_CEIL, 1.0 - 1e-15);
    }

    #[test]
    fn f32_round_trips_through_f64_config_values() {
        let x = <f32 as Llr>::from_f64(0.123456789);
        assert_eq!(x, 0.123456789f64 as f32);
        assert_eq!(x.to_f64(), f64::from(0.123456789f64 as f32));
    }
}
