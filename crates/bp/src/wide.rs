//! Explicit-SIMD twins of the batch decoder's hot loops, behind runtime
//! dispatch.
//!
//! The scalar loops in [`batch`](crate::batch) and the check-update core
//! in [`kernel`](crate::kernel) remain the **bit-identity oracle**; this
//! module re-expresses the three hot per-iteration passes — the
//! two-minimum/argmin check update, the damping/posterior variable
//! update, and the slab syndrome check — as explicit wide kernels over
//! the `qldpc-simd` vector types, one monomorphization per
//! [`SimdTarget`]. Every wide op was chosen so each lane executes
//! *exactly* the scalar float stream (see the op-selection notes in
//! `vendor/simd/src/vec.rs`):
//!
//! * compares are ordered `<` (NaN → false), matching the branchy
//!   scalar selects — never `min`/`max` intrinsics, whose NaN handling
//!   diverges from `Llr::clamp_llr` (reachable: `alpha = 0` ×
//!   degree-1 check gives `0 · INF = NaN`);
//! * negation and `abs` are sign-bit ops, exact for `-0.0` messages;
//! * products round one multiply at a time (no FMA), in the scalar
//!   code's association order.
//!
//! Lane tails (`width % LANES`) run an inline scalar epilogue that
//! copies the oracle loop verbatim. The dispatch wrappers carry
//! `#[target_feature]`, so the generic bodies below compile once per
//! instruction set with full vector codegen; they are only reachable
//! through [`dispatch`](SimdTarget) after runtime feature detection,
//! which is the single safety contract of the unsafe vector ops.

use crate::decoder::{BpAlgorithm, BpConfig};
use crate::graph::TannerGraph;
use crate::llr::Llr;
use qldpc_decoder_api::Precision;
use qldpc_simd::{SimdBytes, SimdF, SimdTarget};

/// Vector lane count of `target` at message precision `T`.
pub(crate) fn lane_width<T: Llr>(target: SimdTarget) -> usize {
    match T::PRECISION {
        Precision::F32 => target.f32_lanes(),
        Precision::F64 => target.f64_lanes(),
    }
}

/// Resolves the dispatch target one decode runs at: the config's pin if
/// set (validated against the CPU), the process-wide
/// [`active_target`](qldpc_simd::active_target) otherwise — except that
/// the sum-product rule always runs scalar (its tanh/ln/exp chain has
/// no wide twin).
///
/// # Panics
///
/// Panics if the config pins a target the current CPU does not support:
/// a silently degraded pin would fake forced-target test coverage.
pub(crate) fn resolve_target(config: &BpConfig) -> SimdTarget {
    let target = match config.simd_target {
        Some(t) => {
            assert!(
                t.is_available(),
                "BpConfig::simd_target pins {t}, which this CPU does not support \
                 (supported: {:?})",
                qldpc_simd::supported_targets()
                    .iter()
                    .map(|s| s.name())
                    .collect::<Vec<_>>()
            );
            t
        }
        None => qldpc_simd::active_target(),
    };
    if config.algorithm == BpAlgorithm::SumProduct {
        SimdTarget::Scalar
    } else {
        target
    }
}

/// The next-narrower dispatch target, used by the batch engine to step
/// an *auto-detected* target down when a tile holds fewer lanes than
/// one vector (pinned targets are never stepped down).
pub(crate) fn step_down(target: SimdTarget) -> SimdTarget {
    match target {
        SimdTarget::Avx512 => SimdTarget::Avx2,
        _ => SimdTarget::Scalar,
    }
}

/// Borrowed view of one iteration's slabs, shared by the flooding and
/// layered wide kernels. `width` is the (possibly padded) live prefix;
/// every slab row must be valid for `width` lanes at stride `lanes`.
pub(crate) struct IterArgs<'a, T: Llr> {
    pub graph: &'a TannerGraph,
    pub lane_channel: &'a [T],
    pub syndrome_sign: &'a [T],
    pub c2v: &'a mut [T],
    pub v2c: &'a mut [T],
    pub posterior: &'a mut [T],
    /// Posterior-memory strength γ (flooding only).
    pub gamma: f64,
    pub alpha: T,
    pub lanes: usize,
    pub width: usize,
}

/// One flooding iteration on a wide target (V2C with optional memory
/// blending, check updates, posteriors).
///
/// `target` must be a non-scalar target supported by this CPU (the
/// caller dispatches scalar through the oracle loops in `batch.rs`).
pub(crate) fn flooding_wide<T: Llr>(target: SimdTarget, args: IterArgs<'_, T>) {
    match target {
        #[cfg(target_arch = "x86_64")]
        // SAFETY: the caller only passes targets whose runtime feature
        // check succeeded (resolve_target / supported_targets).
        SimdTarget::Avx2 => unsafe { flooding_avx2(args) },
        #[cfg(target_arch = "x86_64")]
        // SAFETY: as above.
        SimdTarget::Avx512 => unsafe { flooding_avx512(args) },
        #[cfg(target_arch = "aarch64")]
        // SAFETY: as above.
        SimdTarget::Neon => unsafe { flooding_neon(args) },
        _ => unreachable!("scalar/unsupported target dispatched to the wide flooding kernel"),
    }
}

/// One layered iteration on a wide target (per-check V2C refresh, check
/// update, immediate posterior propagation).
pub(crate) fn layered_wide<T: Llr>(target: SimdTarget, args: IterArgs<'_, T>) {
    match target {
        #[cfg(target_arch = "x86_64")]
        // SAFETY: the caller only passes targets whose runtime feature
        // check succeeded (resolve_target / supported_targets).
        SimdTarget::Avx2 => unsafe { layered_avx2(args) },
        #[cfg(target_arch = "x86_64")]
        // SAFETY: as above.
        SimdTarget::Avx512 => unsafe { layered_avx512(args) },
        #[cfg(target_arch = "aarch64")]
        // SAFETY: as above.
        SimdTarget::Neon => unsafe { layered_neon(args) },
        _ => unreachable!("scalar/unsupported target dispatched to the wide layered kernel"),
    }
}

/// The slab syndrome check on a wide target: fills `ok[..width]` with
/// per-lane `H·ê == s` verdicts via byte-wide XOR/AND rows.
///
/// Exact boolean arithmetic — bit-identity is trivial; the win is the
/// byte vector width (32/64 lanes per op on AVX2/AVX-512).
#[allow(clippy::too_many_arguments)]
pub(crate) fn lane_ok_wide(
    target: SimdTarget,
    graph: &TannerGraph,
    hard: &[bool],
    syndrome_bit: &[bool],
    ok: &mut [bool],
    parity: &mut [bool],
    lanes: usize,
    width: usize,
) {
    match target {
        #[cfg(target_arch = "x86_64")]
        // SAFETY: the caller only passes targets whose runtime feature
        // check succeeded (resolve_target / supported_targets).
        SimdTarget::Avx2 => unsafe {
            lane_ok_avx2(graph, hard, syndrome_bit, ok, parity, lanes, width)
        },
        #[cfg(target_arch = "x86_64")]
        // SAFETY: as above.
        SimdTarget::Avx512 => unsafe {
            lane_ok_avx512(graph, hard, syndrome_bit, ok, parity, lanes, width)
        },
        #[cfg(target_arch = "aarch64")]
        // SAFETY: as above.
        SimdTarget::Neon => unsafe {
            lane_ok_neon(graph, hard, syndrome_bit, ok, parity, lanes, width)
        },
        _ => unreachable!("scalar/unsupported target dispatched to the wide syndrome check"),
    }
}

// ---------------------------------------------------------------------
// #[target_feature] wrappers: one monomorphization of each generic body
// per instruction set, so the bodies inline and compile with full wide
// codegen. Only reachable through the dispatchers above.
// ---------------------------------------------------------------------

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn flooding_avx2<T: Llr>(args: IterArgs<'_, T>) {
    flooding_body::<T, T::Avx2>(args)
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx512f,avx512bw,avx512dq,avx512vl")]
unsafe fn flooding_avx512<T: Llr>(args: IterArgs<'_, T>) {
    flooding_body::<T, T::Avx512>(args)
}

#[cfg(target_arch = "aarch64")]
#[target_feature(enable = "neon")]
unsafe fn flooding_neon<T: Llr>(args: IterArgs<'_, T>) {
    flooding_body::<T, T::Neon>(args)
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn layered_avx2<T: Llr>(args: IterArgs<'_, T>) {
    layered_body::<T, T::Avx2>(args)
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx512f,avx512bw,avx512dq,avx512vl")]
unsafe fn layered_avx512<T: Llr>(args: IterArgs<'_, T>) {
    layered_body::<T, T::Avx512>(args)
}

#[cfg(target_arch = "aarch64")]
#[target_feature(enable = "neon")]
unsafe fn layered_neon<T: Llr>(args: IterArgs<'_, T>) {
    layered_body::<T, T::Neon>(args)
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn lane_ok_avx2(
    graph: &TannerGraph,
    hard: &[bool],
    syndrome_bit: &[bool],
    ok: &mut [bool],
    parity: &mut [bool],
    lanes: usize,
    width: usize,
) {
    lane_ok_body::<qldpc_simd::avx2::B8x32>(graph, hard, syndrome_bit, ok, parity, lanes, width)
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx512f,avx512bw,avx512dq,avx512vl")]
unsafe fn lane_ok_avx512(
    graph: &TannerGraph,
    hard: &[bool],
    syndrome_bit: &[bool],
    ok: &mut [bool],
    parity: &mut [bool],
    lanes: usize,
    width: usize,
) {
    lane_ok_body::<qldpc_simd::avx512::B8x64>(graph, hard, syndrome_bit, ok, parity, lanes, width)
}

#[cfg(target_arch = "aarch64")]
#[target_feature(enable = "neon")]
unsafe fn lane_ok_neon(
    graph: &TannerGraph,
    hard: &[bool],
    syndrome_bit: &[bool],
    ok: &mut [bool],
    parity: &mut [bool],
    lanes: usize,
    width: usize,
) {
    lane_ok_body::<qldpc_simd::neon::B8x16>(graph, hard, syndrome_bit, ok, parity, lanes, width)
}

// ---------------------------------------------------------------------
// Generic kernel bodies. `#[inline(always)]` so they monomorphize
// *inside* the feature wrappers above and pick up their codegen
// features.
// ---------------------------------------------------------------------

/// `clamp_llr` as two compare-blends, matching Rust's `clamp` for every
/// input including NaN (`max`/`min` intrinsics would not: e.g.
/// `maxpd(NaN, lo) = lo`, but `NaN.clamp(lo, hi) = NaN`).
#[inline(always)]
unsafe fn clamp_v<T: Llr, V: SimdF<Elem = T>>(x: V) -> V {
    let lo = V::splat(-T::CLAMP);
    let hi = V::splat(T::CLAMP);
    let t1 = V::select_lt(x, lo, lo, x);
    V::select_lt(hi, t1, hi, t1)
}

/// One flooding iteration: the wide twin of
/// `BatchMinSumDecoderOf::flooding_iteration`, lane for lane, op for op.
#[inline(always)]
unsafe fn flooding_body<T: Llr, V: SimdF<Elem = T>>(args: IterArgs<'_, T>) {
    let IterArgs {
        graph,
        lane_channel,
        syndrome_sign,
        c2v,
        v2c,
        posterior,
        gamma,
        alpha,
        lanes,
        width,
    } = args;
    let w = V::LANES;
    let main = width - width % w;
    let lch = lane_channel.as_ptr();
    let c2vp = c2v.as_mut_ptr();
    let v2cp = v2c.as_mut_ptr();
    let postp = posterior.as_mut_ptr();

    // V2C (paper Eq. 5): v2c[e] = lch[v] + Σ_{e'} c2v[e'] − c2v[e],
    // accumulated in the graph's edge order like the scalar pass. The
    // per-lane running sum lives in a register instead of the lane_sum
    // slab — same additions, same order, no memory traffic.
    for v in 0..graph.num_vars() {
        let vb = v * lanes;
        let edges = graph.var_edges(v);
        let mut b = 0;
        while b < main {
            let mut sum = if gamma == 0.0 {
                V::load(lch.add(vb + b))
            } else {
                let g = T::from_f64(gamma);
                let blend = V::splat(T::ONE - g).mul(V::load(lch.add(vb + b)));
                blend.add(V::splat(g).mul(V::load(postp.add(vb + b))))
            };
            for &e in edges {
                sum = sum.add(V::load(c2vp.add(e as usize * lanes + b)));
            }
            for &e in edges {
                let m = V::load(c2vp.add(e as usize * lanes + b));
                clamp_v::<T, V>(sum.sub(m)).store(v2cp.add(e as usize * lanes + b));
            }
            b += w;
        }
        for b in main..width {
            let mut sum = if gamma == 0.0 {
                *lch.add(vb + b)
            } else {
                let g = T::from_f64(gamma);
                (T::ONE - g) * *lch.add(vb + b) + g * *postp.add(vb + b)
            };
            for &e in edges {
                sum += *c2vp.add(e as usize * lanes + b);
            }
            for &e in edges {
                let m = *c2vp.add(e as usize * lanes + b);
                *v2cp.add(e as usize * lanes + b) = (sum - m).clamp_llr();
            }
        }
    }

    // C2V (paper Eq. 6).
    let ssp = syndrome_sign.as_ptr();
    for c in 0..graph.num_checks() {
        let range = graph.check_edges(c);
        check_update_body::<T, V>(
            v2cp.add(range.start * lanes).cast_const(),
            c2vp.add(range.start * lanes),
            ssp.add(c * lanes),
            range.len(),
            lanes,
            width,
            alpha,
        );
    }

    // Posteriors (paper Eq. 7).
    for v in 0..graph.num_vars() {
        let vb = v * lanes;
        let edges = graph.var_edges(v);
        let mut b = 0;
        while b < main {
            let mut sum = V::load(lch.add(vb + b));
            for &e in edges {
                sum = sum.add(V::load(c2vp.add(e as usize * lanes + b)));
            }
            clamp_v::<T, V>(sum).store(postp.add(vb + b));
            b += w;
        }
        for b in main..width {
            let mut sum = *lch.add(vb + b);
            for &e in edges {
                sum += *c2vp.add(e as usize * lanes + b);
            }
            *postp.add(vb + b) = sum.clamp_llr();
        }
    }
}

/// One layered iteration: the wide twin of
/// `BatchMinSumDecoderOf::layered_iteration`.
#[inline(always)]
unsafe fn layered_body<T: Llr, V: SimdF<Elem = T>>(args: IterArgs<'_, T>) {
    let IterArgs {
        graph,
        syndrome_sign,
        c2v,
        v2c,
        posterior,
        alpha,
        lanes,
        width,
        ..
    } = args;
    let w = V::LANES;
    let main = width - width % w;
    let c2vp = c2v.as_mut_ptr();
    let v2cp = v2c.as_mut_ptr();
    let postp = posterior.as_mut_ptr();
    let ssp = syndrome_sign.as_ptr();

    for c in 0..graph.num_checks() {
        let range = graph.check_edges(c);
        // Fresh V2C from the running posterior, removing this check's
        // previous contribution.
        for e in range.clone() {
            let v = graph.edge_var(e);
            let (eb, vb) = (e * lanes, v * lanes);
            let mut b = 0;
            while b < main {
                let p = V::load(postp.add(vb + b));
                let m = V::load(c2vp.add(eb + b));
                clamp_v::<T, V>(p.sub(m)).store(v2cp.add(eb + b));
                b += w;
            }
            for b in main..width {
                *v2cp.add(eb + b) = (*postp.add(vb + b) - *c2vp.add(eb + b)).clamp_llr();
            }
        }
        check_update_body::<T, V>(
            v2cp.add(range.start * lanes).cast_const(),
            c2vp.add(range.start * lanes),
            ssp.add(c * lanes),
            range.len(),
            lanes,
            width,
            alpha,
        );
        for e in range {
            let v = graph.edge_var(e);
            let (eb, vb) = (e * lanes, v * lanes);
            let mut b = 0;
            while b < main {
                let a = V::load(v2cp.add(eb + b));
                let m = V::load(c2vp.add(eb + b));
                clamp_v::<T, V>(a.add(m)).store(postp.add(vb + b));
                b += w;
            }
            for b in main..width {
                *postp.add(vb + b) = (*v2cp.add(eb + b) + *c2vp.add(eb + b)).clamp_llr();
            }
        }
    }
}

/// The branchless two-minimum/argmin check update (min-sum, paper
/// Eq. 6) for one check over all lane groups: the wide twin of the
/// `MinSum` arm of `kernel::update_check_lanes`.
///
/// The whole reduction state (min1/min2/argmin/sign) stays in vector
/// registers across both passes over the check's edges — the scratch
/// slab of the scalar oracle holds exactly these values, so the float
/// stream per lane is unchanged. Select-op choices mirror the oracle's
/// branchy assignments:
///
/// * `second = a<b ? min1 : min2`, then `min2' = new_best ? old_min1 :
///   (mag<min2 ? mag : min2)` — equal to the oracle's
///   `if mag < min2 && !new_best` arm for every input, NaN included;
/// * `argmin` updates under the *old* `min1` compare, before `min1` is
///   overwritten;
/// * sign flips are compare+blend on `m < 0`, so `-0.0` messages keep
///   the oracle's "not negative" classification.
#[inline(always)]
unsafe fn check_update_body<T: Llr, V: SimdF<Elem = T>>(
    v2c: *const T,
    c2v: *mut T,
    base_sign: *const T,
    deg: usize,
    stride: usize,
    width: usize,
    alpha: T,
) {
    let w = V::LANES;
    let main = width - width % w;
    let zero = V::splat(T::ZERO);
    let alpha_v = V::splat(alpha);
    let pos_one = V::splat(T::ONE);
    let neg_one = V::splat(-T::ONE);
    let mut b = 0;
    while b < main {
        let mut min1 = V::splat(T::INFINITY);
        let mut min2 = V::splat(T::INFINITY);
        let mut argmin = V::idx_splat(u32::MAX);
        let mut sign = V::load(base_sign.add(b));
        for j in 0..deg {
            let m = V::load(v2c.add(j * stride + b));
            let mag = m.abs();
            let second = V::select_lt(mag, min1, min1, min2);
            let tmp = V::select_lt(mag, min2, mag, second);
            let new_min2 = V::select_lt(mag, min1, second, tmp);
            argmin = V::idx_select_lt(mag, min1, V::idx_splat(j as u32), argmin);
            min1 = V::select_lt(mag, min1, mag, min1);
            min2 = new_min2;
            sign = V::select_lt(m, zero, sign.neg(), sign);
        }
        for j in 0..deg {
            let m = V::load(v2c.add(j * stride + b));
            let mag = V::select_idx_eq(argmin, V::idx_splat(j as u32), min2, min1);
            let own = V::select_lt(m, zero, neg_one, pos_one);
            let out = sign.mul(own).mul(alpha_v).mul(mag);
            clamp_v::<T, V>(out).store(c2v.add(j * stride + b));
        }
        b += w;
    }
    // Scalar epilogue: the oracle's loop verbatim, with the per-lane
    // scratch values in locals.
    for b in main..width {
        let mut min1 = T::INFINITY;
        let mut min2 = T::INFINITY;
        let mut argmin = u32::MAX;
        let mut sign = *base_sign.add(b);
        for j in 0..deg {
            let m = *v2c.add(j * stride + b);
            let mag = m.abs();
            let new_best = mag < min1;
            let second = if new_best { min1 } else { min2 };
            min2 = if mag < min2 && !new_best { mag } else { second };
            min1 = if new_best { mag } else { min1 };
            argmin = if new_best { j as u32 } else { argmin };
            sign = if m < T::ZERO { -sign } else { sign };
        }
        for j in 0..deg {
            let m = *v2c.add(j * stride + b);
            let mag = if j as u32 == argmin { min2 } else { min1 };
            let own_sign = if m < T::ZERO { -T::ONE } else { T::ONE };
            *c2v.add(j * stride + b) = (sign * own_sign * alpha * mag).clamp_llr();
        }
    }
}

/// The slab syndrome check: the wide twin of the vectorizable branch of
/// `BatchMinSumDecoderOf::compute_lane_ok`, on byte rows. `bool` slabs
/// are read and written through `u8` pointers — sound because `bool` is
/// one byte with values 0/1, and XOR/AND of 0/1 bytes stay 0/1.
#[inline(always)]
unsafe fn lane_ok_body<B: SimdBytes>(
    graph: &TannerGraph,
    hard: &[bool],
    syndrome_bit: &[bool],
    ok: &mut [bool],
    parity: &mut [bool],
    lanes: usize,
    width: usize,
) {
    let w = B::LANES;
    let main = width - width % w;
    let hardp = hard.as_ptr().cast::<u8>();
    let synp = syndrome_bit.as_ptr().cast::<u8>();
    let okp = ok.as_mut_ptr().cast::<u8>();
    let parp = parity.as_mut_ptr().cast::<u8>();
    let one = B::splat(1);
    for b in 0..width {
        *okp.add(b) = 1;
    }
    for c in 0..graph.num_checks() {
        for b in 0..width {
            *parp.add(b) = 0;
        }
        for &v in graph.check_vars(c) {
            let vb = v as usize * lanes;
            let mut b = 0;
            while b < main {
                let p = B::load(parp.add(b));
                let h = B::load(hardp.add(vb + b));
                p.xor(h).store(parp.add(b));
                b += w;
            }
            for b in main..width {
                *parp.add(b) ^= *hardp.add(vb + b);
            }
        }
        // o &= (p == s), as pure byte algebra: (p ^ s) ^ 1.
        let cb = c * lanes;
        let mut b = 0;
        while b < main {
            let p = B::load(parp.add(b));
            let s = B::load(synp.add(cb + b));
            let o = B::load(okp.add(b));
            o.and(p.xor(s).xor(one)).store(okp.add(b));
            b += w;
        }
        for b in main..width {
            *okp.add(b) &= (*parp.add(b) ^ *synp.add(cb + b)) ^ 1;
        }
    }
}
