//! [`SyndromeDecoder`] implementation: plain BP *is* a decoder of the
//! unified stack API, with no adapter type in between.
//!
//! Both precision instantiations implement the trait through one generic
//! impl; `f64` decoders keep their historical labels (`"BP100"`), the
//! `f32` ones append the precision suffix (`"BP100@f32"`), and
//! [`SyndromeDecoder::precision`] reports the message width either way so
//! run reports and service metrics can record it.

use crate::llr::Llr;
use crate::{BatchMinSumDecoderOf, BpResult, MinSumDecoderOf, Schedule};
use qldpc_decoder_api::{
    DecodeOutcome, DecodeTelemetry, DecoderFamily, Precision, SyndromeDecoder,
};
use qldpc_gf2::BitVec;

fn outcome_from<T: Llr>(r: BpResult<T>) -> DecodeOutcome {
    let mut telemetry = DecodeTelemetry::bp(r.iterations, r.converged);
    // Populated only under `track_oscillations`; stays 0 otherwise.
    telemetry.oscillating_bits = r.flip_counts.iter().filter(|&&c| c >= 2).count() as u64;
    DecodeOutcome {
        error_hat: r.error_hat,
        solved: r.converged,
        serial_iterations: r.iterations,
        critical_iterations: r.iterations,
        postprocessed: false,
        telemetry,
    }
}

impl<T: Llr> SyndromeDecoder for MinSumDecoderOf<T> {
    fn decode_syndrome(&mut self, syndrome: &BitVec) -> DecodeOutcome {
        outcome_from(self.decode(syndrome))
    }

    /// `"BP{max_iters}"`, or `"LayeredBP{max_iters}"` under the layered
    /// schedule — the paper's baseline names — plus the precision suffix
    /// (`"@f32"`) when not running the reference `f64` arithmetic.
    fn label(&self) -> String {
        let c = self.config();
        let suffix = T::PRECISION.label_suffix();
        match c.schedule {
            Schedule::Flooding => format!("BP{}{suffix}", c.max_iters),
            Schedule::Layered => format!("LayeredBP{}{suffix}", c.max_iters),
        }
    }

    fn precision(&self) -> Precision {
        T::PRECISION
    }

    fn family(&self) -> DecoderFamily {
        DecoderFamily::Bp
    }

    /// Overrides the default per-shot loop with the shot-interleaved
    /// batch kernel ([`BatchMinSumDecoderOf`]), which is bit-identical
    /// per lane at this precision — the batch-vs-scalar property suite
    /// pins this.
    ///
    /// The engine is cached inside the decoder and re-synced to the
    /// current config/priors on every call, so `config_mut`/`set_priors`
    /// changes between calls are honored while the message slabs are
    /// reused across batches.
    fn decode_batch(&mut self, syndromes: &[BitVec]) -> Vec<DecodeOutcome> {
        if syndromes.len() < 2 {
            return syndromes.iter().map(|s| self.decode_syndrome(s)).collect();
        }
        self.batch_engine()
            .decode_batch_results(syndromes)
            .into_iter()
            .map(outcome_from)
            .collect()
    }
}

impl<T: Llr> SyndromeDecoder for BatchMinSumDecoderOf<T> {
    fn decode_syndrome(&mut self, syndrome: &BitVec) -> DecodeOutcome {
        outcome_from(self.decode(syndrome))
    }

    /// `"BatchBP{max_iters}"` (`"BatchLayeredBP{max_iters}"` under the
    /// layered schedule) — distinguishable from the scalar baseline in
    /// run reports while decoding identically — with the same precision
    /// suffix rule as the scalar decoder.
    fn label(&self) -> String {
        let c = self.config();
        let suffix = T::PRECISION.label_suffix();
        match c.schedule {
            Schedule::Flooding => format!("BatchBP{}{suffix}", c.max_iters),
            Schedule::Layered => format!("BatchLayeredBP{}{suffix}", c.max_iters),
        }
    }

    fn precision(&self) -> Precision {
        T::PRECISION
    }

    fn family(&self) -> DecoderFamily {
        DecoderFamily::Bp
    }

    fn decode_batch(&mut self, syndromes: &[BitVec]) -> Vec<DecodeOutcome> {
        self.decode_batch_results(syndromes)
            .into_iter()
            .map(outcome_from)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{BatchMinSumDecoderF32, BpConfig, MinSumDecoder, MinSumDecoderF32};
    use qldpc_gf2::SparseBitMatrix;

    fn tiny_h() -> SparseBitMatrix {
        SparseBitMatrix::from_row_indices(2, 3, &[vec![0, 1], vec![1, 2]])
    }

    #[test]
    fn labels_follow_schedule() {
        let h = tiny_h();
        let flooding = MinSumDecoder::new(
            &h,
            &[0.1; 3],
            BpConfig {
                max_iters: 42,
                ..BpConfig::default()
            },
        );
        assert_eq!(flooding.label(), "BP42");
        let layered = MinSumDecoder::new(
            &h,
            &[0.1; 3],
            BpConfig {
                max_iters: 7,
                schedule: Schedule::Layered,
                ..BpConfig::default()
            },
        );
        assert_eq!(layered.label(), "LayeredBP7");
    }

    #[test]
    fn f32_labels_carry_the_precision_suffix() {
        let h = tiny_h();
        let config = BpConfig {
            max_iters: 42,
            ..BpConfig::default()
        };
        let scalar = MinSumDecoderF32::new(&h, &[0.1; 3], config);
        assert_eq!(scalar.label(), "BP42@f32");
        assert_eq!(scalar.precision(), Precision::F32);
        let batch = BatchMinSumDecoderF32::new(&h, &[0.1; 3], config);
        assert_eq!(batch.label(), "BatchBP42@f32");
        assert_eq!(batch.precision(), Precision::F32);
        // The reference decoder still reports (and labels as) f64.
        let reference = MinSumDecoder::new(&h, &[0.1; 3], config);
        assert_eq!(reference.precision(), Precision::F64);
        assert_eq!(reference.label(), "BP42");
    }

    #[test]
    fn trait_decode_matches_inherent_decode() {
        let h = tiny_h();
        let mut a = MinSumDecoder::new(&h, &[0.1; 3], BpConfig::default());
        let mut b = a.clone();
        let s = BitVec::from_indices(2, &[0]);
        let direct = a.decode(&s);
        let via_trait = b.decode_syndrome(&s);
        assert_eq!(direct.converged, via_trait.solved);
        assert_eq!(direct.error_hat, via_trait.error_hat);
        assert_eq!(direct.iterations, via_trait.serial_iterations);
        assert!(!via_trait.postprocessed);
    }

    #[test]
    fn f32_trait_objects_slot_into_the_stack_api() {
        let h = tiny_h();
        let mut dec: Box<dyn SyndromeDecoder> =
            Box::new(MinSumDecoderF32::new(&h, &[0.1; 3], BpConfig::default()));
        let out = dec.decode_syndrome(&BitVec::zeros(2));
        assert!(out.solved);
        assert!(out.error_hat.is_zero());
        assert_eq!(dec.precision(), Precision::F32);
        let batch = dec.decode_batch(&[BitVec::zeros(2), BitVec::from_indices(2, &[0])]);
        assert_eq!(batch.len(), 2);
    }
}
