//! [`SyndromeDecoder`] implementation: plain BP *is* a decoder of the
//! unified stack API, with no adapter type in between.

use crate::{MinSumDecoder, Schedule};
use qldpc_decoder_api::{DecodeOutcome, SyndromeDecoder};
use qldpc_gf2::BitVec;

impl SyndromeDecoder for MinSumDecoder {
    fn decode_syndrome(&mut self, syndrome: &BitVec) -> DecodeOutcome {
        let r = self.decode(syndrome);
        DecodeOutcome {
            error_hat: r.error_hat,
            solved: r.converged,
            serial_iterations: r.iterations,
            critical_iterations: r.iterations,
            postprocessed: false,
        }
    }

    /// `"BP{max_iters}"`, or `"LayeredBP{max_iters}"` under the layered
    /// schedule — the paper's baseline names.
    fn label(&self) -> String {
        let c = self.config();
        match c.schedule {
            Schedule::Flooding => format!("BP{}", c.max_iters),
            Schedule::Layered => format!("LayeredBP{}", c.max_iters),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::BpConfig;
    use qldpc_gf2::SparseBitMatrix;

    fn tiny_h() -> SparseBitMatrix {
        SparseBitMatrix::from_row_indices(2, 3, &[vec![0, 1], vec![1, 2]])
    }

    #[test]
    fn labels_follow_schedule() {
        let h = tiny_h();
        let flooding = MinSumDecoder::new(
            &h,
            &[0.1; 3],
            BpConfig {
                max_iters: 42,
                ..BpConfig::default()
            },
        );
        assert_eq!(flooding.label(), "BP42");
        let layered = MinSumDecoder::new(
            &h,
            &[0.1; 3],
            BpConfig {
                max_iters: 7,
                schedule: Schedule::Layered,
                ..BpConfig::default()
            },
        );
        assert_eq!(layered.label(), "LayeredBP7");
    }

    #[test]
    fn trait_decode_matches_inherent_decode() {
        let h = tiny_h();
        let mut a = MinSumDecoder::new(&h, &[0.1; 3], BpConfig::default());
        let mut b = a.clone();
        let s = BitVec::from_indices(2, &[0]);
        let direct = a.decode(&s);
        let via_trait = b.decode_syndrome(&s);
        assert_eq!(direct.converged, via_trait.solved);
        assert_eq!(direct.error_hat, via_trait.error_hat);
        assert_eq!(direct.iterations, via_trait.serial_iterations);
        assert!(!via_trait.postprocessed);
    }
}
