//! [`SyndromeDecoder`] implementation: plain BP *is* a decoder of the
//! unified stack API, with no adapter type in between.

use crate::{BatchMinSumDecoder, BpResult, MinSumDecoder, Schedule};
use qldpc_decoder_api::{DecodeOutcome, SyndromeDecoder};
use qldpc_gf2::BitVec;

fn outcome_from(r: BpResult) -> DecodeOutcome {
    DecodeOutcome {
        error_hat: r.error_hat,
        solved: r.converged,
        serial_iterations: r.iterations,
        critical_iterations: r.iterations,
        postprocessed: false,
    }
}

impl SyndromeDecoder for MinSumDecoder {
    fn decode_syndrome(&mut self, syndrome: &BitVec) -> DecodeOutcome {
        outcome_from(self.decode(syndrome))
    }

    /// `"BP{max_iters}"`, or `"LayeredBP{max_iters}"` under the layered
    /// schedule — the paper's baseline names.
    fn label(&self) -> String {
        let c = self.config();
        match c.schedule {
            Schedule::Flooding => format!("BP{}", c.max_iters),
            Schedule::Layered => format!("LayeredBP{}", c.max_iters),
        }
    }

    /// Overrides the default per-shot loop with the shot-interleaved
    /// batch kernel ([`BatchMinSumDecoder`]), which is bit-identical per
    /// lane — the batch-vs-scalar property suite pins this.
    ///
    /// The engine is cached inside the decoder and re-synced to the
    /// current config/priors on every call, so `config_mut`/`set_priors`
    /// changes between calls are honored while the message slabs are
    /// reused across batches.
    fn decode_batch(&mut self, syndromes: &[BitVec]) -> Vec<DecodeOutcome> {
        if syndromes.len() < 2 {
            return syndromes.iter().map(|s| self.decode_syndrome(s)).collect();
        }
        self.batch_engine()
            .decode_batch_results(syndromes)
            .into_iter()
            .map(outcome_from)
            .collect()
    }
}

impl SyndromeDecoder for BatchMinSumDecoder {
    fn decode_syndrome(&mut self, syndrome: &BitVec) -> DecodeOutcome {
        outcome_from(self.decode(syndrome))
    }

    /// `"BatchBP{max_iters}"` (`"BatchLayeredBP{max_iters}"` under the
    /// layered schedule) — distinguishable from the scalar baseline in
    /// run reports while decoding identically.
    fn label(&self) -> String {
        let c = self.config();
        match c.schedule {
            Schedule::Flooding => format!("BatchBP{}", c.max_iters),
            Schedule::Layered => format!("BatchLayeredBP{}", c.max_iters),
        }
    }

    fn decode_batch(&mut self, syndromes: &[BitVec]) -> Vec<DecodeOutcome> {
        self.decode_batch_results(syndromes)
            .into_iter()
            .map(outcome_from)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::BpConfig;
    use qldpc_gf2::SparseBitMatrix;

    fn tiny_h() -> SparseBitMatrix {
        SparseBitMatrix::from_row_indices(2, 3, &[vec![0, 1], vec![1, 2]])
    }

    #[test]
    fn labels_follow_schedule() {
        let h = tiny_h();
        let flooding = MinSumDecoder::new(
            &h,
            &[0.1; 3],
            BpConfig {
                max_iters: 42,
                ..BpConfig::default()
            },
        );
        assert_eq!(flooding.label(), "BP42");
        let layered = MinSumDecoder::new(
            &h,
            &[0.1; 3],
            BpConfig {
                max_iters: 7,
                schedule: Schedule::Layered,
                ..BpConfig::default()
            },
        );
        assert_eq!(layered.label(), "LayeredBP7");
    }

    #[test]
    fn trait_decode_matches_inherent_decode() {
        let h = tiny_h();
        let mut a = MinSumDecoder::new(&h, &[0.1; 3], BpConfig::default());
        let mut b = a.clone();
        let s = BitVec::from_indices(2, &[0]);
        let direct = a.decode(&s);
        let via_trait = b.decode_syndrome(&s);
        assert_eq!(direct.converged, via_trait.solved);
        assert_eq!(direct.error_hat, via_trait.error_hat);
        assert_eq!(direct.iterations, via_trait.serial_iterations);
        assert!(!via_trait.postprocessed);
    }
}
