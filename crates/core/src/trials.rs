//! Trial-vector generation over the candidate set Φ.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::Rng;
use std::collections::HashSet;

/// An ordered collection of trial vectors, each a subset of the candidate
/// set given as variable indices.
///
/// Two regimes (paper §V):
///
/// * [`TrialVectors::exhaustive`] — every non-empty subset of Φ of size
///   `≤ w_max`, in ascending weight order (code-capacity regime),
/// * [`TrialVectors::sampled`] — `n_s` distinct random subsets per weight
///   `1..=w_max` (circuit-level regime, where exhaustive enumeration over
///   |Φ| = 50 is infeasible).
///
/// # Examples
///
/// ```
/// use bpsf_core::TrialVectors;
///
/// let trials = TrialVectors::exhaustive(&[10, 20, 30], 2);
/// assert_eq!(trials.len(), 3 + 3); // three singletons, three pairs
/// assert_eq!(trials.vectors()[0], vec![10]);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TrialVectors {
    vectors: Vec<Vec<usize>>,
}

impl TrialVectors {
    /// Enumerates every non-empty subset of `candidates` with size at most
    /// `max_weight`, lightest first (cheap, most likely trials first).
    pub fn exhaustive(candidates: &[usize], max_weight: usize) -> Self {
        let mut vectors = Vec::new();
        let k = candidates.len();
        for w in 1..=max_weight.min(k) {
            // Lexicographic combinations of w indices out of k.
            let mut idx: Vec<usize> = (0..w).collect();
            loop {
                vectors.push(idx.iter().map(|&i| candidates[i]).collect());
                // Find the rightmost index that can still advance.
                let Some(i) = (0..w).rev().find(|&i| idx[i] != i + k - w) else {
                    break;
                };
                idx[i] += 1;
                for j in i + 1..w {
                    idx[j] = idx[j - 1] + 1;
                }
            }
        }
        Self { vectors }
    }

    /// Draws `per_weight` *distinct* random subsets of each size
    /// `1..=max_weight` from `candidates`. Weight-1 subsets are capped by
    /// `candidates.len()`; duplicate draws are retried a bounded number of
    /// times, so fewer than `per_weight` subsets can be returned for tiny
    /// candidate sets.
    pub fn sampled(
        candidates: &[usize],
        max_weight: usize,
        per_weight: usize,
        rng: &mut StdRng,
    ) -> Self {
        let k = candidates.len();
        let mut vectors = Vec::new();
        let mut seen: HashSet<Vec<usize>> = HashSet::new();
        for w in 1..=max_weight.min(k) {
            let mut produced = 0usize;
            let mut attempts = 0usize;
            let max_attempts = per_weight * 20 + 20;
            while produced < per_weight && attempts < max_attempts {
                attempts += 1;
                let mut subset = sample_subset(candidates, w, rng);
                subset.sort_unstable();
                if seen.insert(subset.clone()) {
                    vectors.push(subset);
                    produced += 1;
                }
            }
        }
        Self { vectors }
    }

    /// The trial vectors, in decode order.
    pub fn vectors(&self) -> &[Vec<usize>] {
        &self.vectors
    }

    /// Number of trials.
    pub fn len(&self) -> usize {
        self.vectors.len()
    }

    /// True if no trials were generated.
    pub fn is_empty(&self) -> bool {
        self.vectors.is_empty()
    }

    /// Iterates over the trial supports.
    pub fn iter(&self) -> std::slice::Iter<'_, Vec<usize>> {
        self.vectors.iter()
    }
}

impl<'a> IntoIterator for &'a TrialVectors {
    type Item = &'a Vec<usize>;
    type IntoIter = std::slice::Iter<'a, Vec<usize>>;

    fn into_iter(self) -> Self::IntoIter {
        self.vectors.iter()
    }
}

/// Uniformly samples a `w`-element subset of `pool` (Floyd-like via partial
/// shuffle of an index scratch).
fn sample_subset(pool: &[usize], w: usize, rng: &mut StdRng) -> Vec<usize> {
    debug_assert!(w <= pool.len());
    if w == 1 {
        return vec![pool[rng.random_range(0..pool.len())]];
    }
    let mut scratch: Vec<usize> = pool.to_vec();
    let (chosen, _) = scratch.partial_shuffle(rng, w);
    chosen.to_vec()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn exhaustive_counts_match_binomials() {
        let c: Vec<usize> = (0..5).collect();
        assert_eq!(TrialVectors::exhaustive(&c, 1).len(), 5);
        assert_eq!(TrialVectors::exhaustive(&c, 2).len(), 5 + 10);
        assert_eq!(TrialVectors::exhaustive(&c, 3).len(), 5 + 10 + 10);
        assert_eq!(TrialVectors::exhaustive(&c, 5).len(), 31); // 2⁵ − 1
    }

    #[test]
    fn exhaustive_is_weight_ordered_and_unique() {
        let c = [2usize, 4, 6, 8];
        let t = TrialVectors::exhaustive(&c, 3);
        let mut prev_w = 0;
        let mut seen = HashSet::new();
        for v in t.iter() {
            assert!(v.len() >= prev_w, "weights must be non-decreasing");
            prev_w = v.len();
            assert!(seen.insert(v.clone()), "duplicate trial {v:?}");
            for x in v {
                assert!(c.contains(x));
            }
        }
    }

    #[test]
    fn exhaustive_handles_small_candidate_sets() {
        let t = TrialVectors::exhaustive(&[7], 3);
        assert_eq!(t.vectors(), &[vec![7]]);
        let t = TrialVectors::exhaustive(&[], 3);
        assert!(t.is_empty());
    }

    #[test]
    fn sampled_produces_distinct_sorted_subsets() {
        let c: Vec<usize> = (0..50).collect();
        let mut rng = StdRng::seed_from_u64(42);
        let t = TrialVectors::sampled(&c, 6, 5, &mut rng);
        assert_eq!(t.len(), 30);
        let mut seen = HashSet::new();
        for v in t.iter() {
            assert!(v.windows(2).all(|w| w[0] < w[1]), "subset must be sorted");
            assert!(seen.insert(v.clone()));
        }
    }

    #[test]
    fn sampled_caps_on_tiny_pools() {
        let c = [1usize, 2];
        let mut rng = StdRng::seed_from_u64(1);
        let t = TrialVectors::sampled(&c, 3, 10, &mut rng);
        // Weight 1: at most 2 distinct; weight 2: at most 1 distinct.
        assert!(t.len() <= 3);
        assert!(t.len() >= 3, "all distinct subsets should be found");
    }

    #[test]
    fn sampled_is_deterministic_per_seed() {
        let c: Vec<usize> = (0..20).collect();
        let t1 = TrialVectors::sampled(&c, 4, 3, &mut StdRng::seed_from_u64(9));
        let t2 = TrialVectors::sampled(&c, 4, 3, &mut StdRng::seed_from_u64(9));
        assert_eq!(t1, t2);
    }
}
