//! Multi-worker parallel BP-SF executor (the paper's "CPU, P=N" version).
//!
//! Mirrors the paper's §VI implementation: a **persistent worker pool**
//! with input and output queues. On an initial-BP failure the manager
//! selects candidates, generates trial vectors, computes the flipped
//! syndromes and enqueues them; workers decode trials until one finds a
//! valid solution, at which point a shared flag makes the remaining
//! workers skip their queued trials. Every trial syndrome is tagged with a
//! **serial number** so stale results from a previous syndrome are never
//! accepted.

use crate::candidates::select_candidates_ranked;
use crate::decoder::{BpSfConfig, BpSfResult, TrialSampling};
use crate::trials::TrialVectors;
use qldpc_bp::{BpConfig, MinSumDecoder};
use qldpc_gf2::{BitVec, SparseBitMatrix};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Execution statistics of one parallel decode.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ParallelDecodeStats {
    /// Trials enqueued after the initial BP failure.
    pub trials_dispatched: usize,
    /// Trials actually decoded by workers (the rest were skipped after the
    /// stop flag was raised).
    pub trials_decoded: usize,
    /// Wall-clock time of the whole decode (initial BP + parallel stage).
    pub wall_time: Duration,
}

struct Job {
    serial: u64,
    trial_idx: usize,
    syndrome: BitVec,
}

struct Outcome {
    serial: u64,
    trial_idx: usize,
    /// `None` when the worker skipped the job (stale serial or stop flag).
    decoded: Option<(bool, BitVec, usize)>,
}

struct Shared {
    current_serial: AtomicU64,
    found: AtomicBool,
    shutdown: AtomicBool,
}

/// A persistent-pool parallel BP-SF decoder.
///
/// # Examples
///
/// ```
/// use bpsf_core::{BpSfConfig, ParallelBpSf};
/// use qldpc_codes::coprime_bb;
/// use qldpc_gf2::BitVec;
///
/// let code = coprime_bb::coprime154();
/// let hz = code.hz().clone();
/// let n = hz.cols();
/// let mut pool = ParallelBpSf::new(&hz, &vec![0.02; n], BpSfConfig::code_capacity(50, 8, 1), 2);
/// let e = BitVec::from_indices(n, &[5, 40]);
/// let (result, stats) = pool.decode(&hz.mul_vec(&e));
/// assert!(result.success);
/// assert!(stats.wall_time.as_nanos() > 0);
/// ```
pub struct ParallelBpSf {
    h: SparseBitMatrix,
    initial: MinSumDecoder,
    config: BpSfConfig,
    rng: StdRng,
    shared: Arc<Shared>,
    job_tx: Option<crossbeam::channel::Sender<Job>>,
    result_rx: crossbeam::channel::Receiver<Outcome>,
    workers: Vec<JoinHandle<()>>,
    num_workers: usize,
}

impl ParallelBpSf {
    /// Spawns `workers` persistent decoder threads.
    ///
    /// # Panics
    ///
    /// Panics if `workers == 0` or `priors.len() != h.cols()`.
    pub fn new(h: &SparseBitMatrix, priors: &[f64], config: BpSfConfig, workers: usize) -> Self {
        assert!(workers > 0, "need at least one worker");
        let initial_cfg = BpConfig {
            track_oscillations: true,
            ..config.initial_bp
        };
        let trial_cfg = BpConfig {
            max_iters: config.trial_bp_iters,
            track_oscillations: false,
            ..config.initial_bp
        };
        let shared = Arc::new(Shared {
            current_serial: AtomicU64::new(0),
            found: AtomicBool::new(false),
            shutdown: AtomicBool::new(false),
        });
        let (job_tx, job_rx) = crossbeam::channel::unbounded::<Job>();
        let (result_tx, result_rx) = crossbeam::channel::unbounded::<Outcome>();
        let mut handles = Vec::with_capacity(workers);
        for _ in 0..workers {
            let job_rx = job_rx.clone();
            let result_tx = result_tx.clone();
            let shared = Arc::clone(&shared);
            let mut decoder = MinSumDecoder::new(h, priors, trial_cfg);
            handles.push(std::thread::spawn(move || {
                while let Ok(job) = job_rx.recv() {
                    if shared.shutdown.load(Ordering::Acquire) {
                        break;
                    }
                    let stale = shared.current_serial.load(Ordering::Acquire) != job.serial
                        || shared.found.load(Ordering::Acquire);
                    let decoded = if stale {
                        None
                    } else {
                        let r = decoder.decode(&job.syndrome);
                        Some((r.converged, r.error_hat, r.iterations))
                    };
                    let outcome = Outcome {
                        serial: job.serial,
                        trial_idx: job.trial_idx,
                        decoded,
                    };
                    if result_tx.send(outcome).is_err() {
                        break;
                    }
                }
            }));
        }
        Self {
            h: h.clone(),
            initial: MinSumDecoder::new(h, priors, initial_cfg),
            config,
            rng: StdRng::seed_from_u64(config.seed),
            shared,
            job_tx: Some(job_tx),
            result_rx,
            workers: handles,
            num_workers: workers,
        }
    }

    /// Number of worker threads.
    pub fn num_workers(&self) -> usize {
        self.num_workers
    }

    /// Decodes one syndrome, returning the result and wall-clock stats.
    ///
    /// # Panics
    ///
    /// Panics if the syndrome length differs from the number of checks.
    pub fn decode(&mut self, syndrome: &BitVec) -> (BpSfResult, ParallelDecodeStats) {
        let start = Instant::now();
        let initial = self.initial.decode(syndrome);
        if initial.converged {
            let result = BpSfResult {
                success: true,
                error_hat: initial.error_hat,
                initial_converged: true,
                initial_iterations: initial.iterations,
                candidates: Vec::new(),
                trials_executed: 0,
                winning_trial: None,
                serial_iterations: initial.iterations,
                critical_path_iterations: initial.iterations,
            };
            let stats = ParallelDecodeStats {
                trials_dispatched: 0,
                trials_decoded: 0,
                wall_time: start.elapsed(),
            };
            return (result, stats);
        }

        let candidates = select_candidates_ranked(
            &initial.flip_counts,
            &initial.posteriors,
            self.config.candidates,
            self.config.pad_candidates,
            self.config.ranking,
        );
        let trials = match self.config.sampling {
            TrialSampling::Exhaustive => {
                TrialVectors::exhaustive(&candidates, self.config.max_flip_weight)
            }
            TrialSampling::Sampled { per_weight } => TrialVectors::sampled(
                &candidates,
                self.config.max_flip_weight,
                per_weight,
                &mut self.rng,
            ),
        };

        // Open a new serial epoch: raise the serial *before* clearing the
        // stop flag so late workers of the previous epoch always see a
        // mismatch, never a spuriously cleared flag.
        let serial = self.shared.current_serial.fetch_add(1, Ordering::AcqRel) + 1;
        self.shared.found.store(false, Ordering::Release);

        let tx = self.job_tx.as_ref().expect("pool is alive");
        for (trial_idx, t) in trials.iter().enumerate() {
            let mut flipped = self.h.mul_sparse_vec(t);
            flipped.xor_assign(syndrome);
            tx.send(Job {
                serial,
                trial_idx,
                syndrome: flipped,
            })
            .expect("workers alive");
        }

        let dispatched = trials.len();
        let mut decoded_count = 0usize;
        let mut received = 0usize;
        let mut serial_iterations = initial.iterations;
        let mut winner: Option<(usize, BitVec, usize)> = None;
        while received < dispatched {
            let outcome = self.result_rx.recv().expect("workers alive");
            if outcome.serial != serial {
                continue; // stale epoch, not counted
            }
            received += 1;
            if let Some((converged, error_hat, iterations)) = outcome.decoded {
                decoded_count += 1;
                serial_iterations += iterations;
                if converged && winner.is_none() {
                    // Undo the flipped bits in the error domain.
                    let mut e = error_hat;
                    for &bit in &trials.vectors()[outcome.trial_idx] {
                        e.flip(bit);
                    }
                    debug_assert_eq!(self.h.mul_vec(&e), *syndrome);
                    winner = Some((outcome.trial_idx, e, iterations));
                    self.shared.found.store(true, Ordering::Release);
                }
            }
        }
        let result = match winner {
            Some((idx, error_hat, trial_iters)) => BpSfResult {
                success: true,
                error_hat,
                initial_converged: false,
                initial_iterations: initial.iterations,
                candidates,
                trials_executed: decoded_count,
                winning_trial: Some(idx),
                serial_iterations,
                critical_path_iterations: initial.iterations + trial_iters,
            },
            None => BpSfResult {
                success: false,
                error_hat: initial.error_hat,
                initial_converged: false,
                initial_iterations: initial.iterations,
                candidates,
                trials_executed: decoded_count,
                winning_trial: None,
                serial_iterations,
                critical_path_iterations: initial.iterations + self.config.trial_bp_iters,
            },
        };
        let stats = ParallelDecodeStats {
            trials_dispatched: dispatched,
            trials_decoded: decoded_count,
            wall_time: start.elapsed(),
        };
        (result, stats)
    }
}

impl Drop for ParallelBpSf {
    fn drop(&mut self) {
        self.shared.shutdown.store(true, Ordering::Release);
        // Closing the job channel wakes idle workers.
        self.job_tx.take();
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::decoder::BpSfDecoder;
    use qldpc_codes::coprime_bb;
    use rand::Rng;

    #[test]
    fn parallel_matches_serial_success() {
        let code = coprime_bb::coprime154();
        let hz = code.hz();
        let n = hz.cols();
        let config = BpSfConfig::code_capacity(40, 8, 1);
        let mut serial = BpSfDecoder::new(hz, &vec![0.02; n], config);
        let mut pool = ParallelBpSf::new(hz, &vec![0.02; n], config, 2);
        let mut rng = StdRng::seed_from_u64(31);
        for _ in 0..30 {
            let mut e = BitVec::zeros(n);
            for i in 0..n {
                if rng.random_bool(0.02) {
                    e.set(i, true);
                }
            }
            let s = hz.mul_vec(&e);
            let rs = serial.decode(&s);
            let (rp, stats) = pool.decode(&s);
            // Success status must agree (the same trial set is generated;
            // only the winning trial index may differ by scheduling).
            assert_eq!(rs.success, rp.success, "serial/parallel disagree");
            if rp.success {
                assert_eq!(hz.mul_vec(&rp.error_hat), s);
            }
            if !rp.initial_converged {
                assert!(stats.trials_dispatched > 0);
                assert!(stats.trials_decoded <= stats.trials_dispatched);
            }
        }
    }

    #[test]
    fn pool_survives_many_epochs() {
        let code = coprime_bb::coprime154();
        let hz = code.hz();
        let n = hz.cols();
        let mut pool =
            ParallelBpSf::new(hz, &vec![0.03; n], BpSfConfig::code_capacity(20, 6, 1), 2);
        let mut rng = StdRng::seed_from_u64(77);
        for _ in 0..20 {
            let mut e = BitVec::zeros(n);
            for i in 0..n {
                if rng.random_bool(0.03) {
                    e.set(i, true);
                }
            }
            let s = hz.mul_vec(&e);
            let (r, _) = pool.decode(&s);
            if r.success {
                assert_eq!(hz.mul_vec(&r.error_hat), s);
            }
        }
    }

    #[test]
    fn drop_shuts_down_cleanly() {
        let code = coprime_bb::coprime154();
        let hz = code.hz();
        let n = hz.cols();
        let pool = ParallelBpSf::new(hz, &vec![0.02; n], BpSfConfig::code_capacity(10, 4, 1), 3);
        assert_eq!(pool.num_workers(), 3);
        drop(pool); // must not hang
    }
}
