//! [`SyndromeDecoder`] implementations for the serial and worker-pool
//! BP-SF decoders — BP-SF plugs into the unified stack API directly.

use crate::decoder::{BpSfDecoder, BpSfResult, TrialSampling};
use crate::parallel::ParallelBpSf;
use qldpc_bp::Schedule;
use qldpc_decoder_api::{DecodeOutcome, DecodeTelemetry, DecoderFamily, SyndromeDecoder};
use qldpc_gf2::BitVec;

fn outcome_from(r: BpSfResult) -> DecodeOutcome {
    let mut telemetry = DecodeTelemetry::bp(r.initial_iterations, r.initial_converged);
    telemetry.oscillating_bits = r.candidates.len() as u64;
    telemetry.sf_trials = r.trials_executed as u64;
    DecodeOutcome {
        error_hat: r.error_hat,
        solved: r.success,
        serial_iterations: r.serial_iterations,
        critical_iterations: r.critical_path_iterations,
        postprocessed: !r.initial_converged,
        telemetry,
    }
}

impl SyndromeDecoder for BpSfDecoder {
    fn decode_syndrome(&mut self, syndrome: &BitVec) -> DecodeOutcome {
        outcome_from(self.decode(syndrome))
    }

    /// Overrides the default loop: the initial BP stage runs through the
    /// shot-interleaved batch kernel, and only the failed shots pay for
    /// post-processing (see [`BpSfDecoder::decode_batch_results`]).
    fn decode_batch(&mut self, syndromes: &[BitVec]) -> Vec<DecodeOutcome> {
        self.decode_batch_results(syndromes)
            .into_iter()
            .map(outcome_from)
            .collect()
    }

    /// `"BP-SF(BP{iters},w={w_max},|Φ|={candidates}[,ns={per_weight}])"`,
    /// with a `Layered-` prefix under the layered schedule (paper Fig. 8
    /// naming).
    fn label(&self) -> String {
        let c = self.config();
        match (c.initial_bp.schedule, c.sampling) {
            (Schedule::Layered, _) => format!(
                "Layered-BP-SF(BP{},w={},|Φ|={})",
                c.initial_bp.max_iters, c.max_flip_weight, c.candidates
            ),
            (Schedule::Flooding, TrialSampling::Exhaustive) => format!(
                "BP-SF(BP{},w={},|Φ|={})",
                c.initial_bp.max_iters, c.max_flip_weight, c.candidates
            ),
            (Schedule::Flooding, TrialSampling::Sampled { per_weight }) => format!(
                "BP-SF(BP{},w={},|Φ|={},ns={})",
                c.initial_bp.max_iters, c.max_flip_weight, c.candidates, per_weight
            ),
        }
    }

    fn family(&self) -> DecoderFamily {
        DecoderFamily::BpSf
    }
}

impl SyndromeDecoder for ParallelBpSf {
    fn decode_syndrome(&mut self, syndrome: &BitVec) -> DecodeOutcome {
        let (r, _stats) = self.decode(syndrome);
        outcome_from(r)
    }

    /// `"BP-SF(P={workers})"` — the paper's "BP-SF (CPU, P=N)" series.
    fn label(&self) -> String {
        format!("BP-SF(P={})", self.num_workers())
    }

    fn family(&self) -> DecoderFamily {
        DecoderFamily::BpSf
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::decoder::BpSfConfig;
    use qldpc_codes::bb;

    #[test]
    fn labels_cover_sampling_and_schedule() {
        let code = bb::bb72();
        let hz = code.hz();
        let priors = vec![0.01; hz.cols()];
        let serial = BpSfDecoder::new(hz, &priors, BpSfConfig::code_capacity(50, 8, 2));
        assert_eq!(serial.label(), "BP-SF(BP50,w=2,|Φ|=8)");
        let sampled = BpSfDecoder::new(hz, &priors, BpSfConfig::circuit_level(60, 50, 3, 4));
        assert_eq!(sampled.label(), "BP-SF(BP60,w=3,|Φ|=50,ns=4)");
        let mut layered_cfg = BpSfConfig::code_capacity(40, 8, 2);
        layered_cfg.initial_bp.schedule = Schedule::Layered;
        let layered = BpSfDecoder::new(hz, &priors, layered_cfg);
        assert_eq!(layered.label(), "Layered-BP-SF(BP40,w=2,|Φ|=8)");
        let pool = ParallelBpSf::new(hz, &priors, BpSfConfig::code_capacity(20, 4, 1), 2);
        assert_eq!(pool.label(), "BP-SF(P=2)");
    }

    /// The batched path (interleaved initial BP + serial post-processing)
    /// must match the sequential decode loop shot for shot, including the
    /// RNG-consuming sampled-trial configuration.
    #[test]
    fn batch_matches_loop_including_postprocessing() {
        use qldpc_gf2::SparseBitMatrix;
        use rand::{Rng, SeedableRng};
        let code = qldpc_codes::coprime_bb::coprime154();
        let hz: &SparseBitMatrix = code.hz();
        let n = hz.cols();
        let priors = vec![0.05; n];
        for config in [
            BpSfConfig::code_capacity(20, 8, 2),
            BpSfConfig::circuit_level(20, 8, 2, 3),
        ] {
            let mut batched = BpSfDecoder::new(hz, &priors, config);
            let mut looped = BpSfDecoder::new(hz, &priors, config);
            let mut rng = rand::rngs::StdRng::seed_from_u64(9);
            let syndromes: Vec<BitVec> = (0..24)
                .map(|_| {
                    let mut e = BitVec::zeros(n);
                    for i in 0..n {
                        if rng.random_bool(0.05) {
                            e.set(i, true);
                        }
                    }
                    hz.mul_vec(&e)
                })
                .collect();
            let b = batched.decode_batch(&syndromes);
            let l: Vec<DecodeOutcome> = syndromes
                .iter()
                .map(|s| looped.decode_syndrome(s))
                .collect();
            assert_eq!(b.len(), l.len());
            let mut postprocessed = 0;
            for (i, (x, y)) in b.iter().zip(&l).enumerate() {
                assert_eq!(x.solved, y.solved, "shot {i}");
                assert_eq!(x.error_hat, y.error_hat, "shot {i}");
                assert_eq!(x.serial_iterations, y.serial_iterations, "shot {i}");
                assert_eq!(x.critical_iterations, y.critical_iterations, "shot {i}");
                assert_eq!(x.postprocessed, y.postprocessed, "shot {i}");
                postprocessed += usize::from(x.postprocessed);
            }
            // The workload must actually exercise the trial path, or this
            // test only covers the initial stage.
            assert!(postprocessed > 0, "expected some initial-BP failures");
        }
    }

    #[test]
    fn parallel_pool_decodes_through_the_trait() {
        let code = bb::bb72();
        let hz = code.hz();
        let priors = vec![0.01; hz.cols()];
        let mut pool = ParallelBpSf::new(hz, &priors, BpSfConfig::code_capacity(30, 4, 1), 2);
        let e = BitVec::from_indices(hz.cols(), &[3, 40]);
        let out = pool.decode_syndrome(&hz.mul_vec(&e));
        assert!(out.solved);
        assert_eq!(hz.mul_vec(&out.error_hat), hz.mul_vec(&e));
        assert!(out.critical_iterations <= out.serial_iterations);
    }
}
