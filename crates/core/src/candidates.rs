//! Oscillation-guided candidate-bit selection (the Φ set).

/// How candidate bits are ranked (the paper's §VII names "more effective
/// candidate selection" as future work; these variants make the design
/// space measurable — see the `ablations` bench binary).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CandidateRanking {
    /// The paper's rule: flip count descending, ties broken by posterior
    /// reliability `|LLR|` ascending.
    #[default]
    FlipCountThenLlr,
    /// Flip count descending, ties broken by index (no reliability
    /// information) — isolates the value of the LLR tie-break.
    FlipCountOnly,
    /// Ignore oscillations entirely and rank by `|LLR|` ascending — the
    /// classical Chase criterion, isolating the value of the oscillation
    /// signal itself.
    LlrOnly,
}

/// Selects candidates under an explicit [`CandidateRanking`].
///
/// See [`select_candidates`] for the default-policy variant and the
/// padding semantics.
///
/// # Panics
///
/// Panics if `flip_counts.len() != posteriors.len()`.
pub fn select_candidates_ranked(
    flip_counts: &[u32],
    posteriors: &[f64],
    count: usize,
    pad_with_unreliable: bool,
    ranking: CandidateRanking,
) -> Vec<usize> {
    assert_eq!(
        flip_counts.len(),
        posteriors.len(),
        "flip counts and posteriors must cover the same bits"
    );
    if ranking == CandidateRanking::LlrOnly {
        let mut all: Vec<usize> = (0..flip_counts.len()).collect();
        all.sort_by(|&a, &b| {
            posteriors[a]
                .abs()
                .partial_cmp(&posteriors[b].abs())
                .unwrap_or(std::cmp::Ordering::Equal)
                .then_with(|| a.cmp(&b))
        });
        all.truncate(count);
        return all;
    }
    let mut flipped: Vec<usize> = (0..flip_counts.len())
        .filter(|&i| flip_counts[i] > 0)
        .collect();
    flipped.sort_by(|&a, &b| {
        let primary = flip_counts[b].cmp(&flip_counts[a]);
        let tie = match ranking {
            CandidateRanking::FlipCountThenLlr => posteriors[a]
                .abs()
                .partial_cmp(&posteriors[b].abs())
                .unwrap_or(std::cmp::Ordering::Equal),
            _ => std::cmp::Ordering::Equal,
        };
        primary.then(tie).then_with(|| a.cmp(&b))
    });
    flipped.truncate(count);
    if pad_with_unreliable && flipped.len() < count {
        let mut rest: Vec<usize> = (0..flip_counts.len())
            .filter(|&i| flip_counts[i] == 0)
            .collect();
        rest.sort_by(|&a, &b| {
            posteriors[a]
                .abs()
                .partial_cmp(&posteriors[b].abs())
                .unwrap_or(std::cmp::Ordering::Equal)
                .then_with(|| a.cmp(&b))
        });
        let need = count - flipped.len();
        flipped.extend(rest.into_iter().take(need));
    }
    flipped
}

/// Selects the `count` most oscillating bits, the paper's candidate set Φ.
///
/// Bits are ranked by descending flip count; ties (and, when fewer than
/// `count` bits ever flipped and `pad_with_unreliable` is set, the padding
/// bits) are ranked by ascending posterior reliability `|LLR|` — the least
/// reliable first. This mirrors the paper's §III-B observation that
/// oscillating bits correlate strongly with true error locations.
///
/// Returns at most `count` indices (fewer only if the block is smaller than
/// `count`, or padding is disabled and fewer bits oscillated).
///
/// # Panics
///
/// Panics if `flip_counts.len() != posteriors.len()`.
///
/// # Examples
///
/// ```
/// use bpsf_core::select_candidates;
///
/// let flips = [0u32, 5, 2, 0, 7];
/// let posteriors = [9.0, 1.0, -0.5, 0.1, 3.0];
/// // Top-2: bit 4 (7 flips), bit 1 (5 flips).
/// assert_eq!(select_candidates(&flips, &posteriors, 2, false), vec![4, 1]);
/// // Top-4 without padding: only 3 bits ever flipped.
/// assert_eq!(select_candidates(&flips, &posteriors, 4, false), vec![4, 1, 2]);
/// // With padding the least-reliable non-flipped bit (3) joins.
/// assert_eq!(select_candidates(&flips, &posteriors, 4, true), vec![4, 1, 2, 3]);
/// ```
pub fn select_candidates(
    flip_counts: &[u32],
    posteriors: &[f64],
    count: usize,
    pad_with_unreliable: bool,
) -> Vec<usize> {
    select_candidates_ranked(
        flip_counts,
        posteriors,
        count,
        pad_with_unreliable,
        CandidateRanking::FlipCountThenLlr,
    )
}

/// Precision and recall of a candidate set against the true error support
/// (paper Eq. 9–10, used by the Fig. 3 reproduction).
///
/// Returns `(precision, recall)`; both are 0 when the respective
/// denominator is empty.
pub fn hit_precision_recall(candidates: &[usize], true_support: &[usize]) -> (f64, f64) {
    if candidates.is_empty() || true_support.is_empty() {
        return (0.0, 0.0);
    }
    let truth: std::collections::HashSet<usize> = true_support.iter().copied().collect();
    let hits = candidates.iter().filter(|c| truth.contains(c)).count();
    (
        hits as f64 / candidates.len() as f64,
        hits as f64 / true_support.len() as f64,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranks_by_flip_count_then_reliability() {
        let flips = [3u32, 3, 1, 0];
        let posteriors = [2.0, -0.1, 0.5, 0.0];
        // Bits 0 and 1 tie on flips; bit 1 is less reliable (|−0.1| < |2.0|).
        assert_eq!(
            select_candidates(&flips, &posteriors, 3, false),
            vec![1, 0, 2]
        );
    }

    #[test]
    fn respects_count_limit() {
        let flips = [1u32; 10];
        let posteriors = [1.0; 10];
        assert_eq!(select_candidates(&flips, &posteriors, 4, false).len(), 4);
    }

    #[test]
    fn padding_is_deterministic() {
        let flips = [0u32, 0, 1, 0];
        let posteriors = [0.3, 0.1, 5.0, 0.2];
        let c = select_candidates(&flips, &posteriors, 3, true);
        assert_eq!(c, vec![2, 1, 3]);
    }

    #[test]
    fn precision_recall_basics() {
        let (p, r) = hit_precision_recall(&[1, 2, 3, 4], &[2, 4, 9]);
        assert!((p - 0.5).abs() < 1e-12);
        assert!((r - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(hit_precision_recall(&[], &[1]), (0.0, 0.0));
        assert_eq!(hit_precision_recall(&[1], &[]), (0.0, 0.0));
    }

    #[test]
    #[should_panic(expected = "same bits")]
    fn length_mismatch_panics() {
        select_candidates(&[1], &[0.0, 1.0], 1, false);
    }

    #[test]
    fn llr_only_ranking_ignores_flips() {
        let flips = [9u32, 0, 0];
        let posteriors = [5.0, 0.1, 0.2];
        let c = select_candidates_ranked(&flips, &posteriors, 2, false, CandidateRanking::LlrOnly);
        // Pure reliability order: bits 1 and 2 despite bit 0's flips.
        assert_eq!(c, vec![1, 2]);
    }

    #[test]
    fn flip_count_only_breaks_ties_by_index() {
        let flips = [3u32, 3, 1];
        let posteriors = [0.1, 5.0, 0.0];
        let c = select_candidates_ranked(
            &flips,
            &posteriors,
            3,
            false,
            CandidateRanking::FlipCountOnly,
        );
        assert_eq!(c, vec![0, 1, 2]);
        // Default ranking prefers the less reliable of the tied pair.
        let d = select_candidates(&flips, &posteriors, 3, false);
        assert_eq!(d, vec![0, 1, 2]);
        let e = select_candidates_ranked(
            &[3, 3, 1],
            &[5.0, 0.1, 0.0],
            3,
            false,
            CandidateRanking::FlipCountThenLlr,
        );
        assert_eq!(e, vec![1, 0, 2]);
    }
}
