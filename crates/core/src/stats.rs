//! Latency, iteration and estimator statistics, shared by the Monte
//! Carlo runners (`qldpc-sim`), the decoding-service metrics
//! (`qldpc-server`) and the campaign engine (`qldpc-campaign`) so the
//! percentile and confidence-interval implementations cannot drift.

/// Summary statistics over a sample of latencies (or iteration counts).
///
/// # Examples
///
/// ```
/// use bpsf_core::stats::LatencyStats;
///
/// let s = LatencyStats::from_samples(vec![1.0, 2.0, 3.0, 10.0]);
/// assert_eq!(s.min, 1.0);
/// assert_eq!(s.max, 10.0);
/// assert_eq!(s.mean, 4.0);
/// assert_eq!(s.median, 2.5);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct LatencyStats {
    /// Number of samples (0 ⇒ all other fields are 0).
    pub count: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Minimum.
    pub min: f64,
    /// Maximum.
    pub max: f64,
    /// Median (50th percentile, midpoint interpolation).
    pub median: f64,
    /// 95th percentile.
    pub p95: f64,
    /// 99th percentile.
    pub p99: f64,
}

impl LatencyStats {
    /// Computes statistics from raw samples; an empty sample yields zeros.
    pub fn from_samples(mut samples: Vec<f64>) -> Self {
        if samples.is_empty() {
            return Self {
                count: 0,
                mean: 0.0,
                min: 0.0,
                max: 0.0,
                median: 0.0,
                p95: 0.0,
                p99: 0.0,
            };
        }
        samples.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
        let count = samples.len();
        let mean = samples.iter().sum::<f64>() / count as f64;
        Self {
            count,
            mean,
            min: samples[0],
            max: samples[count - 1],
            median: percentile(&samples, 50.0),
            p95: percentile(&samples, 95.0),
            p99: percentile(&samples, 99.0),
        }
    }

    /// Whether the statistics summarize zero samples.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Renders a compact one-line summary. An empty sample renders as
    /// an explicit `n=0 (no samples)` rather than a row of misleading
    /// `0.000` aggregates.
    pub fn summary(&self) -> String {
        if self.is_empty() {
            return "n=0 (no samples)".to_string();
        }
        format!(
            "n={} mean={:.3} min={:.3} median={:.3} p95={:.3} p99={:.3} max={:.3}",
            self.count, self.mean, self.min, self.median, self.p95, self.p99, self.max
        )
    }

    /// Renders a text histogram on a log scale (the Fig. 15/16 "violin"
    /// substitute): `bins` buckets between min and max.
    ///
    /// Non-finite samples (NaN, ±∞) are excluded from the buckets — a
    /// NaN would otherwise land silently in bucket 0 via the saturating
    /// float→int cast — and reported on a trailing line when present.
    pub fn log_histogram(&self, samples: &[f64], bins: usize) -> String {
        if samples.is_empty() || bins == 0 {
            return String::from("(no samples)");
        }
        let non_finite = samples.iter().filter(|s| !s.is_finite()).count();
        let finite = || samples.iter().copied().filter(|s| s.is_finite());
        if non_finite == samples.len() {
            return format!("(no finite samples; {non_finite} non-finite excluded)\n");
        }
        let lo = finite().fold(f64::INFINITY, f64::min).max(1e-9);
        let hi = finite().fold(0.0, f64::max).max(lo * 1.0001);
        let (llo, lhi) = (lo.ln(), hi.ln());
        let mut counts = vec![0usize; bins];
        for s in finite() {
            let t = ((s.max(lo).ln() - llo) / (lhi - llo) * bins as f64) as usize;
            counts[t.min(bins - 1)] += 1;
        }
        let peak = counts.iter().copied().max().unwrap_or(1).max(1);
        let mut out = String::new();
        for (i, &c) in counts.iter().enumerate() {
            let left = (llo + (lhi - llo) * i as f64 / bins as f64).exp();
            let bar_len = (c * 50).div_ceil(peak);
            out.push_str(&format!(
                "{:>10.3} | {:<50} {}\n",
                left,
                "#".repeat(if c > 0 { bar_len.max(1) } else { 0 }),
                c
            ));
        }
        if non_finite > 0 {
            out.push_str(&format!("({non_finite} non-finite samples excluded)\n"));
        }
        out
    }
}

/// A two-sided confidence interval on a binomial proportion (e.g. a
/// logical error rate estimated from `failures / shots`).
///
/// Produced by [`wilson_interval`]; consumed by the campaign engine's
/// adaptive stopping rule and stamped into every generated report row.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BinomialCi {
    /// Lower bound (clamped to `[0, 1]`).
    pub lo: f64,
    /// Upper bound (clamped to `[0, 1]`).
    pub hi: f64,
    /// The confidence level the bounds were computed at, e.g. `0.95`.
    pub confidence: f64,
}

impl BinomialCi {
    /// Half the interval width — the campaign stopping rule's target
    /// quantity.
    pub fn half_width(&self) -> f64 {
        (self.hi - self.lo) / 2.0
    }

    /// Whether `p` lies inside the interval (inclusive).
    pub fn contains(&self, p: f64) -> bool {
        (self.lo..=self.hi).contains(&p)
    }
}

/// Wilson score interval for a binomial proportion at the given
/// confidence level.
///
/// Unlike the normal-approximation ("Wald") interval, the Wilson
/// interval stays inside `[0, 1]` and behaves sensibly at the edges the
/// campaign engine actually visits: zero observed failures yield
/// `lo == 0` with a strictly positive `hi`, and all-failures yield
/// `hi == 1` with `lo < 1`. Zero shots yield the vacuous `[0, 1]`.
///
/// # Panics
///
/// Panics if `failures > shots` or `confidence` is outside `(0, 1)`.
///
/// # Examples
///
/// ```
/// use bpsf_core::stats::wilson_interval;
///
/// let ci = wilson_interval(8, 400, 0.95);
/// assert!(ci.contains(8.0 / 400.0));
/// assert!(ci.lo > 0.0 && ci.hi < 1.0);
/// // No failures observed: the lower bound is exactly zero.
/// assert_eq!(wilson_interval(0, 100, 0.95).lo, 0.0);
/// ```
pub fn wilson_interval(failures: usize, shots: usize, confidence: f64) -> BinomialCi {
    assert!(
        failures <= shots,
        "failures ({failures}) must not exceed shots ({shots})"
    );
    assert!(
        confidence > 0.0 && confidence < 1.0,
        "confidence must be in (0, 1)"
    );
    if shots == 0 {
        return BinomialCi {
            lo: 0.0,
            hi: 1.0,
            confidence,
        };
    }
    // For confidence within one ulp of 1, `0.5 + confidence / 2` can
    // round to exactly 1.0 (ties-to-even), which probit rejects — clamp
    // to the largest double below 1 instead of panicking mid-campaign.
    let z = probit((0.5 + confidence / 2.0).min(1.0 - f64::EPSILON / 2.0));
    let n = shots as f64;
    let p_hat = failures as f64 / n;
    let z2 = z * z;
    let denom = 1.0 + z2 / n;
    let center = (p_hat + z2 / (2.0 * n)) / denom;
    let half = z / denom * (p_hat * (1.0 - p_hat) / n + z2 / (4.0 * n * n)).sqrt();
    // At the binomial edges the bound is exactly 0 (no failures) or
    // exactly 1 (all failures) algebraically; snap them so floating-point
    // rounding cannot leave the bound an ulp off the edge.
    let lo = if failures == 0 {
        0.0
    } else {
        (center - half).max(0.0)
    };
    let hi = if failures == shots {
        1.0
    } else {
        (center + half).min(1.0)
    };
    BinomialCi { lo, hi, confidence }
}

/// Inverse of the standard normal CDF (the probit function), via
/// Acklam's rational approximation (absolute error < 1.2e-9 — far below
/// anything a Monte Carlo confidence interval can resolve).
///
/// # Panics
///
/// Panics if `p` is outside `(0, 1)`.
pub fn probit(p: f64) -> f64 {
    assert!(p > 0.0 && p < 1.0, "probit argument must be in (0, 1)");
    const A: [f64; 6] = [
        -3.969_683_028_665_376e1,
        2.209_460_984_245_205e2,
        -2.759_285_104_469_687e2,
        1.383_577_518_672_69e2,
        -3.066_479_806_614_716e1,
        2.506_628_277_459_239,
    ];
    const B: [f64; 5] = [
        -5.447_609_879_822_406e1,
        1.615_858_368_580_409e2,
        -1.556_989_798_598_866e2,
        6.680_131_188_771_972e1,
        -1.328_068_155_288_572e1,
    ];
    const C: [f64; 6] = [
        -7.784_894_002_430_293e-3,
        -3.223_964_580_411_365e-1,
        -2.400_758_277_161_838,
        -2.549_732_539_343_734,
        4.374_664_141_464_968,
        2.938_163_982_698_783,
    ];
    const D: [f64; 4] = [
        7.784_695_709_041_462e-3,
        3.224_671_290_700_398e-1,
        2.445_134_137_142_996,
        3.754_408_661_907_416,
    ];
    const P_LOW: f64 = 0.02425;
    if p < P_LOW {
        // Lower tail.
        let q = (-2.0 * p.ln()).sqrt();
        (((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    } else if p <= 1.0 - P_LOW {
        // Central region.
        let q = p - 0.5;
        let r = q * q;
        (((((A[0] * r + A[1]) * r + A[2]) * r + A[3]) * r + A[4]) * r + A[5]) * q
            / (((((B[0] * r + B[1]) * r + B[2]) * r + B[3]) * r + B[4]) * r + 1.0)
    } else {
        // Upper tail, by symmetry.
        -probit(1.0 - p)
    }
}

/// Percentile with midpoint interpolation over a **sorted** sample.
///
/// The sortedness precondition is enforced in debug builds: an unsorted
/// sample would silently interpolate between the wrong ranks. The sweep
/// uses `!(a > b)` rather than `a <= b` so samples sorted with a
/// NaN-tolerant comparator (as [`LatencyStats::from_samples`] does) pass
/// even when NaNs are present.
///
/// An empty sample returns `0.0` — the explicit "no data" value every
/// empty-summary field uses — rather than panicking or producing NaN,
/// so metric paths that race a percentile query against the first
/// recorded sample stay total.
///
/// # Panics
///
/// Panics if `pct` is outside `[0, 100]`; in debug builds, also panics
/// if `samples` is out of order.
pub fn percentile(samples: &[f64], pct: f64) -> f64 {
    if samples.is_empty() {
        return 0.0;
    }
    assert!(
        (0.0..=100.0).contains(&pct),
        "percentile must be in [0,100]"
    );
    debug_assert!(
        samples
            .windows(2)
            .all(|w| w[0].partial_cmp(&w[1]) != Some(std::cmp::Ordering::Greater)),
        "percentile requires a sorted sample"
    );
    let n = samples.len();
    if n == 1 {
        return samples[0];
    }
    let rank = pct / 100.0 * (n - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    let frac = rank - lo as f64;
    samples[lo] * (1.0 - frac) + samples[hi] * frac
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_sample_is_zeroes() {
        let s = LatencyStats::from_samples(vec![]);
        assert_eq!(s.count, 0);
        assert_eq!(s.mean, 0.0);
        assert!(s.is_empty());
        assert_eq!(s.summary(), "n=0 (no samples)");
    }

    #[test]
    fn non_empty_summary_reports_aggregates() {
        let s = LatencyStats::from_samples(vec![1.0, 3.0]);
        assert!(!s.is_empty());
        assert!(s.summary().starts_with("n=2 mean=2.000"));
    }

    #[test]
    fn single_sample() {
        let s = LatencyStats::from_samples(vec![2.5]);
        assert_eq!(s.median, 2.5);
        assert_eq!(s.p99, 2.5);
    }

    #[test]
    fn percentiles_interpolate() {
        let sorted: Vec<f64> = (1..=100).map(|i| i as f64).collect();
        assert!((percentile(&sorted, 50.0) - 50.5).abs() < 1e-9);
        assert!((percentile(&sorted, 0.0) - 1.0).abs() < 1e-9);
        assert!((percentile(&sorted, 100.0) - 100.0).abs() < 1e-9);
    }

    #[test]
    fn histogram_renders() {
        let samples = vec![0.1, 0.2, 0.2, 5.0, 50.0];
        let s = LatencyStats::from_samples(samples.clone());
        let h = s.log_histogram(&samples, 8);
        assert_eq!(h.lines().count(), 8);
        assert!(h.contains('#'));
    }

    #[test]
    fn percentile_empty_is_zero() {
        assert_eq!(percentile(&[], 50.0), 0.0);
        assert_eq!(percentile(&[], 0.0), 0.0);
        assert_eq!(percentile(&[], 100.0), 0.0);
    }

    #[test]
    fn histogram_excludes_non_finite_samples() {
        let samples = vec![0.1, f64::NAN, 0.2, f64::INFINITY, 5.0, f64::NEG_INFINITY];
        let s = LatencyStats::from_samples(vec![0.1, 0.2, 5.0]);
        let h = s.log_histogram(&samples, 8);
        // 8 bucket lines plus the exclusion note.
        assert_eq!(h.lines().count(), 9);
        assert!(h.contains("3 non-finite samples excluded"));
        // Bucket counts must sum to the finite samples only (a NaN used
        // to land silently in bucket 0 via the saturating cast).
        let total: usize = h
            .lines()
            .take(8)
            .map(|l| l.rsplit(' ').next().unwrap().parse::<usize>().unwrap())
            .sum();
        assert_eq!(total, 3);
        // Finite-only input renders without the note.
        let clean = s.log_histogram(&[0.1, 0.2, 5.0], 8);
        assert_eq!(clean.lines().count(), 8);
        assert!(!clean.contains("excluded"));
        // All-non-finite input degrades gracefully.
        let empty = s.log_histogram(&[f64::NAN, f64::INFINITY], 4);
        assert!(empty.contains("no finite samples"));
        assert!(empty.contains("2 non-finite"));
    }

    #[cfg(debug_assertions)]
    #[test]
    #[should_panic(expected = "sorted sample")]
    fn percentile_rejects_unsorted_input_in_debug() {
        percentile(&[3.0, 1.0, 2.0], 50.0);
    }

    #[test]
    fn percentile_sortedness_sweep_tolerates_nan_sorted_input() {
        // `from_samples` sorts with a NaN-tolerant comparator; the
        // debug-mode sortedness sweep must accept its output.
        let s = LatencyStats::from_samples(vec![2.0, f64::NAN, 1.0, 3.0]);
        assert!(s.count == 4);
        // And a directly ordered sample with a trailing NaN also passes.
        let v = [1.0, 2.0, 3.0, f64::NAN];
        let p = percentile(&v, 0.0);
        assert_eq!(p, 1.0);
    }

    #[test]
    fn probit_matches_reference_values() {
        // Reference values from standard normal tables.
        assert!((probit(0.5)).abs() < 1e-9);
        assert!((probit(0.975) - 1.959_963_985).abs() < 1e-6);
        assert!((probit(0.995) - 2.575_829_304).abs() < 1e-6);
        // Symmetry, including through the tail branches.
        for p in [1e-6, 0.01, 0.2, 0.4] {
            assert!((probit(p) + probit(1.0 - p)).abs() < 1e-8, "p={p}");
        }
        // Monotone across the branch boundaries at 0.02425.
        assert!(probit(0.024) < probit(0.025));
    }

    #[test]
    fn wilson_interval_brackets_the_point_estimate() {
        let ci = wilson_interval(13, 250, 0.95);
        let p_hat = 13.0 / 250.0;
        assert!(ci.lo < p_hat && p_hat < ci.hi);
        assert!(ci.contains(p_hat));
        assert!(ci.half_width() > 0.0);
        // Higher confidence ⇒ wider interval.
        let wider = wilson_interval(13, 250, 0.99);
        assert!(wider.half_width() > ci.half_width());
        // More shots at the same rate ⇒ narrower interval.
        let narrower = wilson_interval(130, 2500, 0.95);
        assert!(narrower.half_width() < ci.half_width());
    }

    #[test]
    fn wilson_edge_zero_failures() {
        let ci = wilson_interval(0, 100, 0.95);
        assert_eq!(ci.lo, 0.0);
        assert!(ci.hi > 0.0 && ci.hi < 0.05);
    }

    #[test]
    fn wilson_edge_all_failures() {
        let ci = wilson_interval(100, 100, 0.95);
        assert_eq!(ci.hi, 1.0);
        assert!(ci.lo < 1.0 && ci.lo > 0.95);
        // Mirror image of the zero-failure case.
        let zero = wilson_interval(0, 100, 0.95);
        assert!((ci.lo - (1.0 - zero.hi)).abs() < 1e-12);
    }

    #[test]
    fn wilson_edge_tiny_samples() {
        // One shot: the interval is wide but proper either way.
        let fail = wilson_interval(1, 1, 0.95);
        assert_eq!(fail.hi, 1.0);
        assert!(fail.lo > 0.0 && fail.lo < 0.5);
        let ok = wilson_interval(0, 1, 0.95);
        assert_eq!(ok.lo, 0.0);
        assert!(ok.hi > 0.5 && ok.hi < 1.0);
        // Zero shots: vacuous [0, 1].
        let none = wilson_interval(0, 0, 0.95);
        assert_eq!((none.lo, none.hi), (0.0, 1.0));
        assert!((none.half_width() - 0.5).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "must not exceed")]
    fn wilson_rejects_impossible_counts() {
        wilson_interval(2, 1, 0.95);
    }

    #[test]
    fn wilson_survives_confidence_one_ulp_below_one() {
        // `0.5 + c/2` rounds to exactly 1.0 for these, which would trip
        // probit's domain assert without the clamp.
        for confidence in [1.0 - f64::EPSILON / 2.0, 1.0 - f64::EPSILON] {
            assert!(confidence < 1.0);
            let ci = wilson_interval(1, 2, confidence);
            assert!(ci.lo >= 0.0 && ci.hi <= 1.0 && ci.lo < ci.hi);
        }
    }
}
