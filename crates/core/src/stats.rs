//! Latency and iteration statistics, shared by the Monte Carlo runners
//! (`qldpc-sim`) and the decoding-service metrics (`qldpc-server`) so
//! the two percentile implementations cannot drift.

/// Summary statistics over a sample of latencies (or iteration counts).
///
/// # Examples
///
/// ```
/// use bpsf_core::stats::LatencyStats;
///
/// let s = LatencyStats::from_samples(vec![1.0, 2.0, 3.0, 10.0]);
/// assert_eq!(s.min, 1.0);
/// assert_eq!(s.max, 10.0);
/// assert_eq!(s.mean, 4.0);
/// assert_eq!(s.median, 2.5);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct LatencyStats {
    /// Number of samples (0 ⇒ all other fields are 0).
    pub count: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Minimum.
    pub min: f64,
    /// Maximum.
    pub max: f64,
    /// Median (50th percentile, midpoint interpolation).
    pub median: f64,
    /// 95th percentile.
    pub p95: f64,
    /// 99th percentile.
    pub p99: f64,
}

impl LatencyStats {
    /// Computes statistics from raw samples; an empty sample yields zeros.
    pub fn from_samples(mut samples: Vec<f64>) -> Self {
        if samples.is_empty() {
            return Self {
                count: 0,
                mean: 0.0,
                min: 0.0,
                max: 0.0,
                median: 0.0,
                p95: 0.0,
                p99: 0.0,
            };
        }
        samples.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
        let count = samples.len();
        let mean = samples.iter().sum::<f64>() / count as f64;
        Self {
            count,
            mean,
            min: samples[0],
            max: samples[count - 1],
            median: percentile(&samples, 50.0),
            p95: percentile(&samples, 95.0),
            p99: percentile(&samples, 99.0),
        }
    }

    /// Renders a compact one-line summary.
    pub fn summary(&self) -> String {
        format!(
            "n={} mean={:.3} min={:.3} median={:.3} p95={:.3} p99={:.3} max={:.3}",
            self.count, self.mean, self.min, self.median, self.p95, self.p99, self.max
        )
    }

    /// Renders a text histogram on a log scale (the Fig. 15/16 "violin"
    /// substitute): `bins` buckets between min and max.
    pub fn log_histogram(&self, samples: &[f64], bins: usize) -> String {
        if samples.is_empty() || bins == 0 {
            return String::from("(no samples)");
        }
        let lo = samples
            .iter()
            .copied()
            .fold(f64::INFINITY, f64::min)
            .max(1e-9);
        let hi = samples.iter().copied().fold(0.0, f64::max).max(lo * 1.0001);
        let (llo, lhi) = (lo.ln(), hi.ln());
        let mut counts = vec![0usize; bins];
        for &s in samples {
            let t = ((s.max(lo).ln() - llo) / (lhi - llo) * bins as f64) as usize;
            counts[t.min(bins - 1)] += 1;
        }
        let peak = counts.iter().copied().max().unwrap_or(1).max(1);
        let mut out = String::new();
        for (i, &c) in counts.iter().enumerate() {
            let left = (llo + (lhi - llo) * i as f64 / bins as f64).exp();
            let bar_len = (c * 50).div_ceil(peak);
            out.push_str(&format!(
                "{:>10.3} | {:<50} {}\n",
                left,
                "#".repeat(if c > 0 { bar_len.max(1) } else { 0 }),
                c
            ));
        }
        out
    }
}

/// Percentile with midpoint interpolation over a **sorted** sample.
///
/// # Panics
///
/// Panics if `samples` is empty or `pct` is outside `[0, 100]`.
pub fn percentile(samples: &[f64], pct: f64) -> f64 {
    assert!(!samples.is_empty(), "percentile of empty sample");
    assert!(
        (0.0..=100.0).contains(&pct),
        "percentile must be in [0,100]"
    );
    let n = samples.len();
    if n == 1 {
        return samples[0];
    }
    let rank = pct / 100.0 * (n - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    let frac = rank - lo as f64;
    samples[lo] * (1.0 - frac) + samples[hi] * frac
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_sample_is_zeroes() {
        let s = LatencyStats::from_samples(vec![]);
        assert_eq!(s.count, 0);
        assert_eq!(s.mean, 0.0);
    }

    #[test]
    fn single_sample() {
        let s = LatencyStats::from_samples(vec![2.5]);
        assert_eq!(s.median, 2.5);
        assert_eq!(s.p99, 2.5);
    }

    #[test]
    fn percentiles_interpolate() {
        let sorted: Vec<f64> = (1..=100).map(|i| i as f64).collect();
        assert!((percentile(&sorted, 50.0) - 50.5).abs() < 1e-9);
        assert!((percentile(&sorted, 0.0) - 1.0).abs() < 1e-9);
        assert!((percentile(&sorted, 100.0) - 100.0).abs() < 1e-9);
    }

    #[test]
    fn histogram_renders() {
        let samples = vec![0.1, 0.2, 0.2, 5.0, 50.0];
        let s = LatencyStats::from_samples(samples.clone());
        let h = s.log_histogram(&samples, 8);
        assert_eq!(h.lines().count(), 8);
        assert!(h.contains('#'));
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn percentile_empty_panics() {
        percentile(&[], 50.0);
    }
}
