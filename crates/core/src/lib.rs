//! BP-SF: oscillation-guided speculative syndrome-flip decoding.
//!
//! This crate implements the primary contribution of *"Fully Parallelized BP
//! Decoding for Quantum LDPC Codes Can Outperform BP-OSD"* (HPCA 2026):
//!
//! 1. run min-sum BP while tracking per-bit **oscillations** (hard-decision
//!    flips across iterations),
//! 2. on failure, select the `|Φ|` most oscillating bits as **candidates**,
//! 3. generate Chase-style **trial vectors** `t ⊆ Φ` (exhaustively up to
//!    weight `w_max`, or `n_s` random samples per weight in the
//!    circuit-level regime),
//! 4. decode each **flipped syndrome** `s′ = s ⊕ H·t` with an independent
//!    short-depth BP instance — all trials are embarrassingly parallel,
//! 5. return `ê ⊕ t` from the first convergent trial (no maximum-likelihood
//!    selection: code degeneracy makes the first satisfying solution almost
//!    always coset-correct).
//!
//! Both a serial executor ([`BpSfDecoder`]) and a persistent worker-pool
//! parallel executor ([`ParallelBpSf`]) are provided, mirroring the paper's
//! serial-CPU and multi-process-CPU implementations.
//!
//! # Examples
//!
//! ```
//! use bpsf_core::{BpSfConfig, BpSfDecoder};
//! use qldpc_codes::coprime_bb;
//! use qldpc_gf2::BitVec;
//!
//! let code = coprime_bb::coprime154();
//! let hz = code.hz().clone();
//! let n = hz.cols();
//! let config = BpSfConfig::code_capacity(50, 8, 1);
//! let mut decoder = BpSfDecoder::new(&hz, &vec![0.02; n], config);
//! let error = BitVec::from_indices(n, &[3, 77]);
//! let result = decoder.decode(&hz.mul_vec(&error));
//! assert!(result.success);
//! assert_eq!(hz.mul_vec(&result.error_hat), hz.mul_vec(&error));
//! ```

mod api;
mod candidates;
mod decoder;
mod parallel;
pub mod stats;
mod trials;

pub use candidates::{
    hit_precision_recall, select_candidates, select_candidates_ranked, CandidateRanking,
};
pub use decoder::{BpSfConfig, BpSfDecoder, BpSfResult, TrialSampling, TrialSelection};
pub use parallel::{ParallelBpSf, ParallelDecodeStats};
pub use qldpc_decoder_api::{DecodeOutcome, SyndromeDecoder};
pub use trials::TrialVectors;
