//! The serial BP-SF decoder (paper Algorithm 1).

use crate::candidates::{select_candidates_ranked, CandidateRanking};
use crate::trials::TrialVectors;
use qldpc_bp::{BatchMinSumDecoder, BpConfig, BpResult, MinSumDecoder};
use qldpc_gf2::{BitVec, SparseBitMatrix};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// How trial vectors are generated from the candidate set Φ.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TrialSampling {
    /// Every subset of Φ up to `max_flip_weight` (code-capacity regime,
    /// where `w_max = 1` or small |Φ| keeps this cheap).
    Exhaustive,
    /// `per_weight` random distinct subsets for each weight in
    /// `1..=max_flip_weight` (circuit-level regime; the paper's `n_s`).
    Sampled {
        /// Number of random subsets per weight (`n_s`).
        per_weight: usize,
    },
}

/// How the winning trial is chosen among convergent ones.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TrialSelection {
    /// Return the first convergent trial (the paper's choice: degeneracy
    /// makes any satisfying solution almost always coset-correct, and this
    /// minimizes latency).
    #[default]
    FirstSuccess,
    /// Decode every trial and return the minimum-weight satisfying
    /// solution (ablation: the classical Chase criterion).
    MinWeight,
}

/// BP-SF configuration.
///
/// # Examples
///
/// ```
/// use bpsf_core::BpSfConfig;
///
/// // Paper Fig. 7 setting: BP100, w_max = 10, |Φ| = 50, n_s = 10.
/// let c = BpSfConfig::circuit_level(100, 50, 10, 10);
/// assert_eq!(c.candidates, 50);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BpSfConfig {
    /// Configuration of the initial BP attempt (oscillation tracking is
    /// forced on internally).
    pub initial_bp: BpConfig,
    /// Iteration budget of each trial BP instance.
    pub trial_bp_iters: usize,
    /// Candidate-set size |Φ|.
    pub candidates: usize,
    /// Maximum trial-vector weight `w_max`.
    pub max_flip_weight: usize,
    /// Trial generation strategy.
    pub sampling: TrialSampling,
    /// Winner selection strategy.
    pub selection: TrialSelection,
    /// Pad Φ with least-reliable non-oscillating bits when fewer than |Φ|
    /// bits oscillated.
    pub pad_candidates: bool,
    /// How candidate bits are ranked (ablation hook; the paper's rule is
    /// the default).
    pub ranking: CandidateRanking,
    /// Seed for the sampled-trial RNG (decodes are deterministic given the
    /// seed and the syndrome sequence).
    pub seed: u64,
}

impl BpSfConfig {
    /// The paper's code-capacity setting: `BP{iters}`, exhaustive trials
    /// of weight ≤ `w_max` over `|Φ| = candidates` bits.
    pub fn code_capacity(bp_iters: usize, candidates: usize, w_max: usize) -> Self {
        Self {
            initial_bp: BpConfig {
                max_iters: bp_iters,
                ..BpConfig::default()
            },
            trial_bp_iters: bp_iters,
            candidates,
            max_flip_weight: w_max,
            sampling: TrialSampling::Exhaustive,
            selection: TrialSelection::FirstSuccess,
            pad_candidates: true,
            ranking: CandidateRanking::FlipCountThenLlr,
            seed: 0,
        }
    }

    /// The paper's circuit-level setting: `BP{iters}`, `n_s` sampled trials
    /// per weight `1..=w_max` over `|Φ| = candidates` bits.
    pub fn circuit_level(bp_iters: usize, candidates: usize, w_max: usize, n_s: usize) -> Self {
        Self {
            initial_bp: BpConfig {
                max_iters: bp_iters,
                ..BpConfig::default()
            },
            trial_bp_iters: bp_iters,
            candidates,
            max_flip_weight: w_max,
            sampling: TrialSampling::Sampled { per_weight: n_s },
            selection: TrialSelection::FirstSuccess,
            pad_candidates: true,
            ranking: CandidateRanking::FlipCountThenLlr,
            seed: 0,
        }
    }

    /// Maximum number of trials this configuration can spawn per failed
    /// initial decode.
    pub fn max_trials(&self) -> usize {
        match self.sampling {
            TrialSampling::Exhaustive => {
                let k = self.candidates;
                (1..=self.max_flip_weight.min(k))
                    .map(|w| binomial(k, w))
                    .sum()
            }
            TrialSampling::Sampled { per_weight } => per_weight * self.max_flip_weight,
        }
    }
}

fn binomial(n: usize, k: usize) -> usize {
    if k > n {
        return 0;
    }
    let mut acc = 1usize;
    for i in 0..k {
        acc = acc.saturating_mul(n - i) / (i + 1);
    }
    acc
}

/// Outcome of a BP-SF decode with full latency accounting.
#[derive(Debug, Clone)]
pub struct BpSfResult {
    /// Whether any stage produced a syndrome-satisfying correction.
    pub success: bool,
    /// The estimated error (meaningful only if `success`).
    pub error_hat: BitVec,
    /// Whether the initial BP attempt already converged.
    pub initial_converged: bool,
    /// Iterations of the initial BP attempt.
    pub initial_iterations: usize,
    /// Candidate set Φ selected after a failed initial attempt (empty when
    /// the initial attempt converged).
    pub candidates: Vec<usize>,
    /// Number of trial decodes executed (serial early-exit semantics).
    pub trials_executed: usize,
    /// Index (within the generated trial list) of the winning trial.
    pub winning_trial: Option<usize>,
    /// Total BP iterations under *serial* execution: initial + all trials
    /// run until the winner (paper Fig. 12's accounting).
    pub serial_iterations: usize,
    /// BP iterations on the *fully parallel* critical path: initial
    /// iterations + the winning trial's iterations (all trials start
    /// simultaneously; the first success gates completion — paper §VI).
    pub critical_path_iterations: usize,
}

/// The serial BP-SF decoder (paper Algorithm 1).
///
/// Owns two min-sum decoders (the oscillation-tracking initial instance
/// and the short-depth trial instance) plus the sparse check matrix used
/// for trial-syndrome generation `s′ = s ⊕ H·t` (an SpMSpV, §VI).
///
/// Clone the decoder to decode concurrently on several threads.
#[derive(Debug, Clone)]
pub struct BpSfDecoder {
    h: SparseBitMatrix,
    initial: MinSumDecoder,
    /// Shot-interleaved engine for the initial BP stage of
    /// [`Self::decode_batch_results`]; built lazily on the first batched
    /// call (the configuration and priors are fixed after construction,
    /// so the cache can never go stale).
    initial_batch: Option<BatchMinSumDecoder>,
    trial: MinSumDecoder,
    config: BpSfConfig,
    rng: StdRng,
}

impl BpSfDecoder {
    /// Builds a BP-SF decoder for check matrix `h` and per-variable priors.
    ///
    /// # Panics
    ///
    /// Panics if `priors.len() != h.cols()`, or if the configuration asks
    /// for zero candidates or zero flip weight.
    pub fn new(h: &SparseBitMatrix, priors: &[f64], config: BpSfConfig) -> Self {
        assert!(config.candidates > 0, "candidate set must be non-empty");
        assert!(
            config.max_flip_weight > 0,
            "max flip weight must be positive"
        );
        let initial_cfg = BpConfig {
            track_oscillations: true,
            ..config.initial_bp
        };
        let trial_cfg = BpConfig {
            max_iters: config.trial_bp_iters,
            track_oscillations: false,
            ..config.initial_bp
        };
        Self {
            h: h.clone(),
            initial: MinSumDecoder::new(h, priors, initial_cfg),
            initial_batch: None,
            trial: MinSumDecoder::new(h, priors, trial_cfg),
            config,
            rng: StdRng::seed_from_u64(config.seed),
        }
    }

    /// The decoder configuration.
    pub fn config(&self) -> &BpSfConfig {
        &self.config
    }

    /// The bound check matrix.
    pub fn check_matrix(&self) -> &SparseBitMatrix {
        &self.h
    }

    /// Generates the trial vectors for a failed initial decode, given the
    /// selected candidate set (exposed for the parallel executor and for
    /// the Fig. 3 analysis).
    pub fn generate_trials(&mut self, candidates: &[usize]) -> TrialVectors {
        match self.config.sampling {
            TrialSampling::Exhaustive => {
                TrialVectors::exhaustive(candidates, self.config.max_flip_weight)
            }
            TrialSampling::Sampled { per_weight } => TrialVectors::sampled(
                candidates,
                self.config.max_flip_weight,
                per_weight,
                &mut self.rng,
            ),
        }
    }

    /// Decodes a syndrome (paper Algorithm 1, serial early-exit execution).
    ///
    /// # Panics
    ///
    /// Panics if the syndrome length differs from the number of checks.
    pub fn decode(&mut self, syndrome: &BitVec) -> BpSfResult {
        let initial = self.initial.decode(syndrome);
        self.post_process(syndrome, initial)
    }

    /// Decodes a batch of syndromes, running the **initial BP stage
    /// through the shot-interleaved batch kernel** and post-processing
    /// the failed shots serially in input order.
    ///
    /// Because the batch kernel is bit-identical to the scalar initial
    /// decoder (and the trial RNG is consumed in the same shot order as a
    /// sequential loop — converged shots never touch it), the results
    /// equal a per-shot [`Self::decode`] loop exactly.
    pub fn decode_batch_results(&mut self, syndromes: &[BitVec]) -> Vec<BpSfResult> {
        if syndromes.len() < 2 {
            return syndromes.iter().map(|s| self.decode(s)).collect();
        }
        if self.initial_batch.is_none() {
            self.initial_batch = Some(BatchMinSumDecoder::from_scalar(&self.initial));
        }
        let initials = self
            .initial_batch
            .as_mut()
            .expect("engine built above")
            .decode_batch_results(syndromes);
        initials
            .into_iter()
            .zip(syndromes)
            .map(|(initial, s)| self.post_process(s, initial))
            .collect()
    }

    /// Algorithm 1 after the initial BP attempt: candidate selection,
    /// trial generation, and the serial early-exit trial loop.
    fn post_process(&mut self, syndrome: &BitVec, initial: BpResult) -> BpSfResult {
        if initial.converged {
            return BpSfResult {
                success: true,
                error_hat: initial.error_hat,
                initial_converged: true,
                initial_iterations: initial.iterations,
                candidates: Vec::new(),
                trials_executed: 0,
                winning_trial: None,
                serial_iterations: initial.iterations,
                critical_path_iterations: initial.iterations,
            };
        }

        let candidates = select_candidates_ranked(
            &initial.flip_counts,
            &initial.posteriors,
            self.config.candidates,
            self.config.pad_candidates,
            self.config.ranking,
        );
        let trials = self.generate_trials(&candidates);

        let mut serial_iterations = initial.iterations;
        let mut best: Option<(usize, BitVec, usize)> = None; // (trial idx, ê⊕t, iters)
        let mut executed = 0usize;
        // Trials stay on the scalar decoder: early exit usually stops
        // after a handful of them, and a fixed interleaved tile would
        // decode past the winner — measurably worse than the loop on the
        // latency-sensitive post-processing path.
        for (idx, t) in trials.iter().enumerate() {
            // s′ = s ⊕ H·t  (flip the candidate bits in the syndrome domain).
            let mut flipped = self.h.mul_sparse_vec(t);
            flipped.xor_assign(syndrome);
            let r = self.trial.decode(&flipped);
            executed += 1;
            serial_iterations += r.iterations;
            if r.converged {
                // Undo the flips in the error domain: ê ⊕ t.
                let mut e = r.error_hat;
                for &bit in t {
                    e.flip(bit);
                }
                debug_assert_eq!(self.h.mul_vec(&e), *syndrome);
                match self.config.selection {
                    TrialSelection::FirstSuccess => {
                        best = Some((idx, e, r.iterations));
                        break;
                    }
                    TrialSelection::MinWeight => {
                        let better = match &best {
                            Some((_, prev, _)) => e.weight() < prev.weight(),
                            None => true,
                        };
                        if better {
                            best = Some((idx, e, r.iterations));
                        }
                    }
                }
            }
        }

        match best {
            Some((idx, error_hat, trial_iters)) => BpSfResult {
                success: true,
                error_hat,
                initial_converged: false,
                initial_iterations: initial.iterations,
                candidates,
                trials_executed: executed,
                winning_trial: Some(idx),
                serial_iterations,
                critical_path_iterations: initial.iterations + trial_iters,
            },
            None => BpSfResult {
                success: false,
                error_hat: initial.error_hat,
                initial_converged: false,
                initial_iterations: initial.iterations,
                candidates,
                trials_executed: executed,
                winning_trial: None,
                serial_iterations,
                // A failed parallel pass still waits for the slowest lane,
                // which exhausts its full budget.
                critical_path_iterations: initial.iterations + self.config.trial_bp_iters,
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qldpc_codes::{bb, coprime_bb};
    use rand::Rng;

    #[test]
    fn zero_syndrome_short_circuits() {
        let code = bb::bb72();
        let hz = code.hz();
        let mut dec = BpSfDecoder::new(
            hz,
            &vec![0.01; hz.cols()],
            BpSfConfig::code_capacity(50, 8, 1),
        );
        let r = dec.decode(&BitVec::zeros(hz.rows()));
        assert!(r.success && r.initial_converged);
        assert_eq!(r.trials_executed, 0);
        assert_eq!(r.serial_iterations, r.critical_path_iterations);
    }

    #[test]
    fn output_always_satisfies_original_syndrome() {
        let code = coprime_bb::coprime154();
        let hz = code.hz();
        let n = hz.cols();
        let mut dec = BpSfDecoder::new(hz, &vec![0.05; n], BpSfConfig::code_capacity(20, 8, 2));
        let mut rng = StdRng::seed_from_u64(3);
        let mut post_processed = 0;
        for _ in 0..100 {
            let mut e = BitVec::zeros(n);
            for i in 0..n {
                if rng.random_bool(0.05) {
                    e.set(i, true);
                }
            }
            let s = hz.mul_vec(&e);
            let r = dec.decode(&s);
            if r.success {
                assert_eq!(hz.mul_vec(&r.error_hat), s);
            }
            if !r.initial_converged {
                post_processed += 1;
            }
        }
        // The coprime-154 code is the paper's example of BP struggling:
        // some shots must exercise the post-processing path.
        assert!(post_processed > 0, "expected some initial-BP failures");
    }

    #[test]
    fn accounting_is_consistent() {
        let code = coprime_bb::coprime154();
        let hz = code.hz();
        let n = hz.cols();
        let mut dec = BpSfDecoder::new(hz, &vec![0.03; n], BpSfConfig::code_capacity(30, 6, 2));
        let mut rng = StdRng::seed_from_u64(17);
        for _ in 0..40 {
            let mut e = BitVec::zeros(n);
            for i in 0..n {
                if rng.random_bool(0.03) {
                    e.set(i, true);
                }
            }
            let r = dec.decode(&hz.mul_vec(&e));
            assert!(r.serial_iterations >= r.initial_iterations);
            assert!(
                r.critical_path_iterations
                    <= r.serial_iterations
                        .max(r.initial_iterations + dec.config().trial_bp_iters)
            );
            if r.initial_converged {
                assert_eq!(r.serial_iterations, r.initial_iterations);
            }
            if let Some(w) = r.winning_trial {
                assert!(w < dec.config().max_trials());
                assert!(r.trials_executed >= 1);
            }
        }
    }

    #[test]
    fn min_weight_selection_never_heavier_than_first_success() {
        let code = coprime_bb::coprime154();
        let hz = code.hz();
        let n = hz.cols();
        let mut first = BpSfDecoder::new(
            hz,
            &vec![0.02; n],
            BpSfConfig {
                selection: TrialSelection::FirstSuccess,
                ..BpSfConfig::code_capacity(30, 8, 1)
            },
        );
        let mut minw = BpSfDecoder::new(
            hz,
            &vec![0.02; n],
            BpSfConfig {
                selection: TrialSelection::MinWeight,
                ..BpSfConfig::code_capacity(30, 8, 1)
            },
        );
        let mut rng = StdRng::seed_from_u64(23);
        for _ in 0..40 {
            let mut e = BitVec::zeros(n);
            for i in 0..n {
                if rng.random_bool(0.02) {
                    e.set(i, true);
                }
            }
            let s = hz.mul_vec(&e);
            let rf = first.decode(&s);
            let rm = minw.decode(&s);
            if rf.success && rm.success && !rf.initial_converged {
                assert!(rm.error_hat.weight() <= rf.error_hat.weight());
            }
        }
    }

    #[test]
    fn max_trials_formula() {
        let c = BpSfConfig::code_capacity(50, 8, 1);
        assert_eq!(c.max_trials(), 8);
        let c = BpSfConfig::code_capacity(50, 5, 2);
        assert_eq!(c.max_trials(), 5 + 10);
        let c = BpSfConfig::circuit_level(100, 50, 6, 5);
        assert_eq!(c.max_trials(), 30);
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn zero_candidates_panics() {
        let code = bb::bb72();
        let hz = code.hz();
        let mut cfg = BpSfConfig::code_capacity(10, 1, 1);
        cfg.candidates = 0;
        BpSfDecoder::new(hz, &vec![0.01; hz.cols()], cfg);
    }
}
