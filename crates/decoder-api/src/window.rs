//! The windowed (streaming) decoding surface: sliced decoding problems,
//! the [`WindowDecoder`] trait, and its factory types.
//!
//! Offline decoding hands the decoder the whole rounds-deep detector
//! error model at once; real fault-tolerant traffic is an unbounded
//! stream of syndrome rounds per logical qubit. Sliding-window decoding
//! bridges the two (the parallel/localized-window line of Hillmann et
//! al.): slice the detector history into overlapping `W`-round windows,
//! decode each window as an ordinary syndrome-decoding problem, *commit*
//! the correction for the oldest `C` rounds (whose mechanisms have seen
//! their full detector support), and carry the posterior beliefs of the
//! still-ambiguous boundary mechanisms forward as priors for the next
//! window.
//!
//! The data model mirrors the offline one on purpose:
//!
//! * A [`WindowPlan`] is the windowed analogue of a check matrix — a
//!   static slicing of one detector error model, built once (by
//!   `qldpc-circuit`'s plan builder) and shared by every stream that
//!   decodes that experiment.
//! * A [`WindowSpec`] is one window's decoding problem: a
//!   detector × mechanism sub-matrix `h`, per-mechanism priors, and the
//!   bookkeeping that stitches windows together — which columns are
//!   committed, where committed corrections *spill* into future
//!   detectors, and how carried columns map into the next window.
//! * A [`WindowDecoder`] is the windowed analogue of
//!   [`SyndromeDecoder`](crate::SyndromeDecoder): it decodes batches of
//!   [`WindowTask`]s (possibly from many concurrent streams, possibly
//!   for different window indices) and returns one [`WindowOutcome`]
//!   per task.
//!
//! Sessions (who owns the rolling syndrome state, applies spill, and
//! threads carried priors from one window into the next) live with the
//! consumers — `qldpc-server`'s streaming sessions and `qldpc-sim`'s
//! streaming runner — so a `WindowDecoder` implementation stays a pure,
//! stateless-per-call kernel that batches well.

use crate::{DecodeTelemetry, Precision};
use qldpc_gf2::{BitVec, SparseBitMatrix};
use std::sync::Arc;

/// A carried column: window-local column `from_col` of one window is the
/// same global mechanism as column `to_col` of the *next* window. The
/// session copies the mechanism's posterior probability from the earlier
/// window's outcome into the later window's prior vector.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CarryLink {
    /// Column index in the earlier window (always `>= commit_cols`).
    pub from_col: u32,
    /// Column index of the same mechanism in the next window.
    pub to_col: u32,
}

/// One window's decoding problem plus the bookkeeping that stitches it
/// to its neighbours.
///
/// Columns are ordered **committed-first**: the first
/// [`commit_cols`](Self::commit_cols) entries of
/// [`mechanisms`](Self::mechanisms) (and of any outcome's `error_hat`)
/// are the mechanisms this window decides finally; the rest are
/// boundary mechanisms re-decoded by the next window.
#[derive(Debug, Clone)]
pub struct WindowSpec {
    /// Position of this window in the plan (0-based).
    pub index: usize,
    /// First detector-round block covered (inclusive).
    pub start_round: usize,
    /// One past the last detector-round block covered.
    pub end_round: usize,
    /// One past the last *committed* round: mechanisms whose earliest
    /// detector lies in `[start_round, commit_end_round)` are decided
    /// finally by this window. The last window commits everything
    /// (`commit_end_round == end_round`).
    pub commit_end_round: usize,
    /// Global mechanism (column) ids of this window's columns,
    /// committed-first.
    pub mechanisms: Vec<u32>,
    /// How many leading columns are committed by this window.
    pub commit_cols: usize,
    /// The window check matrix: `(end_round - start_round) ×
    /// dets_per_round` rows over `mechanisms.len()` columns. Row `i` is
    /// global detector `start_round * dets_per_round + i`; detector
    /// support beyond `end_round` is truncated (those rows belong to
    /// future windows and are handled by spill/carry).
    pub h: SparseBitMatrix,
    /// Per-column prior probabilities (the detector error model's
    /// mechanism priors, in window column order).
    pub priors: Vec<f64>,
    /// Per *committed* column: the global detector ids of that
    /// mechanism at rounds `>= commit_end_round`. When the session
    /// commits the mechanism with value 1, it XORs these detectors out
    /// of its residual syndrome so future windows decode only what
    /// remains unexplained.
    pub spill: Vec<Vec<u32>>,
    /// Column correspondence into the next window for every
    /// non-committed column (empty for the last window).
    pub carry: Vec<CarryLink>,
}

impl WindowSpec {
    /// Detector-round blocks this window spans.
    pub fn num_rounds(&self) -> usize {
        self.end_round - self.start_round
    }

    /// Columns carried into the next window.
    pub fn carry_cols(&self) -> usize {
        self.mechanisms.len() - self.commit_cols
    }
}

/// A static slicing of one detector error model into overlapping
/// decode-commit windows. Built once per experiment; shared (behind an
/// [`Arc`]) by every decoder instance and streaming session.
#[derive(Debug, Clone)]
pub struct WindowPlan {
    /// The windows, in round order. Every mechanism of the underlying
    /// model is committed by exactly one window.
    pub windows: Vec<WindowSpec>,
    /// Total detectors of the underlying model.
    pub num_detectors: usize,
    /// Total mechanisms (columns) of the underlying model.
    pub num_mechanisms: usize,
    /// Detectors per round block.
    pub dets_per_round: usize,
    /// Total round blocks (`num_detectors / dets_per_round`; for a
    /// memory experiment this is `rounds + 1`, the final block being the
    /// data-measurement boundary).
    pub num_round_blocks: usize,
    /// Window span `W` in round blocks.
    pub window_rounds: usize,
    /// Commit stride `C` in round blocks (`C <= W`).
    pub commit_rounds: usize,
}

impl WindowPlan {
    /// Number of windows a full stream submits.
    pub fn num_windows(&self) -> usize {
        self.windows.len()
    }

    /// Syndrome length (detector rows) window `w` expects.
    ///
    /// # Panics
    ///
    /// Panics on an out-of-range window index.
    pub fn window_syndrome_len(&self, w: usize) -> usize {
        self.windows[w].num_rounds() * self.dets_per_round
    }
}

/// One window decode request, as handed to a [`WindowDecoder`]. Many
/// tasks — from many concurrent streams, for any mix of window indices —
/// may arrive in one `decode_windows` call.
#[derive(Debug, Clone)]
pub struct WindowTask<'a> {
    /// Which [`WindowSpec`] of the plan this task decodes.
    pub window_index: usize,
    /// The window-local residual syndrome
    /// ([`WindowPlan::window_syndrome_len`] bits: the stream's detector
    /// bits for the covered rounds, minus already-committed spill).
    pub syndrome: BitVec,
    /// Per-column prior probabilities overriding the spec's priors
    /// (carried beliefs from the previous window); `None` decodes from
    /// the spec priors (a stream's first window).
    pub priors: Option<&'a [f64]>,
}

/// The decode result of one [`WindowTask`].
#[derive(Debug, Clone)]
pub struct WindowOutcome {
    /// Estimated error over the window's columns (committed-first order,
    /// like [`WindowSpec::mechanisms`]).
    pub error_hat: BitVec,
    /// Posterior probability of each window column — what the session
    /// carries into the next window's priors for the non-committed
    /// columns.
    pub posteriors: Vec<f64>,
    /// Whether the window's correction satisfies its residual syndrome.
    pub solved: bool,
    /// BP iterations (or the implementation's analogue) spent.
    pub iterations: usize,
    /// Convergence-effort counters (the kernel fills the BP fields; the
    /// owning session fills spill/carry when it commits).
    pub telemetry: DecodeTelemetry,
}

/// Anything that decodes windows of a fixed [`WindowPlan`]. The windowed
/// analogue of [`SyndromeDecoder`](crate::SyndromeDecoder).
///
/// Implementations must treat tasks independently (no cross-task
/// coupling beyond batching) and return outcomes in task order, exactly
/// like `decode_batch`'s loop-equivalence contract.
pub trait WindowDecoder {
    /// The plan this decoder was built for.
    fn plan(&self) -> &WindowPlan;

    /// Short display name, e.g. `"WindowBP40(W=3,C=1)"`.
    fn label(&self) -> String;

    /// Message precision of the underlying kernel.
    fn precision(&self) -> Precision {
        Precision::F64
    }

    /// Decodes a batch of window tasks, one [`WindowOutcome`] per task,
    /// in task order. Tasks for the same window index should be decoded
    /// together (that is the batching win); tasks for different windows
    /// are independent sub-batches.
    fn decode_windows(&mut self, tasks: &[WindowTask]) -> Vec<WindowOutcome>;
}

/// Builds a [`WindowDecoder`] for a plan — the windowed analogue of
/// [`DecoderFactory`](crate::DecoderFactory), consumed by pooled
/// runtimes that build one instance per worker thread.
pub type WindowDecoderFactory =
    Box<dyn Fn(Arc<WindowPlan>) -> Box<dyn WindowDecoder> + Send + Sync>;

/// A reference-counted [`WindowDecoderFactory`] for long-lived worker
/// pools; convert with [`share_window_factory`].
pub type SharedWindowDecoderFactory =
    Arc<dyn Fn(Arc<WindowPlan>) -> Box<dyn WindowDecoder> + Send + Sync>;

/// Converts an owned [`WindowDecoderFactory`] into the shareable form.
pub fn share_window_factory(factory: WindowDecoderFactory) -> SharedWindowDecoderFactory {
    Arc::from(factory)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_plan() -> WindowPlan {
        // Two round blocks of 1 detector, two mechanisms, one window
        // covering everything.
        let h = SparseBitMatrix::from_row_indices(2, 2, &[vec![0], vec![1]]);
        WindowPlan {
            windows: vec![WindowSpec {
                index: 0,
                start_round: 0,
                end_round: 2,
                commit_end_round: 2,
                mechanisms: vec![0, 1],
                commit_cols: 2,
                h,
                priors: vec![0.01, 0.02],
                spill: vec![Vec::new(), Vec::new()],
                carry: Vec::new(),
            }],
            num_detectors: 2,
            num_mechanisms: 2,
            dets_per_round: 1,
            num_round_blocks: 2,
            window_rounds: 2,
            commit_rounds: 2,
        }
    }

    struct EchoWindow {
        plan: Arc<WindowPlan>,
    }

    impl WindowDecoder for EchoWindow {
        fn plan(&self) -> &WindowPlan {
            &self.plan
        }
        fn label(&self) -> String {
            "EchoWindow".into()
        }
        fn decode_windows(&mut self, tasks: &[WindowTask]) -> Vec<WindowOutcome> {
            tasks
                .iter()
                .map(|t| WindowOutcome {
                    error_hat: t.syndrome.clone(),
                    posteriors: vec![0.5; t.syndrome.len()],
                    solved: true,
                    iterations: 1,
                    telemetry: DecodeTelemetry::bp(1, true),
                })
                .collect()
        }
    }

    #[test]
    fn plan_accessors() {
        let plan = tiny_plan();
        assert_eq!(plan.num_windows(), 1);
        assert_eq!(plan.window_syndrome_len(0), 2);
        assert_eq!(plan.windows[0].num_rounds(), 2);
        assert_eq!(plan.windows[0].carry_cols(), 0);
    }

    #[test]
    fn factories_are_send_sync_and_shareable() {
        fn assert_send_sync<T: Send + Sync>(_: &T) {}
        let f: WindowDecoderFactory =
            Box::new(|plan| Box::new(EchoWindow { plan }) as Box<dyn WindowDecoder>);
        assert_send_sync(&f);
        let shared = share_window_factory(f);
        let mut d = shared(Arc::new(tiny_plan()));
        assert_eq!(d.label(), "EchoWindow");
        assert_eq!(d.precision(), Precision::F64);
        let tasks = vec![WindowTask {
            window_index: 0,
            syndrome: BitVec::from_indices(2, &[1]),
            priors: None,
        }];
        let out = d.decode_windows(&tasks);
        assert_eq!(out.len(), 1);
        assert!(out[0].error_hat.get(1));
    }
}
