//! The unified decoder interface of the BP-SF stack.
//!
//! Every decoder in the workspace — plain min-sum BP (`qldpc-bp`), BP-OSD
//! (`qldpc-osd`), and serial or worker-pool BP-SF (`bpsf-core`) —
//! implements [`SyndromeDecoder`], and every consumer — the Monte Carlo
//! runners in `qldpc-sim`, the figure binaries in `qldpc-bench`, user
//! code via the `bpsf` facade — drives decoders exclusively through it.
//! The trait lives in this leaf crate (depending only on `qldpc-gf2`) so
//! that implementers and consumers never need each other.
//!
//! # Iteration accounting: serial vs critical-path (paper §VI)
//!
//! Decode latency is reported in **BP iterations**, the paper's
//! hardware-neutral unit, in two flavors carried by every
//! [`DecodeOutcome`]:
//!
//! * [`serial_iterations`](DecodeOutcome::serial_iterations) — total BP
//!   iterations summed over *everything* the decoder ran: the initial BP
//!   attempt plus every post-processing trial, as if executed one after
//!   another on a single engine. This is the paper's "BP-SF (serial)"
//!   cost and the fair comparison against single-engine baselines.
//! * [`critical_iterations`](DecodeOutcome::critical_iterations) — BP
//!   iterations on the longest *dependency chain* when every trial runs
//!   on its own engine: initial iterations + the single winning (or
//!   longest surviving) trial. This is the paper's "fully parallelized"
//!   cost, the latency a P-engine hardware implementation would see.
//!
//! A converged initial BP makes the two equal; post-processing opens the
//! gap (`critical ≤ serial`). BP-OSD reports its BP stage in both fields
//! — the Gaussian-elimination cost is inherently serial and shows up only
//! in wall-clock time.
//!
//! # Adding a new decoder
//!
//! 1. Implement [`SyndromeDecoder`] for your decoder type in *its own*
//!    crate (add `qldpc-decoder-api` to its `[dependencies]`):
//!    `decode_syndrome` must return a syndrome-consistent `error_hat`
//!    whenever it sets `solved`, and fill both iteration fields (equal if
//!    the notion of parallel trials does not apply).
//! 2. If the decoder has a natural batched mode (SIMD across syndromes,
//!    shared setup, a persistent worker pool), override
//!    [`SyndromeDecoder::decode_batch`]; the default simply loops.
//!    Batched and looped decoding **must** produce identical outcomes —
//!    `qldpc-sim`'s property tests enforce this for the in-tree decoders.
//! 3. Expose a [`DecoderFactory`] constructor (see `qldpc_sim::decoders`)
//!    so the Monte Carlo runners can build per-basis and per-thread
//!    instances; factories must be `Send + Sync`, the instances they
//!    build need not be.
//! 4. Override [`SyndromeDecoder::family`] if the decoder belongs to one
//!    of the named algorithm families — report generators (the campaign
//!    engine's crossover tables) group rows by the
//!    [`DecoderDescriptor`] your decoder returns, instead of parsing
//!    labels.

use qldpc_gf2::{BitVec, SparseBitMatrix};
use std::fmt;

mod window;

pub use window::{
    share_window_factory, CarryLink, SharedWindowDecoderFactory, WindowDecoder,
    WindowDecoderFactory, WindowOutcome, WindowPlan, WindowSpec, WindowTask,
};

/// Floating-point width of a decoder's message arithmetic.
///
/// The BP message slabs are the stack's hottest memory: halving the
/// scalar width doubles the effective SIMD lanes of the batch kernel and
/// halves its memory traffic, at the cost of ~7 decimal digits of LLR
/// resolution — which min-sum BP tolerates at the paper's operating
/// points (the messages only need to order magnitudes and carry signs).
/// The default is [`Precision::F64`], so every pre-existing call site
/// keeps bitwise-identical behavior; [`Precision::F32`] opts into the
/// reduced-precision fast path.
///
/// Decoders report theirs via [`SyndromeDecoder::precision`]; the
/// accuracy contract (scalar ≡ batch, bit-for-bit) holds *per precision*,
/// not across precisions.
///
/// # Examples
///
/// Selecting a precision at runtime (e.g. from a sweep spec) and
/// inspecting what the choice costs:
///
/// ```
/// use qldpc_decoder_api::Precision;
///
/// let requested = "f32";
/// let precision = Precision::ALL
///     .into_iter()
///     .find(|p| p.name() == requested)
///     .expect("unknown precision");
/// assert_eq!(precision, Precision::F32);
/// // Half the message width of the f64 reference…
/// assert_eq!(precision.bytes_per_message(), Precision::F64.bytes_per_message() / 2);
/// // …and labels carry the non-default suffix so reports stay attributable.
/// assert_eq!(format!("BP100{}", precision.label_suffix()), "BP100@f32");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Precision {
    /// IEEE-754 binary64 messages — the reference arithmetic.
    #[default]
    F64,
    /// IEEE-754 binary32 messages — twice the SIMD lanes, half the
    /// memory traffic, reduced LLR resolution.
    F32,
}

impl Precision {
    /// Both precisions, reference first — the sweep order benches and
    /// parity tests use.
    pub const ALL: [Precision; 2] = [Precision::F64, Precision::F32];

    /// Canonical lowercase name (`"f64"` / `"f32"`).
    pub fn name(self) -> &'static str {
        match self {
            Precision::F64 => "f64",
            Precision::F32 => "f32",
        }
    }

    /// Suffix appended to decoder labels: empty for the default
    /// precision (so existing labels are unchanged), `"@f32"` otherwise.
    pub fn label_suffix(self) -> &'static str {
        match self {
            Precision::F64 => "",
            Precision::F32 => "@f32",
        }
    }

    /// Bytes per BP message at this precision.
    pub fn bytes_per_message(self) -> usize {
        match self {
            Precision::F64 => 8,
            Precision::F32 => 4,
        }
    }
}

impl fmt::Display for Precision {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// The algorithm family a decoder belongs to.
///
/// Reports and campaign tables group decoders by family — e.g. the
/// BP-vs-BP-OSD crossover comparison needs to know which rows are "pure
/// BP" and which carry OSD post-processing — without parsing labels.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DecoderFamily {
    /// Plain belief propagation (any schedule, any precision).
    Bp,
    /// BP with ordered-statistics post-processing.
    BpOsd,
    /// BP with stabilizer-inactivation/trial post-processing (BP-SF).
    BpSf,
    /// Anything else (test doubles, external decoders).
    Other,
}

impl DecoderFamily {
    /// Canonical short name (`"BP"`, `"BP-OSD"`, `"BP-SF"`, `"other"`).
    pub fn name(self) -> &'static str {
        match self {
            DecoderFamily::Bp => "BP",
            DecoderFamily::BpOsd => "BP-OSD",
            DecoderFamily::BpSf => "BP-SF",
            DecoderFamily::Other => "other",
        }
    }

    /// Parses the canonical [`Self::name`] form back into a family.
    pub fn from_name(name: &str) -> Option<Self> {
        match name {
            "BP" => Some(DecoderFamily::Bp),
            "BP-OSD" => Some(DecoderFamily::BpOsd),
            "BP-SF" => Some(DecoderFamily::BpSf),
            "other" => Some(DecoderFamily::Other),
            _ => None,
        }
    }
}

impl fmt::Display for DecoderFamily {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Everything a report needs to attribute a result row to a decoder:
/// display label, algorithm family, and message precision.
///
/// Obtained from a live decoder via [`SyndromeDecoder::descriptor`] so
/// generated tables (campaign REPRO rows, service metrics) can never
/// drift from what the decoder actually reports about itself.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DecoderDescriptor {
    /// The decoder's display label, e.g. `"BP1000-OSD10"`.
    pub label: String,
    /// Algorithm family, for family-level grouping.
    pub family: DecoderFamily,
    /// Message arithmetic width.
    pub precision: Precision,
}

/// Convergence-effort counters attached to every decode outcome.
///
/// Where the iteration fields of [`DecodeOutcome`] answer the paper's
/// headline latency question, this struct answers the observability
/// one — *how hard did the decoder work and why* — in a form cheap
/// enough to fill on every decode and mergeable into service-level
/// counters. Fields a decoder has no notion of stay zero/default (a
/// plain BP decoder reports no OSD sweeps; a window decoder's
/// spill/carry sizes are filled by the streaming session that owns the
/// commit logic, not by the kernel).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct DecodeTelemetry {
    /// BP iterations the initial attempt ran (serial accounting).
    pub bp_iterations: u64,
    /// Whether the initial BP attempt converged on its own.
    pub bp_converged: bool,
    /// Bits observed oscillating (≥ 2 hard-decision flips) during BP —
    /// nonzero only when the decoder tracks oscillations.
    pub oscillating_bits: u64,
    /// OSD post-processing invocations (0 or 1 per decode).
    pub osd_invocations: u64,
    /// OSD candidate patterns swept (0 when BP converged).
    pub osd_candidates: u64,
    /// Syndrome-flip trials executed (BP-SF decoders).
    pub sf_trials: u64,
    /// Detector bits flipped by committed-correction spill into future
    /// windows (streaming sessions only).
    pub window_spill_bits: u64,
    /// Posterior beliefs carried into the next window's priors
    /// (streaming sessions only).
    pub window_carried_priors: u64,
}

impl DecodeTelemetry {
    /// Telemetry for a pure-BP decode: `iterations` run, converged or
    /// not, everything else zero.
    pub fn bp(iterations: usize, converged: bool) -> Self {
        Self {
            bp_iterations: iterations as u64,
            bp_converged: converged,
            ..Self::default()
        }
    }
}

/// The result of a single syndrome decode, with latency accounting.
///
/// `PartialEq`/`Eq` compare every field bit-for-bit — the wire protocol
/// and its bit-identity soak tests rely on outcome equality meaning
/// "identical decode".
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DecodeOutcome {
    /// Estimated error (meaningful only if `solved`).
    pub error_hat: BitVec,
    /// Whether the correction satisfies the syndrome.
    pub solved: bool,
    /// Cumulative BP iterations under serial execution (BP-OSD reports its
    /// BP stage only — the elimination cost shows up in wall time).
    pub serial_iterations: usize,
    /// BP iterations on the fully parallel critical path.
    pub critical_iterations: usize,
    /// Whether post-processing (OSD stage or BP-SF trials) ran.
    pub postprocessed: bool,
    /// Convergence-effort counters for observability sinks.
    pub telemetry: DecodeTelemetry,
}

/// Anything that decodes syndromes against a fixed check matrix.
///
/// Implementations exist for plain min-sum BP, BP-OSD and BP-SF (serial
/// and parallel); the Monte Carlo runners drive them uniformly.
pub trait SyndromeDecoder {
    /// Decodes one syndrome.
    fn decode_syndrome(&mut self, syndrome: &BitVec) -> DecodeOutcome;

    /// Short display name, e.g. `"BP1000-OSD10"`.
    fn label(&self) -> String;

    /// The floating-point width of this decoder's message arithmetic.
    ///
    /// Defaults to [`Precision::F64`] — the reference arithmetic every
    /// decoder used before precision became a first-class parameter.
    /// Reduced-precision decoders override it so run reports and service
    /// metrics can record which arithmetic produced their numbers.
    fn precision(&self) -> Precision {
        Precision::F64
    }

    /// The algorithm family this decoder belongs to.
    ///
    /// Defaults to [`DecoderFamily::Other`]; the in-tree decoders
    /// override it so report generators can group rows (e.g. the
    /// campaign engine's BP-vs-BP-OSD crossover tables) without parsing
    /// labels.
    fn family(&self) -> DecoderFamily {
        DecoderFamily::Other
    }

    /// The report-facing descriptor: label + family + precision in one
    /// value, consistent by construction with the individual accessors.
    fn descriptor(&self) -> DecoderDescriptor {
        DecoderDescriptor {
            label: self.label(),
            family: self.family(),
            precision: self.precision(),
        }
    }

    /// Decodes a batch of syndromes, in order.
    ///
    /// The default implementation loops over [`Self::decode_syndrome`];
    /// decoders with a cheaper amortized path (shot-interleaved kernels,
    /// persistent pools, shared setup) may override it under this
    /// contract:
    ///
    /// * **Loop equivalence.** The outcomes must be exactly what the
    ///   sequential loop would return — same `solved`, same `error_hat`,
    ///   same iteration counts, one outcome per syndrome, in input order.
    ///   `qldpc-sim`'s and `qldpc-bp`'s property tests enforce this for
    ///   the in-tree decoders, bit-for-bit.
    /// * **No lane leakage.** Batching must not couple shots that the
    ///   sequential loop leaves independent: for a decoder whose
    ///   `decode_syndrome` is a pure function of the syndrome, the
    ///   outcome of lane `i` may depend only on `syndromes[i]` — the same
    ///   syndrome placed at lane 0 and lane B−1 of one call must produce
    ///   identical outcomes. (Decoders that legitimately thread state
    ///   across shots — e.g. an RNG consumed by sampled trials — must
    ///   consume it in loop order, which is the same guarantee in
    ///   stateful form.)
    /// * **Ragged tails.** Any batch length is valid, including `0`
    ///   (returns an empty vector) and lengths that do not divide an
    ///   implementation's internal tile/lane width; padding lanes, if
    ///   any, are the implementation's private business and must not
    ///   surface in the output.
    fn decode_batch(&mut self, syndromes: &[BitVec]) -> Vec<DecodeOutcome> {
        syndromes.iter().map(|s| self.decode_syndrome(s)).collect()
    }
}

/// Builds a decoder for a given check matrix and priors — the unit the
/// Monte Carlo runners consume so each basis (X/Z) and each worker thread
/// gets its own instance.
pub type DecoderFactory =
    Box<dyn Fn(&SparseBitMatrix, &[f64]) -> Box<dyn SyndromeDecoder> + Send + Sync>;

/// A reference-counted [`DecoderFactory`]: the form long-lived decoder
/// *pools* hold, where one factory is shared by every worker shard and
/// each worker thread calls it locally so the built instance (which need
/// not be `Send`) never crosses a thread boundary. Convert with
/// [`share_factory`].
pub type SharedDecoderFactory =
    std::sync::Arc<dyn Fn(&SparseBitMatrix, &[f64]) -> Box<dyn SyndromeDecoder> + Send + Sync>;

/// Converts an owned [`DecoderFactory`] into the shareable form consumed
/// by pooled runtimes such as `qldpc-server`.
pub fn share_factory(factory: DecoderFactory) -> SharedDecoderFactory {
    std::sync::Arc::from(factory)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A decoder that echoes the syndrome back as the error estimate.
    struct Echo {
        calls: usize,
    }

    impl SyndromeDecoder for Echo {
        fn decode_syndrome(&mut self, syndrome: &BitVec) -> DecodeOutcome {
            self.calls += 1;
            DecodeOutcome {
                error_hat: syndrome.clone(),
                solved: true,
                serial_iterations: self.calls,
                critical_iterations: self.calls,
                postprocessed: false,
                telemetry: DecodeTelemetry::bp(self.calls, true),
            }
        }

        fn label(&self) -> String {
            "Echo".into()
        }
    }

    #[test]
    fn default_batch_loops_in_order_with_state() {
        let syndromes: Vec<BitVec> = (0..5).map(|i| BitVec::from_indices(8, &[i])).collect();
        let mut d = Echo { calls: 0 };
        let outs = d.decode_batch(&syndromes);
        assert_eq!(outs.len(), 5);
        for (i, (o, s)) in outs.iter().zip(&syndromes).enumerate() {
            assert_eq!(&o.error_hat, s);
            // Statefulness flows through the batch in order.
            assert_eq!(o.serial_iterations, i + 1);
        }
    }

    #[test]
    fn empty_batch_returns_empty() {
        let mut d = Echo { calls: 0 };
        assert!(d.decode_batch(&[]).is_empty());
        // And consumes no decoder state.
        assert_eq!(d.calls, 0);
    }

    #[test]
    fn precision_defaults_to_f64() {
        let d = Echo { calls: 0 };
        assert_eq!(d.precision(), Precision::F64);
        assert_eq!(Precision::default(), Precision::F64);
    }

    #[test]
    fn precision_names_and_suffixes() {
        assert_eq!(Precision::F64.name(), "f64");
        assert_eq!(Precision::F32.name(), "f32");
        assert_eq!(Precision::F64.label_suffix(), "");
        assert_eq!(Precision::F32.label_suffix(), "@f32");
        assert_eq!(Precision::F64.bytes_per_message(), 8);
        assert_eq!(Precision::F32.bytes_per_message(), 4);
        assert_eq!(format!("{}", Precision::F32), "f32");
        assert_eq!(Precision::ALL, [Precision::F64, Precision::F32]);
    }

    #[test]
    fn descriptor_mirrors_the_individual_accessors() {
        let d = Echo { calls: 0 };
        let desc = d.descriptor();
        assert_eq!(desc.label, "Echo");
        assert_eq!(desc.family, DecoderFamily::Other);
        assert_eq!(desc.precision, Precision::F64);
    }

    #[test]
    fn family_names_round_trip() {
        for family in [
            DecoderFamily::Bp,
            DecoderFamily::BpOsd,
            DecoderFamily::BpSf,
            DecoderFamily::Other,
        ] {
            assert_eq!(DecoderFamily::from_name(family.name()), Some(family));
            assert_eq!(format!("{family}"), family.name());
        }
        assert_eq!(DecoderFamily::from_name("BP-XYZ"), None);
    }

    #[test]
    fn factories_are_send_sync() {
        fn assert_send_sync<T: Send + Sync>(_: &T) {}
        let f: DecoderFactory =
            Box::new(|_h, _p| Box::new(Echo { calls: 0 }) as Box<dyn SyndromeDecoder>);
        assert_send_sync(&f);
    }

    #[test]
    fn shared_factories_clone_and_build_on_other_threads() {
        let f: DecoderFactory =
            Box::new(|_h, _p| Box::new(Echo { calls: 0 }) as Box<dyn SyndromeDecoder>);
        let shared = share_factory(f);
        let h = SparseBitMatrix::from_row_indices(1, 2, &[vec![0, 1]]);
        let handles: Vec<_> = (0..3)
            .map(|_| {
                let shared = std::sync::Arc::clone(&shared);
                let h = h.clone();
                std::thread::spawn(move || {
                    let mut d = shared(&h, &[0.1, 0.1]);
                    d.decode_syndrome(&BitVec::from_indices(1, &[0])).solved
                })
            })
            .collect();
        for t in handles {
            assert!(t.join().unwrap());
        }
    }
}
