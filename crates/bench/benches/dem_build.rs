//! Criterion bench: detector-error-model extraction cost (the substrate
//! that replaces Stim's DEM generation).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use qldpc_circuit::{MemoryExperiment, NoiseModel};

fn bench_dem_build(c: &mut Criterion) {
    let mut group = c.benchmark_group("dem_build");
    group.sample_size(10);
    let noise = NoiseModel::uniform_depolarizing(3e-3);
    for rounds in [2usize, 4, 8] {
        let code = qldpc_codes::bb::gross_code();
        group.bench_with_input(
            BenchmarkId::new("gross_code", rounds),
            &rounds,
            |b, &rounds| {
                b.iter(|| {
                    let exp = MemoryExperiment::memory_z(&code, rounds, &noise);
                    std::hint::black_box(exp.detector_error_model())
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_dem_build);
criterion_main!(benches);
