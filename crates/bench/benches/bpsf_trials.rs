//! Criterion bench: BP-SF post-processing throughput — the cost of the
//! speculative trial stage on a syndrome the initial BP cannot solve,
//! compared head-to-head with the OSD stage on the same syndrome.

use bpsf_core::{BpSfConfig, BpSfDecoder};
use criterion::{criterion_group, criterion_main, Criterion};
use qldpc_bp::{BpConfig, MinSumDecoder};
use qldpc_gf2::BitVec;
use qldpc_osd::BpOsdDecoder;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Finds a syndrome on which BP50 fails (so post-processing always runs).
fn hard_syndrome(h: &qldpc_gf2::SparseBitMatrix, p: f64, seed: u64) -> BitVec {
    let n = h.cols();
    let mut probe = MinSumDecoder::new(
        h,
        &vec![p; n],
        BpConfig {
            max_iters: 50,
            ..BpConfig::default()
        },
    );
    let mut rng = StdRng::seed_from_u64(seed);
    loop {
        let mut e = BitVec::zeros(n);
        for i in 0..n {
            if rng.random_bool(p) {
                e.set(i, true);
            }
        }
        let s = h.mul_vec(&e);
        if !probe.decode(&s).converged {
            return s;
        }
    }
}

fn bench_trials(c: &mut Criterion) {
    let code = qldpc_codes::coprime_bb::coprime154();
    let hz = code.hz();
    let n = hz.cols();
    let p = 0.05;
    let s = hard_syndrome(hz, p, 11);

    let mut group = c.benchmark_group("postprocessing_on_bp_failure");
    group.sample_size(20);

    let mut sf = BpSfDecoder::new(hz, &vec![p; n], BpSfConfig::code_capacity(50, 8, 2));
    group.bench_function("bp_sf_w2_phi8", |b| {
        b.iter(|| std::hint::black_box(sf.decode(&s)))
    });

    let mut osd = BpOsdDecoder::new(
        hz,
        &vec![p; n],
        BpConfig {
            max_iters: 50,
            ..BpConfig::default()
        },
        qldpc_osd::OsdConfig::default(),
    );
    group.bench_function("bp_osd10", |b| {
        b.iter(|| std::hint::black_box(osd.decode(&s)))
    });
    group.finish();
}

criterion_group!(benches, bench_trials);
criterion_main!(benches);
