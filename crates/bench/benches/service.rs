//! Service soak bench: does dynamic micro-batching beat
//! one-decode-per-request at equal thread count?
//!
//! A fixed pool of producer threads floods the decoding service with
//! pre-generated gross-code syndromes, twice with identical drivers:
//! once with coalescing enabled (`max_batch` = the kernel lane width)
//! and once disabled (`max_batch = 1`, every request dispatched alone).
//! Wall time to answer *all* requests, the dispatched-batch-size
//! histogram, and p50/p95/p99 latency land in `BENCH_service.json` at
//! the repo root.
//!
//! On this container's single core the batched run still wins — the
//! shot-interleaved kernel amortizes the Tanner-graph walk across lanes
//! (`BENCH_bp_batch.json` measures that effect in isolation) — but the
//! margin grows with cores, where producers and shards actually overlap.

use criterion::{criterion_group, criterion_main, Criterion};
use qldpc_bp::{BpConfig, MinSumDecoder, DEFAULT_MAX_LANES};
use qldpc_decoder_api::DecoderFactory;
use qldpc_gf2::BitVec;
use qldpc_server::{DecodeService, ServiceConfig, SubmitError};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::time::{Duration, Instant};

const BP_ITERS: usize = 20;
const ERROR_RATE: f64 = 0.05;

fn bp_factory() -> DecoderFactory {
    Box::new(move |h, priors| {
        let config = BpConfig {
            max_iters: BP_ITERS,
            ..BpConfig::default()
        };
        Box::new(MinSumDecoder::new(h, priors, config))
    })
}

/// Random gross-code syndromes from i.i.d. errors, one set per producer.
fn producer_syndromes(producers: usize, per_producer: usize) -> Vec<Vec<BitVec>> {
    let code = qldpc_codes::bb::gross_code();
    let hz = code.hz();
    let n = hz.cols();
    (0..producers)
        .map(|p| {
            let mut rng = StdRng::seed_from_u64(90 + p as u64);
            (0..per_producer)
                .map(|_| {
                    let mut e = BitVec::zeros(n);
                    for i in 0..n {
                        if rng.random_bool(ERROR_RATE) {
                            e.set(i, true);
                        }
                    }
                    hz.mul_vec(&e)
                })
                .collect()
        })
        .collect()
}

struct RunResult {
    wall: Duration,
    throughput_per_s: f64,
    mean_batch_size: f64,
    p50_ms: f64,
    p95_ms: f64,
    p99_ms: f64,
    batches: u64,
    stolen: u64,
}

/// One full soak: spawn the service with `max_batch`, flood it from
/// `producers` threads (retrying on backpressure), wait for every
/// response, and return wall time + final metrics.
fn run_soak(max_batch: usize, shards: usize, syndromes: &[Vec<BitVec>]) -> RunResult {
    let code = qldpc_codes::bb::gross_code();
    let hz = code.hz();
    let priors = vec![0.03; hz.cols()];
    let mut builder = DecodeService::builder();
    let config = ServiceConfig {
        shards,
        max_batch,
        max_wait: Duration::from_micros(500),
        queue_capacity: 4096,
        ..ServiceConfig::default()
    };
    let code_id = builder.register_code_with("gross-z", hz, &priors, bp_factory(), config);
    let service = builder.start();

    let total: usize = syndromes.iter().map(Vec::len).sum();
    let start = Instant::now();
    std::thread::scope(|scope| {
        for stream in syndromes {
            let mut client = service.client();
            scope.spawn(move || {
                let mut handles = Vec::with_capacity(stream.len());
                for syndrome in stream {
                    loop {
                        match client.submit(code_id, syndrome.clone()) {
                            Ok(handle) => break handles.push(handle),
                            Err(SubmitError::Overloaded) => std::thread::yield_now(),
                            Err(e) => panic!("submit failed: {e}"),
                        }
                    }
                }
                for handle in handles {
                    assert!(handle.wait().result.is_ok());
                }
            });
        }
    });
    let wall = start.elapsed();
    let metrics = service.shutdown().remove(0);
    assert_eq!(metrics.completed as usize, total);
    assert!(metrics.is_drained());
    RunResult {
        wall,
        throughput_per_s: total as f64 / wall.as_secs_f64(),
        mean_batch_size: metrics.mean_batch_size,
        p50_ms: metrics.latency_ms.median,
        p95_ms: metrics.latency_ms.p95,
        p99_ms: metrics.latency_ms.p99,
        batches: metrics.batches,
        stolen: metrics.stolen,
    }
}

fn bench_service(_c: &mut Criterion) {
    // Smoke pass under `cargo test --benches` / `cargo check`: tiny load,
    // no artifact (see bp_kernel.rs for the convention).
    let smoke = !std::env::args().any(|a| a == "--bench");
    let (producers, per_producer) = if smoke { (2, 8) } else { (4, 1000) };
    let shards = 1; // isolate the coalescing effect; raise on multicore
    let syndromes = producer_syndromes(producers, per_producer);

    let batched = run_soak(DEFAULT_MAX_LANES, shards, &syndromes);
    let unbatched = run_soak(1, shards, &syndromes);
    let speedup = unbatched.wall.as_secs_f64() / batched.wall.as_secs_f64();
    for (name, r) in [("batched", &batched), ("unbatched", &unbatched)] {
        println!(
            "service_soak/{name}: wall={:?} throughput={:.0}/s mean_batch={:.2} \
             p50={:.3}ms p95={:.3}ms p99={:.3}ms batches={} stolen={}",
            r.wall,
            r.throughput_per_s,
            r.mean_batch_size,
            r.p50_ms,
            r.p95_ms,
            r.p99_ms,
            r.batches,
            r.stolen,
        );
    }
    println!("service_soak: batched is {speedup:.2}x the unbatched throughput");

    if smoke {
        println!("service_soak: smoke mode, not writing BENCH_service.json");
        return;
    }
    let series: Vec<String> = [(DEFAULT_MAX_LANES, &batched), (1usize, &unbatched)]
        .iter()
        .map(|(max_batch, r)| {
            format!(
                "    {{\"max_batch\": {max_batch}, \"wall_ms\": {:.3}, \
             \"throughput_per_s\": {:.1}, \"mean_batch_size\": {:.3}, \
             \"p50_ms\": {:.4}, \"p95_ms\": {:.4}, \"p99_ms\": {:.4}, \
             \"batches\": {}}}",
                r.wall.as_secs_f64() * 1e3,
                r.throughput_per_s,
                r.mean_batch_size,
                r.p50_ms,
                r.p95_ms,
                r.p99_ms,
                r.batches,
            )
        })
        .collect();
    let json = format!(
        "{{\n  \"bench\": \"service_soak\",\n  \"code\": \"[[144,12,12]] gross\",\n  \
         \"bp_iters\": {BP_ITERS},\n  \"error_rate\": {ERROR_RATE},\n  \
         \"producers\": {producers},\n  \"requests\": {},\n  \"shards\": {shards},\n  \
         \"speedup_batched_vs_unbatched\": {speedup:.3},\n  \"series\": [\n{}\n  ]\n}}\n",
        producers * per_producer,
        series.join(",\n")
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_service.json");
    match std::fs::write(path, &json) {
        Ok(()) => println!("service_soak: wrote {path}"),
        Err(e) => eprintln!("service_soak: could not write {path}: {e}"),
    }
}

criterion_group!(benches, bench_service);
criterion_main!(benches);
