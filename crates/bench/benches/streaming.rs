//! Streaming decode bench: sustained round throughput of the stateful
//! session path (round-by-round submission, sliding-window BP, rolling
//! commits) through the sharded decode service.
//!
//! For each (code, window) configuration the bench opens many concurrent
//! sessions, feeds every measurement round through `StreamSession`, and
//! records the sustained rounds/sec the service absorbs plus the
//! streamed logical error rate. Results land in `BENCH_streaming.json`
//! at the repo root; the single-window row doubles as an offline
//! baseline (one window covering the whole experiment).

use criterion::{criterion_group, criterion_main, Criterion};
use qldpc_circuit::{window_plan, MemoryExperiment, NoiseModel};
use qldpc_codes::CssCode;
use qldpc_sim::{decoders, run_streaming, StreamingConfig, StreamingReport};
use std::sync::Arc;

const BP_ITERS: usize = 30;
const ERROR_RATE: f64 = 2e-3;

struct Case {
    code_name: &'static str,
    code: CssCode,
    rounds: usize,
    window: usize,
    commit: usize,
}

fn run_case(case: &Case, shots: usize) -> StreamingReport {
    let exp = MemoryExperiment::memory_z(
        &case.code,
        case.rounds,
        &NoiseModel::uniform_depolarizing(ERROR_RATE),
    );
    let dem = exp.detector_error_model();
    let k = dem.num_detectors() / (case.rounds + 1);
    let plan = Arc::new(window_plan(&dem, k, case.window, case.commit));
    let config = StreamingConfig {
        shots,
        seed: 41,
        threads: 2,
        shards: 2,
    };
    run_streaming(
        &dem,
        plan,
        case.code_name,
        &config,
        decoders::window_bp(BP_ITERS),
    )
}

fn bench_streaming(_c: &mut Criterion) {
    // Smoke pass under `cargo test --benches`: tiny load, no artifact
    // (same convention as service.rs / bp_kernel.rs).
    let smoke = !std::env::args().any(|a| a == "--bench");
    let shots = if smoke { 8 } else { 200 };

    let cases = [
        Case {
            code_name: "bb72 r3 W4C4 (offline-equivalent)",
            code: qldpc_codes::bb::bb72(),
            rounds: 3,
            window: 4,
            commit: 4,
        },
        Case {
            code_name: "bb72 r3 W2C1",
            code: qldpc_codes::bb::bb72(),
            rounds: 3,
            window: 2,
            commit: 1,
        },
        Case {
            code_name: "gross r4 W3C1",
            code: qldpc_codes::bb::gross_code(),
            rounds: 4,
            window: 3,
            commit: 1,
        },
    ];

    let reports: Vec<(&Case, StreamingReport)> = cases
        .iter()
        .map(|case| (case, run_case(case, shots)))
        .collect();
    for (_, report) in &reports {
        println!("streaming/{}", report.summary());
    }

    if smoke {
        println!("streaming: smoke mode, not writing BENCH_streaming.json");
        return;
    }
    let series: Vec<String> = reports
        .iter()
        .map(|(case, r)| {
            format!(
                "    {{\"code\": \"{}\", \"rounds\": {}, \"window\": {}, \
                 \"commit\": {}, \"shots\": {}, \"rounds_per_sec\": {:.1}, \
                 \"ler\": {:.4e}, \"unsolved\": {}, \"wall_ms\": {:.3}}}",
                case.code_name,
                case.rounds,
                case.window,
                case.commit,
                r.shots,
                r.rounds_per_sec(),
                r.ler(),
                r.unsolved,
                r.wall.as_secs_f64() * 1e3,
            )
        })
        .collect();
    let json = format!(
        "{{\n  \"bench\": \"streaming\",\n  \"bp_iters\": {BP_ITERS},\n  \
         \"error_rate\": {ERROR_RATE},\n  \"threads\": 2,\n  \"shards\": 2,\n  \
         \"series\": [\n{}\n  ]\n}}\n",
        series.join(",\n")
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_streaming.json");
    match std::fs::write(path, &json) {
        Ok(()) => println!("streaming: wrote {path}"),
        Err(e) => eprintln!("streaming: could not write {path}: {e}"),
    }
}

criterion_group!(benches, bench_streaming);
criterion_main!(benches);
