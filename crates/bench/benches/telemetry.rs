//! Telemetry overhead bench: is the instrumentation cheap enough to
//! leave on?
//!
//! The service records, per answered request, two `Instant` reads, one
//! latency-histogram sample, four stage-histogram samples (queue-wait,
//! coalesce-wait share, kernel, post-process/fulfill), and the
//! convergence counter bumps from [`DecodeTelemetry`]. This bench runs
//! the same gross-code min-sum decode loop twice — bare, and with
//! exactly that per-request telemetry suite — and reports the relative
//! overhead, plus the raw cost of a single
//! [`StreamingHistogram::record`] call. Results land in
//! `BENCH_telemetry.json` at the repo root; the headline number must
//! stay below 2% for the observability layer to stay always-on.

use criterion::{criterion_group, criterion_main, Criterion};
use qldpc_bp::{BpConfig, MinSumDecoder};
use qldpc_decoder_api::SyndromeDecoder;
use qldpc_gf2::BitVec;
use qldpc_telemetry::{Stage, StageSet, StreamingHistogram};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

const BP_ITERS: usize = 20;
const ERROR_RATE: f64 = 0.05;

/// Random gross-code syndromes from i.i.d. errors.
fn gross_syndromes(shots: usize) -> (Vec<BitVec>, MinSumDecoder) {
    let code = qldpc_codes::bb::gross_code();
    let hz = code.hz();
    let n = hz.cols();
    let mut rng = StdRng::seed_from_u64(7);
    let syndromes = (0..shots)
        .map(|_| {
            let mut e = BitVec::zeros(n);
            for i in 0..n {
                if rng.random_bool(ERROR_RATE) {
                    e.set(i, true);
                }
            }
            hz.mul_vec(&e)
        })
        .collect();
    let config = BpConfig {
        max_iters: BP_ITERS,
        ..BpConfig::default()
    };
    (syndromes, MinSumDecoder::new(hz, &vec![0.03; n], config))
}

/// Everything the service touches per answered request.
struct PerRequestTelemetry {
    latency: StreamingHistogram,
    stages: StageSet,
    decodes: AtomicU64,
    bp_iterations: AtomicU64,
    bp_converged: AtomicU64,
}

impl PerRequestTelemetry {
    fn new() -> Self {
        Self {
            latency: StreamingHistogram::new(),
            stages: StageSet::new(),
            decodes: AtomicU64::new(0),
            bp_iterations: AtomicU64::new(0),
            bp_converged: AtomicU64::new(0),
        }
    }
}

/// Best-of-`passes` wall time for the whole decode loop, in nanoseconds.
/// With telemetry, each decode pays the full per-request suite the
/// service performs: timestamping, one latency sample, four stage
/// samples, and the convergence counter bumps.
fn run_loop(
    decoder: &mut MinSumDecoder,
    syndromes: &[BitVec],
    passes: usize,
    telemetry: Option<&PerRequestTelemetry>,
) -> u64 {
    let mut best = u64::MAX;
    for _ in 0..passes {
        let start = Instant::now();
        for s in syndromes {
            match telemetry {
                None => {
                    std::hint::black_box(decoder.decode_syndrome(s));
                }
                Some(t) => {
                    let submitted = Instant::now();
                    let outcome = std::hint::black_box(decoder.decode_syndrome(s));
                    let elapsed = submitted.elapsed();
                    let secs = elapsed.as_secs_f64();
                    t.latency.record(secs);
                    t.stages.record(Stage::QueueWait, elapsed / 4);
                    t.stages.record(Stage::Kernel, elapsed);
                    t.stages.record(Stage::PostProcess, elapsed / 8);
                    t.stages.record(Stage::Fulfill, elapsed);
                    t.decodes.fetch_add(1, Ordering::Relaxed);
                    t.bp_iterations
                        .fetch_add(outcome.telemetry.bp_iterations, Ordering::Relaxed);
                    t.bp_converged
                        .fetch_add(outcome.telemetry.bp_converged as u64, Ordering::Relaxed);
                }
            }
        }
        best = best.min(start.elapsed().as_nanos() as u64);
    }
    best
}

/// Cost of one `StreamingHistogram::record`, in nanoseconds, from a
/// tight loop over pre-generated values.
fn record_cost_ns(samples: usize) -> f64 {
    let hist = StreamingHistogram::new();
    let mut rng = StdRng::seed_from_u64(11);
    let values: Vec<f64> = (0..samples).map(|_| rng.random_range(1e-6..1e-2)).collect();
    let start = Instant::now();
    for v in &values {
        std::hint::black_box(hist.record(*v));
    }
    let total = start.elapsed().as_nanos() as f64;
    assert_eq!(hist.snapshot().count, samples as u64);
    total / samples as f64
}

fn bench_telemetry(_c: &mut Criterion) {
    // Smoke pass under `cargo test --benches` / `cargo check`: tiny load,
    // no artifact (see bp_kernel.rs for the convention).
    let smoke = !std::env::args().any(|a| a == "--bench");
    let (shots, passes, record_samples) = if smoke {
        (16, 2, 1000)
    } else {
        (500, 7, 2_000_000)
    };
    let (syndromes, mut decoder) = gross_syndromes(shots);

    // Interleave warmup, then measure bare and instrumented loops.
    run_loop(&mut decoder, &syndromes, 1, None);
    let telemetry = PerRequestTelemetry::new();
    let bare_ns = run_loop(&mut decoder, &syndromes, passes, None);
    let instrumented_ns = run_loop(&mut decoder, &syndromes, passes, Some(&telemetry));
    let overhead_pct = (instrumented_ns as f64 - bare_ns as f64) / bare_ns as f64 * 100.0;
    let per_record_ns = record_cost_ns(record_samples);

    println!(
        "telemetry_overhead: bare={:.3}us/decode instrumented={:.3}us/decode \
         overhead={overhead_pct:.3}% hist_record={per_record_ns:.1}ns",
        bare_ns as f64 / shots as f64 / 1e3,
        instrumented_ns as f64 / shots as f64 / 1e3,
    );

    if smoke {
        println!("telemetry_overhead: smoke mode, not writing BENCH_telemetry.json");
        return;
    }
    assert!(
        overhead_pct < 2.0,
        "telemetry overhead {overhead_pct:.3}% breaches the 2% budget"
    );
    let json = format!(
        "{{\n  \"bench\": \"telemetry_overhead\",\n  \"code\": \"[[144,12,12]] gross\",\n  \
         \"bp_iters\": {BP_ITERS},\n  \"error_rate\": {ERROR_RATE},\n  \
         \"decodes_per_pass\": {shots},\n  \"passes\": {passes},\n  \
         \"bare_ns_per_decode\": {:.1},\n  \"instrumented_ns_per_decode\": {:.1},\n  \
         \"overhead_pct\": {overhead_pct:.4},\n  \
         \"histogram_record_ns\": {per_record_ns:.2},\n  \"budget_pct\": 2.0\n}}\n",
        bare_ns as f64 / shots as f64,
        instrumented_ns as f64 / shots as f64,
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_telemetry.json");
    match std::fs::write(path, &json) {
        Ok(()) => println!("telemetry_overhead: wrote {path}"),
        Err(e) => eprintln!("telemetry_overhead: could not write {path}: {e}"),
    }
}

criterion_group!(benches, bench_telemetry);
criterion_main!(benches);
