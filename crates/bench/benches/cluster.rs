//! Cluster bench: what does the wire cost?
//!
//! The same synchronous decode load (gross code, min-sum BP, 20
//! iterations) is driven twice per client count — once through the UDS
//! front-end with one `qldpc-client` connection per client, and once
//! straight into the in-process service with one `service.client()`
//! per client. Both drivers are strictly request-response (one decode
//! outstanding per client), so the ratio between them is the per-shot
//! cost of framing + socket hops, not a pipelining artifact. Results
//! for 1/2/4 concurrent clients land in `BENCH_cluster.json` at the
//! repo root.

use criterion::{criterion_group, criterion_main, Criterion};
use qldpc_bp::{BpConfig, MinSumDecoder};
use qldpc_client::Connection;
use qldpc_decoder_api::DecoderFactory;
use qldpc_gf2::BitVec;
use qldpc_server::{DecodeService, FrontendConfig, NetFrontend, ServiceConfig};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;
use std::time::{Duration, Instant};

const BP_ITERS: usize = 20;
const ERROR_RATE: f64 = 0.05;

fn bp_factory() -> DecoderFactory {
    Box::new(move |h, priors| {
        let config = BpConfig {
            max_iters: BP_ITERS,
            ..BpConfig::default()
        };
        Box::new(MinSumDecoder::new(h, priors, config))
    })
}

/// Random gross-code syndromes from i.i.d. errors, one stream per client.
fn client_syndromes(clients: usize, per_client: usize) -> Vec<Vec<BitVec>> {
    let code = qldpc_codes::bb::gross_code();
    let hz = code.hz();
    let n = hz.cols();
    (0..clients)
        .map(|c| {
            let mut rng = StdRng::seed_from_u64(400 + c as u64);
            (0..per_client)
                .map(|_| {
                    let mut e = BitVec::zeros(n);
                    for i in 0..n {
                        if rng.random_bool(ERROR_RATE) {
                            e.set(i, true);
                        }
                    }
                    hz.mul_vec(&e)
                })
                .collect()
        })
        .collect()
}

fn start_service() -> Arc<DecodeService> {
    let code = qldpc_codes::bb::gross_code();
    let hz = code.hz();
    let priors = vec![0.03; hz.cols()];
    let mut builder = DecodeService::builder();
    let config = ServiceConfig {
        shards: 1,
        max_wait: Duration::from_micros(500),
        ..ServiceConfig::default()
    };
    builder.register_code_with("gross-z", hz, &priors, bp_factory(), config);
    Arc::new(builder.start())
}

/// Synchronous decode of every stream over the wire, one connection
/// per stream; returns the wall time to answer all of them.
fn run_wire(uds: &str, syndromes: &[Vec<BitVec>]) -> Duration {
    let start = Instant::now();
    std::thread::scope(|scope| {
        for (i, stream) in syndromes.iter().enumerate() {
            let uds = uds.to_string();
            scope.spawn(move || {
                let mut conn = Connection::connect(&uds, &format!("bench-{i}")).expect("connect");
                conn.set_reply_timeout(Some(Duration::from_secs(120)))
                    .expect("reply timeout");
                let code = conn.lookup_code("gross-z").expect("lookup");
                for syndrome in stream {
                    let reply = conn.decode(code.id, syndrome).expect("decode");
                    assert!(reply.result.is_ok());
                }
            });
        }
    });
    start.elapsed()
}

/// The same synchronous load straight into the service — the no-wire
/// baseline the overhead ratio divides by.
fn run_in_process(service: &DecodeService, syndromes: &[Vec<BitVec>]) -> Duration {
    let code_id = service.lookup_code("gross-z").expect("registered");
    let start = Instant::now();
    std::thread::scope(|scope| {
        for stream in syndromes {
            let mut client = service.client();
            scope.spawn(move || {
                for syndrome in stream {
                    let reply = loop {
                        match client.submit(code_id, syndrome.clone()) {
                            Ok(handle) => break handle.wait(),
                            Err(qldpc_server::SubmitError::Overloaded) => std::thread::yield_now(),
                            Err(e) => panic!("submit failed: {e}"),
                        }
                    };
                    assert!(reply.result.is_ok());
                }
            });
        }
    });
    start.elapsed()
}

struct Point {
    clients: usize,
    requests: usize,
    wire_wall: Duration,
    local_wall: Duration,
}

impl Point {
    fn wire_throughput(&self) -> f64 {
        self.requests as f64 / self.wire_wall.as_secs_f64()
    }

    fn local_throughput(&self) -> f64 {
        self.requests as f64 / self.local_wall.as_secs_f64()
    }

    fn overhead_ratio(&self) -> f64 {
        self.wire_wall.as_secs_f64() / self.local_wall.as_secs_f64()
    }
}

fn bench_cluster(_c: &mut Criterion) {
    // Smoke pass under `cargo test --benches` / CI: tiny load, no
    // artifact (see bp_kernel.rs for the convention).
    let smoke = !std::env::args().any(|a| a == "--bench");
    let per_client = if smoke { 8 } else { 500 };

    let service = start_service();
    let uds = std::env::temp_dir().join(format!("qldpc-bench-cluster-{}.sock", std::process::id()));
    let _ = std::fs::remove_file(&uds);
    let mut frontend =
        NetFrontend::serve_uds(Arc::clone(&service), &uds, FrontendConfig::default())
            .expect("bind UDS front-end");
    let uds_str = uds.to_str().expect("utf-8 temp path");

    let mut points = Vec::new();
    for clients in [1usize, 2, 4] {
        let syndromes = client_syndromes(clients, per_client);
        let wire_wall = run_wire(uds_str, &syndromes);
        let local_wall = run_in_process(&service, &syndromes);
        let point = Point {
            clients,
            requests: clients * per_client,
            wire_wall,
            local_wall,
        };
        println!(
            "cluster/{clients}-client: wire={:?} ({:.0}/s)  in-process={:?} ({:.0}/s)  \
             overhead={:.2}x",
            point.wire_wall,
            point.wire_throughput(),
            point.local_wall,
            point.local_throughput(),
            point.overhead_ratio(),
        );
        points.push(point);
    }

    frontend.shutdown();
    let metrics = Arc::into_inner(service)
        .expect("front-end released the service")
        .shutdown();
    assert!(metrics.iter().all(|m| m.is_drained()));

    if smoke {
        println!("cluster: smoke mode, not writing BENCH_cluster.json");
        return;
    }
    let series: Vec<String> = points
        .iter()
        .map(|p| {
            format!(
                "    {{\"clients\": {}, \"requests\": {}, \
                 \"wire_wall_ms\": {:.3}, \"wire_throughput_per_s\": {:.1}, \
                 \"in_process_wall_ms\": {:.3}, \"in_process_throughput_per_s\": {:.1}, \
                 \"wire_overhead_ratio\": {:.3}}}",
                p.clients,
                p.requests,
                p.wire_wall.as_secs_f64() * 1e3,
                p.wire_throughput(),
                p.local_wall.as_secs_f64() * 1e3,
                p.local_throughput(),
                p.overhead_ratio(),
            )
        })
        .collect();
    let json = format!(
        "{{\n  \"bench\": \"cluster\",\n  \"code\": \"[[144,12,12]] gross\",\n  \
         \"bp_iters\": {BP_ITERS},\n  \"error_rate\": {ERROR_RATE},\n  \
         \"transport\": \"uds\",\n  \"per_client_requests\": {per_client},\n  \
         \"series\": [\n{}\n  ]\n}}\n",
        series.join(",\n")
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_cluster.json");
    match std::fs::write(path, &json) {
        Ok(()) => println!("cluster: wrote {path}"),
        Err(e) => eprintln!("cluster: could not write {path}: {e}"),
    }
}

criterion_group!(benches, bench_cluster);
criterion_main!(benches);
