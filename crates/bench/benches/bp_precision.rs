//! Precision × batch-width sweep of the shot-interleaved BP kernel.
//!
//! The payoff measurement for the precision-generic core: decodes the
//! same gross-code shot set with `f64` and `f32` message slabs at
//! B ∈ {1, 8, 32, `DEFAULT_MAX_LANES`}, plus each precision's scalar
//! per-shot loop, and writes the ns/shot series — and the headline
//! f32-vs-f64 throughput ratio at the widest batch — to
//! `BENCH_bp_precision.json` at the workspace root. Half-width slabs
//! double the effective SIMD lanes of the lane loops and halve their
//! memory traffic, so f32 should win and win more as B grows; the JSON
//! records by how much on this machine.
//!
//! Since the explicit-SIMD batch kernels landed, the artifact also
//! records the **resolved dispatch target** and CPU feature string the
//! un-forced series ran on, plus a forced per-target series at the
//! widest batch (every compiled-in target × both precisions) — the
//! wide-kernel-vs-scalar-oracle payoff at identical output bits.
//!
//! Both precisions decode the identical syndromes; accuracy parity is
//! *not* measured here (that is `tests/precision_parity.rs`) — at fixed
//! iteration counts the work per shot is precision-independent, so this
//! sweep is a pure arithmetic/bandwidth comparison.

use criterion::{criterion_group, criterion_main, Criterion};
use qldpc_bp::{
    active_simd_target, simd_cpu_features, supported_simd_targets, BatchMinSumDecoderOf, BpConfig,
    Llr, MinSumDecoderOf, Precision, SimdTarget, DEFAULT_MAX_LANES,
};
use qldpc_gf2::BitVec;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::time::Instant;

/// Random gross-code syndromes from i.i.d. errors at rate `p`.
fn gross_syndromes(shots: usize, p: f64, seed: u64) -> Vec<BitVec> {
    let code = qldpc_codes::bb::gross_code();
    let hz = code.hz();
    let n = hz.cols();
    let mut rng = StdRng::seed_from_u64(seed);
    (0..shots)
        .map(|_| {
            let mut e = BitVec::zeros(n);
            for i in 0..n {
                if rng.random_bool(p) {
                    e.set(i, true);
                }
            }
            hz.mul_vec(&e)
        })
        .collect()
}

/// Median-of-samples wall time for `f` over the whole shot set, in
/// nanoseconds per shot.
fn ns_per_shot(shots: usize, samples: usize, mut f: impl FnMut()) -> u64 {
    let mut times: Vec<u64> = (0..samples)
        .map(|_| {
            let start = Instant::now();
            f();
            start.elapsed().as_nanos() as u64
        })
        .collect();
    times.sort_unstable();
    times[times.len() / 2] / shots as u64
}

/// One precision's scalar-loop baseline + batch-width series; returns
/// `(scalar_ns, Vec<(width, ns)>)`.
fn sweep_precision<T: Llr>(
    syndromes: &[BitVec],
    widths: &[usize],
    samples: usize,
    config: BpConfig,
) -> (u64, Vec<(usize, u64)>) {
    let code = qldpc_codes::bb::gross_code();
    let hz = code.hz();
    let priors = vec![0.03; hz.cols()];
    let shots = syndromes.len();

    let mut scalar = MinSumDecoderOf::<T>::new(hz, &priors, config);
    let scalar_ns = ns_per_shot(shots, samples, || {
        for s in syndromes {
            std::hint::black_box(scalar.decode(s));
        }
    });
    println!(
        "bp_precision_sweep/{}/scalar_loop: {scalar_ns} ns/shot",
        T::PRECISION
    );

    let mut series = Vec::new();
    for &width in widths {
        let mut engine = BatchMinSumDecoderOf::<T>::new(hz, &priors, config);
        let batch_ns = ns_per_shot(shots, samples, || {
            for chunk in syndromes.chunks(width) {
                std::hint::black_box(engine.decode_batch_results(chunk));
            }
        });
        let speedup = scalar_ns as f64 / batch_ns.max(1) as f64;
        println!(
            "bp_precision_sweep/{}/B={width}: {batch_ns} ns/shot ({speedup:.2}x vs same-precision scalar)",
            T::PRECISION
        );
        series.push((width, batch_ns));
    }
    (scalar_ns, series)
}

/// Forces the batch engine through every compiled-in SIMD dispatch
/// target at one batch width and returns the per-target ns/shot — the
/// explicit-SIMD payoff measurement (wide kernel vs the scalar oracle
/// kernel at the *same* width, same precision, same bits out).
fn sweep_forced_targets<T: Llr>(
    syndromes: &[BitVec],
    width: usize,
    samples: usize,
    config: BpConfig,
) -> Vec<(SimdTarget, u64)> {
    let code = qldpc_codes::bb::gross_code();
    let hz = code.hz();
    let priors = vec![0.03; hz.cols()];
    let shots = syndromes.len();
    let mut series = Vec::new();
    for &target in supported_simd_targets() {
        let forced = BpConfig {
            simd_target: Some(target),
            ..config
        };
        let mut engine = BatchMinSumDecoderOf::<T>::new(hz, &priors, forced);
        let ns = ns_per_shot(shots, samples, || {
            for chunk in syndromes.chunks(width) {
                std::hint::black_box(engine.decode_batch_results(chunk));
            }
        });
        series.push((target, ns));
    }
    let scalar_ns = series
        .iter()
        .find(|(t, _)| *t == SimdTarget::Scalar)
        .map(|&(_, ns)| ns)
        .unwrap_or(0);
    for &(target, ns) in &series {
        println!(
            "bp_precision_sweep/{}/B={width}/target={target}: {ns} ns/shot \
             ({:.2}x vs scalar kernel at the same width)",
            T::PRECISION,
            scalar_ns as f64 / ns.max(1) as f64
        );
    }
    series
}

/// The sweep driver. Emits `BENCH_bp_precision.json` with one series per
/// precision and the headline f32/f64 ratio at the widest batch.
fn bench_bp_precision(_c: &mut Criterion) {
    // `cargo bench` invokes bench binaries with `--bench`; anything else
    // (`cargo test --benches` runs them with NO marker argument, and in
    // the dev profile at that) gets a fast smoke pass that must not
    // overwrite the measurement artifact.
    let smoke = !std::env::args().any(|a| a == "--bench");
    let (shots, samples) = if smoke { (8, 1) } else { (256, 5) };
    let bp_iters = 20;
    let config = BpConfig {
        max_iters: bp_iters,
        ..BpConfig::default()
    };
    let syndromes = gross_syndromes(shots, 0.05, 7);
    let mut widths = vec![1usize, 8, 32, DEFAULT_MAX_LANES];
    widths.retain(|&w| w <= shots); // smoke mode caps the shot count

    // The dispatch target the un-forced series below actually ran on
    // (auto-detected, `QLDPC_SIMD_TARGET`-overridable) and the CPU
    // features behind the decision — without these the ns/shot numbers
    // are not interpretable across machines.
    let active = active_simd_target();
    let features = simd_cpu_features();
    println!("bp_precision_sweep: simd_target={active} cpu_features={features}");

    let (scalar64, series64) = sweep_precision::<f64>(&syndromes, &widths, samples, config);
    let (scalar32, series32) = sweep_precision::<f32>(&syndromes, &widths, samples, config);

    // The explicit-SIMD payoff at the widest batch: every compiled-in
    // target forced in turn, both precisions.
    let max_width = *widths.last().expect("nonempty width list");
    let targets64 = sweep_forced_targets::<f64>(&syndromes, max_width, samples, config);
    let targets32 = sweep_forced_targets::<f32>(&syndromes, max_width, samples, config);

    // Headline: f32 throughput vs f64 at the widest batch width.
    let (_, ns64) = *series64.last().expect("nonempty sweep");
    let (_, ns32) = *series32.last().expect("nonempty sweep");
    let f32_vs_f64 = ns64 as f64 / ns32.max(1) as f64;
    println!("bp_precision_sweep: f32 is {f32_vs_f64:.2}x f64 throughput at B={max_width}");

    if smoke {
        // `cargo test` runs bench targets with `--test`: keep the smoke
        // pass from clobbering a real measurement artifact.
        println!("bp_precision_sweep: smoke mode, not writing BENCH_bp_precision.json");
        return;
    }

    let render_series = |precision: Precision,
                         scalar_ns: u64,
                         series: &[(usize, u64)],
                         targets: &[(SimdTarget, u64)]| {
        let rows: Vec<String> = series
            .iter()
            .map(|&(width, ns)| {
                format!(
                    "      {{\"batch_width\": {width}, \"ns_per_shot\": {ns}, \
                         \"speedup_vs_scalar\": {:.3}}}",
                    scalar_ns as f64 / ns.max(1) as f64
                )
            })
            .collect();
        let kernel_scalar = targets
            .iter()
            .find(|(t, _)| *t == SimdTarget::Scalar)
            .map(|&(_, ns)| ns)
            .unwrap_or(0);
        let target_rows: Vec<String> = targets
            .iter()
            .map(|&(target, ns)| {
                format!(
                    "      {{\"target\": \"{target}\", \"ns_per_shot\": {ns}, \
                         \"speedup_vs_scalar_kernel\": {:.3}}}",
                    kernel_scalar as f64 / ns.max(1) as f64
                )
            })
            .collect();
        format!(
            "    {{\"precision\": \"{precision}\", \"bytes_per_message\": {}, \
                 \"scalar_ns_per_shot\": {scalar_ns}, \"series\": [\n{}\n    ],\n  \
                 \"forced_targets_at_max_batch\": [\n{}\n    ]}}",
            precision.bytes_per_message(),
            rows.join(",\n"),
            target_rows.join(",\n")
        )
    };
    let json = format!(
        "{{\n  \"bench\": \"bp_precision_sweep\",\n  \"code\": \"[[144,12,12]] gross\",\n  \
         \"bp_iters\": {bp_iters},\n  \"shots\": {shots},\n  \"error_rate\": 0.05,\n  \
         \"simd_target\": \"{active}\",\n  \"cpu_features\": \"{features}\",\n  \
         \"f32_vs_f64_at_max_batch\": {f32_vs_f64:.3},\n  \"max_batch\": {max_width},\n  \
         \"precisions\": [\n{},\n{}\n  ]\n}}\n",
        render_series(Precision::F64, scalar64, &series64, &targets64),
        render_series(Precision::F32, scalar32, &series32, &targets32),
    );
    // Bench binaries run with cwd = crates/bench; emit at the workspace
    // root where the other BENCH artifacts live.
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_bp_precision.json");
    match std::fs::write(path, &json) {
        Ok(()) => println!("bp_precision_sweep: wrote {path}"),
        Err(e) => eprintln!("bp_precision_sweep: could not write {path}: {e}"),
    }
}

criterion_group!(benches, bench_bp_precision);
criterion_main!(benches);
