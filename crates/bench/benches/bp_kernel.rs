//! Criterion bench: cost of the min-sum BP kernel — the O(N) claim —
//! plus the batch-width sweep of the shot-interleaved kernel.
//!
//! Measures a fixed 20-iteration decode on the code-capacity check
//! matrices of increasing size, flooding vs layered schedules; then
//! sweeps `BatchMinSumDecoder` over B ∈ {1, 8, 32, `DEFAULT_MAX_LANES`}
//! on the gross code against the scalar per-shot loop, writing the
//! per-shot cost and speedup series to `BENCH_bp_batch.json` in the
//! working directory.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use qldpc_bp::{BatchMinSumDecoder, BpConfig, MinSumDecoder, Schedule, DEFAULT_MAX_LANES};
use qldpc_gf2::BitVec;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::time::Instant;

fn bench_bp_kernel(c: &mut Criterion) {
    let mut group = c.benchmark_group("bp_kernel_20iters");
    group.sample_size(20);
    let codes = [
        qldpc_codes::bb::bb72(),
        qldpc_codes::bb::gross_code(),
        qldpc_codes::bb::bb288(),
    ];
    for code in &codes {
        let hz = code.hz();
        let n = hz.cols();
        let mut rng = StdRng::seed_from_u64(1);
        let mut e = BitVec::zeros(n);
        for i in 0..n {
            if rng.random_bool(0.05) {
                e.set(i, true);
            }
        }
        let s = hz.mul_vec(&e);
        for schedule in [Schedule::Flooding, Schedule::Layered] {
            let config = BpConfig {
                max_iters: 20,
                schedule,
                ..BpConfig::default()
            };
            let mut dec = MinSumDecoder::new(hz, &vec![0.03; n], config);
            group.bench_with_input(BenchmarkId::new(format!("{schedule:?}"), n), &s, |b, s| {
                b.iter(|| std::hint::black_box(dec.decode(s)))
            });
        }
    }
    group.finish();
}

/// Random gross-code syndromes from i.i.d. errors at rate `p`.
fn gross_syndromes(shots: usize, p: f64, seed: u64) -> Vec<BitVec> {
    let code = qldpc_codes::bb::gross_code();
    let hz = code.hz();
    let n = hz.cols();
    let mut rng = StdRng::seed_from_u64(seed);
    (0..shots)
        .map(|_| {
            let mut e = BitVec::zeros(n);
            for i in 0..n {
                if rng.random_bool(p) {
                    e.set(i, true);
                }
            }
            hz.mul_vec(&e)
        })
        .collect()
}

/// Median-of-samples wall time for `f` over the whole shot set, in
/// nanoseconds per shot.
fn ns_per_shot(shots: usize, samples: usize, mut f: impl FnMut()) -> u64 {
    let mut times: Vec<u64> = (0..samples)
        .map(|_| {
            let start = Instant::now();
            f();
            start.elapsed().as_nanos() as u64
        })
        .collect();
    times.sort_unstable();
    times[times.len() / 2] / shots as u64
}

/// Batch-width sweep: the amortization claim, measured. Emits
/// `BENCH_bp_batch.json` with ns/shot for the scalar loop and for the
/// interleaved kernel at B ∈ {1, 8, 32, 128}.
fn bench_bp_batch(_c: &mut Criterion) {
    // `cargo bench` invokes bench binaries with `--bench`; anything else
    // (`cargo test --benches` runs them with NO marker argument, and in
    // the dev profile at that) gets a fast smoke pass that must not
    // overwrite the measurement artifact.
    let smoke = !std::env::args().any(|a| a == "--bench");
    let (shots, samples) = if smoke { (8, 1) } else { (256, 5) };
    let bp_iters = 20;
    let code = qldpc_codes::bb::gross_code();
    let hz = code.hz();
    let n = hz.cols();
    let priors = vec![0.03; n];
    let config = BpConfig {
        max_iters: bp_iters,
        ..BpConfig::default()
    };
    let syndromes = gross_syndromes(shots, 0.05, 7);

    let mut scalar = MinSumDecoder::new(hz, &priors, config);
    let scalar_ns = ns_per_shot(shots, samples, || {
        for s in &syndromes {
            std::hint::black_box(scalar.decode(s));
        }
    });
    println!("bp_batch_sweep/scalar_loop: {scalar_ns} ns/shot");

    let mut series = Vec::new();
    let mut widths = vec![1usize, 8, 32, DEFAULT_MAX_LANES];
    widths.retain(|&w| w <= shots); // smoke mode caps the shot count
    for &width in &widths {
        let mut engine = BatchMinSumDecoder::new(hz, &priors, config);
        let batch_ns = ns_per_shot(shots, samples, || {
            for chunk in syndromes.chunks(width) {
                std::hint::black_box(engine.decode_batch_results(chunk));
            }
        });
        let speedup = scalar_ns as f64 / batch_ns.max(1) as f64;
        println!("bp_batch_sweep/B={width}: {batch_ns} ns/shot ({speedup:.2}x vs scalar loop)");
        series.push(format!(
            "    {{\"batch_width\": {width}, \"ns_per_shot\": {batch_ns}, \
             \"speedup_vs_scalar\": {speedup:.3}}}"
        ));
    }

    if smoke {
        // `cargo test` runs bench targets with `--test`: keep the smoke
        // pass from clobbering a real measurement artifact.
        println!("bp_batch_sweep: smoke mode, not writing BENCH_bp_batch.json");
        return;
    }
    let json = format!(
        "{{\n  \"bench\": \"bp_batch_sweep\",\n  \"code\": \"[[144,12,12]] gross\",\n  \
         \"bp_iters\": {bp_iters},\n  \"shots\": {shots},\n  \"error_rate\": 0.05,\n  \
         \"scalar_ns_per_shot\": {scalar_ns},\n  \"series\": [\n{}\n  ]\n}}\n",
        series.join(",\n")
    );
    // Bench binaries run with cwd = crates/bench; emit at the workspace
    // root where the other BENCH artifacts live.
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_bp_batch.json");
    match std::fs::write(path, &json) {
        Ok(()) => println!("bp_batch_sweep: wrote {path}"),
        Err(e) => eprintln!("bp_batch_sweep: could not write {path}: {e}"),
    }
}

criterion_group!(benches, bench_bp_kernel, bench_bp_batch);
criterion_main!(benches);
