//! Criterion bench: cost of the min-sum BP kernel — the O(N) claim.
//!
//! Measures a fixed 20-iteration decode on the code-capacity check
//! matrices of increasing size, flooding vs layered schedules.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use qldpc_bp::{BpConfig, MinSumDecoder, Schedule};
use qldpc_gf2::BitVec;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn bench_bp_kernel(c: &mut Criterion) {
    let mut group = c.benchmark_group("bp_kernel_20iters");
    group.sample_size(20);
    let codes = [
        qldpc_codes::bb::bb72(),
        qldpc_codes::bb::gross_code(),
        qldpc_codes::bb::bb288(),
    ];
    for code in &codes {
        let hz = code.hz();
        let n = hz.cols();
        let mut rng = StdRng::seed_from_u64(1);
        let mut e = BitVec::zeros(n);
        for i in 0..n {
            if rng.random_bool(0.05) {
                e.set(i, true);
            }
        }
        let s = hz.mul_vec(&e);
        for schedule in [Schedule::Flooding, Schedule::Layered] {
            let config = BpConfig {
                max_iters: 20,
                schedule,
                ..BpConfig::default()
            };
            let mut dec = MinSumDecoder::new(hz, &vec![0.03; n], config);
            group.bench_with_input(BenchmarkId::new(format!("{schedule:?}"), n), &s, |b, s| {
                b.iter(|| std::hint::black_box(dec.decode(s)))
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_bp_kernel);
criterion_main!(benches);
