//! Criterion bench: Monte Carlo shot-sampling throughput from a detector
//! error model.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use qldpc_circuit::{DemSampler, MemoryExperiment, NoiseModel};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_sampler(c: &mut Criterion) {
    let mut group = c.benchmark_group("dem_sampler");
    let noise = NoiseModel::uniform_depolarizing(3e-3);
    for rounds in [2usize, 6] {
        let code = qldpc_codes::bb::gross_code();
        let dem = MemoryExperiment::memory_z(&code, rounds, &noise).detector_error_model();
        let sampler = DemSampler::new(&dem);
        let mut rng = StdRng::seed_from_u64(5);
        group.bench_with_input(
            BenchmarkId::new("gross_code_shot", dem.num_mechanisms()),
            &rounds,
            |b, _| b.iter(|| std::hint::black_box(sampler.sample(&mut rng))),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_sampler);
criterion_main!(benches);
