//! Criterion bench: cost of the OSD Gaussian-elimination stage — the
//! O(N³) expense that BP-SF eliminates — plus the fast-path-vs-reference
//! comparison for the word-parallel elimination rework.
//!
//! `bench_osd` runs the (now word-parallel) OSD-CS(10) post-processing
//! step on check matrices of increasing size, including a circuit-level
//! DEM, with uninformative posteriors (worst case for the reliability
//! sort). `bench_osd_artifact` then measures the retained per-bit
//! reference (`osd_postprocess_reference`, the pre-rework
//! implementation) against the workspace-reusing fast path — both the
//! elimination stage alone and the full OSD-CS(10) sweep — and writes
//! the per-workload means and speedups to `BENCH_osd_elimination.json`
//! at the workspace root.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use qldpc_circuit::{MemoryExperiment, NoiseModel};
use qldpc_gf2::{BitMatrix, BitVec, OrderedEliminator};
use qldpc_osd::{osd_postprocess, osd_postprocess_reference, osd_postprocess_with, OsdConfig};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::time::Instant;

fn random_syndrome(h: &BitMatrix, rng: &mut StdRng) -> BitVec {
    let n = h.cols();
    let mut e = BitVec::zeros(n);
    for i in 0..n {
        if rng.random_bool(0.02) {
            e.set(i, true);
        }
    }
    h.mul_vec(&e)
}

fn bench_osd(c: &mut Criterion) {
    let mut group = c.benchmark_group("osd_cs10_postprocess");
    group.sample_size(10);
    let mut rng = StdRng::seed_from_u64(3);

    // Code-capacity matrices.
    for code in [
        qldpc_codes::bb::bb72(),
        qldpc_codes::bb::gross_code(),
        qldpc_codes::bb::bb288(),
    ] {
        let h = code.hz().to_dense();
        let n = h.cols();
        let s = random_syndrome(&h, &mut rng);
        let posteriors: Vec<f64> = (0..n).map(|_| rng.random_range(-1.0..1.0)).collect();
        let priors = vec![0.02; n];
        group.bench_with_input(BenchmarkId::new("code-capacity", n), &s, |b, s| {
            b.iter(|| {
                std::hint::black_box(osd_postprocess(
                    &h,
                    s,
                    &posteriors,
                    &priors,
                    OsdConfig::default(),
                ))
            })
        });
    }

    // One circuit-level DEM (this is where O(N³) bites).
    let code = qldpc_codes::bb::bb72();
    let dem = MemoryExperiment::memory_z(&code, 4, &NoiseModel::uniform_depolarizing(3e-3))
        .detector_error_model();
    let h = dem.check_matrix().to_dense();
    let n = h.cols();
    let s = random_syndrome(&h, &mut rng);
    let posteriors: Vec<f64> = (0..n).map(|_| rng.random_range(-1.0..1.0)).collect();
    group.bench_with_input(BenchmarkId::new("circuit-dem", n), &s, |b, s| {
        b.iter(|| {
            std::hint::black_box(osd_postprocess(
                &h,
                s,
                &posteriors,
                dem.priors(),
                OsdConfig::default(),
            ))
        })
    });
    group.finish();
}

/// Median-of-samples wall time for `f` over the whole shot set, in
/// nanoseconds per shot.
fn ns_per_shot(shots: usize, samples: usize, mut f: impl FnMut()) -> u64 {
    let mut times: Vec<u64> = (0..samples)
        .map(|_| {
            let start = Instant::now();
            f();
            start.elapsed().as_nanos() as u64
        })
        .collect();
    times.sort_unstable();
    times[times.len() / 2] / shots as u64
}

/// The same ascending stable reliability argsort the decoder uses.
fn reliability_order(posteriors: &[f64]) -> Vec<usize> {
    let mut order: Vec<usize> = (0..posteriors.len()).collect();
    order.sort_by(|&a, &b| {
        posteriors[a]
            .partial_cmp(&posteriors[b])
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    order
}

/// One measured workload row of `BENCH_osd_elimination.json`.
struct Workload {
    name: &'static str,
    h: BitMatrix,
    priors: Vec<f64>,
    shots: usize,
}

/// Reference-vs-fast-path comparison: elimination stage alone and the
/// full OSD-CS(10) sweep, per workload. Emits
/// `BENCH_osd_elimination.json` with mean ns per shot and speedups.
fn bench_osd_artifact(_c: &mut Criterion) {
    // `cargo bench` invokes bench binaries with `--bench`; anything else
    // (`cargo test --benches` runs them with NO marker argument, and in
    // the dev profile at that) gets a fast smoke pass that must not
    // overwrite the measurement artifact.
    let smoke = !std::env::args().any(|a| a == "--bench");
    let samples = if smoke { 1 } else { 5 };

    let mut workloads = vec![Workload {
        name: "bb72",
        h: qldpc_codes::bb::bb72().hz().to_dense(),
        priors: vec![0.02; qldpc_codes::bb::bb72().n()],
        shots: if smoke { 2 } else { 16 },
    }];
    if !smoke {
        for (name, code, shots) in [
            ("gross", qldpc_codes::bb::gross_code(), 8),
            ("bb288", qldpc_codes::bb::bb288(), 4),
        ] {
            workloads.push(Workload {
                name,
                priors: vec![0.02; code.n()],
                h: code.hz().to_dense(),
                shots,
            });
        }
        let dem = MemoryExperiment::memory_z(
            &qldpc_codes::bb::bb72(),
            4,
            &NoiseModel::uniform_depolarizing(3e-3),
        )
        .detector_error_model();
        workloads.push(Workload {
            name: "bb72-r4-circuit",
            h: dem.check_matrix().to_dense(),
            priors: dem.priors().to_vec(),
            shots: 2,
        });
    }

    let config = OsdConfig::default();
    let mut rows = Vec::new();
    for w in &workloads {
        let (h, shots) = (&w.h, w.shots);
        let mut rng = StdRng::seed_from_u64(3);
        let syndromes: Vec<BitVec> = (0..shots).map(|_| random_syndrome(h, &mut rng)).collect();
        let posteriors: Vec<f64> = (0..h.cols()).map(|_| rng.random_range(-1.0..1.0)).collect();
        let order = reliability_order(&posteriors);
        // Same soft costs `BpOsdDecoder` precomputes at construction.
        let cost: Vec<f64> = w
            .priors
            .iter()
            .map(|&p| {
                let p = p.clamp(1e-12, 1.0 - 1e-12);
                ((1.0 - p) / p).ln().max(1e-9)
            })
            .collect();

        // Elimination stage alone: per-bit `OrderedEchelon` (clones `h`
        // per call, as the decoder used to) vs the reusable workspace.
        let ref_elim_ns = ns_per_shot(shots, samples, || {
            for s in &syndromes {
                std::hint::black_box(h.ordered_echelon(s, &order));
            }
        });
        // `eliminate_without_deltas` is the production hot path
        // (`osd_postprocess_with` scores candidates from the RREF
        // columns directly) and, like the reference, stops at the
        // reduced system — the apples-to-apples elimination cost.
        let mut elim = OrderedEliminator::new(h);
        let fast_elim_ns = ns_per_shot(shots, samples, || {
            for s in &syndromes {
                elim.eliminate_without_deltas(s, &order);
                std::hint::black_box(elim.rank());
            }
        });

        // Full OSD-CS(10) post-process.
        let ref_pp_ns = ns_per_shot(shots, samples, || {
            for s in &syndromes {
                std::hint::black_box(osd_postprocess_reference(
                    h,
                    s,
                    &posteriors,
                    &w.priors,
                    config,
                ));
            }
        });
        let fast_pp_ns = ns_per_shot(shots, samples, || {
            for s in &syndromes {
                std::hint::black_box(osd_postprocess_with(
                    &mut elim,
                    s,
                    &posteriors,
                    &cost,
                    config,
                ));
            }
        });

        let elim_speedup = ref_elim_ns as f64 / fast_elim_ns.max(1) as f64;
        let pp_speedup = ref_pp_ns as f64 / fast_pp_ns.max(1) as f64;
        println!(
            "osd_elimination/{}: elim {} -> {} ns/shot ({:.1}x), OSD-CS(10) {} -> {} ns/shot ({:.1}x)",
            w.name, ref_elim_ns, fast_elim_ns, elim_speedup, ref_pp_ns, fast_pp_ns, pp_speedup
        );
        rows.push(format!(
            "    {{\"workload\": \"{}\", \"checks\": {}, \"columns\": {}, \"shots\": {}, \
             \"reference_elim_ns_per_shot\": {}, \"fast_elim_ns_per_shot\": {}, \
             \"elim_speedup\": {:.3}, \"reference_osd_cs10_ns_per_shot\": {}, \
             \"fast_osd_cs10_ns_per_shot\": {}, \"osd_cs10_speedup\": {:.3}}}",
            w.name,
            h.rows(),
            h.cols(),
            shots,
            ref_elim_ns,
            fast_elim_ns,
            elim_speedup,
            ref_pp_ns,
            fast_pp_ns,
            pp_speedup
        ));
    }

    if smoke {
        // `cargo test` runs bench targets with `--test`: keep the smoke
        // pass from clobbering a real measurement artifact.
        println!("osd_elimination: smoke mode, not writing BENCH_osd_elimination.json");
        return;
    }
    let json = format!(
        "{{\n  \"bench\": \"osd_elimination\",\n  \"osd_order\": {},\n  \
         \"error_rate\": 0.02,\n  \"rows\": [\n{}\n  ]\n}}\n",
        config.order,
        rows.join(",\n")
    );
    // Bench binaries run with cwd = crates/bench; emit at the workspace
    // root where the other BENCH artifacts live.
    let path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../BENCH_osd_elimination.json"
    );
    match std::fs::write(path, &json) {
        Ok(()) => println!("osd_elimination: wrote {path}"),
        Err(e) => eprintln!("osd_elimination: could not write {path}: {e}"),
    }
}

criterion_group!(benches, bench_osd, bench_osd_artifact);
criterion_main!(benches);
