//! Criterion bench: cost of the OSD Gaussian-elimination stage — the
//! O(N³) expense that BP-SF eliminates.
//!
//! Runs the full OSD-CS(10) post-processing step on check matrices of
//! increasing size, including a circuit-level DEM, with uninformative
//! posteriors (worst case for the reliability sort).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use qldpc_circuit::{MemoryExperiment, NoiseModel};
use qldpc_gf2::{BitMatrix, BitVec};
use qldpc_osd::{osd_postprocess, OsdConfig};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn random_syndrome(h: &BitMatrix, rng: &mut StdRng) -> BitVec {
    let n = h.cols();
    let mut e = BitVec::zeros(n);
    for i in 0..n {
        if rng.random_bool(0.02) {
            e.set(i, true);
        }
    }
    h.mul_vec(&e)
}

fn bench_osd(c: &mut Criterion) {
    let mut group = c.benchmark_group("osd_cs10_postprocess");
    group.sample_size(10);
    let mut rng = StdRng::seed_from_u64(3);

    // Code-capacity matrices.
    for code in [
        qldpc_codes::bb::bb72(),
        qldpc_codes::bb::gross_code(),
        qldpc_codes::bb::bb288(),
    ] {
        let h = code.hz().to_dense();
        let n = h.cols();
        let s = random_syndrome(&h, &mut rng);
        let posteriors: Vec<f64> = (0..n).map(|_| rng.random_range(-1.0..1.0)).collect();
        let priors = vec![0.02; n];
        group.bench_with_input(BenchmarkId::new("code-capacity", n), &s, |b, s| {
            b.iter(|| {
                std::hint::black_box(osd_postprocess(
                    &h,
                    s,
                    &posteriors,
                    &priors,
                    OsdConfig::default(),
                ))
            })
        });
    }

    // One circuit-level DEM (this is where O(N³) bites).
    let code = qldpc_codes::bb::bb72();
    let dem = MemoryExperiment::memory_z(&code, 4, &NoiseModel::uniform_depolarizing(3e-3))
        .detector_error_model();
    let h = dem.check_matrix().to_dense();
    let n = h.cols();
    let s = random_syndrome(&h, &mut rng);
    let posteriors: Vec<f64> = (0..n).map(|_| rng.random_range(-1.0..1.0)).collect();
    group.bench_with_input(BenchmarkId::new("circuit-dem", n), &s, |b, s| {
        b.iter(|| {
            std::hint::black_box(osd_postprocess(
                &h,
                s,
                &posteriors,
                dem.priors(),
                OsdConfig::default(),
            ))
        })
    });
    group.finish();
}

criterion_group!(benches, bench_osd);
criterion_main!(benches);
