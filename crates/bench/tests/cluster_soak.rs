//! Multi-process cluster soak: a real `serve` process over UDS, fed by
//! concurrent `soak_client` processes, verified for exactly-one-response,
//! bit-identity against in-process decoding, and clean drain on the
//! stdin-EOF shutdown convention. Plus the campaign-over-the-service
//! smoke: `--service` reproduces the in-process REPRO.md byte for byte.
//!
//! Hermetic: the binaries come from `CARGO_BIN_EXE_*`, the transport is
//! a UDS under the temp dir, and every wait is bounded by a deadlock
//! timeout.

use qldpc_bench::{absorb_outcome, soak_syndromes, Fnv1a};
use qldpc_bp::{BpConfig, MinSumDecoder};
use qldpc_decoder_api::SyndromeDecoder;
use std::io::{BufRead, BufReader};
use std::path::PathBuf;
use std::process::{Child, ChildStdout, Command, Stdio};
use std::time::Duration;

const SERVE: &str = env!("CARGO_BIN_EXE_serve");
const SOAK_CLIENT: &str = env!("CARGO_BIN_EXE_soak_client");

/// Deadlock guard: runs `f` on a helper thread, fails the test if it
/// neither finishes nor panics within `limit`.
fn with_timeout<F: FnOnce() + Send + 'static>(limit: Duration, f: F) {
    let (tx, rx) = std::sync::mpsc::channel();
    let worker = std::thread::spawn(move || {
        f();
        tx.send(()).ok();
    });
    match rx.recv_timeout(limit) {
        Ok(()) | Err(std::sync::mpsc::RecvTimeoutError::Disconnected) => {
            worker.join().expect("test thread panicked")
        }
        Err(std::sync::mpsc::RecvTimeoutError::Timeout) => {
            panic!("test exceeded {limit:?} — a soak process hung")
        }
    }
}

fn temp_path(tag: &str) -> PathBuf {
    let path = std::env::temp_dir().join(format!("qldpc-cluster-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_file(&path);
    let _ = std::fs::remove_dir_all(&path);
    path
}

/// Kills a child on drop so a failing assertion cannot leak a process.
struct Reaper(Child);

impl Drop for Reaper {
    fn drop(&mut self) {
        let _ = self.0.kill();
        let _ = self.0.wait();
    }
}

/// Spawns `serve` on `uds`, waits for its LISTENING line, and returns
/// the child plus its stdout reader (positioned after the banner).
fn spawn_serve(uds: &PathBuf, extra: &[&str]) -> (Reaper, BufReader<ChildStdout>) {
    let child = Command::new(SERVE)
        .arg("--uds")
        .arg(uds)
        .args(extra)
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .spawn()
        .expect("spawn serve");
    let mut child = Reaper(child);
    let stdout = child.0.stdout.take().expect("serve stdout piped");
    let mut reader = BufReader::new(stdout);
    let mut line = String::new();
    loop {
        line.clear();
        assert_ne!(
            reader.read_line(&mut line).expect("read serve stdout"),
            0,
            "serve exited before LISTENING"
        );
        if let Some(addr) = line.trim().strip_prefix("LISTENING ") {
            assert_eq!(addr, uds.to_str().unwrap());
            break;
        }
    }
    (child, reader)
}

/// Parses a soak client's `DONE shots=<n> hash=<hex>` line.
fn parse_done(stdout: &str) -> (usize, u64) {
    let line = stdout
        .lines()
        .find(|l| l.starts_with("DONE "))
        .unwrap_or_else(|| panic!("no DONE line in soak client output:\n{stdout}"));
    let mut shots = None;
    let mut hash = None;
    for field in line.split_whitespace().skip(1) {
        if let Some(v) = field.strip_prefix("shots=") {
            shots = v.parse().ok();
        } else if let Some(v) = field.strip_prefix("hash=") {
            hash = u64::from_str_radix(v, 16).ok();
        }
    }
    (
        shots.unwrap_or_else(|| panic!("bad DONE line: {line}")),
        hash.unwrap_or_else(|| panic!("bad DONE line: {line}")),
    )
}

/// The in-process reference digest of one client's stream: the same
/// syndromes through the same decoder construction `serve` registers
/// (gross code, min-sum BP, 20 iterations, flat 0.03 priors).
fn reference_digest(shots: usize, seed: u64) -> (usize, u64) {
    let code = qldpc_codes::bb::gross_code();
    let hz = code.hz();
    let priors = vec![0.03; hz.cols()];
    let config = BpConfig {
        max_iters: 20,
        ..BpConfig::default()
    };
    let mut decoder = MinSumDecoder::new(hz, &priors, config);
    let mut hash = Fnv1a::new();
    for syndrome in soak_syndromes(hz.rows(), shots, seed) {
        absorb_outcome(&mut hash, &decoder.decode_syndrome(&syndrome));
    }
    (shots, hash.finish())
}

/// The tentpole soak: N concurrent client *processes* over UDS, every
/// request answered exactly once and bit-identically to in-process
/// decoding, then a clean drain when the server's stdin closes.
#[test]
fn multi_process_soak_over_uds() {
    with_timeout(Duration::from_secs(300), || {
        const CLIENTS: u64 = 3;
        const SHOTS: usize = 40;
        let uds = temp_path("soak.sock");
        let (mut serve, mut serve_out) = spawn_serve(&uds, &[]);

        // Concurrent client processes, one deterministic stream each.
        let clients: Vec<(u64, Child)> = (0..CLIENTS)
            .map(|seed| {
                let child = Command::new(SOAK_CLIENT)
                    .args(["--addr", uds.to_str().unwrap(), "--code", "gross-z"])
                    .args(["--shots", &SHOTS.to_string(), "--seed", &seed.to_string()])
                    .stdout(Stdio::piped())
                    .spawn()
                    .expect("spawn soak client");
                (seed, child)
            })
            .collect();

        for (seed, child) in clients {
            let output = child.wait_with_output().expect("wait soak client");
            assert!(
                output.status.success(),
                "soak client {seed} failed:\n{}",
                String::from_utf8_lossy(&output.stderr)
            );
            let got = parse_done(&String::from_utf8_lossy(&output.stdout));
            assert_eq!(
                got,
                reference_digest(SHOTS, seed),
                "client {seed}: over-the-wire decode diverged from in-process"
            );
        }

        // Closing stdin is the shutdown request; the server drains and
        // reports its accounting.
        drop(serve.0.stdin.take());
        let mut drained = String::new();
        serve_out.read_line(&mut drained).expect("read DRAINED");
        let fields: Vec<&str> = drained.split_whitespace().collect();
        assert_eq!(fields.first(), Some(&"DRAINED"), "got: {drained:?}");
        let total = (CLIENTS as usize * SHOTS).to_string();
        assert_eq!(
            fields.get(1),
            Some(&total.as_str()),
            "submitted: {drained:?}"
        );
        assert_eq!(
            fields.get(2),
            Some(&total.as_str()),
            "completed: {drained:?}"
        );
        let status = serve.0.wait().expect("wait serve");
        assert!(status.success(), "serve exited with {status:?}");
        assert!(!uds.exists(), "serve left its UDS path behind");
    });
}

/// The campaign-over-the-service smoke: the same spec run in-process
/// and through `campaign --service`-style options produces a
/// byte-identical REPRO.md (both runs stamp the same git revision, so
/// no masking is needed here; CI's CLI variant compares modulo rev).
#[test]
fn campaign_over_service_reproduces_in_process_rows() {
    with_timeout(Duration::from_secs(300), || {
        use qldpc_campaign::{run_campaign, CampaignSpec, RunOptions};

        const SPEC_TEXT: &str = "\
            name   = service-smoke\n\
            seed   = 2026\n\
            codes  = gross\n\
            noise  = code-capacity\n\
            p      = 0.02, 0.05\n\
            decoders   = bp:40, bp-osd:40:10\n\
            precisions = f64\n\
            target_half_width = 0.05\n\
            chunk_shots = 50\n\
            max_shots   = 100\n\
            threads     = 2\n\
            batch_size  = 32\n";
        let spec_path = temp_path("spec.campaign");
        std::fs::write(&spec_path, SPEC_TEXT).expect("write spec");
        let spec = CampaignSpec::from_file(&spec_path).expect("parse spec");

        // Reference: fully in-process.
        let local_dir = temp_path("campaign-local");
        let local = run_campaign(
            &spec,
            &RunOptions {
                quiet: true,
                ..RunOptions::new(&local_dir)
            },
        )
        .expect("local campaign");

        // Same spec through a spec-registered server over UDS.
        let uds = temp_path("campaign.sock");
        let (mut serve, mut serve_out) =
            spawn_serve(&uds, &["--spec", spec_path.to_str().unwrap()]);
        let remote_dir = temp_path("campaign-remote");
        let remote = run_campaign(
            &spec,
            &RunOptions {
                quiet: true,
                service: Some(uds.to_str().unwrap().to_string()),
                ..RunOptions::new(&remote_dir)
            },
        )
        .expect("campaign over service");

        let local_md = std::fs::read_to_string(local.report_path.unwrap()).unwrap();
        let remote_md = std::fs::read_to_string(remote.report_path.unwrap()).unwrap();
        assert_eq!(
            local_md, remote_md,
            "REPRO.md diverged between in-process and over-the-service runs"
        );

        // Clean drain: the service saw every remote decode — two per
        // code-capacity shot (the runner decodes both error species,
        // X through Hz and Z through Hx).
        drop(serve.0.stdin.take());
        let mut drained = String::new();
        serve_out.read_line(&mut drained).expect("read DRAINED");
        assert!(drained.starts_with("DRAINED "), "got: {drained:?}");
        let decodes: u64 = remote.rows.iter().map(|r| 2 * r.shots as u64).sum();
        assert_eq!(
            drained.split_whitespace().nth(2),
            Some(decodes.to_string().as_str()),
            "service completed a different decode count than the campaign logged"
        );
        assert!(serve.0.wait().expect("wait serve").success());

        for dir in [&local_dir, &remote_dir] {
            let _ = std::fs::remove_dir_all(dir);
        }
        let _ = std::fs::remove_file(&spec_path);
    });
}
