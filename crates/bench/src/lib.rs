//! Shared harness for the per-figure benchmark binaries.
//!
//! Every binary in `src/bin/` regenerates one table or figure of the BP-SF
//! paper. The binaries print the measured series next to the paper's
//! reported values (read off the published plots), so the *shape* of each
//! result — who wins, by what factor, where the crossover sits — can be
//! compared directly. Absolute values differ: the paper ran a Xeon
//! E5-2698v4 + V100 with Stim-generated circuits; this reproduction runs a
//! pure-Rust substrate (see DESIGN.md §2 for the substitution table).
//!
//! Common flags for all binaries:
//!
//! * `--shots N` — shots per data point (default: binary-specific),
//! * `--rounds N` — override the number of syndrome-extraction rounds,
//! * `--full` — run the paper's full parameter grid (slow!),
//! * `--seed N` — RNG seed.

use qldpc_circuit::{DetectorErrorModel, MemoryExperiment, NoiseModel};
use qldpc_codes::CssCode;
use qldpc_sim::{
    run_circuit_level, run_code_capacity, CircuitLevelConfig, CodeCapacityConfig, DecoderFactory,
    RunReport,
};

/// Parsed common CLI arguments.
#[derive(Debug, Clone, Copy)]
pub struct BenchArgs {
    /// Shots per data point.
    pub shots: usize,
    /// Run the paper's full grid.
    pub full: bool,
    /// Override the round count (circuit-level benches).
    pub rounds: Option<usize>,
    /// RNG seed.
    pub seed: u64,
}

impl BenchArgs {
    /// Parses `--shots`, `--rounds`, `--full`, `--seed` from `std::env`.
    pub fn parse(default_shots: usize) -> Self {
        let mut args = Self {
            shots: default_shots,
            full: false,
            rounds: None,
            seed: 2026,
        };
        let mut it = std::env::args().skip(1);
        while let Some(a) = it.next() {
            match a.as_str() {
                "--shots" => {
                    args.shots = it
                        .next()
                        .and_then(|v| v.parse().ok())
                        .expect("--shots needs a number");
                }
                "--rounds" => {
                    args.rounds = it.next().and_then(|v| v.parse().ok());
                }
                "--seed" => {
                    args.seed = it
                        .next()
                        .and_then(|v| v.parse().ok())
                        .expect("--seed needs a number");
                }
                "--full" => args.full = true,
                other => eprintln!("ignoring unknown argument {other:?}"),
            }
        }
        args
    }
}

/// Prints the standard experiment banner.
pub fn banner(figure: &str, description: &str, args: &BenchArgs) {
    println!("================================================================");
    println!("{figure}: {description}");
    println!(
        "shots/point = {}{}  seed = {}",
        args.shots,
        if args.full { " (--full grid)" } else { "" },
        args.seed
    );
    println!("================================================================");
}

/// Builds (and memoizes nothing — DEMs are cheap) the memory-Z DEM for a
/// code at a given physical error rate.
pub fn build_dem(code: &CssCode, rounds: usize, p: f64) -> DetectorErrorModel {
    let noise = NoiseModel::uniform_depolarizing(p);
    MemoryExperiment::memory_z(code, rounds, &noise).detector_error_model()
}

/// Runs a circuit-level LER sweep: one row per (p, decoder).
pub fn circuit_sweep(
    code: &CssCode,
    rounds: usize,
    ps: &[f64],
    shots: usize,
    seed: u64,
    factories: &[DecoderFactory],
) -> Vec<RunReport> {
    let mut reports = Vec::new();
    println!(
        "\n{:<36} {:>9} {:>10} {:>12} {:>9} {:>9}",
        "decoder", "p", "LER", "LER/round", "avg ms", "max ms"
    );
    for &p in ps {
        let dem = build_dem(code, rounds, p);
        let workload = format!("{} r={rounds} p={p:.0e}", code.name());
        for factory in factories {
            let report = run_circuit_level(
                &dem,
                &workload,
                &CircuitLevelConfig { shots, seed },
                factory,
            );
            let wall = report.wall_stats_ms();
            println!(
                "{:<36} {:>9.1e} {:>10.3e} {:>12.3e} {:>9.3} {:>9.3}",
                report.decoder,
                p,
                report.ler(),
                report.ler_per_round(rounds),
                wall.mean,
                wall.max
            );
            reports.push(report);
        }
    }
    reports
}

/// Runs a code-capacity LER sweep: one row per (p, decoder).
pub fn capacity_sweep(
    code: &CssCode,
    ps: &[f64],
    shots: usize,
    seed: u64,
    factories: &[DecoderFactory],
) -> Vec<RunReport> {
    let mut reports = Vec::new();
    println!(
        "\n{:<36} {:>9} {:>10} {:>9} {:>9} {:>9}",
        "decoder", "p", "LER", "avg ms", "max ms", "pp-rate"
    );
    for &p in ps {
        for factory in factories {
            let report = run_code_capacity(code, &CodeCapacityConfig { p, shots, seed }, factory);
            let wall = report.wall_stats_ms();
            println!(
                "{:<36} {:>9.1e} {:>10.3e} {:>9.3} {:>9.3} {:>9.3}",
                report.decoder,
                p,
                report.ler(),
                wall.mean,
                wall.max,
                report.postprocessing_rate()
            );
            reports.push(report);
        }
    }
    reports
}

/// Prints the paper-reference block that accompanies each figure.
pub fn paper_reference(lines: &[&str]) {
    println!("\npaper reference (read off the published figure):");
    for l in lines {
        println!("  {l}");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qldpc_codes::bb;
    use qldpc_sim::decoders;

    #[test]
    fn sweeps_produce_one_report_per_cell() {
        let code = bb::bb72();
        let reports = capacity_sweep(&code, &[0.02, 0.05], 10, 1, &[decoders::plain_bp(20)]);
        assert_eq!(reports.len(), 2);
        let reports = circuit_sweep(&code, 2, &[1e-3], 5, 1, &[decoders::plain_bp(20)]);
        assert_eq!(reports.len(), 1);
    }

    #[test]
    fn dem_builder_produces_consistent_shapes() {
        let code = bb::bb72();
        let dem = build_dem(&code, 3, 1e-3);
        assert_eq!(dem.num_detectors(), 36 * 4);
        assert_eq!(dem.num_observables(), 12);
    }
}
