//! Shared harness for the per-figure benchmark binaries.
//!
//! Every binary in `src/bin/` regenerates one table or figure of the BP-SF
//! paper. The binaries print the measured series next to the paper's
//! reported values (read off the published plots), so the *shape* of each
//! result — who wins, by what factor, where the crossover sits — can be
//! compared directly. Absolute values differ: the paper ran a Xeon
//! E5-2698v4 + V100 with Stim-generated circuits; this reproduction runs a
//! pure-Rust substrate (see DESIGN.md §2 for the substitution table).
//!
//! Common flags for all binaries:
//!
//! * `--shots N` — shots per data point (default: binary-specific),
//! * `--rounds N` — override the number of syndrome-extraction rounds,
//! * `--full` — run the paper's full parameter grid (slow!),
//! * `--seed N` — RNG seed.

use qldpc_circuit::{DetectorErrorModel, MemoryExperiment, NoiseModel};
use qldpc_codes::CssCode;
use qldpc_sim::{
    run_circuit_level, run_code_capacity, CircuitLevelConfig, CodeCapacityConfig, DecoderFactory,
    RunReport,
};

/// Parsed common CLI arguments.
#[derive(Debug, Clone, Copy)]
pub struct BenchArgs {
    /// Shots per data point.
    pub shots: usize,
    /// Run the paper's full grid.
    pub full: bool,
    /// Override the round count (circuit-level benches).
    pub rounds: Option<usize>,
    /// RNG seed.
    pub seed: u64,
}

impl BenchArgs {
    /// Parses `--shots`, `--rounds`, `--full`, `--seed` from `std::env`.
    pub fn parse(default_shots: usize) -> Self {
        let mut args = Self {
            shots: default_shots,
            full: false,
            rounds: None,
            seed: 2026,
        };
        let mut it = std::env::args().skip(1);
        while let Some(a) = it.next() {
            match a.as_str() {
                "--shots" => {
                    args.shots = it
                        .next()
                        .and_then(|v| v.parse().ok())
                        .expect("--shots needs a number");
                }
                "--rounds" => {
                    args.rounds = it.next().and_then(|v| v.parse().ok());
                }
                "--seed" => {
                    args.seed = it
                        .next()
                        .and_then(|v| v.parse().ok())
                        .expect("--seed needs a number");
                }
                "--full" => args.full = true,
                other => eprintln!("ignoring unknown argument {other:?}"),
            }
        }
        args
    }
}

/// Prints the standard experiment banner.
pub fn banner(figure: &str, description: &str, args: &BenchArgs) {
    println!("================================================================");
    println!("{figure}: {description}");
    println!(
        "shots/point = {}{}  seed = {}",
        args.shots,
        if args.full { " (--full grid)" } else { "" },
        args.seed
    );
    println!("================================================================");
}

/// Builds (and memoizes nothing — DEMs are cheap) the memory-Z DEM for a
/// code at a given physical error rate.
pub fn build_dem(code: &CssCode, rounds: usize, p: f64) -> DetectorErrorModel {
    let noise = NoiseModel::uniform_depolarizing(p);
    MemoryExperiment::memory_z(code, rounds, &noise).detector_error_model()
}

/// Runs a circuit-level LER sweep: one row per (p, decoder).
pub fn circuit_sweep(
    code: &CssCode,
    rounds: usize,
    ps: &[f64],
    shots: usize,
    seed: u64,
    factories: &[DecoderFactory],
) -> Vec<RunReport> {
    let mut reports = Vec::new();
    println!(
        "\n{:<36} {:>9} {:>10} {:>12} {:>9} {:>9}",
        "decoder", "p", "LER", "LER/round", "avg ms", "max ms"
    );
    for &p in ps {
        let dem = build_dem(code, rounds, p);
        let workload = format!("{} r={rounds} p={p:.0e}", code.name());
        for factory in factories {
            let report = run_circuit_level(
                &dem,
                &workload,
                &CircuitLevelConfig { shots, seed },
                factory,
            );
            let wall = report.wall_stats_ms();
            println!(
                "{:<36} {:>9.1e} {:>10.3e} {:>12.3e} {:>9.3} {:>9.3}",
                report.decoder,
                p,
                report.ler(),
                report.ler_per_round(rounds),
                wall.mean,
                wall.max
            );
            reports.push(report);
        }
    }
    reports
}

/// Runs a code-capacity LER sweep: one row per (p, decoder).
pub fn capacity_sweep(
    code: &CssCode,
    ps: &[f64],
    shots: usize,
    seed: u64,
    factories: &[DecoderFactory],
) -> Vec<RunReport> {
    let mut reports = Vec::new();
    println!(
        "\n{:<36} {:>9} {:>10} {:>9} {:>9} {:>9}",
        "decoder", "p", "LER", "avg ms", "max ms", "pp-rate"
    );
    for &p in ps {
        for factory in factories {
            let report = run_code_capacity(code, &CodeCapacityConfig { p, shots, seed }, factory);
            let wall = report.wall_stats_ms();
            println!(
                "{:<36} {:>9.1e} {:>10.3e} {:>9.3} {:>9.3} {:>9.3}",
                report.decoder,
                p,
                report.ler(),
                wall.mean,
                wall.max,
                report.postprocessing_rate()
            );
            reports.push(report);
        }
    }
    reports
}

/// Prints the paper-reference block that accompanies each figure.
pub fn paper_reference(lines: &[&str]) {
    println!("\npaper reference (read off the published figure):");
    for l in lines {
        println!("  {l}");
    }
}

/// FNV-1a over a byte stream — the soak harness's order-sensitive
/// digest (no external hash crates; collisions would need an adversary,
/// and the comparison is decoder-vs-itself).
#[derive(Debug, Clone, Copy)]
pub struct Fnv1a(u64);

impl Fnv1a {
    /// The standard 64-bit offset basis.
    pub fn new() -> Self {
        Fnv1a(0xcbf2_9ce4_8422_2325)
    }

    /// Absorbs raw bytes.
    pub fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }

    /// Absorbs a little-endian u64.
    pub fn write_u64(&mut self, v: u64) {
        self.write(&v.to_le_bytes());
    }

    /// The digest so far.
    pub fn finish(self) -> u64 {
        self.0
    }
}

impl Default for Fnv1a {
    fn default() -> Self {
        Self::new()
    }
}

/// Absorbs every field of a decode outcome into `hash` — the
/// bit-identity fingerprint the cluster soak compares between
/// over-the-wire and in-process decoding. Any divergence (estimate,
/// convergence flags, iteration counts, telemetry) changes the digest.
pub fn absorb_outcome(hash: &mut Fnv1a, outcome: &qldpc_decoder_api::DecodeOutcome) {
    hash.write_u64(outcome.error_hat.len() as u64);
    for &word in outcome.error_hat.as_words() {
        hash.write_u64(word);
    }
    hash.write_u64(outcome.solved as u64);
    hash.write_u64(outcome.serial_iterations as u64);
    hash.write_u64(outcome.critical_iterations as u64);
    hash.write_u64(outcome.postprocessed as u64);
    let t = &outcome.telemetry;
    for v in [
        t.bp_iterations,
        t.bp_converged as u64,
        t.oscillating_bits,
        t.osd_invocations,
        t.osd_candidates,
        t.sf_trials,
        t.window_spill_bits,
        t.window_carried_priors,
    ] {
        hash.write_u64(v);
    }
}

/// The deterministic syndrome stream of one soak client: `shots`
/// random `bits`-wide syndromes (bit rate 0.1) from a seeded RNG. The
/// soak server and the in-process reference both regenerate it from
/// `(bits, shots, seed)`, so the only thing compared over the wire is
/// the decoding.
pub fn soak_syndromes(bits: usize, shots: usize, seed: u64) -> Vec<qldpc_gf2::BitVec> {
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    let mut rng = StdRng::seed_from_u64(seed);
    (0..shots)
        .map(|_| {
            let mut s = qldpc_gf2::BitVec::zeros(bits);
            for i in 0..bits {
                if rng.random_bool(0.1) {
                    s.set(i, true);
                }
            }
            s
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use qldpc_codes::bb;
    use qldpc_sim::decoders;

    #[test]
    fn sweeps_produce_one_report_per_cell() {
        let code = bb::bb72();
        let reports = capacity_sweep(&code, &[0.02, 0.05], 10, 1, &[decoders::plain_bp(20)]);
        assert_eq!(reports.len(), 2);
        let reports = circuit_sweep(&code, 2, &[1e-3], 5, 1, &[decoders::plain_bp(20)]);
        assert_eq!(reports.len(), 1);
    }

    #[test]
    fn dem_builder_produces_consistent_shapes() {
        let code = bb::bb72();
        let dem = build_dem(&code, 3, 1e-3);
        assert_eq!(dem.num_detectors(), 36 * 4);
        assert_eq!(dem.num_observables(), 12);
    }
}
