//! `soak_client` — one decode-service client process of the cluster
//! soak harness.
//!
//! ```text
//! soak_client --addr <addr> --code <name> --shots N --seed S
//! ```
//!
//! Connects to a running `serve` (TCP `host:port`, or a UDS path when
//! the address contains `/`), regenerates its deterministic syndrome
//! stream from `(syndrome_bits, shots, seed)` (see
//! [`qldpc_bench::soak_syndromes`]), decodes every syndrome, and
//! prints exactly one line:
//!
//! ```text
//! DONE shots=<N> hash=<16-hex-digit digest>
//! ```
//!
//! The digest absorbs every field of every outcome in submission
//! order, so the parent harness can verify both *exactly-one-response*
//! (the count) and *bit-identity* against an in-process decode of the
//! same stream (the hash) without shipping outcomes around. Any
//! transport failure, typed refusal, or dropped request exits nonzero
//! with the error on stderr — the soak treats those as harness
//! failures, not statistics.

use qldpc_bench::{absorb_outcome, soak_syndromes, Fnv1a};
use qldpc_client::Connection;
use std::process::ExitCode;
use std::time::Duration;

const USAGE: &str = "usage: soak_client --addr <addr> --code <name> --shots N --seed S";

fn fail(message: impl std::fmt::Display) -> ExitCode {
    eprintln!("soak_client: {message}");
    ExitCode::FAILURE
}

fn take_value(args: &mut Vec<String>, flag: &str) -> Result<String, String> {
    let pos = args
        .iter()
        .position(|a| a == flag)
        .ok_or_else(|| format!("{flag} is required"))?;
    if pos + 1 >= args.len() {
        return Err(format!("{flag} needs a value"));
    }
    let value = args.remove(pos + 1);
    args.remove(pos);
    Ok(value)
}

fn main() -> ExitCode {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let parsed = (|| -> Result<_, String> {
        let addr = take_value(&mut args, "--addr")?;
        let code = take_value(&mut args, "--code")?;
        let shots: usize = take_value(&mut args, "--shots")?
            .parse()
            .map_err(|_| "--shots needs a number".to_string())?;
        let seed: u64 = take_value(&mut args, "--seed")?
            .parse()
            .map_err(|_| "--seed needs a number".to_string())?;
        Ok((addr, code, shots, seed))
    })();
    let (addr, code_name, shots, seed) = match parsed {
        Ok(p) => p,
        Err(e) => return fail(format!("{e}\n{USAGE}")),
    };
    if !args.is_empty() {
        return fail(format!("unexpected arguments: {args:?}\n{USAGE}"));
    }

    let mut conn = match Connection::connect(&addr, &format!("soak-{seed}")) {
        Ok(c) => c,
        Err(e) => return fail(format!("connecting {addr}: {e}")),
    };
    // Deadlock tripwire: a stalled server fails the soak instead of
    // hanging it.
    if let Err(e) = conn.set_reply_timeout(Some(Duration::from_secs(120))) {
        return fail(format!("setting reply timeout: {e}"));
    }
    let code = match conn.lookup_code(&code_name) {
        Ok(c) => c,
        Err(e) => return fail(format!("looking up '{code_name}': {e}")),
    };

    let mut hash = Fnv1a::new();
    let mut replies = 0usize;
    for syndrome in soak_syndromes(code.syndrome_bits as usize, shots, seed) {
        let reply = match conn.decode(code.id, &syndrome) {
            Ok(r) => r,
            Err(e) => return fail(format!("decode {replies}: {e}")),
        };
        let outcome = match reply.result {
            Ok(o) => o,
            Err(failure) => return fail(format!("decode {replies} dropped: {failure}")),
        };
        absorb_outcome(&mut hash, &outcome);
        replies += 1;
    }
    println!("DONE shots={replies} hash={:016x}", hash.finish());
    ExitCode::SUCCESS
}
