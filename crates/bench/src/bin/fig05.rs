//! Figure 5: code-capacity error rates of the `[[154,6,16]]` coprime-BB
//! code — the paper's showcase of BP-SF *beating* BP-OSD.
//!
//! Paper setup: BP-SF with BP50, w_max = 1, |Φ| = 8; baselines
//! BP1000-OSD10, BP1000-OSD0, BP1000. BP and BP-OSD exhibit an error
//! floor from weight-3 trapping-set errors that BP-SF removes.

use bpsf_core::BpSfConfig;
use qldpc_bench::{banner, capacity_sweep, paper_reference, BenchArgs};
use qldpc_sim::decoders;

fn main() {
    let args = BenchArgs::parse(400);
    banner(
        "Figure 5",
        "Coprime-BB `[[154,6,16]]` under the code-capacity model",
        &args,
    );
    let code = qldpc_codes::coprime_bb::coprime154();
    let ps: &[f64] = if args.full {
        &[0.01, 0.02, 0.03, 0.05, 0.08, 0.12]
    } else {
        &[0.03, 0.05, 0.08]
    };
    let factories = vec![
        decoders::bp_sf(BpSfConfig::code_capacity(50, 8, 1)),
        decoders::bp_osd(1000, 10),
        decoders::bp_osd(1000, 0),
        decoders::plain_bp(1000),
    ];
    capacity_sweep(&code, ps, args.shots, args.seed, &factories);
    paper_reference(&[
        "BP-SF (BP50, w=1, |Φ|=8) is the best curve: LER ≈ 1e-5 at p=0.02,",
        "  no error floor down to LER 1e-6",
        "BP1000-OSD10 and BP1000-OSD0 flatten into an error floor near 1e-4",
        "BP1000 alone is one-plus order of magnitude worse than BP-SF",
        "shape to verify: BP-SF < BP-OSD < BP at every p in the sweep",
    ]);
}
