//! Figure 13: latency scaling of BP-SF vs BP-OSD across code sizes at
//! p = 3e-3 — average decode time, plus the post-processing-only average
//! (the paper's dashed lines), against the number of error mechanisms.
//!
//! Paper setup: codes `[[126,12,10]]`, `[[144,12,12]]`, `[[154,6,16]]`,
//! `[[288,12,18]]` with 6426/8784/12474/26208 mechanisms respectively;
//! BP-SF average ≈ 0.63× BP-OSD overall and ≈ 0.1× on the
//! post-processing stage for the largest code.

use bpsf_core::BpSfConfig;
use qldpc_bench::{banner, build_dem, paper_reference, BenchArgs};
use qldpc_sim::{decoders, run_circuit_level, CircuitLevelConfig};

fn main() {
    let args = BenchArgs::parse(60);
    banner(
        "Figure 13",
        "latency scaling vs number of error mechanisms at p = 3e-3",
        &args,
    );
    let codes: Vec<(qldpc_codes::CssCode, usize)> = vec![
        (qldpc_codes::coprime_bb::coprime126(), 10),
        (qldpc_codes::bb::gross_code(), 12),
        (qldpc_codes::coprime_bb::coprime154(), 16),
        (qldpc_codes::bb::bb288(), 18),
    ];
    let config = CircuitLevelConfig {
        shots: args.shots,
        seed: args.seed,
    };

    println!(
        "\n{:<26} {:>11} {:<16} {:>9} {:>12} {:>9}",
        "code", "mechanisms", "decoder", "avg ms", "postproc ms", "LER"
    );
    for (code, d) in &codes {
        let rounds = args.rounds.unwrap_or(*d);
        let dem = build_dem(code, rounds, 3e-3);
        for factory in [
            decoders::bp_sf(BpSfConfig::circuit_level(100, 50, 10, 10)),
            decoders::bp_osd(1000, 10),
        ] {
            let r = run_circuit_level(&dem, code.name(), &config, &factory);
            let wall = r.wall_stats_ms();
            let pp = r.postprocessed_wall_stats_ms();
            println!(
                "{:<26} {:>11} {:<16} {:>9.2} {:>12.2} {:>9.2e}",
                code.name(),
                dem.num_mechanisms(),
                r.decoder,
                wall.mean,
                pp.mean,
                r.ler()
            );
        }
    }
    paper_reference(&[
        "mechanisms (paper): 6426 / 8784 / 12474 / 26208 for the four codes",
        "BP-SF average latency is consistently below BP-OSD's,",
        "  reaching ≈0.63× for `[[288,12,18]]`",
        "post-processing-only latency (dashed): BP-SF ≈ 0.1× BP-OSD —",
        "  an order of magnitude — because syndrome flips replace Gaussian",
        "  elimination",
    ]);
}
