//! Ablation study over the BP-SF design choices called out in DESIGN.md:
//!
//! * adaptive damping `α_i = 1 − 2⁻ⁱ` vs fixed normalization,
//! * first-success return vs classical min-weight Chase selection,
//! * candidate ranking: flip-count+LLR (paper) vs flip-count only vs
//!   reliability only,
//! * padding Φ with unreliable non-oscillating bits on/off.
//!
//! Workload: `[[154,6,16]]` code capacity (the code where post-processing
//! matters most) at p = 0.05.

use bpsf_core::{BpSfConfig, CandidateRanking, TrialSelection};
use qldpc_bench::{banner, BenchArgs};
use qldpc_bp::DampingSchedule;
use qldpc_sim::{decoders, run_code_capacity, CodeCapacityConfig};

fn main() {
    let args = BenchArgs::parse(600);
    banner(
        "Ablations",
        "BP-SF design choices on Coprime-BB `[[154,6,16]]`, code capacity p = 0.05",
        &args,
    );
    let code = qldpc_codes::coprime_bb::coprime154();
    let config = CodeCapacityConfig {
        p: 0.05,
        shots: args.shots,
        seed: args.seed,
    };
    let base = BpSfConfig::code_capacity(50, 8, 1);

    let variants: Vec<(&str, BpSfConfig)> = vec![
        ("paper default (adaptive, first-success)", base),
        (
            "fixed damping α=0.8",
            BpSfConfig {
                initial_bp: qldpc_bp::BpConfig {
                    damping: DampingSchedule::Fixed(0.8),
                    ..base.initial_bp
                },
                ..base
            },
        ),
        (
            "no damping (α=1, plain min-sum)",
            BpSfConfig {
                initial_bp: qldpc_bp::BpConfig {
                    damping: DampingSchedule::Fixed(1.0),
                    ..base.initial_bp
                },
                ..base
            },
        ),
        (
            "min-weight trial selection",
            BpSfConfig {
                selection: TrialSelection::MinWeight,
                ..base
            },
        ),
        (
            "ranking: flip count only",
            BpSfConfig {
                ranking: CandidateRanking::FlipCountOnly,
                ..base
            },
        ),
        (
            "ranking: |LLR| only (no oscillations)",
            BpSfConfig {
                ranking: CandidateRanking::LlrOnly,
                ..base
            },
        ),
        (
            "no candidate padding",
            BpSfConfig {
                pad_candidates: false,
                ..base
            },
        ),
        (
            "wider flips (w_max = 2)",
            BpSfConfig {
                max_flip_weight: 2,
                ..base
            },
        ),
        (
            "sum-product inner BP (§VII)",
            BpSfConfig {
                initial_bp: qldpc_bp::BpConfig {
                    algorithm: qldpc_bp::BpAlgorithm::SumProduct,
                    ..base.initial_bp
                },
                ..base
            },
        ),
        (
            "posterior memory γ=0.3 (Mem-BP)",
            BpSfConfig {
                initial_bp: qldpc_bp::BpConfig {
                    memory_strength: 0.3,
                    ..base.initial_bp
                },
                ..base
            },
        ),
    ];

    println!(
        "\n{:<42} {:>10} {:>10} {:>12} {:>10}",
        "variant", "LER", "unsolved", "avg iters", "avg ms"
    );
    for (name, cfg) in variants {
        let r = run_code_capacity(&code, &config, &decoders::bp_sf(cfg));
        let iters = r.serial_iteration_stats();
        let wall = r.wall_stats_ms();
        println!(
            "{:<42} {:>10.3e} {:>10} {:>12.1} {:>10.3}",
            name,
            r.ler(),
            r.unsolved,
            iters.mean,
            wall.mean
        );
    }
    println!(
        "\nreading: the paper's defaults should sit at (or within noise of) the\n\
         lowest LER; dropping the oscillation signal (|LLR| only) or the\n\
         damping schedule should visibly hurt."
    );
}
