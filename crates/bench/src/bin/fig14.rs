//! Figure 14: average decoding time per syndrome vs physical error rate
//! on the `[[144,12,12]]` code.
//!
//! Paper setup: p ∈ {0.001, 0.002, 0.003}; decoders BP1000-OSD10,
//! BP-SF serial, BP-SF (CPU, P=8), BP100 (lower bound, no
//! post-processing), plus the GPU estimates. This host exposes two cores,
//! so the parallel pool runs P=2 (pass `--full` for a P=4 row anyway);
//! the GPU rows are produced by the documented hardware latency model.

use bpsf_core::BpSfConfig;
use qldpc_bench::{banner, build_dem, paper_reference, BenchArgs};
use qldpc_sim::{decoders, run_circuit_level, CircuitLevelConfig, HardwareLatencyModel};

fn main() {
    let args = BenchArgs::parse(300);
    banner(
        "Figure 14",
        "average decoding time per syndrome vs p, BB `[[144,12,12]]`",
        &args,
    );
    let code = qldpc_codes::bb::gross_code();
    let rounds = args.rounds.unwrap_or(12);
    let sf_config = BpSfConfig::circuit_level(100, 50, 10, 10);
    let config = CircuitLevelConfig {
        shots: args.shots,
        seed: args.seed,
    };
    let gpu = HardwareLatencyModel::gpu_estimate();

    println!(
        "\n{:>9} {:<26} {:>10} {:>10} {:>12}",
        "p", "decoder", "avg ms", "max ms", "LER/round"
    );
    for &p in &[1e-3, 2e-3, 3e-3] {
        let dem = build_dem(&code, rounds, p);
        let mut rows: Vec<(String, qldpc_sim::RunReport)> = Vec::new();
        rows.push((
            "BP1000-OSD10".into(),
            run_circuit_level(&dem, "gross", &config, &decoders::bp_osd(1000, 10)),
        ));
        rows.push((
            "BP-SF (serial)".into(),
            run_circuit_level(&dem, "gross", &config, &decoders::bp_sf(sf_config)),
        ));
        rows.push((
            "BP-SF (CPU, P=2)".into(),
            run_circuit_level(
                &dem,
                "gross",
                &config,
                &decoders::parallel_bp_sf(sf_config, 2),
            ),
        ));
        if args.full {
            rows.push((
                "BP-SF (CPU, P=4)".into(),
                run_circuit_level(
                    &dem,
                    "gross",
                    &config,
                    &decoders::parallel_bp_sf(sf_config, 4),
                ),
            ));
        }
        rows.push((
            "BP100 (lower bound)".into(),
            run_circuit_level(&dem, "gross", &config, &decoders::plain_bp(100)),
        ));
        for (name, r) in &rows {
            let wall = r.wall_stats_ms();
            println!(
                "{:>9.1e} {:<26} {:>10.3} {:>10.3} {:>12.3e}",
                p,
                name,
                wall.mean,
                wall.max,
                r.ler_per_round(rounds)
            );
        }
        // GPU estimate from the BP-SF iteration records.
        let sf_report = &rows[1].1;
        let gpu_stats = gpu.run_stats_ms(sf_report);
        println!(
            "{:>9.1e} {:<26} {:>10.3} {:>10.3} {:>12}",
            p, "BP-SF (GPU_Est model)", gpu_stats.mean, gpu_stats.max, "-"
        );
    }
    paper_reference(&[
        "paper (16-core Xeon + V100): at p=0.003 BP1000-OSD10 ≈ 38.6 ms avg;",
        "BP-SF serial ≈ 24 ms; P=8 ≈ 15.7 ms (1.8× over serial); BP100 ≈ 13 ms;",
        "GPU rows ≈ 5.5–7.4 ms",
        "shape to verify: BP-OSD grows fastest with p; BP-SF < BP-OSD at",
        "p ≥ 0.002; the parallel pool approaches the BP100 lower bound",
    ]);
}
