//! Figure 11: circuit-level error rates of the `[[225,16,8]]` SHYPS code
//! (subsystem hypergraph product of the `[15,4,8]` simplex code).
//!
//! Paper setup: BP-SF with BP100, w = 5, |Φ| = 50, ns = 5 — *fewer*
//! parallel trials than the other codes — achieves nearly identical LER
//! to BP1000-OSD10.

use bpsf_core::BpSfConfig;
use qldpc_bench::{banner, circuit_sweep, paper_reference, BenchArgs};
use qldpc_sim::decoders;

fn main() {
    let args = BenchArgs::parse(150);
    banner(
        "Figure 11",
        "SHYPS `[[225,16,8]]` under the circuit-level noise model (subsystem code)",
        &args,
    );
    let code = qldpc_codes::shp::shyps225();
    let rounds = args.rounds.unwrap_or(8);
    let ps: &[f64] = if args.full {
        &[5e-4, 1e-3, 2e-3, 3e-3]
    } else {
        &[1e-3, 2e-3]
    };
    let factories = vec![
        decoders::bp_sf(BpSfConfig::circuit_level(100, 50, 5, 5)),
        decoders::bp_osd(1000, 10),
        decoders::plain_bp(1000),
    ];
    circuit_sweep(&code, rounds, ps, args.shots, args.seed, &factories);
    paper_reference(&[
        "BP-SF (BP100, w=5, |Φ|=50, ns=5) ≈ BP1000-OSD10 across the sweep",
        "plain BP1000 trails both by roughly an order of magnitude",
        "note: detectors here are gauge-product stabilizer combinations —",
        "the subsystem decoding path of the substrate (see DESIGN.md)",
    ]);
}
