//! Figure 7: circuit-level error rates of the `[[144,12,12]]` gross code.
//!
//! Paper setup: d = 12 rounds; BP-SF with BP100, (w=6, ns=5) and
//! (w=10, ns=10), |Φ| = 50, vs BP1000-OSD10, BP1000 and BP10000.

use bpsf_core::BpSfConfig;
use qldpc_bench::{banner, circuit_sweep, paper_reference, BenchArgs};
use qldpc_sim::decoders;

fn main() {
    let args = BenchArgs::parse(200);
    banner(
        "Figure 7",
        "BB `[[144,12,12]]` under the circuit-level noise model",
        &args,
    );
    let code = qldpc_codes::bb::gross_code();
    let rounds = args.rounds.unwrap_or(12);
    let ps: &[f64] = if args.full {
        &[1e-3, 2e-3, 3e-3, 5e-3, 8e-3]
    } else {
        &[3e-3, 6e-3]
    };
    let mut factories = vec![
        decoders::bp_sf(BpSfConfig::circuit_level(100, 50, 6, 5)),
        decoders::bp_sf(BpSfConfig::circuit_level(100, 50, 10, 10)),
        decoders::bp_osd(1000, 10),
        decoders::plain_bp(1000),
    ];
    if args.full {
        factories.push(decoders::plain_bp(10000));
    }
    circuit_sweep(&code, rounds, ps, args.shots, args.seed, &factories);
    paper_reference(&[
        "BP-SF (w=10, ns=10) sits slightly above but close to BP1000-OSD10",
        "  (e.g. ~2–3e-4 vs 2.1e-4 LER/round at p = 3e-3)",
        "BP-SF (w=6, ns=5) is marginally worse than (w=10, ns=10)",
        "plain BP1000 is ~an order of magnitude worse; BP10000 barely helps",
        "shape to verify: BP1000-OSD10 ≤ BP-SF(w10) ≤ BP-SF(w6) ≪ BP1000",
    ]);
}
