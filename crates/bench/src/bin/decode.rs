//! Generic decoding CLI: pick a code, noise model, decoder and shot
//! budget; get a LER + latency report. The Swiss-army knife for
//! exploring the stack beyond the fixed paper figures.
//!
//! ```text
//! cargo run --release -p qldpc-bench --bin decode -- \
//!     --code gross --model circuit --p 3e-3 --rounds 12 \
//!     --decoder bpsf --shots 500 --threads 2
//! ```
//!
//! Codes: `bb72`, `gross`, `bb288`, `coprime126`, `coprime154`, `gb254`,
//! `shyps225`. Models: `capacity`, `circuit`. Decoders: `bp`, `layered-bp`,
//! `bposd`, `bpsf`, `bpsf-parallel`. The plain-BP decoders also take
//! `--precision f32` for the half-width message fast path.

use bpsf_core::BpSfConfig;
use qldpc_bench::build_dem;
use qldpc_codes::CssCode;
use qldpc_sim::{
    decoders, decoders::Precision, run_circuit_level_parallel, run_code_capacity_parallel,
    CircuitLevelConfig, CodeCapacityConfig, DecoderFactory,
};

struct Cli {
    code: String,
    model: String,
    decoder: String,
    precision: Precision,
    p: f64,
    rounds: Option<usize>,
    shots: usize,
    threads: usize,
    seed: u64,
    bp_iters: usize,
    osd_order: usize,
    candidates: usize,
    w_max: usize,
    n_s: usize,
}

impl Cli {
    fn parse() -> Self {
        let mut cli = Self {
            code: "gross".into(),
            model: "capacity".into(),
            decoder: "bpsf".into(),
            precision: Precision::F64,
            p: 0.01,
            rounds: None,
            shots: 500,
            threads: 1,
            seed: 2026,
            bp_iters: 100,
            osd_order: 10,
            candidates: 50,
            w_max: 6,
            n_s: 5,
        };
        let mut it = std::env::args().skip(1);
        while let Some(a) = it.next() {
            let mut val = || it.next().unwrap_or_else(|| panic!("{a} needs a value"));
            match a.as_str() {
                "--code" => cli.code = val(),
                "--model" => cli.model = val(),
                "--decoder" => cli.decoder = val(),
                "--precision" => {
                    cli.precision = match val().as_str() {
                        "f64" => Precision::F64,
                        "f32" => Precision::F32,
                        other => panic!("unknown precision {other:?} (f64|f32)"),
                    }
                }
                "--p" => cli.p = val().parse().expect("bad --p"),
                "--rounds" => cli.rounds = Some(val().parse().expect("bad --rounds")),
                "--shots" => cli.shots = val().parse().expect("bad --shots"),
                "--threads" => cli.threads = val().parse().expect("bad --threads"),
                "--seed" => cli.seed = val().parse().expect("bad --seed"),
                "--bp-iters" => cli.bp_iters = val().parse().expect("bad --bp-iters"),
                "--osd-order" => cli.osd_order = val().parse().expect("bad --osd-order"),
                "--candidates" => cli.candidates = val().parse().expect("bad --candidates"),
                "--w-max" => cli.w_max = val().parse().expect("bad --w-max"),
                "--ns" => cli.n_s = val().parse().expect("bad --ns"),
                "--help" | "-h" => {
                    println!(
                        "usage: decode [--code NAME] [--model capacity|circuit] \
                         [--decoder bp|layered-bp|bposd|bpsf|bpsf-parallel] \
                         [--precision f64|f32 (bp/layered-bp only)] [--p F] \
                         [--rounds N] [--shots N] [--threads N] [--seed N] \
                         [--bp-iters N] [--osd-order N] [--candidates N] [--w-max N] [--ns N]"
                    );
                    std::process::exit(0);
                }
                other => panic!("unknown argument {other:?} (try --help)"),
            }
        }
        cli
    }

    fn resolve_code(&self) -> CssCode {
        match self.code.as_str() {
            "bb72" => qldpc_codes::bb::bb72(),
            "gross" | "bb144" => qldpc_codes::bb::gross_code(),
            "bb288" => qldpc_codes::bb::bb288(),
            "coprime126" => qldpc_codes::coprime_bb::coprime126(),
            "coprime154" => qldpc_codes::coprime_bb::coprime154(),
            "gb254" => qldpc_codes::gb::gb254(),
            "shyps225" => qldpc_codes::shp::shyps225(),
            other => panic!("unknown code {other:?}"),
        }
    }

    fn resolve_decoder(&self) -> DecoderFactory {
        // Only plain BP has a reduced-precision implementation; reject
        // the flag elsewhere rather than silently decoding at f64.
        if self.precision != Precision::F64 && !matches!(self.decoder.as_str(), "bp" | "layered-bp")
        {
            panic!("--precision f32 is only supported by bp/layered-bp");
        }
        match self.decoder.as_str() {
            "bp" => decoders::plain_bp_at(self.bp_iters, self.precision),
            "layered-bp" => decoders::layered_bp_at(self.bp_iters, self.precision),
            "bposd" => decoders::bp_osd(self.bp_iters, self.osd_order),
            "bpsf" => {
                let config = if self.model == "capacity" {
                    BpSfConfig::code_capacity(self.bp_iters, self.candidates, self.w_max)
                } else {
                    BpSfConfig::circuit_level(self.bp_iters, self.candidates, self.w_max, self.n_s)
                };
                decoders::bp_sf(config)
            }
            "bpsf-parallel" => {
                let config =
                    BpSfConfig::circuit_level(self.bp_iters, self.candidates, self.w_max, self.n_s);
                decoders::parallel_bp_sf(config, self.threads.max(2))
            }
            other => panic!("unknown decoder {other:?}"),
        }
    }
}

fn main() {
    let cli = Cli::parse();
    let code = cli.resolve_code();
    let factory = cli.resolve_decoder();
    println!(
        "decoding {} under the {} model at p = {} ({} shots, {} thread(s))",
        code, cli.model, cli.p, cli.shots, cli.threads
    );

    let report = match cli.model.as_str() {
        "capacity" => run_code_capacity_parallel(
            &code,
            &CodeCapacityConfig {
                p: cli.p,
                shots: cli.shots,
                seed: cli.seed,
            },
            &factory,
            cli.threads,
        ),
        "circuit" => {
            let rounds = cli.rounds.unwrap_or_else(|| code.d().unwrap_or(4));
            let dem = build_dem(&code, rounds, cli.p);
            println!(
                "DEM: {} detectors × {} mechanisms ({} rounds)",
                dem.num_detectors(),
                dem.num_mechanisms(),
                rounds
            );
            let mut r = run_circuit_level_parallel(
                &dem,
                &format!("{} r={rounds} p={}", code.name(), cli.p),
                &CircuitLevelConfig {
                    shots: cli.shots,
                    seed: cli.seed,
                },
                &factory,
                cli.threads,
            );
            println!("LER/round = {:.3e}", r.ler_per_round(rounds));
            r.workload.push_str(" (circuit)");
            r
        }
        other => panic!("unknown model {other:?}"),
    };

    println!("{report}");
    let iters = report.serial_iteration_stats();
    println!("serial BP iterations: {}", iters.summary());
    println!("wall clock [ms]:      {}", report.wall_stats_ms().summary());
}
