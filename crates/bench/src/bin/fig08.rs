//! Figure 8: circuit-level error rates of the `[[288,12,18]]` BB code with
//! the layered BP schedule.
//!
//! Paper setup: all decoders use layered BP (regular flooding BP performs
//! much worse on this code — symmetric trapping sets); BP-SF uses BP100,
//! w=10, |Φ|=50, ns=10. The `--full` run adds the flooding BP-SF variant
//! shown dashed in the paper.

use bpsf_core::BpSfConfig;
use qldpc_bench::{banner, circuit_sweep, paper_reference, BenchArgs};
use qldpc_sim::decoders;

fn main() {
    let args = BenchArgs::parse(120);
    banner(
        "Figure 8",
        "BB `[[288,12,18]]` under circuit-level noise (layered BP)",
        &args,
    );
    let code = qldpc_codes::bb::bb288();
    let rounds = args.rounds.unwrap_or(18);
    let ps: &[f64] = if args.full {
        &[1e-3, 2e-3, 3e-3, 4e-3]
    } else {
        &[3e-3]
    };
    let mut factories = vec![
        decoders::layered_bp_osd(1000, 10),
        decoders::layered_bp_sf(BpSfConfig::circuit_level(100, 50, 10, 10)),
        decoders::layered_bp(1000),
    ];
    if args.full {
        // The dashed flooding curve from the paper.
        factories.push(decoders::bp_sf(BpSfConfig::circuit_level(100, 50, 10, 10)));
    }
    circuit_sweep(&code, rounds, ps, args.shots, args.seed, &factories);
    paper_reference(&[
        "layered BP1000-OSD10 is best (LER/round ≈ 1e-5 at p = 2e-3)",
        "layered BP-SF is slightly above it; layered BP1000 ~10× worse",
        "flooding BP-SF (dashed) is clearly worse than any layered decoder —",
        "scheduling sensitivity attributed to symmetric trapping sets",
    ]);
}
