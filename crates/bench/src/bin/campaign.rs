//! The campaign CLI: declarative LER sweeps with adaptive shot
//! allocation and generated reproduction reports.
//!
//! ```text
//! campaign run    --spec <file> [--out <dir>] [--shard i/m] [--quiet]
//! campaign plan   --spec <file>
//! campaign report --out <REPRO.md> [--tsv <file>] <results.jsonl>…
//! ```
//!
//! `run` executes the spec (resuming from an existing log in `--out`,
//! default `campaigns/<name>/`), appending to `results.jsonl` and — for
//! unsharded runs — regenerating `REPRO.md` and `results.tsv`. `plan`
//! prints the expanded cell grid without decoding. `report` merges one
//! or more logs (e.g. from sharded runs) into a single report.
//!
//! The spec schema is documented in `EXPERIMENTS.md` ("Campaigns") and
//! `specs/smoke.campaign` is a runnable example.

use qldpc_campaign::{read_cell_rows, render_markdown, render_tsv, CampaignSpec, RunOptions};
use std::path::PathBuf;
use std::process::ExitCode;

const USAGE: &str = "\
usage:
  campaign run    --spec <file> [--out <dir>] [--shard i/m] [--quiet] [--service <addr>]
  campaign plan   --spec <file>
  campaign report --out <REPRO.md> [--tsv <file>] <results.jsonl>...

run     execute (or resume) a campaign; writes JSONL + REPRO.md + results.tsv
plan    print the expanded cell grid of a spec without decoding
report  regenerate reports from one or more JSONL logs (merges shards)

--service <addr> decodes through a running `qldpc-serve` instead of
in-process decoders: TCP host:port, or a UDS path when it contains '/'.
Serve the same spec (`qldpc-serve --spec <file>`) so every cell id is
registered; deterministic families (BP, BP-OSD) produce byte-identical
rows either way, BP-SF cells are refused.";

fn fail(message: impl std::fmt::Display) -> ExitCode {
    eprintln!("campaign: {message}");
    ExitCode::FAILURE
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("run") => run(&args[1..]),
        Some("plan") => plan(&args[1..]),
        Some("report") => report(&args[1..]),
        Some("--help" | "-h" | "help") | None => {
            println!("{USAGE}");
            ExitCode::SUCCESS
        }
        Some(other) => fail(format!("unknown subcommand '{other}'\n{USAGE}")),
    }
}

/// Pulls the value following `flag` out of `args`, if present.
fn take_value(args: &mut Vec<String>, flag: &str) -> Result<Option<String>, String> {
    let Some(pos) = args.iter().position(|a| a == flag) else {
        return Ok(None);
    };
    if pos + 1 >= args.len() {
        return Err(format!("{flag} needs a value"));
    }
    let value = args.remove(pos + 1);
    args.remove(pos);
    Ok(Some(value))
}

fn take_flag(args: &mut Vec<String>, flag: &str) -> bool {
    let Some(pos) = args.iter().position(|a| a == flag) else {
        return false;
    };
    args.remove(pos);
    true
}

fn load_spec(args: &mut Vec<String>) -> Result<CampaignSpec, String> {
    let path = take_value(args, "--spec")?.ok_or("--spec <file> is required")?;
    CampaignSpec::from_file(&PathBuf::from(path)).map_err(|e| e.to_string())
}

fn parse_shard(text: &str) -> Result<(usize, usize), String> {
    let err = || format!("--shard must look like i/m (e.g. 0/4), got '{text}'");
    let (i, m) = text.split_once('/').ok_or_else(err)?;
    let (i, m): (usize, usize) = (i.parse().map_err(|_| err())?, m.parse().map_err(|_| err())?);
    if m == 0 || i >= m {
        return Err(format!("--shard {text}: need i < m and m > 0"));
    }
    Ok((i, m))
}

fn run(args: &[String]) -> ExitCode {
    let mut args = args.to_vec();
    let spec = match load_spec(&mut args) {
        Ok(s) => s,
        Err(e) => return fail(e),
    };
    let quiet = take_flag(&mut args, "--quiet");
    let shard = match take_value(&mut args, "--shard") {
        Ok(v) => match v.map(|s| parse_shard(&s)).transpose() {
            Ok(s) => s,
            Err(e) => return fail(e),
        },
        Err(e) => return fail(e),
    };
    let out_dir = match take_value(&mut args, "--out") {
        Ok(v) => v.map_or_else(
            || PathBuf::from("campaigns").join(&spec.name),
            PathBuf::from,
        ),
        Err(e) => return fail(e),
    };
    let service = match take_value(&mut args, "--service") {
        Ok(v) => v,
        Err(e) => return fail(e),
    };
    if !args.is_empty() {
        return fail(format!("unexpected arguments: {args:?}\n{USAGE}"));
    }
    match qldpc_campaign::run_campaign(
        &spec,
        &RunOptions {
            out_dir,
            shard,
            quiet,
            service,
        },
    ) {
        Ok(outcome) => {
            println!(
                "campaign '{}': {} cell(s) ({} run, {} resumed-complete) -> {}",
                spec.name,
                outcome.cells_total,
                outcome.cells_run,
                outcome.cells_skipped,
                outcome.results_path.display()
            );
            if let Some(report) = &outcome.report_path {
                println!("report: {}", report.display());
            } else {
                println!("sharded run: merge shards with `campaign report` when all are done");
            }
            ExitCode::SUCCESS
        }
        Err(e) => fail(e),
    }
}

fn plan(args: &[String]) -> ExitCode {
    let mut args = args.to_vec();
    let spec = match load_spec(&mut args) {
        Ok(s) => s,
        Err(e) => return fail(e),
    };
    if !args.is_empty() {
        return fail(format!("unexpected arguments: {args:?}\n{USAGE}"));
    }
    let cells = match spec.cells() {
        Ok(c) => c,
        Err(e) => return fail(e),
    };
    println!(
        "campaign '{}' (spec fingerprint {})",
        spec.name,
        spec.fingerprint()
    );
    println!(
        "stopping: half-width <= {} at {}% confidence, or {} shots (chunks of {})",
        spec.target_half_width,
        qldpc_campaign::report::fmt_pct(spec.confidence),
        spec.max_shots,
        spec.chunk_shots
    );
    println!("{} cell(s):", cells.len());
    for cell in &cells {
        println!("  [{:>4}] {}", cell.index, cell.id());
    }
    ExitCode::SUCCESS
}

fn report(args: &[String]) -> ExitCode {
    let mut args = args.to_vec();
    let out = match take_value(&mut args, "--out") {
        Ok(Some(o)) => PathBuf::from(o),
        Ok(None) => return fail("--out <REPRO.md> is required"),
        Err(e) => return fail(e),
    };
    let tsv = match take_value(&mut args, "--tsv") {
        Ok(v) => v.map(PathBuf::from),
        Err(e) => return fail(e),
    };
    if args.is_empty() {
        return fail(format!("need at least one results.jsonl\n{USAGE}"));
    }
    let rows = match read_cell_rows(&args) {
        Ok(r) => r,
        Err(e) => return fail(e),
    };
    if let Err(e) = qldpc_campaign::report::check_consistency(&rows) {
        return fail(e);
    }
    if let Err(e) = std::fs::write(&out, render_markdown(&rows)) {
        return fail(format!("writing {}: {e}", out.display()));
    }
    println!("wrote {} ({} cell rows)", out.display(), rows.len());
    if let Some(tsv) = tsv {
        if let Err(e) = std::fs::write(&tsv, render_tsv(&rows)) {
            return fail(format!("writing {}: {e}", tsv.display()));
        }
        println!("wrote {}", tsv.display());
    }
    ExitCode::SUCCESS
}
