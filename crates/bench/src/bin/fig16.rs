//! Figure 16 and the §VI hardware discussion: estimated GPU decode-time
//! distributions, and the FPGA/ASIC real-time projection.
//!
//! The paper's "GPU_Est" is itself a model (CUDA-Q cannot track
//! oscillations): precomputed trials replayed one-by-one on the GPU. We
//! reproduce it by replaying our measured iteration records through a
//! per-iteration latency model with serial trials (GPU_Est), batched
//! trials (the paper's proposed improvement) and the 20 ns FPGA profile.

use bpsf_core::BpSfConfig;
use qldpc_bench::{banner, build_dem, paper_reference, BenchArgs};
use qldpc_sim::{decoders, run_circuit_level, CircuitLevelConfig, HardwareLatencyModel};

fn main() {
    let args = BenchArgs::parse(300);
    banner(
        "Figure 16 / §VI",
        "GPU-estimated decode-time distributions and FPGA projection, BB `[[144,12,12]]`, p = 3e-3",
        &args,
    );
    let code = qldpc_codes::bb::gross_code();
    let rounds = args.rounds.unwrap_or(12);
    let dem = build_dem(&code, rounds, 3e-3);
    let config = CircuitLevelConfig {
        shots: args.shots,
        seed: args.seed,
    };

    let sf = run_circuit_level(
        &dem,
        "gross",
        &config,
        &decoders::bp_sf(BpSfConfig::circuit_level(100, 50, 10, 10)),
    );
    let osd = run_circuit_level(&dem, "gross", &config, &decoders::bp_osd(1000, 10));

    let gpu_serial = HardwareLatencyModel::gpu_estimate();
    let gpu_batched = HardwareLatencyModel::gpu_batched();
    let fpga = HardwareLatencyModel::fpga();

    println!(
        "\n{:<34} {:>10} {:>10} {:>10}",
        "model", "avg ms", "median ms", "max ms"
    );
    for (name, report, model) in [
        ("BP-SF (GPU_Est, serial trials)", &sf, gpu_serial),
        ("BP-SF (GPU batched trials)", &sf, gpu_batched),
        ("BP1000-OSD10 (GPU, BP stage)", &osd, gpu_serial),
    ] {
        let stats = model.run_stats_ms(report);
        println!(
            "{:<34} {:>10.3} {:>10.3} {:>10.3}",
            name, stats.mean, stats.median, stats.max
        );
    }

    // FPGA projection on the BP-SF critical path (fully parallel trials).
    let fpga_stats = fpga.run_stats_ms(&sf);
    let worst_critical = sf
        .records
        .iter()
        .map(|r| r.critical_iterations)
        .max()
        .unwrap_or(0);
    println!("\nFPGA/ASIC projection @ 20 ns per BP iteration (fully parallel trials):");
    println!(
        "  avg {:.3} µs, worst case {} iterations → {:.3} µs",
        fpga_stats.mean * 1e3,
        worst_critical,
        fpga.time_us(worst_critical)
    );
    println!("  (paper bound: 200 iterations → 4 µs, fast enough for real-time decoding)");

    paper_reference(&[
        "BP-SF (GPU_Est): avg 5.47 ms but max 73.74 ms (serial trial replay)",
        "BP1000-OSD10 (GPU): avg 7.37 ms, max 39.76 ms",
        "shape to verify: serial-trial BP-SF wins on average but loses on the",
        "tail; batching the trials (our 'GPU batched' row) removes that tail",
    ]);
}
