//! Figure 12: complexity growth on the `[[144,12,12]]` code — serial BP
//! iterations (average and worst case) versus the achieved logical error
//! rate per round, at p = 3e-3.
//!
//! Paper setup: plain BP sweeps its iteration cap; BP-SF fixes BP100 and
//! |Φ| = 50, sweeps ns with w_max ∈ {1, 5, 10}. Every BP-SF curve
//! "postpones the cliff": it reaches lower LER at fewer serial iterations.

use bpsf_core::BpSfConfig;
use qldpc_bench::{banner, build_dem, paper_reference, BenchArgs};
use qldpc_sim::{decoders, run_circuit_level, CircuitLevelConfig};

fn main() {
    let args = BenchArgs::parse(300);
    banner(
        "Figure 12",
        "complexity growth (serial BP iterations vs LER/round), BB `[[144,12,12]]`, p = 3e-3",
        &args,
    );
    let code = qldpc_codes::bb::gross_code();
    let rounds = args.rounds.unwrap_or(12);
    let dem = build_dem(&code, rounds, 3e-3);
    println!(
        "DEM: {} detectors × {} mechanisms",
        dem.num_detectors(),
        dem.num_mechanisms()
    );
    let config = CircuitLevelConfig {
        shots: args.shots,
        seed: args.seed,
    };

    println!(
        "\n{:<34} {:>12} {:>12} {:>12}",
        "decoder", "LER/round", "avg iters", "worst iters"
    );
    let bp_caps: &[usize] = if args.full {
        &[10, 30, 100, 300, 1000, 3000]
    } else {
        &[10, 50, 200, 1000]
    };
    for &cap in bp_caps {
        let r = run_circuit_level(&dem, "gross", &config, &decoders::plain_bp(cap));
        let it = r.serial_iteration_stats();
        println!(
            "{:<34} {:>12.3e} {:>12.1} {:>12.0}",
            r.decoder,
            r.ler_per_round(rounds),
            it.mean,
            it.max
        );
    }
    let sweeps: &[(usize, usize)] = if args.full {
        &[
            (1, 1),
            (1, 5),
            (1, 10),
            (5, 1),
            (5, 5),
            (5, 10),
            (10, 1),
            (10, 5),
            (10, 10),
        ]
    } else {
        &[(1, 5), (5, 5), (10, 10)]
    };
    for &(w, ns) in sweeps {
        let r = run_circuit_level(
            &dem,
            "gross",
            &config,
            &decoders::bp_sf(BpSfConfig::circuit_level(100, 50, w, ns)),
        );
        let it = r.serial_iteration_stats();
        println!(
            "{:<34} {:>12.3e} {:>12.1} {:>12.0}",
            r.decoder,
            r.ler_per_round(rounds),
            it.mean,
            it.max
        );
    }
    paper_reference(&[
        "plain BP: LER/round stalls near 2e-3 regardless of iteration cap —",
        "  its curve 'cliffs' early (more iterations stop helping)",
        "BP-SF: average iterations stay low (initial BP usually converges);",
        "  larger w_max extends the linear region and postpones the cliff,",
        "  trading worst-case serial iterations for lower LER",
    ]);
}
