//! Figure 9: circuit-level error rates of the `[[154,6,16]]` coprime-BB
//! code.
//!
//! Paper setup: d = 16 rounds; BP-SF with BP100, |Φ| = 50, (w=6, ns=10)
//! and (w=10, ns=10), vs BP1000-OSD10, BP1000 and BP10000.

use bpsf_core::BpSfConfig;
use qldpc_bench::{banner, circuit_sweep, paper_reference, BenchArgs};
use qldpc_sim::decoders;

fn main() {
    let args = BenchArgs::parse(150);
    banner(
        "Figure 9",
        "Coprime-BB `[[154,6,16]]` under the circuit-level noise model",
        &args,
    );
    let code = qldpc_codes::coprime_bb::coprime154();
    let rounds = args.rounds.unwrap_or(16);
    let ps: &[f64] = if args.full {
        &[1e-3, 2e-3, 3e-3, 5e-3, 8e-3]
    } else {
        &[3e-3, 6e-3]
    };
    let mut factories = vec![
        decoders::bp_sf(BpSfConfig::circuit_level(100, 50, 6, 10)),
        decoders::bp_sf(BpSfConfig::circuit_level(100, 50, 10, 10)),
        decoders::bp_osd(1000, 10),
        decoders::plain_bp(1000),
    ];
    if args.full {
        factories.push(decoders::plain_bp(10000));
    }
    circuit_sweep(&code, rounds, ps, args.shots, args.seed, &factories);
    paper_reference(&[
        "at low p BP-SF is slightly above but comparable to BP1000-OSD10",
        "at high p BP-SF trails BP-OSD yet stays consistently below plain BP",
        "shape to verify: OSD ≤ BP-SF(w10) ≤ BP-SF(w6) < BP1000 ≈ BP10000",
    ]);
}
