//! Figure 2: ratio of unsuccessful BP decoding (1 − convergence rate) on
//! the `[[144,12,12]]` code under circuit-level noise.
//!
//! Paper setup: max 1000 iterations, 10,000 samples, p ∈ {0.001, 0.002};
//! reported average iterations 8.9 (p=0.001) and 28.0 (p=0.002), with a
//! long tail that makes extra iterations past ~100 useless.

use qldpc_bench::{banner, build_dem, paper_reference, BenchArgs};
use qldpc_bp::{BpConfig, MinSumDecoder};
use qldpc_circuit::DemSampler;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let args = BenchArgs::parse(2000);
    banner(
        "Figure 2",
        "BP non-convergence rate vs iterations, BB `[[144,12,12]]`, circuit-level",
        &args,
    );
    let code = qldpc_codes::bb::gross_code();
    let rounds = args.rounds.unwrap_or(12);
    let max_iters = if args.full { 1000 } else { 300 };
    let milestones = [1usize, 2, 5, 10, 20, 50, 100, 200, 300, 500, 1000];

    for &p in &[1e-3, 2e-3] {
        let dem = build_dem(&code, rounds, p);
        let mut bp = MinSumDecoder::new(
            dem.check_matrix(),
            dem.priors(),
            BpConfig {
                max_iters,
                ..BpConfig::default()
            },
        );
        let sampler = DemSampler::new(&dem);
        let mut rng = StdRng::seed_from_u64(args.seed);
        let mut iteration_counts = Vec::with_capacity(args.shots);
        let mut non_converged = 0usize;
        for _ in 0..args.shots {
            let shot = sampler.sample(&mut rng);
            let r = bp.decode(&shot.syndrome);
            if r.converged {
                iteration_counts.push(r.iterations);
            } else {
                non_converged += 1;
                iteration_counts.push(max_iters + 1);
            }
        }
        let avg: f64 = iteration_counts
            .iter()
            .map(|&i| i.min(max_iters) as f64)
            .sum::<f64>()
            / args.shots as f64;
        println!(
            "\np = {p}: avg iterations = {avg:.1}, never converged within {max_iters}: {non_converged}/{}",
            args.shots
        );
        println!("{:>10} {:>22}", "iteration", "1 - convergence rate");
        for &m in milestones.iter().filter(|&&m| m <= max_iters) {
            let not_done = iteration_counts.iter().filter(|&&i| i > m).count();
            println!("{:>10} {:>22.4e}", m, not_done as f64 / args.shots as f64);
        }
    }
    paper_reference(&[
        "p=0.001: avg iterations = 8.9; tail reaches ~1e-3 by iteration 1000",
        "p=0.002: avg iterations = 28.0; tail reaches ~1e-2 by iteration 1000",
        "shape: steep early convergence, long flat tail (cases that never benefit",
        "from more iterations) — the motivation for varying the decoder inputs",
    ]);
}
