//! Table I: logical error rate per round and average decoding time for
//! BP-OSD with different BP iteration caps, on the `[[144,12,12]]` code at
//! p = 3e-3 under circuit-level noise.
//!
//! The paper's point: *reducing* BP iterations can *increase* total
//! latency, because a weaker BP stage invokes the costly OSD stage more
//! often. The sweet spot sits near BP1000.

use qldpc_bench::{banner, build_dem, paper_reference, BenchArgs};
use qldpc_sim::{decoders, run_circuit_level, CircuitLevelConfig};

fn main() {
    let args = BenchArgs::parse(300);
    banner(
        "Table I",
        "BP-OSD iteration trade-off, BB `[[144,12,12]]`, p = 3e-3",
        &args,
    );
    let code = qldpc_codes::bb::gross_code();
    let rounds = args.rounds.unwrap_or(12);
    let dem = build_dem(&code, rounds, 3e-3);
    let config = CircuitLevelConfig {
        shots: args.shots,
        seed: args.seed,
    };

    let caps: &[usize] = if args.full {
        &[100, 400, 1000, 2000, 10000]
    } else {
        &[100, 400, 1000, 2000]
    };
    println!(
        "\n{:<18} {:>12} {:>12} {:>14}",
        "decoder", "LER/round", "avg ms", "OSD invoked %"
    );
    for &cap in caps {
        let r = run_circuit_level(&dem, "gross", &config, &decoders::bp_osd(cap, 10));
        let wall = r.wall_stats_ms();
        println!(
            "{:<18} {:>12.3e} {:>12.2} {:>14.1}",
            r.decoder,
            r.ler_per_round(rounds),
            wall.mean,
            100.0 * r.postprocessing_rate()
        );
    }
    paper_reference(&[
        "BP100-OSD10:   LER/d 2.89e-4, 56.13 ms",
        "BP400-OSD10:   LER/d 2.23e-4, 37.69 ms",
        "BP1000-OSD10:  LER/d 2.11e-4, 36.44 ms   ← fastest",
        "BP2000-OSD10:  LER/d 2.00e-4, 44.01 ms",
        "BP10000-OSD10: LER/d 1.84e-4, 94.94 ms",
        "shape to verify: avg time is U-shaped in the BP cap; LER/round",
        "decreases monotonically with more BP iterations",
    ]);
}
