//! `serve` — stand up a networked decode service.
//!
//! ```text
//! serve [--tcp <host:port>] [--uds <path>] [--spec <file>]
//!       [--node <name>] [--max-inflight N] [--shards N]
//! ```
//!
//! Registers codes, binds a front-end, prints `LISTENING <addr>` on
//! stdout, and serves until **stdin reaches EOF** (the orchestration
//! convention: the parent closes the pipe to ask for a clean drain —
//! works identically under test harnesses, CI, and shells). On EOF the
//! front-end closes its connections, the service drains every accepted
//! request, and a final `DRAINED <submitted> <completed>` line reports
//! the accounting.
//!
//! With `--spec`, every cell of the campaign spec is registered under
//! its cell id (e.g. `gross|cc|p=0.02|bp:40@f64`) with the exact check
//! matrix, priors and decoder the in-process engine would use — the
//! server side of `campaign run --service`. Without a spec, a demo
//! code `gross-z` (the `[[144,12,12]]` gross code, min-sum BP, 20
//! iterations) is registered for quickstarts and soak tests.

use qldpc_bp::{BpConfig, MinSumDecoder};
use qldpc_campaign::{cell_decoder_inputs, CampaignSpec};
use qldpc_decoder_api::DecoderFactory;
use qldpc_server::{DecodeService, FrontendConfig, NetFrontend, ServiceConfig};
use std::io::Write as _;
use std::process::ExitCode;
use std::sync::Arc;

const USAGE: &str = "\
usage: serve [--tcp <host:port>] [--uds <path>] [--spec <file>]
             [--node <name>] [--max-inflight N] [--shards N]

Binds one front-end (default --tcp 127.0.0.1:0), prints LISTENING <addr>,
serves until stdin EOF, then drains and prints DRAINED <sub> <done>.
--spec registers every campaign cell under its cell id; otherwise the
demo code 'gross-z' is registered.";

fn fail(message: impl std::fmt::Display) -> ExitCode {
    eprintln!("serve: {message}");
    ExitCode::FAILURE
}

fn take_value(args: &mut Vec<String>, flag: &str) -> Result<Option<String>, String> {
    let Some(pos) = args.iter().position(|a| a == flag) else {
        return Ok(None);
    };
    if pos + 1 >= args.len() {
        return Err(format!("{flag} needs a value"));
    }
    let value = args.remove(pos + 1);
    args.remove(pos);
    Ok(Some(value))
}

fn main() -> ExitCode {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--help" || a == "-h") {
        println!("{USAGE}");
        return ExitCode::SUCCESS;
    }
    let parsed = (|| -> Result<_, String> {
        let tcp = take_value(&mut args, "--tcp")?;
        let uds = take_value(&mut args, "--uds")?;
        let spec = take_value(&mut args, "--spec")?;
        let node = take_value(&mut args, "--node")?.unwrap_or_else(|| "node0".to_string());
        let max_inflight = take_value(&mut args, "--max-inflight")?
            .map(|v| {
                v.parse::<usize>()
                    .map_err(|_| "--max-inflight needs a number".to_string())
            })
            .transpose()?;
        let shards = take_value(&mut args, "--shards")?
            .map(|v| {
                v.parse::<usize>()
                    .map_err(|_| "--shards needs a number".to_string())
            })
            .transpose()?;
        Ok((tcp, uds, spec, node, max_inflight, shards))
    })();
    let (tcp, uds, spec, node, max_inflight, shards) = match parsed {
        Ok(p) => p,
        Err(e) => return fail(format!("{e}\n{USAGE}")),
    };
    if !args.is_empty() {
        return fail(format!("unexpected arguments: {args:?}\n{USAGE}"));
    }
    if tcp.is_some() && uds.is_some() {
        return fail("--tcp and --uds are mutually exclusive (one front-end per process)");
    }

    let mut config = ServiceConfig::default();
    if let Some(shards) = shards {
        if shards == 0 {
            return fail("--shards must be at least 1");
        }
        config.shards = shards;
    }

    let mut builder = DecodeService::builder();
    let mut registered = 0usize;
    match spec {
        Some(path) => {
            let spec = match CampaignSpec::from_file(path.as_ref()) {
                Ok(s) => s,
                Err(e) => return fail(e),
            };
            let cells = match spec.cells() {
                Ok(c) => c,
                Err(e) => return fail(e),
            };
            for cell in &cells {
                for (name, h, priors) in cell_decoder_inputs(&spec, cell) {
                    let cell_config = ServiceConfig {
                        precision: cell.precision,
                        ..config
                    };
                    builder.register_code_with(
                        &name,
                        &h,
                        &priors,
                        cell.decoder.factory(cell.precision),
                        cell_config,
                    );
                    registered += 1;
                }
            }
        }
        None => {
            let code = qldpc_codes::bb::gross_code();
            let hz = code.hz();
            let priors = vec![0.03; hz.cols()];
            let factory: DecoderFactory = Box::new(|h, priors| {
                let config = BpConfig {
                    max_iters: 20,
                    ..BpConfig::default()
                };
                Box::new(MinSumDecoder::new(h, priors, config))
            });
            builder.register_code_with("gross-z", hz, &priors, factory, config);
            registered = 1;
        }
    }
    let service = Arc::new(builder.start());

    let frontend_config = FrontendConfig {
        node,
        max_inflight: max_inflight.unwrap_or(FrontendConfig::default().max_inflight),
        ..FrontendConfig::default()
    };
    let (mut frontend, listening) = if let Some(path) = uds {
        let frontend = match NetFrontend::serve_uds(Arc::clone(&service), &path, frontend_config) {
            Ok(f) => f,
            Err(e) => return fail(format!("binding {path}: {e}")),
        };
        (frontend, path)
    } else {
        let addr = tcp.unwrap_or_else(|| "127.0.0.1:0".to_string());
        let frontend = match NetFrontend::serve_tcp(Arc::clone(&service), &addr, frontend_config) {
            Ok(f) => f,
            Err(e) => return fail(format!("binding {addr}: {e}")),
        };
        let bound = frontend.local_addr().expect("tcp front-end has an address");
        (frontend, bound.to_string())
    };

    println!("REGISTERED {registered}");
    println!("LISTENING {listening}");
    std::io::stdout().flush().expect("flush stdout");

    // Serve until the parent closes our stdin — the portable
    // SIGTERM-equivalent.
    let drained = std::io::copy(&mut std::io::stdin().lock(), &mut std::io::sink());
    if let Err(e) = drained {
        eprintln!("serve: reading stdin: {e}");
    }

    frontend.shutdown();
    let service = Arc::into_inner(service).expect("front-end released the service");
    let metrics = service.shutdown();
    let (submitted, completed): (u64, u64) = metrics
        .iter()
        .fold((0, 0), |(s, c), m| (s + m.submitted, c + m.completed));
    let drained = metrics.iter().all(|m| m.is_drained());
    println!("DRAINED {submitted} {completed}");
    std::io::stdout().flush().expect("flush stdout");
    if !drained || submitted != completed {
        eprintln!("serve: shutdown left undrained requests ({submitted} submitted, {completed} completed)");
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
