//! Figure 15: distribution of single-syndrome decoding times at p = 0.003
//! on the `[[144,12,12]]` code (the paper's violin plot, rendered as text
//! log-histograms).
//!
//! Paper observations: BP1000-OSD10 shows a distinct bimodal gap (OSD
//! invocations); serial BP-SF has a compact long tail; adding workers
//! compresses the tail (max speedup 5.6× at P=8, avg 38.6 → 15.7 ms).

use bpsf_core::BpSfConfig;
use qldpc_bench::{banner, build_dem, paper_reference, BenchArgs};
use qldpc_sim::{decoders, run_circuit_level, CircuitLevelConfig, DecoderFactory};

fn main() {
    let args = BenchArgs::parse(300);
    banner(
        "Figure 15",
        "decode-time distributions at p = 3e-3, BB `[[144,12,12]]`",
        &args,
    );
    let code = qldpc_codes::bb::gross_code();
    let rounds = args.rounds.unwrap_or(12);
    let dem = build_dem(&code, rounds, 3e-3);
    let config = CircuitLevelConfig {
        shots: args.shots,
        seed: args.seed,
    };
    let sf = BpSfConfig::circuit_level(100, 50, 10, 10);

    let mut contenders: Vec<(&str, DecoderFactory)> = vec![
        ("BP1000-OSD10", decoders::bp_osd(1000, 10)),
        ("BP-SF (serial)", decoders::bp_sf(sf)),
        ("BP-SF (P=2)", decoders::parallel_bp_sf(sf, 2)),
    ];
    if args.full {
        contenders.push(("BP-SF (P=4)", decoders::parallel_bp_sf(sf, 4)));
        contenders.push(("BP-SF (P=8)", decoders::parallel_bp_sf(sf, 8)));
    }

    for (name, factory) in &contenders {
        let r = run_circuit_level(&dem, "gross", &config, factory);
        let samples: Vec<f64> = r.records.iter().map(|s| s.wall_ns as f64 / 1e6).collect();
        let stats = r.wall_stats_ms();
        println!("\n--- {name} ---");
        println!("{}", stats.summary());
        println!(
            "post-processing invoked on {:.1}% of shots",
            100.0 * r.postprocessing_rate()
        );
        println!("{}", stats.log_histogram(&samples, 12));
    }
    paper_reference(&[
        "BP1000-OSD10: avg 38.61 ms with a bimodal gap (red-circled OSD",
        "  invocations form a separate slow mode)",
        "BP-SF serial: lower average, compact long tail",
        "P=2 → 21.0 ms, P=4 → 17.8 ms, P=8 → 15.73 ms average;",
        "  worst case compresses 5.6× at P=8 vs serial",
    ]);
}
