//! Figure 17 / Appendix B: codes on which plain BP already performs well,
//! so BP-SF and BP-OSD give only marginal improvements.
//!
//! (a) code-capacity: `[[72,12,6]]` and `[[144,12,12]]` BB codes
//!     with BP-SF w=1 and |Φ| = 4 / 7 respectively,
//! (b) code-capacity: `[[126,12,10]]` coprime-BB (|Φ|=6) and `[[254,28]]` GB
//!     (|Φ|=13),
//! (c) circuit-level: `[[72,12,6]]` with BP-SF (BP50, w=4, |Φ|=20, ns=5).

use bpsf_core::BpSfConfig;
use qldpc_bench::{banner, capacity_sweep, circuit_sweep, paper_reference, BenchArgs};
use qldpc_sim::decoders;

fn main() {
    let args = BenchArgs::parse(300);
    banner(
        "Figure 17 (Appendix B)",
        "codes where plain BP is already good",
        &args,
    );

    println!("\n(a) code capacity, BB `[[72,12,6]]` (|Φ|=4) and `[[144,12,12]]` (|Φ|=7):");
    let ps_a: &[f64] = if args.full {
        &[0.02, 0.05, 0.08, 0.12]
    } else {
        &[0.05, 0.09]
    };
    for (code, phi) in [
        (qldpc_codes::bb::bb72(), 4),
        (qldpc_codes::bb::gross_code(), 7),
    ] {
        let factories = vec![
            decoders::bp_sf(BpSfConfig::code_capacity(50, phi, 1)),
            decoders::bp_osd(1000, 10),
            decoders::plain_bp(1000),
        ];
        capacity_sweep(&code, ps_a, args.shots, args.seed, &factories);
    }

    println!(
        "\n(b) code capacity, coprime-BB `[[126,12,10]]` (|Φ|=6) and GB `[[254,28]]` (|Φ|=13):"
    );
    let ps_b: &[f64] = if args.full {
        &[0.02, 0.04, 0.06, 0.10]
    } else {
        &[0.04, 0.08]
    };
    for (code, phi) in [
        (qldpc_codes::coprime_bb::coprime126(), 6),
        (qldpc_codes::gb::gb254(), 13),
    ] {
        let factories = vec![
            decoders::bp_sf(BpSfConfig::code_capacity(50, phi, 1)),
            decoders::bp_osd(1000, 10),
            decoders::plain_bp(1000),
        ];
        capacity_sweep(&code, ps_b, args.shots, args.seed, &factories);
    }

    println!("\n(c) circuit level, BB `[[72,12,6]]`, BP-SF (BP50, w=4, |Φ|=20, ns=5):");
    let code = qldpc_codes::bb::bb72();
    let rounds = args.rounds.unwrap_or(6);
    let ps_c: &[f64] = if args.full {
        &[1e-3, 3e-3, 6e-3, 1e-2]
    } else {
        &[3e-3, 8e-3]
    };
    let factories = vec![
        decoders::bp_sf(BpSfConfig::circuit_level(50, 20, 4, 5)),
        decoders::bp_osd(1000, 10),
        decoders::plain_bp(1000),
    ];
    circuit_sweep(&code, rounds, ps_c, args.shots, args.seed, &factories);

    paper_reference(&[
        "on all of these codes the three curves nearly coincide:",
        "BP alone already decodes well, so post-processing (BP-SF or OSD)",
        "is rarely invoked and yields only marginal LER gains",
    ]);
}
