//! Figure 6: code-capacity error rates of the `[[288,12,18]]` BB code.
//!
//! Paper setup: BP-SF with BP50, w_max = 1, |Φ| = 20 performs on par with
//! BP1000-OSD10 at ≤ 1050 total iterations (100 with full parallelism).

use bpsf_core::BpSfConfig;
use qldpc_bench::{banner, capacity_sweep, paper_reference, BenchArgs};
use qldpc_sim::decoders;

fn main() {
    let args = BenchArgs::parse(300);
    banner(
        "Figure 6",
        "BB `[[288,12,18]]` under the code-capacity model",
        &args,
    );
    let code = qldpc_codes::bb::bb288();
    let ps: &[f64] = if args.full {
        &[0.03, 0.04, 0.06, 0.08, 0.10]
    } else {
        &[0.04, 0.06, 0.09]
    };
    let factories = vec![
        decoders::bp_sf(BpSfConfig::code_capacity(50, 20, 1)),
        decoders::bp_osd(1000, 10),
        decoders::bp_osd(1000, 0),
        decoders::plain_bp(1000),
    ];
    capacity_sweep(&code, ps, args.shots, args.seed, &factories);
    paper_reference(&[
        "BP-SF (BP50, w=1, |Φ|=20) tracks BP1000-OSD10 within statistical error",
        "both reach LER ≈ 1e-5 near p = 0.04; plain BP1000 lags by ~10×",
        "shape to verify: BP-SF ≈ BP-OSD10 < BP-OSD0 < BP at each p",
    ]);
}
