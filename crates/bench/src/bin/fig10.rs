//! Figure 10: circuit-level error rates of the `[[126,12,10]]` coprime-BB
//! code.
//!
//! Paper setup: d = 10 rounds; BP-SF with BP100, |Φ| = 50, (w=6, ns=5)
//! reaching ~BP-OSD parity at ≈3,000 iterations, and (w=10, ns=10)
//! dipping slightly below BP-OSD at ≈10,000 iterations.

use bpsf_core::BpSfConfig;
use qldpc_bench::{banner, circuit_sweep, paper_reference, BenchArgs};
use qldpc_sim::decoders;

fn main() {
    let args = BenchArgs::parse(200);
    banner(
        "Figure 10",
        "Coprime-BB `[[126,12,10]]` under the circuit-level noise model",
        &args,
    );
    let code = qldpc_codes::coprime_bb::coprime126();
    let rounds = args.rounds.unwrap_or(10);
    let ps: &[f64] = if args.full {
        &[1e-3, 2e-3, 3e-3, 5e-3, 8e-3]
    } else {
        &[3e-3, 6e-3]
    };
    let mut factories = vec![
        decoders::bp_sf(BpSfConfig::circuit_level(100, 50, 6, 5)),
        decoders::bp_sf(BpSfConfig::circuit_level(100, 50, 10, 10)),
        decoders::bp_osd(1000, 10),
        decoders::plain_bp(1000),
    ];
    if args.full {
        factories.push(decoders::plain_bp(10000));
    }
    circuit_sweep(&code, rounds, ps, args.shots, args.seed, &factories);
    paper_reference(&[
        "BP-SF (w=6, ns=5) is comparable to BP1000-OSD10",
        "BP-SF (w=10, ns=10) drops slightly *below* BP-OSD at low p",
        "plain BP1000/BP10000 are an order of magnitude worse",
    ]);
}
