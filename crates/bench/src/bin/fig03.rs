//! Figure 3: precision and recall of candidate-bit selection on the
//! `[[144,12,12]]` code — how well the top-50 oscillating bits predict the
//! true error locations among ~8,000 error mechanisms.
//!
//! Paper setup: BP50 with oscillation tracking, statistics over 1,000
//! decoding failures, p ∈ {0.001, 0.002, 0.005, 0.01}.

use bpsf_core::{hit_precision_recall, select_candidates};
use qldpc_bench::{banner, build_dem, paper_reference, BenchArgs};
use qldpc_bp::{BpConfig, MinSumDecoder};
use qldpc_circuit::DemSampler;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let args = BenchArgs::parse(200);
    banner(
        "Figure 3",
        "precision/recall of top-50 oscillating bits, BB `[[144,12,12]]`, circuit-level",
        &args,
    );
    let code = qldpc_codes::bb::gross_code();
    let rounds = args.rounds.unwrap_or(12);
    let target_failures = args.shots; // `--shots` = number of failures studied
    let ps: &[f64] = if args.full {
        &[1e-3, 2e-3, 5e-3, 1e-2]
    } else {
        &[2e-3, 5e-3, 1e-2]
    };

    println!(
        "\n{:>9} {:>10} {:>10} {:>10} {:>12}",
        "p", "precision", "recall", "failures", "mechanisms"
    );
    for &p in ps {
        let dem = build_dem(&code, rounds, p);
        let mut bp = MinSumDecoder::new(
            dem.check_matrix(),
            dem.priors(),
            BpConfig {
                max_iters: 50,
                track_oscillations: true,
                ..BpConfig::default()
            },
        );
        let sampler = DemSampler::new(&dem);
        let mut rng = StdRng::seed_from_u64(args.seed);
        let mut precisions = Vec::new();
        let mut recalls = Vec::new();
        let mut attempts = 0usize;
        let max_attempts = target_failures * 2000;
        while precisions.len() < target_failures && attempts < max_attempts {
            attempts += 1;
            let shot = sampler.sample(&mut rng);
            if shot.syndrome.is_zero() {
                continue;
            }
            let r = bp.decode(&shot.syndrome);
            if r.converged {
                continue;
            }
            let candidates = select_candidates(&r.flip_counts, &r.posteriors, 50, true);
            let truth: Vec<usize> = shot.fault.iter_ones().collect();
            let (precision, recall) = hit_precision_recall(&candidates, &truth);
            precisions.push(precision);
            recalls.push(recall);
        }
        let n = precisions.len().max(1) as f64;
        println!(
            "{:>9.1e} {:>10.3} {:>10.3} {:>10} {:>12}",
            p,
            precisions.iter().sum::<f64>() / n,
            recalls.iter().sum::<f64>() / n,
            precisions.len(),
            dem.num_mechanisms()
        );
    }
    paper_reference(&[
        "p=0.001: precision ≈ 0.45, recall ≈ 0.8",
        "p=0.002: precision ≈ 0.4,  recall ≈ 0.6",
        "p=0.005: precision ≈ 0.3,  recall ≈ 0.35",
        "p=0.010: precision ≈ 0.25, recall ≈ 0.2",
        "shape: precision far above the physical error rate at every p;",
        "recall decays as the error count outgrows the fixed |Φ| = 50 budget",
    ]);
}
