//! Determinism, resume and sharding contracts of the campaign engine.
//!
//! The engine's seeding rule makes every decoded shot a pure function
//! of the spec (including its pinned thread count), so:
//!
//! * re-running a spec from scratch reproduces **byte-identical** JSONL
//!   logs and reports,
//! * resuming after an interruption converges on exactly the log an
//!   uninterrupted run would have written,
//! * sharded execution covers the same cells with the same rows as the
//!   unsharded run.

use qldpc_campaign::{run_campaign, CampaignSpec, RunOptions};
use std::path::{Path, PathBuf};

/// A small mixed spec: BP at both precisions plus a BP-OSD baseline,
/// two p-points, thread count pinned. The tight half-width target
/// forces every cell to the shot cap (2 chunks), so interruption can be
/// simulated mid-cell; the loose-target behavior is covered separately.
const SPEC: &str = "\
name = determinism
seed = 99
codes = bb72
noise = code-capacity
p = 0.05, 0.08
decoders = bp:20, bp-osd:20:5
precisions = f64, f32
target_half_width = 0.001
confidence = 0.95
chunk_shots = 30
max_shots = 60
threads = 2
batch_size = 16
";

fn out_dir(name: &str) -> PathBuf {
    let dir = PathBuf::from(env!("CARGO_TARGET_TMPDIR")).join(name);
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn quiet(dir: &Path) -> RunOptions {
    RunOptions {
        quiet: true,
        ..RunOptions::new(dir)
    }
}

fn read(path: &Path) -> String {
    std::fs::read_to_string(path).unwrap()
}

#[test]
fn same_spec_reproduces_identical_jsonl_and_reports() {
    let spec = CampaignSpec::parse(SPEC).unwrap();
    let (a, b) = (out_dir("det-a"), out_dir("det-b"));
    let out_a = run_campaign(&spec, &quiet(&a)).unwrap();
    let out_b = run_campaign(&spec, &quiet(&b)).unwrap();
    assert_eq!(out_a.cells_run, 6); // 2 p × (bp@f64 + bp@f32 + bp-osd)
    assert_eq!(
        read(&out_a.results_path),
        read(&out_b.results_path),
        "same-seed runs must produce byte-identical JSONL logs"
    );
    assert_eq!(
        read(&a.join("REPRO.md")),
        read(&b.join("REPRO.md")),
        "generated reports must be byte-identical too"
    );
    assert_eq!(read(&a.join("results.tsv")), read(&b.join("results.tsv")));
    // Every cell hit the shot cap under the unreachable target.
    for row in &out_a.rows {
        assert_eq!(row.stop, "shot-cap");
        assert_eq!(row.shots, 60);
        assert_eq!(row.chunks, 2);
        assert_eq!(row.threads, 2);
    }
}

#[test]
fn rerunning_a_finished_campaign_appends_nothing() {
    let spec = CampaignSpec::parse(SPEC).unwrap();
    let dir = out_dir("det-rerun");
    let first = run_campaign(&spec, &quiet(&dir)).unwrap();
    let log_after_first = read(&first.results_path);
    let second = run_campaign(&spec, &quiet(&dir)).unwrap();
    assert_eq!(second.cells_run, 0);
    assert_eq!(second.cells_skipped, first.cells_total);
    assert_eq!(
        read(&second.results_path),
        log_after_first,
        "a no-op resume must not append rows"
    );
    // The resumed outcome exposes the same final rows.
    assert_eq!(second.rows, first.rows);
}

#[test]
fn resuming_an_interrupted_run_converges_on_the_uninterrupted_log() {
    let spec = CampaignSpec::parse(SPEC).unwrap();
    let full_dir = out_dir("det-full");
    let full = run_campaign(&spec, &quiet(&full_dir)).unwrap();
    let full_log = read(&full.results_path);

    // Simulate a kill at every possible row boundary: replay a prefix of
    // the log into a fresh directory, resume, and demand byte equality.
    let lines: Vec<&str> = full_log.lines().collect();
    for cut in [1usize, 2, 4, 7, lines.len() - 1] {
        let dir = out_dir(&format!("det-cut{cut}"));
        std::fs::create_dir_all(&dir).unwrap();
        let prefix: String = lines[..cut].iter().map(|l| format!("{l}\n")).collect();
        std::fs::write(dir.join("results.jsonl"), &prefix).unwrap();
        let resumed = run_campaign(&spec, &quiet(&dir)).unwrap();
        assert_eq!(
            read(&resumed.results_path),
            full_log,
            "resume from a {cut}-line prefix diverged from the uninterrupted log"
        );
        assert_eq!(resumed.rows, full.rows);
    }
}

#[test]
fn resume_repairs_a_torn_trailing_write() {
    let spec = CampaignSpec::parse(SPEC).unwrap();
    let full_dir = out_dir("det-torn-full");
    let full = run_campaign(&spec, &quiet(&full_dir)).unwrap();
    let full_log = read(&full.results_path);
    let lines: Vec<&str> = full_log.lines().collect();

    // Case 1: killed between the row text and its newline — the last
    // line is a complete row with no terminator.
    let dir = out_dir("det-torn-no-newline");
    std::fs::create_dir_all(&dir).unwrap();
    std::fs::write(
        dir.join("results.jsonl"),
        format!("{}\n{}", lines[0], lines[1]), // no trailing '\n'
    )
    .unwrap();
    let resumed = run_campaign(&spec, &quiet(&dir)).unwrap();
    assert_eq!(
        read(&resumed.results_path),
        full_log,
        "resume after a missing-newline tear diverged"
    );

    // Case 2: killed mid-row — the trailing fragment is unparseable and
    // must be dropped, then re-decoded identically.
    let dir = out_dir("det-torn-half-row");
    std::fs::create_dir_all(&dir).unwrap();
    std::fs::write(
        dir.join("results.jsonl"),
        format!("{}\n{}", lines[0], &lines[1][..lines[1].len() / 2]),
    )
    .unwrap();
    let resumed = run_campaign(&spec, &quiet(&dir)).unwrap();
    assert_eq!(
        read(&resumed.results_path),
        full_log,
        "resume after a mid-row tear diverged"
    );
}

#[test]
fn sharded_runs_cover_the_grid_with_identical_rows() {
    let spec = CampaignSpec::parse(SPEC).unwrap();
    let full_dir = out_dir("det-shard-full");
    let full = run_campaign(&spec, &quiet(&full_dir)).unwrap();

    let dir = out_dir("det-shards");
    let mut shard_paths = Vec::new();
    for i in 0..2 {
        let opts = RunOptions {
            shard: Some((i, 2)),
            ..quiet(&dir)
        };
        let outcome = run_campaign(&spec, &opts).unwrap();
        assert!(
            outcome.report_path.is_none(),
            "shards must not write REPRO.md"
        );
        shard_paths.push(outcome.results_path);
    }
    assert_ne!(shard_paths[0], shard_paths[1]);
    let mut merged = qldpc_campaign::read_cell_rows(&shard_paths).unwrap();
    merged.sort_by(|a, b| a.cell.cmp(&b.cell));
    let mut expected = full.rows.clone();
    expected.sort_by(|a, b| a.cell.cmp(&b.cell));
    assert_eq!(
        merged, expected,
        "shard union must equal the unsharded rows"
    );
    // And the merged report equals the unsharded one (rendering sorts
    // internally, so row order does not matter).
    assert_eq!(
        qldpc_campaign::render_markdown(&merged),
        read(&full_dir.join("REPRO.md"))
    );
}

#[test]
fn resume_with_an_edited_spec_is_rejected() {
    let spec = CampaignSpec::parse(SPEC).unwrap();
    let dir = out_dir("det-edited");
    run_campaign(&spec, &quiet(&dir)).unwrap();
    let mut edited = spec.clone();
    edited.seed += 1;
    let err = run_campaign(&edited, &quiet(&dir)).unwrap_err();
    assert!(
        err.to_string().contains("fresh --out"),
        "expected a spec-mismatch error, got: {err}"
    );
}

#[test]
fn resuming_a_partial_cell_under_a_different_thread_count_is_rejected() {
    let spec = CampaignSpec::parse(SPEC).unwrap();
    let full_dir = out_dir("det-threads-full");
    let full = run_campaign(&spec, &quiet(&full_dir)).unwrap();
    // Leave only the first chunk row, rewritten as if it had run with a
    // different resolved thread count (e.g. `threads = 0` resolved on a
    // bigger machine).
    let first_line = read(&full.results_path).lines().next().unwrap().to_string();
    assert!(first_line.contains("\"threads\":2"));
    let dir = out_dir("det-threads-mixed");
    std::fs::create_dir_all(&dir).unwrap();
    std::fs::write(
        dir.join("results.jsonl"),
        format!("{}\n", first_line.replace("\"threads\":2", "\"threads\":4")),
    )
    .unwrap();
    let err = run_campaign(&spec, &quiet(&dir)).unwrap_err();
    assert!(
        err.to_string().contains("thread"),
        "expected a thread-count mismatch error, got: {err}"
    );

    // Finished cells are covered by the same rule: a log whose *final*
    // rows ran under a different resolution must also be refused (a
    // threads = 0 campaign moved across machines would otherwise mix
    // per-thread streams cell by cell).
    let full_log = read(&full.results_path);
    let dir = out_dir("det-threads-finished");
    std::fs::create_dir_all(&dir).unwrap();
    std::fs::write(
        dir.join("results.jsonl"),
        full_log.replace("\"threads\":2", "\"threads\":4"),
    )
    .unwrap();
    let err = run_campaign(&spec, &quiet(&dir)).unwrap_err();
    assert!(
        err.to_string().contains("thread"),
        "expected a thread-count mismatch error for finished cells, got: {err}"
    );
}

#[test]
fn a_loose_target_stops_before_the_cap() {
    let spec =
        CampaignSpec::parse(&SPEC.replace("target_half_width = 0.001", "target_half_width = 0.2"))
            .unwrap();
    let dir = out_dir("det-loose");
    let outcome = run_campaign(&spec, &quiet(&dir)).unwrap();
    for row in &outcome.rows {
        assert_eq!(row.stop, "half-width", "cell {}", row.cell);
        assert!(row.shots < 60, "cell {} ran to the cap anyway", row.cell);
        // The recorded interval indeed satisfies the target.
        assert!((row.ci_hi - row.ci_lo) / 2.0 <= 0.2);
    }
}
