//! Golden-file tests pinning the report formats.
//!
//! `tests/fixtures/fixture.jsonl` is a fixed, committed log; the
//! rendered Markdown and TSV must match the committed goldens byte for
//! byte, and re-serializing the parsed rows must reproduce the fixture
//! itself (pinning the JSONL row format too). To change a format
//! deliberately, run the ignored `regenerate_goldens` test and review
//! the diff:
//!
//! ```sh
//! cargo test -p qldpc-campaign --test golden_report -- --ignored regenerate_goldens
//! ```

use qldpc_campaign::{render_markdown, render_tsv, CellRow, LogRecord};
use std::path::PathBuf;

fn fixture_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name)
}

fn fixture_rows() -> Vec<CellRow> {
    let text = std::fs::read_to_string(fixture_path("fixture.jsonl")).unwrap();
    qldpc_campaign::row::parse_log(&text)
        .unwrap()
        .into_iter()
        .map(|r| match r {
            LogRecord::Cell(c) => *c,
            LogRecord::Chunk(c) => panic!("fixture holds a chunk row: {c:?}"),
        })
        .collect()
}

#[test]
fn fixture_round_trips_through_row_serialization() {
    let text = std::fs::read_to_string(fixture_path("fixture.jsonl")).unwrap();
    let reserialized: String = fixture_rows()
        .iter()
        .map(|r| format!("{}\n", r.to_json()))
        .collect();
    assert_eq!(
        text, reserialized,
        "CellRow::to_json no longer reproduces the committed fixture — \
         the JSONL row format changed"
    );
}

#[test]
fn markdown_matches_golden() {
    let golden = std::fs::read_to_string(fixture_path("REPRO.golden.md")).unwrap();
    let rendered = render_markdown(&fixture_rows());
    assert_eq!(
        rendered, golden,
        "REPRO.md format drifted from tests/fixtures/REPRO.golden.md; \
         regenerate the golden if the change is intentional"
    );
}

#[test]
fn tsv_matches_golden() {
    let golden = std::fs::read_to_string(fixture_path("results.golden.tsv")).unwrap();
    let rendered = render_tsv(&fixture_rows());
    assert_eq!(
        rendered, golden,
        "TSV format drifted from tests/fixtures/results.golden.tsv; \
         regenerate the golden if the change is intentional"
    );
}

/// The golden rows: a two-section campaign exercising every rendering
/// path — all three families, both precisions, an unknown distance,
/// disjoint-CI verdicts in both directions, overlap ties, and both stop
/// reasons.
fn golden_source_rows() -> Vec<CellRow> {
    let base = CellRow {
        campaign: "fixture".into(),
        spec: "00c0ffee00c0ffee".into(),
        cell: String::new(),
        code: "gross".into(),
        code_name: "BB [[144,12,12]]".into(),
        n: 144,
        k: 12,
        d: Some(12),
        noise: "code-capacity".into(),
        p: 0.0,
        rounds: 0,
        decoder: String::new(),
        family: String::new(),
        precision: "f64".into(),
        shots: 0,
        failures: 0,
        unsolved: 0,
        bp_iters: 0,
        ler: 0.0,
        ci_lo: 0.0,
        ci_hi: 0.0,
        confidence: 0.95,
        target_half_width: 0.01,
        stop: "half-width".into(),
        chunks: 1,
        seed: 2026,
        threads: 2,
        batch_size: 32,
        git_rev: "0123456789ab".into(),
    };
    let row = |p: f64,
               decoder: &str,
               family: &str,
               precision: &str,
               shots: usize,
               failures: usize,
               stop: &str| {
        let ler = failures as f64 / shots as f64;
        let ci = bpsf_core::stats::wilson_interval(failures, shots, 0.95);
        CellRow {
            cell: format!("gross|cc|p={p}|{decoder}"),
            p,
            decoder: decoder.into(),
            family: family.into(),
            precision: precision.into(),
            shots,
            failures,
            unsolved: 0,
            // Deterministic stand-in for the per-cell iteration
            // aggregate: easy shots converge fast, failures burn the
            // full schedule.
            bp_iters: shots as u64 * 4 + failures as u64 * 96,
            ler,
            ci_lo: ci.lo,
            ci_hi: ci.hi,
            stop: stop.into(),
            chunks: shots.div_ceil(2000),
            ..base.clone()
        }
    };
    let mut rows = vec![
        // p = 0.04: parallel side wins with disjoint CIs (BP-SF below OSD).
        row(
            0.04,
            "BP-SF(BP100,w=2,|Φ|=8)",
            "BP-SF",
            "f64",
            8000,
            8,
            "half-width",
        ),
        row(0.04, "BP100", "BP", "f64", 8000, 120, "half-width"),
        row(0.04, "BP100@f32", "BP", "f32", 8000, 123, "half-width"),
        row(
            0.04,
            "BP1000-OSD10",
            "BP-OSD",
            "f64",
            8000,
            60,
            "half-width",
        ),
        // p = 0.08: BP-OSD wins with disjoint CIs.
        row(
            0.08,
            "BP-SF(BP100,w=2,|Φ|=8)",
            "BP-SF",
            "f64",
            4000,
            400,
            "shot-cap",
        ),
        row(0.08, "BP100", "BP", "f64", 4000, 700, "shot-cap"),
        row(
            0.08,
            "BP1000-OSD10",
            "BP-OSD",
            "f64",
            4000,
            160,
            "half-width",
        ),
        // p = 0.02: a tie (CIs overlap), parallel ahead at the estimate.
        row(0.02, "BP100", "BP", "f64", 2000, 2, "half-width"),
        row(0.02, "BP1000-OSD10", "BP-OSD", "f64", 2000, 3, "half-width"),
    ];
    // A second section: circuit-level rows on a code with unknown d and
    // no BP-OSD side (no crossover table must render).
    let cl = |p: f64, decoder: &str, family: &str, shots: usize, failures: usize| {
        let mut r = row(p, decoder, family, "f64", shots, failures, "shot-cap");
        r.cell = format!("gb254|cl:r4|p={p}|{decoder}");
        r.code = "gb254".into();
        r.code_name = "GB [[254,28]]".into();
        r.n = 254;
        r.k = 28;
        r.d = None;
        r.noise = "circuit-level".into();
        r.rounds = 4;
        r
    };
    rows.push(cl(0.003, "BP100", "BP", 1000, 41));
    rows.push(cl(0.001, "BP100", "BP", 1000, 3));
    rows
}

#[test]
fn fixture_matches_its_source_definition() {
    // The committed fixture must stay in sync with `golden_source_rows`
    // (which documents *why* each row exists).
    let expected: String = golden_source_rows()
        .iter()
        .map(|r| format!("{}\n", r.to_json()))
        .collect();
    let actual = std::fs::read_to_string(fixture_path("fixture.jsonl")).unwrap();
    assert_eq!(actual, expected);
}

#[test]
#[ignore = "rewrites the committed fixtures; run after deliberate format changes"]
fn regenerate_goldens() {
    let rows = golden_source_rows();
    let jsonl: String = rows.iter().map(|r| format!("{}\n", r.to_json())).collect();
    std::fs::create_dir_all(fixture_path("")).unwrap();
    std::fs::write(fixture_path("fixture.jsonl"), jsonl).unwrap();
    std::fs::write(fixture_path("REPRO.golden.md"), render_markdown(&rows)).unwrap();
    std::fs::write(fixture_path("results.golden.tsv"), render_tsv(&rows)).unwrap();
}
