//! The JSONL log schema: per-chunk progress rows and final cell rows.
//!
//! Logs are **append-only**: the engine appends a [`ChunkRow`] after
//! every adaptive chunk and one [`CellRow`] when a cell's stopping rule
//! fires. Resume replays the log instead of the shots — finished cells
//! are skipped and half-finished cells continue from their recorded
//! cumulative counts. Every field is deterministic for a fixed spec at
//! a fixed git revision (wall-clock time is deliberately *not* recorded
//! here), which is what makes same-seed re-runs byte-identical.

use crate::jsonl::{parse_object, JsonValue, ObjectWriter};
use std::collections::BTreeMap;

/// Schema tag stamped into every row; bump on breaking layout changes.
/// `/2` added the BP-iteration aggregates (`bp_iters`, `cum_bp_iters`).
pub const SCHEMA: &str = "bpsf-campaign/2";

/// Progress record for one adaptive chunk of one cell.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChunkRow {
    /// Campaign name.
    pub campaign: String,
    /// Spec fingerprint (`CampaignSpec::fingerprint`).
    pub spec: String,
    /// Cell identifier (`Cell::id`).
    pub cell: String,
    /// Chunk index within the cell, from 0.
    pub chunk: usize,
    /// The derived seed this chunk ran with.
    pub chunk_seed: u64,
    /// The *resolved* worker thread count this chunk ran with. Results
    /// depend on it (the batched runner splits the seed per thread), and
    /// a spec with `threads = 0` resolves it per machine — recording it
    /// here (and in every final row) lets resume refuse a run whose
    /// resolution differs instead of silently mixing streams.
    pub threads: usize,
    /// Shots in this chunk.
    pub shots: usize,
    /// Logical failures in this chunk.
    pub failures: usize,
    /// Unsolved shots in this chunk.
    pub unsolved: usize,
    /// Total serial BP iterations spent in this chunk, summed over its
    /// shots (`ShotRecord::serial_iterations` in `qldpc-sim`).
    pub bp_iters: u64,
    /// Cumulative shots for the cell, including this chunk.
    pub cum_shots: usize,
    /// Cumulative failures for the cell, including this chunk.
    pub cum_failures: usize,
    /// Cumulative unsolved shots for the cell, including this chunk.
    pub cum_unsolved: usize,
    /// Cumulative serial BP iterations for the cell, including this
    /// chunk.
    pub cum_bp_iters: u64,
}

/// Final record of one finished cell — the unit the report generator
/// consumes.
#[derive(Debug, Clone, PartialEq)]
pub struct CellRow {
    /// Campaign name.
    pub campaign: String,
    /// Spec fingerprint (`CampaignSpec::fingerprint`).
    pub spec: String,
    /// Cell identifier (`Cell::id`).
    pub cell: String,
    /// Code slug (registry key).
    pub code: String,
    /// Human-readable code name, e.g. `"BB [[144,12,12]]"`.
    pub code_name: String,
    /// Physical qubits.
    pub n: usize,
    /// Logical qubits.
    pub k: usize,
    /// Declared distance, when known.
    pub d: Option<usize>,
    /// `"code-capacity"` or `"circuit-level"`.
    pub noise: String,
    /// Physical error rate.
    pub p: f64,
    /// Syndrome-extraction rounds (`0` for code-capacity noise).
    pub rounds: usize,
    /// Decoder display label (from `SyndromeDecoder::descriptor`).
    pub decoder: String,
    /// Decoder family name (`"BP"`, `"BP-OSD"`, `"BP-SF"`).
    pub family: String,
    /// Message precision name (`"f64"` / `"f32"`).
    pub precision: String,
    /// Total shots decoded.
    pub shots: usize,
    /// Total logical failures.
    pub failures: usize,
    /// Total unsolved shots.
    pub unsolved: usize,
    /// Total serial BP iterations over all shots (mean = `bp_iters /
    /// shots`) — the convergence-effort aggregate the report surfaces
    /// next to each LER.
    pub bp_iters: u64,
    /// Point estimate `failures / shots`.
    pub ler: f64,
    /// Wilson interval lower bound.
    pub ci_lo: f64,
    /// Wilson interval upper bound.
    pub ci_hi: f64,
    /// Confidence level of the interval.
    pub confidence: f64,
    /// The spec's target half-width.
    pub target_half_width: f64,
    /// Why the cell stopped: `"half-width"` or `"shot-cap"`.
    pub stop: String,
    /// Adaptive chunks run.
    pub chunks: usize,
    /// The spec's base seed.
    pub seed: u64,
    /// Worker threads used per chunk.
    pub threads: usize,
    /// Batch size used within each thread.
    pub batch_size: usize,
    /// `git rev-parse --short=12 HEAD` at run time (`"unknown"` outside
    /// a git checkout).
    pub git_rev: String,
}

impl ChunkRow {
    /// Serializes the row as one JSONL line (no trailing newline).
    pub fn to_json(&self) -> String {
        let mut w = ObjectWriter::new();
        w.str("schema", SCHEMA)
            .str("kind", "chunk")
            .str("campaign", &self.campaign)
            .str("spec", &self.spec)
            .str("cell", &self.cell)
            .uint("chunk", self.chunk as u64)
            .uint("chunk_seed", self.chunk_seed)
            .uint("threads", self.threads as u64)
            .uint("shots", self.shots as u64)
            .uint("failures", self.failures as u64)
            .uint("unsolved", self.unsolved as u64)
            .uint("bp_iters", self.bp_iters)
            .uint("cum_shots", self.cum_shots as u64)
            .uint("cum_failures", self.cum_failures as u64)
            .uint("cum_unsolved", self.cum_unsolved as u64)
            .uint("cum_bp_iters", self.cum_bp_iters);
        w.finish()
    }
}

impl CellRow {
    /// Serializes the row as one JSONL line (no trailing newline).
    pub fn to_json(&self) -> String {
        let mut w = ObjectWriter::new();
        w.str("schema", SCHEMA)
            .str("kind", "cell")
            .str("campaign", &self.campaign)
            .str("spec", &self.spec)
            .str("cell", &self.cell)
            .str("code", &self.code)
            .str("code_name", &self.code_name)
            .uint("n", self.n as u64)
            .uint("k", self.k as u64)
            .opt_uint("d", self.d.map(|d| d as u64))
            .str("noise", &self.noise)
            .float("p", self.p)
            .uint("rounds", self.rounds as u64)
            .str("decoder", &self.decoder)
            .str("family", &self.family)
            .str("precision", &self.precision)
            .uint("shots", self.shots as u64)
            .uint("failures", self.failures as u64)
            .uint("unsolved", self.unsolved as u64)
            .uint("bp_iters", self.bp_iters)
            .float("ler", self.ler)
            .float("ci_lo", self.ci_lo)
            .float("ci_hi", self.ci_hi)
            .float("confidence", self.confidence)
            .float("target_half_width", self.target_half_width)
            .str("stop", &self.stop)
            .uint("chunks", self.chunks as u64)
            .uint("seed", self.seed)
            .uint("threads", self.threads as u64)
            .uint("batch_size", self.batch_size as u64)
            .str("git_rev", &self.git_rev);
        w.finish()
    }
}

/// A parsed log line.
#[derive(Debug, Clone, PartialEq)]
pub enum LogRecord {
    /// A per-chunk progress row.
    Chunk(ChunkRow),
    /// A final cell row.
    Cell(Box<CellRow>),
}

/// An error from [`parse_record`] / [`parse_log`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RowError(pub String);

impl std::fmt::Display for RowError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "log row error: {}", self.0)
    }
}

impl std::error::Error for RowError {}

fn get<'a>(obj: &'a BTreeMap<String, JsonValue>, key: &str) -> Result<&'a JsonValue, RowError> {
    obj.get(key)
        .ok_or_else(|| RowError(format!("missing field '{key}'")))
}

fn get_str(obj: &BTreeMap<String, JsonValue>, key: &str) -> Result<String, RowError> {
    get(obj, key)?
        .as_str()
        .map(str::to_string)
        .ok_or_else(|| RowError(format!("field '{key}' is not a string")))
}

fn get_usize(obj: &BTreeMap<String, JsonValue>, key: &str) -> Result<usize, RowError> {
    get(obj, key)?
        .as_usize()
        .ok_or_else(|| RowError(format!("field '{key}' is not a count")))
}

fn get_u64(obj: &BTreeMap<String, JsonValue>, key: &str) -> Result<u64, RowError> {
    get(obj, key)?
        .as_u64()
        .ok_or_else(|| RowError(format!("field '{key}' is not a u64")))
}

fn get_f64(obj: &BTreeMap<String, JsonValue>, key: &str) -> Result<f64, RowError> {
    get(obj, key)?
        .as_f64()
        .ok_or_else(|| RowError(format!("field '{key}' is not a number")))
}

/// Parses one JSONL line into a [`LogRecord`].
///
/// # Errors
///
/// Fails on malformed JSON, an unknown `schema`/`kind`, or missing or
/// mistyped fields.
pub fn parse_record(line: &str) -> Result<LogRecord, RowError> {
    let obj = parse_object(line).map_err(|e| RowError(e.to_string()))?;
    let schema = get_str(&obj, "schema")?;
    if schema != SCHEMA {
        return Err(RowError(format!(
            "unsupported schema '{schema}' (this build reads {SCHEMA})"
        )));
    }
    match get_str(&obj, "kind")?.as_str() {
        "chunk" => Ok(LogRecord::Chunk(ChunkRow {
            campaign: get_str(&obj, "campaign")?,
            spec: get_str(&obj, "spec")?,
            cell: get_str(&obj, "cell")?,
            chunk: get_usize(&obj, "chunk")?,
            chunk_seed: get_u64(&obj, "chunk_seed")?,
            threads: get_usize(&obj, "threads")?,
            shots: get_usize(&obj, "shots")?,
            failures: get_usize(&obj, "failures")?,
            unsolved: get_usize(&obj, "unsolved")?,
            bp_iters: get_u64(&obj, "bp_iters")?,
            cum_shots: get_usize(&obj, "cum_shots")?,
            cum_failures: get_usize(&obj, "cum_failures")?,
            cum_unsolved: get_usize(&obj, "cum_unsolved")?,
            cum_bp_iters: get_u64(&obj, "cum_bp_iters")?,
        })),
        "cell" => Ok(LogRecord::Cell(Box::new(CellRow {
            campaign: get_str(&obj, "campaign")?,
            spec: get_str(&obj, "spec")?,
            cell: get_str(&obj, "cell")?,
            code: get_str(&obj, "code")?,
            code_name: get_str(&obj, "code_name")?,
            n: get_usize(&obj, "n")?,
            k: get_usize(&obj, "k")?,
            d: match get(&obj, "d")? {
                JsonValue::Null => None,
                v => Some(
                    v.as_usize()
                        .ok_or_else(|| RowError("field 'd' is not a count or null".into()))?,
                ),
            },
            noise: get_str(&obj, "noise")?,
            p: get_f64(&obj, "p")?,
            rounds: get_usize(&obj, "rounds")?,
            decoder: get_str(&obj, "decoder")?,
            family: get_str(&obj, "family")?,
            precision: get_str(&obj, "precision")?,
            shots: get_usize(&obj, "shots")?,
            failures: get_usize(&obj, "failures")?,
            unsolved: get_usize(&obj, "unsolved")?,
            bp_iters: get_u64(&obj, "bp_iters")?,
            ler: get_f64(&obj, "ler")?,
            ci_lo: get_f64(&obj, "ci_lo")?,
            ci_hi: get_f64(&obj, "ci_hi")?,
            confidence: get_f64(&obj, "confidence")?,
            target_half_width: get_f64(&obj, "target_half_width")?,
            stop: get_str(&obj, "stop")?,
            chunks: get_usize(&obj, "chunks")?,
            seed: get_u64(&obj, "seed")?,
            threads: get_usize(&obj, "threads")?,
            batch_size: get_usize(&obj, "batch_size")?,
            git_rev: get_str(&obj, "git_rev")?,
        }))),
        other => Err(RowError(format!("unknown row kind '{other}'"))),
    }
}

/// Parses a whole log (one record per non-empty line).
///
/// # Errors
///
/// Reports the first bad line with its 1-based line number.
pub fn parse_log(text: &str) -> Result<Vec<LogRecord>, RowError> {
    text.lines()
        .enumerate()
        .filter(|(_, l)| !l.trim().is_empty())
        .map(|(i, l)| parse_record(l).map_err(|e| RowError(format!("line {}: {}", i + 1, e.0))))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cell_row() -> CellRow {
        CellRow {
            campaign: "smoke".into(),
            spec: "deadbeefdeadbeef".into(),
            cell: "gross|cc|p=0.02|bp:40".into(),
            code: "gross".into(),
            code_name: "BB [[144,12,12]]".into(),
            n: 144,
            k: 12,
            d: Some(12),
            noise: "code-capacity".into(),
            p: 0.02,
            rounds: 0,
            decoder: "BP40".into(),
            family: "BP".into(),
            precision: "f64".into(),
            shots: 400,
            failures: 3,
            unsolved: 1,
            bp_iters: 5_214,
            ler: 0.0075,
            ci_lo: 0.002_562,
            ci_hi: 0.021_86,
            confidence: 0.95,
            target_half_width: 0.03,
            stop: "half-width".into(),
            chunks: 4,
            seed: 2026,
            threads: 2,
            batch_size: 32,
            git_rev: "0123456789ab".into(),
        }
    }

    #[test]
    fn cell_rows_round_trip() {
        let row = cell_row();
        let parsed = parse_record(&row.to_json()).unwrap();
        assert_eq!(parsed, LogRecord::Cell(Box::new(row)));
    }

    #[test]
    fn unknown_distance_serializes_as_null() {
        let mut row = cell_row();
        row.d = None;
        let json = row.to_json();
        assert!(json.contains("\"d\":null"));
        let LogRecord::Cell(back) = parse_record(&json).unwrap() else {
            panic!("wrong kind");
        };
        assert_eq!(back.d, None);
    }

    #[test]
    fn chunk_rows_round_trip() {
        let row = ChunkRow {
            campaign: "smoke".into(),
            spec: "deadbeefdeadbeef".into(),
            cell: "gross|cc|p=0.02|bp:40".into(),
            chunk: 2,
            chunk_seed: 18_446_744_073_709_551_008,
            threads: 2,
            shots: 100,
            failures: 1,
            unsolved: 0,
            bp_iters: 1_380,
            cum_shots: 300,
            cum_failures: 2,
            cum_unsolved: 0,
            cum_bp_iters: 4_117,
        };
        let parsed = parse_record(&row.to_json()).unwrap();
        assert_eq!(parsed, LogRecord::Chunk(row));
    }

    #[test]
    fn schema_and_kind_are_enforced() {
        let row = cell_row()
            .to_json()
            .replace("bpsf-campaign/2", "bpsf-campaign/999");
        assert!(parse_record(&row).unwrap_err().0.contains("schema"));
        let row = cell_row()
            .to_json()
            .replace("\"kind\":\"cell\"", "\"kind\":\"mystery\"");
        assert!(parse_record(&row).unwrap_err().0.contains("kind"));
        let row = cell_row().to_json().replace("\"shots\":400,", "");
        assert!(parse_record(&row).unwrap_err().0.contains("shots"));
    }

    #[test]
    fn parse_log_reports_line_numbers() {
        let good = cell_row().to_json();
        let text = format!("{good}\n\nnot json\n");
        let err = parse_log(&text).unwrap_err();
        assert!(err.0.contains("line 3"), "{err}");
        assert_eq!(parse_log(&good).unwrap().len(), 1);
    }
}
