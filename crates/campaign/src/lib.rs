//! Declarative simulation campaigns with adaptive shot allocation and
//! generated reproduction reports.
//!
//! This crate is the evidence layer of the reproduction: instead of
//! hand-run sweeps and hand-edited tables, a campaign *spec* declares a
//! grid — codes × decoders × noise points × precisions — and the engine
//! produces machine-checked results end to end:
//!
//! 1. [`spec`] parses the `key = value` spec file and expands the grid
//!    into [`spec::Cell`]s.
//! 2. [`engine`] runs each cell through the batched thread-parallel
//!    Monte Carlo runners of `qldpc-sim`, growing shots in chunks until
//!    the Wilson confidence interval on the logical error rate is
//!    narrower than the spec's target half-width (or a shot cap fires),
//!    appending every step to a JSONL log. Runs are **resumable** (the
//!    log is replayed on startup) and **shardable** (`--shard i/m`),
//!    and for a fixed spec they are **deterministic**: same spec ⇒
//!    byte-identical rows, pinned by `tests/determinism.rs`.
//! 3. [`report`] renders the final rows into `REPRO.md` (LER-vs-p
//!    tables with confidence intervals, stamped with git revision,
//!    seed and shot counts, plus the paper's BP-vs-BP-OSD crossover
//!    comparison) and a flat `results.tsv`.
//!
//! The spec schema is documented in `EXPERIMENTS.md` ("Campaigns");
//! the CLI lives in `crates/bench/src/bin/campaign.rs`.
//!
//! # Examples
//!
//! A complete micro-campaign, spec to report:
//!
//! ```
//! use qldpc_campaign::{run_campaign, CampaignSpec, RunOptions};
//!
//! let spec = CampaignSpec::parse(
//!     "name = doc\n\
//!      codes = bb72\n\
//!      noise = code-capacity\n\
//!      p = 0.05\n\
//!      decoders = bp:15\n\
//!      target_half_width = 0.2\n\
//!      chunk_shots = 25\n\
//!      max_shots = 50\n\
//!      threads = 1\n",
//! )
//! .unwrap();
//! let out = std::env::temp_dir().join(format!("qldpc-campaign-doc-{}", std::process::id()));
//! let _ = std::fs::remove_dir_all(&out);
//! let outcome = run_campaign(&spec, &RunOptions { quiet: true, ..RunOptions::new(&out) }).unwrap();
//! assert_eq!(outcome.cells_run, 1);
//! let repro = std::fs::read_to_string(outcome.report_path.unwrap()).unwrap();
//! assert!(repro.contains("| 0.05 | BP15 | f64 |"));
//! std::fs::remove_dir_all(&out).unwrap();
//! ```

pub mod engine;
pub mod jsonl;
pub mod report;
pub mod row;
pub mod spec;

pub use engine::{
    cell_decoder_inputs, cell_hx_name, chunk_seed, git_rev, run_campaign, CampaignError,
    CampaignOutcome, RunOptions,
};
pub use report::{check_consistency, read_cell_rows, render_markdown, render_tsv};
pub use row::{CellRow, ChunkRow, LogRecord, SCHEMA};
pub use spec::{CampaignSpec, Cell, DecoderSpec, NoiseSpec, Rounds, SpecError};
