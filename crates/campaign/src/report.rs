//! Generates `REPRO.md` and `results.tsv` from final cell rows.
//!
//! The rendering is a pure, deterministic function of the rows: rows
//! are grouped by campaign, then by (code, noise, rounds) section, and
//! sorted inside each table by (p, family, decoder, precision). A
//! committed golden test (`tests/golden_report.rs`) pins the exact
//! output format — change it deliberately, together with the golden.

use crate::row::{CellRow, LogRecord, RowError};
use qldpc_decoder_api::DecoderFamily;
use std::fmt::Write as _;
use std::path::Path;

/// Reads the final cell rows out of one or more JSONL logs (chunk rows
/// are skipped), preserving file order.
///
/// # Errors
///
/// Fails on unreadable files or malformed rows, naming the file.
pub fn read_cell_rows(paths: &[impl AsRef<Path>]) -> Result<Vec<CellRow>, RowError> {
    let mut rows = Vec::new();
    for path in paths {
        let path = path.as_ref();
        let text = std::fs::read_to_string(path)
            .map_err(|e| RowError(format!("cannot read {}: {e}", path.display())))?;
        for record in crate::row::parse_log(&text)
            .map_err(|e| RowError(format!("{}: {}", path.display(), e.0)))?
        {
            if let LogRecord::Cell(cell) = record {
                rows.push(*cell);
            }
        }
    }
    Ok(rows)
}

/// Checks that a merged row set is coherent before rendering: within
/// one campaign every row must carry the same spec fingerprint (mixing
/// generations of an edited spec is exactly what `campaign run` refuses)
/// and every cell id must appear once (stale shard files from a previous
/// grid would otherwise duplicate or contradict rows silently).
///
/// # Errors
///
/// Names the campaign and the offending fingerprints/cell on failure.
pub fn check_consistency(rows: &[CellRow]) -> Result<(), RowError> {
    let mut fingerprints: std::collections::BTreeMap<&str, &str> =
        std::collections::BTreeMap::new();
    let mut seen_cells: std::collections::BTreeSet<(&str, &str)> =
        std::collections::BTreeSet::new();
    for row in rows {
        if let Some(&first) = fingerprints.get(row.campaign.as_str()) {
            if first != row.spec {
                return Err(RowError(format!(
                    "campaign '{}' mixes spec fingerprints {first} and {} — these logs come \
                     from different grids (an edited spec or stale shard files); report each \
                     generation separately",
                    row.campaign, row.spec
                )));
            }
        } else {
            fingerprints.insert(&row.campaign, &row.spec);
        }
        if !seen_cells.insert((&row.campaign, &row.cell)) {
            return Err(RowError(format!(
                "campaign '{}' holds two final rows for cell '{}' — likely overlapping or \
                 stale shard logs; report a single consistent set",
                row.campaign, row.cell
            )));
        }
    }
    Ok(())
}

fn family_rank(family: &str) -> usize {
    match DecoderFamily::from_name(family) {
        Some(DecoderFamily::Bp) => 0,
        Some(DecoderFamily::BpSf) => 1,
        Some(DecoderFamily::BpOsd) => 2,
        _ => 3,
    }
}

/// Deterministic row order within a section table.
fn row_order(a: &CellRow, b: &CellRow) -> std::cmp::Ordering {
    a.p.total_cmp(&b.p)
        .then_with(|| family_rank(&a.family).cmp(&family_rank(&b.family)))
        .then_with(|| a.decoder.cmp(&b.decoder))
        .then_with(|| b.precision.cmp(&a.precision)) // "f64" before "f32"
}

fn section_key(row: &CellRow) -> (String, String, usize) {
    (row.code.clone(), row.noise.clone(), row.rounds)
}

fn fmt_ler(x: f64) -> String {
    format!("{x:.3e}")
}

/// Escapes `|` so labels like `BP-SF(BP100,w=2,|Φ|=8)` cannot break a
/// Markdown table cell.
fn md_cell(s: &str) -> String {
    s.replace('|', "\\|")
}

/// Renders a confidence level as a percentage without float artifacts
/// (`0.683 * 100.0` displays as `68.30000000000001`; rounding through
/// an integral micro-percent grid gives `68.3`).
pub fn fmt_pct(confidence: f64) -> String {
    format!("{}", (confidence * 1e8).round() / 1e6)
}

fn fmt_ci(row: &CellRow) -> String {
    format!(
        "[{:.2e}, {:.2e}] @{}%",
        row.ci_lo,
        row.ci_hi,
        fmt_pct(row.confidence)
    )
}

/// Mean serial BP iterations per shot — the convergence-effort column.
fn fmt_bp_iters(row: &CellRow) -> String {
    if row.shots == 0 {
        "-".to_string()
    } else {
        format!("{:.1}", row.bp_iters as f64 / row.shots as f64)
    }
}

fn section_heading(row: &CellRow) -> String {
    let noise = if row.noise == "code-capacity" {
        "code-capacity noise".to_string()
    } else {
        format!("circuit-level noise, {} rounds", row.rounds)
    };
    format!("{} — {noise}", row.code_name)
}

fn code_stamp(row: &CellRow) -> String {
    match row.d {
        Some(d) => format!("n={}, k={}, d={}", row.n, row.k, d),
        None => format!("n={}, k={}, d unknown", row.n, row.k),
    }
}

/// Renders the Markdown report (`REPRO.md`).
///
/// Every LER row is stamped with shots, failures, the Wilson confidence
/// interval, the stopping reason, the base seed, and the git revision
/// that produced it; each section with both a BP/BP-SF side and a
/// BP-OSD side gains the paper's crossover comparison.
pub fn render_markdown(rows: &[CellRow]) -> String {
    let mut out = String::new();
    out.push_str("# REPRO — generated paper-reproduction results\n\n");
    out.push_str(
        "<!-- Machine-generated by the campaign engine from JSONL result logs.\n     \
         Do not edit by hand; regenerate with\n     \
         `cargo run --release -p qldpc-bench --bin campaign -- report --out REPRO.md <results.jsonl>…` -->\n\n",
    );
    if rows.is_empty() {
        out.push_str("No finished cells yet.\n");
        return out;
    }

    let mut campaigns: Vec<String> = rows.iter().map(|r| r.campaign.clone()).collect();
    campaigns.sort();
    campaigns.dedup();
    let _ = writeln!(
        out,
        "{} finished cell(s) across {} campaign(s).\n",
        rows.len(),
        campaigns.len()
    );

    for campaign in &campaigns {
        let campaign_rows: Vec<&CellRow> =
            rows.iter().filter(|r| &r.campaign == campaign).collect();
        let _ = writeln!(out, "## Campaign `{campaign}`\n");
        let _ = writeln!(
            out,
            "Adaptive stopping: each cell's shots grow in chunks until the Wilson\n\
             interval half-width reaches the spec's target at the row's confidence\n\
             level (`stop = half-width`) or the shot cap fires (`stop = shot-cap`).\n"
        );

        let mut sections: Vec<(String, String, usize)> =
            campaign_rows.iter().map(|r| section_key(r)).collect();
        sections.sort();
        sections.dedup();

        for key in &sections {
            let mut section_rows: Vec<&CellRow> = campaign_rows
                .iter()
                .copied()
                .filter(|r| &section_key(r) == key)
                .collect();
            section_rows.sort_by(|a, b| row_order(a, b));
            let head = section_rows[0];
            let _ = writeln!(out, "### {}\n", section_heading(head));
            let _ = writeln!(out, "({})\n", code_stamp(head));
            out.push_str(
                "| p | decoder | precision | shots | failures | LER | CI | BP iters | stop | seed | git |\n\
                 |--:|---|---|--:|--:|--:|---|--:|---|--:|---|\n",
            );
            for row in &section_rows {
                let _ = writeln!(
                    out,
                    "| {} | {} | {} | {} | {} | {} | {} | {} | {} | {} | {} |",
                    row.p,
                    md_cell(&row.decoder),
                    row.precision,
                    row.shots,
                    row.failures,
                    fmt_ler(row.ler),
                    fmt_ci(row),
                    fmt_bp_iters(row),
                    row.stop,
                    row.seed,
                    row.git_rev
                );
            }
            out.push('\n');
            render_crossover(&mut out, &section_rows);
        }
    }
    out
}

/// The BP-vs-BP-OSD crossover table for one section, comparing the best
/// fully-parallel row (families BP and BP-SF — the paper's O(1)-depth
/// side) against the best BP-OSD row at each p.
fn render_crossover(out: &mut String, section_rows: &[&CellRow]) {
    let parallel_side = |r: &CellRow| matches!(family_rank(&r.family), 0 | 1);
    let osd_side = |r: &CellRow| family_rank(&r.family) == 2;
    if !section_rows.iter().any(|r| parallel_side(r)) || !section_rows.iter().any(|r| osd_side(r)) {
        return;
    }
    out.push_str("#### BP(-SF) vs BP-OSD crossover\n\n");
    out.push_str(
        "Best fully-parallel row (families BP, BP-SF) vs best BP-OSD row per p;\n\
         a side wins outright only when the confidence intervals are disjoint.\n\n",
    );
    out.push_str(
        "| p | parallel best | LER | BP-OSD best | LER | verdict |\n\
         |--:|---|--:|---|--:|---|\n",
    );
    let mut ps: Vec<f64> = section_rows.iter().map(|r| r.p).collect();
    ps.sort_by(f64::total_cmp);
    ps.dedup();
    let mut first_parallel_win: Option<f64> = None;
    for &p in &ps {
        let best = |pred: &dyn Fn(&CellRow) -> bool| -> Option<&CellRow> {
            section_rows
                .iter()
                .copied()
                .filter(|r| r.p == p && pred(r))
                .min_by(|a, b| {
                    a.ler
                        .total_cmp(&b.ler)
                        .then_with(|| a.decoder.cmp(&b.decoder))
                })
        };
        let (Some(par), Some(osd)) = (best(&parallel_side), best(&osd_side)) else {
            continue;
        };
        let verdict = if par.ci_hi < osd.ci_lo {
            "**parallel side** (CIs disjoint)"
        } else if osd.ci_hi < par.ci_lo {
            "**BP-OSD** (CIs disjoint)"
        } else if par.ler <= osd.ler {
            "tie (CIs overlap; parallel ≤ at point estimate)"
        } else {
            "tie (CIs overlap; BP-OSD ≤ at point estimate)"
        };
        if par.ler <= osd.ler && first_parallel_win.is_none() {
            first_parallel_win = Some(p);
        }
        let _ = writeln!(
            out,
            "| {} | {} | {} | {} | {} | {} |",
            p,
            md_cell(&par.decoder),
            fmt_ler(par.ler),
            md_cell(&osd.decoder),
            fmt_ler(osd.ler),
            verdict
        );
    }
    out.push('\n');
    match first_parallel_win {
        Some(p) => {
            let _ = writeln!(
                out,
                "Point-estimate crossover: the parallel side first matches or beats\n\
                 BP-OSD at p = {p}.\n"
            );
        }
        None => {
            out.push_str("Point-estimate crossover: BP-OSD leads at every swept p.\n\n");
        }
    }
}

/// Renders all rows as TSV (header + one line per cell, every schema
/// field, floats in shortest round-trip form).
pub fn render_tsv(rows: &[CellRow]) -> String {
    let mut out = String::from(
        "campaign\tspec\tcell\tcode\tcode_name\tn\tk\td\tnoise\tp\trounds\tdecoder\tfamily\t\
         precision\tshots\tfailures\tunsolved\tbp_iters\tler\tci_lo\tci_hi\tconfidence\t\
         target_half_width\tstop\tchunks\tseed\tthreads\tbatch_size\tgit_rev\n",
    );
    let mut sorted: Vec<&CellRow> = rows.iter().collect();
    sorted.sort_by(|a, b| {
        a.campaign
            .cmp(&b.campaign)
            .then_with(|| section_key(a).cmp(&section_key(b)))
            .then_with(|| row_order(a, b))
    });
    for r in sorted {
        let _ = writeln!(
            out,
            "{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}",
            r.campaign,
            r.spec,
            r.cell,
            r.code,
            r.code_name,
            r.n,
            r.k,
            r.d.map_or_else(|| "-".to_string(), |d| d.to_string()),
            r.noise,
            r.p,
            r.rounds,
            r.decoder,
            r.family,
            r.precision,
            r.shots,
            r.failures,
            r.unsolved,
            r.bp_iters,
            r.ler,
            r.ci_lo,
            r.ci_hi,
            r.confidence,
            r.target_half_width,
            r.stop,
            r.chunks,
            r.seed,
            r.threads,
            r.batch_size,
            r.git_rev
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row(p: f64, decoder: &str, family: &str, precision: &str, ler: f64) -> CellRow {
        let (lo, hi) = (ler * 0.5, (ler * 1.5).max(1e-4));
        CellRow {
            campaign: "t".into(),
            spec: "f".into(),
            cell: format!("gross|cc|p={p}|{decoder}"),
            code: "gross".into(),
            code_name: "BB [[144,12,12]]".into(),
            n: 144,
            k: 12,
            d: Some(12),
            noise: "code-capacity".into(),
            p,
            rounds: 0,
            decoder: decoder.into(),
            family: family.into(),
            precision: precision.into(),
            shots: 1000,
            failures: (ler * 1000.0) as usize,
            unsolved: 0,
            bp_iters: 21_500,
            ler,
            ci_lo: lo,
            ci_hi: hi,
            confidence: 0.95,
            target_half_width: 0.01,
            stop: "half-width".into(),
            chunks: 4,
            seed: 2026,
            threads: 2,
            batch_size: 32,
            git_rev: "0123456789ab".into(),
        }
    }

    #[test]
    fn empty_report_renders_placeholder() {
        let md = render_markdown(&[]);
        assert!(md.contains("No finished cells yet."));
    }

    #[test]
    fn sections_tables_and_crossover_render() {
        let rows = vec![
            row(0.04, "BP40", "BP", "f64", 0.08),
            row(0.04, "BP40@f32", "BP", "f32", 0.081),
            row(0.04, "BP40-OSD10", "BP-OSD", "f64", 0.02),
            row(0.02, "BP40", "BP", "f64", 0.004),
            row(0.02, "BP40-OSD10", "BP-OSD", "f64", 0.005),
        ];
        let md = render_markdown(&rows);
        assert!(md.contains("## Campaign `t`"));
        assert!(md.contains("### BB [[144,12,12]] — code-capacity noise"));
        assert!(md.contains("(n=144, k=12, d=12)"));
        assert!(md.contains("#### BP(-SF) vs BP-OSD crossover"));
        // p = 0.02 ties with parallel ahead at the point estimate.
        assert!(md.contains("Point-estimate crossover: the parallel side first matches or beats"));
        // Table rows are p-sorted: 0.02 section lines precede 0.04 ones.
        let i02 = md.find("| 0.02 | BP40 |").unwrap();
        let i04 = md.find("| 0.04 | BP40 |").unwrap();
        assert!(i02 < i04);
        // f64 sorts before f32 at the same p/decoder prefix.
        let if64 = md.find("| 0.04 | BP40 | f64").unwrap();
        let if32 = md.find("| 0.04 | BP40@f32 | f32").unwrap();
        assert!(if64 < if32);
    }

    #[test]
    fn crossover_is_omitted_without_both_sides() {
        let rows = vec![row(0.02, "BP40", "BP", "f64", 0.004)];
        let md = render_markdown(&rows);
        assert!(!md.contains("crossover"));
    }

    #[test]
    fn percent_rendering_has_no_float_artifacts() {
        assert_eq!(fmt_pct(0.95), "95");
        assert_eq!(fmt_pct(0.99), "99");
        assert_eq!(fmt_pct(0.683), "68.3"); // 0.683 * 100.0 displays as 68.30000000000001
        assert_eq!(fmt_pct(0.513), "51.3");
        assert_eq!(fmt_pct(0.9995), "99.95");
    }

    #[test]
    fn consistency_check_catches_mixed_and_duplicated_logs() {
        let a = row(0.02, "BP40", "BP", "f64", 0.004);
        let mut b = row(0.04, "BP40", "BP", "f64", 0.08);
        assert!(check_consistency(&[a.clone(), b.clone()]).is_ok());
        // Same campaign, different spec fingerprints: an edited grid.
        b.spec = "other".into();
        let err = check_consistency(&[a.clone(), b]).unwrap_err();
        assert!(err.0.contains("mixes spec fingerprints"), "{err}");
        // Duplicate cell id: overlapping shard logs.
        let err = check_consistency(&[a.clone(), a.clone()]).unwrap_err();
        assert!(err.0.contains("two final rows"), "{err}");
        // Two *different* campaigns may coexist in one report.
        let mut c = row(0.02, "BP40", "BP", "f64", 0.004);
        c.campaign = "u".into();
        c.spec = "other".into();
        assert!(check_consistency(&[a, c]).is_ok());
    }

    #[test]
    fn tsv_has_one_line_per_row_plus_header() {
        let rows = vec![
            row(0.04, "BP40", "BP", "f64", 0.08),
            row(0.02, "BP40", "BP", "f64", 0.004),
        ];
        let tsv = render_tsv(&rows);
        let lines: Vec<&str> = tsv.lines().collect();
        assert_eq!(lines.len(), 3);
        let cols = lines[0].split('\t').count();
        for line in &lines[1..] {
            assert_eq!(line.split('\t').count(), cols);
        }
        // Sorted by p.
        assert!(lines[1].contains("\t0.02\t"));
        assert!(lines[2].contains("\t0.04\t"));
    }
}
