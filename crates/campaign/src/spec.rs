//! Declarative campaign specifications.
//!
//! A spec is a small `key = value` text file (comments with `#`)
//! describing a full sweep grid — codes × decoders × noise points ×
//! precisions — plus the adaptive stopping rule. The engine expands it
//! into [`Cell`]s, one per grid point; see `EXPERIMENTS.md` ("Campaigns")
//! for the schema reference and an annotated example.
//!
//! ```text
//! name   = smoke
//! seed   = 2026
//! codes  = gross
//! noise  = code-capacity
//! p      = 0.02, 0.04, 0.06
//! decoders   = bp:40, bp-osd:40:10
//! precisions = f64, f32
//! target_half_width = 0.03
//! max_shots   = 400
//! chunk_shots = 100
//! threads     = 2
//! ```

use qldpc_decoder_api::{DecoderFactory, DecoderFamily, Precision};
use qldpc_sim::decoders;
use std::fmt;

/// A spec-file problem, with the line number where it was found (0 for
/// whole-file problems such as missing keys).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpecError {
    /// 1-based line number, or 0 when the error is not tied to a line.
    pub line: usize,
    /// What is wrong.
    pub message: String,
}

impl SpecError {
    fn at(line: usize, message: impl Into<String>) -> Self {
        Self {
            line,
            message: message.into(),
        }
    }

    fn global(message: impl Into<String>) -> Self {
        Self::at(0, message)
    }
}

impl fmt::Display for SpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.line == 0 {
            write!(f, "spec error: {}", self.message)
        } else {
            write!(f, "spec error (line {}): {}", self.line, self.message)
        }
    }
}

impl std::error::Error for SpecError {}

/// The noise model a campaign sweeps.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NoiseSpec {
    /// Code-capacity depolarizing noise: `p` is the physical qubit error
    /// rate, syndromes are ideal.
    CodeCapacity,
    /// Circuit-level noise through the memory-experiment detector error
    /// model: `p` is the uniform depolarizing rate of the extraction
    /// circuit.
    CircuitLevel {
        /// Syndrome-extraction rounds per shot.
        rounds: Rounds,
    },
}

/// How many syndrome-extraction rounds a circuit-level cell runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Rounds {
    /// A fixed round count.
    Fixed(usize),
    /// Per-code: the code's declared distance `d` (the paper's choice).
    /// Expansion fails for codes without a declared distance.
    Distance,
}

/// One decoder configuration of the sweep, in spec syntax:
///
/// * `bp:ITERS` / `layered-bp:ITERS` — plain min-sum BP,
/// * `bp-osd:ITERS:ORDER` — the BP-OSD baseline,
/// * `bp-sf:ITERS:CANDS:WMAX` — exhaustive-trial BP-SF,
/// * `bp-sf:ITERS:CANDS:WMAX:NS` — sampled-trial BP-SF.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DecoderSpec {
    /// Plain flooding min-sum BP.
    Bp {
        /// Iteration budget.
        iters: usize,
    },
    /// Plain layered min-sum BP.
    LayeredBp {
        /// Iteration budget.
        iters: usize,
    },
    /// The BP-OSD baseline.
    BpOsd {
        /// BP iteration budget.
        iters: usize,
        /// OSD combination-sweep order.
        order: usize,
    },
    /// The paper's BP-SF decoder.
    BpSf {
        /// Initial/trial BP iteration budget.
        iters: usize,
        /// Candidate-set size |Φ|.
        candidates: usize,
        /// Maximum trial weight `w_max`.
        w_max: usize,
        /// Sampled trials per weight (`None` = exhaustive trials).
        n_s: Option<usize>,
    },
}

impl DecoderSpec {
    fn parse(text: &str, line: usize) -> Result<Self, SpecError> {
        let mut parts = text.split(':');
        let head = parts.next().unwrap_or_default();
        let nums: Vec<usize> = parts
            .map(|p| {
                p.trim().parse().map_err(|_| {
                    SpecError::at(line, format!("decoder '{text}': '{p}' is not a count"))
                })
            })
            .collect::<Result<_, _>>()?;
        let arity = |want: &[usize]| -> Result<(), SpecError> {
            if want.contains(&nums.len()) {
                Ok(())
            } else {
                Err(SpecError::at(
                    line,
                    format!(
                        "decoder '{text}': '{head}' takes {} colon-separated counts, got {}",
                        want.iter()
                            .map(|n| n.to_string())
                            .collect::<Vec<_>>()
                            .join(" or "),
                        nums.len()
                    ),
                ))
            }
        };
        // Counts that must be positive for the decoder to be buildable
        // and useful: iteration budgets, |Φ|, w_max and n_s. A zero here
        // would otherwise surface as a construction panic deep in the
        // engine instead of a line-numbered spec error. (`bp-osd:…:0`
        // stays legal — order 0 is the standard OSD-0 baseline.)
        let positive = |what: &str, v: usize| -> Result<usize, SpecError> {
            if v > 0 {
                Ok(v)
            } else {
                Err(SpecError::at(
                    line,
                    format!("decoder '{text}': {what} must be positive"),
                ))
            }
        };
        match head {
            "bp" => {
                arity(&[1])?;
                Ok(DecoderSpec::Bp {
                    iters: positive("iterations", nums[0])?,
                })
            }
            "layered-bp" => {
                arity(&[1])?;
                Ok(DecoderSpec::LayeredBp {
                    iters: positive("iterations", nums[0])?,
                })
            }
            "bp-osd" => {
                arity(&[2])?;
                Ok(DecoderSpec::BpOsd {
                    iters: positive("iterations", nums[0])?,
                    order: nums[1],
                })
            }
            "bp-sf" => {
                arity(&[3, 4])?;
                Ok(DecoderSpec::BpSf {
                    iters: positive("iterations", nums[0])?,
                    candidates: positive("candidates", nums[1])?,
                    w_max: positive("w_max", nums[2])?,
                    n_s: nums
                        .get(3)
                        .copied()
                        .map(|n| positive("n_s", n))
                        .transpose()?,
                })
            }
            other => Err(SpecError::at(
                line,
                format!("unknown decoder '{other}' (expected bp, layered-bp, bp-osd, or bp-sf)"),
            )),
        }
    }

    /// The spec syntax for this decoder (parses back to `self`).
    pub fn spec_syntax(&self) -> String {
        match *self {
            DecoderSpec::Bp { iters } => format!("bp:{iters}"),
            DecoderSpec::LayeredBp { iters } => format!("layered-bp:{iters}"),
            DecoderSpec::BpOsd { iters, order } => format!("bp-osd:{iters}:{order}"),
            DecoderSpec::BpSf {
                iters,
                candidates,
                w_max,
                n_s: None,
            } => format!("bp-sf:{iters}:{candidates}:{w_max}"),
            DecoderSpec::BpSf {
                iters,
                candidates,
                w_max,
                n_s: Some(n_s),
            } => format!("bp-sf:{iters}:{candidates}:{w_max}:{n_s}"),
        }
    }

    /// The algorithm family, for report grouping (matches what the built
    /// decoder reports via `SyndromeDecoder::family`).
    pub fn family(&self) -> DecoderFamily {
        match self {
            DecoderSpec::Bp { .. } | DecoderSpec::LayeredBp { .. } => DecoderFamily::Bp,
            DecoderSpec::BpOsd { .. } => DecoderFamily::BpOsd,
            DecoderSpec::BpSf { .. } => DecoderFamily::BpSf,
        }
    }

    /// Whether this decoder exists at the given message precision.
    ///
    /// Only plain/layered BP has an `f32` fast path today; BP-OSD and
    /// BP-SF run the reference `f64` arithmetic, so expansion emits them
    /// once regardless of how many precisions the spec lists.
    pub fn supports(&self, precision: Precision) -> bool {
        match self {
            DecoderSpec::Bp { .. } | DecoderSpec::LayeredBp { .. } => true,
            DecoderSpec::BpOsd { .. } | DecoderSpec::BpSf { .. } => precision == Precision::F64,
        }
    }

    /// Builds the [`DecoderFactory`] for this decoder at a precision.
    ///
    /// # Panics
    ///
    /// Panics if the precision is unsupported (see [`Self::supports`]) —
    /// expansion filters those combinations out before the engine runs.
    pub fn factory(&self, precision: Precision) -> DecoderFactory {
        assert!(
            self.supports(precision),
            "{} has no {precision} variant",
            self.spec_syntax()
        );
        match *self {
            DecoderSpec::Bp { iters } => decoders::plain_bp_at(iters, precision),
            DecoderSpec::LayeredBp { iters } => decoders::layered_bp_at(iters, precision),
            DecoderSpec::BpOsd { iters, order } => decoders::bp_osd(iters, order),
            DecoderSpec::BpSf {
                iters,
                candidates,
                w_max,
                n_s,
            } => decoders::bp_sf(match n_s {
                None => bpsf_core::BpSfConfig::code_capacity(iters, candidates, w_max),
                Some(n_s) => bpsf_core::BpSfConfig::circuit_level(iters, candidates, w_max, n_s),
            }),
        }
    }
}

/// A fully parsed campaign specification.
#[derive(Debug, Clone, PartialEq)]
pub struct CampaignSpec {
    /// Campaign name — names the output directory and stamps every row.
    pub name: String,
    /// Base RNG seed; every chunk's seed is derived deterministically
    /// from it (see the engine's seeding rule).
    pub seed: u64,
    /// Code slugs from `qldpc_codes::PAPER_CODE_SLUGS`.
    pub codes: Vec<String>,
    /// Noise model.
    pub noise: NoiseSpec,
    /// Physical error rates to sweep.
    pub p_grid: Vec<f64>,
    /// Decoder configurations to sweep.
    pub decoders: Vec<DecoderSpec>,
    /// Message precisions to sweep (decoders without a reduced-precision
    /// variant run once, at `f64`).
    pub precisions: Vec<Precision>,
    /// Stop a cell when the Wilson CI half-width on its LER drops to
    /// this value …
    pub target_half_width: f64,
    /// … at this confidence level,
    pub confidence: f64,
    /// … or when total shots reach this cap, whichever comes first.
    pub max_shots: usize,
    /// Shots per adaptive chunk (the allocation granularity).
    pub chunk_shots: usize,
    /// Worker threads per chunk (`0` = one per available core). Pin this
    /// in the spec for cross-machine reproducibility: the per-thread
    /// seed split makes results a function of the thread count.
    pub threads: usize,
    /// Syndromes per `decode_batch` call within a thread.
    pub batch_size: usize,
}

impl Default for CampaignSpec {
    /// The documented key defaults, with the mandatory fields empty.
    fn default() -> Self {
        Self {
            name: String::new(),
            seed: 2026,
            codes: Vec::new(),
            noise: NoiseSpec::CodeCapacity,
            p_grid: Vec::new(),
            decoders: Vec::new(),
            precisions: vec![Precision::F64],
            target_half_width: 0.02,
            confidence: 0.95,
            max_shots: 10_000,
            chunk_shots: 256,
            threads: 0,
            batch_size: 32,
        }
    }
}

fn parse_list<T, E: fmt::Display>(
    value: &str,
    line: usize,
    what: &str,
    f: impl Fn(&str) -> Result<T, E>,
) -> Result<Vec<T>, SpecError> {
    let items: Vec<&str> = value
        .split(',')
        .map(str::trim)
        .filter(|s| !s.is_empty())
        .collect();
    if items.is_empty() {
        return Err(SpecError::at(line, format!("'{what}' must not be empty")));
    }
    // Duplicate entries would expand to grid cells with identical ids,
    // which the resume log could no longer tell apart — reject them like
    // duplicate keys. (`cells()` additionally enforces id uniqueness, so
    // value-level duplicates with different spellings are caught too.)
    for (i, item) in items.iter().enumerate() {
        if items[..i].contains(item) {
            return Err(SpecError::at(
                line,
                format!("duplicate {what} entry '{item}'"),
            ));
        }
    }
    items
        .into_iter()
        .map(|item| f(item).map_err(|e| SpecError::at(line, format!("{what} '{item}': {e}"))))
        .collect()
}

impl CampaignSpec {
    /// Parses a spec from the text of a spec file.
    ///
    /// # Errors
    ///
    /// Returns the first [`SpecError`] found: unknown or duplicate keys,
    /// malformed values, missing mandatory keys (`name`, `codes`,
    /// `noise`, `p`, `decoders`), or out-of-range stopping parameters.
    pub fn parse(text: &str) -> Result<Self, SpecError> {
        let mut spec = Self::default();
        let mut seen: Vec<String> = Vec::new();
        let mut rounds: Option<Rounds> = None;
        let mut rounds_line = 0usize;
        for (idx, raw) in text.lines().enumerate() {
            let line = idx + 1;
            let content = raw.split('#').next().unwrap_or_default().trim();
            if content.is_empty() {
                continue;
            }
            let Some((key, value)) = content.split_once('=') else {
                return Err(SpecError::at(
                    line,
                    format!("expected 'key = value', got '{content}'"),
                ));
            };
            let (key, value) = (key.trim(), value.trim());
            if value.is_empty() {
                return Err(SpecError::at(line, format!("'{key}' has no value")));
            }
            if seen.iter().any(|k| k == key) {
                return Err(SpecError::at(line, format!("duplicate key '{key}'")));
            }
            seen.push(key.to_string());
            match key {
                "name" => {
                    // The name becomes a directory under campaigns/, so
                    // restrict it to a safe charset — in particular `.`
                    // is out, or `name = ..` would escape the tree.
                    let safe = |c: char| c.is_ascii_alphanumeric() || c == '-' || c == '_';
                    if !value.chars().all(safe) {
                        return Err(SpecError::at(
                            line,
                            "'name' may only contain ASCII letters, digits, '-' and '_'",
                        ));
                    }
                    spec.name = value.to_string();
                }
                "seed" => {
                    spec.seed = value.parse().map_err(|_| {
                        SpecError::at(line, format!("'seed' is not a u64: {value}"))
                    })?;
                }
                "codes" => {
                    spec.codes = parse_list(value, line, "code", |slug| {
                        if qldpc_codes::PAPER_CODE_SLUGS.contains(&slug) {
                            Ok(slug.to_string())
                        } else {
                            Err(format!(
                                "unknown (expected one of: {})",
                                qldpc_codes::PAPER_CODE_SLUGS.join(", ")
                            ))
                        }
                    })?;
                }
                "noise" => {
                    spec.noise = match value {
                        "code-capacity" => NoiseSpec::CodeCapacity,
                        "circuit-level" => NoiseSpec::CircuitLevel {
                            rounds: Rounds::Distance, // overwritten below if `rounds` was set
                        },
                        other => {
                            return Err(SpecError::at(
                                line,
                                format!(
                                    "unknown noise model '{other}' (expected code-capacity or circuit-level)"
                                ),
                            ))
                        }
                    };
                }
                "rounds" => {
                    rounds_line = line;
                    rounds = Some(if value == "d" {
                        Rounds::Distance
                    } else {
                        match value.parse::<usize>() {
                            Ok(r) if r > 0 => Rounds::Fixed(r),
                            _ => {
                                return Err(SpecError::at(
                                    line,
                                    format!("'rounds' must be a positive count or 'd': {value}"),
                                ))
                            }
                        }
                    });
                }
                "p" => {
                    spec.p_grid = parse_list(value, line, "p", |p| {
                        p.parse::<f64>().map_err(|e| e.to_string()).and_then(|p| {
                            if p > 0.0 && p < 1.0 {
                                Ok(p)
                            } else {
                                Err("must be in (0, 1)".to_string())
                            }
                        })
                    })?;
                }
                "decoders" => {
                    spec.decoders =
                        parse_list(value, line, "decoder", |d| DecoderSpec::parse(d, line))?;
                }
                "precisions" => {
                    spec.precisions = parse_list(value, line, "precision", |p| {
                        Precision::ALL
                            .into_iter()
                            .find(|prec| prec.name() == p)
                            .ok_or("expected f64 or f32")
                    })?;
                }
                "target_half_width" => {
                    let v: f64 = value.parse().map_err(|_| {
                        SpecError::at(
                            line,
                            format!("'target_half_width' is not a number: {value}"),
                        )
                    })?;
                    if !(v > 0.0 && v < 0.5) {
                        return Err(SpecError::at(
                            line,
                            "'target_half_width' must be in (0, 0.5)",
                        ));
                    }
                    spec.target_half_width = v;
                }
                "confidence" => {
                    let v: f64 = value.parse().map_err(|_| {
                        SpecError::at(line, format!("'confidence' is not a number: {value}"))
                    })?;
                    if !(v > 0.0 && v < 1.0) {
                        return Err(SpecError::at(line, "'confidence' must be in (0, 1)"));
                    }
                    spec.confidence = v;
                }
                "max_shots" => {
                    spec.max_shots = parse_positive(value, key, line)?;
                }
                "chunk_shots" => {
                    spec.chunk_shots = parse_positive(value, key, line)?;
                }
                "threads" => {
                    spec.threads = value.parse().map_err(|_| {
                        SpecError::at(line, format!("'threads' is not a count: {value}"))
                    })?;
                }
                "batch_size" => {
                    spec.batch_size = parse_positive(value, key, line)?;
                }
                other => {
                    return Err(SpecError::at(line, format!("unknown key '{other}'")));
                }
            }
        }
        if let Some(r) = rounds {
            match &mut spec.noise {
                NoiseSpec::CircuitLevel { rounds } => *rounds = r,
                NoiseSpec::CodeCapacity => {
                    return Err(SpecError::at(
                        rounds_line,
                        "'rounds' only applies to circuit-level noise",
                    ));
                }
            }
        }
        for (key, missing) in [
            ("name", spec.name.is_empty()),
            ("codes", spec.codes.is_empty()),
            ("p", spec.p_grid.is_empty()),
            ("decoders", spec.decoders.is_empty()),
        ] {
            if missing {
                return Err(SpecError::global(format!(
                    "mandatory key '{key}' is missing"
                )));
            }
        }
        if !seen.iter().any(|k| k == "noise") {
            return Err(SpecError::global("mandatory key 'noise' is missing"));
        }
        Ok(spec)
    }

    /// Reads and parses a spec file.
    ///
    /// # Errors
    ///
    /// I/O problems are reported as a [`SpecError`] naming the path.
    pub fn from_file(path: &std::path::Path) -> Result<Self, SpecError> {
        let text = std::fs::read_to_string(path)
            .map_err(|e| SpecError::global(format!("cannot read {}: {e}", path.display())))?;
        Self::parse(&text)
    }

    /// The canonical one-line rendering of the spec, used to fingerprint
    /// result logs: two specs expand to the same campaign iff their
    /// canonical forms are equal.
    pub fn canonical(&self) -> String {
        let noise = match self.noise {
            NoiseSpec::CodeCapacity => "code-capacity".to_string(),
            NoiseSpec::CircuitLevel {
                rounds: Rounds::Fixed(r),
            } => format!("circuit-level,rounds={r}"),
            NoiseSpec::CircuitLevel {
                rounds: Rounds::Distance,
            } => "circuit-level,rounds=d".to_string(),
        };
        format!(
            "name={};seed={};codes={};noise={};p={};decoders={};precisions={};target_half_width={};confidence={};max_shots={};chunk_shots={};threads={};batch_size={}",
            self.name,
            self.seed,
            self.codes.join(","),
            noise,
            self.p_grid
                .iter()
                .map(|p| p.to_string())
                .collect::<Vec<_>>()
                .join(","),
            self.decoders
                .iter()
                .map(DecoderSpec::spec_syntax)
                .collect::<Vec<_>>()
                .join(","),
            self.precisions
                .iter()
                .map(|p| p.name())
                .collect::<Vec<_>>()
                .join(","),
            self.target_half_width,
            self.confidence,
            self.max_shots,
            self.chunk_shots,
            self.threads,
            self.batch_size,
        )
    }

    /// FNV-1a hash of [`Self::canonical`], stamped into every log row so
    /// resuming with an edited spec is caught instead of silently mixing
    /// incompatible grids.
    pub fn fingerprint(&self) -> String {
        const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
        let mut h = FNV_OFFSET;
        for b in self.canonical().bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(FNV_PRIME);
        }
        format!("{h:016x}")
    }

    /// Expands the grid into cells, in deterministic order (code → p →
    /// decoder → precision), skipping decoder × precision combinations
    /// the decoder does not support.
    ///
    /// # Errors
    ///
    /// Fails if `rounds = d` is requested for a code without a declared
    /// distance.
    pub fn cells(&self) -> Result<Vec<Cell>, SpecError> {
        let mut cells = Vec::new();
        for slug in &self.codes {
            let code = qldpc_codes::paper_code(slug).expect("slugs are validated at parse time");
            let rounds = match self.noise {
                NoiseSpec::CodeCapacity => 0,
                NoiseSpec::CircuitLevel {
                    rounds: Rounds::Fixed(r),
                } => r,
                NoiseSpec::CircuitLevel {
                    rounds: Rounds::Distance,
                } => code.d().ok_or_else(|| {
                    SpecError::global(format!(
                        "code '{slug}' has no declared distance; use 'rounds = <count>'"
                    ))
                })?,
            };
            for &p in &self.p_grid {
                for decoder in &self.decoders {
                    for &precision in &self.precisions {
                        if !decoder.supports(precision) {
                            continue;
                        }
                        cells.push(Cell {
                            index: cells.len(),
                            code_slug: slug.clone(),
                            p,
                            rounds,
                            decoder: *decoder,
                            precision,
                        });
                    }
                }
            }
        }
        // The resume log is keyed by cell id; two cells sharing one id
        // (e.g. `p = 0.02, 0.020` — distinct spellings, same value)
        // would be conflated on replay, so reject the spec instead.
        let mut ids: Vec<String> = cells.iter().map(Cell::id).collect();
        ids.sort();
        if let Some(dup) = ids.windows(2).find(|w| w[0] == w[1]) {
            return Err(SpecError::global(format!(
                "the grid contains two identical cells '{}'; remove the duplicate spec entry",
                dup[0]
            )));
        }
        Ok(cells)
    }
}

fn parse_positive(value: &str, key: &str, line: usize) -> Result<usize, SpecError> {
    match value.parse::<usize>() {
        Ok(v) if v > 0 => Ok(v),
        _ => Err(SpecError::at(
            line,
            format!("'{key}' must be a positive count: {value}"),
        )),
    }
}

/// One point of the expanded campaign grid.
#[derive(Debug, Clone, PartialEq)]
pub struct Cell {
    /// Position in the full (unsharded) grid — the input to the
    /// deterministic chunk-seed derivation and to shard selection.
    pub index: usize,
    /// Code slug (`qldpc_codes::paper_code` key).
    pub code_slug: String,
    /// Physical error rate.
    pub p: f64,
    /// Syndrome-extraction rounds (`0` for code-capacity noise).
    pub rounds: usize,
    /// Decoder configuration.
    pub decoder: DecoderSpec,
    /// Message precision.
    pub precision: Precision,
}

impl Cell {
    /// The stable identifier rows use to match cells when a log is
    /// replayed on resume.
    ///
    /// Ids describe the cell's *contents*, not its grid position — but
    /// resume still requires a byte-for-byte unchanged spec (the engine
    /// checks the spec fingerprint), because chunk seeds derive from the
    /// position-dependent [`Cell::index`]: editing the grid would move
    /// indices under unchanged ids and silently change the shot streams.
    pub fn id(&self) -> String {
        let noise = if self.rounds == 0 {
            "cc".to_string()
        } else {
            format!("cl:r{}", self.rounds)
        };
        format!(
            "{}|{}|p={}|{}{}",
            self.code_slug,
            noise,
            self.p,
            self.decoder.spec_syntax(),
            self.precision.label_suffix(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SMOKE: &str = "\
# A comment line.
name = smoke
seed = 7
codes = gross, bb72   # trailing comment
noise = code-capacity
p = 0.02, 0.04
decoders = bp:40, bp-osd:40:10
precisions = f64, f32
target_half_width = 0.03
max_shots = 400
chunk_shots = 100
threads = 2
";

    #[test]
    fn parses_the_reference_spec() {
        let spec = CampaignSpec::parse(SMOKE).unwrap();
        assert_eq!(spec.name, "smoke");
        assert_eq!(spec.seed, 7);
        assert_eq!(spec.codes, vec!["gross", "bb72"]);
        assert_eq!(spec.noise, NoiseSpec::CodeCapacity);
        assert_eq!(spec.p_grid, vec![0.02, 0.04]);
        assert_eq!(
            spec.decoders,
            vec![
                DecoderSpec::Bp { iters: 40 },
                DecoderSpec::BpOsd {
                    iters: 40,
                    order: 10
                }
            ]
        );
        assert_eq!(spec.precisions, vec![Precision::F64, Precision::F32]);
        assert_eq!(spec.target_half_width, 0.03);
        assert_eq!(spec.confidence, 0.95); // default
        assert_eq!((spec.max_shots, spec.chunk_shots), (400, 100));
        assert_eq!(spec.threads, 2);
        assert_eq!(spec.batch_size, 32); // default
    }

    #[test]
    fn expansion_order_and_precision_filtering() {
        let spec = CampaignSpec::parse(SMOKE).unwrap();
        let cells = spec.cells().unwrap();
        // Per code × p: bp at f64 + f32, bp-osd only at f64 ⇒ 3 cells.
        assert_eq!(cells.len(), 2 * 2 * 3);
        assert_eq!(cells[0].id(), "gross|cc|p=0.02|bp:40");
        assert_eq!(cells[1].id(), "gross|cc|p=0.02|bp:40@f32");
        assert_eq!(cells[2].id(), "gross|cc|p=0.02|bp-osd:40:10");
        // Indices are the full-grid positions.
        for (i, c) in cells.iter().enumerate() {
            assert_eq!(c.index, i);
        }
        // Ids are unique.
        let mut ids: Vec<String> = cells.iter().map(Cell::id).collect();
        ids.sort();
        ids.dedup();
        assert_eq!(ids.len(), cells.len());
    }

    #[test]
    fn value_level_duplicate_cells_are_rejected_at_expansion() {
        // "0.1" and "0.10" pass the textual duplicate check but parse to
        // the same value, so the expanded cells would share an id — the
        // resume log could not tell them apart.
        let spec = CampaignSpec::parse(
            "name = x\ncodes = gross\nnoise = code-capacity\np = 0.1, 0.10\ndecoders = bp:1",
        )
        .unwrap();
        let err = spec.cells().unwrap_err();
        assert!(err.to_string().contains("identical cells"), "{err}");
    }

    #[test]
    fn osd_order_zero_is_the_osd0_baseline() {
        // Order 0 is a real configuration (OSD-0) and must stay legal,
        // unlike zero iteration budgets.
        let d = DecoderSpec::parse("bp-osd:100:0", 1).unwrap();
        assert_eq!(
            d,
            DecoderSpec::BpOsd {
                iters: 100,
                order: 0
            }
        );
    }

    #[test]
    fn decoder_syntax_round_trips() {
        for text in [
            "bp:100",
            "layered-bp:50",
            "bp-osd:1000:10",
            "bp-sf:100:50:10",
            "bp-sf:100:50:10:10",
        ] {
            let d = DecoderSpec::parse(text, 1).unwrap();
            assert_eq!(d.spec_syntax(), text);
            // Factories build and label consistently with the family.
            let code = qldpc_codes::paper_code("bb72").unwrap();
            let hz = code.hz();
            let dec = d.factory(Precision::F64)(hz, &vec![0.01; hz.cols()]);
            assert_eq!(dec.family(), d.family());
        }
    }

    #[test]
    fn circuit_level_rounds_variants() {
        let base = "name = x\ncodes = bb72\nnoise = circuit-level\np = 0.001\ndecoders = bp:20\n";
        // Default rounds: the code distance.
        let spec = CampaignSpec::parse(base).unwrap();
        let cells = spec.cells().unwrap();
        assert_eq!(cells[0].rounds, 6); // bb72 has d = 6
        assert_eq!(cells[0].id(), "bb72|cl:r6|p=0.001|bp:20");
        // Fixed rounds override.
        let spec = CampaignSpec::parse(&format!("{base}rounds = 3\n")).unwrap();
        assert_eq!(spec.cells().unwrap()[0].rounds, 3);
    }

    #[test]
    fn rejects_malformed_specs() {
        let cases: &[(&str, &str)] = &[
            ("codes = gross\nnoise = code-capacity\np = 0.1\ndecoders = bp:1", "'name' is missing"),
            ("name = x\nnoise = code-capacity\np = 0.1\ndecoders = bp:1", "'codes' is missing"),
            ("name = x\ncodes = gross\np = 0.1\ndecoders = bp:1", "'noise' is missing"),
            ("name = x\ncodes = steane\nnoise = code-capacity\np = 0.1\ndecoders = bp:1", "unknown"),
            ("name = x\ncodes = gross\nnoise = code-capacity\np = 1.5\ndecoders = bp:1", "(0, 1)"),
            ("name = x\ncodes = gross\nnoise = code-capacity\np = 0.1\ndecoders = bp", "counts"),
            ("name = x\ncodes = gross\nnoise = code-capacity\np = 0.1\ndecoders = osd:1", "unknown decoder"),
            ("name = x\ncodes = gross\nnoise = code-capacity\np = 0.1\ndecoders = bp:1\nrounds = 2", "only applies"),
            ("name = x\nname = y\ncodes = gross\nnoise = code-capacity\np = 0.1\ndecoders = bp:1", "duplicate"),
            ("name = x\ncodes = gross\nnoise = code-capacity\np = 0.1\ndecoders = bp:1\nbogus = 1", "unknown key"),
            ("name = x\ncodes = gross\nnoise = code-capacity\np = 0.1\ndecoders = bp:1\nchunk_shots = 0", "positive"),
            ("name = a b\ncodes = gross\nnoise = code-capacity\np = 0.1\ndecoders = bp:1", "ASCII letters"),
            ("name = ..\ncodes = gross\nnoise = code-capacity\np = 0.1\ndecoders = bp:1", "ASCII letters"),
            ("name = x\ncodes = gross\nnoise = code-capacity\np = 0.1\ndecoders = bp:1\nprecisions = f16", "f64 or f32"),
            ("name = x\ncodes = gross\nnoise = code-capacity\np = 0.1\ndecoders = bp:0", "must be positive"),
            ("name = x\ncodes = gross\nnoise = code-capacity\np = 0.1\ndecoders = bp-sf:10:0:2", "candidates must be positive"),
            ("name = x\ncodes = gross\nnoise = code-capacity\np = 0.1\ndecoders = bp-sf:10:8:2:0", "n_s must be positive"),
            ("name = x\ncodes = gross, gross\nnoise = code-capacity\np = 0.1\ndecoders = bp:1", "duplicate code entry"),
            ("name = x\ncodes = gross\nnoise = circuit-level\nrounds = 0\np = 0.1\ndecoders = bp:1", "positive count or 'd'"),
            ("name = x\ncodes = gross\nnoise = code-capacity\np = 0.1, 0.1\ndecoders = bp:1", "duplicate p entry"),
        ];
        for (text, needle) in cases {
            let err = CampaignSpec::parse(text).unwrap_err();
            assert!(
                err.to_string().contains(needle),
                "spec {text:?} gave '{err}', expected to contain '{needle}'"
            );
        }
    }

    #[test]
    fn fingerprint_tracks_the_grid() {
        let a = CampaignSpec::parse(SMOKE).unwrap();
        let b = CampaignSpec::parse(SMOKE).unwrap();
        assert_eq!(a.fingerprint(), b.fingerprint());
        let mut c = a.clone();
        c.seed += 1;
        assert_ne!(a.fingerprint(), c.fingerprint());
        let mut d = a.clone();
        d.p_grid.push(0.08);
        assert_ne!(a.fingerprint(), d.fingerprint());
    }
}
