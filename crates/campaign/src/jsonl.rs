//! Minimal JSON-lines support for the campaign result logs.
//!
//! The workspace is hermetic (no serde), and the log schema is a flat
//! object of strings, numbers, booleans and `null` — so this module
//! hand-rolls exactly that subset: a writer that emits fields in a
//! fixed order with deterministic number formatting (Rust's shortest
//! round-trip `Display` for `f64`), and a parser for one flat object
//! per line. Determinism matters: re-running a campaign with the same
//! spec and seed must reproduce byte-identical rows, which is pinned by
//! `tests/determinism.rs`.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A parsed flat JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// A string (unescaped).
    Str(String),
    /// A number, kept as its literal text so integer fields round-trip
    /// exactly (no detour through `f64`).
    Num(String),
    /// A boolean.
    Bool(bool),
    /// JSON `null`.
    Null,
}

impl JsonValue {
    /// The value as a string, if it is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value parsed as a `u64`, if it is a number.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            JsonValue::Num(n) => n.parse().ok(),
            _ => None,
        }
    }

    /// The value parsed as a `usize`, if it is a number.
    pub fn as_usize(&self) -> Option<usize> {
        match self {
            JsonValue::Num(n) => n.parse().ok(),
            _ => None,
        }
    }

    /// The value parsed as an `f64`, if it is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Num(n) => n.parse().ok(),
            _ => None,
        }
    }
}

/// Escapes `s` as the contents of a JSON string literal.
fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Builds one flat JSON object, preserving field insertion order.
#[derive(Debug, Default)]
pub struct ObjectWriter {
    buf: String,
}

impl ObjectWriter {
    /// Starts an empty object.
    pub fn new() -> Self {
        Self::default()
    }

    fn sep(&mut self) {
        if !self.buf.is_empty() {
            self.buf.push(',');
        }
    }

    /// Appends a string field.
    pub fn str(&mut self, key: &str, value: &str) -> &mut Self {
        self.sep();
        let _ = write!(self.buf, "\"{}\":\"{}\"", escape(key), escape(value));
        self
    }

    /// Appends an unsigned integer field.
    pub fn uint(&mut self, key: &str, value: u64) -> &mut Self {
        self.sep();
        let _ = write!(self.buf, "\"{}\":{}", escape(key), value);
        self
    }

    /// Appends a float field using Rust's shortest round-trip `Display`
    /// (deterministic, and parses back to the identical `f64`).
    ///
    /// # Panics
    ///
    /// Panics on non-finite values — the log schema has no use for them
    /// and JSON cannot represent them.
    pub fn float(&mut self, key: &str, value: f64) -> &mut Self {
        assert!(value.is_finite(), "JSON numbers must be finite: {key}");
        self.sep();
        let _ = write!(self.buf, "\"{}\":{}", escape(key), value);
        self
    }

    /// Appends an optional unsigned integer as a number or `null`.
    pub fn opt_uint(&mut self, key: &str, value: Option<u64>) -> &mut Self {
        self.sep();
        match value {
            Some(v) => {
                let _ = write!(self.buf, "\"{}\":{}", escape(key), v);
            }
            None => {
                let _ = write!(self.buf, "\"{}\":null", escape(key));
            }
        }
        self
    }

    /// Finishes the object into one line (no trailing newline).
    pub fn finish(&self) -> String {
        format!("{{{}}}", self.buf)
    }
}

/// An error from [`parse_object`], with enough context to point at the
/// offending log line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// What went wrong.
    pub message: String,
    /// Byte offset into the line.
    pub at: usize,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} (at byte {})", self.message, self.at)
    }
}

impl std::error::Error for ParseError {}

struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn err<T>(&self, message: impl Into<String>) -> Result<T, ParseError> {
        Err(ParseError {
            message: message.into(),
            at: self.pos,
        })
    }

    fn skip_ws(&mut self) {
        while self.pos < self.bytes.len() && self.bytes[self.pos].is_ascii_whitespace() {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), ParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            self.err(format!("expected '{}'", b as char))
        }
    }

    fn parse_string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let Some(b) = self.peek() else {
                return self.err("unterminated string");
            };
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(esc) = self.peek() else {
                        return self.err("unterminated escape");
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            if self.pos + 4 > self.bytes.len() {
                                return self.err("truncated \\u escape");
                            }
                            let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
                                .ok()
                                .and_then(|h| u32::from_str_radix(h, 16).ok());
                            let Some(code) = hex.and_then(char::from_u32) else {
                                return self.err("invalid \\u escape");
                            };
                            out.push(code);
                            self.pos += 4;
                        }
                        other => {
                            return self.err(format!("unknown escape '\\{}'", other as char));
                        }
                    }
                }
                b => {
                    // Collect the full UTF-8 sequence starting at `b`.
                    let start = self.pos - 1;
                    let len = match b {
                        _ if b < 0x80 => 1,
                        _ if b >> 5 == 0b110 => 2,
                        _ if b >> 4 == 0b1110 => 3,
                        _ => 4,
                    };
                    if start + len > self.bytes.len() {
                        return self.err("truncated UTF-8 sequence");
                    }
                    let Ok(s) = std::str::from_utf8(&self.bytes[start..start + len]) else {
                        return self.err("invalid UTF-8 in string");
                    };
                    out.push_str(s);
                    self.pos = start + len;
                }
            }
        }
    }

    fn parse_value(&mut self) -> Result<JsonValue, ParseError> {
        self.skip_ws();
        match self.peek() {
            Some(b'"') => Ok(JsonValue::Str(self.parse_string()?)),
            Some(b't') => self.parse_keyword("true", JsonValue::Bool(true)),
            Some(b'f') => self.parse_keyword("false", JsonValue::Bool(false)),
            Some(b'n') => self.parse_keyword("null", JsonValue::Null),
            Some(b) if b == b'-' || b.is_ascii_digit() => {
                let start = self.pos;
                while let Some(b) = self.peek() {
                    if b.is_ascii_digit() || matches!(b, b'-' | b'+' | b'.' | b'e' | b'E') {
                        self.pos += 1;
                    } else {
                        break;
                    }
                }
                let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
                if text.parse::<f64>().is_err() {
                    return self.err(format!("malformed number '{text}'"));
                }
                Ok(JsonValue::Num(text.to_string()))
            }
            _ => self.err("expected a value"),
        }
    }

    fn parse_keyword(&mut self, word: &str, value: JsonValue) -> Result<JsonValue, ParseError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            self.err(format!("expected '{word}'"))
        }
    }
}

/// Parses one line holding a flat JSON object (string/number/bool/null
/// values only — the full log schema).
///
/// # Errors
///
/// Returns a [`ParseError`] on malformed input, including nested
/// objects/arrays, which the log schema never contains.
///
/// # Examples
///
/// ```
/// use qldpc_campaign::jsonl::{parse_object, JsonValue};
///
/// let obj = parse_object(r#"{"kind":"cell","shots":400,"ler":0.0075}"#).unwrap();
/// assert_eq!(obj["kind"], JsonValue::Str("cell".into()));
/// assert_eq!(obj["shots"].as_usize(), Some(400));
/// assert_eq!(obj["ler"].as_f64(), Some(0.0075));
/// ```
pub fn parse_object(line: &str) -> Result<BTreeMap<String, JsonValue>, ParseError> {
    let mut c = Cursor {
        bytes: line.as_bytes(),
        pos: 0,
    };
    c.skip_ws();
    c.expect(b'{')?;
    let mut map = BTreeMap::new();
    c.skip_ws();
    if c.peek() == Some(b'}') {
        c.pos += 1;
    } else {
        loop {
            c.skip_ws();
            let key = c.parse_string()?;
            c.skip_ws();
            c.expect(b':')?;
            let value = c.parse_value()?;
            if map.insert(key.clone(), value).is_some() {
                return c.err(format!("duplicate key '{key}'"));
            }
            c.skip_ws();
            match c.peek() {
                Some(b',') => c.pos += 1,
                Some(b'}') => {
                    c.pos += 1;
                    break;
                }
                _ => return c.err("expected ',' or '}'"),
            }
        }
    }
    c.skip_ws();
    if c.pos != c.bytes.len() {
        return c.err("trailing content after object");
    }
    Ok(map)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn writer_round_trips_through_the_parser() {
        let mut w = ObjectWriter::new();
        w.str("kind", "cell")
            .uint("shots", 400)
            .float("ler", 0.007_5)
            .float("p", 0.001)
            .opt_uint("d", Some(12))
            .opt_uint("d_unknown", None)
            .str("weird", "a\"b\\c\nd\tΦ");
        let line = w.finish();
        let obj = parse_object(&line).unwrap();
        assert_eq!(obj["kind"].as_str(), Some("cell"));
        assert_eq!(obj["shots"].as_usize(), Some(400));
        assert_eq!(obj["ler"].as_f64(), Some(0.0075));
        assert_eq!(obj["p"].as_f64(), Some(0.001));
        assert_eq!(obj["d"].as_u64(), Some(12));
        assert_eq!(obj["d_unknown"], JsonValue::Null);
        assert_eq!(obj["weird"].as_str(), Some("a\"b\\c\nd\tΦ"));
    }

    #[test]
    fn float_formatting_is_shortest_round_trip() {
        let mut w = ObjectWriter::new();
        w.float("a", 0.1).float("b", 1e-9).float("c", 2026.0);
        assert_eq!(w.finish(), r#"{"a":0.1,"b":0.000000001,"c":2026}"#);
    }

    #[test]
    fn integer_fields_round_trip_exactly_even_above_2_53() {
        let big = u64::MAX - 7;
        let mut w = ObjectWriter::new();
        w.uint("seed", big);
        let obj = parse_object(&w.finish()).unwrap();
        assert_eq!(obj["seed"].as_u64(), Some(big));
    }

    #[test]
    fn parser_rejects_malformed_lines() {
        for bad in [
            "",
            "{",
            "{}extra",
            r#"{"a":}"#,
            r#"{"a":1,}"#,
            r#"{"a":[1]}"#,
            r#"{"a":1 "b":2}"#,
            r#"{"a":1,"a":2}"#,
            r#"{"a":1e}"#,
        ] {
            assert!(parse_object(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn empty_object_parses() {
        assert!(parse_object("{}").unwrap().is_empty());
        assert!(parse_object("  { }  ").unwrap().is_empty());
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn non_finite_floats_are_rejected_at_write_time() {
        ObjectWriter::new().float("x", f64::NAN);
    }
}
