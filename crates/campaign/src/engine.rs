//! The adaptive campaign runner.
//!
//! Executes an expanded spec cell by cell through the batched
//! thread-parallel Monte Carlo runners in `qldpc-sim`, growing each
//! cell's shot count in chunks until the Wilson confidence interval on
//! its LER is narrow enough (or a shot cap fires), and appending every
//! step to a JSONL log that makes the whole campaign resumable.
//!
//! # Seeding and determinism
//!
//! Chunk `c` of cell `i` (full-grid index) runs with the derived seed
//! `splitmix64(splitmix64(splitmix64(base) ^ i) ^ c)`, masked to 56
//! bits; within a chunk the batched runner gives thread `t` the seed
//! `chunk_seed + t` (the masking keeps that addition overflow-free). For a
//! fixed spec (including a pinned `threads`) every decoded shot is
//! therefore a pure function of the spec — re-running, resuming after a
//! kill, or re-sharding a campaign reproduces byte-identical rows,
//! which `tests/determinism.rs` pins. (Final rows stamp the git
//! revision current at write time, so byte identity is per revision;
//! the decoded *results* do not depend on it.)
//!
//! # Resume semantics
//!
//! The log is append-only and replayed on startup: cells with a final
//! row are skipped; cells with chunk rows continue from the recorded
//! cumulative counts at the next chunk index. Rows carry the spec
//! fingerprint, so resuming with an *edited* spec fails loudly instead
//! of silently mixing incompatible grids; every row also records the
//! *resolved* thread count, so a `threads = 0` (auto) campaign resumed
//! on a machine with a different core count is refused outright rather
//! than mixing incompatible per-thread shot streams in one log.

use crate::report;
use crate::row::{CellRow, ChunkRow, LogRecord};
use crate::spec::{CampaignSpec, Cell, NoiseSpec, SpecError};
use bpsf_core::stats::wilson_interval;
use qldpc_circuit::{DetectorErrorModel, MemoryExperiment, NoiseModel};
use qldpc_codes::CssCode;
use qldpc_sim::{
    run_circuit_level_batched, run_code_capacity_batched, BatchConfig, CircuitLevelConfig,
    CodeCapacityConfig, RunReport,
};
use std::collections::BTreeMap;
use std::io::Write as _;
use std::path::{Path, PathBuf};

/// Errors surfaced by [`run_campaign`].
#[derive(Debug)]
pub enum CampaignError {
    /// The spec failed to parse or expand.
    Spec(SpecError),
    /// Filesystem trouble (log/report paths).
    Io(String),
    /// The existing log is malformed or belongs to a different spec.
    Log(String),
}

impl std::fmt::Display for CampaignError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CampaignError::Spec(e) => write!(f, "{e}"),
            CampaignError::Io(e) => write!(f, "I/O error: {e}"),
            CampaignError::Log(e) => write!(f, "result log error: {e}"),
        }
    }
}

impl std::error::Error for CampaignError {}

impl From<SpecError> for CampaignError {
    fn from(e: SpecError) -> Self {
        CampaignError::Spec(e)
    }
}

/// How to execute a campaign run.
#[derive(Debug, Clone)]
pub struct RunOptions {
    /// Output directory; holds the JSONL log and the generated reports.
    pub out_dir: PathBuf,
    /// Run only cells with `index % m == i` for `shard = Some((i, m))` —
    /// the unit of multi-machine fan-out. Sharded runs log to
    /// shard-suffixed files; merge them with `campaign report`.
    pub shard: Option<(usize, usize)>,
    /// Suppress per-chunk progress on stdout.
    pub quiet: bool,
    /// Decode through a networked service at this address (TCP
    /// `host:port`, or a UDS path when it contains `/`) instead of
    /// in-process decoders. The service must have every cell registered
    /// under its cell id (see [`cell_decoder_inputs`]); `qldpc-serve
    /// --spec` does exactly that. Deterministic decoder families (BP,
    /// BP-OSD) produce byte-identical rows either way; BP-SF cells are
    /// refused — their sampled trials consume a decoder-local RNG
    /// stream that cannot be reproduced remotely.
    pub service: Option<String>,
}

impl RunOptions {
    /// Runs everything into `out_dir`, unsharded, with progress output.
    pub fn new(out_dir: impl Into<PathBuf>) -> Self {
        Self {
            out_dir: out_dir.into(),
            shard: None,
            quiet: false,
            service: None,
        }
    }
}

/// What a campaign run did.
#[derive(Debug)]
pub struct CampaignOutcome {
    /// Cells in this run's (shard of the) grid.
    pub cells_total: usize,
    /// Cells actually executed (at least one new chunk).
    pub cells_run: usize,
    /// Cells skipped because the log already held their final row.
    pub cells_skipped: usize,
    /// Every final row now in the log, in cell order.
    pub rows: Vec<CellRow>,
    /// Path of the JSONL log.
    pub results_path: PathBuf,
    /// Path of the regenerated `REPRO.md` (unsharded runs only).
    pub report_path: Option<PathBuf>,
}

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// The deterministic seed of chunk `chunk` of full-grid cell
/// `cell_index` under base seed `base` (see the module docs).
///
/// The top byte is masked off: the batched runners derive per-thread
/// seeds as `chunk_seed + t`, and a full-range u64 could overflow that
/// addition (panicking in debug builds) — 2^56 seeds leave the spread
/// intact with headroom for any plausible thread count.
pub fn chunk_seed(base: u64, cell_index: usize, chunk: usize) -> u64 {
    splitmix64(splitmix64(splitmix64(base) ^ cell_index as u64) ^ chunk as u64) & (u64::MAX >> 8)
}

/// `git rev-parse --short=12 HEAD` of the *source checkout* (resolved
/// via the compile-time crate path, not the process cwd — running the
/// binary from inside some other repository must not stamp that repo's
/// revision), with a `-dirty` suffix when the checkout has uncommitted
/// changes (a clean-looking rev must not be attributed to code that
/// did not produce the results), or `"unknown"` when the checkout is
/// gone (rows must always be writable).
pub fn git_rev() -> String {
    let git = |args: &[&str]| {
        std::process::Command::new("git")
            .args(["-C", env!("CARGO_MANIFEST_DIR")])
            .args(args)
            .output()
            .ok()
            .filter(|o| o.status.success())
            .and_then(|o| String::from_utf8(o.stdout).ok())
    };
    let Some(rev) = git(&["rev-parse", "--short=12", "HEAD"])
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
    else {
        return "unknown".to_string();
    };
    match git(&["status", "--porcelain"]) {
        Some(status) if status.trim().is_empty() => rev,
        // Dirty — or unknowable, which must not masquerade as clean.
        _ => format!("{rev}-dirty"),
    }
}

/// The `#hx` twin of a code-capacity cell id — the registration name
/// of the cell's *second* decoder (X checks seeing Z errors).
pub fn cell_hx_name(cell_id: &str) -> String {
    format!("{cell_id}#hx")
}

/// The (name, check matrix, priors) registrations a decode server
/// needs to serve a cell byte-identically — exported so `serve --spec`
/// registers exactly what the in-process engine would hand each
/// decoder factory. Code-capacity cells register **two** decoders —
/// `Hz` under the cell id (Z checks seeing X errors) and `Hx` under
/// [`cell_hx_name`] (X checks seeing Z errors), both against the
/// marginalized flip rate `2p/3` — because the code-capacity runner
/// decodes both error species. Circuit-level cells register one: the
/// detector error model of the cell's memory experiment.
pub fn cell_decoder_inputs(
    spec: &CampaignSpec,
    cell: &Cell,
) -> Vec<(String, qldpc_gf2::SparseBitMatrix, Vec<f64>)> {
    let code = qldpc_codes::paper_code(&cell.code_slug).expect("slugs validated at parse time");
    match spec.noise {
        NoiseSpec::CodeCapacity => {
            let marginal = 2.0 * cell.p / 3.0;
            let priors = vec![marginal; code.n()];
            vec![
                (cell.id(), code.hz().clone(), priors.clone()),
                (cell_hx_name(&cell.id()), code.hx().clone(), priors),
            ]
        }
        NoiseSpec::CircuitLevel { .. } => {
            let noise = NoiseModel::uniform_depolarizing(cell.p);
            let dem = MemoryExperiment::memory_z(&code, cell.rounds, &noise).detector_error_model();
            vec![(cell.id(), dem.check_matrix().clone(), dem.priors().to_vec())]
        }
    }
}

/// The log file name for a given shard selection.
pub fn results_file_name(shard: Option<(usize, usize)>) -> String {
    match shard {
        None => "results.jsonl".to_string(),
        Some((i, m)) => format!("results.shard{i}of{m}.jsonl"),
    }
}

/// A half-finished cell's state replayed from chunk rows.
#[derive(Debug, Clone, Copy)]
struct PartialCell {
    next_chunk: usize,
    shots: usize,
    failures: usize,
    unsolved: usize,
    bp_iters: u64,
    /// The resolved thread count the recorded chunks ran with — resume
    /// refuses to continue the cell under a different one.
    threads: usize,
}

/// Per-cell state replayed from an existing log.
#[derive(Debug, Default)]
struct Replayed {
    finals: BTreeMap<String, CellRow>,
    partial: BTreeMap<String, PartialCell>,
}

/// Repairs a log whose last append was torn by a hard kill (power loss,
/// `kill -9` between the row text and its newline, or mid-row): a
/// complete unterminated last row gets its newline; an unparseable
/// trailing fragment is dropped — its chunk was never replayable, and
/// deterministic seeding means the resumed run re-decodes it
/// identically. Returns the repaired text. Parse errors anywhere *not*
/// at an unterminated tail are real corruption and stay fatal upstream.
fn repair_torn_tail(path: &Path, text: String) -> Result<String, CampaignError> {
    if text.is_empty() || text.ends_with('\n') {
        return Ok(text);
    }
    let io_err =
        |e: std::io::Error| CampaignError::Io(format!("repairing {}: {e}", path.display()));
    let tail_start = text.rfind('\n').map_or(0, |i| i + 1);
    if crate::row::parse_record(&text[tail_start..]).is_ok() {
        // Complete row, missing terminator: append just the newline —
        // no truncation, so a crash mid-repair cannot lose anything.
        let mut f = std::fs::OpenOptions::new()
            .append(true)
            .open(path)
            .map_err(io_err)?;
        f.write_all(b"\n")
            .and_then(|()| f.flush())
            .map_err(io_err)?;
        return Ok(format!("{text}\n"));
    }
    // Unparseable fragment: drop it via a temp file + atomic rename, so
    // a crash during the rewrite leaves either the old log or the
    // repaired one — never a truncated file.
    let repaired = text[..tail_start].to_string();
    let tmp = path.with_extension("jsonl.repair-tmp");
    std::fs::write(&tmp, &repaired)
        .and_then(|()| std::fs::rename(&tmp, path))
        .map_err(io_err)?;
    Ok(repaired)
}

fn replay_log(path: &Path, spec: &CampaignSpec) -> Result<Replayed, CampaignError> {
    let mut state = Replayed::default();
    if !path.exists() {
        return Ok(state);
    }
    let text = std::fs::read_to_string(path)
        .map_err(|e| CampaignError::Io(format!("reading {}: {e}", path.display())))?;
    let text = repair_torn_tail(path, text)?;
    let records = crate::row::parse_log(&text)
        .map_err(|e| CampaignError::Log(format!("{}: {e}", path.display())))?;
    let fingerprint = spec.fingerprint();
    for record in records {
        let (campaign, row_spec) = match &record {
            LogRecord::Chunk(c) => (&c.campaign, &c.spec),
            LogRecord::Cell(c) => (&c.campaign, &c.spec),
        };
        if campaign != &spec.name || row_spec != &fingerprint {
            return Err(CampaignError::Log(format!(
                "{} holds rows of campaign '{campaign}' (spec {row_spec}), but this run is \
                 campaign '{}' (spec {fingerprint}); use a fresh --out directory per spec",
                path.display(),
                spec.name,
            )));
        }
        match record {
            LogRecord::Chunk(c) => {
                state.partial.insert(
                    c.cell.clone(),
                    PartialCell {
                        next_chunk: c.chunk + 1,
                        shots: c.cum_shots,
                        failures: c.cum_failures,
                        unsolved: c.cum_unsolved,
                        bp_iters: c.cum_bp_iters,
                        threads: c.threads,
                    },
                );
            }
            LogRecord::Cell(c) => {
                state.finals.insert(c.cell.clone(), *c);
            }
        }
    }
    Ok(state)
}

/// One reusable circuit-level DEM (cells sharing code × p × rounds reuse
/// it across decoders and precisions).
struct DemCache {
    key: (String, u64, usize),
    dem: DetectorErrorModel,
}

/// Runs a campaign: expands the spec, replays the log, executes the
/// remaining cells adaptively, and (for unsharded runs) regenerates
/// `REPRO.md` and `results.tsv` next to the log.
///
/// # Errors
///
/// See [`CampaignError`]; a failed run can always be resumed — the log
/// is flushed after every appended row.
pub fn run_campaign(
    spec: &CampaignSpec,
    opts: &RunOptions,
) -> Result<CampaignOutcome, CampaignError> {
    if let Some((i, m)) = opts.shard {
        if m == 0 || i >= m {
            return Err(CampaignError::Spec(SpecError {
                line: 0,
                message: format!("shard {i}/{m} is not a valid selection (need i < m, m > 0)"),
            }));
        }
    }
    let all_cells = spec.cells()?;
    let cells: Vec<&Cell> = all_cells
        .iter()
        .filter(|c| opts.shard.is_none_or(|(i, m)| c.index % m == i))
        .collect();
    if opts.service.is_some() {
        if let Some(cell) = cells
            .iter()
            .find(|c| c.decoder.family() == qldpc_decoder_api::DecoderFamily::BpSf)
        {
            return Err(CampaignError::Spec(SpecError {
                line: 0,
                message: format!(
                    "cell '{}' uses BP-SF, which cannot decode over --service: its sampled \
                     trials consume a decoder-local RNG stream that a remote instance does \
                     not share, so the rows would not be reproducible",
                    cell.id()
                ),
            }));
        }
    }
    std::fs::create_dir_all(&opts.out_dir)
        .map_err(|e| CampaignError::Io(format!("creating {}: {e}", opts.out_dir.display())))?;
    let results_path = opts.out_dir.join(results_file_name(opts.shard));
    let replayed = replay_log(&results_path, spec)?;

    let mut log = std::fs::OpenOptions::new()
        .append(true)
        .create(true)
        .open(&results_path)
        .map_err(|e| CampaignError::Io(format!("opening {}: {e}", results_path.display())))?;
    let mut append = |line: &str| -> Result<(), CampaignError> {
        writeln!(log, "{line}")
            .and_then(|()| log.flush())
            .map_err(|e| CampaignError::Io(format!("appending to {}: {e}", results_path.display())))
    };

    // `threads = 0` means "auto" — defer to BatchConfig's resolution so
    // the whole workspace has exactly one definition of it.
    let threads = if spec.threads == 0 {
        BatchConfig::default().threads
    } else {
        spec.threads
    };
    let batch = BatchConfig {
        threads,
        batch_size: spec.batch_size,
    };
    let fingerprint = spec.fingerprint();
    let rev = git_rev();

    let mut code_cache: BTreeMap<String, CssCode> = BTreeMap::new();
    let mut dem_cache: Option<DemCache> = None;
    let mut rows: Vec<CellRow> = Vec::new();
    let mut cells_run = 0usize;
    let mut cells_skipped = 0usize;

    // One thread-count rule for every replayed row, finished or partial:
    // a `threads = 0` (auto) campaign resumed on a machine that resolves
    // to a different count must not mix per-thread shot streams in one
    // log, so the whole resume is refused, not just the touched cells.
    let thread_mismatch = |id: &str, recorded: usize| -> CampaignError {
        CampaignError::Log(format!(
            "cell '{id}' has recorded rows run with {recorded} thread(s) but this run resolves \
             to {threads}; per-thread seeding makes the streams incompatible — resume on a \
             machine with the same core count, or pin `threads` in the spec"
        ))
    };

    for (pos, cell) in cells.iter().enumerate() {
        let id = cell.id();
        if let Some(done) = replayed.finals.get(&id) {
            if done.threads != threads {
                return Err(thread_mismatch(&id, done.threads));
            }
            cells_skipped += 1;
            if !opts.quiet {
                println!(
                    "[{}/{}] {id}: already finished ({} shots), skipping",
                    pos + 1,
                    cells.len(),
                    done.shots
                );
            }
            rows.push(done.clone());
            continue;
        }
        let code = code_cache
            .entry(cell.code_slug.clone())
            .or_insert_with(|| {
                qldpc_codes::paper_code(&cell.code_slug).expect("slugs validated at parse time")
            })
            .clone();
        // The in-process factory stays authoritative for the report
        // row's descriptor (label/family/precision) even when decoding
        // remotely — the service registers the same decoders, and the
        // rows must byte-compare across the two execution modes.
        let factory = cell.decoder.factory(cell.precision);

        // Build (or reuse) the circuit-level DEM; probe the decoder's
        // descriptor against the matrix it will actually decode.
        let dem = match spec.noise {
            NoiseSpec::CodeCapacity => None,
            NoiseSpec::CircuitLevel { .. } => {
                let key = (cell.code_slug.clone(), cell.p.to_bits(), cell.rounds);
                if dem_cache.as_ref().map(|c| &c.key) != Some(&key) {
                    let noise = NoiseModel::uniform_depolarizing(cell.p);
                    let dem = MemoryExperiment::memory_z(&code, cell.rounds, &noise)
                        .detector_error_model();
                    dem_cache = Some(DemCache { key, dem });
                }
                Some(&dem_cache.as_ref().unwrap().dem)
            }
        };
        let descriptor = match dem {
            Some(dem) => factory(dem.check_matrix(), dem.priors()).descriptor(),
            None => {
                let marginal = 2.0 * cell.p / 3.0;
                factory(code.hz(), &vec![marginal; code.n()]).descriptor()
            }
        };

        // Under --service, decode through the wire: each runner thread
        // builds its own connection to the cell's remotely-registered
        // twin. Shot generation, seeding and stopping stay local, so
        // the only thing that changes is where `decode_syndrome` runs.
        // Code-capacity runners instantiate the factory twice — once
        // with Hz, once with Hx — so the remote factory routes by the
        // matrix it is handed to the matching registration.
        let factory = match &opts.service {
            None => factory,
            Some(addr) => match dem {
                Some(_) => qldpc_client::remote_decoder_factory(addr.clone(), id.clone()),
                None => {
                    let hz = code.hz().clone();
                    let addr = addr.clone();
                    let id_hz = id.clone();
                    let id_hx = cell_hx_name(&id);
                    Box::new(move |h: &qldpc_gf2::SparseBitMatrix, _priors: &[f64]| {
                        let name = if *h == hz { &id_hz } else { &id_hx };
                        let decoder = qldpc_client::RemoteDecoder::connect(&addr, name)
                            .unwrap_or_else(|e| panic!("remote decoder '{name}' at {addr}: {e}"));
                        Box::new(decoder) as Box<dyn qldpc_decoder_api::SyndromeDecoder>
                    })
                }
            },
        };

        let partial = replayed.partial.get(&id).copied().unwrap_or(PartialCell {
            next_chunk: 0,
            shots: 0,
            failures: 0,
            unsolved: 0,
            bp_iters: 0,
            threads,
        });
        if partial.threads != threads {
            return Err(thread_mismatch(&id, partial.threads));
        }
        let PartialCell {
            mut next_chunk,
            mut shots,
            mut failures,
            mut unsolved,
            mut bp_iters,
            ..
        } = partial;
        if !opts.quiet {
            let resumed = if shots > 0 {
                format!(" (resuming at {shots} shots)")
            } else {
                String::new()
            };
            println!("[{}/{}] {id}{resumed}", pos + 1, cells.len());
        }
        let stop = loop {
            // Success rule first, so a final chunk that both reaches the
            // cap and satisfies the target records "half-width".
            if shots > 0
                && wilson_interval(failures, shots, spec.confidence).half_width()
                    <= spec.target_half_width
            {
                break "half-width";
            }
            if shots >= spec.max_shots {
                break "shot-cap";
            }
            let this_chunk = spec.chunk_shots.min(spec.max_shots - shots);
            let seed = chunk_seed(spec.seed, cell.index, next_chunk);
            let report: RunReport = match dem {
                None => run_code_capacity_batched(
                    &code,
                    &CodeCapacityConfig {
                        p: cell.p,
                        shots: this_chunk,
                        seed,
                    },
                    &factory,
                    &batch,
                ),
                Some(dem) => run_circuit_level_batched(
                    dem,
                    &id,
                    &CircuitLevelConfig {
                        shots: this_chunk,
                        seed,
                    },
                    &factory,
                    &batch,
                ),
            };
            shots += report.shots;
            failures += report.failures;
            unsolved += report.unsolved;
            let chunk_bp_iters = report.total_serial_iterations();
            bp_iters += chunk_bp_iters;
            let row = ChunkRow {
                campaign: spec.name.clone(),
                spec: fingerprint.clone(),
                cell: id.clone(),
                chunk: next_chunk,
                chunk_seed: seed,
                threads,
                shots: report.shots,
                failures: report.failures,
                unsolved: report.unsolved,
                bp_iters: chunk_bp_iters,
                cum_shots: shots,
                cum_failures: failures,
                cum_unsolved: unsolved,
                cum_bp_iters: bp_iters,
            };
            append(&row.to_json())?;
            if !opts.quiet {
                let hw = wilson_interval(failures, shots, spec.confidence).half_width();
                println!(
                    "    chunk {next_chunk}: {}/{} failures; cumulative {failures}/{shots}, \
                     CI half-width {hw:.4} (target {})",
                    report.failures, report.shots, spec.target_half_width
                );
            }
            next_chunk += 1;
        };

        let ci = wilson_interval(failures, shots, spec.confidence);
        let row = CellRow {
            campaign: spec.name.clone(),
            spec: fingerprint.clone(),
            cell: id.clone(),
            code: cell.code_slug.clone(),
            code_name: code.name().to_string(),
            n: code.n(),
            k: code.k(),
            d: code.d(),
            noise: match spec.noise {
                NoiseSpec::CodeCapacity => "code-capacity".to_string(),
                NoiseSpec::CircuitLevel { .. } => "circuit-level".to_string(),
            },
            p: cell.p,
            rounds: cell.rounds,
            decoder: descriptor.label,
            family: descriptor.family.name().to_string(),
            precision: descriptor.precision.name().to_string(),
            shots,
            failures,
            unsolved,
            bp_iters,
            ler: if shots == 0 {
                0.0
            } else {
                failures as f64 / shots as f64
            },
            ci_lo: ci.lo,
            ci_hi: ci.hi,
            confidence: spec.confidence,
            target_half_width: spec.target_half_width,
            stop: stop.to_string(),
            chunks: next_chunk,
            seed: spec.seed,
            threads,
            batch_size: spec.batch_size,
            git_rev: rev.clone(),
        };
        append(&row.to_json())?;
        if !opts.quiet {
            println!(
                "    done: LER {:.3e} [{:.2e}, {:.2e}] @{} after {} shots ({stop})",
                row.ler, row.ci_lo, row.ci_hi, row.confidence, row.shots
            );
        }
        rows.push(row);
        cells_run += 1;
    }

    // Regenerate the reports for complete (unsharded) runs; sharded
    // shards merge later via `campaign report`.
    let report_path = if opts.shard.is_none() {
        let md_path = opts.out_dir.join("REPRO.md");
        std::fs::write(&md_path, report::render_markdown(&rows))
            .map_err(|e| CampaignError::Io(format!("writing {}: {e}", md_path.display())))?;
        let tsv_path = opts.out_dir.join("results.tsv");
        std::fs::write(&tsv_path, report::render_tsv(&rows))
            .map_err(|e| CampaignError::Io(format!("writing {}: {e}", tsv_path.display())))?;
        Some(md_path)
    } else {
        None
    };

    Ok(CampaignOutcome {
        cells_total: cells.len(),
        cells_run,
        cells_skipped,
        rows,
        results_path,
        report_path,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chunk_seeds_are_spread_out() {
        // Different (cell, chunk) pairs must not produce seeds within a
        // plausible thread-count offset of each other (the batched
        // runner uses seed + t per thread).
        let mut seeds = Vec::new();
        for cell in 0..64 {
            for chunk in 0..16 {
                seeds.push(chunk_seed(2026, cell, chunk));
            }
        }
        seeds.sort_unstable();
        for pair in seeds.windows(2) {
            assert!(pair[1] - pair[0] > 1024, "seeds too close: {pair:?}");
        }
        // And they are a pure function of the inputs.
        assert_eq!(chunk_seed(1, 2, 3), chunk_seed(1, 2, 3));
        assert_ne!(chunk_seed(1, 2, 3), chunk_seed(1, 2, 4));
        assert_ne!(chunk_seed(1, 2, 3), chunk_seed(1, 3, 3));
        assert_ne!(chunk_seed(1, 2, 3), chunk_seed(2, 2, 3));
    }

    #[test]
    fn git_rev_is_nonempty() {
        // Inside this repo it is a hex rev; elsewhere the fallback.
        let rev = git_rev();
        assert!(!rev.is_empty());
    }

    #[test]
    fn shard_file_names() {
        assert_eq!(results_file_name(None), "results.jsonl");
        assert_eq!(results_file_name(Some((2, 5))), "results.shard2of5.jsonl");
    }
}
