//! Quantum LDPC code constructions.
//!
//! This crate builds every code family evaluated in the BP-SF paper:
//!
//! * [`bb`] — bivariate bicycle (BB) codes from Bravyi et al. (Table II):
//!   `[[72,12,6]]`, `[[144,12,12]]` ("gross"), `[[288,12,18]]`,
//! * [`coprime_bb`] — coprime-BB codes from Wang & Mueller (Table III):
//!   `[[126,12,10]]`, `[[154,6,16]]`,
//! * [`gb`] — generalized bicycle codes (Panteleev & Kalachev):
//!   `[[254,28]]`,
//! * [`shp`] — subsystem hypergraph product codes, giving the SHYPS
//!   `[[225,16,8]]` code from the `[15,4,8]` simplex code,
//! * [`hgp`] — ordinary hypergraph product codes (used for extra testing:
//!   the HGP of two repetition codes is the toric code),
//! * [`classical`] — the classical ingredients (repetition, Hamming,
//!   simplex codes).
//!
//! All constructions produce a [`CssCode`], which carries the sparse
//! parity-check matrices `H_X`/`H_Z`, declared parameters, and logical
//! operators computed generically (valid for both stabilizer and subsystem
//! CSS codes).
//!
//! # Examples
//!
//! ```
//! use qldpc_codes::bb;
//!
//! let gross = bb::gross_code(); // [[144, 12, 12]]
//! assert_eq!(gross.n(), 144);
//! assert_eq!(gross.k(), 12);
//! gross.validate().expect("construction is a valid CSS code");
//! ```

pub mod bb;
pub mod circulant;
pub mod classical;
pub mod coprime_bb;
mod css;
pub mod distance;
pub mod gb;
pub mod hgp;
pub mod shp;

pub use css::{CodeError, CssCode, LogicalOps};

/// Returns every named code used in the paper's evaluation, for sweep-style
/// benchmarks: BB 72/144/288, coprime-BB 126/154, GB 254, SHYPS 225.
pub fn paper_codes() -> Vec<CssCode> {
    PAPER_CODE_SLUGS
        .iter()
        .map(|s| build_paper_code(s))
        .collect()
}

/// Stable short names ("slugs") of the paper's evaluation codes, in
/// [`paper_codes`] order — the identifiers campaign specs and report
/// rows use to refer to a construction.
pub const PAPER_CODE_SLUGS: [&str; 7] = [
    "bb72",
    "gross",
    "bb288",
    "coprime126",
    "coprime154",
    "gb254",
    "shyps225",
];

fn build_paper_code(slug: &str) -> CssCode {
    match slug {
        "bb72" => bb::bb72(),
        "gross" => bb::gross_code(),
        "bb288" => bb::bb288(),
        "coprime126" => coprime_bb::coprime126(),
        "coprime154" => coprime_bb::coprime154(),
        "gb254" => gb::gb254(),
        "shyps225" => shp::shyps225(),
        _ => unreachable!("slug list and builder match arms must agree"),
    }
}

/// Builds the paper code registered under `slug` (see
/// [`PAPER_CODE_SLUGS`]), or `None` for an unknown slug.
///
/// The returned [`CssCode`] carries the report metadata — `name()`,
/// `n()`, `k()`, `d()` — that generated tables stamp next to each LER
/// row.
///
/// # Examples
///
/// ```
/// let gross = qldpc_codes::paper_code("gross").unwrap();
/// assert_eq!((gross.n(), gross.k(), gross.d()), (144, 12, Some(12)));
/// assert!(qldpc_codes::paper_code("steane").is_none());
/// ```
pub fn paper_code(slug: &str) -> Option<CssCode> {
    PAPER_CODE_SLUGS
        .iter()
        .find(|s| **s == slug)
        .map(|s| build_paper_code(s))
}
