//! Bivariate bicycle (BB) codes from Bravyi et al., *Nature* 627 (2024).
//!
//! A BB code over `Z_l × Z_m` is defined by two bivariate polynomials
//! `A = a(x, y)` and `B = b(x, y)` with `x = S_l ⊗ I_m`, `y = I_l ⊗ S_m`:
//!
//! ```text
//! H_X = [A | B],     H_Z = [Bᵀ | Aᵀ].
//! ```
//!
//! Since circulant blocks commute (`AB = BA`), `H_X · H_Zᵀ = AB + BA = 0`.
//! Table II of the BP-SF paper lists the three instances reproduced here.

use crate::circulant::BiPoly;
use crate::css::CssCode;

/// Builds a general BB code from its defining polynomials.
///
/// # Examples
///
/// ```
/// use qldpc_codes::bb;
/// use qldpc_codes::circulant::BiPoly;
///
/// let a = BiPoly::new(&[(3, 0), (0, 1), (0, 2)]); // x³ + y + y²
/// let b = BiPoly::new(&[(0, 3), (1, 0), (2, 0)]); // y³ + x + x²
/// let code = bb::bb_code("BB [[72,12,6]]", 6, 6, &a, &b, Some(6));
/// assert_eq!((code.n(), code.k()), (72, 12));
/// ```
pub fn bb_code(
    name: &str,
    l: usize,
    m: usize,
    a: &BiPoly,
    b: &BiPoly,
    declared_d: Option<usize>,
) -> CssCode {
    let a_mat = a.eval(l, m);
    let b_mat = b.eval(l, m);
    let hx = a_mat.hstack(&b_mat);
    let hz = b_mat.transpose().hstack(&a_mat.transpose());
    CssCode::new(name, &hx, &hz, declared_d, false)
}

/// The `[[72, 12, 6]]` BB code: `l = m = 6`, `a = x³+y+y²`, `b = y³+x+x²`.
pub fn bb72() -> CssCode {
    bb_code(
        "BB [[72,12,6]]",
        6,
        6,
        &BiPoly::new(&[(3, 0), (0, 1), (0, 2)]),
        &BiPoly::new(&[(0, 3), (1, 0), (2, 0)]),
        Some(6),
    )
}

/// The `[[144, 12, 12]]` "gross" code: `l = 12, m = 6`, same polynomials as
/// [`bb72`]. This is the paper's main case study.
pub fn gross_code() -> CssCode {
    bb_code(
        "BB [[144,12,12]]",
        12,
        6,
        &BiPoly::new(&[(3, 0), (0, 1), (0, 2)]),
        &BiPoly::new(&[(0, 3), (1, 0), (2, 0)]),
        Some(12),
    )
}

/// The `[[288, 12, 18]]` BB code: `l = m = 12`, `a = x³+y²+y⁷`,
/// `b = y³+x+x²`.
pub fn bb288() -> CssCode {
    bb_code(
        "BB [[288,12,18]]",
        12,
        12,
        &BiPoly::new(&[(3, 0), (0, 2), (0, 7)]),
        &BiPoly::new(&[(0, 3), (1, 0), (2, 0)]),
        Some(18),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bb72_parameters() {
        let c = bb72();
        assert_eq!((c.n(), c.k(), c.d()), (72, 12, Some(6)));
        c.validate().unwrap();
    }

    #[test]
    fn gross_code_parameters() {
        let c = gross_code();
        assert_eq!((c.n(), c.k(), c.d()), (144, 12, Some(12)));
        c.validate().unwrap();
    }

    #[test]
    fn bb288_parameters() {
        let c = bb288();
        assert_eq!((c.n(), c.k(), c.d()), (288, 12, Some(18)));
        c.validate().unwrap();
    }

    #[test]
    fn checks_are_weight_six() {
        // BB codes from 3-term polynomials have row weight 6 and column
        // weight 3 in each of H_X, H_Z.
        let c = gross_code();
        for r in 0..c.hx().rows() {
            assert_eq!(c.hx().row_degree(r), 6);
        }
        for v in 0..c.hx().cols() {
            assert_eq!(c.hx().col_degree(v), 3);
        }
    }

    #[test]
    fn logical_weight_at_least_distance_lower_bound() {
        // Logical representatives can't be lighter than a few: sanity-check
        // they are clearly non-stabilizer, with weight >= 6 for bb72.
        let c = bb72();
        for r in 0..c.k() {
            assert!(c.logicals().z.row(r).weight() >= 6);
        }
    }
}
