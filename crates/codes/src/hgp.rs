//! Hypergraph product codes (Tillich & Zémor).
//!
//! Given classical parity checks `H₁ (m₁ × n₁)` and `H₂ (m₂ × n₂)`, the
//! hypergraph product acts on `n₁n₂ + m₁m₂` qubits with
//!
//! ```text
//! H_X = [H₁ ⊗ I_{n₂} | I_{m₁} ⊗ H₂ᵀ]
//! H_Z = [I_{n₁} ⊗ H₂ | H₁ᵀ ⊗ I_{m₂}]
//! ```
//!
//! The product of two cyclic repetition codes is the toric code, which the
//! test suites use as a known-good reference.

use crate::classical::ClassicalCode;
use crate::css::CssCode;
use qldpc_gf2::BitMatrix;

/// Builds the hypergraph product of two classical codes.
///
/// The resulting `k = k₁k₂ + k₁ᵀk₂ᵀ` (transpose-code dimensions) and
/// `d = min(d₁, d₂, d₁ᵀ, d₂ᵀ)`; the declared distance is left `None`
/// unless both inputs declare one and have full-rank checks (in which case
/// the transpose codes are trivial and `d = min(d₁, d₂)`).
///
/// # Examples
///
/// ```
/// use qldpc_codes::classical::ClassicalCode;
/// use qldpc_codes::hgp;
///
/// // Toric code from two cyclic repetition codes of length 3.
/// let rep = ClassicalCode::cyclic_repetition(3);
/// let toric = hgp::hypergraph_product("toric-3", &rep, &rep);
/// assert_eq!((toric.n(), toric.k()), (18, 2));
/// toric.validate().unwrap();
/// ```
pub fn hypergraph_product(name: &str, c1: &ClassicalCode, c2: &ClassicalCode) -> CssCode {
    let h1 = c1.parity_check();
    let h2 = c2.parity_check();
    let (m1, n1) = (h1.rows(), h1.cols());
    let (m2, n2) = (h2.rows(), h2.cols());

    let hx_left = h1.kron(&BitMatrix::identity(n2));
    let hx_right = BitMatrix::identity(m1).kron(&h2.transpose());
    let hx = hx_left.hstack(&hx_right);

    let hz_left = BitMatrix::identity(n1).kron(h2);
    let hz_right = h1.transpose().kron(&BitMatrix::identity(m2));
    let hz = hz_left.hstack(&hz_right);

    let declared_d = match (c1.d(), c2.d()) {
        (Some(d1), Some(d2)) if h1.rank() == m1 && h2.rank() == m2 => Some(d1.min(d2)),
        _ => None,
    };
    CssCode::new(name, &hx, &hz, declared_d, false)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn toric_code_parameters() {
        let rep = ClassicalCode::cyclic_repetition(4);
        let toric = hypergraph_product("toric-4", &rep, &rep);
        // Toric code on a 4×4 lattice: n = 2·16 = 32, k = 2, d = 4.
        assert_eq!((toric.n(), toric.k()), (32, 2));
        toric.validate().unwrap();
    }

    #[test]
    fn surface_like_code_from_open_repetition() {
        let rep = ClassicalCode::repetition(3);
        let surf = hypergraph_product("surface-3", &rep, &rep);
        // [ [n₁n₂ + m₁m₂, k₁k₂, d] ] = [[9 + 4, 1, 3]]
        assert_eq!((surf.n(), surf.k(), surf.d()), (13, 1, Some(3)));
        surf.validate().unwrap();
    }

    #[test]
    fn hamming_product() {
        let ham = ClassicalCode::hamming(3);
        let code = hypergraph_product("hgp-hamming", &ham, &ham);
        assert_eq!(code.n(), 49 + 9);
        assert_eq!(code.k(), 16); // k₁k₂ = 16, transpose codes trivial
        code.validate().unwrap();
    }
}
