//! Generalized bicycle (GB) codes from Panteleev & Kalachev, *Quantum* 5
//! (2021).
//!
//! A GB code is defined by two univariate polynomials `a(x)`, `b(x)` over
//! the cyclic shift `x = S_l`:
//!
//! ```text
//! H_X = [A | B],     H_Z = [Bᵀ | Aᵀ].
//! ```

use crate::circulant::UniPoly;
use crate::css::CssCode;

/// Builds a GB code from its defining polynomials.
///
/// # Examples
///
/// ```
/// use qldpc_codes::gb;
/// use qldpc_codes::circulant::UniPoly;
///
/// // A toy GB code over Z₅.
/// let a = UniPoly::new(&[0, 1]);
/// let b = UniPoly::new(&[0, 2]);
/// let code = gb::gb_code("toy", 5, &a, &b, None);
/// assert_eq!(code.n(), 10);
/// code.validate().unwrap();
/// ```
pub fn gb_code(
    name: &str,
    l: usize,
    a: &UniPoly,
    b: &UniPoly,
    declared_d: Option<usize>,
) -> CssCode {
    let a_mat = a.eval_shift(l);
    let b_mat = b.eval_shift(l);
    let hx = a_mat.hstack(&b_mat);
    let hz = b_mat.transpose().hstack(&a_mat.transpose());
    CssCode::new(name, &hx, &hz, declared_d, false)
}

/// The `[[254, 28]]` GB code (Panteleev & Kalachev, code A1): `l = 127`,
/// `a = 1 + x¹⁵ + x²⁰ + x²⁸ + x⁶⁶`, `b = 1 + x⁵⁸ + x⁵⁹ + x¹⁰⁰ + x¹²¹`.
/// Distance is not declared in the paper's appendix (≤ 20 is known).
pub fn gb254() -> CssCode {
    gb_code(
        "GB [[254,28]]",
        127,
        &UniPoly::new(&[0, 15, 20, 28, 66]),
        &UniPoly::new(&[0, 58, 59, 100, 121]),
        None,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gb254_parameters() {
        let c = gb254();
        assert_eq!((c.n(), c.k()), (254, 28));
        c.validate().unwrap();
    }

    #[test]
    fn gb254_check_weights() {
        let c = gb254();
        for r in 0..c.hx().rows() {
            assert_eq!(c.hx().row_degree(r), 10); // two 5-term polynomials
        }
    }

    #[test]
    fn toy_gb_commutes() {
        // gcd(1+x, 1+x², 1+x⁷) = 1+x over GF(2), so k = 2·deg(gcd) = 2.
        let c = gb_code(
            "toy",
            7,
            &UniPoly::new(&[0, 1]),
            &UniPoly::new(&[0, 2]),
            None,
        );
        assert_eq!(c.k(), 2);
        c.validate().unwrap();
    }

    #[test]
    fn zero_logical_gb_code_validates() {
        // gcd(a, b, x⁷−1) = 1 here, so the code encodes k = 0 qubits; the
        // container must still behave (empty logical matrices keep n cols).
        let c = gb_code(
            "k0",
            7,
            &UniPoly::new(&[0, 1, 3]),
            &UniPoly::new(&[0, 2]),
            None,
        );
        assert_eq!(c.k(), 0);
        c.validate().unwrap();
    }
}
