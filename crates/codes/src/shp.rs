//! Subsystem hypergraph product (SHP) codes, including the SHYPS family.
//!
//! Given classical parity checks `H₁ (m₁ × n₁)` and `H₂ (m₂ × n₂)`, the
//! subsystem hypergraph product (Li & Yoder) acts on `n₁ · n₂` qubits with
//! *gauge* generators
//!
//! ```text
//! G_X = H₁ ⊗ I_{n₂},     G_Z = I_{n₁} ⊗ H₂.
//! ```
//!
//! Gauge generators of opposite type need not commute — the code is a
//! subsystem code with parameters `[[n₁n₂, k₁k₂, min(d₁, d₂)]]`.
//!
//! The SHYPS codes of Malcolm et al. (arXiv:2502.07150) are SHP codes built
//! from simplex codes; `[[225, 16, 8]]` uses the `[15, 4, 8]` simplex code
//! on both factors. Decoding measures the gauge checks directly, so the
//! decoders in this workspace consume `G_X`/`G_Z` exactly like stabilizer
//! check matrices.

use crate::classical::ClassicalCode;
use crate::css::CssCode;
use qldpc_gf2::BitMatrix;

/// Builds the subsystem hypergraph product of two classical codes.
///
/// # Examples
///
/// ```
/// use qldpc_codes::classical::ClassicalCode;
/// use qldpc_codes::shp;
///
/// let simplex = ClassicalCode::simplex(3); // [7, 3, 4]
/// let code = shp::subsystem_hypergraph_product("shyps-49", &simplex, &simplex);
/// assert_eq!((code.n(), code.k()), (49, 9));
/// assert!(code.is_subsystem());
/// ```
pub fn subsystem_hypergraph_product(name: &str, c1: &ClassicalCode, c2: &ClassicalCode) -> CssCode {
    let h1 = c1.parity_check();
    let h2 = c2.parity_check();
    let n1 = h1.cols();
    let n2 = h2.cols();
    let gx = h1.kron(&BitMatrix::identity(n2));
    let gz = BitMatrix::identity(n1).kron(h2);
    let declared_d = match (c1.d(), c2.d()) {
        (Some(d1), Some(d2)) => Some(d1.min(d2)),
        _ => None,
    };
    CssCode::new(name, &gx, &gz, declared_d, true)
}

/// The SHYPS `[[225, 16, 8]]` code: the subsystem hypergraph product of the
/// `[15, 4, 8]` simplex code with itself (Fig. 11 of the BP-SF paper).
pub fn shyps225() -> CssCode {
    let simplex = ClassicalCode::simplex(4);
    subsystem_hypergraph_product("SHYPS [[225,16,8]]", &simplex, &simplex)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shyps225_parameters() {
        let c = shyps225();
        assert_eq!((c.n(), c.k(), c.d()), (225, 16, Some(8)));
        assert!(c.is_subsystem());
        c.validate().unwrap();
    }

    #[test]
    fn gauge_checks_do_not_commute() {
        // The defining property of a subsystem code: G_X · G_Zᵀ ≠ 0.
        let c = shyps225();
        let gx = c.hx().to_dense();
        let gz = c.hz().to_dense();
        assert!(!gx.mul(&gz.transpose()).is_zero());
    }

    #[test]
    fn small_shp_has_k1k2_logicals() {
        let simplex3 = ClassicalCode::simplex(3); // [7,3,4]
        let c = subsystem_hypergraph_product("shp-7x7", &simplex3, &simplex3);
        assert_eq!(c.k(), 9);
        c.validate().unwrap();
    }

    #[test]
    fn mixed_factors() {
        let s3 = ClassicalCode::simplex(3); // [7,3,4]
        let s2 = ClassicalCode::simplex(2); // [3,2,2]
        let c = subsystem_hypergraph_product("shp-7x3", &s3, &s2);
        assert_eq!((c.n(), c.k(), c.d()), (21, 6, Some(2)));
        c.validate().unwrap();
    }

    #[test]
    fn gauge_row_weights_are_classical_row_weights() {
        let c = shyps225();
        // G_X rows have the weight of H_simplex rows (since ⊗ I).
        let h = ClassicalCode::simplex(4);
        let expected: Vec<usize> = (0..h.parity_check().rows())
            .map(|r| h.parity_check().row(r).weight())
            .collect();
        for (i, &w) in expected.iter().enumerate() {
            assert_eq!(c.hx().row_degree(i * 15), w);
        }
    }
}
