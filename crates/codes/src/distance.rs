//! Monte Carlo estimation of code distance (upper bounds).
//!
//! Exact distance computation is NP-hard; this module implements the
//! standard randomized upper-bound search used in the qLDPC literature:
//! start from a random nonzero logical representative, then greedily add
//! stabilizer (or gauge) rows while they reduce the weight, with random
//! restarts. The smallest weight seen bounds the distance from above and,
//! for the small-to-medium codes in this workspace, typically meets the
//! declared distance.

use crate::css::CssCode;
use qldpc_gf2::BitVec;
use rand::rngs::StdRng;
use rand::Rng;

/// Result of a randomized distance search.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DistanceBound {
    /// Lowest-weight logical operator found (an upper bound on d).
    pub upper_bound: usize,
    /// How many restarts reached the bound.
    pub hits: usize,
    /// Restarts performed.
    pub restarts: usize,
}

/// Estimates an upper bound on the X-distance: the minimum weight of an
/// X-type logical operator (an element of `ker(H_Z) \ rowspace(H_X)`).
///
/// Each restart samples a random combination of logical-X representatives,
/// optionally mixed with random stabilizer rows, then runs greedy weight
/// descent over the stabilizer generators until a local minimum.
///
/// # Panics
///
/// Panics if the code has no logical qubits or `restarts == 0`.
///
/// # Examples
///
/// ```
/// use qldpc_codes::{bb, distance};
/// use rand::SeedableRng;
///
/// let code = bb::bb72();
/// let mut rng = rand::rngs::StdRng::seed_from_u64(1);
/// let bound = distance::estimate_x_distance(&code, 50, &mut rng);
/// assert!(bound.upper_bound >= 6); // declared d = 6
/// ```
pub fn estimate_x_distance(code: &CssCode, restarts: usize, rng: &mut StdRng) -> DistanceBound {
    assert!(code.k() > 0, "code must encode at least one logical qubit");
    assert!(restarts > 0, "need at least one restart");
    let logicals = &code.logicals().x;
    let stabilizers = code.hx();
    let k = logicals.rows();
    let m = stabilizers.rows();
    let n = code.n();

    let mut best = usize::MAX;
    let mut hits = 0usize;
    for _ in 0..restarts {
        // Random nonzero logical combination.
        let mut word = BitVec::zeros(n);
        loop {
            let mut any = false;
            for l in 0..k {
                if rng.random_bool(0.5) {
                    word.xor_assign(&logicals.row(l));
                    any = true;
                }
            }
            if any && !word.is_zero() {
                break;
            }
            word.clear();
        }
        // A few random stabilizer kicks to diversify the starting point.
        for _ in 0..m / 4 {
            let r = rng.random_range(0..m);
            let mut row = BitVec::zeros(n);
            for &c in stabilizers.row_support(r) {
                row.set(c as usize, true);
            }
            if rng.random_bool(0.3) {
                word.xor_assign(&row);
            }
        }
        // Greedy descent: keep applying the stabilizer row that reduces
        // the weight the most until none does.
        loop {
            let current = word.weight();
            let mut best_row = None;
            let mut best_weight = current;
            for r in 0..m {
                let mut trial = word.clone();
                for &c in stabilizers.row_support(r) {
                    trial.flip(c as usize);
                }
                let w = trial.weight();
                if w < best_weight {
                    best_weight = w;
                    best_row = Some(r);
                }
            }
            match best_row {
                Some(r) => {
                    for &c in stabilizers.row_support(r) {
                        word.flip(c as usize);
                    }
                }
                None => break,
            }
        }
        let w = word.weight();
        debug_assert!(code.is_z_logical_error(&word) || w > 0);
        if w < best {
            best = w;
            hits = 1;
        } else if w == best {
            hits += 1;
        }
    }
    DistanceBound {
        upper_bound: best,
        hits,
        restarts,
    }
}

/// Estimates an upper bound on the Z-distance (minimum-weight Z-type
/// logical); see [`estimate_x_distance`].
///
/// # Panics
///
/// Panics if the code has no logical qubits or `restarts == 0`.
pub fn estimate_z_distance(code: &CssCode, restarts: usize, rng: &mut StdRng) -> DistanceBound {
    // Z logicals descend over H_Z rows (Z-type stabilizers/gauges).
    assert!(code.k() > 0, "code must encode at least one logical qubit");
    assert!(restarts > 0, "need at least one restart");
    let logicals = &code.logicals().z;
    let stabilizers = code.hz();
    let k = logicals.rows();
    let m = stabilizers.rows();
    let n = code.n();

    let mut best = usize::MAX;
    let mut hits = 0usize;
    for _ in 0..restarts {
        let mut word = BitVec::zeros(n);
        loop {
            let mut any = false;
            for l in 0..k {
                if rng.random_bool(0.5) {
                    word.xor_assign(&logicals.row(l));
                    any = true;
                }
            }
            if any && !word.is_zero() {
                break;
            }
            word.clear();
        }
        loop {
            let current = word.weight();
            let mut best_row = None;
            let mut best_weight = current;
            for r in 0..m {
                let mut trial = word.clone();
                for &c in stabilizers.row_support(r) {
                    trial.flip(c as usize);
                }
                let w = trial.weight();
                if w < best_weight {
                    best_weight = w;
                    best_row = Some(r);
                }
            }
            match best_row {
                Some(r) => {
                    for &c in stabilizers.row_support(r) {
                        word.flip(c as usize);
                    }
                }
                None => break,
            }
        }
        let w = word.weight();
        if w < best {
            best = w;
            hits = 1;
        } else if w == best {
            hits += 1;
        }
    }
    DistanceBound {
        upper_bound: best,
        hits,
        restarts,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bb;
    use qldpc_gf2::BitMatrix;
    use rand::SeedableRng;

    #[test]
    fn steane_distance_is_three() {
        let h = BitMatrix::from_dense(&[
            &[1, 0, 1, 0, 1, 0, 1],
            &[0, 1, 1, 0, 0, 1, 1],
            &[0, 0, 0, 1, 1, 1, 1],
        ]);
        let code = CssCode::new("steane", &h, &h, Some(3), false);
        let mut rng = StdRng::seed_from_u64(5);
        let b = estimate_x_distance(&code, 40, &mut rng);
        assert_eq!(b.upper_bound, 3);
        let b = estimate_z_distance(&code, 40, &mut rng);
        assert_eq!(b.upper_bound, 3);
    }

    #[test]
    fn bb72_bound_not_below_declared_distance() {
        let code = bb::bb72();
        let mut rng = StdRng::seed_from_u64(6);
        let b = estimate_x_distance(&code, 30, &mut rng);
        // An upper bound can exceed d but never undercut it.
        assert!(
            b.upper_bound >= 6,
            "found impossible weight {}",
            b.upper_bound
        );
        assert!(b.upper_bound <= code.n());
        assert!(b.hits >= 1);
        assert_eq!(b.restarts, 30);
    }

    #[test]
    #[should_panic(expected = "at least one restart")]
    fn zero_restarts_panics() {
        let code = bb::bb72();
        let mut rng = StdRng::seed_from_u64(7);
        estimate_x_distance(&code, 0, &mut rng);
    }
}
