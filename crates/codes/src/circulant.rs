//! Polynomial algebra over cyclic shift matrices.
//!
//! Bicycle-style constructions define their check matrices through
//! polynomials evaluated at shift matrices: univariate `a(x)` with
//! `x = S_l` for generalized bicycle codes, bivariate `a(x, y)` with
//! `x = S_l ⊗ I_m`, `y = I_l ⊗ S_m` for bivariate bicycle codes, and
//! `a(π)` with `π = x·y` for coprime-BB codes. This module evaluates such
//! polynomials into dense [`BitMatrix`] blocks.

use qldpc_gf2::BitMatrix;

/// A univariate polynomial over GF(2), stored as the exponents of its
/// nonzero terms (e.g. `1 + x^15 + x^20` is `[0, 15, 20]`).
///
/// # Examples
///
/// ```
/// use qldpc_codes::circulant::UniPoly;
///
/// let a = UniPoly::new(&[0, 1, 2]); // 1 + x + x²
/// let m = a.eval_shift(3);
/// // Over Z₃ the circulant of 1+x+x² is the all-ones matrix.
/// assert_eq!(m.weight(), 9);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UniPoly {
    exponents: Vec<usize>,
}

impl UniPoly {
    /// Creates a polynomial from term exponents.
    ///
    /// # Panics
    ///
    /// Panics if an exponent repeats (over GF(2) it would cancel — that is
    /// always a construction-table typo, not an intent).
    pub fn new(exponents: &[usize]) -> Self {
        let mut sorted = exponents.to_vec();
        sorted.sort_unstable();
        for w in sorted.windows(2) {
            assert!(w[0] != w[1], "repeated exponent {} in polynomial", w[0]);
        }
        Self { exponents: sorted }
    }

    /// Exponents of the nonzero terms, ascending.
    pub fn exponents(&self) -> &[usize] {
        &self.exponents
    }

    /// Number of nonzero terms.
    pub fn terms(&self) -> usize {
        self.exponents.len()
    }

    /// Evaluates the polynomial at the `l × l` cyclic shift matrix `S_l`,
    /// producing the circulant `Σ_e S_l^e`.
    pub fn eval_shift(&self, l: usize) -> BitMatrix {
        let mut m = BitMatrix::zeros(l, l);
        for &e in &self.exponents {
            for i in 0..l {
                let j = (i + e) % l;
                let cur = m.get(i, j);
                // Exponents are distinct mod nothing, but e mod l may
                // collide for e ≥ l; over GF(2) a collision cancels.
                m.set(i, j, !cur);
            }
        }
        m
    }

    /// Evaluates at `x = S_l ⊗ I_m` (the "x" generator of a BB code).
    pub fn eval_x(&self, l: usize, m: usize) -> BitMatrix {
        sum_terms(self.exponents.iter().map(|&e| monomial_xy(l, m, e, 0)))
    }

    /// Evaluates at `y = I_l ⊗ S_m` (the "y" generator of a BB code).
    pub fn eval_y(&self, l: usize, m: usize) -> BitMatrix {
        sum_terms(self.exponents.iter().map(|&e| monomial_xy(l, m, 0, e)))
    }

    /// Evaluates at `π = x·y = S_l ⊗ S_m` (the coprime-BB generator).
    pub fn eval_pi(&self, l: usize, m: usize) -> BitMatrix {
        sum_terms(self.exponents.iter().map(|&e| monomial_xy(l, m, e, e)))
    }
}

/// A bivariate polynomial over GF(2) in the commuting generators
/// `x = S_l ⊗ I_m`, `y = I_l ⊗ S_m`, stored as `(x-exponent, y-exponent)`
/// term pairs.
///
/// # Examples
///
/// ```
/// use qldpc_codes::circulant::BiPoly;
///
/// // a(x,y) = x³ + y + y² from the [[144,12,12]] gross code.
/// let a = BiPoly::new(&[(3, 0), (0, 1), (0, 2)]);
/// let m = a.eval(12, 6);
/// assert_eq!(m.rows(), 72);
/// assert_eq!(m.weight(), 3 * 72); // three monomials, each a permutation
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BiPoly {
    terms: Vec<(usize, usize)>,
}

impl BiPoly {
    /// Creates a bivariate polynomial from `(x-exp, y-exp)` pairs.
    ///
    /// # Panics
    ///
    /// Panics on a repeated term.
    pub fn new(terms: &[(usize, usize)]) -> Self {
        let mut sorted = terms.to_vec();
        sorted.sort_unstable();
        for w in sorted.windows(2) {
            assert!(w[0] != w[1], "repeated term {:?} in polynomial", w[0]);
        }
        Self { terms: sorted }
    }

    /// The `(x-exp, y-exp)` term list, sorted.
    pub fn terms(&self) -> &[(usize, usize)] {
        &self.terms
    }

    /// Evaluates over the group `Z_l × Z_m`, producing an `lm × lm` matrix.
    pub fn eval(&self, l: usize, m: usize) -> BitMatrix {
        sum_terms(self.terms.iter().map(|&(ex, ey)| monomial_xy(l, m, ex, ey)))
    }
}

/// The monomial `x^ex · y^ey = S_l^ex ⊗ S_m^ey` as a permutation matrix on
/// `Z_l × Z_m` (row `(i,j)` maps to column `((i+ex) mod l, (j+ey) mod m)`).
fn monomial_xy(l: usize, m: usize, ex: usize, ey: usize) -> BitMatrix {
    let n = l * m;
    let mut out = BitMatrix::zeros(n, n);
    for i in 0..l {
        for j in 0..m {
            let row = i * m + j;
            let col = ((i + ex) % l) * m + (j + ey) % m;
            out.set(row, col, true);
        }
    }
    out
}

/// XOR-sums an iterator of equally sized matrices.
///
/// # Panics
///
/// Panics if the iterator is empty or the shapes disagree.
fn sum_terms(mut terms: impl Iterator<Item = BitMatrix>) -> BitMatrix {
    let first = terms
        .next()
        .expect("polynomial must have at least one term");
    let mut acc = first;
    for t in terms {
        assert_eq!(
            (acc.rows(), acc.cols()),
            (t.rows(), t.cols()),
            "term shape mismatch"
        );
        let mut next = BitMatrix::zeros(acc.rows(), acc.cols());
        for r in 0..acc.rows() {
            let mut row = acc.row(r);
            row.xor_assign(&t.row(r));
            for c in row.iter_ones() {
                next.set(r, c, true);
            }
        }
        acc = next;
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shift_polynomial_matches_example() {
        // Paper Eq. (13): S₃ = I₃ >> 1.
        let s3 = UniPoly::new(&[1]).eval_shift(3);
        let expected = BitMatrix::from_dense(&[&[0, 1, 0], &[0, 0, 1], &[1, 0, 0]]);
        assert_eq!(s3, expected);
    }

    #[test]
    fn x_and_y_commute() {
        let x = UniPoly::new(&[1]).eval_x(4, 3);
        let y = UniPoly::new(&[1]).eval_y(4, 3);
        assert_eq!(x.mul(&y), y.mul(&x));
    }

    #[test]
    fn pi_equals_x_times_y() {
        let x = UniPoly::new(&[1]).eval_x(5, 3);
        let y = UniPoly::new(&[1]).eval_y(5, 3);
        let pi = UniPoly::new(&[1]).eval_pi(5, 3);
        assert_eq!(pi, x.mul(&y));
    }

    #[test]
    fn pi_has_order_lm_when_coprime() {
        let (l, m) = (3, 5);
        let pi = UniPoly::new(&[1]).eval_pi(l, m);
        let mut acc = BitMatrix::identity(l * m);
        let mut order = 0;
        for i in 1..=l * m {
            acc = acc.mul(&pi);
            if acc == BitMatrix::identity(l * m) {
                order = i;
                break;
            }
        }
        assert_eq!(order, l * m, "π must generate the full cyclic group");
    }

    #[test]
    fn bivariate_eval_is_sum_of_monomials() {
        let a = BiPoly::new(&[(1, 0), (0, 1)]);
        let x = UniPoly::new(&[1]).eval_x(4, 3);
        let y = UniPoly::new(&[1]).eval_y(4, 3);
        let mut manual = BitMatrix::zeros(12, 12);
        for r in 0..12 {
            let mut row = x.row(r);
            row.xor_assign(&y.row(r));
            for c in row.iter_ones() {
                manual.set(r, c, true);
            }
        }
        assert_eq!(a.eval(4, 3), manual);
    }

    #[test]
    fn circulants_commute() {
        // Any two univariate circulants of the same size commute.
        let a = UniPoly::new(&[0, 2, 5]).eval_shift(9);
        let b = UniPoly::new(&[1, 3]).eval_shift(9);
        assert_eq!(a.mul(&b), b.mul(&a));
    }

    #[test]
    #[should_panic(expected = "repeated exponent")]
    fn repeated_exponent_panics() {
        UniPoly::new(&[1, 1]);
    }

    #[test]
    fn exponent_collision_mod_l_cancels() {
        // 1 + x^3 over Z₃: x^3 = 1, so the terms cancel to zero.
        let m = UniPoly::new(&[0, 3]).eval_shift(3);
        assert!(m.is_zero());
    }
}
