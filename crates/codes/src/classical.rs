//! Classical binary codes used as ingredients of quantum constructions.

use qldpc_gf2::BitMatrix;

/// A classical linear binary code described by generator and parity-check
/// matrices.
///
/// # Examples
///
/// ```
/// use qldpc_codes::classical::ClassicalCode;
///
/// let rep = ClassicalCode::repetition(3);
/// assert_eq!((rep.n(), rep.k()), (3, 1));
/// let simplex = ClassicalCode::simplex(4); // [15, 4, 8]
/// assert_eq!((simplex.n(), simplex.k(), simplex.d()), (15, 4, Some(8)));
/// ```
#[derive(Debug, Clone)]
pub struct ClassicalCode {
    name: String,
    generator: BitMatrix,
    parity_check: BitMatrix,
    d: Option<usize>,
}

impl ClassicalCode {
    /// Builds a code from an explicit parity-check matrix; the generator is
    /// derived as a kernel basis.
    ///
    /// # Panics
    ///
    /// Panics if `h` has no kernel (a zero-dimensional code).
    pub fn from_parity_check(name: impl Into<String>, h: BitMatrix, d: Option<usize>) -> Self {
        let kernel = h.kernel();
        assert!(
            !kernel.is_empty(),
            "parity-check matrix has trivial kernel (k = 0)"
        );
        let generator = BitMatrix::from_rows(&kernel);
        Self {
            name: name.into(),
            generator,
            parity_check: h,
            d,
        }
    }

    /// Builds a code from an explicit generator matrix; the parity check is
    /// derived as a kernel basis of the generator's row space.
    pub fn from_generator(name: impl Into<String>, g: BitMatrix, d: Option<usize>) -> Self {
        let kernel = g.kernel();
        let parity_check = if kernel.is_empty() {
            BitMatrix::zeros(0, g.cols())
        } else {
            BitMatrix::from_rows(&kernel)
        };
        Self {
            name: name.into(),
            generator: g,
            parity_check,
            d,
        }
    }

    /// The `[n, 1, n]` repetition code with the standard sparse chain of
    /// checks `x_i + x_{i+1} = 0`.
    ///
    /// # Panics
    ///
    /// Panics if `n < 2`.
    pub fn repetition(n: usize) -> Self {
        assert!(n >= 2, "repetition code needs n >= 2");
        let mut h = BitMatrix::zeros(n - 1, n);
        for i in 0..n - 1 {
            h.set(i, i, true);
            h.set(i, i + 1, true);
        }
        Self::from_parity_check(format!("repetition [{n},1,{n}]"), h, Some(n))
    }

    /// The *cyclic* `[n, 1, n]` repetition code (checks on a ring); its
    /// hypergraph product with itself is the toric code.
    ///
    /// # Panics
    ///
    /// Panics if `n < 2`.
    pub fn cyclic_repetition(n: usize) -> Self {
        assert!(n >= 2, "repetition code needs n >= 2");
        let mut h = BitMatrix::zeros(n, n);
        for i in 0..n {
            h.set(i, i, true);
            h.set(i, (i + 1) % n, true);
        }
        let generator = BitMatrix::from_rows(&h.kernel());
        Self {
            name: format!("cyclic repetition [{n},1,{n}]"),
            generator,
            parity_check: h,
            d: Some(n),
        }
    }

    /// The `[2^r − 1, 2^r − 1 − r, 3]` Hamming code.
    ///
    /// Its parity-check matrix has all nonzero `r`-bit columns.
    ///
    /// # Panics
    ///
    /// Panics if `r < 2`.
    pub fn hamming(r: usize) -> Self {
        assert!(r >= 2, "Hamming code needs r >= 2");
        let n = (1usize << r) - 1;
        let mut h = BitMatrix::zeros(r, n);
        for col in 1..=n {
            for bit in 0..r {
                if col >> bit & 1 == 1 {
                    h.set(bit, col - 1, true);
                }
            }
        }
        Self::from_parity_check(format!("Hamming [{n},{},3]", n - r), h, Some(3))
    }

    /// The `[2^k − 1, k, 2^{k−1}]` simplex code — the dual of the Hamming
    /// code. Its generator matrix has all nonzero `k`-bit columns; this is
    /// the classical seed of the SHYPS `[[225,16,8]]` code (`k = 4`).
    ///
    /// # Panics
    ///
    /// Panics if `k < 2`.
    pub fn simplex(k: usize) -> Self {
        assert!(k >= 2, "simplex code needs k >= 2");
        let n = (1usize << k) - 1;
        let mut g = BitMatrix::zeros(k, n);
        for col in 1..=n {
            for bit in 0..k {
                if col >> bit & 1 == 1 {
                    g.set(bit, col - 1, true);
                }
            }
        }
        let mut code = Self::from_generator(format!("simplex [{n},{k},{}]", 1 << (k - 1)), g, None);
        code.d = Some(1 << (k - 1));
        code
    }

    /// Code name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Block length.
    pub fn n(&self) -> usize {
        self.generator.cols()
    }

    /// Dimension (number of information bits).
    pub fn k(&self) -> usize {
        self.generator.rows()
    }

    /// Declared minimum distance, if known.
    pub fn d(&self) -> Option<usize> {
        self.d
    }

    /// Generator matrix (k × n, full row rank).
    pub fn generator(&self) -> &BitMatrix {
        &self.generator
    }

    /// Parity-check matrix ((n−k)-rank × n).
    pub fn parity_check(&self) -> &BitMatrix {
        &self.parity_check
    }

    /// Exhaustively computes the true minimum distance. Exponential in `k`;
    /// intended for the small constituent codes used in tests.
    ///
    /// # Panics
    ///
    /// Panics if `k > 24` (2^k codewords would be enumerated).
    pub fn brute_force_distance(&self) -> usize {
        let k = self.k();
        assert!(k <= 24, "brute-force distance limited to k <= 24");
        let mut best = usize::MAX;
        for mask in 1u32..(1u32 << k) {
            let mut word = qldpc_gf2::BitVec::zeros(self.n());
            for row in 0..k {
                if mask >> row & 1 == 1 {
                    word.xor_assign(&self.generator.row(row));
                }
            }
            best = best.min(word.weight());
        }
        best
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn repetition_properties() {
        let c = ClassicalCode::repetition(5);
        assert_eq!((c.n(), c.k()), (5, 1));
        assert_eq!(c.brute_force_distance(), 5);
        // G·Hᵀ = 0
        assert!(c.parity_check().mul(&c.generator().transpose()).is_zero());
    }

    #[test]
    fn cyclic_repetition_rank() {
        let c = ClassicalCode::cyclic_repetition(4);
        assert_eq!(c.parity_check().rank(), 3); // one redundant check
        assert_eq!(c.k(), 1);
    }

    #[test]
    fn hamming_7_4_3() {
        let c = ClassicalCode::hamming(3);
        assert_eq!((c.n(), c.k()), (7, 4));
        assert_eq!(c.brute_force_distance(), 3);
    }

    #[test]
    fn simplex_15_4_8() {
        let c = ClassicalCode::simplex(4);
        assert_eq!((c.n(), c.k()), (15, 4));
        assert_eq!(c.brute_force_distance(), 8);
        // The simplex code is a constant-weight code: every nonzero word
        // has weight exactly 2^{k-1}.
        assert!(c.parity_check().mul(&c.generator().transpose()).is_zero());
        assert_eq!(c.parity_check().rows(), 11);
    }

    #[test]
    fn simplex_is_dual_of_hamming() {
        let s = ClassicalCode::simplex(3);
        let h = ClassicalCode::hamming(3);
        // Simplex generator rows are Hamming checks (same row space).
        let stacked = s.generator().vstack(h.parity_check());
        assert_eq!(stacked.rank(), 3);
    }
}
