//! Generic CSS code container and logical-operator extraction.

use qldpc_gf2::{BitMatrix, BitVec, SparseBitMatrix};
use std::fmt;

/// Errors reported by [`CssCode::validate`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodeError {
    /// `H_X · H_Zᵀ ≠ 0` for a code declared as a stabilizer (non-subsystem)
    /// CSS code.
    ChecksDoNotCommute,
    /// The number of X and Z logical representatives disagree.
    LogicalCountMismatch {
        /// Number of logical-X representatives found.
        x: usize,
        /// Number of logical-Z representatives found.
        z: usize,
    },
    /// The computed number of logical qubits differs from the declared `k`.
    WrongLogicalCount {
        /// Declared number of logical qubits.
        declared: usize,
        /// Number actually found.
        found: usize,
    },
    /// A logical operator fails to commute with the checks of the opposite
    /// type.
    LogicalViolatesChecks,
    /// The k×k pairing matrix `L_X · L_Zᵀ` is singular, so the logical
    /// bases are degenerate.
    DegeneratePairing,
}

impl fmt::Display for CodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::ChecksDoNotCommute => write!(f, "X and Z parity checks do not commute"),
            Self::LogicalCountMismatch { x, z } => {
                write!(f, "found {x} logical X but {z} logical Z operators")
            }
            Self::WrongLogicalCount { declared, found } => {
                write!(
                    f,
                    "declared k = {declared} but found {found} logical qubits"
                )
            }
            Self::LogicalViolatesChecks => {
                write!(f, "a logical operator anticommutes with a parity check")
            }
            Self::DegeneratePairing => write!(f, "logical X/Z pairing matrix is singular"),
        }
    }
}

impl std::error::Error for CodeError {}

/// Logical operator representatives of a CSS (or subsystem CSS) code.
#[derive(Debug, Clone)]
pub struct LogicalOps {
    /// One logical-X representative per row (k × n).
    pub x: BitMatrix,
    /// One logical-Z representative per row (k × n).
    pub z: BitMatrix,
}

/// A CSS quantum code described by a pair of binary parity-check matrices.
///
/// For stabilizer CSS codes the rows of `hx`/`hz` are stabilizer
/// generators and satisfy `H_X · H_Zᵀ = 0`. For *subsystem* CSS codes
/// (e.g. the SHYPS family) the rows are gauge generators, which need not
/// mutually commute; set `subsystem = true` at construction. All decoding
/// machinery in the workspace treats both uniformly: X errors are decoded
/// from `H_Z` syndromes and judged against logical-Z supports.
///
/// # Examples
///
/// ```
/// use qldpc_codes::bb;
///
/// let code = bb::bb72();
/// assert_eq!((code.n(), code.k()), (72, 12));
/// // X-type checks commute with Z-type checks.
/// code.validate().unwrap();
/// ```
#[derive(Clone)]
pub struct CssCode {
    name: String,
    n: usize,
    k: usize,
    d: Option<usize>,
    hx: SparseBitMatrix,
    hz: SparseBitMatrix,
    subsystem: bool,
    logicals: LogicalOps,
}

impl CssCode {
    /// Builds a CSS code from dense check matrices, computing logical
    /// operators immediately.
    ///
    /// `declared_d` is metadata only (distance verification is exponential
    /// in general); pass `None` when unknown.
    ///
    /// # Panics
    ///
    /// Panics if the column counts of `hx` and `hz` differ.
    pub fn new(
        name: impl Into<String>,
        hx: &BitMatrix,
        hz: &BitMatrix,
        declared_d: Option<usize>,
        subsystem: bool,
    ) -> Self {
        assert_eq!(
            hx.cols(),
            hz.cols(),
            "H_X and H_Z must act on the same qubits"
        );
        let n = hx.cols();
        let logicals = compute_logicals(hx, hz);
        let k = logicals.x.rows();
        Self {
            name: name.into(),
            n,
            k,
            d: declared_d,
            hx: SparseBitMatrix::from_dense(hx),
            hz: SparseBitMatrix::from_dense(hz),
            subsystem,
            logicals,
        }
    }

    /// Human-readable code name, e.g. `"BB [[144,12,12]]"`.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of physical qubits.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Number of logical qubits (computed from the construction).
    pub fn k(&self) -> usize {
        self.k
    }

    /// Declared code distance, if known.
    pub fn d(&self) -> Option<usize> {
        self.d
    }

    /// X-type parity-check (or gauge) matrix.
    pub fn hx(&self) -> &SparseBitMatrix {
        &self.hx
    }

    /// Z-type parity-check (or gauge) matrix.
    pub fn hz(&self) -> &SparseBitMatrix {
        &self.hz
    }

    /// Whether this is a subsystem code (gauge checks need not commute).
    pub fn is_subsystem(&self) -> bool {
        self.subsystem
    }

    /// Logical operator representatives.
    pub fn logicals(&self) -> &LogicalOps {
        &self.logicals
    }

    /// Checks construction invariants; see [`CodeError`] for the cases.
    ///
    /// # Errors
    ///
    /// Returns the first violated invariant.
    pub fn validate(&self) -> Result<(), CodeError> {
        let hx = self.hx.to_dense();
        let hz = self.hz.to_dense();
        if !self.subsystem && !hx.mul(&hz.transpose()).is_zero() {
            return Err(CodeError::ChecksDoNotCommute);
        }
        let lx = &self.logicals.x;
        let lz = &self.logicals.z;
        if lx.rows() != lz.rows() {
            return Err(CodeError::LogicalCountMismatch {
                x: lx.rows(),
                z: lz.rows(),
            });
        }
        if lx.rows() != self.k {
            return Err(CodeError::WrongLogicalCount {
                declared: self.k,
                found: lx.rows(),
            });
        }
        // Logical X must commute with Z checks; logical Z with X checks.
        if !hz.mul(&lx.transpose()).is_zero() || !hx.mul(&lz.transpose()).is_zero() {
            return Err(CodeError::LogicalViolatesChecks);
        }
        let pairing = lx.mul(&lz.transpose());
        if pairing.rank() != self.k {
            return Err(CodeError::DegeneratePairing);
        }
        Ok(())
    }

    /// Returns `true` if the X-type residual error `r` (which must already
    /// satisfy all Z checks) acts nontrivially on the logical space, i.e.
    /// anticommutes with some logical-Z representative.
    ///
    /// # Panics
    ///
    /// Panics if `r.len() != n`.
    pub fn is_x_logical_error(&self, r: &BitVec) -> bool {
        assert_eq!(r.len(), self.n, "residual length mismatch");
        !self.logicals.z.mul_vec(r).is_zero()
    }

    /// Returns `true` if the Z-type residual error `r` acts nontrivially on
    /// the logical space (anticommutes with some logical-X representative).
    ///
    /// # Panics
    ///
    /// Panics if `r.len() != n`.
    pub fn is_z_logical_error(&self, r: &BitVec) -> bool {
        assert_eq!(r.len(), self.n, "residual length mismatch");
        !self.logicals.x.mul_vec(r).is_zero()
    }
}

impl fmt::Debug for CssCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "CssCode({}, n={}, k={}, d={:?}, hx={}×{}, hz={}×{}{})",
            self.name,
            self.n,
            self.k,
            self.d,
            self.hx.rows(),
            self.hx.cols(),
            self.hz.rows(),
            self.hz.cols(),
            if self.subsystem { ", subsystem" } else { "" }
        )
    }
}

impl fmt::Display for CssCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.name)
    }
}

/// Computes logical operator representatives for a (possibly subsystem) CSS
/// code given dense gauge/stabilizer matrices.
///
/// Logical Z representatives span `ker(H_X) / (rowspace(H_Z) ∩ ker(H_X))`:
/// vectors commuting with every X check, modulo Z-type gauge and stabilizer
/// elements. For stabilizer codes the intersection is simply
/// `rowspace(H_Z)`, recovering the textbook `ker(H_X)/rowspace(H_Z)`.
/// Logical X is symmetric.
///
/// The intersection is computed without quotient tricks: a vector
/// `a · H_Z` lies in `ker(H_X)` iff `a ∈ ker(H_X · H_Zᵀ … )`; concretely
/// `H_X (a H_Z)ᵀ = (H_X H_Zᵀ) aᵀ = 0`.
pub(crate) fn compute_logicals(hx: &BitMatrix, hz: &BitMatrix) -> LogicalOps {
    let n = hx.cols();
    let z = logical_basis(hx, hz);
    let x = logical_basis(hz, hx);
    let to_matrix = |rows: &[BitVec]| {
        if rows.is_empty() {
            BitMatrix::zeros(0, n)
        } else {
            BitMatrix::from_rows(rows)
        }
    };
    LogicalOps {
        x: to_matrix(&x),
        z: to_matrix(&z),
    }
}

/// Basis of `ker(h_other) / (rowspace(h_same) ∩ ker(h_other))`.
fn logical_basis(h_other: &BitMatrix, h_same: &BitMatrix) -> Vec<BitVec> {
    let kernel = BitMatrix::from_rows(&h_other.kernel());
    // a ∈ ker(M) with M = h_other · h_sameᵀ  ⇒  a·h_same ∈ ker(h_other).
    let m = h_other.mul(&h_same.transpose());
    let coeffs = BitMatrix::from_rows(&m.kernel());
    let trivial = if coeffs.rows() == 0 {
        BitMatrix::zeros(0, h_same.cols())
    } else {
        coeffs.mul(h_same)
    };
    BitMatrix::quotient_basis(&trivial, &kernel)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The [[4,2,2]] code: Hx = Hz = [1 1 1 1].
    fn c422() -> CssCode {
        let h = BitMatrix::from_dense(&[&[1, 1, 1, 1]]);
        CssCode::new("[[4,2,2]]", &h, &h, Some(2), false)
    }

    /// Steane [[7,1,3]] code from the Hamming (7,4) check matrix.
    fn steane() -> CssCode {
        let h = BitMatrix::from_dense(&[
            &[1, 0, 1, 0, 1, 0, 1],
            &[0, 1, 1, 0, 0, 1, 1],
            &[0, 0, 0, 1, 1, 1, 1],
        ]);
        CssCode::new("Steane [[7,1,3]]", &h, &h, Some(3), false)
    }

    #[test]
    fn c422_parameters() {
        let c = c422();
        assert_eq!((c.n(), c.k()), (4, 2));
        c.validate().unwrap();
    }

    #[test]
    fn steane_parameters() {
        let c = steane();
        assert_eq!((c.n(), c.k()), (7, 1));
        c.validate().unwrap();
    }

    #[test]
    fn steane_logical_weight_is_three_or_more() {
        let c = steane();
        for r in 0..c.k() {
            assert!(c.logicals().z.row(r).weight() >= 3);
            assert!(c.logicals().x.row(r).weight() >= 3);
        }
    }

    #[test]
    fn stabilizers_are_not_logical_errors() {
        let c = steane();
        let hx = c.hx().to_dense();
        for r in 0..hx.rows() {
            assert!(!c.is_x_logical_error(&hx.row(r)));
        }
    }

    #[test]
    fn logical_z_is_an_x_logical_error() {
        // A logical-Z support, interpreted as the residual of an X-type
        // decoding problem, anticommutes with logical Z? No — it must
        // anticommute with logical X. Check via the Z-error predicate.
        let c = steane();
        let lz = c.logicals().z.row(0);
        assert!(c.is_z_logical_error(&lz) || c.is_x_logical_error(&lz));
    }

    #[test]
    fn display_and_debug() {
        let c = c422();
        assert_eq!(c.to_string(), "[[4,2,2]]");
        assert!(format!("{c:?}").contains("n=4"));
    }
}
