//! Coprime bivariate bicycle codes from Wang & Mueller (arXiv:2408.10001).
//!
//! With `l` and `m` coprime, `π = x·y = S_l ⊗ S_m` generates the full
//! cyclic group `Z_{lm}`, so the construction is defined by *univariate*
//! polynomials in `π` (Table III of the BP-SF paper):
//!
//! ```text
//! H_X = [a(π) | b(π)],     H_Z = [b(π)ᵀ | a(π)ᵀ].
//! ```

use crate::circulant::UniPoly;
use crate::css::CssCode;

/// Builds a coprime-BB code from its defining polynomials in `π`.
///
/// # Panics
///
/// Panics if `gcd(l, m) != 1` — the construction requires coprime factors.
///
/// # Examples
///
/// ```
/// use qldpc_codes::coprime_bb;
/// use qldpc_codes::circulant::UniPoly;
///
/// let a = UniPoly::new(&[0, 1, 58]);
/// let b = UniPoly::new(&[0, 13, 41]);
/// let code = coprime_bb::coprime_bb_code("[[126,12,10]]", 7, 9, &a, &b, Some(10));
/// assert_eq!((code.n(), code.k()), (126, 12));
/// ```
pub fn coprime_bb_code(
    name: &str,
    l: usize,
    m: usize,
    a: &UniPoly,
    b: &UniPoly,
    declared_d: Option<usize>,
) -> CssCode {
    assert_eq!(
        gcd(l, m),
        1,
        "coprime-BB construction requires gcd(l, m) = 1"
    );
    let a_mat = a.eval_pi(l, m);
    let b_mat = b.eval_pi(l, m);
    let hx = a_mat.hstack(&b_mat);
    let hz = b_mat.transpose().hstack(&a_mat.transpose());
    CssCode::new(name, &hx, &hz, declared_d, false)
}

/// The `[[126, 12, 10]]` coprime-BB code: `l = 7, m = 9`,
/// `a = 1 + π + π⁵⁸`, `b = 1 + π¹³ + π⁴¹`.
pub fn coprime126() -> CssCode {
    coprime_bb_code(
        "Coprime-BB [[126,12,10]]",
        7,
        9,
        &UniPoly::new(&[0, 1, 58]),
        &UniPoly::new(&[0, 13, 41]),
        Some(10),
    )
}

/// The `[[154, 6, 16]]` coprime-BB code: `l = 7, m = 11`,
/// `a = 1 + π + π³¹`, `b = 1 + π¹⁹ + π⁵³`. The paper's showcase of a code
/// where plain BP struggles badly under code-capacity noise (Fig. 5).
pub fn coprime154() -> CssCode {
    coprime_bb_code(
        "Coprime-BB [[154,6,16]]",
        7,
        11,
        &UniPoly::new(&[0, 1, 31]),
        &UniPoly::new(&[0, 19, 53]),
        Some(16),
    )
}

fn gcd(a: usize, b: usize) -> usize {
    if b == 0 {
        a
    } else {
        gcd(b, a % b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn coprime126_parameters() {
        let c = coprime126();
        assert_eq!((c.n(), c.k(), c.d()), (126, 12, Some(10)));
        c.validate().unwrap();
    }

    #[test]
    fn coprime154_parameters() {
        let c = coprime154();
        assert_eq!((c.n(), c.k(), c.d()), (154, 6, Some(16)));
        c.validate().unwrap();
    }

    #[test]
    #[should_panic(expected = "coprime")]
    fn non_coprime_factors_panic() {
        coprime_bb_code(
            "bad",
            6,
            9,
            &UniPoly::new(&[0, 1]),
            &UniPoly::new(&[0, 2]),
            None,
        );
    }

    #[test]
    fn row_column_degrees() {
        let c = coprime154();
        for r in 0..c.hx().rows() {
            assert_eq!(c.hx().row_degree(r), 6);
        }
        for v in 0..c.hz().cols() {
            assert_eq!(c.hz().col_degree(v), 3);
        }
    }
}
