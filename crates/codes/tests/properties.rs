//! Property tests over the code constructions.

use proptest::prelude::*;
use qldpc_codes::circulant::{BiPoly, UniPoly};
use qldpc_codes::classical::ClassicalCode;
use qldpc_codes::{bb, coprime_bb, hgp, shp};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Every BB code built from random 3-term polynomials is a valid CSS
    /// code (checks commute, logical bases consistent and properly paired).
    #[test]
    fn random_bb_codes_validate(
        l in 2usize..6,
        m in 2usize..6,
        a_terms in proptest::collection::btree_set((0usize..6, 0usize..6), 1..3),
        b_terms in proptest::collection::btree_set((0usize..6, 0usize..6), 1..3),
    ) {
        let a: Vec<(usize, usize)> = a_terms.into_iter().collect();
        let b: Vec<(usize, usize)> = b_terms.into_iter().collect();
        let code = bb::bb_code("prop-bb", l, m, &BiPoly::new(&a), &BiPoly::new(&b), None);
        prop_assert_eq!(code.n(), 2 * l * m);
        prop_assert!(code.validate().is_ok(), "{:?}", code.validate());
    }

    /// Coprime-BB codes from random polynomials validate whenever the
    /// factors are coprime.
    #[test]
    fn random_coprime_bb_codes_validate(
        exps_a in proptest::collection::btree_set(0usize..20, 1..4),
        exps_b in proptest::collection::btree_set(0usize..20, 1..4),
    ) {
        let a: Vec<usize> = exps_a.into_iter().collect();
        let b: Vec<usize> = exps_b.into_iter().collect();
        let code = coprime_bb::coprime_bb_code(
            "prop-cbb", 3, 5,
            &UniPoly::new(&a), &UniPoly::new(&b), None,
        );
        prop_assert_eq!(code.n(), 30);
        prop_assert!(code.validate().is_ok());
    }

    /// Hypergraph products of repetition codes validate and have the
    /// expected qubit count n₁n₂ + m₁m₂.
    #[test]
    fn random_hgp_validates(n1 in 2usize..5, n2 in 2usize..5, cyclic in proptest::bool::ANY) {
        let c1 = if cyclic {
            ClassicalCode::cyclic_repetition(n1)
        } else {
            ClassicalCode::repetition(n1)
        };
        let c2 = ClassicalCode::repetition(n2);
        let code = hgp::hypergraph_product("prop-hgp", &c1, &c2);
        let m1 = c1.parity_check().rows();
        let m2 = c2.parity_check().rows();
        prop_assert_eq!(code.n(), n1 * n2 + m1 * m2);
        prop_assert!(code.validate().is_ok());
    }

    /// Subsystem hypergraph products of simplex codes have k = k₁·k₂.
    #[test]
    fn shp_logical_count(k1 in 2usize..4, k2 in 2usize..4) {
        let c1 = ClassicalCode::simplex(k1);
        let c2 = ClassicalCode::simplex(k2);
        let code = shp::subsystem_hypergraph_product("prop-shp", &c1, &c2);
        prop_assert_eq!(code.k(), k1 * k2);
        prop_assert!(code.validate().is_ok());
    }

    /// Circulant polynomial evaluation is a ring homomorphism: the matrix
    /// of a(x)·…  — here checked as commutativity of arbitrary pairs.
    #[test]
    fn circulants_commute(
        l in 2usize..9,
        a in proptest::collection::btree_set(0usize..9, 1..4),
        b in proptest::collection::btree_set(0usize..9, 1..4),
    ) {
        let av: Vec<usize> = a.into_iter().collect();
        let bv: Vec<usize> = b.into_iter().collect();
        let ma = UniPoly::new(&av).eval_shift(l);
        let mb = UniPoly::new(&bv).eval_shift(l);
        prop_assert_eq!(ma.mul(&mb), mb.mul(&ma));
    }

    /// Logical operators always commute with the opposite-type checks and
    /// anticommute with at least one partner logical.
    #[test]
    fn logicals_well_formed(l in 2usize..5, m in 2usize..5) {
        let code = bb::bb_code(
            "prop-logicals", l, m,
            &BiPoly::new(&[(1, 0), (0, 1)]),
            &BiPoly::new(&[(0, 0), (1, 1)]),
            None,
        );
        let hx = code.hx().to_dense();
        let lz = &code.logicals().z;
        if lz.rows() > 0 {
            prop_assert!(hx.mul(&lz.transpose()).is_zero());
            let pairing = code.logicals().x.mul(&lz.transpose());
            prop_assert_eq!(pairing.rank(), code.k());
        }
    }
}
