//! Fault injection against the networked front-end: dead clients, dead
//! workers, rate limiting, garbage on the wire, and shutdown races.
//! Every fault must surface as a *typed* outcome — never a hang, never
//! a leaked in-flight slot.

use qldpc_bp::{BpConfig, BpWindowDecoder, MinSumDecoder};
use qldpc_circuit::{window_plan, MemoryExperiment, NoiseModel};
use qldpc_client::{ClientError, Connection};
use qldpc_codes::bb;
use qldpc_decoder_api::{
    DecodeOutcome, DecodeTelemetry, DecoderFactory, SyndromeDecoder, WindowDecoder,
    WindowDecoderFactory, WindowOutcome, WindowPlan, WindowTask,
};
use qldpc_gf2::{BitVec, SparseBitMatrix};
use qldpc_server::{DecodeService, FrontendConfig, NetFrontend, ServiceConfig};
use qldpc_wire::{
    read_frame, write_frame, DecodeFailure, ErrorCode, Frame, DEFAULT_MAX_PAYLOAD, PROTOCOL_VERSION,
};
use std::io::Write as _;
use std::sync::Arc;
use std::time::Duration;

/// Deadlock guard: runs `f` on a helper thread, fails the test if it
/// neither finishes nor panics within `limit`.
fn with_timeout<F: FnOnce() + Send + 'static>(limit: Duration, f: F) {
    let (tx, rx) = std::sync::mpsc::channel();
    let worker = std::thread::spawn(move || {
        f();
        tx.send(()).ok();
    });
    match rx.recv_timeout(limit) {
        Ok(()) | Err(std::sync::mpsc::RecvTimeoutError::Disconnected) => {
            worker.join().expect("test thread panicked")
        }
        Err(std::sync::mpsc::RecvTimeoutError::Timeout) => {
            panic!("test exceeded {limit:?} — a fault hung the front-end")
        }
    }
}

fn rep5() -> SparseBitMatrix {
    SparseBitMatrix::from_row_indices(4, 5, &[vec![0, 1], vec![1, 2], vec![2, 3], vec![3, 4]])
}

fn sequential_config() -> ServiceConfig {
    ServiceConfig {
        shards: 1,
        max_wait: Duration::from_micros(50),
        ..Default::default()
    }
}

/// A decoder that sleeps `delay` per decode — the load generator for
/// rate-limit and disconnect races.
struct SleepyDecoder {
    delay: Duration,
}

impl SyndromeDecoder for SleepyDecoder {
    fn decode_syndrome(&mut self, _syndrome: &BitVec) -> DecodeOutcome {
        std::thread::sleep(self.delay);
        DecodeOutcome {
            error_hat: BitVec::zeros(5),
            solved: true,
            serial_iterations: 1,
            critical_iterations: 1,
            postprocessed: false,
            telemetry: DecodeTelemetry::bp(1, true),
        }
    }

    fn label(&self) -> String {
        "SleepyDecoder".into()
    }
}

fn sleepy_factory(delay: Duration) -> DecoderFactory {
    Box::new(move |_h, _priors| Box::new(SleepyDecoder { delay }))
}

/// A decoder whose every decode panics — the injected worker fault.
struct PanickingDecoder;

impl SyndromeDecoder for PanickingDecoder {
    fn decode_syndrome(&mut self, _syndrome: &BitVec) -> DecodeOutcome {
        panic!("injected decoder fault");
    }

    fn label(&self) -> String {
        "PanickingDecoder".into()
    }
}

/// Raw-socket handshake, for tests that need to speak frames the
/// blocking client refuses to send.
fn raw_handshake(addr: std::net::SocketAddr) -> std::net::TcpStream {
    let mut sock = std::net::TcpStream::connect(addr).expect("connect");
    sock.set_nodelay(true).unwrap();
    sock.set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    write_frame(
        &mut sock,
        &Frame::Hello {
            version: PROTOCOL_VERSION,
            client: "raw".to_string(),
        },
    )
    .expect("send hello");
    sock.flush().unwrap();
    match read_frame(&mut sock, DEFAULT_MAX_PAYLOAD).expect("handshake reply") {
        Some(Frame::HelloAck { .. }) => sock,
        other => panic!("expected HelloAck, got {other:?}"),
    }
}

/// A client that vanishes mid-request leaks nothing: its in-flight slot
/// resolves, the service accounting drains, and other clients are
/// unaffected.
#[test]
fn disconnected_client_leaks_no_inflight_slot() {
    with_timeout(Duration::from_secs(60), || {
        let mut builder = DecodeService::builder();
        builder.register_code_with(
            "slow",
            &rep5(),
            &[0.05; 5],
            sleepy_factory(Duration::from_millis(150)),
            sequential_config(),
        );
        let service = Arc::new(builder.start());
        let mut frontend = NetFrontend::serve_tcp(
            Arc::clone(&service),
            "127.0.0.1:0",
            FrontendConfig::default(),
        )
        .expect("bind tcp");
        let addr = frontend.local_addr().unwrap();

        // The doomed client: submit, then vanish without reading the
        // reply.
        {
            let mut sock = raw_handshake(addr);
            write_frame(
                &mut sock,
                &Frame::Submit {
                    tag: 7,
                    code: 0,
                    deadline_micros: 0,
                    syndrome: BitVec::zeros(4),
                },
            )
            .expect("send submit");
            sock.flush().unwrap();
            // `sock` drops here — the socket closes while the decode is
            // still running.
        }

        // A healthy client still gets served (queued behind the
        // abandoned decode).
        let mut conn = Connection::connect_tcp(addr, "survivor").expect("connect");
        conn.set_reply_timeout(Some(Duration::from_secs(30)))
            .unwrap();
        let code = conn.lookup_code("slow").unwrap();
        let reply = conn.decode(code.id, &BitVec::zeros(4)).expect("decode");
        assert!(reply.result.expect("decode outcome").solved);
        drop(conn);

        // Tearing down the front-end joins the abandoned connection's
        // writer, which must have waited out the orphaned handle — so
        // the service drains: every accepted request completed.
        frontend.shutdown();
        let service = Arc::into_inner(service).expect("front-end released the service");
        let metrics = service.shutdown();
        let (submitted, completed): (u64, u64) = metrics
            .iter()
            .fold((0, 0), |(s, c), m| (s + m.submitted, c + m.completed));
        assert_eq!(submitted, 2, "both submissions were accepted");
        assert_eq!(completed, 2, "the orphaned slot resolved");
        assert!(metrics.iter().all(|m| m.is_drained()));
    });
}

/// The per-connection in-flight cap refuses with `RateLimited` — a
/// distinct wire error from the service-wide `Overloaded` — and the
/// already-accepted request still completes.
#[test]
fn rate_limit_refusal_is_distinct_and_typed() {
    with_timeout(Duration::from_secs(60), || {
        let mut builder = DecodeService::builder();
        builder.register_code_with(
            "slow",
            &rep5(),
            &[0.05; 5],
            sleepy_factory(Duration::from_millis(300)),
            sequential_config(),
        );
        let service = Arc::new(builder.start());
        let config = FrontendConfig {
            max_inflight: 1,
            ..Default::default()
        };
        let mut frontend =
            NetFrontend::serve_tcp(Arc::clone(&service), "127.0.0.1:0", config).expect("bind");
        let addr = frontend.local_addr().unwrap();

        // Pipeline two submissions on the raw socket: the first is
        // accepted and occupies the connection's single in-flight slot
        // for ~300 ms; the second arrives while it is pending.
        let mut sock = raw_handshake(addr);
        for tag in [1u64, 2] {
            write_frame(
                &mut sock,
                &Frame::Submit {
                    tag,
                    code: 0,
                    deadline_micros: 0,
                    syndrome: BitVec::zeros(4),
                },
            )
            .expect("send submit");
        }
        sock.flush().unwrap();

        // Replies arrive in request order: the accepted decode first,
        // then the typed refusal of the second.
        match read_frame(&mut sock, DEFAULT_MAX_PAYLOAD).expect("first reply") {
            Some(Frame::DecodeReply { tag, result, .. }) => {
                assert_eq!(tag, 1);
                assert!(result.expect("first decode").solved);
            }
            other => panic!("expected DecodeReply, got {other:?}"),
        }
        match read_frame(&mut sock, DEFAULT_MAX_PAYLOAD).expect("second reply") {
            Some(Frame::Error { tag, code, .. }) => {
                assert_eq!(tag, 2);
                assert_eq!(code, ErrorCode::RateLimited);
            }
            other => panic!("expected RateLimited error, got {other:?}"),
        }

        // The slot freed once the first reply went out: a third
        // submission on the same connection is accepted again.
        write_frame(
            &mut sock,
            &Frame::Submit {
                tag: 3,
                code: 0,
                deadline_micros: 0,
                syndrome: BitVec::zeros(4),
            },
        )
        .expect("send third");
        sock.flush().unwrap();
        match read_frame(&mut sock, DEFAULT_MAX_PAYLOAD).expect("third reply") {
            Some(Frame::DecodeReply { tag, result, .. }) => {
                assert_eq!(tag, 3);
                assert!(result.expect("third decode").solved);
            }
            other => panic!("expected DecodeReply, got {other:?}"),
        }

        frontend.shutdown();
    });
}

/// A worker that dies mid-request answers with a typed `WorkerLost`
/// failure over the wire, and later submissions are refused with a
/// typed `Shutdown` — the client never hangs on a dead code.
#[test]
fn dead_worker_surfaces_as_typed_failure_then_shutdown() {
    with_timeout(Duration::from_secs(60), || {
        let mut builder = DecodeService::builder();
        builder.register_code_with(
            "doomed",
            &rep5(),
            &[0.05; 5],
            Box::new(|_h, _priors| Box::new(PanickingDecoder)),
            sequential_config(),
        );
        let service = Arc::new(builder.start());
        let mut frontend = NetFrontend::serve_tcp(
            Arc::clone(&service),
            "127.0.0.1:0",
            FrontendConfig::default(),
        )
        .expect("bind");
        let addr = frontend.local_addr().unwrap();

        let mut conn = Connection::connect_tcp(addr, "fault-test").expect("connect");
        conn.set_reply_timeout(Some(Duration::from_secs(30)))
            .unwrap();
        let code = conn.lookup_code("doomed").unwrap();

        let reply = conn
            .decode(code.id, &BitVec::zeros(4))
            .expect("transport survives the worker fault");
        assert_eq!(reply.result, Err(DecodeFailure::WorkerLost));

        // All workers of the code are dead: the next submission is
        // refused outright.
        let refused = loop {
            match conn.decode(code.id, &BitVec::zeros(4)) {
                Err(ClientError::Remote { code, .. }) => break code,
                // A brief window exists where a queue still accepts
                // before the drain marks the code dead; such a request
                // resolves as WorkerLost. Retry until the gate closes.
                Ok(reply) => assert_eq!(reply.result, Err(DecodeFailure::WorkerLost)),
                Err(other) => panic!("expected typed refusal, got {other}"),
            }
        };
        assert_eq!(refused, ErrorCode::Shutdown);

        frontend.shutdown();
    });
}

/// A window decoder that panics on its first batch — the streaming
/// analogue of the worker fault.
struct PanickingWindowDecoder {
    plan: Arc<WindowPlan>,
}

impl WindowDecoder for PanickingWindowDecoder {
    fn plan(&self) -> &WindowPlan {
        &self.plan
    }

    fn label(&self) -> String {
        "PanickingWindowDecoder".into()
    }

    fn decode_windows(&mut self, _tasks: &[WindowTask]) -> Vec<WindowOutcome> {
        panic!("injected window-decoder fault");
    }
}

/// A streaming session whose worker dies surfaces a typed
/// `StreamFailed`, the server reaps the session, and later frames for
/// it get `UnknownSession` — never a hang.
#[test]
fn stream_worker_fault_is_typed_and_session_reaped() {
    with_timeout(Duration::from_secs(120), || {
        let exp =
            MemoryExperiment::memory_z(&bb::bb72(), 3, &NoiseModel::uniform_depolarizing(2e-3));
        let dem = exp.detector_error_model();
        let k = dem.num_detectors() / 4;
        let plan = Arc::new(window_plan(&dem, k, 2, 1));
        let window_factory: WindowDecoderFactory =
            Box::new(|plan| Box::new(PanickingWindowDecoder { plan }));
        let mut builder = DecodeService::builder();
        builder.register_streaming_code_with(
            "doomed-stream",
            Arc::clone(&plan),
            window_factory,
            sequential_config(),
        );
        let service = Arc::new(builder.start());
        let mut frontend = NetFrontend::serve_tcp(
            Arc::clone(&service),
            "127.0.0.1:0",
            FrontendConfig::default(),
        )
        .expect("bind");
        let addr = frontend.local_addr().unwrap();

        let mut conn = Connection::connect_tcp(addr, "fault-test").expect("connect");
        conn.set_reply_timeout(Some(Duration::from_secs(60)))
            .unwrap();
        let code = conn.lookup_code("doomed-stream").unwrap();
        let mut stream = conn.open_stream(code.id).expect("open");
        let session_rounds = plan.num_round_blocks;
        let round = BitVec::zeros(plan.dets_per_round);

        // The fault surfaces at whichever push (or the finish) first
        // harvests the dead window — typed either way.
        let mut failure = None;
        for _ in 0..session_rounds {
            if let Err(e) = stream.push_round(&round) {
                failure = Some(e);
                break;
            }
        }
        let failure = match failure {
            Some(e) => e,
            None => stream.finish().expect_err("finish must report the fault"),
        };
        match failure {
            ClientError::Remote { code, .. } => assert_eq!(code, ErrorCode::StreamFailed),
            other => panic!("expected Remote(StreamFailed), got {other}"),
        }

        // The server dropped the session: a fresh stream on the same
        // connection gets UnknownSession semantics via a raw frame.
        let mut sock = raw_handshake(addr);
        write_frame(
            &mut sock,
            &Frame::StreamRound {
                session: 424242,
                round: round.clone(),
            },
        )
        .expect("send round");
        sock.flush().unwrap();
        match read_frame(&mut sock, DEFAULT_MAX_PAYLOAD).expect("reply") {
            Some(Frame::Error { code, .. }) => assert_eq!(code, ErrorCode::UnknownSession),
            other => panic!("expected UnknownSession, got {other:?}"),
        }

        frontend.shutdown();
    });
}

/// Shutting the front-end down under a live stream breaks the client
/// out with a typed transport error — the reply timeout is the
/// deadlock tripwire.
#[test]
fn frontend_shutdown_mid_stream_is_typed_not_hang() {
    with_timeout(Duration::from_secs(120), || {
        let exp =
            MemoryExperiment::memory_z(&bb::bb72(), 3, &NoiseModel::uniform_depolarizing(2e-3));
        let dem = exp.detector_error_model();
        let k = dem.num_detectors() / 4;
        let plan = Arc::new(window_plan(&dem, k, 2, 1));
        let window_factory: WindowDecoderFactory =
            Box::new(|plan| Box::new(BpWindowDecoder::new(plan, BpConfig::default())));
        let mut builder = DecodeService::builder();
        builder.register_streaming_code_with(
            "bb72-stream",
            Arc::clone(&plan),
            window_factory,
            sequential_config(),
        );
        let service = Arc::new(builder.start());
        let mut frontend = NetFrontend::serve_tcp(
            Arc::clone(&service),
            "127.0.0.1:0",
            FrontendConfig::default(),
        )
        .expect("bind");
        let addr = frontend.local_addr().unwrap();

        let mut conn = Connection::connect_tcp(addr, "shutdown-race").expect("connect");
        conn.set_reply_timeout(Some(Duration::from_secs(10)))
            .unwrap();
        let code = conn.lookup_code("bb72-stream").unwrap();
        let mut stream = conn.open_stream(code.id).expect("open");
        let round = BitVec::zeros(plan.dets_per_round);
        stream.push_round(&round).expect("first round");

        frontend.shutdown();

        // The next interaction fails with a transport error (EOF or
        // reset), not a hang and not a silent success.
        let mut saw_io = false;
        for _ in 0..2 {
            match stream.push_round(&round) {
                Err(ClientError::Io(_)) => {
                    saw_io = true;
                    break;
                }
                // The round we pushed before the shutdown may still
                // deliver its buffered ack; keep going.
                Ok(_) => continue,
                Err(other) => panic!("expected Io error, got {other}"),
            }
        }
        assert!(saw_io, "shutdown never surfaced as a transport error");

        // The service itself is untouched by the front-end teardown:
        // in-process sessions still work.
        let stream_code = service.lookup_code("bb72-stream").unwrap();
        let mut session = service.stream_session(stream_code).expect("local session");
        for _ in 0..plan.num_round_blocks {
            session.push_round(&round).expect("local push");
        }
        assert!(session.finish().expect("local finish").all_solved);
    });
}

/// Garbage after a clean handshake: typed `BadFrame`, then hang-up. A
/// second Hello mid-session is refused but keeps the connection.
#[test]
fn garbage_frames_get_bad_frame_then_hangup() {
    with_timeout(Duration::from_secs(60), || {
        let mut builder = DecodeService::builder();
        let factory: DecoderFactory =
            Box::new(|h, priors| Box::new(MinSumDecoder::new(h, priors, BpConfig::default())));
        builder.register_code_with("rep5", &rep5(), &[0.05; 5], factory, sequential_config());
        let service = Arc::new(builder.start());
        let mut frontend = NetFrontend::serve_tcp(
            Arc::clone(&service),
            "127.0.0.1:0",
            FrontendConfig::default(),
        )
        .expect("bind");
        let addr = frontend.local_addr().unwrap();

        // A second Hello is a protocol violation but not a framing
        // desync: typed refusal, connection survives.
        let mut sock = raw_handshake(addr);
        write_frame(
            &mut sock,
            &Frame::Hello {
                version: PROTOCOL_VERSION,
                client: "again".to_string(),
            },
        )
        .expect("send second hello");
        sock.flush().unwrap();
        match read_frame(&mut sock, DEFAULT_MAX_PAYLOAD).expect("reply") {
            Some(Frame::Error { code, .. }) => assert_eq!(code, ErrorCode::BadFrame),
            other => panic!("expected BadFrame, got {other:?}"),
        }
        write_frame(
            &mut sock,
            &Frame::CodeLookup {
                name: "rep5".to_string(),
            },
        )
        .expect("send lookup");
        sock.flush().unwrap();
        match read_frame(&mut sock, DEFAULT_MAX_PAYLOAD).expect("reply") {
            Some(Frame::CodeInfo { name, .. }) => assert_eq!(name, "rep5"),
            other => panic!("expected CodeInfo, got {other:?}"),
        }

        // Byte soup desynchronizes the framing: typed BadFrame, then
        // the server hangs up.
        sock.write_all(b"\xde\xad\xbe\xef not a frame")
            .expect("send garbage");
        sock.flush().unwrap();
        match read_frame(&mut sock, DEFAULT_MAX_PAYLOAD).expect("reply") {
            Some(Frame::Error { code, .. }) => assert_eq!(code, ErrorCode::BadFrame),
            other => panic!("expected BadFrame, got {other:?}"),
        }
        assert!(matches!(
            read_frame(&mut sock, DEFAULT_MAX_PAYLOAD),
            Ok(None)
        ));

        frontend.shutdown();
    });
}
