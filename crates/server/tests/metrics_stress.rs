//! Metrics under concurrency: producer threads hammer a live service
//! while a sampler repeatedly snapshots, asserting the invariants every
//! dashboard scrape relies on — counters only grow, accounting never
//! outruns submission, and the final snapshot is fully drained.

use qldpc_bp::{BpConfig, MinSumDecoder};
use qldpc_decoder_api::DecoderFactory;
use qldpc_gf2::{BitVec, SparseBitMatrix};
use qldpc_server::{DecodeService, MetricsSnapshot, ServiceConfig, SubmitError};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

const PRODUCERS: usize = 4;
const REQUESTS_PER_PRODUCER: usize = 400;

fn repetition_chain(bits: usize) -> SparseBitMatrix {
    let rows: Vec<Vec<usize>> = (0..bits - 1).map(|i| vec![i, i + 1]).collect();
    SparseBitMatrix::from_row_indices(bits - 1, bits, &rows)
}

/// Every counter a scrape can see must be monotone between two
/// successive snapshots of the same code.
fn assert_monotone(prev: &MetricsSnapshot, next: &MetricsSnapshot) {
    assert!(next.submitted >= prev.submitted, "submitted went backwards");
    assert!(next.completed >= prev.completed, "completed went backwards");
    assert!(next.expired >= prev.expired, "expired went backwards");
    assert!(next.lost >= prev.lost, "lost went backwards");
    assert!(
        next.rejected_overload >= prev.rejected_overload,
        "rejected_overload went backwards"
    );
    assert!(next.batches >= prev.batches, "batches went backwards");
    assert!(next.stolen >= prev.stolen, "stolen went backwards");
    assert!(
        next.latency.count >= prev.latency.count,
        "latency sample count went backwards"
    );
    assert!(
        next.convergence.decodes >= prev.convergence.decodes,
        "decode count went backwards"
    );
    assert!(
        next.convergence.bp_iterations >= prev.convergence.bp_iterations,
        "bp iteration count went backwards"
    );
}

#[test]
fn snapshots_stay_consistent_under_concurrent_load() {
    let h = repetition_chain(12);
    let factory: DecoderFactory =
        Box::new(|h, priors| Box::new(MinSumDecoder::new(h, priors, BpConfig::default())));
    let mut builder = DecodeService::builder();
    let code = builder.register_code_with(
        "stress",
        &h,
        &vec![0.02; h.cols()],
        factory,
        ServiceConfig {
            shards: 3,
            max_wait: Duration::from_micros(50),
            ..Default::default()
        },
    );
    let service = Arc::new(builder.start());

    let done = Arc::new(AtomicBool::new(false));
    let sampler = {
        let service = Arc::clone(&service);
        let done = Arc::clone(&done);
        std::thread::spawn(move || {
            let mut prev = service.metrics(code);
            let mut samples = 0u64;
            while !done.load(Ordering::Acquire) {
                let next = service.metrics(code);
                assert_monotone(&prev, &next);
                // Mid-flight accounting can lag submission but must
                // never outrun it.
                assert!(
                    next.completed + next.expired + next.lost <= next.submitted,
                    "accounted more requests than were submitted"
                );
                assert_eq!(
                    next.latency_samples_dropped, 0,
                    "histogram dropped a sample"
                );
                prev = next;
                samples += 1;
            }
            samples
        })
    };

    let mut accepted = 0u64;
    let producers: Vec<_> = (0..PRODUCERS)
        .map(|p| {
            let service = Arc::clone(&service);
            std::thread::spawn(move || {
                let mut client = service.client();
                let mut accepted = 0u64;
                let mut handles = Vec::new();
                for i in 0..REQUESTS_PER_PRODUCER {
                    let syndrome = BitVec::from_indices(11, &[(p + i) % 11]);
                    match client.submit(code, syndrome) {
                        Ok(handle) => {
                            accepted += 1;
                            handles.push(handle);
                        }
                        Err(SubmitError::Overloaded) => std::thread::yield_now(),
                        Err(e) => panic!("unexpected submit error: {e}"),
                    }
                    // Keep the outstanding window bounded so the queue
                    // exercises coalescing rather than pure overload.
                    if handles.len() >= 64 {
                        for handle in handles.drain(..) {
                            handle.wait().result.expect("decode succeeds");
                        }
                    }
                }
                for handle in handles {
                    handle.wait().result.expect("decode succeeds");
                }
                accepted
            })
        })
        .collect();
    for producer in producers {
        accepted += producer.join().expect("producer panicked");
    }
    done.store(true, Ordering::Release);
    let samples = sampler.join().expect("sampler panicked");
    assert!(samples > 0, "sampler never ran");

    let service = Arc::into_inner(service).expect("all clones joined");
    let metrics = service.shutdown().remove(0);
    assert!(metrics.is_drained(), "final snapshot not drained");
    assert_eq!(metrics.submitted, accepted);
    assert_eq!(metrics.completed, accepted);
    assert_eq!(
        metrics.latency.count, accepted,
        "one latency sample per decode"
    );
    assert_eq!(metrics.convergence.decodes, accepted);
    assert!(
        metrics.convergence.bp_iterations >= accepted,
        "BP ran at least one iteration each"
    );
    // Stage sample counts line up with the scheduler's own accounting.
    use qldpc_server::Stage;
    assert_eq!(metrics.stages.get(Stage::QueueWait).count, accepted);
    assert_eq!(metrics.stages.get(Stage::Fulfill).count, accepted);
    assert_eq!(metrics.stages.get(Stage::Kernel).count, metrics.batches);
    assert_eq!(
        metrics.stages.get(Stage::CoalesceWait).count,
        metrics.batches
    );
    assert_eq!(metrics.stages.get(Stage::Steal).count, metrics.stolen);
}
