//! Worker-death regression: a panicking decoder must never strand a
//! request. Every accepted request resolves — with
//! [`DecodeError::WorkerLost`] once its worker has died — `wait()`
//! never hangs, later submissions are refused, and shutdown still
//! drains and joins cleanly.

use qldpc_decoder_api::{DecodeOutcome, DecoderFactory, SyndromeDecoder};
use qldpc_gf2::{BitVec, SparseBitMatrix};
use qldpc_server::{DecodeError, DecodeService, ResponseHandle, ServiceConfig, SubmitError};
use std::time::Duration;

/// Deadlock guard: runs `f` on a helper thread, fails the test if it
/// neither finishes nor panics within `limit`.
fn with_timeout<F: FnOnce() + Send + 'static>(limit: Duration, f: F) {
    let (tx, rx) = std::sync::mpsc::channel();
    let worker = std::thread::spawn(move || {
        f();
        tx.send(()).ok();
    });
    match rx.recv_timeout(limit) {
        Ok(()) | Err(std::sync::mpsc::RecvTimeoutError::Disconnected) => {
            worker.join().expect("test thread panicked")
        }
        Err(std::sync::mpsc::RecvTimeoutError::Timeout) => {
            panic!("test exceeded {limit:?} — a lost worker stranded a request")
        }
    }
}

/// A decoder whose every decode panics — the injected worker fault.
struct PanickingDecoder;

impl SyndromeDecoder for PanickingDecoder {
    fn decode_syndrome(&mut self, _syndrome: &BitVec) -> DecodeOutcome {
        panic!("injected decoder fault");
    }

    fn label(&self) -> String {
        "PanickingDecoder".into()
    }
}

fn panicking_factory() -> DecoderFactory {
    Box::new(|_h, _priors| Box::new(PanickingDecoder))
}

fn rep5() -> SparseBitMatrix {
    SparseBitMatrix::from_row_indices(4, 5, &[vec![0, 1], vec![1, 2], vec![2, 3], vec![3, 4]])
}

/// Collects `n` accepted handles, stopping early once the service
/// refuses with `Shutdown` (all workers dead).
fn submit_up_to(
    client: &mut qldpc_server::Client,
    code: qldpc_server::CodeId,
    n: usize,
) -> Vec<ResponseHandle> {
    let mut handles = Vec::new();
    while handles.len() < n {
        match client.submit(code, BitVec::from_indices(4, &[0])) {
            Ok(h) => handles.push(h),
            Err(SubmitError::Overloaded) => std::thread::yield_now(),
            Err(SubmitError::Shutdown) => break,
            Err(e) => panic!("unexpected submit error: {e}"),
        }
    }
    handles
}

/// The regression this suite pins: before the drop guards, a panicking
/// worker left its coalesced batch *and* its queue un-answered, so
/// `wait()` blocked forever. Now every handle resolves with
/// `WorkerLost`.
#[test]
fn coalesced_batch_resolves_after_worker_panic() {
    with_timeout(Duration::from_secs(60), || {
        let mut builder = DecodeService::builder();
        let code = builder.register_code_with(
            "doomed",
            &rep5(),
            &[0.05; 5],
            panicking_factory(),
            ServiceConfig {
                shards: 1,
                max_batch: 8,
                // A wide batch window so the first dispatch coalesces
                // several requests — they must all resolve, not just
                // the one that triggered the panic.
                max_wait: Duration::from_millis(50),
                ..Default::default()
            },
        );
        let service = builder.start();
        let mut client = service.client();
        let handles = submit_up_to(&mut client, code, 6);
        assert!(!handles.is_empty(), "no request was ever accepted");
        let accepted = handles.len() as u64;
        for handle in handles {
            let response = handle
                .wait_timeout(Duration::from_secs(30))
                .expect("handle must resolve after worker death");
            assert_eq!(response.result.unwrap_err(), DecodeError::WorkerLost);
        }

        // Once the last worker is gone, submissions refuse rather than
        // queueing into the void.
        loop {
            match client.submit(code, BitVec::from_indices(4, &[0])) {
                Err(SubmitError::Shutdown) => break,
                Ok(h) => {
                    // Raced the dying worker; still answered.
                    let r = h.wait_timeout(Duration::from_secs(30)).unwrap();
                    assert_eq!(r.result.unwrap_err(), DecodeError::WorkerLost);
                }
                Err(SubmitError::Overloaded) => std::thread::yield_now(),
                Err(e) => panic!("unexpected submit error: {e}"),
            }
        }

        // The death left a post-mortem trail: the journal records the
        // panicking worker and (being the last of its code) the queue
        // drain it performed. The dying thread journals moments after
        // it flips the liveness counter, so poll briefly.
        let deadline = std::time::Instant::now() + Duration::from_secs(30);
        loop {
            let journal = service.journal(code);
            let death = journal.iter().any(|e| e.kind == "worker-death");
            let drain = journal.iter().any(|e| e.kind == "queue-drain");
            if death && drain {
                break;
            }
            assert!(
                std::time::Instant::now() < deadline,
                "missing post-mortem journal entries: {journal:?}"
            );
            std::thread::yield_now();
        }

        // Shutdown joins the (already dead) worker without hanging, and
        // the lost counter balances the books.
        let metrics = service.shutdown().remove(0);
        assert!(metrics.submitted >= accepted);
        assert_eq!(metrics.completed, 0);
        assert!(metrics.lost >= accepted);
        assert!(metrics.is_drained(), "completed+expired+lost != submitted");
    });
}

/// Same invariant under a trickle (max_batch = 1) and several shards:
/// each worker dies on its first request, later requests land on the
/// surviving shards until none remain, and the last death drains
/// whatever is still queued.
#[test]
fn trickle_across_shards_resolves_after_every_worker_dies() {
    with_timeout(Duration::from_secs(60), || {
        let mut builder = DecodeService::builder();
        let code = builder.register_code_with(
            "doomed",
            &rep5(),
            &[0.05; 5],
            panicking_factory(),
            ServiceConfig {
                shards: 3,
                max_batch: 1,
                max_wait: Duration::from_micros(50),
                ..Default::default()
            },
        );
        let service = builder.start();
        // Several clients so all three home shards see traffic.
        let mut clients: Vec<_> = (0..6).map(|_| service.client()).collect();
        let mut handles = Vec::new();
        for client in &mut clients {
            handles.extend(submit_up_to(client, code, 4));
        }
        assert!(!handles.is_empty());
        for handle in handles {
            let response = handle
                .wait_timeout(Duration::from_secs(30))
                .expect("handle must resolve after worker death");
            assert_eq!(response.result.unwrap_err(), DecodeError::WorkerLost);
        }
        let metrics = service.shutdown().remove(0);
        assert_eq!(metrics.completed, 0);
        assert!(metrics.is_drained());
    });
}

/// A healthy sibling code keeps decoding while another code's workers
/// die: worker loss is contained per code.
#[test]
fn healthy_code_survives_sibling_worker_death() {
    with_timeout(Duration::from_secs(60), || {
        let h = rep5();
        let healthy_factory: DecoderFactory = Box::new(|h, priors| {
            Box::new(qldpc_bp::MinSumDecoder::new(
                h,
                priors,
                qldpc_bp::BpConfig::default(),
            ))
        });
        let mut builder = DecodeService::builder();
        let doomed = builder.register_code_with(
            "doomed",
            &h,
            &[0.05; 5],
            panicking_factory(),
            ServiceConfig {
                shards: 1,
                ..Default::default()
            },
        );
        let healthy = builder.register_code_with(
            "healthy",
            &h,
            &[0.05; 5],
            healthy_factory,
            ServiceConfig {
                shards: 1,
                max_wait: Duration::from_micros(50),
                ..Default::default()
            },
        );
        let service = builder.start();
        let mut client = service.client();

        let lost = submit_up_to(&mut client, doomed, 2);
        for handle in lost {
            let r = handle.wait_timeout(Duration::from_secs(30)).unwrap();
            assert_eq!(r.result.unwrap_err(), DecodeError::WorkerLost);
        }

        // The healthy code still decodes correctly after the sibling died.
        let error = BitVec::from_indices(5, &[2]);
        let handle = loop {
            match client.submit(healthy, h.mul_vec(&error)) {
                Ok(h) => break h,
                Err(SubmitError::Overloaded) => std::thread::yield_now(),
                Err(e) => panic!("healthy code refused: {e}"),
            }
        };
        let outcome = handle
            .wait_timeout(Duration::from_secs(30))
            .expect("healthy decode resolves")
            .result
            .expect("healthy decode succeeds");
        assert!(outcome.solved);
        assert_eq!(outcome.error_hat, error);

        let snapshots = service.shutdown();
        assert!(snapshots[0].is_drained());
        assert!(snapshots[1].is_drained());
        assert_eq!(snapshots[1].lost, 0);
    });
}
