//! End-to-end coverage of the networked front-end: a real
//! [`qldpc_client::Connection`] talking to a [`NetFrontend`] over TCP
//! and UDS, pinned against the in-process service for bit-identity.
//!
//! Everything is hermetic — loopback TCP on an OS-assigned port, UDS
//! under the test temp dir, no external processes.

use qldpc_bp::{BpConfig, BpWindowDecoder, MinSumDecoder};
use qldpc_circuit::{window_plan, MemoryExperiment, NoiseModel};
use qldpc_client::{ClientError, Connection};
use qldpc_codes::bb;
use qldpc_decoder_api::{DecoderFactory, WindowDecoderFactory, WindowPlan};
use qldpc_gf2::{BitVec, SparseBitMatrix};
use qldpc_server::{DecodeService, FrontendConfig, NetFrontend, ServiceConfig};
use qldpc_wire::{read_frame, write_frame, DecodeFailure, ErrorCode, Frame, PROTOCOL_VERSION};
use std::sync::Arc;
use std::time::Duration;

/// Deadlock guard: runs `f` on a helper thread, fails the test if it
/// neither finishes nor panics within `limit`.
fn with_timeout<F: FnOnce() + Send + 'static>(limit: Duration, f: F) {
    let (tx, rx) = std::sync::mpsc::channel();
    let worker = std::thread::spawn(move || {
        f();
        tx.send(()).ok();
    });
    match rx.recv_timeout(limit) {
        Ok(()) | Err(std::sync::mpsc::RecvTimeoutError::Disconnected) => {
            worker.join().expect("test thread panicked")
        }
        Err(std::sync::mpsc::RecvTimeoutError::Timeout) => {
            panic!("test exceeded {limit:?} — the front-end stranded a client")
        }
    }
}

fn rep5() -> SparseBitMatrix {
    SparseBitMatrix::from_row_indices(4, 5, &[vec![0, 1], vec![1, 2], vec![2, 3], vec![3, 4]])
}

fn minsum_factory() -> DecoderFactory {
    Box::new(|h, priors| Box::new(MinSumDecoder::new(h, priors, BpConfig::default())))
}

fn sequential_config() -> ServiceConfig {
    ServiceConfig {
        shards: 1,
        max_wait: Duration::from_micros(50),
        ..Default::default()
    }
}

/// One single-shot code plus one streaming code — the registration mix
/// every front-end test runs against.
fn mixed_service() -> (Arc<DecodeService>, Arc<WindowPlan>) {
    let exp = MemoryExperiment::memory_z(&bb::bb72(), 3, &NoiseModel::uniform_depolarizing(2e-3));
    let dem = exp.detector_error_model();
    let k = dem.num_detectors() / 4;
    let plan = Arc::new(window_plan(&dem, k, 2, 1));
    let window_factory: WindowDecoderFactory =
        Box::new(|plan| Box::new(BpWindowDecoder::new(plan, BpConfig::default())));
    let mut builder = DecodeService::builder();
    builder.register_code_with(
        "rep5",
        &rep5(),
        &[0.05; 5],
        minsum_factory(),
        sequential_config(),
    );
    builder.register_streaming_code_with(
        "bb72-stream",
        Arc::clone(&plan),
        window_factory,
        sequential_config(),
    );
    (Arc::new(builder.start()), plan)
}

fn frontend_config(node: &str) -> FrontendConfig {
    FrontendConfig {
        node: node.to_string(),
        ..Default::default()
    }
}

/// Deterministic non-trivial detector rounds for streaming tests.
fn test_rounds(plan: &WindowPlan) -> Vec<BitVec> {
    (0..plan.num_round_blocks)
        .map(|r| BitVec::from_indices(plan.dets_per_round, &[(r * 7 + 3) % plan.dets_per_round]))
        .collect()
}

#[test]
fn tcp_round_trip_is_bit_identical_to_in_process() {
    with_timeout(Duration::from_secs(60), || {
        let (service, _plan) = mixed_service();
        let mut frontend = NetFrontend::serve_tcp(
            Arc::clone(&service),
            "127.0.0.1:0",
            frontend_config("alpha"),
        )
        .expect("bind tcp");
        let addr = frontend.local_addr().expect("tcp front-end has an addr");

        let mut conn = Connection::connect_tcp(addr, "net-test").expect("connect");
        assert_eq!(conn.node(), "alpha");
        conn.set_reply_timeout(Some(Duration::from_secs(30)))
            .unwrap();

        let code = conn.lookup_code("rep5").expect("lookup");
        assert_eq!(code.name, "rep5");
        assert_eq!(code.syndrome_bits, 4);

        let h = rep5();
        let in_process_code = service.lookup_code("rep5").unwrap();
        let mut local = service.client();
        for error_bits in [vec![2], vec![0, 4], vec![]] {
            let error = BitVec::from_indices(5, &error_bits);
            let syndrome = h.mul_vec(&error);
            let reply = conn.decode(code.id, &syndrome).expect("wire decode");
            let remote = reply.result.expect("remote decode succeeded");
            let local_outcome = local
                .submit(in_process_code, syndrome)
                .unwrap()
                .wait()
                .result
                .expect("local decode succeeded");
            // The wire adds serialization, not arithmetic: the outcome —
            // error estimate, convergence flags, iteration counts,
            // telemetry — is bit-identical to the in-process decode.
            assert_eq!(remote, local_outcome);
            assert_eq!(remote.error_hat, error);
        }

        frontend.shutdown();
    });
}

#[test]
fn uds_round_trip_serves_metrics_with_node_label() {
    with_timeout(Duration::from_secs(60), || {
        let (service, _plan) = mixed_service();
        let path = std::env::temp_dir().join(format!("qldpc-net-{}-uds.sock", std::process::id()));
        let _ = std::fs::remove_file(&path);
        let mut frontend =
            NetFrontend::serve_uds(Arc::clone(&service), &path, frontend_config("beta"))
                .expect("bind uds");

        let mut conn = Connection::connect_uds(&path, "net-test").expect("connect");
        assert_eq!(conn.node(), "beta");
        conn.set_reply_timeout(Some(Duration::from_secs(30)))
            .unwrap();

        let code = conn.lookup_code("rep5").expect("lookup");
        let h = rep5();
        let error = BitVec::from_indices(5, &[1]);
        let reply = conn.decode(code.id, &h.mul_vec(&error)).expect("decode");
        assert_eq!(reply.result.unwrap().error_hat, error);

        // The metrics endpoint serves the node-labeled exposition, and
        // the decode above is already in it (the handle resolved before
        // the reply frame was written).
        let text = conn.metrics().expect("metrics");
        assert!(
            text.contains("node=\"beta\""),
            "missing node label:\n{text}"
        );
        assert!(text.contains("qldpc_requests_submitted_total{code=\"rep5\",node=\"beta\"}"));

        // Shutdown removes the socket file — rebinding the same path
        // must work without manual cleanup.
        frontend.shutdown();
        assert!(!path.exists(), "UDS path survived shutdown");
    });
}

#[test]
fn stream_over_wire_matches_in_process_session() {
    with_timeout(Duration::from_secs(120), || {
        let (service, plan) = mixed_service();
        let mut frontend = NetFrontend::serve_tcp(
            Arc::clone(&service),
            "127.0.0.1:0",
            frontend_config("gamma"),
        )
        .expect("bind tcp");
        let addr = frontend.local_addr().unwrap();
        let rounds = test_rounds(&plan);

        // In-process reference: same rounds through a local session.
        let stream_code = service.lookup_code("bb72-stream").unwrap();
        let mut local = service.stream_session(stream_code).expect("local session");
        let mut local_events = Vec::new();
        for round in &rounds {
            local_events.extend(local.push_round(round).expect("local push"));
        }
        let local_result = local.finish().expect("local finish");
        local_events.extend(local_result.events.iter().cloned());

        // The same rounds over the wire.
        let mut conn = Connection::connect_tcp(addr, "net-test").expect("connect");
        conn.set_reply_timeout(Some(Duration::from_secs(60)))
            .unwrap();
        let code = conn.lookup_code("bb72-stream").expect("lookup");
        assert_eq!(
            code.syndrome_bits, 0,
            "streaming codes expose no single-shot length"
        );
        let mut stream = conn.open_stream(code.id).expect("open stream");
        assert_eq!(stream.num_windows(), plan.num_windows() as u64);
        assert_eq!(stream.num_round_blocks(), plan.num_round_blocks as u64);
        assert_eq!(stream.dets_per_round(), plan.dets_per_round as u64);
        assert_eq!(stream.num_mechanisms(), plan.num_mechanisms as u64);

        let mut wire_events = Vec::new();
        for round in &rounds {
            wire_events.extend(stream.push_round(round).expect("wire push"));
        }
        let outcome = stream.finish().expect("wire finish");
        wire_events.extend(outcome.events.iter().cloned());

        // Bit-identity: the windowed BP kernel is deterministic, so the
        // remote session commits the same windows with the same
        // mechanism sets and lands on the same global error estimate.
        assert_eq!(outcome.all_solved, local_result.all_solved);
        assert_eq!(outcome.error_hat, local_result.error_hat);
        assert_eq!(wire_events.len(), local_events.len());
        for (wire, local) in wire_events.iter().zip(&local_events) {
            assert_eq!(wire.window_index, local.window_index as u64);
            assert_eq!(wire.start_round, local.start_round as u64);
            assert_eq!(wire.end_round, local.end_round as u64);
            assert_eq!(wire.solved, local.solved);
            assert_eq!(wire.mechanisms, local.mechanisms);
        }

        frontend.shutdown();
    });
}

/// Every caller mistake the in-process API signals (or panics on) comes
/// back over the wire as a typed [`ClientError::Remote`] — and the
/// connection stays usable afterwards.
#[test]
fn caller_mistakes_become_typed_remote_errors() {
    with_timeout(Duration::from_secs(120), || {
        let (service, plan) = mixed_service();
        let mut frontend = NetFrontend::serve_tcp(
            Arc::clone(&service),
            "127.0.0.1:0",
            frontend_config("delta"),
        )
        .expect("bind tcp");
        let addr = frontend.local_addr().unwrap();
        let mut conn = Connection::connect_tcp(addr, "net-test").expect("connect");
        conn.set_reply_timeout(Some(Duration::from_secs(60)))
            .unwrap();

        let expect_remote = |err: ClientError, want: ErrorCode| match err {
            ClientError::Remote { code, .. } => assert_eq!(code, want),
            other => panic!("expected Remote({want}), got {other}"),
        };

        // Unknown code name.
        expect_remote(
            conn.lookup_code("no-such-code").unwrap_err(),
            ErrorCode::UnknownCode,
        );
        // Unknown numeric code id.
        expect_remote(
            conn.decode(999, &BitVec::zeros(4)).unwrap_err(),
            ErrorCode::UnknownCode,
        );

        let single = conn.lookup_code("rep5").unwrap();
        let streaming = conn.lookup_code("bb72-stream").unwrap();

        // Wrong syndrome length on a single-shot code.
        expect_remote(
            conn.decode(single.id, &BitVec::zeros(7)).unwrap_err(),
            ErrorCode::SyndromeLength,
        );
        // Single-shot decode of a streaming code, and vice versa.
        expect_remote(
            conn.decode(streaming.id, &BitVec::zeros(4)).unwrap_err(),
            ErrorCode::WrongCodeKind,
        );
        expect_remote(
            conn.open_stream(single.id)
                .err()
                .expect("stream on single-shot"),
            ErrorCode::WrongCodeKind,
        );

        // Stream contract violations: wrong round width is refused
        // without poisoning the session; finishing early is refused;
        // the session then completes normally.
        let rounds = test_rounds(&plan);
        let mut stream = conn.open_stream(streaming.id).expect("open stream");
        expect_remote(
            stream
                .push_round(&BitVec::zeros(plan.dets_per_round + 1))
                .unwrap_err(),
            ErrorCode::SyndromeLength,
        );
        stream
            .push_round(&rounds[0])
            .expect("session survived the bad round");

        let mut stream = {
            // Finish-before-all-rounds consumes the stream; reopen.
            let _abandoned = stream;
            let mut s = conn.open_stream(streaming.id).expect("reopen stream");
            s.push_round(&rounds[0]).expect("push");
            s
        };
        // Overfilling: push every remaining round, then one extra.
        for round in &rounds[1..] {
            stream.push_round(round).expect("push");
        }
        expect_remote(
            stream.push_round(&rounds[0]).unwrap_err(),
            ErrorCode::BadFrame,
        );
        let outcome = stream.finish().expect("finish after refusals");
        assert_eq!(outcome.error_hat.len(), plan.num_mechanisms);

        // The connection is still healthy after every refusal above.
        let h = rep5();
        let error = BitVec::from_indices(5, &[3]);
        let reply = conn.decode(single.id, &h.mul_vec(&error)).expect("decode");
        assert_eq!(reply.result.unwrap().error_hat, error);

        frontend.shutdown();
    });
}

/// A premature `StreamFinish` is refused as `BadFrame` and closes the
/// session (the wire cannot keep a half-fed session alive once the
/// client considers it finished).
#[test]
fn premature_stream_finish_is_refused() {
    with_timeout(Duration::from_secs(60), || {
        let (service, plan) = mixed_service();
        let mut frontend = NetFrontend::serve_tcp(
            Arc::clone(&service),
            "127.0.0.1:0",
            frontend_config("epsilon"),
        )
        .expect("bind tcp");
        let addr = frontend.local_addr().unwrap();
        let mut conn = Connection::connect_tcp(addr, "net-test").expect("connect");
        conn.set_reply_timeout(Some(Duration::from_secs(30)))
            .unwrap();

        let streaming = conn.lookup_code("bb72-stream").unwrap();
        let mut stream = conn.open_stream(streaming.id).expect("open stream");
        stream.push_round(&test_rounds(&plan)[0]).expect("push");
        match stream.finish().unwrap_err() {
            ClientError::Remote { code, .. } => assert_eq!(code, ErrorCode::BadFrame),
            other => panic!("expected Remote(BadFrame), got {other}"),
        }

        frontend.shutdown();
    });
}

/// Version negotiation: a client speaking a different protocol version
/// is refused with `UnsupportedVersion` before anything else happens.
#[test]
fn handshake_rejects_version_mismatch() {
    with_timeout(Duration::from_secs(60), || {
        let (service, _plan) = mixed_service();
        let mut frontend =
            NetFrontend::serve_tcp(Arc::clone(&service), "127.0.0.1:0", frontend_config("zeta"))
                .expect("bind tcp");
        let addr = frontend.local_addr().unwrap();

        let mut sock = std::net::TcpStream::connect(addr).expect("connect");
        sock.set_read_timeout(Some(Duration::from_secs(30)))
            .unwrap();
        write_frame(
            &mut sock,
            &Frame::Hello {
                version: PROTOCOL_VERSION + 1,
                client: "time-traveler".to_string(),
            },
        )
        .expect("send hello");
        use std::io::Write as _;
        sock.flush().unwrap();
        match read_frame(&mut sock, qldpc_wire::DEFAULT_MAX_PAYLOAD).expect("read refusal") {
            Some(Frame::Error { code, detail, .. }) => {
                assert_eq!(code, ErrorCode::UnsupportedVersion);
                assert!(detail.contains(&PROTOCOL_VERSION.to_string()));
            }
            other => panic!("expected UnsupportedVersion error, got {other:?}"),
        }
        // The server hangs up after the refusal.
        assert!(matches!(
            read_frame(&mut sock, qldpc_wire::DEFAULT_MAX_PAYLOAD),
            Ok(None)
        ));

        frontend.shutdown();
    });
}

/// Dispatch deadlines cross the wire: a request that cannot be
/// dispatched in time resolves as a typed `DeadlineExceeded` failure,
/// not a transport error.
#[test]
fn wire_deadline_surfaces_as_typed_failure() {
    with_timeout(Duration::from_secs(60), || {
        struct SleepyDecoder;
        impl qldpc_decoder_api::SyndromeDecoder for SleepyDecoder {
            fn decode_syndrome(&mut self, _syndrome: &BitVec) -> qldpc_decoder_api::DecodeOutcome {
                std::thread::sleep(Duration::from_millis(400));
                qldpc_decoder_api::DecodeOutcome {
                    error_hat: BitVec::zeros(5),
                    solved: true,
                    serial_iterations: 1,
                    critical_iterations: 1,
                    postprocessed: false,
                    telemetry: qldpc_decoder_api::DecodeTelemetry::bp(1, true),
                }
            }
            fn label(&self) -> String {
                "SleepyDecoder".into()
            }
        }
        let mut builder = DecodeService::builder();
        builder.register_code_with(
            "slow",
            &rep5(),
            &[0.05; 5],
            Box::new(|_h, _priors| Box::new(SleepyDecoder)),
            sequential_config(),
        );
        let service = Arc::new(builder.start());
        let mut frontend =
            NetFrontend::serve_tcp(Arc::clone(&service), "127.0.0.1:0", frontend_config("eta"))
                .expect("bind tcp");
        let addr = frontend.local_addr().unwrap();

        // Connection A occupies the single worker for ~400 ms.
        let blocker = std::thread::spawn(move || {
            let mut conn = Connection::connect_tcp(addr, "blocker").expect("connect");
            conn.set_reply_timeout(Some(Duration::from_secs(30)))
                .unwrap();
            let code = conn.lookup_code("slow").unwrap();
            conn.decode(code.id, &BitVec::zeros(4))
                .expect("blocking decode")
        });
        std::thread::sleep(Duration::from_millis(100));

        // Connection B's request must wait behind it — far past its
        // 1 ms dispatch deadline.
        let mut conn = Connection::connect_tcp(addr, "deadline").expect("connect");
        conn.set_reply_timeout(Some(Duration::from_secs(30)))
            .unwrap();
        let code = conn.lookup_code("slow").unwrap();
        let reply = conn
            .decode_with_deadline(code.id, &BitVec::zeros(4), Some(Duration::from_millis(1)))
            .expect("transport round-trip succeeds");
        assert_eq!(reply.result, Err(DecodeFailure::DeadlineExceeded));

        let blocked = blocker.join().expect("blocker thread");
        assert!(blocked.result.expect("blocker decode").solved);
        frontend.shutdown();
    });
}
