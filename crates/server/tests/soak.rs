//! Correctness soak for the decoding service: concurrent producers,
//! mixed codes, random deadlines — every accepted request gets exactly
//! one response, decoded responses are bit-identical to scalar
//! decoding, per-client FIFO dispatch holds, backpressure rejects, and
//! shutdown drains without deadlock.
//!
//! Every test body runs under [`with_timeout`] so a scheduler deadlock
//! fails the suite instead of hanging it.

use qldpc_bp::{BpConfig, MinSumDecoder};
use qldpc_decoder_api::{DecodeOutcome, DecodeTelemetry, DecoderFactory, SyndromeDecoder};
use qldpc_gf2::{BitVec, SparseBitMatrix};
use qldpc_server::{
    CodeId, DecodeError, DecodeService, ResponseHandle, ServiceConfig, SubmitError,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::time::Duration;

/// Runs `f` on a helper thread and panics if it neither finishes nor
/// panics within `limit` (deadlock guard).
fn with_timeout<F: FnOnce() + Send + 'static>(limit: Duration, f: F) {
    let (tx, rx) = std::sync::mpsc::channel();
    let worker = std::thread::spawn(move || {
        f();
        tx.send(()).ok();
    });
    match rx.recv_timeout(limit) {
        // Finished or panicked — join to surface the panic.
        Ok(()) | Err(std::sync::mpsc::RecvTimeoutError::Disconnected) => {
            worker.join().expect("soak test thread panicked")
        }
        Err(std::sync::mpsc::RecvTimeoutError::Timeout) => {
            panic!("test exceeded {limit:?} — possible scheduler deadlock")
        }
    }
}

fn bp_factory(max_iters: usize) -> DecoderFactory {
    Box::new(move |h, priors| {
        let config = BpConfig {
            max_iters,
            ..BpConfig::default()
        };
        Box::new(MinSumDecoder::new(h, priors, config))
    })
}

/// A random syndrome from an i.i.d. weight-`p` error on `h`.
fn random_syndrome(h: &SparseBitMatrix, p: f64, rng: &mut StdRng) -> BitVec {
    let mut error = BitVec::zeros(h.cols());
    for i in 0..h.cols() {
        if rng.random_bool(p) {
            error.set(i, true);
        }
    }
    h.mul_vec(&error)
}

/// Submits with bounded retries on `Overloaded` backpressure.
fn submit_retrying(
    client: &mut qldpc_server::Client,
    code: CodeId,
    syndrome: BitVec,
    deadline: Option<Duration>,
) -> ResponseHandle {
    loop {
        let result = match deadline {
            Some(d) => client.submit_with_deadline(code, syndrome.clone(), d),
            None => client.submit(code, syndrome.clone()),
        };
        match result {
            Ok(handle) => return handle,
            Err(SubmitError::Overloaded) => std::thread::yield_now(),
            Err(e) => panic!("unexpected submit error: {e}"),
        }
    }
}

/// The headline soak: K producer threads, two codes with different
/// priors, randomized syndromes and deadlines. Every request is
/// answered exactly once, in per-client submission order, and decoded
/// responses match a scalar `decode_syndrome` bit-for-bit (the PR-2
/// batch≡scalar machinery extended through the service).
#[test]
fn soak_mixed_codes_bit_identical_no_request_lost() {
    with_timeout(Duration::from_secs(120), || {
        const PRODUCERS: usize = 4;
        const REQUESTS: usize = 150;
        const BP_ITERS: usize = 40;
        let code = qldpc_codes::bb::bb72();
        let hz = code.hz().clone();
        let hx = code.hx().clone();
        let priors_z = vec![0.03; hz.cols()];
        let priors_x = vec![0.05; hx.cols()];

        let mut builder = DecodeService::builder();
        let config = ServiceConfig {
            shards: 2,
            max_wait: Duration::from_micros(100),
            queue_capacity: 256,
            ..ServiceConfig::default()
        };
        let id_z =
            builder.register_code_with("bb72-z", &hz, &priors_z, bp_factory(BP_ITERS), config);
        let id_x =
            builder.register_code_with("bb72-x", &hx, &priors_x, bp_factory(BP_ITERS), config);
        let service = builder.start();

        let producers: Vec<_> = (0..PRODUCERS)
            .map(|p| {
                let mut client = service.client();
                let (hz, hx) = (hz.clone(), hx.clone());
                std::thread::spawn(move || {
                    let mut rng = StdRng::seed_from_u64(1000 + p as u64);
                    let mut sent = Vec::with_capacity(REQUESTS);
                    for _ in 0..REQUESTS {
                        let (code_id, h, p_err) = if rng.random_bool(0.5) {
                            (id_z, &hz, 0.03)
                        } else {
                            (id_x, &hx, 0.05)
                        };
                        let syndrome = random_syndrome(h, p_err, &mut rng);
                        // 25% already-expired deadlines, 25% generous,
                        // 50% none.
                        let deadline = match rng.random_range(0..4usize) {
                            0 => Some(Duration::ZERO),
                            1 => Some(Duration::from_secs(60)),
                            _ => None,
                        };
                        let handle =
                            submit_retrying(&mut client, code_id, syndrome.clone(), deadline);
                        sent.push((code_id, syndrome, deadline, handle));
                    }
                    // Wait in submission order; echo fields prove each
                    // handle resolves to its own request.
                    sent.into_iter()
                        .enumerate()
                        .map(|(i, (code_id, syndrome, deadline, handle))| {
                            let request_id = handle.request_id();
                            assert_eq!(handle.client_seq(), i as u64, "client seq not contiguous");
                            let response = handle.wait();
                            assert_eq!(response.request_id, request_id);
                            assert_eq!(response.client_seq, i as u64);
                            (code_id, syndrome, deadline, response)
                        })
                        .collect::<Vec<_>>()
                })
            })
            .collect();

        // Scalar references, one per code, for bit-identical comparison.
        let bp = |max_iters| BpConfig {
            max_iters,
            ..BpConfig::default()
        };
        let mut reference_z = MinSumDecoder::new(&hz, &priors_z, bp(BP_ITERS));
        let mut reference_x = MinSumDecoder::new(&hx, &priors_x, bp(BP_ITERS));
        let mut total_expired = 0u64;
        let mut total_completed = 0u64;
        for producer in producers {
            let responses = producer.join().expect("producer panicked");
            assert_eq!(responses.len(), REQUESTS, "a request was lost");
            for (code_id, syndrome, deadline, response) in responses {
                match response.result {
                    Ok(outcome) => {
                        total_completed += 1;
                        let reference: DecodeOutcome = if code_id == id_z {
                            reference_z.decode_syndrome(&syndrome)
                        } else {
                            reference_x.decode_syndrome(&syndrome)
                        };
                        assert_eq!(outcome.solved, reference.solved);
                        assert_eq!(outcome.error_hat, reference.error_hat);
                        assert_eq!(outcome.serial_iterations, reference.serial_iterations);
                        assert_eq!(outcome.critical_iterations, reference.critical_iterations);
                        assert!(response.batch_size >= 1);
                    }
                    Err(DecodeError::DeadlineExceeded) => {
                        total_expired += 1;
                        // Only requests that *had* a deadline may expire;
                        // Duration::ZERO ones always do.
                        assert!(deadline.is_some(), "deadline-free request expired");
                    }
                    Err(DecodeError::WorkerLost) => {
                        panic!("no worker dies in this soak, yet a request was lost")
                    }
                }
            }
        }
        assert!(total_expired > 0, "no already-expired deadline exercised");

        // Shutdown snapshots come back in registration order (z then x).
        let snapshots = service.shutdown();
        let (sz, sx) = (&snapshots[0], &snapshots[1]);
        let submitted: u64 = sz.submitted + sx.submitted;
        assert_eq!(submitted, (PRODUCERS * REQUESTS) as u64);
        assert_eq!(sz.completed + sx.completed, total_completed);
        assert_eq!(sz.expired + sx.expired, total_expired);
        assert!(sz.is_drained() && sx.is_drained());
    });
}

/// With a single shard the per-code completion stamp makes per-client
/// FIFO directly observable: each client's responses carry strictly
/// increasing `completion_seq` in submission order, even with several
/// clients interleaving.
#[test]
fn per_client_fifo_dispatch_single_shard() {
    with_timeout(Duration::from_secs(60), || {
        let h = SparseBitMatrix::from_row_indices(
            4,
            5,
            &[vec![0, 1], vec![1, 2], vec![2, 3], vec![3, 4]],
        );
        let priors = vec![0.05; 5];
        let mut builder = DecodeService::builder();
        let config = ServiceConfig {
            shards: 1,
            max_batch: 8,
            max_wait: Duration::from_micros(200),
            queue_capacity: 64,
            ..ServiceConfig::default()
        };
        let code = builder.register_code_with("rep5", &h, &priors, bp_factory(20), config);
        let service = builder.start();

        let producers: Vec<_> = (0..3)
            .map(|p| {
                let mut client = service.client();
                let h = h.clone();
                std::thread::spawn(move || {
                    let mut rng = StdRng::seed_from_u64(p as u64);
                    (0..100)
                        .map(|_| {
                            let syndrome = random_syndrome(&h, 0.1, &mut rng);
                            submit_retrying(&mut client, code, syndrome, None).wait()
                        })
                        .map(|response| response.completion_seq)
                        .collect::<Vec<u64>>()
                })
            })
            .collect();
        for producer in producers {
            let seqs = producer.join().expect("producer panicked");
            assert!(
                seqs.windows(2).all(|w| w[0] < w[1]),
                "per-client completion order not FIFO: {seqs:?}"
            );
        }
        service.shutdown();
    });
}

/// A decoder that sleeps per batch — lets the tests force queue buildup
/// deterministically.
struct SlowDecoder {
    delay: Duration,
}

impl SyndromeDecoder for SlowDecoder {
    fn decode_syndrome(&mut self, syndrome: &BitVec) -> DecodeOutcome {
        std::thread::sleep(self.delay);
        DecodeOutcome {
            error_hat: BitVec::zeros(syndrome.len()),
            solved: true,
            serial_iterations: 1,
            critical_iterations: 1,
            postprocessed: false,
            telemetry: DecodeTelemetry::bp(1, true),
        }
    }

    fn label(&self) -> String {
        "Slow".into()
    }

    fn decode_batch(&mut self, syndromes: &[BitVec]) -> Vec<DecodeOutcome> {
        // One nap per batch: batch formation is observable via timing.
        std::thread::sleep(self.delay);
        syndromes
            .iter()
            .map(|s| DecodeOutcome {
                error_hat: BitVec::zeros(s.len()),
                solved: true,
                serial_iterations: 1,
                critical_iterations: 1,
                postprocessed: false,
                telemetry: DecodeTelemetry::bp(1, true),
            })
            .collect()
    }
}

fn slow_factory(delay: Duration) -> DecoderFactory {
    Box::new(move |_h, _priors| Box::new(SlowDecoder { delay }))
}

fn tiny_h() -> SparseBitMatrix {
    SparseBitMatrix::from_row_indices(2, 3, &[vec![0, 1], vec![1, 2]])
}

/// Beyond the high-water mark, submissions bounce with `Overloaded`
/// instead of queueing unboundedly — and every *accepted* request still
/// resolves.
#[test]
fn bounded_queues_reject_when_overloaded() {
    with_timeout(Duration::from_secs(60), || {
        let h = tiny_h();
        let mut builder = DecodeService::builder();
        let config = ServiceConfig {
            shards: 1,
            max_batch: 1,
            max_wait: Duration::ZERO,
            queue_capacity: 2,
            ..ServiceConfig::default()
        };
        let code = builder.register_code_with(
            "tiny",
            &h,
            &[0.1; 3],
            slow_factory(Duration::from_millis(50)),
            config,
        );
        let service = builder.start();
        let mut client = service.client();

        let mut accepted = Vec::new();
        let mut rejected = 0;
        for _ in 0..10 {
            match client.submit(code, BitVec::zeros(2)) {
                Ok(handle) => accepted.push(handle),
                Err(SubmitError::Overloaded) => rejected += 1,
                Err(e) => panic!("unexpected submit error: {e}"),
            }
        }
        assert!(rejected > 0, "queue_capacity=2 never overflowed");
        assert!(!accepted.is_empty());
        let n_accepted = accepted.len() as u64;
        for handle in accepted {
            assert!(handle.wait().result.is_ok());
        }
        let metrics = service.shutdown().remove(0);
        assert_eq!(metrics.rejected_overload, rejected);
        assert_eq!(metrics.submitted, n_accepted);
        assert!(metrics.is_drained());
    });
}

/// Already-expired deadlines are answered with `DeadlineExceeded` and
/// never reach the decoder; live requests in the same stream decode
/// normally.
#[test]
fn expired_deadlines_are_answered_not_decoded() {
    with_timeout(Duration::from_secs(60), || {
        let h = tiny_h();
        let mut builder = DecodeService::builder();
        let code = builder.register_code_with(
            "tiny",
            &h,
            &[0.1; 3],
            bp_factory(10),
            ServiceConfig {
                shards: 1,
                max_wait: Duration::from_micros(50),
                ..ServiceConfig::default()
            },
        );
        let service = builder.start();
        let mut client = service.client();

        let expired = client
            .submit_with_deadline(code, BitVec::from_indices(2, &[0]), Duration::ZERO)
            .unwrap();
        let live = client
            .submit_with_deadline(code, BitVec::from_indices(2, &[0]), Duration::from_secs(60))
            .unwrap();
        assert_eq!(
            expired.wait().result.unwrap_err(),
            DecodeError::DeadlineExceeded
        );
        let outcome = live.wait().result.unwrap();
        assert!(outcome.solved);
        let metrics = service.shutdown().remove(0);
        assert_eq!(metrics.expired, 1);
        assert_eq!(metrics.completed, 1);
    });
}

/// Shutdown gates new submissions, drains everything already queued
/// (every outstanding handle resolves), and joins without deadlock.
#[test]
fn shutdown_drains_pending_and_gates_new_submissions() {
    with_timeout(Duration::from_secs(60), || {
        let h = tiny_h();
        let mut builder = DecodeService::builder();
        let config = ServiceConfig {
            shards: 1,
            max_batch: 4,
            max_wait: Duration::ZERO,
            queue_capacity: 64,
            ..ServiceConfig::default()
        };
        let code = builder.register_code_with(
            "tiny",
            &h,
            &[0.1; 3],
            slow_factory(Duration::from_millis(10)),
            config,
        );
        let service = builder.start();
        let mut client = service.client();
        let handles: Vec<_> = (0..8)
            .map(|_| client.submit(code, BitVec::zeros(2)).unwrap())
            .collect();
        let metrics = service.shutdown().remove(0);
        assert!(metrics.is_drained());
        assert_eq!(metrics.completed, 8);
        for handle in handles {
            // Already fulfilled — must not block.
            assert!(handle.is_ready());
            assert!(handle.try_take().is_ok());
        }
        assert!(matches!(
            client.submit(code, BitVec::zeros(2)),
            Err(SubmitError::Shutdown)
        ));
    });
}

/// Submission-time validation: wrong syndrome length and unknown code
/// ids are rejected at the door.
#[test]
fn submission_validation_errors() {
    with_timeout(Duration::from_secs(60), || {
        let h = tiny_h();
        let mut builder = DecodeService::builder();
        let code = builder.register_code("tiny", &h, &[0.1; 3], bp_factory(10));
        let service = builder.start();
        let mut client = service.client();
        assert!(matches!(
            client.submit(code, BitVec::zeros(5)),
            Err(SubmitError::SyndromeLength {
                expected: 2,
                got: 5
            })
        ));

        // A CodeId minted by a *different* service with more codes maps
        // past this service's registry.
        let mut other_builder = DecodeService::builder();
        other_builder.register_code("a", &h, &[0.1; 3], bp_factory(10));
        let foreign = other_builder.register_code("b", &h, &[0.1; 3], bp_factory(10));
        let other = other_builder.start();
        assert!(matches!(
            client.submit(foreign, BitVec::zeros(2)),
            Err(SubmitError::UnknownCode)
        ));
        other.shutdown();
        service.shutdown();
    });
}

/// Work stealing: with a hot shard and an idle shard (two clients pinned
/// to shard 0 by id parity is not controllable, so use many clients),
/// some requests are decoded off their home shard under load.
#[test]
fn work_stealing_engages_under_skewed_load() {
    with_timeout(Duration::from_secs(60), || {
        let h = tiny_h();
        let mut builder = DecodeService::builder();
        let config = ServiceConfig {
            shards: 2,
            max_batch: 4,
            max_wait: Duration::ZERO,
            queue_capacity: 256,
            ..ServiceConfig::default()
        };
        let code = builder.register_code_with(
            "tiny",
            &h,
            &[0.1; 3],
            slow_factory(Duration::from_millis(2)),
            config,
        );
        let service = builder.start();
        // Clients get ids 0, 1, 2, … — use only the even ones so all
        // load lands on shard 0 and shard 1 can only help by stealing.
        let mut clients: Vec<_> = (0..4).map(|_| service.client()).collect();
        let pinned: Vec<_> = clients
            .iter_mut()
            .filter(|c| c.client_id() % 2 == 0)
            .collect();
        let mut handles = Vec::new();
        for client in pinned {
            for _ in 0..40 {
                handles.push(submit_retrying(client, code, BitVec::zeros(2), None));
            }
        }
        let stolen = handles
            .into_iter()
            .map(|h| h.wait())
            .filter(|r| r.stolen)
            .count();
        let metrics = service.shutdown().remove(0);
        assert_eq!(metrics.stolen as usize, stolen);
        assert!(
            stolen > 0,
            "idle sibling shard never stole from the hot shard"
        );
    });
}

/// A code registered with an f32 factory and a declared `Precision::F32`:
/// responses are bit-identical to scalar *f32* decoding and the metrics
/// snapshot carries the precision tag.
#[test]
fn f32_precision_code_decodes_and_reports_precision() {
    with_timeout(Duration::from_secs(60), || {
        use qldpc_bp::MinSumDecoderF32;
        use qldpc_decoder_api::Precision;

        let code = qldpc_codes::bb::bb72();
        let hz = code.hz().clone();
        let priors = vec![0.03; hz.cols()];
        let bp_config = BpConfig {
            max_iters: 40,
            ..BpConfig::default()
        };
        let factory: DecoderFactory =
            Box::new(move |h, priors| Box::new(MinSumDecoderF32::new(h, priors, bp_config)));
        let mut builder = DecodeService::builder();
        let config = ServiceConfig {
            shards: 1,
            max_batch: 16,
            max_wait: Duration::from_micros(200),
            queue_capacity: 256,
            precision: Precision::F32,
        };
        let code_id = builder.register_code_with("bb72-z@f32", &hz, &priors, factory, config);
        let service = builder.start();

        let mut client = service.client();
        let mut rng = StdRng::seed_from_u64(77);
        let syndromes: Vec<BitVec> = (0..60)
            .map(|_| random_syndrome(&hz, 0.03, &mut rng))
            .collect();
        let handles: Vec<ResponseHandle> = syndromes
            .iter()
            .map(|s| submit_retrying(&mut client, code_id, s.clone(), None))
            .collect();

        let mut reference = MinSumDecoderF32::new(&hz, &priors, bp_config);
        for (syndrome, handle) in syndromes.iter().zip(handles) {
            let response = handle.wait();
            let outcome = response.result.expect("no deadline set");
            let expected = reference.decode_syndrome(syndrome);
            assert_eq!(outcome.solved, expected.solved);
            assert_eq!(outcome.error_hat, expected.error_hat);
            assert_eq!(outcome.serial_iterations, expected.serial_iterations);
        }

        let live = service.metrics(code_id);
        assert_eq!(live.precision, Precision::F32);
        assert!(live.render().contains("precision=f32"));
        let final_snapshot = service.shutdown().remove(0);
        assert_eq!(final_snapshot.precision, Precision::F32);
        assert_eq!(final_snapshot.completed, 60);
        assert!(final_snapshot.is_drained());
    });
}
