//! The text-exposition endpoint, pinned by a committed golden file.
//!
//! The scenario is fully deterministic below the clock: one shard per
//! code, sequential submissions each waited to completion, fixed
//! syndromes. Every non-timing series — request counters, batch-size
//! buckets, convergence counters, histogram sample *counts* — must
//! match the golden byte for byte; series carrying wall-clock values
//! (`*_seconds*` sum/min/max/quantiles) are range-checked instead.
//!
//! Regenerate after an intentional exposition change with:
//!
//! ```text
//! UPDATE_EXPOSITION_GOLDEN=1 cargo test -p qldpc-server --test exposition
//! ```

use qldpc_bp::{BpConfig, BpWindowDecoder, MinSumDecoder};
use qldpc_circuit::{window_plan, MemoryExperiment, NoiseModel};
use qldpc_codes::bb;
use qldpc_decoder_api::{DecoderFactory, WindowDecoderFactory};
use qldpc_gf2::{BitVec, SparseBitMatrix};
use qldpc_server::{DecodeService, ServiceConfig};
use std::sync::Arc;
use std::time::Duration;

const GOLDEN_PATH: &str = concat!(
    env!("CARGO_MANIFEST_DIR"),
    "/tests/fixtures/exposition.golden"
);

/// One-shard config so nothing is stolen and batches form one by one.
fn sequential_config() -> ServiceConfig {
    ServiceConfig {
        shards: 1,
        max_wait: Duration::from_micros(50),
        ..Default::default()
    }
}

/// Runs the pinned scenario and returns the rendered exposition.
fn pinned_scenario() -> String {
    // Single-shot code: 5-bit repetition chain under plain min-sum.
    let h =
        SparseBitMatrix::from_row_indices(4, 5, &[vec![0, 1], vec![1, 2], vec![2, 3], vec![3, 4]]);
    let factory: DecoderFactory =
        Box::new(|h, priors| Box::new(MinSumDecoder::new(h, priors, BpConfig::default())));
    // Streaming code: bb72 memory-Z, 3 rounds, W=2/C=1 windows.
    let exp = MemoryExperiment::memory_z(&bb::bb72(), 3, &NoiseModel::uniform_depolarizing(2e-3));
    let dem = exp.detector_error_model();
    let k = dem.num_detectors() / 4;
    let plan = Arc::new(window_plan(&dem, k, 2, 1));
    let window_factory: WindowDecoderFactory =
        Box::new(|plan| Box::new(BpWindowDecoder::new(plan, BpConfig::default())));

    let mut builder = DecodeService::builder();
    let rep5 = builder.register_code_with("rep5", &h, &[0.05; 5], factory, sequential_config());
    let stream = builder.register_streaming_code_with(
        "bb72-stream",
        Arc::clone(&plan),
        window_factory,
        sequential_config(),
    );
    let service = builder.start();

    // Three sequential single-shot decodes (each waited, so every batch
    // holds exactly one request): two single-bit errors and the zero
    // syndrome.
    let mut client = service.client();
    for error_bits in [vec![2], vec![0], vec![]] {
        let error = BitVec::from_indices(5, &error_bits);
        let response = client.submit(rep5, h.mul_vec(&error)).unwrap().wait();
        assert!(response.result.unwrap().solved);
    }

    // One quiet streaming session: every window commits zero mechanisms,
    // so spill is zero and the carried-prior count is the plan's own
    // boundary-link count — all deterministic.
    let mut session = service.stream_session(stream).unwrap();
    let zero_round = BitVec::zeros(plan.dets_per_round);
    for _ in 0..plan.num_round_blocks {
        session.push_round(&zero_round).unwrap();
    }
    assert!(session.finish().unwrap().all_solved);

    // Workers record the batch's post-process lap moments *after* the
    // last response is fulfilled, so wait for the final stage samples
    // of both codes before rendering the page we compare. The golden is
    // the *node-labeled* page (the form the networked front-end serves);
    // the node name is pinned, so it stays host-portable.
    let deadline = std::time::Instant::now() + Duration::from_secs(30);
    let settled = |text: &str| {
        ["rep5", "bb72-stream"].iter().all(|code| {
            text.contains(&format!(
                "qldpc_stage_duration_seconds_count{{code=\"{code}\",node=\"testnode\",\
                 stage=\"post_process\"}} 3"
            ))
        })
    };
    let text = loop {
        let text = service.render_exposition_for("testnode");
        if settled(&text) {
            break text;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "exposition never settled:\n{text}"
        );
        std::thread::yield_now();
    };
    // Rendering is deterministic: a second render of the same counter
    // state is byte-identical.
    assert_eq!(text, service.render_exposition_for("testnode"));
    // The node-less render is the same page minus the node labels —
    // same series count, no node key anywhere.
    let plain = service.render_exposition();
    assert_eq!(plain.lines().count(), text.lines().count());
    assert!(!plain.contains("node=\""));
    service.shutdown();
    text
}

/// Splits an exposition line into its series (name + labels) and value.
fn split_line(line: &str) -> (&str, &str) {
    let at = line.rfind(' ').expect("exposition line has no value");
    (&line[..at], &line[at + 1..])
}

/// Whether this series carries a wall-clock value (timing lines differ
/// run to run; sample *counts* of timing histograms stay deterministic).
fn is_timing_valued(series: &str) -> bool {
    let name = series.split('{').next().unwrap_or(series);
    name.contains("_seconds") && !name.ends_with("_seconds_count")
}

/// The kernel-stage series carry a `simd` label recording the dispatch
/// target of the machine that rendered the page; normalize its value so
/// the golden compares across hosts (and `QLDPC_SIMD_TARGET` settings).
fn normalize_simd(line: &str) -> String {
    match line.find("simd=\"") {
        Some(at) => {
            let vstart = at + "simd=\"".len();
            let vlen = line[vstart..].find('"').expect("unterminated simd label");
            format!("{}<target>{}", &line[..vstart], &line[vstart + vlen..])
        }
        None => line.to_string(),
    }
}

#[test]
fn exposition_matches_golden() {
    let text = pinned_scenario();
    if std::env::var_os("UPDATE_EXPOSITION_GOLDEN").is_some() {
        std::fs::write(GOLDEN_PATH, &text).expect("write golden");
        return;
    }
    let golden = std::fs::read_to_string(GOLDEN_PATH).expect(
        "missing tests/fixtures/exposition.golden — regenerate with \
         UPDATE_EXPOSITION_GOLDEN=1",
    );
    let got: Vec<&str> = text.lines().collect();
    let want: Vec<&str> = golden.lines().collect();
    assert_eq!(
        got.len(),
        want.len(),
        "line count diverged from golden\n--- got ---\n{text}"
    );
    for (g, w) in got.iter().zip(&want) {
        let (g_series, g_value) = split_line(g);
        let (w_series, _) = split_line(w);
        assert_eq!(
            normalize_simd(g_series),
            normalize_simd(w_series),
            "series set or order diverged"
        );
        if is_timing_valued(g_series) {
            let value: f64 = g_value.parse().expect("timing value parses");
            assert!(
                value.is_finite() && value >= 0.0,
                "timing series out of range: {g}"
            );
        } else {
            assert_eq!(
                normalize_simd(g),
                normalize_simd(w),
                "deterministic line diverged from golden"
            );
        }
    }
}

/// The acceptance surface: every scheduler stage the issue names shows
/// up, with samples, for both the single-shot and the streaming code.
#[test]
fn exposition_covers_all_stages_for_both_code_kinds() {
    let text = pinned_scenario();
    for code in ["rep5", "bb72-stream"] {
        for stage in [
            "queue_wait",
            "coalesce_wait",
            "kernel",
            "post_process",
            "fulfill",
        ] {
            // The kernel span alone carries the dispatch-target label.
            let series = if stage == "kernel" {
                format!(
                    "qldpc_stage_duration_seconds_count{{code=\"{code}\",node=\"testnode\",\
                     stage=\"kernel\",simd=\""
                )
            } else {
                format!(
                    "qldpc_stage_duration_seconds_count{{code=\"{code}\",node=\"testnode\",\
                     stage=\"{stage}\"}}"
                )
            };
            let line = text
                .lines()
                .find(|l| l.starts_with(&series))
                .unwrap_or_else(|| panic!("missing series {series}"));
            let (_, value) = split_line(line);
            assert_ne!(value, "0", "stage {stage} of {code} never sampled");
        }
        // One shard ⇒ stealing cannot happen, but the series must still
        // be exposed (at zero) so dashboards see the full taxonomy.
        let steal = format!(
            "qldpc_stage_duration_seconds_count{{code=\"{code}\",node=\"testnode\",\
             stage=\"steal\"}} 0"
        );
        assert!(
            text.contains(&steal),
            "missing zero steal series for {code}"
        );
    }
    // Convergence counters from both kernels made it through.
    assert!(text.contains("qldpc_bp_iterations_total{code=\"rep5\",node=\"testnode\"}"));
    assert!(
        text.contains("qldpc_window_carried_priors_total{code=\"bb72-stream\",node=\"testnode\"}")
    );
}
