//! Streaming-session integration: round-by-round submission against a
//! real circuit-level window plan, commit events in round order, and
//! the drain guarantees under shutdown.

use qldpc_bp::{BpConfig, BpWindowDecoder};
use qldpc_circuit::{window_plan, DemSampler, MemoryExperiment, NoiseModel};
use qldpc_codes::bb;
use qldpc_decoder_api::{WindowDecoderFactory, WindowPlan};
use qldpc_gf2::BitVec;
use qldpc_server::{CommitEvent, DecodeService, ServiceConfig, StreamError, SubmitError};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;
use std::time::Duration;

/// Deadlock guard (same idiom as the soak suite).
fn with_timeout<F: FnOnce() + Send + 'static>(limit: Duration, f: F) {
    let (tx, rx) = std::sync::mpsc::channel();
    let worker = std::thread::spawn(move || {
        f();
        tx.send(()).ok();
    });
    match rx.recv_timeout(limit) {
        Ok(()) | Err(std::sync::mpsc::RecvTimeoutError::Disconnected) => {
            worker.join().expect("test thread panicked")
        }
        Err(std::sync::mpsc::RecvTimeoutError::Timeout) => {
            panic!("test exceeded {limit:?} — streaming session deadlocked")
        }
    }
}

fn bp_window_factory(max_iters: usize) -> WindowDecoderFactory {
    Box::new(move |plan| {
        let config = BpConfig {
            max_iters,
            ..BpConfig::default()
        };
        Box::new(BpWindowDecoder::new(plan, config))
    })
}

/// bb72 memory-Z experiment sliced into W=2 / C=1 round windows.
fn bb72_setup(rounds: usize) -> (qldpc_circuit::DetectorErrorModel, Arc<WindowPlan>) {
    let exp =
        MemoryExperiment::memory_z(&bb::bb72(), rounds, &NoiseModel::uniform_depolarizing(2e-3));
    let dem = exp.detector_error_model();
    let k = dem.num_detectors() / (rounds + 1);
    let plan = Arc::new(window_plan(&dem, k, 2, 1));
    (dem, plan)
}

/// Events of one session must arrive strictly in window order and,
/// taken together, tile the plan's windows `0..n` with contiguous
/// committed round ranges.
fn assert_in_order_prefix(events: &[CommitEvent], plan: &WindowPlan) {
    for (i, event) in events.iter().enumerate() {
        assert_eq!(event.window_index, i, "commit events out of window order");
        assert_eq!(event.start_round, plan.windows[i].start_round);
        assert_eq!(event.end_round, plan.windows[i].commit_end_round);
        if i > 0 {
            assert_eq!(
                event.start_round,
                events[i - 1].end_round,
                "committed rounds must tile without gap or overlap"
            );
        }
    }
}

/// The tentpole end-to-end path: concurrent sessions stream sampled
/// shots round by round; commit events arrive strictly in window order
/// and tile the rounds; a fully solved stream's correction explains its
/// entire syndrome.
#[test]
fn sessions_stream_rounds_and_commit_in_order() {
    with_timeout(Duration::from_secs(120), || {
        let (dem, plan) = bb72_setup(4);
        let k = plan.dets_per_round;
        let num_rounds = plan.num_round_blocks;
        let mut builder = DecodeService::builder();
        let code = builder.register_streaming_code_with(
            "bb72-stream",
            Arc::clone(&plan),
            bp_window_factory(60),
            ServiceConfig {
                shards: 2,
                max_wait: Duration::from_micros(100),
                ..Default::default()
            },
        );
        let service = builder.start();

        let sampler = DemSampler::new(&dem);
        let mut rng = StdRng::seed_from_u64(17);
        let shots = sampler.sample_batch(&mut rng, 12);

        let mut sessions: Vec<_> = shots
            .iter()
            .map(|_| service.stream_session(code).expect("session opens"))
            .collect();
        let mut events: Vec<Vec<CommitEvent>> = vec![Vec::new(); shots.len()];
        // Interleave rounds across sessions so window submissions from
        // different streams coexist in the shard queues (the batching
        // path the service exists for).
        for r in 0..num_rounds {
            for (i, (session, shot)) in sessions.iter_mut().zip(&shots).enumerate() {
                let round = shot.syndrome.slice(r * k..(r + 1) * k);
                events[i].extend(session.push_round(&round).expect("push_round"));
            }
        }
        for ((session, shot), events) in sessions.into_iter().zip(&shots).zip(&mut events) {
            assert_eq!(session.rounds_pushed(), num_rounds);
            let result = session.finish().expect("finish");
            events.extend(result.events);
            assert_eq!(events.len(), plan.num_windows(), "every window commits");
            assert_in_order_prefix(events, &plan);
            assert_eq!(
                events.last().unwrap().end_round,
                num_rounds,
                "the last window commits through the final round"
            );
            // Committed mechanisms in events must be exactly the set
            // bits of the global estimate.
            let mut from_events = BitVec::zeros(dem.num_mechanisms());
            for event in events.iter() {
                for &m in &event.mechanisms {
                    assert!(!from_events.get(m as usize), "mechanism committed twice");
                    from_events.set(m as usize, true);
                }
            }
            assert_eq!(from_events, result.error_hat);
            // A fully solved stream's committed correction explains the
            // *entire* measured syndrome: committed rounds are final (only
            // committed columns and already-applied spill touch them).
            if result.all_solved {
                assert_eq!(
                    dem.check_matrix().mul_vec(&result.error_hat),
                    shot.syndrome,
                    "solved stream left residual syndrome unexplained"
                );
            }
        }
        let metrics = service.shutdown().remove(0);
        assert!(metrics.is_drained());
        assert_eq!(metrics.lost, 0);
        assert_eq!(
            metrics.submitted,
            (shots.len() * plan.num_windows()) as u64,
            "one submission per session per window"
        );
    });
}

/// A zero syndrome streams to a zero correction with no committed
/// mechanisms and every window solved.
#[test]
fn zero_syndrome_streams_to_zero_correction() {
    with_timeout(Duration::from_secs(60), || {
        let (dem, plan) = bb72_setup(3);
        let k = plan.dets_per_round;
        let mut builder = DecodeService::builder();
        let code = builder.register_streaming_code(
            "bb72-stream",
            Arc::clone(&plan),
            bp_window_factory(40),
        );
        let service = builder.start();
        let mut session = service.stream_session(code).expect("session opens");
        let zero_round = BitVec::zeros(k);
        let mut events = Vec::new();
        for _ in 0..plan.num_round_blocks {
            events.extend(session.push_round(&zero_round).expect("push_round"));
        }
        let result = session.finish().expect("finish");
        events.extend(result.events);
        assert!(result.all_solved);
        assert!(result.error_hat.is_zero());
        assert_eq!(events.len(), plan.num_windows());
        for event in &events {
            assert!(event.solved);
            assert!(event.mechanisms.is_empty());
        }
        assert_eq!(dem.num_undetectable(), 0);
        service.shutdown();
    });
}

/// Streaming codes and single-shot codes refuse each other's surfaces.
#[test]
fn wrong_code_kind_is_refused() {
    let (_, plan) = bb72_setup(2);
    let h = plan.windows[0].h.clone();
    let priors = plan.windows[0].priors.clone();
    let single_factory: qldpc_decoder_api::DecoderFactory = Box::new(|h, priors| {
        Box::new(qldpc_bp::MinSumDecoder::new(h, priors, BpConfig::default()))
    });
    let mut builder = DecodeService::builder();
    let streaming =
        builder.register_streaming_code("stream", Arc::clone(&plan), bp_window_factory(40));
    let single = builder.register_code("single", &h, &priors, single_factory);
    let service = builder.start();

    let mut client = service.client();
    assert_eq!(
        client
            .submit(streaming, BitVec::zeros(plan.window_syndrome_len(0)))
            .unwrap_err(),
        SubmitError::WrongCodeKind,
        "bare submit against a streaming code"
    );
    assert_eq!(
        service.stream_session(single).err(),
        Some(SubmitError::WrongCodeKind),
        "stream_session against a single-shot code"
    );
    service.shutdown();
}

/// Session drain under shutdown: events already handed out stay an
/// in-order prefix, the in-flight window still resolves (shutdown
/// drains the queues), and the next submission fails cleanly with
/// `Shutdown` instead of hanging.
#[test]
fn session_drain_ordering_under_shutdown() {
    with_timeout(Duration::from_secs(60), || {
        let (_, plan) = bb72_setup(4);
        let k = plan.dets_per_round;
        let mut builder = DecodeService::builder();
        let code = builder.register_streaming_code(
            "bb72-stream",
            Arc::clone(&plan),
            bp_window_factory(40),
        );
        let service = builder.start();
        let mut session = service.stream_session(code).expect("session opens");

        // Push enough rounds to put window 0 in flight (and possibly
        // commit it), then shut the service down under the session.
        let zero_round = BitVec::zeros(k);
        let mut events = Vec::new();
        for _ in 0..plan.windows[0].end_round {
            events.extend(session.push_round(&zero_round).expect("push_round"));
        }
        service.shutdown();

        // Keep pushing: the drained in-flight window may still commit
        // (in order), but the next submission must surface Shutdown —
        // never hang, never reorder.
        let mut error = None;
        for _ in plan.windows[0].end_round..plan.num_round_blocks {
            match session.push_round(&zero_round) {
                Ok(committed) => events.extend(committed),
                Err(e) => {
                    error = Some(e);
                    break;
                }
            }
        }
        assert_eq!(
            error,
            Some(StreamError::Submit(SubmitError::Shutdown)),
            "post-shutdown submission must fail cleanly"
        );
        assert_in_order_prefix(&events, &plan);
        // Poisoned: the error is sticky.
        assert_eq!(
            session.push_round(&zero_round).unwrap_err(),
            StreamError::Submit(SubmitError::Shutdown)
        );
    });
}
