//! Stateful streaming sessions: one logical qubit's rolling decode.
//!
//! A [`StreamSession`] owns everything window decoding needs *between*
//! windows — state the batched [`WindowDecoder`] kernels deliberately do
//! not hold:
//!
//! * the **residual syndrome**: measured detector rounds XOR the spill
//!   of already-committed corrections,
//! * the **carried priors**: posterior beliefs of the previous window's
//!   boundary mechanisms, overriding the next window's channel priors,
//! * the accumulated global **error estimate** and the per-window
//!   [`CommitEvent`] log.
//!
//! The session submits each window to the service as soon as its rounds
//! are buffered and the previous window has resolved (windows of one
//! stream are sequential by construction — window `w+1`'s priors depend
//! on window `w`'s posteriors). Throughput comes from *across* sessions:
//! many concurrent streams submit windows into the same shard queues,
//! and the workers micro-batch them into interleaved kernel tiles.
//!
//! [`WindowDecoder`]: qldpc_decoder_api::WindowDecoder

use crate::request::{DecodeError, ResponseSlot, SubmitError, WindowResponse};
use crate::service::Shared;
use qldpc_decoder_api::{WindowOutcome, WindowPlan};
use qldpc_gf2::BitVec;
use std::fmt;
use std::sync::Arc;

/// Why a streaming session failed. A failed session is *poisoned*: every
/// later call returns the same error.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StreamError {
    /// A window submission was refused (service shut down mid-stream,
    /// for example). `Overloaded` is retried internally and never
    /// surfaces here.
    Submit(SubmitError),
    /// A submitted window was answered without an outcome (its worker
    /// died, for example).
    Decode(DecodeError),
}

impl fmt::Display for StreamError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StreamError::Submit(e) => write!(f, "window submission failed: {e}"),
            StreamError::Decode(e) => write!(f, "window decode failed: {e}"),
        }
    }
}

impl std::error::Error for StreamError {}

impl From<SubmitError> for StreamError {
    fn from(e: SubmitError) -> Self {
        StreamError::Submit(e)
    }
}

impl From<DecodeError> for StreamError {
    fn from(e: DecodeError) -> Self {
        StreamError::Decode(e)
    }
}

/// One window's committed correction, emitted as soon as the window
/// resolves. Events of one session arrive strictly in window order.
#[derive(Debug, Clone)]
pub struct CommitEvent {
    /// Which window of the plan committed.
    pub window_index: usize,
    /// First detector-round block the commitment covers (inclusive).
    pub start_round: usize,
    /// One past the last committed round block.
    pub end_round: usize,
    /// Global mechanism ids committed *on* (estimated to have fired).
    pub mechanisms: Vec<u32>,
    /// Whether the window's correction satisfied its residual syndrome.
    pub solved: bool,
}

/// The completed stream: the same artifacts an offline decode of the
/// full detector history would produce.
#[derive(Debug, Clone)]
pub struct StreamResult {
    /// Global error estimate over all mechanisms of the model.
    pub error_hat: BitVec,
    /// Commit events not yet handed out by [`StreamSession::push_round`],
    /// in window order.
    pub events: Vec<CommitEvent>,
    /// Whether every window's correction satisfied its residual
    /// syndrome.
    pub all_solved: bool,
}

/// A stateful per-logical-qubit decoding stream (see the module docs).
/// Created by [`DecodeService::stream_session`]; feed it detector
/// rounds with [`push_round`], close it with [`finish`].
///
/// [`DecodeService::stream_session`]: crate::DecodeService::stream_session
/// [`push_round`]: StreamSession::push_round
/// [`finish`]: StreamSession::finish
pub struct StreamSession {
    shared: Arc<Shared>,
    code: usize,
    plan: Arc<WindowPlan>,
    home_shard: usize,
    next_seq: u64,
    /// Per-round residual syndrome: measured detectors XOR committed
    /// spill. Pre-sized to the full experiment — spill of an early
    /// commitment may land on rounds not yet pushed (XOR commutes with
    /// arrival order).
    residual: Vec<BitVec>,
    rounds_pushed: usize,
    /// Next window to submit; windows below it are committed.
    next_window: usize,
    in_flight: Option<(usize, Arc<ResponseSlot<WindowResponse>>)>,
    /// Prior overrides for the next window (spec priors with the carried
    /// columns overwritten by the previous window's posteriors).
    carried: Option<Vec<f64>>,
    error_hat: BitVec,
    all_solved: bool,
    failed: Option<StreamError>,
}

impl StreamSession {
    pub(crate) fn new(
        shared: Arc<Shared>,
        code: usize,
        plan: Arc<WindowPlan>,
        home_shard: usize,
    ) -> Self {
        let residual = (0..plan.num_round_blocks)
            .map(|_| BitVec::zeros(plan.dets_per_round))
            .collect();
        let error_hat = BitVec::zeros(plan.num_mechanisms);
        Self {
            shared,
            code,
            plan,
            home_shard,
            next_seq: 0,
            residual,
            rounds_pushed: 0,
            next_window: 0,
            in_flight: None,
            carried: None,
            error_hat,
            all_solved: true,
            failed: None,
        }
    }

    /// The plan this session streams against.
    pub fn plan(&self) -> &WindowPlan {
        &self.plan
    }

    /// Detector-round blocks pushed so far.
    pub fn rounds_pushed(&self) -> usize {
        self.rounds_pushed
    }

    /// Windows committed so far.
    pub fn windows_committed(&self) -> usize {
        self.next_window - usize::from(self.in_flight.is_some())
    }

    /// Feeds the next measured detector-round block
    /// ([`WindowPlan::dets_per_round`] bits) and returns any windows
    /// that committed meanwhile — without blocking: a window whose
    /// decode is still in flight is simply not harvested yet.
    ///
    /// # Panics
    ///
    /// Panics if `round` has the wrong length or more rounds are pushed
    /// than the plan covers.
    pub fn push_round(&mut self, round: &BitVec) -> Result<Vec<CommitEvent>, StreamError> {
        if let Some(e) = self.failed {
            return Err(e);
        }
        assert_eq!(
            round.len(),
            self.plan.dets_per_round,
            "round block has wrong detector count"
        );
        assert!(
            self.rounds_pushed < self.plan.num_round_blocks,
            "more rounds pushed than the plan covers"
        );
        self.residual[self.rounds_pushed].xor_assign(round);
        self.rounds_pushed += 1;
        self.pump(false)
    }

    /// Blocks until every window has resolved and returns the stream's
    /// final artifacts (plus any commit events not yet handed out).
    ///
    /// # Panics
    ///
    /// Panics if called before all [`WindowPlan::num_round_blocks`]
    /// rounds were pushed.
    pub fn finish(mut self) -> Result<StreamResult, StreamError> {
        if let Some(e) = self.failed {
            return Err(e);
        }
        assert_eq!(
            self.rounds_pushed, self.plan.num_round_blocks,
            "finish() before every round of the plan was pushed"
        );
        let events = self.pump(true)?;
        debug_assert_eq!(self.next_window, self.plan.num_windows());
        Ok(StreamResult {
            error_hat: self.error_hat,
            events,
            all_solved: self.all_solved,
        })
    }

    /// Advances the pipeline: harvest the in-flight window (blocking
    /// only when `block`), commit it, and submit the next window once
    /// its rounds are buffered. Poisons the session on error.
    fn pump(&mut self, block: bool) -> Result<Vec<CommitEvent>, StreamError> {
        let mut events = Vec::new();
        loop {
            if let Some((w, slot)) = &self.in_flight {
                let response = if block {
                    Some(slot.wait_take())
                } else {
                    slot.poll_take()
                };
                let Some(response) = response else { break };
                let w = *w;
                self.in_flight = None;
                match response.result {
                    Ok(outcome) => events.push(self.commit(w, outcome)),
                    Err(e) => return Err(self.poison(e.into())),
                }
                continue;
            }
            if self.next_window >= self.plan.num_windows() {
                break;
            }
            // A window is submittable once every round it covers is in
            // the residual (spill from earlier commits is already
            // folded in — the previous window resolved above).
            if self.rounds_pushed < self.plan.windows[self.next_window].end_round {
                break;
            }
            if let Err(e) = self.submit_next() {
                return Err(self.poison(e));
            }
        }
        Ok(events)
    }

    /// Submits window [`Self::next_window`], retrying backpressure.
    fn submit_next(&mut self) -> Result<(), StreamError> {
        let w = self.next_window;
        let spec = &self.plan.windows[w];
        let k = self.plan.dets_per_round;
        let mut syndrome = BitVec::zeros(spec.num_rounds() * k);
        for (i, r) in (spec.start_round..spec.end_round).enumerate() {
            for bit in self.residual[r].iter_ones() {
                syndrome.set(i * k + bit, true);
            }
        }
        let priors = self.carried.take();
        loop {
            match self.shared.submit_window(
                self.code,
                self.home_shard,
                self.next_seq,
                w,
                syndrome.clone(),
                priors.clone(),
            ) {
                Ok(slot) => {
                    self.in_flight = Some((w, slot));
                    self.next_seq += 1;
                    return Ok(());
                }
                // The queue drains at decode speed; yield and re-offer.
                Err(SubmitError::Overloaded) => std::thread::yield_now(),
                Err(e) => return Err(e.into()),
            }
        }
    }

    /// Folds a resolved window into the session: record committed
    /// mechanisms, XOR their spill out of the residual, and stage the
    /// carried priors for the next window.
    fn commit(&mut self, w: usize, outcome: WindowOutcome) -> CommitEvent {
        let spec = &self.plan.windows[w];
        let k = self.plan.dets_per_round;
        self.all_solved &= outcome.solved;
        let mut mechanisms = Vec::new();
        let mut spill_bits = 0u64;
        for col in 0..spec.commit_cols {
            if !outcome.error_hat.get(col) {
                continue;
            }
            let mech = spec.mechanisms[col];
            self.error_hat.set(mech as usize, true);
            mechanisms.push(mech);
            for &det in &spec.spill[col] {
                let det = det as usize;
                self.residual[det / k].flip(det % k);
                spill_bits += 1;
            }
        }
        let mut carried_priors = 0u64;
        if w + 1 < self.plan.num_windows() {
            let next = &self.plan.windows[w + 1];
            let mut priors = next.priors.clone();
            for link in &spec.carry {
                priors[link.to_col as usize] = outcome.posteriors[link.from_col as usize];
            }
            carried_priors = spec.carry.len() as u64;
            self.carried = Some(priors);
        }
        // The session, not the kernel, owns spill application and prior
        // carrying — so it reports those sizes (the kernel reported the
        // BP effort when the window decoded).
        self.shared
            .metrics(self.code)
            .convergence
            .record_window_commit(spill_bits, carried_priors);
        self.next_window = w + 1;
        CommitEvent {
            window_index: w,
            start_round: spec.start_round,
            end_round: spec.commit_end_round,
            mechanisms,
            solved: outcome.solved,
        }
    }

    fn poison(&mut self, e: StreamError) -> StreamError {
        self.failed = Some(e);
        e
    }
}
