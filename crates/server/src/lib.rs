//! Real-time decoding service runtime with dynamic micro-batching.
//!
//! The paper's throughput argument is a *service* argument: real
//! hardware emits one syndrome per code per round, from many logical
//! qubits at once, and the decoder must keep up with that aggregate
//! cadence. The shot-interleaved kernel
//! ([`qldpc_bp::BatchMinSumDecoder`]) only pays off when it is handed
//! `B ≫ 1` syndromes per call — this crate is the piece that *produces*
//! those batches from independent request streams.
//!
//! Everything is in-process and hermetic: no async runtime, just
//! `std::thread` workers and the vendored `crossbeam` shim's bounded
//! channels.
//!
//! # Architecture
//!
//! * **Clients** ([`Client`]) submit syndromes for a registered code and
//!   get a [`ResponseHandle`] back — blocking `wait`, bounded
//!   `wait_timeout`, and non-blocking `try_take`, plus per-request
//!   dispatch deadlines.
//! * **Shard queues** — each code runs `shards` workers, each owning a
//!   decoder instance and a bounded FIFO queue (high-water mark ⇒
//!   [`SubmitError::Overloaded`] backpressure). A client sticks to one
//!   home shard, so its requests leave the queue in submission order
//!   (completion order is additionally FIFO when the code runs a single
//!   shard; concurrent shards may finish their batches out of order).
//! * **Micro-batching scheduler** — a worker coalesces requests until
//!   `max_batch` (default: the kernel lane width,
//!   [`qldpc_bp::DEFAULT_MAX_LANES`]) or until the `max_wait` window
//!   closes, then decodes them in one
//!   [`decode_batch`](qldpc_decoder_api::SyndromeDecoder::decode_batch)
//!   call. Batched and per-shot decoding are bit-identical (the PR-2
//!   equivalence suites), so batching is invisible to clients except in
//!   latency.
//! * **Work stealing** — an idle worker pops the *head* of the deepest
//!   sibling queue, preserving the order in which a client's requests
//!   are pulled for decoding while keeping every shard busy under
//!   skewed load.
//! * **Telemetry** ([`MetricsSnapshot`]) — throughput counters, a
//!   dispatched batch-size histogram, constant-memory streaming latency
//!   and per-stage duration histograms (queue-wait, coalesce-wait,
//!   steal, kernel, post-process, fulfill), decoder convergence
//!   counters ([`ConvergenceSnapshot`]), and a bounded post-mortem
//!   event journal. [`DecodeService::render_exposition`] renders it all
//!   as a deterministic Prometheus-style text page.
//! * **Streaming sessions** ([`StreamSession`]) — codes registered with
//!   [`ServiceBuilder::register_streaming_code`] decode *windows* of a
//!   sliding-window plan instead of whole syndromes. A session owns one
//!   logical qubit's rolling state (residual syndrome, carried boundary
//!   priors, committed corrections): push detector rounds as they are
//!   measured, collect [`CommitEvent`]s as windows resolve. Windows of
//!   one session are sequential; windows of *concurrent* sessions
//!   micro-batch together through the same shard/steal/batch core.
//! * **Shutdown drains** — closing the service gates out new
//!   submissions, then workers drain every queue so each accepted
//!   request still gets exactly one response.
//! * **Worker-death liveness** — a panicking decoder cannot strand its
//!   waiters: drop guards answer the in-flight batch, and the last
//!   panicking worker of a code drains that code's queues, with
//!   [`DecodeError::WorkerLost`]; later submissions are refused with
//!   [`SubmitError::Shutdown`].
//! * **Networked front-end** ([`NetFrontend`]) — an optional std-only
//!   TCP/UDS listener speaking the `qldpc-wire` binary protocol: one
//!   reader + one writer thread per connection, a per-connection
//!   in-flight cap ([`FrontendConfig::max_inflight`], answered with a
//!   typed `RateLimited` distinct from service-wide `Overloaded`),
//!   wire-carried deadlines, remote streaming sessions, and the
//!   node-labeled text exposition served over the same socket.
//!   Requests accepted before a disconnect always drain — a vanished
//!   client cannot leak an in-flight slot.
//! * **Precision** — [`ServiceConfig::precision`] *declares* the
//!   message arithmetic of the decoders a code's factory builds (the
//!   service cannot look inside a factory) and surfaces it in
//!   [`MetricsSnapshot::precision`], so dashboards can attribute
//!   latency numbers to the arithmetic that produced them. Register
//!   `f32` factories under `f32` configs.
//!
//! # Examples
//!
//! ```
//! use qldpc_gf2::BitVec;
//! use qldpc_server::{DecodeService, ServiceConfig};
//! use std::time::Duration;
//!
//! // A 5-bit repetition code served by plain min-sum BP.
//! let h = qldpc_gf2::SparseBitMatrix::from_row_indices(
//!     4,
//!     5,
//!     &[vec![0, 1], vec![1, 2], vec![2, 3], vec![3, 4]],
//! );
//! let factory: qldpc_decoder_api::DecoderFactory = Box::new(|h, priors| {
//!     Box::new(qldpc_bp::MinSumDecoder::new(h, priors, qldpc_bp::BpConfig::default()))
//! });
//! let mut builder = DecodeService::builder();
//! let code = builder.register_code_with(
//!     "rep5",
//!     &h,
//!     &[0.05; 5],
//!     factory,
//!     ServiceConfig { shards: 1, max_wait: Duration::from_micros(50), ..Default::default() },
//! );
//! let service = builder.start();
//!
//! let mut client = service.client();
//! let error = BitVec::from_indices(5, &[2]);
//! let handle = client.submit(code, h.mul_vec(&error)).unwrap();
//! let response = handle.wait();
//! let outcome = response.result.unwrap();
//! assert!(outcome.solved);
//! assert_eq!(outcome.error_hat, error);
//!
//! let metrics = service.shutdown().remove(0);
//! assert_eq!(metrics.completed, 1);
//! assert!(metrics.is_drained());
//! ```

mod metrics;
mod net;
mod request;
mod service;
mod session;
mod shard;

pub use metrics::{bucket_label, ConvergenceSnapshot, MetricsSnapshot, BATCH_HISTOGRAM_BUCKETS};
pub use net::{FrontendConfig, NetFrontend};
pub use qldpc_telemetry::{HistogramSnapshot, JournalEntry, Stage, StageSnapshot};
pub use request::{DecodeError, DecodeResponse, ResponseHandle, SubmitError};
pub use service::{Client, CodeId, DecodeService, ServiceBuilder, ServiceConfig};
pub use session::{CommitEvent, StreamError, StreamResult, StreamSession};
