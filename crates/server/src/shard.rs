//! Shard workers: the dynamic micro-batching scheduler and the
//! work-stealing decode loop.
//!
//! Each registered code owns `shards` workers. A worker's loop is:
//!
//! 1. **Acquire** — pop the oldest request from its own queue; if that
//!    is empty, steal the head of the deepest sibling queue; if every
//!    queue is empty, park on its own queue (bounded naps, so the
//!    shutdown flag is observed within [`PARK`]).
//! 2. **Coalesce** — keep the batch window open for at most `max_wait`,
//!    greedily draining its own queue (then stealing) until `max_batch`
//!    requests are in hand. A full queue therefore dispatches immediately
//!    at the kernel's lane width; a trickle dispatches after `max_wait`
//!    with whatever arrived.
//! 3. **Dispatch** — expire requests whose deadline has passed, decode
//!    the rest in one [`decode_batch`] call, and fulfill every slot.
//!
//! All consumers (owner and thieves) pop from the queue *head*, so
//! requests of one client — which a [`Client`](crate::Client) always
//! sends to one home shard — are *pulled into batches* in submission
//! order no matter who decodes them. Note this ordering covers queue
//! departure, not completion: with several shards, two batches holding
//! a client's consecutive requests may be decoded concurrently and
//! finish out of order; completion-order FIFO per client is guaranteed
//! only at `shards = 1` (what the soak tests assert).
//!
//! [`decode_batch`]: qldpc_decoder_api::SyndromeDecoder::decode_batch

use crate::metrics::CodeMetrics;
use crate::request::{DecodeError, DecodeResponse, Request};
use crossbeam::channel::{Receiver, RecvTimeoutError};
use qldpc_decoder_api::{SharedDecoderFactory, SyndromeDecoder};
use qldpc_gf2::{BitVec, SparseBitMatrix};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Upper bound on any blocking nap in the worker loop; the shutdown flag
/// is re-checked at least this often even when no traffic arrives.
const PARK: Duration = Duration::from_millis(5);

/// Everything one shard worker needs; moved into its thread at spawn.
pub(crate) struct ShardContext {
    /// This worker's shard index within its code.
    pub shard_index: usize,
    /// Receivers of *all* the code's shard queues, indexed by shard; the
    /// worker owns index [`Self::shard_index`] and steals from the rest.
    pub queues: Vec<Receiver<Request>>,
    pub h: Arc<SparseBitMatrix>,
    pub priors: Arc<Vec<f64>>,
    pub factory: SharedDecoderFactory,
    pub max_batch: usize,
    pub max_wait: Duration,
    pub metrics: Arc<CodeMetrics>,
    /// Per-code monotone completion stamp shared by all its shards.
    pub completion_counter: Arc<AtomicU64>,
    /// Service-wide shutdown flag; once set, no submission can enter a
    /// queue, and workers drain every queue before exiting.
    pub closed: Arc<AtomicBool>,
}

impl ShardContext {
    fn own(&self) -> &Receiver<Request> {
        &self.queues[self.shard_index]
    }

    /// Steals the head of the deepest non-empty sibling queue.
    fn steal(&self) -> Option<Request> {
        let mut victim = None;
        let mut depth = 0;
        for (i, queue) in self.queues.iter().enumerate() {
            if i == self.shard_index {
                continue;
            }
            let len = queue.len();
            if len > depth {
                depth = len;
                victim = Some(i);
            }
        }
        self.queues[victim?].try_recv().ok()
    }

    /// Pops the next request without blocking: own queue first, then a
    /// steal.
    fn poll(&self) -> Option<Request> {
        self.own().try_recv().ok().or_else(|| self.steal())
    }

    /// The worker thread body.
    pub fn run(self) {
        let mut decoder: Box<dyn SyndromeDecoder> = (self.factory)(&self.h, &self.priors);
        loop {
            let first = match self.poll() {
                Some(request) => request,
                None => {
                    if self.closed.load(Ordering::Acquire) {
                        // Closed and every queue empty: nothing can arrive
                        // anymore (submissions are gated), we are done.
                        match self.poll() {
                            Some(request) => request,
                            None => return,
                        }
                    } else {
                        match self.own().recv_timeout(PARK) {
                            Ok(request) => request,
                            Err(RecvTimeoutError::Timeout) => continue,
                            Err(RecvTimeoutError::Disconnected) => return,
                        }
                    }
                }
            };
            let batch = self.coalesce(first);
            self.dispatch(decoder.as_mut(), batch);
        }
    }

    /// Grows a batch around `first` until `max_batch` requests are in
    /// hand or the `max_wait` window closes (immediately, under
    /// shutdown).
    fn coalesce(&self, first: Request) -> Vec<Request> {
        let mut batch = Vec::with_capacity(self.max_batch.min(64));
        batch.push(first);
        let window_end = Instant::now() + self.max_wait;
        while batch.len() < self.max_batch {
            if let Some(request) = self.poll() {
                batch.push(request);
                continue;
            }
            if self.closed.load(Ordering::Acquire) {
                break; // drain fast; don't hold the window open
            }
            let Some(remaining) = window_end.checked_duration_since(Instant::now()) else {
                break;
            };
            match self.own().recv_timeout(remaining.min(PARK)) {
                Ok(request) => batch.push(request),
                Err(RecvTimeoutError::Timeout) => {}
                Err(RecvTimeoutError::Disconnected) => break,
            }
        }
        batch
    }

    /// Expires overdue requests, decodes the rest in one batched call,
    /// and fulfills every response slot in queue order.
    fn dispatch(&self, decoder: &mut dyn SyndromeDecoder, batch: Vec<Request>) {
        let dispatched_at = Instant::now();
        let live: Vec<bool> = batch
            .iter()
            .map(|r| r.deadline.is_none_or(|d| d >= dispatched_at))
            .collect();
        let syndromes: Vec<BitVec> = batch
            .iter()
            .zip(&live)
            .filter(|&(_, &l)| l)
            .map(|(r, _)| r.syndrome.clone())
            .collect();
        let live_count = syndromes.len();
        self.metrics.record_batch(live_count);
        let mut outcomes = decoder.decode_batch(&syndromes).into_iter();

        // One contiguous completion-seq range per batch, in queue order.
        let seq_base = self
            .completion_counter
            .fetch_add(batch.len() as u64, Ordering::Relaxed);
        for (offset, (request, is_live)) in batch.into_iter().zip(live).enumerate() {
            let result = if is_live {
                self.metrics.completed.fetch_add(1, Ordering::Relaxed);
                Ok(outcomes.next().expect("decode_batch returned short"))
            } else {
                self.metrics.expired.fetch_add(1, Ordering::Relaxed);
                Err(DecodeError::DeadlineExceeded)
            };
            let stolen = request.home_shard != self.shard_index;
            if stolen {
                self.metrics.stolen.fetch_add(1, Ordering::Relaxed);
            }
            let total_time = request.submitted_at.elapsed();
            if is_live {
                self.metrics.record_latency(total_time);
            }
            request.slot.fulfill(DecodeResponse {
                request_id: request.id,
                client_seq: request.client_seq,
                result,
                batch_size: live_count,
                completion_seq: seq_base + offset as u64,
                queue_time: dispatched_at.saturating_duration_since(request.submitted_at),
                total_time,
                stolen,
            });
        }
        debug_assert!(outcomes.next().is_none(), "decode_batch returned long");
    }
}
