//! Shard workers: the dynamic micro-batching scheduler and the
//! work-stealing decode loop.
//!
//! Each registered code owns `shards` workers. A worker's loop is:
//!
//! 1. **Acquire** — pop the oldest request from its own queue; if that
//!    is empty, steal the head of the deepest sibling queue; if every
//!    queue is empty, park on its own queue (bounded naps, so the
//!    shutdown flag is observed within [`PARK`]).
//! 2. **Coalesce** — keep the batch window open for at most `max_wait`,
//!    greedily draining its own queue (then stealing) until `max_batch`
//!    requests are in hand. A full queue therefore dispatches immediately
//!    at the kernel's lane width; a trickle dispatches after `max_wait`
//!    with whatever arrived.
//! 3. **Dispatch** — expire requests whose deadline has passed, decode
//!    the rest in one [`decode_batch`] / [`decode_windows`] call, and
//!    fulfill every slot.
//!
//! All consumers (owner and thieves) pop from the queue *head*, so
//! requests of one client — which a [`Client`](crate::Client) always
//! sends to one home shard — are *pulled into batches* in submission
//! order no matter who decodes them. Note this ordering covers queue
//! departure, not completion: with several shards, two batches holding
//! a client's consecutive requests may be decoded concurrently and
//! finish out of order; completion-order FIFO per client is guaranteed
//! only at `shards = 1` (what the soak tests assert).
//!
//! # Worker death
//!
//! A decoder is user-supplied code; it may panic. The service's
//! "exactly one response per accepted request" invariant survives that
//! through two drop guards:
//!
//! * [`BatchGuard`] owns the in-flight batch across the decode call. If
//!   the decoder panics, its `Drop` answers every not-yet-fulfilled
//!   request of the batch with [`DecodeError::WorkerLost`].
//! * [`WorkerGuard`] covers the whole worker lifetime. The *last*
//!   worker of a code to die panicking drains every shard queue —
//!   under the submission gate's write side, so no new request can
//!   slip in behind the drain — answering each queued request with
//!   `WorkerLost`. Submissions observe `alive == 0` afterwards and are
//!   refused with [`SubmitError::Shutdown`](crate::SubmitError).
//!
//! [`decode_batch`]: qldpc_decoder_api::SyndromeDecoder::decode_batch
//! [`decode_windows`]: qldpc_decoder_api::WindowDecoder::decode_windows

use crate::metrics::CodeMetrics;
use crate::request::{DecodeError, DecodeResponse, Payload, Request, WindowResponse};
use crossbeam::channel::{Receiver, RecvTimeoutError};
use qldpc_decoder_api::{
    DecodeOutcome, SharedDecoderFactory, SharedWindowDecoderFactory, SyndromeDecoder,
    WindowDecoder, WindowPlan, WindowTask,
};
use qldpc_gf2::{BitVec, SparseBitMatrix};
use qldpc_telemetry::Stage;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, RwLock};
use std::time::{Duration, Instant};

/// Upper bound on any blocking nap in the worker loop; the shutdown flag
/// is re-checked at least this often even when no traffic arrives.
const PARK: Duration = Duration::from_millis(5);

/// What a code's workers decode with: a single-shot syndrome decoder
/// over one check matrix, or a windowed decoder over a streaming plan.
/// A code's queues only ever carry the matching [`Payload`] kind.
#[derive(Clone)]
pub(crate) enum CodeKind {
    Single {
        h: Arc<SparseBitMatrix>,
        priors: Arc<Vec<f64>>,
        factory: SharedDecoderFactory,
    },
    Streaming {
        plan: Arc<WindowPlan>,
        factory: SharedWindowDecoderFactory,
    },
}

/// One worker's decoder instance, built from its code's factory.
enum WorkerDecoder {
    Single(Box<dyn SyndromeDecoder>),
    Streaming(Box<dyn WindowDecoder>),
}

/// Everything one shard worker needs; moved into its thread at spawn.
pub(crate) struct ShardContext {
    /// This worker's shard index within its code.
    pub shard_index: usize,
    /// Receivers of *all* the code's shard queues, indexed by shard; the
    /// worker owns index [`Self::shard_index`] and steals from the rest.
    pub queues: Vec<Receiver<Request>>,
    pub kind: CodeKind,
    pub max_batch: usize,
    pub max_wait: Duration,
    pub metrics: Arc<CodeMetrics>,
    /// Per-code monotone completion stamp shared by all its shards.
    pub completion_counter: Arc<AtomicU64>,
    /// Service-wide shutdown flag; once set, no submission can enter a
    /// queue, and workers drain every queue before exiting.
    pub closed: Arc<AtomicBool>,
    /// Still-running workers of this code; submissions refuse when it
    /// hits zero (every decoder of the code is gone).
    pub alive: Arc<AtomicUsize>,
    /// The service's submission gate (see `service::Shared`); the last
    /// worker to die panicking drains the queues under its write side.
    pub gate: Arc<RwLock<bool>>,
}

impl ShardContext {
    fn own(&self) -> &Receiver<Request> {
        &self.queues[self.shard_index]
    }

    /// Steals the head of the deepest non-empty sibling queue.
    fn steal(&self) -> Option<Request> {
        let scan_start = Instant::now();
        let mut victim = None;
        let mut depth = 0;
        for (i, queue) in self.queues.iter().enumerate() {
            if i == self.shard_index {
                continue;
            }
            let len = queue.len();
            if len > depth {
                depth = len;
                victim = Some(i);
            }
        }
        let stolen = self.queues[victim?].try_recv().ok()?;
        // Only successful steals are worth a histogram sample; the
        // empty-scan fast path stays clock-free past the single read.
        self.metrics
            .stages
            .record(Stage::Steal, scan_start.elapsed());
        Some(stolen)
    }

    /// Pops the next request without blocking: own queue first, then a
    /// steal.
    fn poll(&self) -> Option<Request> {
        self.own().try_recv().ok().or_else(|| self.steal())
    }

    /// The worker thread body.
    pub fn run(self) {
        // Arm the liveness guard before building the decoder: even a
        // panicking factory must not strand queued requests.
        let _guard = WorkerGuard { ctx: &self };
        let mut decoder = match &self.kind {
            CodeKind::Single { h, priors, factory } => WorkerDecoder::Single((factory)(h, priors)),
            CodeKind::Streaming { plan, factory } => {
                WorkerDecoder::Streaming((factory)(Arc::clone(plan)))
            }
        };
        loop {
            let first = match self.poll() {
                Some(request) => request,
                None => {
                    if self.closed.load(Ordering::Acquire) {
                        // Closed and every queue empty: nothing can arrive
                        // anymore (submissions are gated), we are done.
                        match self.poll() {
                            Some(request) => request,
                            None => return,
                        }
                    } else {
                        match self.own().recv_timeout(PARK) {
                            Ok(request) => request,
                            Err(RecvTimeoutError::Timeout) => continue,
                            Err(RecvTimeoutError::Disconnected) => return,
                        }
                    }
                }
            };
            let (batch, coalesce_wait) = self.coalesce(first);
            self.dispatch(&mut decoder, batch, coalesce_wait);
        }
    }

    /// Grows a batch around `first` until `max_batch` requests are in
    /// hand or the `max_wait` window closes (immediately, under
    /// shutdown). Also returns how long the window was held open.
    fn coalesce(&self, first: Request) -> (Vec<Request>, Duration) {
        let opened_at = Instant::now();
        let mut batch = Vec::with_capacity(self.max_batch.min(64));
        batch.push(first);
        let window_end = opened_at + self.max_wait;
        while batch.len() < self.max_batch {
            if let Some(request) = self.poll() {
                batch.push(request);
                continue;
            }
            if self.closed.load(Ordering::Acquire) {
                break; // drain fast; don't hold the window open
            }
            let Some(remaining) = window_end.checked_duration_since(Instant::now()) else {
                break;
            };
            match self.own().recv_timeout(remaining.min(PARK)) {
                Ok(request) => batch.push(request),
                Err(RecvTimeoutError::Timeout) => {}
                Err(RecvTimeoutError::Disconnected) => break,
            }
        }
        (batch, opened_at.elapsed())
    }

    /// Expires overdue requests, decodes the rest in one batched call,
    /// and fulfills every response slot in queue order.
    fn dispatch(&self, decoder: &mut WorkerDecoder, batch: Vec<Request>, coalesce_wait: Duration) {
        let dispatched_at = Instant::now();
        // One contiguous completion-seq range per batch, in queue order.
        let seq_base = self
            .completion_counter
            .fetch_add(batch.len() as u64, Ordering::Relaxed);
        let mut expired: Vec<(Request, u64)> = Vec::new();
        let mut pending: VecDeque<(Request, u64)> = VecDeque::with_capacity(batch.len());
        for (offset, request) in batch.into_iter().enumerate() {
            let seq = seq_base + offset as u64;
            if request.deadline.is_none_or(|d| d >= dispatched_at) {
                self.metrics.stages.record(
                    Stage::QueueWait,
                    dispatched_at.saturating_duration_since(request.submitted_at),
                );
                pending.push_back((request, seq));
            } else {
                expired.push((request, seq));
            }
        }
        let live_count = pending.len();
        self.metrics.record_batch(live_count);
        if live_count > 0 {
            // One sample per dispatched (live) batch; all-expired batches
            // never reach the kernel and would skew the wait picture.
            self.metrics
                .stages
                .record(Stage::CoalesceWait, coalesce_wait);
        }
        for (request, seq) in expired {
            self.metrics.expired.fetch_add(1, Ordering::Relaxed);
            match &request.payload {
                Payload::Decode { .. } => self.respond_decode(
                    request,
                    Err(DecodeError::DeadlineExceeded),
                    live_count,
                    seq,
                    dispatched_at,
                ),
                Payload::Window { .. } => {
                    request.fail(DecodeError::DeadlineExceeded, live_count, seq)
                }
            }
        }
        // The in-flight batch lives inside the guard from here on: a
        // panicking decode unwinds through it and the whole remainder is
        // answered `WorkerLost` instead of stranding its waiters.
        let mut guard = BatchGuard {
            metrics: &self.metrics,
            pending,
            batch_size: live_count,
        };
        match decoder {
            WorkerDecoder::Single(d) => {
                let syndromes: Vec<BitVec> = guard
                    .pending
                    .iter()
                    .map(|(r, _)| match &r.payload {
                        Payload::Decode { syndrome, .. } => syndrome.clone(),
                        Payload::Window { .. } => {
                            unreachable!("window payload queued on a single-shot code")
                        }
                    })
                    .collect();
                let kernel_start = Instant::now();
                let mut outcomes = d.decode_batch(&syndromes).into_iter();
                let kernel_end = Instant::now();
                if live_count > 0 {
                    self.metrics
                        .stages
                        .record(Stage::Kernel, kernel_end - kernel_start);
                }
                for _ in 0..live_count {
                    let outcome = outcomes.next().expect("decode_batch returned short");
                    let (request, seq) = guard.pending.pop_front().expect("guard tracks batch");
                    self.metrics.completed.fetch_add(1, Ordering::Relaxed);
                    self.metrics.convergence.record_outcome(&outcome.telemetry);
                    self.respond_decode(request, Ok(outcome), live_count, seq, dispatched_at);
                }
                debug_assert!(outcomes.next().is_none(), "decode_batch returned long");
                if live_count > 0 {
                    self.metrics
                        .stages
                        .record(Stage::PostProcess, kernel_end.elapsed());
                }
            }
            WorkerDecoder::Streaming(d) => {
                let tasks: Vec<WindowTask> = guard
                    .pending
                    .iter()
                    .map(|(r, _)| match &r.payload {
                        Payload::Window {
                            window_index,
                            syndrome,
                            priors,
                            ..
                        } => WindowTask {
                            window_index: *window_index,
                            syndrome: syndrome.clone(),
                            priors: priors.as_deref(),
                        },
                        Payload::Decode { .. } => {
                            unreachable!("decode payload queued on a streaming code")
                        }
                    })
                    .collect();
                let kernel_start = Instant::now();
                let outcomes = d.decode_windows(&tasks);
                let kernel_end = Instant::now();
                if live_count > 0 {
                    self.metrics
                        .stages
                        .record(Stage::Kernel, kernel_end - kernel_start);
                }
                drop(tasks);
                debug_assert_eq!(outcomes.len(), live_count, "decode_windows length mismatch");
                for outcome in outcomes {
                    let (request, seq) = guard.pending.pop_front().expect("guard tracks batch");
                    self.metrics.completed.fetch_add(1, Ordering::Relaxed);
                    self.metrics.convergence.record_outcome(&outcome.telemetry);
                    if request.home_shard != self.shard_index {
                        self.metrics.stolen.fetch_add(1, Ordering::Relaxed);
                    }
                    self.metrics.record_latency(request.submitted_at.elapsed());
                    self.metrics
                        .stages
                        .record(Stage::Fulfill, dispatched_at.elapsed());
                    let id = request.id;
                    let Payload::Window { slot, .. } = request.payload else {
                        unreachable!("streaming batch holds only window payloads")
                    };
                    let _ = seq; // window responses carry no completion stamp
                    slot.fulfill(WindowResponse {
                        request_id: id,
                        result: Ok(outcome),
                    });
                }
                if live_count > 0 {
                    self.metrics
                        .stages
                        .record(Stage::PostProcess, kernel_end.elapsed());
                }
            }
        }
        debug_assert!(guard.pending.is_empty(), "batch not fully answered");
    }

    /// Fulfills one single-shot request with full scheduling telemetry.
    fn respond_decode(
        &self,
        request: Request,
        result: Result<DecodeOutcome, DecodeError>,
        batch_size: usize,
        completion_seq: u64,
        dispatched_at: Instant,
    ) {
        let Request {
            id,
            client_seq,
            submitted_at,
            home_shard,
            payload,
            ..
        } = request;
        let Payload::Decode { slot, .. } = payload else {
            unreachable!("single-shot responder on a window payload")
        };
        let stolen = home_shard != self.shard_index;
        if stolen {
            self.metrics.stolen.fetch_add(1, Ordering::Relaxed);
        }
        let total_time = submitted_at.elapsed();
        if result.is_ok() {
            self.metrics.record_latency(total_time);
            self.metrics
                .stages
                .record(Stage::Fulfill, dispatched_at.elapsed());
        }
        slot.fulfill(DecodeResponse {
            request_id: id,
            client_seq,
            result,
            batch_size,
            completion_seq,
            queue_time: dispatched_at.saturating_duration_since(submitted_at),
            total_time,
            stolen,
        });
    }
}

/// Owns the in-flight batch across the decode call; answers the
/// unfulfilled remainder with [`DecodeError::WorkerLost`] if the decoder
/// panics (normal dispatch pops every entry before the guard drops).
struct BatchGuard<'a> {
    metrics: &'a CodeMetrics,
    pending: VecDeque<(Request, u64)>,
    batch_size: usize,
}

impl Drop for BatchGuard<'_> {
    fn drop(&mut self) {
        while let Some((request, seq)) = self.pending.pop_front() {
            self.metrics.lost.fetch_add(1, Ordering::Relaxed);
            request.fail(DecodeError::WorkerLost, self.batch_size, seq);
        }
    }
}

/// Tracks worker liveness for the whole thread body. On a panic of the
/// *last* live worker of a code, drains every shard queue so nothing
/// waits forever on decoders that no longer exist.
struct WorkerGuard<'a> {
    ctx: &'a ShardContext,
}

impl Drop for WorkerGuard<'_> {
    fn drop(&mut self) {
        let ctx = self.ctx;
        let remaining = ctx.alive.fetch_sub(1, Ordering::AcqRel) - 1;
        if !std::thread::panicking() {
            // Normal exit: queues already drained by the run loop.
            return;
        }
        ctx.metrics.journal.record(
            "worker-death",
            format!(
                "shard {} died panicking; {remaining} worker(s) remain",
                ctx.shard_index
            ),
        );
        if remaining > 0 {
            // Siblings survive and will keep stealing from our queue.
            return;
        }
        // Last worker of the code, dying in a panic: answer everything
        // still queued. Take the gate's write side so the drain cannot
        // race a submission — submitters hold the read side across
        // check-and-send, and after we release, they observe
        // `alive == 0` and refuse. `into_inner` on poisoning: a panic
        // inside a `Drop` during unwinding would abort the process.
        let gate = ctx.gate.write().unwrap_or_else(|e| e.into_inner());
        let mut drained = 0u64;
        for queue in &ctx.queues {
            while let Ok(request) = queue.try_recv() {
                ctx.metrics.lost.fetch_add(1, Ordering::Relaxed);
                let seq = ctx.completion_counter.fetch_add(1, Ordering::Relaxed);
                request.fail(DecodeError::WorkerLost, 0, seq);
                drained += 1;
            }
        }
        drop(gate);
        ctx.metrics.journal.record(
            "queue-drain",
            format!("last worker gone; answered {drained} queued request(s) as lost"),
        );
    }
}
