//! The request/response surface of the decoding service: submission
//! errors, per-request outcomes, and the blocking/polling response
//! handle a client holds while its syndrome is in flight.

use qldpc_decoder_api::DecodeOutcome;
use qldpc_gf2::BitVec;
use std::fmt;
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Why a submission was refused at the door (the request never entered a
/// queue and no [`ResponseHandle`] exists).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SubmitError {
    /// The target shard queue is at its high-water mark — backpressure.
    /// Retry later or shed load upstream.
    Overloaded,
    /// The service has been shut down.
    Shutdown,
    /// No code with this id is registered.
    UnknownCode,
    /// The syndrome length does not match the registered check matrix's
    /// row count.
    SyndromeLength {
        /// `h.rows()` of the registered code.
        expected: usize,
        /// Length of the submitted syndrome.
        got: usize,
    },
}

impl fmt::Display for SubmitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SubmitError::Overloaded => write!(f, "shard queue at high-water mark"),
            SubmitError::Shutdown => write!(f, "service is shut down"),
            SubmitError::UnknownCode => write!(f, "unknown code id"),
            SubmitError::SyndromeLength { expected, got } => {
                write!(f, "syndrome length {got}, check matrix has {expected} rows")
            }
        }
    }
}

impl std::error::Error for SubmitError {}

/// Why an *accepted* request produced no decode outcome.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DecodeError {
    /// The per-request deadline had already passed when the scheduler
    /// pulled the request into a batch; it was not decoded.
    DeadlineExceeded,
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecodeError::DeadlineExceeded => write!(f, "deadline exceeded before dispatch"),
        }
    }
}

impl std::error::Error for DecodeError {}

/// The service's answer to one submitted syndrome.
#[derive(Debug, Clone)]
pub struct DecodeResponse {
    /// Globally unique id echoed from submission.
    pub request_id: u64,
    /// The submitting client's per-client sequence number, echoed back.
    pub client_seq: u64,
    /// The decode outcome, or why the request was dropped undecoded.
    pub result: Result<DecodeOutcome, DecodeError>,
    /// Number of live requests in the batch this one was dispatched with
    /// (1 ⇒ it rode alone; expired requests report the batch they were
    /// pulled out of).
    pub batch_size: usize,
    /// Monotone per-code completion stamp: batches get a contiguous
    /// range in dispatch order, requests within a batch keep their
    /// queue order. With a single shard this makes per-client FIFO
    /// directly observable (see the soak tests).
    pub completion_seq: u64,
    /// Time from submission to the scheduler pulling the request into a
    /// batch.
    pub queue_time: Duration,
    /// Time from submission to response fulfillment.
    pub total_time: Duration,
    /// Whether a non-home shard decoded it (work stealing).
    pub stolen: bool,
}

/// One-shot slot a worker fulfills and a [`ResponseHandle`] waits on.
#[derive(Debug, Default)]
pub(crate) struct ResponseSlot {
    state: Mutex<Option<DecodeResponse>>,
    ready: Condvar,
}

impl ResponseSlot {
    pub(crate) fn fulfill(&self, response: DecodeResponse) {
        let mut state = self.state.lock().expect("response slot poisoned");
        debug_assert!(state.is_none(), "response slot fulfilled twice");
        *state = Some(response);
        drop(state);
        self.ready.notify_all();
    }
}

/// A claim on one in-flight request. Exactly one of [`wait`],
/// [`wait_timeout`] or [`try_take`] eventually yields the
/// [`DecodeResponse`]; the service fulfills every accepted request, even
/// through shutdown (the shards drain their queues before exiting).
///
/// [`wait`]: ResponseHandle::wait
/// [`wait_timeout`]: ResponseHandle::wait_timeout
/// [`try_take`]: ResponseHandle::try_take
#[derive(Debug)]
pub struct ResponseHandle {
    pub(crate) slot: Arc<ResponseSlot>,
    pub(crate) request_id: u64,
    pub(crate) client_seq: u64,
}

impl ResponseHandle {
    /// The id assigned at submission (matches the response's
    /// `request_id`).
    pub fn request_id(&self) -> u64 {
        self.request_id
    }

    /// The submitting client's sequence number for this request.
    pub fn client_seq(&self) -> u64 {
        self.client_seq
    }

    /// Whether the response has arrived (a subsequent take will not
    /// block).
    pub fn is_ready(&self) -> bool {
        self.slot
            .state
            .lock()
            .expect("response slot poisoned")
            .is_some()
    }

    /// Blocks until the response arrives.
    pub fn wait(self) -> DecodeResponse {
        let mut state = self.slot.state.lock().expect("response slot poisoned");
        loop {
            if let Some(response) = state.take() {
                return response;
            }
            state = self.slot.ready.wait(state).expect("response slot poisoned");
        }
    }

    /// Blocks up to `timeout`; on expiry the handle is returned so the
    /// caller can keep waiting later (the request stays in flight).
    pub fn wait_timeout(self, timeout: Duration) -> Result<DecodeResponse, ResponseHandle> {
        let deadline = Instant::now() + timeout;
        let mut state = self.slot.state.lock().expect("response slot poisoned");
        loop {
            if let Some(response) = state.take() {
                return Ok(response);
            }
            let Some(remaining) = deadline.checked_duration_since(Instant::now()) else {
                drop(state);
                return Err(self);
            };
            let (s, wait) = self
                .slot
                .ready
                .wait_timeout(state, remaining)
                .expect("response slot poisoned");
            state = s;
            if wait.timed_out() && state.is_none() {
                drop(state);
                return Err(self);
            }
        }
    }

    /// Non-blocking poll; on a not-yet-ready response the handle is
    /// returned for a later retry.
    pub fn try_take(self) -> Result<DecodeResponse, ResponseHandle> {
        let taken = self
            .slot
            .state
            .lock()
            .expect("response slot poisoned")
            .take();
        match taken {
            Some(response) => Ok(response),
            None => Err(self),
        }
    }
}

/// Internal queued form of a request, owned by the shard queues.
pub(crate) struct Request {
    pub id: u64,
    pub client_seq: u64,
    pub syndrome: BitVec,
    pub deadline: Option<Instant>,
    pub submitted_at: Instant,
    pub home_shard: usize,
    pub slot: Arc<ResponseSlot>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    fn dummy_response(id: u64) -> DecodeResponse {
        DecodeResponse {
            request_id: id,
            client_seq: 0,
            result: Err(DecodeError::DeadlineExceeded),
            batch_size: 1,
            completion_seq: 0,
            queue_time: Duration::ZERO,
            total_time: Duration::ZERO,
            stolen: false,
        }
    }

    fn handle(slot: &Arc<ResponseSlot>) -> ResponseHandle {
        ResponseHandle {
            slot: Arc::clone(slot),
            request_id: 7,
            client_seq: 3,
        }
    }

    #[test]
    fn try_take_and_is_ready_round_trip() {
        let slot = Arc::new(ResponseSlot::default());
        let h = handle(&slot);
        assert!(!h.is_ready());
        let h = h.try_take().unwrap_err();
        slot.fulfill(dummy_response(7));
        assert!(h.is_ready());
        let r = h.try_take().unwrap();
        assert_eq!(r.request_id, 7);
    }

    #[test]
    fn wait_blocks_until_fulfilled() {
        let slot = Arc::new(ResponseSlot::default());
        let h = handle(&slot);
        let t = thread::spawn(move || h.wait().request_id);
        thread::sleep(Duration::from_millis(10));
        slot.fulfill(dummy_response(7));
        assert_eq!(t.join().unwrap(), 7);
    }

    #[test]
    fn wait_timeout_returns_handle_then_succeeds() {
        let slot = Arc::new(ResponseSlot::default());
        let h = handle(&slot);
        let h = h.wait_timeout(Duration::from_millis(5)).unwrap_err();
        assert_eq!(h.request_id(), 7);
        assert_eq!(h.client_seq(), 3);
        slot.fulfill(dummy_response(7));
        let r = h.wait_timeout(Duration::from_secs(5)).unwrap();
        assert_eq!(r.request_id, 7);
    }
}
