//! The request/response surface of the decoding service: submission
//! errors, per-request outcomes, and the blocking/polling response
//! handle a client holds while its syndrome is in flight.

use qldpc_decoder_api::{DecodeOutcome, WindowOutcome};
use qldpc_gf2::BitVec;
use std::fmt;
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Why a submission was refused at the door (the request never entered a
/// queue and no [`ResponseHandle`] exists).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SubmitError {
    /// The target shard queue is at its high-water mark — backpressure.
    /// Retry later or shed load upstream.
    Overloaded,
    /// The service has been shut down (or every worker of the code has
    /// died — see [`DecodeError::WorkerLost`]).
    Shutdown,
    /// No code with this id is registered.
    UnknownCode,
    /// The operation does not match the code's registration kind:
    /// single-shot `submit` against a streaming code, or
    /// `stream_session` against a single-shot code.
    WrongCodeKind,
    /// The syndrome length does not match the registered check matrix's
    /// row count.
    SyndromeLength {
        /// `h.rows()` of the registered code.
        expected: usize,
        /// Length of the submitted syndrome.
        got: usize,
    },
}

impl fmt::Display for SubmitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SubmitError::Overloaded => write!(f, "shard queue at high-water mark"),
            SubmitError::Shutdown => write!(f, "service is shut down"),
            SubmitError::UnknownCode => write!(f, "unknown code id"),
            SubmitError::WrongCodeKind => {
                write!(f, "operation does not match the code's registration kind")
            }
            SubmitError::SyndromeLength { expected, got } => {
                write!(f, "syndrome length {got}, check matrix has {expected} rows")
            }
        }
    }
}

impl std::error::Error for SubmitError {}

/// Why an *accepted* request produced no decode outcome.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DecodeError {
    /// The per-request deadline had already passed when the scheduler
    /// pulled the request into a batch; it was not decoded.
    DeadlineExceeded,
    /// The shard worker owning the request died (panicked) before
    /// producing an outcome. The request was not decoded, but the
    /// "exactly one response per accepted request" invariant holds:
    /// nothing waits forever on a dead worker.
    WorkerLost,
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecodeError::DeadlineExceeded => write!(f, "deadline exceeded before dispatch"),
            DecodeError::WorkerLost => write!(f, "shard worker lost before decoding"),
        }
    }
}

impl std::error::Error for DecodeError {}

/// The service's answer to one submitted syndrome.
#[derive(Debug, Clone)]
pub struct DecodeResponse {
    /// Globally unique id echoed from submission.
    pub request_id: u64,
    /// The submitting client's per-client sequence number, echoed back.
    pub client_seq: u64,
    /// The decode outcome, or why the request was dropped undecoded.
    pub result: Result<DecodeOutcome, DecodeError>,
    /// Number of live requests in the batch this one was dispatched with
    /// (1 ⇒ it rode alone; expired requests report the batch they were
    /// pulled out of; worker-lost requests that never reached a batch
    /// report 0).
    pub batch_size: usize,
    /// Monotone per-code completion stamp: batches get a contiguous
    /// range in dispatch order, requests within a batch keep their
    /// queue order. With a single shard this makes per-client FIFO
    /// directly observable (see the soak tests).
    pub completion_seq: u64,
    /// Time from submission to the scheduler pulling the request into a
    /// batch.
    pub queue_time: Duration,
    /// Time from submission to response fulfillment.
    pub total_time: Duration,
    /// Whether a non-home shard decoded it (work stealing).
    pub stolen: bool,
}

/// The service's answer to one streamed window submission (internal —
/// sessions fold it into [`CommitEvent`](crate::CommitEvent)s).
#[derive(Debug, Clone)]
pub(crate) struct WindowResponse {
    #[allow(dead_code)]
    pub request_id: u64,
    pub result: Result<WindowOutcome, DecodeError>,
}

/// One-shot slot a worker fulfills and a waiter blocks on.
#[derive(Debug)]
pub(crate) struct ResponseSlot<R> {
    state: Mutex<Option<R>>,
    ready: Condvar,
}

impl<R> Default for ResponseSlot<R> {
    fn default() -> Self {
        Self {
            state: Mutex::new(None),
            ready: Condvar::new(),
        }
    }
}

impl<R> ResponseSlot<R> {
    /// Stores the response and wakes every waiter. Robust against
    /// mutex poisoning: a drop-guard fulfilling slots *during a worker
    /// panic* must never double-panic (that would abort the process).
    pub(crate) fn fulfill(&self, response: R) {
        let mut state = self.state.lock().unwrap_or_else(|e| e.into_inner());
        debug_assert!(state.is_none(), "response slot fulfilled twice");
        *state = Some(response);
        drop(state);
        self.ready.notify_all();
    }

    /// Blocks until the response arrives and takes it.
    pub(crate) fn wait_take(&self) -> R {
        let mut state = self.state.lock().expect("response slot poisoned");
        loop {
            if let Some(response) = state.take() {
                return response;
            }
            state = self.ready.wait(state).expect("response slot poisoned");
        }
    }

    /// Takes the response if it has arrived.
    pub(crate) fn poll_take(&self) -> Option<R> {
        self.state.lock().expect("response slot poisoned").take()
    }
}

/// A claim on one in-flight request. Exactly one of [`wait`],
/// [`wait_timeout`] or [`try_take`] eventually yields the
/// [`DecodeResponse`]; the service fulfills every accepted request, even
/// through shutdown (the shards drain their queues before exiting) and
/// through worker death (a lost worker's requests are answered with
/// [`DecodeError::WorkerLost`]).
///
/// [`wait`]: ResponseHandle::wait
/// [`wait_timeout`]: ResponseHandle::wait_timeout
/// [`try_take`]: ResponseHandle::try_take
#[derive(Debug)]
pub struct ResponseHandle {
    pub(crate) slot: Arc<ResponseSlot<DecodeResponse>>,
    pub(crate) request_id: u64,
    pub(crate) client_seq: u64,
}

impl ResponseHandle {
    /// The id assigned at submission (matches the response's
    /// `request_id`).
    pub fn request_id(&self) -> u64 {
        self.request_id
    }

    /// The submitting client's sequence number for this request.
    pub fn client_seq(&self) -> u64 {
        self.client_seq
    }

    /// Whether the response has arrived (a subsequent take will not
    /// block).
    pub fn is_ready(&self) -> bool {
        self.slot
            .state
            .lock()
            .expect("response slot poisoned")
            .is_some()
    }

    /// Blocks until the response arrives.
    pub fn wait(self) -> DecodeResponse {
        self.slot.wait_take()
    }

    /// Blocks up to `timeout`; on expiry the handle is returned so the
    /// caller can keep waiting later (the request stays in flight). A
    /// zero timeout degenerates to [`Self::try_take`]: an
    /// already-fulfilled response is returned without blocking.
    pub fn wait_timeout(self, timeout: Duration) -> Result<DecodeResponse, ResponseHandle> {
        let deadline = Instant::now() + timeout;
        let mut state = self.slot.state.lock().expect("response slot poisoned");
        loop {
            if let Some(response) = state.take() {
                return Ok(response);
            }
            let Some(remaining) = deadline.checked_duration_since(Instant::now()) else {
                drop(state);
                return Err(self);
            };
            let (s, wait) = self
                .slot
                .ready
                .wait_timeout(state, remaining)
                .expect("response slot poisoned");
            state = s;
            if wait.timed_out() && state.is_none() {
                drop(state);
                return Err(self);
            }
        }
    }

    /// Non-blocking poll; on a not-yet-ready response the handle is
    /// returned for a later retry.
    pub fn try_take(self) -> Result<DecodeResponse, ResponseHandle> {
        match self.slot.poll_take() {
            Some(response) => Ok(response),
            None => Err(self),
        }
    }
}

/// What a queued request carries and where its answer goes. Each
/// registered code's queues are homogeneous — single-shot codes carry
/// only `Decode`, streaming codes only `Window` — so one dispatched
/// batch is always of one kind.
pub(crate) enum Payload {
    /// A single-shot syndrome decode (the [`Client`](crate::Client)
    /// surface).
    Decode {
        syndrome: BitVec,
        slot: Arc<ResponseSlot<DecodeResponse>>,
    },
    /// One window of a streaming session.
    Window {
        window_index: usize,
        syndrome: BitVec,
        /// Carried priors from the session's previous window.
        priors: Option<Vec<f64>>,
        slot: Arc<ResponseSlot<WindowResponse>>,
    },
}

/// Internal queued form of a request, owned by the shard queues.
pub(crate) struct Request {
    pub id: u64,
    pub client_seq: u64,
    pub deadline: Option<Instant>,
    pub submitted_at: Instant,
    pub home_shard: usize,
    pub payload: Payload,
}

impl Request {
    /// Answers the request with `error` — the path for requests that
    /// never produce an outcome (dispatch-deadline expiry on streaming
    /// payloads, and every request a dying worker owns).
    pub(crate) fn fail(self, error: DecodeError, batch_size: usize, completion_seq: u64) {
        let total_time = self.submitted_at.elapsed();
        match self.payload {
            Payload::Decode { slot, .. } => slot.fulfill(DecodeResponse {
                request_id: self.id,
                client_seq: self.client_seq,
                result: Err(error),
                batch_size,
                completion_seq,
                queue_time: total_time,
                total_time,
                stolen: false,
            }),
            Payload::Window { slot, .. } => slot.fulfill(WindowResponse {
                request_id: self.id,
                result: Err(error),
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    fn dummy_response(id: u64) -> DecodeResponse {
        DecodeResponse {
            request_id: id,
            client_seq: 0,
            result: Err(DecodeError::DeadlineExceeded),
            batch_size: 1,
            completion_seq: 0,
            queue_time: Duration::ZERO,
            total_time: Duration::ZERO,
            stolen: false,
        }
    }

    fn handle(slot: &Arc<ResponseSlot<DecodeResponse>>) -> ResponseHandle {
        ResponseHandle {
            slot: Arc::clone(slot),
            request_id: 7,
            client_seq: 3,
        }
    }

    #[test]
    fn try_take_and_is_ready_round_trip() {
        let slot = Arc::new(ResponseSlot::default());
        let h = handle(&slot);
        assert!(!h.is_ready());
        let h = h.try_take().unwrap_err();
        slot.fulfill(dummy_response(7));
        assert!(h.is_ready());
        let r = h.try_take().unwrap();
        assert_eq!(r.request_id, 7);
    }

    #[test]
    fn wait_blocks_until_fulfilled() {
        let slot = Arc::new(ResponseSlot::default());
        let h = handle(&slot);
        let t = thread::spawn(move || h.wait().request_id);
        thread::sleep(Duration::from_millis(10));
        slot.fulfill(dummy_response(7));
        assert_eq!(t.join().unwrap(), 7);
    }

    #[test]
    fn wait_timeout_returns_handle_then_succeeds() {
        let slot = Arc::new(ResponseSlot::default());
        let h = handle(&slot);
        let h = h.wait_timeout(Duration::from_millis(5)).unwrap_err();
        assert_eq!(h.request_id(), 7);
        assert_eq!(h.client_seq(), 3);
        slot.fulfill(dummy_response(7));
        let r = h.wait_timeout(Duration::from_secs(5)).unwrap();
        assert_eq!(r.request_id, 7);
    }

    #[test]
    fn wait_timeout_zero_duration() {
        let slot = Arc::new(ResponseSlot::default());
        let h = handle(&slot);
        // Not ready yet: a zero timeout must return the handle
        // immediately instead of blocking.
        let h = h.wait_timeout(Duration::ZERO).unwrap_err();
        slot.fulfill(dummy_response(7));
        // Already fulfilled: a zero timeout must still return the
        // response (the pre-deadline state check runs before any wait).
        let r = h.wait_timeout(Duration::ZERO).unwrap();
        assert_eq!(r.request_id, 7);
    }

    #[test]
    fn wait_timeout_survives_spurious_wakeups() {
        let slot = Arc::new(ResponseSlot::default());
        let h = handle(&slot);
        // Ring the condvar repeatedly *without* fulfilling: each wakeup
        // is indistinguishable from a spurious one, and the waiter must
        // keep waiting rather than time out early or return garbage.
        let notifier = {
            let slot = Arc::clone(&slot);
            thread::spawn(move || {
                for _ in 0..20 {
                    slot.ready.notify_all();
                    thread::sleep(Duration::from_millis(1));
                }
                slot.fulfill(dummy_response(7));
            })
        };
        let r = h
            .wait_timeout(Duration::from_secs(30))
            .expect("fulfilled response must resolve despite empty wakeups");
        assert_eq!(r.request_id, 7);
        notifier.join().unwrap();
    }

    #[test]
    fn fail_answers_both_payload_kinds() {
        let slot = Arc::new(ResponseSlot::default());
        let request = Request {
            id: 9,
            client_seq: 1,
            deadline: None,
            submitted_at: Instant::now(),
            home_shard: 0,
            payload: Payload::Decode {
                syndrome: BitVec::zeros(4),
                slot: Arc::clone(&slot),
            },
        };
        request.fail(DecodeError::WorkerLost, 0, 42);
        let r = handle(&slot).wait();
        assert_eq!(r.result.unwrap_err(), DecodeError::WorkerLost);
        assert_eq!(r.request_id, 9);
        assert_eq!(r.completion_seq, 42);

        let wslot: Arc<ResponseSlot<WindowResponse>> = Arc::new(ResponseSlot::default());
        let request = Request {
            id: 10,
            client_seq: 2,
            deadline: None,
            submitted_at: Instant::now(),
            home_shard: 0,
            payload: Payload::Window {
                window_index: 0,
                syndrome: BitVec::zeros(4),
                priors: None,
                slot: Arc::clone(&wslot),
            },
        };
        request.fail(DecodeError::WorkerLost, 0, 43);
        let r = wslot.poll_take().expect("window slot fulfilled");
        assert_eq!(r.result.unwrap_err(), DecodeError::WorkerLost);
    }
}
