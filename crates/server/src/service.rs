//! Service assembly: code registration, client handles, submission
//! gating, and drain-on-shutdown.

use crate::metrics::{CodeMetrics, MetricsSnapshot};
use crate::request::{Payload, Request, ResponseHandle, ResponseSlot, SubmitError, WindowResponse};
use crate::session::StreamSession;
use crate::shard::{CodeKind, ShardContext};
use crossbeam::channel::{self, Sender, TrySendError};
use qldpc_decoder_api::{
    share_factory, share_window_factory, DecoderFactory, Precision, WindowDecoderFactory,
    WindowPlan,
};
use qldpc_gf2::{BitVec, SparseBitMatrix};
use qldpc_telemetry::{Exposition, JournalEntry};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, RwLock};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Per-code tuning of the scheduler and its shard pool.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServiceConfig {
    /// Worker shards (threads, each owning a decoder instance).
    pub shards: usize,
    /// Dispatch a batch as soon as this many requests are in hand. The
    /// default is the batch kernel's lane width,
    /// [`qldpc_bp::DEFAULT_MAX_LANES`] — one full tile per dispatch.
    pub max_batch: usize,
    /// How long a worker holds the batch window open waiting for more
    /// requests after the first one arrives.
    pub max_wait: Duration,
    /// Shard-queue high-water mark; submissions beyond it are rejected
    /// with [`SubmitError::Overloaded`].
    pub queue_capacity: usize,
    /// Message precision of the decoders this code's factory builds.
    ///
    /// The service cannot see inside the factory closure, so this field
    /// is the *declared* precision: set it to match the factory (e.g.
    /// `Precision::F32` with an `MinSumDecoderF32` factory) and the
    /// service surfaces it in [`MetricsSnapshot::precision`] so
    /// dashboards can attribute throughput/latency to the arithmetic
    /// that produced it. Defaults to [`Precision::F64`], matching every
    /// factory that predates the precision parameter.
    pub precision: Precision,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        Self {
            shards: 2,
            max_batch: qldpc_bp::DEFAULT_MAX_LANES,
            max_wait: Duration::from_micros(200),
            queue_capacity: 1024,
            precision: Precision::F64,
        }
    }
}

/// Opaque handle naming a registered code.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CodeId(pub(crate) usize);

struct CodeSpec {
    name: String,
    kind: CodeKind,
    config: ServiceConfig,
}

/// Staged registration; [`ServiceBuilder::start`] spawns the shard pools
/// and returns the running service.
#[derive(Default)]
pub struct ServiceBuilder {
    codes: Vec<CodeSpec>,
}

impl ServiceBuilder {
    /// Registers a code under the default [`ServiceConfig`].
    ///
    /// # Panics
    ///
    /// Panics on mismatched `priors` length or a degenerate config (see
    /// [`ServiceBuilder::register_code_with`]).
    pub fn register_code(
        &mut self,
        name: impl Into<String>,
        h: &SparseBitMatrix,
        priors: &[f64],
        factory: DecoderFactory,
    ) -> CodeId {
        self.register_code_with(name, h, priors, factory, ServiceConfig::default())
    }

    /// Registers a code with explicit scheduler tuning. Each of the
    /// `config.shards` workers builds its own decoder instance from
    /// `factory` on its own thread.
    ///
    /// # Panics
    ///
    /// Panics if `priors.len() != h.cols()` or any of `shards`,
    /// `max_batch`, `queue_capacity` is zero.
    pub fn register_code_with(
        &mut self,
        name: impl Into<String>,
        h: &SparseBitMatrix,
        priors: &[f64],
        factory: DecoderFactory,
        config: ServiceConfig,
    ) -> CodeId {
        assert_eq!(priors.len(), h.cols(), "one prior per variable required");
        self.push(
            name.into(),
            CodeKind::Single {
                h: Arc::new(h.clone()),
                priors: Arc::new(priors.to_vec()),
                factory: share_factory(factory),
            },
            config,
        )
    }

    /// Registers a *streaming* code — a windowed slicing of one detector
    /// error model — under the default [`ServiceConfig`]. Decode it
    /// through [`DecodeService::stream_session`], not
    /// [`Client::submit`].
    ///
    /// # Panics
    ///
    /// Panics on an empty plan or a degenerate config (see
    /// [`ServiceBuilder::register_streaming_code_with`]).
    pub fn register_streaming_code(
        &mut self,
        name: impl Into<String>,
        plan: Arc<WindowPlan>,
        factory: WindowDecoderFactory,
    ) -> CodeId {
        self.register_streaming_code_with(name, plan, factory, ServiceConfig::default())
    }

    /// Registers a streaming code with explicit scheduler tuning. Each
    /// of the `config.shards` workers builds its own [`WindowDecoder`]
    /// instance from `factory` on its own thread; window submissions
    /// from all live sessions micro-batch through the same
    /// coalesce/steal scheduler as single-shot requests.
    ///
    /// # Panics
    ///
    /// Panics if the plan has no windows or any of `shards`,
    /// `max_batch`, `queue_capacity` is zero.
    ///
    /// [`WindowDecoder`]: qldpc_decoder_api::WindowDecoder
    pub fn register_streaming_code_with(
        &mut self,
        name: impl Into<String>,
        plan: Arc<WindowPlan>,
        factory: WindowDecoderFactory,
        config: ServiceConfig,
    ) -> CodeId {
        assert!(plan.num_windows() > 0, "plan must have at least one window");
        self.push(
            name.into(),
            CodeKind::Streaming {
                plan,
                factory: share_window_factory(factory),
            },
            config,
        )
    }

    fn push(&mut self, name: String, kind: CodeKind, config: ServiceConfig) -> CodeId {
        assert!(config.shards > 0, "need at least one shard");
        assert!(config.max_batch > 0, "max_batch must be positive");
        assert!(config.queue_capacity > 0, "queue capacity must be positive");
        let id = CodeId(self.codes.len());
        self.codes.push(CodeSpec { name, kind, config });
        id
    }

    /// Spawns every shard worker and opens the service for submissions.
    pub fn start(self) -> DecodeService {
        let closed = Arc::new(AtomicBool::new(false));
        let gate = Arc::new(RwLock::new(false));
        let mut codes = Vec::with_capacity(self.codes.len());
        let mut workers = Vec::new();
        for spec in self.codes {
            let metrics = Arc::new(CodeMetrics::default());
            let completion_counter = Arc::new(AtomicU64::new(0));
            let alive = Arc::new(AtomicUsize::new(spec.config.shards));
            let pairs: Vec<_> = (0..spec.config.shards)
                .map(|_| channel::bounded::<Request>(spec.config.queue_capacity))
                .collect();
            let receivers: Vec<_> = pairs.iter().map(|(_, rx)| rx.clone()).collect();
            let senders: Vec<Sender<Request>> = pairs.into_iter().map(|(tx, _)| tx).collect();
            for shard_index in 0..spec.config.shards {
                let ctx = ShardContext {
                    shard_index,
                    queues: receivers.clone(),
                    kind: spec.kind.clone(),
                    max_batch: spec.config.max_batch,
                    max_wait: spec.config.max_wait,
                    metrics: Arc::clone(&metrics),
                    completion_counter: Arc::clone(&completion_counter),
                    closed: Arc::clone(&closed),
                    alive: Arc::clone(&alive),
                    gate: Arc::clone(&gate),
                };
                let thread = std::thread::Builder::new()
                    .name(format!("qldpc-server/{}/{shard_index}", spec.name))
                    .spawn(move || ctx.run())
                    .expect("failed to spawn shard worker");
                workers.push(thread);
            }
            let shape = match &spec.kind {
                CodeKind::Single { h, .. } => CodeShape::Single { rows: h.rows() },
                CodeKind::Streaming { plan, .. } => CodeShape::Streaming {
                    plan: Arc::clone(plan),
                },
            };
            codes.push(CodeRuntime {
                name: spec.name,
                shape,
                shards: spec.config.shards,
                precision: spec.config.precision,
                senders,
                metrics,
                alive,
            });
        }
        DecodeService {
            shared: Arc::new(Shared {
                codes,
                gate,
                closed,
                next_request_id: AtomicU64::new(0),
                next_client_id: AtomicU64::new(0),
            }),
            workers,
        }
    }
}

/// What shape of request a registered code accepts.
enum CodeShape {
    Single { rows: usize },
    Streaming { plan: Arc<WindowPlan> },
}

pub(crate) struct CodeRuntime {
    name: String,
    shape: CodeShape,
    shards: usize,
    precision: Precision,
    senders: Vec<Sender<Request>>,
    metrics: Arc<CodeMetrics>,
    /// Still-running workers; zero means every decoder of this code has
    /// died (see `shard::WorkerGuard`) and submissions must refuse.
    alive: Arc<AtomicUsize>,
}

pub(crate) struct Shared {
    codes: Vec<CodeRuntime>,
    /// `true` once shut down. Submissions hold the read side across
    /// check-and-send; shutdown flips it under the write side, so no
    /// send can race past the close — whatever a worker drains after
    /// observing `closed` is the complete remaining load. The last
    /// panicking worker of a code also drains under the write side
    /// (`shard::WorkerGuard`), for the same no-race reason.
    gate: Arc<RwLock<bool>>,
    /// Lock-free mirror of the gate for worker polling loops.
    closed: Arc<AtomicBool>,
    next_request_id: AtomicU64,
    next_client_id: AtomicU64,
}

impl Shared {
    /// The live metrics of one registered code (sessions record window
    /// spill/carry through this).
    pub(crate) fn metrics(&self, code: usize) -> &CodeMetrics {
        &self.codes[code].metrics
    }

    /// Submits one window of a streaming session to its home shard.
    /// Shares the single-shot path's gate discipline: the read side is
    /// held across check-and-send, and a code whose workers are all
    /// dead refuses with [`SubmitError::Shutdown`].
    pub(crate) fn submit_window(
        &self,
        code: usize,
        home_shard: usize,
        client_seq: u64,
        window_index: usize,
        syndrome: BitVec,
        priors: Option<Vec<f64>>,
    ) -> Result<Arc<ResponseSlot<WindowResponse>>, SubmitError> {
        let runtime = self.codes.get(code).ok_or(SubmitError::UnknownCode)?;
        let gate = self.gate.read().expect("service gate poisoned");
        if *gate || runtime.alive.load(Ordering::Acquire) == 0 {
            return Err(SubmitError::Shutdown);
        }
        let slot = Arc::new(ResponseSlot::default());
        let request = Request {
            id: self.next_request_id.fetch_add(1, Ordering::Relaxed),
            client_seq,
            deadline: None,
            submitted_at: Instant::now(),
            home_shard,
            payload: Payload::Window {
                window_index,
                syndrome,
                priors,
                slot: Arc::clone(&slot),
            },
        };
        match runtime.senders[home_shard].try_send(request) {
            Ok(()) => {
                runtime.metrics.submitted.fetch_add(1, Ordering::Relaxed);
                drop(gate);
                Ok(slot)
            }
            Err(TrySendError::Full(_)) => {
                runtime
                    .metrics
                    .rejected_overload
                    .fetch_add(1, Ordering::Relaxed);
                drop(gate);
                runtime.metrics.journal.record(
                    "overload",
                    format!("window {window_index} rejected: shard {home_shard} queue full"),
                );
                Err(SubmitError::Overloaded)
            }
            Err(TrySendError::Disconnected(_)) => Err(SubmitError::Shutdown),
        }
    }
}

/// The running decode service. Dropping it (or calling
/// [`DecodeService::shutdown`]) closes submissions, drains every shard
/// queue — every accepted request still gets its response — and joins
/// the worker threads.
pub struct DecodeService {
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
}

impl DecodeService {
    /// Starts assembling a service.
    pub fn builder() -> ServiceBuilder {
        ServiceBuilder::default()
    }

    /// Creates a submission handle with a fresh client identity.
    /// Requests from one client go to one *home shard*
    /// (`client_id % shards`) in submission order, so they are pulled
    /// out of that queue for decoding in submission order (every
    /// consumer pops the head). Their *completion* order is also FIFO
    /// when the code runs a single shard; with several shards,
    /// concurrently decoded batches may finish out of order.
    pub fn client(&self) -> Client {
        Client {
            shared: Arc::clone(&self.shared),
            client_id: self.shared.next_client_id.fetch_add(1, Ordering::Relaxed),
            next_seq: 0,
        }
    }

    /// Opens a stateful streaming session against a code registered with
    /// [`ServiceBuilder::register_streaming_code`]. The session owns the
    /// rolling residual syndrome of one logical qubit: push detector
    /// rounds as they are measured, collect committed corrections as
    /// they resolve.
    ///
    /// Each session is its own client identity (own home shard, own
    /// FIFO submission stream); concurrent sessions micro-batch
    /// together inside the workers.
    pub fn stream_session(&self, code: CodeId) -> Result<StreamSession, SubmitError> {
        let runtime = self
            .shared
            .codes
            .get(code.0)
            .ok_or(SubmitError::UnknownCode)?;
        let CodeShape::Streaming { plan } = &runtime.shape else {
            return Err(SubmitError::WrongCodeKind);
        };
        if *self.shared.gate.read().expect("service gate poisoned") {
            return Err(SubmitError::Shutdown);
        }
        let client_id = self.shared.next_client_id.fetch_add(1, Ordering::Relaxed);
        Ok(StreamSession::new(
            Arc::clone(&self.shared),
            code.0,
            Arc::clone(plan),
            (client_id as usize) % runtime.shards,
        ))
    }

    /// Display name a code was registered under.
    pub fn code_name(&self, code: CodeId) -> Option<&str> {
        self.shared.codes.get(code.0).map(|c| c.name.as_str())
    }

    /// Resolves a registered code by its registration name. Names are
    /// unique in practice (registration order decides ties); the
    /// networked front-end uses this to answer `CodeLookup` frames.
    pub fn lookup_code(&self, name: &str) -> Option<CodeId> {
        self.shared
            .codes
            .iter()
            .position(|c| c.name == name)
            .map(CodeId)
    }

    /// Registered code names, in registration order.
    pub fn code_names(&self) -> Vec<&str> {
        self.shared.codes.iter().map(|c| c.name.as_str()).collect()
    }

    /// Syndrome length a single-shot code expects; `None` for unknown
    /// ids and for streaming codes (which take rounds through sessions,
    /// not bare syndromes).
    pub fn syndrome_bits(&self, code: CodeId) -> Option<usize> {
        match &self.shared.codes.get(code.0)?.shape {
            CodeShape::Single { rows } => Some(*rows),
            CodeShape::Streaming { .. } => None,
        }
    }

    /// The sliding-window plan of a streaming code; `None` for unknown
    /// ids and single-shot codes.
    pub fn stream_plan(&self, code: CodeId) -> Option<&WindowPlan> {
        match &self.shared.codes.get(code.0)?.shape {
            CodeShape::Single { .. } => None,
            CodeShape::Streaming { plan } => Some(plan),
        }
    }

    /// Point-in-time metrics for one code.
    ///
    /// # Panics
    ///
    /// Panics on an unknown `code` id.
    pub fn metrics(&self, code: CodeId) -> MetricsSnapshot {
        let runtime = &self.shared.codes[code.0];
        runtime.metrics.snapshot(runtime.precision)
    }

    /// Renders a Prometheus-style text exposition covering every
    /// registered code: request/convergence counters, batch-size
    /// buckets, and the end-to-end plus per-stage duration histograms
    /// (series named `*_seconds*`). Output is deterministic — lines are
    /// sorted, codes contribute under their `code="…"` label — so two
    /// renders of the same counter state are byte-identical; serve it
    /// from a `/metrics` handler or diff it in tests.
    pub fn render_exposition(&self) -> String {
        self.render_exposition_impl(None)
    }

    /// Like [`DecodeService::render_exposition`], with every series
    /// additionally labeled `node="{node}"` — the form the networked
    /// front-end serves, so scrapes from several service nodes aggregate
    /// without colliding.
    pub fn render_exposition_for(&self, node: &str) -> String {
        self.render_exposition_impl(Some(node))
    }

    fn render_exposition_impl(&self, node: Option<&str>) -> String {
        let mut exposition = Exposition::new();
        let mut codes: Vec<&CodeRuntime> = self.shared.codes.iter().collect();
        codes.sort_by(|a, b| a.name.cmp(&b.name));
        for runtime in codes {
            runtime.metrics.snapshot(runtime.precision).exposition_into(
                &runtime.name,
                node,
                &mut exposition,
            );
        }
        exposition.render()
    }

    /// The retained post-mortem journal of one code (worker deaths,
    /// overload rejections, shutdown drains), oldest first.
    ///
    /// # Panics
    ///
    /// Panics on an unknown `code` id.
    pub fn journal(&self, code: CodeId) -> Vec<JournalEntry> {
        self.shared.codes[code.0].metrics.journal.dump()
    }

    fn shutdown_impl(&mut self) {
        {
            let mut gate = self.shared.gate.write().expect("service gate poisoned");
            *gate = true;
        }
        self.shared.closed.store(true, Ordering::Release);
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }

    /// Closes submissions, waits for every shard to drain its queue
    /// (all outstanding handles resolve), joins the workers, and
    /// returns the final per-code metrics in registration order.
    pub fn shutdown(mut self) -> Vec<MetricsSnapshot> {
        self.shutdown_impl();
        self.shared
            .codes
            .iter()
            .map(|c| c.metrics.snapshot(c.precision))
            .collect()
    }
}

impl Drop for DecodeService {
    fn drop(&mut self) {
        self.shutdown_impl();
    }
}

/// A submission handle. `Send` but deliberately not `Clone`: one client
/// is one FIFO stream with a private sequence counter; concurrent
/// producers should each take their own client from
/// [`DecodeService::client`].
pub struct Client {
    shared: Arc<Shared>,
    client_id: u64,
    next_seq: u64,
}

impl Client {
    /// This client's stable identity.
    pub fn client_id(&self) -> u64 {
        self.client_id
    }

    /// Submits a syndrome with no deadline.
    pub fn submit(
        &mut self,
        code: CodeId,
        syndrome: BitVec,
    ) -> Result<ResponseHandle, SubmitError> {
        self.submit_inner(code, syndrome, None)
    }

    /// Submits a syndrome that must be *dispatched* within `deadline`
    /// from now; if the scheduler pulls it later than that, it is
    /// answered with `DecodeError::DeadlineExceeded` instead of being
    /// decoded.
    pub fn submit_with_deadline(
        &mut self,
        code: CodeId,
        syndrome: BitVec,
        deadline: Duration,
    ) -> Result<ResponseHandle, SubmitError> {
        self.submit_inner(code, syndrome, Some(Instant::now() + deadline))
    }

    fn submit_inner(
        &mut self,
        code: CodeId,
        syndrome: BitVec,
        deadline: Option<Instant>,
    ) -> Result<ResponseHandle, SubmitError> {
        let runtime = self
            .shared
            .codes
            .get(code.0)
            .ok_or(SubmitError::UnknownCode)?;
        let rows = match &runtime.shape {
            CodeShape::Single { rows } => *rows,
            // Streaming codes take whole windows through sessions, not
            // bare syndromes.
            CodeShape::Streaming { .. } => return Err(SubmitError::WrongCodeKind),
        };
        if syndrome.len() != rows {
            return Err(SubmitError::SyndromeLength {
                expected: rows,
                got: syndrome.len(),
            });
        }
        // Hold the gate's read side across check-and-send (see `Shared`).
        let gate = self.shared.gate.read().expect("service gate poisoned");
        if *gate || runtime.alive.load(Ordering::Acquire) == 0 {
            return Err(SubmitError::Shutdown);
        }
        let home_shard = (self.client_id as usize) % runtime.shards;
        let slot = Arc::new(ResponseSlot::default());
        let request = Request {
            id: self.shared.next_request_id.fetch_add(1, Ordering::Relaxed),
            client_seq: self.next_seq,
            deadline,
            submitted_at: Instant::now(),
            home_shard,
            payload: Payload::Decode {
                syndrome,
                slot: Arc::clone(&slot),
            },
        };
        let (id, seq) = (request.id, request.client_seq);
        match runtime.senders[home_shard].try_send(request) {
            Ok(()) => {
                // Count while still holding the gate: shutdown's write
                // lock then orders after this increment, so a final
                // snapshot can never see `completed > submitted`.
                runtime.metrics.submitted.fetch_add(1, Ordering::Relaxed);
                drop(gate);
                self.next_seq += 1;
                Ok(ResponseHandle {
                    slot,
                    request_id: id,
                    client_seq: seq,
                })
            }
            Err(TrySendError::Full(_)) => {
                runtime
                    .metrics
                    .rejected_overload
                    .fetch_add(1, Ordering::Relaxed);
                drop(gate);
                runtime.metrics.journal.record(
                    "overload",
                    format!("request rejected: shard {home_shard} queue full"),
                );
                Err(SubmitError::Overloaded)
            }
            // Workers only exit after shutdown, so a gone receiver is a
            // closed service.
            Err(TrySendError::Disconnected(_)) => Err(SubmitError::Shutdown),
        }
    }
}
