//! Networked front-end: TCP and Unix-domain-socket serving of a
//! [`DecodeService`] over the `qldpc-wire` protocol.
//!
//! Hermetic by construction — `std::net`/`std::os::unix::net` listeners,
//! plain threads, no async runtime. One connection runs two threads:
//!
//! * a **reader** that owns the connection's service [`Client`] and its
//!   stream sessions, parses frames, and converts protocol violations
//!   into typed [`Frame::Error`]s;
//! * a **writer** that answers strictly in request order. Accepted
//!   decode submissions enqueue their [`ResponseHandle`] on the writer,
//!   which waits for the service to fulfill each before writing its
//!   reply — FIFO per connection, with pipelining *into* the service
//!   (many submissions can be in flight at once, bounded by
//!   [`FrontendConfig::max_inflight`]).
//!
//! Back-pressure is layered: the service's own bounded shard queues
//! refuse with [`ErrorCode::Overloaded`] (service-wide), while the
//! per-connection in-flight cap refuses with [`ErrorCode::RateLimited`]
//! (one client monopolizing the queues) — distinct wire errors so a
//! client can tell "slow down" from "the service is saturated".
//!
//! A dropped connection can leak nothing: the writer drains every
//! enqueued response handle even when the socket is already dead (write
//! failures are ignored; the *service* slots must resolve), and the
//! reader drops its stream sessions, abandoning their server-side state.

use crate::request::{DecodeError, SubmitError};
use crate::service::{Client, CodeId, DecodeService};
use crate::session::StreamSession;
use crossbeam::channel::{self, Sender};
use qldpc_gf2::BitVec;
use qldpc_wire::{
    read_frame, write_frame, DecodeFailure, ErrorCode, Frame, RecvError, DEFAULT_MAX_PAYLOAD,
    PROTOCOL_VERSION,
};
use std::collections::HashMap;
use std::io::{self, BufReader, BufWriter, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

/// Tuning of one front-end (one listener).
#[derive(Debug, Clone)]
pub struct FrontendConfig {
    /// This node's identity: sent in the handshake's `HelloAck` and
    /// attached as a `node` label to every metrics series the front-end
    /// serves, so multi-node scrapes aggregate without colliding.
    pub node: String,
    /// Per-connection cap on decode submissions awaiting their reply.
    /// Submissions beyond it are refused with
    /// [`ErrorCode::RateLimited`] — the per-client rate limit layered
    /// on the service's own [`ErrorCode::Overloaded`] backpressure.
    pub max_inflight: usize,
    /// Largest frame payload this front-end accepts from a client.
    pub max_payload: u32,
}

impl Default for FrontendConfig {
    fn default() -> Self {
        Self {
            node: "node0".to_string(),
            max_inflight: 256,
            max_payload: DEFAULT_MAX_PAYLOAD,
        }
    }
}

/// Interval at which the accept loop re-checks the stop flag.
const ACCEPT_POLL: Duration = Duration::from_millis(2);

/// Both socket flavors a front-end serves, unified for the connection
/// machinery.
trait Conn: Read + Write + Send + Sized + 'static {
    fn try_clone_conn(&self) -> io::Result<Self>;

    /// Closes the underlying socket for every clone of it (the shutdown
    /// registry holds one), so the peer sees EOF as soon as the
    /// connection's threads are done — not at front-end teardown.
    fn shutdown_both(&self);
}

impl Conn for TcpStream {
    fn try_clone_conn(&self) -> io::Result<Self> {
        self.try_clone()
    }

    fn shutdown_both(&self) {
        let _ = self.shutdown(std::net::Shutdown::Both);
    }
}

impl Conn for UnixStream {
    fn try_clone_conn(&self) -> io::Result<Self> {
        self.try_clone()
    }

    fn shutdown_both(&self) {
        let _ = self.shutdown(std::net::Shutdown::Both);
    }
}

/// Registered connection sockets, kept so shutdown can break their
/// blocked reads.
enum RegSock {
    Tcp(TcpStream),
    Unix(UnixStream),
}

impl RegSock {
    fn shutdown(&self) {
        let _ = match self {
            RegSock::Tcp(s) => s.shutdown(std::net::Shutdown::Both),
            RegSock::Unix(s) => s.shutdown(std::net::Shutdown::Both),
        };
    }
}

/// A running listener serving one [`DecodeService`]. Dropping it (or
/// calling [`NetFrontend::shutdown`]) stops accepting, closes every open
/// connection, and joins all connection threads; the service itself is
/// left running (it is shared via `Arc` and may have other front-ends).
pub struct NetFrontend {
    stop: Arc<AtomicBool>,
    accept_thread: Option<JoinHandle<()>>,
    conns: Arc<Mutex<Vec<RegSock>>>,
    conn_threads: Arc<Mutex<Vec<JoinHandle<()>>>>,
    local_addr: Option<SocketAddr>,
    uds_path: Option<PathBuf>,
}

impl NetFrontend {
    /// Binds a TCP listener (use port 0 to let the OS pick; see
    /// [`NetFrontend::local_addr`]) and starts serving.
    pub fn serve_tcp(
        service: Arc<DecodeService>,
        addr: impl ToSocketAddrs,
        config: FrontendConfig,
    ) -> io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        let local_addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        let mut frontend = Self::new(Some(local_addr), None);
        let accept = frontend.accept_parts(service, config);
        let thread = std::thread::Builder::new()
            .name(format!("qldpc-net/accept/{local_addr}"))
            .spawn(move || {
                accept.run(
                    || listener.accept().map(|(s, _)| s),
                    |s| Ok(RegSock::Tcp(s.try_clone()?)),
                )
            })?;
        frontend.accept_thread = Some(thread);
        Ok(frontend)
    }

    /// Binds a Unix-domain socket at `path` (removed again on shutdown)
    /// and starts serving.
    pub fn serve_uds(
        service: Arc<DecodeService>,
        path: impl AsRef<Path>,
        config: FrontendConfig,
    ) -> io::Result<Self> {
        let path = path.as_ref().to_path_buf();
        let listener = UnixListener::bind(&path)?;
        listener.set_nonblocking(true)?;
        let mut frontend = Self::new(None, Some(path));
        let accept = frontend.accept_parts(service, config);
        let thread = std::thread::Builder::new()
            .name("qldpc-net/accept/uds".to_string())
            .spawn(move || {
                accept.run(
                    || listener.accept().map(|(s, _)| s),
                    |s| Ok(RegSock::Unix(s.try_clone()?)),
                )
            })?;
        frontend.accept_thread = Some(thread);
        Ok(frontend)
    }

    fn new(local_addr: Option<SocketAddr>, uds_path: Option<PathBuf>) -> Self {
        Self {
            stop: Arc::new(AtomicBool::new(false)),
            accept_thread: None,
            conns: Arc::new(Mutex::new(Vec::new())),
            conn_threads: Arc::new(Mutex::new(Vec::new())),
            local_addr,
            uds_path,
        }
    }

    fn accept_parts(&self, service: Arc<DecodeService>, config: FrontendConfig) -> AcceptLoop {
        AcceptLoop {
            service,
            config,
            stop: Arc::clone(&self.stop),
            conns: Arc::clone(&self.conns),
            conn_threads: Arc::clone(&self.conn_threads),
        }
    }

    /// The bound TCP address (`None` for UDS front-ends) — the way to
    /// learn the actual port after binding port 0.
    pub fn local_addr(&self) -> Option<SocketAddr> {
        self.local_addr
    }

    /// Stops accepting, closes every open connection (blocked reads are
    /// broken by a socket shutdown), and joins all threads. Idempotent;
    /// also runs on drop.
    pub fn shutdown(&mut self) {
        if self.stop.swap(true, Ordering::SeqCst) {
            return;
        }
        for sock in self.conns.lock().expect("conn registry poisoned").iter() {
            sock.shutdown();
        }
        if let Some(thread) = self.accept_thread.take() {
            let _ = thread.join();
        }
        let threads: Vec<_> = self
            .conn_threads
            .lock()
            .expect("conn threads poisoned")
            .drain(..)
            .collect();
        for thread in threads {
            let _ = thread.join();
        }
        if let Some(path) = self.uds_path.take() {
            let _ = std::fs::remove_file(path);
        }
    }
}

impl Drop for NetFrontend {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// The accept loop's shared state, factored so TCP and UDS share one
/// implementation.
struct AcceptLoop {
    service: Arc<DecodeService>,
    config: FrontendConfig,
    stop: Arc<AtomicBool>,
    conns: Arc<Mutex<Vec<RegSock>>>,
    conn_threads: Arc<Mutex<Vec<JoinHandle<()>>>>,
}

impl AcceptLoop {
    fn run<C: Conn>(
        self,
        mut accept: impl FnMut() -> io::Result<C>,
        register: impl Fn(&C) -> io::Result<RegSock>,
    ) {
        let mut conn_index = 0usize;
        while !self.stop.load(Ordering::SeqCst) {
            match accept() {
                Ok(stream) => {
                    if let Ok(reg) = register(&stream) {
                        self.conns.lock().expect("conn registry poisoned").push(reg);
                    }
                    let service = Arc::clone(&self.service);
                    let config = self.config.clone();
                    let thread = std::thread::Builder::new()
                        .name(format!("qldpc-net/conn/{conn_index}"))
                        .spawn(move || run_connection(service, config, stream));
                    conn_index += 1;
                    if let Ok(thread) = thread {
                        self.conn_threads
                            .lock()
                            .expect("conn threads poisoned")
                            .push(thread);
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    std::thread::sleep(ACCEPT_POLL);
                }
                Err(_) => {
                    if self.stop.load(Ordering::SeqCst) {
                        return;
                    }
                    std::thread::sleep(ACCEPT_POLL);
                }
            }
        }
    }
}

/// What the reader hands the writer. Ordered per connection: replies go
/// out in the order their requests arrived.
enum WriteItem {
    /// A frame ready to send.
    Frame(Frame),
    /// An accepted decode submission: wait for the service to fulfill
    /// it, then send the reply.
    Reply {
        tag: u64,
        handle: crate::request::ResponseHandle,
    },
}

fn run_connection<C: Conn>(service: Arc<DecodeService>, config: FrontendConfig, stream: C) {
    // The accepted socket may inherit the listener's non-blocking mode
    // on some platforms; the protocol threads want blocking reads.
    let write_half = match stream.try_clone_conn() {
        Ok(half) => half,
        Err(_) => return,
    };
    let (tx, rx) = channel::unbounded::<WriteItem>();
    let inflight = Arc::new(AtomicUsize::new(0));
    let writer_inflight = Arc::clone(&inflight);
    let writer = std::thread::Builder::new()
        .name("qldpc-net/writer".to_string())
        .spawn(move || {
            let mut out = BufWriter::new(write_half);
            let mut dead = false;
            while let Ok(item) = rx.recv() {
                let frame = match item {
                    WriteItem::Frame(frame) => frame,
                    WriteItem::Reply { tag, handle } => {
                        // Wait even when the socket is dead: the slot
                        // must resolve so the service's accounting
                        // drains, and the in-flight counter must fall so
                        // a reconnecting client is not charged for a
                        // dead connection's requests.
                        let response = handle.wait();
                        writer_inflight.fetch_sub(1, Ordering::AcqRel);
                        Frame::DecodeReply {
                            tag,
                            batch_size: response.batch_size as u64,
                            result: response.result.map_err(|e| match e {
                                DecodeError::DeadlineExceeded => DecodeFailure::DeadlineExceeded,
                                DecodeError::WorkerLost => DecodeFailure::WorkerLost,
                            }),
                        }
                    }
                };
                if !dead {
                    dead = write_frame(&mut out, &frame).is_err() || out.flush().is_err();
                }
            }
        });
    let Ok(writer) = writer else { return };

    let half_for_close = stream.try_clone_conn();
    reader_loop(&service, &config, stream, &tx, &inflight);

    // Dropping the sender lets the writer drain its queue and exit;
    // every enqueued response handle resolves before the join returns.
    drop(tx);
    let _ = writer.join();
    // Actively close the socket: the shutdown registry keeps a clone of
    // its fd alive, so merely dropping our halves would leave the peer
    // without an EOF until the whole front-end shuts down.
    if let Ok(half) = half_for_close {
        half.shutdown_both();
    }
}

/// Sends a typed error frame (best effort — the writer ignores a dead
/// socket).
fn send_error(tx: &Sender<WriteItem>, tag: u64, code: ErrorCode, detail: impl Into<String>) {
    let _ = tx.send(WriteItem::Frame(Frame::Error {
        tag,
        code,
        detail: detail.into(),
    }));
}

fn submit_error_code(e: &SubmitError) -> ErrorCode {
    match e {
        SubmitError::Overloaded => ErrorCode::Overloaded,
        SubmitError::Shutdown => ErrorCode::Shutdown,
        SubmitError::UnknownCode => ErrorCode::UnknownCode,
        SubmitError::WrongCodeKind => ErrorCode::WrongCodeKind,
        SubmitError::SyndromeLength { .. } => ErrorCode::SyndromeLength,
    }
}

fn reader_loop<C: Conn>(
    service: &DecodeService,
    config: &FrontendConfig,
    stream: C,
    tx: &Sender<WriteItem>,
    inflight: &AtomicUsize,
) {
    let mut reader = BufReader::new(stream);
    // Handshake first: exactly one Hello, correct version, before
    // anything else.
    match read_frame(&mut reader, config.max_payload) {
        Ok(Some(Frame::Hello { version, client: _ })) => {
            if version != PROTOCOL_VERSION {
                send_error(
                    tx,
                    0,
                    ErrorCode::UnsupportedVersion,
                    format!("server speaks version {PROTOCOL_VERSION}, client sent {version}"),
                );
                return;
            }
            let _ = tx.send(WriteItem::Frame(Frame::HelloAck {
                version: PROTOCOL_VERSION,
                node: config.node.clone(),
            }));
        }
        Ok(Some(other)) => {
            send_error(
                tx,
                0,
                ErrorCode::BadFrame,
                format!("expected Hello, got {}", other.type_name()),
            );
            return;
        }
        Ok(None) => return,
        Err(RecvError::Malformed(e)) => {
            send_error(tx, 0, ErrorCode::BadFrame, e.to_string());
            return;
        }
        Err(RecvError::Io(_)) => return,
    }

    let mut client = service.client();
    let mut sessions: HashMap<u64, StreamSession> = HashMap::new();
    let mut next_session: u64 = 1;

    loop {
        let frame = match read_frame(&mut reader, config.max_payload) {
            Ok(Some(frame)) => frame,
            // Clean disconnect at a frame boundary, socket shutdown, or
            // transport failure: wind the connection down either way.
            Ok(None) | Err(RecvError::Io(_)) => return,
            Err(RecvError::Malformed(e)) => {
                // A peer that desynchronized the framing cannot be
                // re-synchronized; answer typed and hang up.
                send_error(tx, 0, ErrorCode::BadFrame, e.to_string());
                return;
            }
        };
        match frame {
            Frame::Submit {
                tag,
                code,
                deadline_micros,
                syndrome,
            } => handle_submit(
                config,
                &mut client,
                tx,
                inflight,
                tag,
                code,
                deadline_micros,
                syndrome,
            ),
            Frame::CodeLookup { name } => match service.lookup_code(&name) {
                Some(id) => {
                    let _ = tx.send(WriteItem::Frame(Frame::CodeInfo {
                        code: id.0 as u32,
                        syndrome_bits: service.syndrome_bits(id).unwrap_or(0) as u64,
                        name,
                    }));
                }
                None => send_error(
                    tx,
                    0,
                    ErrorCode::UnknownCode,
                    format!("no code registered as {name:?}"),
                ),
            },
            Frame::StreamOpen { tag, code } => {
                match service.stream_session(CodeId(code as usize)) {
                    Ok(session) => {
                        let plan = session.plan();
                        let id = next_session;
                        next_session += 1;
                        let _ = tx.send(WriteItem::Frame(Frame::StreamOpened {
                            tag,
                            session: id,
                            num_windows: plan.num_windows() as u64,
                            num_round_blocks: plan.num_round_blocks as u64,
                            dets_per_round: plan.dets_per_round as u64,
                            num_mechanisms: plan.num_mechanisms as u64,
                        }));
                        sessions.insert(id, session);
                    }
                    Err(e) => send_error(tx, tag, submit_error_code(&e), e.to_string()),
                }
            }
            Frame::StreamRound { session, round } => {
                handle_stream_round(&mut sessions, tx, session, round)
            }
            Frame::StreamFinish { session } => handle_stream_finish(&mut sessions, tx, session),
            Frame::MetricsRequest => {
                let _ = tx.send(WriteItem::Frame(Frame::MetricsReply {
                    text: service.render_exposition_for(&config.node),
                }));
            }
            other => {
                // Server-to-client frames (or a second Hello) have no
                // business arriving here.
                send_error(
                    tx,
                    0,
                    ErrorCode::BadFrame,
                    format!("unexpected {} frame", other.type_name()),
                );
            }
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn handle_submit(
    config: &FrontendConfig,
    client: &mut Client,
    tx: &Sender<WriteItem>,
    inflight: &AtomicUsize,
    tag: u64,
    code: u32,
    deadline_micros: u64,
    syndrome: BitVec,
) {
    if inflight.load(Ordering::Acquire) >= config.max_inflight {
        send_error(
            tx,
            tag,
            ErrorCode::RateLimited,
            format!(
                "connection already has {} submissions in flight",
                config.max_inflight
            ),
        );
        return;
    }
    let code = CodeId(code as usize);
    let submitted = if deadline_micros > 0 {
        client.submit_with_deadline(code, syndrome, Duration::from_micros(deadline_micros))
    } else {
        client.submit(code, syndrome)
    };
    match submitted {
        Ok(handle) => {
            inflight.fetch_add(1, Ordering::AcqRel);
            let _ = tx.send(WriteItem::Reply { tag, handle });
        }
        Err(e) => send_error(tx, tag, submit_error_code(&e), e.to_string()),
    }
}

fn handle_stream_round(
    sessions: &mut HashMap<u64, StreamSession>,
    tx: &Sender<WriteItem>,
    session_id: u64,
    round: BitVec,
) {
    let Some(session) = sessions.get_mut(&session_id) else {
        send_error(
            tx,
            session_id,
            ErrorCode::UnknownSession,
            format!("no open stream session {session_id}"),
        );
        return;
    };
    // Pre-validate what the in-process session API treats as caller
    // contract violations (panics): over the wire they are typed errors.
    let plan = session.plan();
    if round.len() != plan.dets_per_round {
        let expected = plan.dets_per_round;
        send_error(
            tx,
            session_id,
            ErrorCode::SyndromeLength,
            format!(
                "round has {} detector bits, plan wants {expected}",
                round.len()
            ),
        );
        return;
    }
    if session.rounds_pushed() >= plan.num_round_blocks {
        send_error(
            tx,
            session_id,
            ErrorCode::BadFrame,
            format!(
                "plan covers {} round blocks, all already pushed",
                plan.num_round_blocks
            ),
        );
        return;
    }
    match session.push_round(&round) {
        Ok(events) => {
            for event in events {
                let _ = tx.send(WriteItem::Frame(commit_frame(session_id, event)));
            }
            let _ = tx.send(WriteItem::Frame(Frame::RoundAck {
                session: session_id,
                rounds_received: session.rounds_pushed() as u64,
            }));
        }
        Err(e) => {
            // The session is poisoned; drop it so later frames get
            // UnknownSession instead of the same error forever.
            sessions.remove(&session_id);
            send_error(tx, session_id, ErrorCode::StreamFailed, e.to_string());
        }
    }
}

fn handle_stream_finish(
    sessions: &mut HashMap<u64, StreamSession>,
    tx: &Sender<WriteItem>,
    session_id: u64,
) {
    let Some(session) = sessions.remove(&session_id) else {
        send_error(
            tx,
            session_id,
            ErrorCode::UnknownSession,
            format!("no open stream session {session_id}"),
        );
        return;
    };
    if session.rounds_pushed() < session.plan().num_round_blocks {
        send_error(
            tx,
            session_id,
            ErrorCode::BadFrame,
            format!(
                "finish after {} of {} round blocks",
                session.rounds_pushed(),
                session.plan().num_round_blocks
            ),
        );
        return;
    }
    match session.finish() {
        Ok(result) => {
            for event in result.events {
                let _ = tx.send(WriteItem::Frame(commit_frame(session_id, event)));
            }
            let _ = tx.send(WriteItem::Frame(Frame::StreamFinished {
                session: session_id,
                all_solved: result.all_solved,
                error_hat: result.error_hat,
            }));
        }
        Err(e) => send_error(tx, session_id, ErrorCode::StreamFailed, e.to_string()),
    }
}

fn commit_frame(session_id: u64, event: crate::session::CommitEvent) -> Frame {
    Frame::CommitEvent {
        session: session_id,
        window_index: event.window_index as u64,
        start_round: event.start_round as u64,
        end_round: event.end_round as u64,
        solved: event.solved,
        mechanisms: event.mechanisms,
    }
}
